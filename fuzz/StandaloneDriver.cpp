//===- StandaloneDriver.cpp - file-replay main for fuzz targets -----------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Replaces libFuzzer's driver when the toolchain has no -fsanitize=fuzzer
// (gcc builds). Each command-line argument is a file (or a directory of
// files) replayed through LLVMFuzzerTestOneInput, so the same target
// sources double as a regression runner over the checked-in corpus.
//
//===----------------------------------------------------------------------===//

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size);

namespace {

int runFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    fprintf(stderr, "cannot open %s\n", Path.c_str());
    return 1;
  }
  std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),
                             std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(Bytes.data(), Bytes.size());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  int Failures = 0;
  size_t Ran = 0;
  for (int I = 1; I < Argc; ++I) {
    std::filesystem::path P(Argv[I]);
    if (std::filesystem::is_directory(P)) {
      for (const auto &E : std::filesystem::directory_iterator(P)) {
        if (!E.is_regular_file())
          continue;
        Failures += runFile(E.path().string());
        ++Ran;
      }
    } else {
      Failures += runFile(P.string());
      ++Ran;
    }
  }
  fprintf(stderr, "replayed %zu input(s), %d unreadable\n", Ran, Failures);
  return Failures ? 1 : 0;
}
