//===- fuzz_coder.cpp - fuzz the entropy-coding input layer ---------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Drives the coder substrate with arbitrary bytes: every reference-
// decoding scheme (first byte selects it), the varint readers, and the
// arithmetic decoder with an adaptive model. These readers must tolerate
// any byte sequence — garbage decodes to garbage ids, never past the
// buffer and never into an unbounded loop.
//
//===----------------------------------------------------------------------===//

#include "coder/Arithmetic.h"
#include "coder/RefCoder.h"
#include "support/VarInt.h"

using namespace cjpack;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  if (Size == 0)
    return 0;

  uint8_t NumSchemes =
      static_cast<uint8_t>(RefScheme::MtfTransientsContext) + 1;
  auto Dec = makeRefDecoder(static_cast<RefScheme>(Data[0] % NumSchemes));
  ByteReader R(Data + 1, Size - 1);
  uint32_t NextId = 0;
  while (!R.atEnd() && !R.hasError()) {
    uint32_t Pool = NextId % 8;
    auto Existing = Dec->decode(Pool, NextId % 3, R);
    if (!Existing)
      Dec->registerNew(Pool, NextId % 3, NextId);
    ++NextId;
  }

  std::vector<uint8_t> Bytes(Data, Data + Size);
  ByteReader VU(Bytes);
  while (!VU.atEnd() && !VU.hasError())
    (void)readVarUInt(VU);
  ByteReader VS(Bytes);
  while (!VS.atEnd() && !VS.hasError())
    (void)readVarInt(VS);

  AdaptiveModel Model(64);
  ArithmeticDecoder AD(Bytes);
  for (int I = 0; I < 1024; ++I) {
    uint32_t Sym = AD.decode(Model);
    Model.update(Sym);
  }
  return 0;
}
