//===- fuzz_serve.cpp - fuzz the cjpackd wire protocol --------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Feeds arbitrary bytes to the serve protocol parsers — the surface a
// hostile client controls byte-for-byte. Covers request payload parsing
// (opcode, argument table, varint lengths), response parsing, frame
// length validation on the leading four bytes, and the encode/reparse
// round-trip invariant for every successfully parsed request. Any
// outcome but a typed Error or a faithful round-trip is a bug.
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  using namespace cjpack::serve;
  std::span<const uint8_t> Input(Data, Size);

  // The first four bytes as a frame header: validation must be total.
  if (Size >= 4) {
    uint32_t Len = (static_cast<uint32_t>(Data[0]) << 24) |
                   (static_cast<uint32_t>(Data[1]) << 16) |
                   (static_cast<uint32_t>(Data[2]) << 8) |
                   static_cast<uint32_t>(Data[3]);
    (void)static_cast<bool>(validateFrameLength(Len, MaxRequestPayload));
  }

  // Request payload parsing, then the encode/reparse round-trip: a
  // request the parser accepts must survive re-encoding unchanged.
  if (auto Req = parseRequest(Input)) {
    auto Again = parseRequest(encodeRequest(*Req));
    if (!Again || Again->Op != Req->Op || Again->Args != Req->Args)
      __builtin_trap();
  }

  // Response payload parsing and its round-trip.
  if (auto Resp = parseResponse(Input)) {
    auto Again = parseResponse(encodeResponse(*Resp));
    if (!Again || Again->St != Resp->St || Again->Body != Resp->Body)
      __builtin_trap();
  }
  return 0;
}
