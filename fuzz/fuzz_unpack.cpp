//===- fuzz_unpack.cpp - fuzz the packed-archive decoder ------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Feeds arbitrary bytes to unpackClasses, covering the archive header,
// both wire-format versions, the shared dictionary, the sharded stream
// container, and the full reference/bytecode decode path. Any outcome
// but a clean Expected is a bug.
//
//===----------------------------------------------------------------------===//

#include "pack/Packer.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  std::vector<uint8_t> Bytes(Data, Data + Size);
  cjpack::UnpackOptions Options;
  // One thread keeps iterations deterministic and cheap; tightened
  // limits bound the memory a hostile header can demand per iteration.
  Options.Threads = 1;
  Options.Limits.MaxClasses = 1u << 12;
  Options.Limits.MaxStreamBytes = 1u << 24;
  Options.Limits.MaxInflateBytes = 1u << 26;
  auto Result = cjpack::unpackClasses(Bytes, Options);
  (void)Result; // a typed Error is the expected outcome on garbage
  return 0;
}
