//===- fuzz_lint.cpp - fuzz the whole-archive analyzer --------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Drives analyzeArchive — hierarchy construction, cycle detection,
// reference resolution, and the dead-member/dead-pool reachability
// pass — over hostile input, the same surface `packtool lint` exposes.
// Input that decodes as a packed archive is analyzed as one; anything
// else is parsed as a single classfile and analyzed twice-over (the
// duplicate-class path included). Analysis must be total: diagnostics,
// never crashes, and every diagnostic must format.
//
//===----------------------------------------------------------------------===//

#include "analysis/ArchiveAnalysis.h"
#include "classfile/Reader.h"
#include "pack/Packer.h"

using namespace cjpack;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  std::vector<uint8_t> Bytes(Data, Data + Size);

  std::vector<ClassFile> Classes;
  UnpackOptions Options;
  // One thread keeps iterations deterministic; tightened limits bound
  // what a hostile archive header can allocate per iteration.
  Options.Threads = 1;
  Options.Limits.MaxClasses = 1u << 10;
  Options.Limits.MaxStreamBytes = 1u << 22;
  Options.Limits.MaxInflateBytes = 1u << 24;
  if (auto Unpacked = unpackClasses(Bytes, Options)) {
    Classes = std::move(*Unpacked);
  } else if (auto CF = parseClassFile(Bytes)) {
    // A lone classfile, doubled: the analyzer must survive duplicate
    // internal names (and diagnose them) as well as self-referential
    // hierarchies.
    Classes.push_back(std::move(*CF));
    if (auto Again = parseClassFile(Bytes))
      Classes.push_back(std::move(*Again));
  } else {
    return 0; // neither an archive nor a classfile — nothing to lint
  }

  analysis::ArchiveAnalysisReport R = analysis::analyzeArchive(Classes);
  for (const analysis::Diagnostic &D : R.Diags)
    (void)analysis::formatDiagnostic(D);
  return 0;
}
