//===- fuzz_reader.cpp - fuzz the lazy indexed-archive reader -------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Feeds arbitrary bytes to PackedArchiveReader, covering the version-3
// header, the per-class index frame, the shared dictionary, lazy shard
// setup, and single-class materialization — the whole random-access
// surface that fuzz_unpack (which rejects version 3 at the header) never
// reaches. Exercises both the point lookup and the full sweep so every
// shard decodes. Any outcome but a clean Expected is a bug.
//
//===----------------------------------------------------------------------===//

#include "pack/ArchiveReader.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  cjpack::DecodeLimits Limits;
  // Tightened limits bound the memory a hostile index or stream header
  // can demand per iteration.
  Limits.MaxClasses = 1u << 12;
  Limits.MaxStreamBytes = 1u << 24;
  Limits.MaxInflateBytes = 1u << 26;
  auto Reader = cjpack::PackedArchiveReader::open(Data, Size, Limits);
  if (!Reader)
    return 0; // a typed Error is the expected outcome on garbage
  // One point lookup first (decodes a single shard lazily), then the
  // full sweep; both may fail with typed errors on mutated payloads.
  auto Names = Reader->classNames();
  if (!Names.empty())
    (void)Reader->unpackClass(Names[Names.size() / 2]);
  (void)Reader->unpackAll();
  return 0;
}
