//===- fuzz_backend.cpp - fuzz the compression backend registry -----------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Drives the pluggable compression backends with arbitrary bytes. The
// first input byte selects a backend (values past the registry exercise
// the unknown-id path); the tail is fed to its decompressor, which must
// return a typed Error or a bounded buffer — never crash, over-read, or
// allocate past the declared cap. Whatever it accepts, and the raw tail
// itself, must then survive a compress→decompress round trip on every
// backend byte-identically: the differential oracle that keeps the four
// codecs interchangeable.
//
//===----------------------------------------------------------------------===//

#include "pack/Backend.h"
#include <cstdlib>

using namespace cjpack;

namespace {

/// Declared-raw cap for hostile decompression: bounded, but roomy
/// enough that real seed payloads decode fully.
constexpr size_t FuzzRawCap = 1 << 16;

void roundTripOrDie(const CompressionBackend &B,
                    const std::vector<uint8_t> &Raw) {
  std::vector<uint8_t> Stored = B.Compress(Raw);
  auto Back = B.Decompress(Stored, Raw.size());
  if (!Back || *Back != Raw)
    abort(); // a backend that cannot read its own output is a bug
}

} // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  if (Size == 0)
    return 0;

  std::vector<uint8_t> Tail(Data + 1, Data + Size);
  if (Tail.size() > FuzzRawCap)
    Tail.resize(FuzzRawCap);

  if (const CompressionBackend *B = findBackend(Data[0])) {
    auto Raw = B->Decompress(Tail, FuzzRawCap);
    if (Raw) {
      if (Raw->size() > FuzzRawCap)
        abort(); // decompressor ignored the declared cap
      // Anything a backend decodes must re-encode losslessly.
      roundTripOrDie(*B, *Raw);
    } else if (Raw.code() == ErrorCode::Other) {
      abort(); // decode failure escaped the taxonomy
    }
  }

  for (const CompressionBackend &B : allBackends())
    roundTripOrDie(B, Tail);
  return 0;
}
