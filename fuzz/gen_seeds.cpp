//===- gen_seeds.cpp - seed corpus generator for the fuzz targets ---------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Writes a small, deterministic seed corpus for each fuzz target into
// <outdir>/<target>/: valid packed archives (single- and multi-shard,
// with and without stream compression), classfiles, zip/gzip containers,
// and coder byte streams. Run after changing the wire format, then check
// the regenerated seeds in:
//
//   ./fuzz_seeds fuzz/corpus
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "pack/Backend.h"
#include "pack/Packer.h"
#include "serve/Protocol.h"
#include "zip/ZipFile.h"
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

using namespace cjpack;

namespace {

void writeSeed(const std::filesystem::path &Dir, const std::string &Name,
               const std::vector<uint8_t> &Bytes) {
  std::filesystem::create_directories(Dir);
  std::ofstream Out(Dir / Name, std::ios::binary);
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
  printf("  %s/%s (%zu bytes)\n", Dir.string().c_str(), Name.c_str(),
         Bytes.size());
}

CorpusSpec smallSpec(uint64_t Seed) {
  CorpusSpec Spec;
  Spec.Name = "fuzzseed";
  Spec.Seed = Seed;
  Spec.NumClasses = 6;
  Spec.NumPackages = 2;
  Spec.MeanMethods = 4;
  Spec.MeanFields = 3;
  Spec.MeanStatements = 6;
  return Spec;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc != 2) {
    fprintf(stderr, "usage: %s <outdir>\n", Argv[0]);
    return 1;
  }
  std::filesystem::path Out(Argv[1]);
  std::vector<NamedClass> Classes = generateCorpus(smallSpec(7));

  // fuzz_classfile: a few individual classfiles.
  for (size_t I = 0; I < Classes.size() && I < 3; ++I)
    writeSeed(Out / "fuzz_classfile", "class" + std::to_string(I) + ".bin",
              Classes[I].Data);

  // fuzz_verify: valid classfiles with branches, handlers, and wide
  // values, so mutation starts from code the analyzer fully walks.
  {
    CorpusSpec Spec = smallSpec(11);
    Spec.MeanStatements = 10;
    std::vector<NamedClass> Branchy = generateCorpus(Spec);
    for (size_t I = 0; I < Branchy.size() && I < 3; ++I)
      writeSeed(Out / "fuzz_verify", "class" + std::to_string(I) + ".bin",
                Branchy[I].Data);
  }

  // fuzz_unpack: archives across the wire-format matrix.
  struct {
    const char *Name;
    unsigned Shards;
    bool Compress;
    RefScheme Scheme;
  } Variants[] = {
      {"serial.cjp", 1, true, RefScheme::MtfTransientsContext},
      {"serial_raw.cjp", 1, false, RefScheme::MtfTransientsContext},
      {"sharded.cjp", 3, true, RefScheme::MtfTransientsContext},
      {"simple.cjp", 1, true, RefScheme::Simple},
      {"freq.cjp", 1, true, RefScheme::Freq},
  };
  for (const auto &V : Variants) {
    PackOptions Options;
    Options.Shards = V.Shards;
    Options.CompressStreams = V.Compress;
    Options.Scheme = V.Scheme;
    auto Packed = packClassBytes(Classes, Options);
    if (!Packed) {
      fprintf(stderr, "pack %s failed: %s\n", V.Name,
              Packed.message().c_str());
      return 1;
    }
    writeSeed(Out / "fuzz_unpack", V.Name, Packed->Archive);
  }

  // fuzz_reader: version-3 indexed archives across shard counts and
  // both stream-compression settings, so mutation starts from inputs
  // whose index, dictionary, and blob framing all validate.
  struct {
    const char *Name;
    unsigned Shards;
    bool Compress;
  } IndexedVariants[] = {
      {"indexed_s1.cjp", 1, true},
      {"indexed_s3.cjp", 3, true},
      {"indexed_s3_raw.cjp", 3, false},
  };
  for (const auto &V : IndexedVariants) {
    PackOptions Options;
    Options.Shards = V.Shards;
    Options.CompressStreams = V.Compress;
    Options.RandomAccessIndex = true;
    auto Packed = packClassBytes(Classes, Options);
    if (!Packed) {
      fprintf(stderr, "pack %s failed: %s\n", V.Name,
              Packed.message().c_str());
      return 1;
    }
    writeSeed(Out / "fuzz_reader", V.Name, Packed->Archive);
  }

  // fuzz_zip: stored and deflated jars plus a gzip frame.
  std::vector<ZipEntry> Entries;
  for (size_t I = 0; I < Classes.size() && I < 3; ++I)
    Entries.push_back({Classes[I].Name, Classes[I].Data});
  writeSeed(Out / "fuzz_zip", "deflated.zip",
            writeZip(Entries, ZipMethod::Deflated));
  writeSeed(Out / "fuzz_zip", "stored.zip",
            writeZip(Entries, ZipMethod::Stored));
  writeSeed(Out / "fuzz_zip", "frame.gz", gzipBytes(Classes[0].Data));

  // fuzz_coder: packed stream bytes (scheme selector byte + payload).
  {
    PackOptions Options;
    auto Packed = packClassBytes(Classes, Options);
    if (!Packed) {
      fprintf(stderr, "pack for coder seed failed\n");
      return 1;
    }
    for (uint8_t Scheme = 0; Scheme < 8; Scheme += 3) {
      std::vector<uint8_t> Seed;
      Seed.push_back(Scheme);
      size_t Take = Packed->Archive.size() < 512 ? Packed->Archive.size()
                                                 : size_t(512);
      Seed.insert(Seed.end(), Packed->Archive.begin() + 7,
                  Packed->Archive.begin() +
                      static_cast<std::ptrdiff_t>(Take));
      writeSeed(Out / "fuzz_coder",
                "scheme" + std::to_string(Scheme) + ".bin", Seed);
    }
  }

  // fuzz_backend: backend id byte + that backend's own compressed
  // output for a classfile slice, so mutation starts from blobs every
  // decoder fully walks (Huffman table + bitstream, arithmetic frame,
  // zlib stream, stored run).
  {
    std::vector<uint8_t> Sample(Classes[0].Data.begin(),
                                Classes[0].Data.begin() +
                                    std::min<size_t>(
                                        Classes[0].Data.size(), 1024));
    for (const CompressionBackend &B : allBackends()) {
      std::vector<uint8_t> Seed;
      Seed.push_back(static_cast<uint8_t>(B.Id));
      std::vector<uint8_t> Stored = B.Compress(Sample);
      Seed.insert(Seed.end(), Stored.begin(), Stored.end());
      writeSeed(Out / "fuzz_backend", std::string(B.Name) + ".bin", Seed);
    }
  }

  // fuzz_lint: inputs for the whole-archive analyzer — a packed archive
  // whose corpus exercises inherited refs and seeded dead members, plus
  // a lone classfile for the single-class (duplicate-name) path.
  {
    CorpusSpec Spec = smallSpec(13);
    Spec.PctInheritedRefs = 30;
    Spec.DeadMembersPerClass = 1;
    std::vector<NamedClass> LintClasses = generateCorpus(Spec);
    PackOptions Options;
    auto Packed = packClassBytes(LintClasses, Options);
    if (!Packed) {
      fprintf(stderr, "pack for lint seed failed: %s\n",
              Packed.message().c_str());
      return 1;
    }
    writeSeed(Out / "fuzz_lint", "archive.cjp", Packed->Archive);
    writeSeed(Out / "fuzz_lint", "class0.bin", LintClasses[0].Data);
  }

  // fuzz_serve: encoded wire-protocol requests across the opcode and
  // argument-shape matrix, plus a response payload, so mutation starts
  // from inputs every protocol branch accepts.
  {
    using namespace cjpack::serve;
    struct {
      const char *Name;
      Opcode Op;
      std::vector<std::string> Args;
    } Requests[] = {
        {"ping.bin", Opcode::Ping, {}},
        {"pack.bin", Opcode::Pack, {"/tmp/in.jar", "/tmp/out.cjp"}},
        {"unpack_class.bin",
         Opcode::UnpackClass,
         {"/tmp/app.cjp", "com/example/Main"}},
        {"stat.bin", Opcode::Stat, {"/tmp/app.cjp"}},
        {"metrics.bin", Opcode::Metrics, {}},
        {"empty_arg.bin", Opcode::Verify, {""}},
    };
    for (auto &R : Requests) {
      Request Req;
      Req.Op = R.Op;
      Req.Args = R.Args;
      writeSeed(Out / "fuzz_serve", R.Name, encodeRequest(Req));
    }
    Response Resp = Response::ok("requests 3\ncache_hits 2\n");
    writeSeed(Out / "fuzz_serve", "response_ok.bin",
              encodeResponse(Resp));
    writeSeed(Out / "fuzz_serve", "response_fail.bin",
              encodeResponse(Response::fail(Status::LimitExceeded,
                                            "frame over cap")));
  }
  return 0;
}
