//===- fuzz_verify.cpp - fuzz the flow-analysis verifier ------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Feeds arbitrary bytes through verifyClassBytes. Hostile input must
// never crash the analyzer: a malformed file yields typed diagnostics,
// nothing else. Every diagnostic is also formatted, so the printing
// path sees fuzzed method names and offsets too.
//
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"

using namespace cjpack;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  std::vector<uint8_t> Bytes(Data, Data + Size);
  analysis::VerifyResult R = analysis::verifyClassBytes(Bytes);
  for (const analysis::Diagnostic &D : R.Diags)
    (void)analysis::formatDiagnostic(D);
  return 0;
}
