//===- fuzz_classfile.cpp - fuzz the classfile parser ---------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Parses arbitrary bytes as a classfile; on success, decodes every Code
// attribute's bytecode and round-trips the file through the writer to
// exercise the full parse/encode surface on near-valid inputs.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Instruction.h"
#include "classfile/ClassFile.h"
#include "classfile/Reader.h"
#include "classfile/Writer.h"

using namespace cjpack;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  std::vector<uint8_t> Bytes(Data, Data + Size);
  auto CF = parseClassFile(Bytes);
  if (!CF)
    return 0;
  for (const MemberInfo &M : CF->Methods)
    for (const AttributeInfo &A : M.Attributes)
      if (A.Name == "Code") {
        auto Code = parseCodeAttribute(A, CF->CP);
        if (Code)
          (void)decodeCode(Code->Code);
      }
  (void)writeClassFile(*CF);
  return 0;
}
