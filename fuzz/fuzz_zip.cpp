//===- fuzz_zip.cpp - fuzz the zip and gzip readers -----------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Runs arbitrary bytes through the central-directory zip reader and the
// gzip unwrapper, covering EOCD scanning, offset validation, inflate
// caps, and crc checking.
//
//===----------------------------------------------------------------------===//

#include "zip/ZipFile.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  std::vector<uint8_t> Bytes(Data, Data + Size);
  cjpack::DecodeLimits Limits;
  Limits.MaxInflateBytes = 1u << 26;
  Limits.MaxZipEntries = 1u << 12;
  (void)cjpack::readZip(Bytes, Limits);
  (void)cjpack::gunzipBytes(Bytes, Limits);
  return 0;
}
