//===- applet_delivery.cpp - the paper's motivating scenario ---*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
// The introduction's use case: delivering a Java applet over a slow
// link. This example builds an applet-sized collection of classfiles,
// compares the bytes on the wire for each archive format, models
// transmission time at modem and mobile-link rates, and demonstrates
// eager class loading (§11): because the packed archive orders
// superclasses before subclasses, every class can be defined the moment
// its bytes arrive, with no buffering of the whole archive.
//
//===----------------------------------------------------------------------===//

#include "classfile/Reader.h"
#include "corpus/Corpus.h"
#include "jazz/Jazz.h"
#include "pack/ClassOrder.h"
#include "pack/Packer.h"
#include "zip/Jar.h"
#include <cstdio>
#include <set>

using namespace cjpack;

namespace {

void transmissionRow(const char *Label, size_t Bytes) {
  // 28.8 kbit/s modem and a 9.6 kbit/s mobile link (1999-era GSM data).
  double ModemSec = Bytes * 8.0 / 28800.0;
  double MobileSec = Bytes * 8.0 / 9600.0;
  printf("  %-12s %8zu bytes   %6.1f s @28.8k   %6.1f s @9.6k\n", Label,
         Bytes, ModemSec, MobileSec);
}

} // namespace

int main() {
  // An applet like the paper's Hanoi demo: a few dozen classes.
  CorpusSpec Spec = paperBenchmark("Hanoi", 1.0);
  std::vector<NamedClass> Classes = generateCorpus(Spec);
  printf("applet: %zu classes, %zu bytes of classfiles\n\n",
         Classes.size(), totalClassBytes(Classes));

  auto Packed = packClassBytes(Classes, PackOptions());
  auto Jazz = jazzPackBytes(Classes);
  if (!Packed || !Jazz) {
    fprintf(stderr, "pack failed\n");
    return 1;
  }

  printf("bytes on the wire, and transmission time:\n");
  transmissionRow("jar", buildJar(Classes).size());
  transmissionRow("j0r.gz", buildJ0rGz(Classes).size());
  transmissionRow("Jazz", Jazz->size());
  transmissionRow("packed", Packed->Archive.size());

  // Eager class loading: walk the archive in order and "define" each
  // class, checking its supertypes are already defined (or external).
  auto Restored = unpackClasses(Packed->Archive);
  if (!Restored) {
    fprintf(stderr, "unpack failed: %s\n", Restored.message().c_str());
    return 1;
  }
  printf("\neager class loading (par. 11): defining classes as their\n"
         "bytes arrive...\n");
  std::set<std::string, std::less<>> Defined;
  size_t Loadable = 0;
  for (const ClassFile &CF : *Restored) {
    auto Available = [&](std::string_view Name) {
      // A supertype is available if already defined from this archive
      // or not part of the archive at all (e.g. java/lang/Object).
      if (Defined.count(Name))
        return true;
      for (const ClassFile &Other : *Restored)
        if (Other.thisClassName() == Name)
          return false;
      return true;
    };
    bool Ok = CF.SuperClass == 0 || Available(CF.superClassName());
    for (uint16_t I : CF.Interfaces)
      Ok = Ok && Available(CF.CP.className(I));
    if (!Ok) {
      printf("  %s arrived before its supertypes — would block!\n",
             std::string(CF.thisClassName()).c_str());
      return 1;
    }
    Defined.emplace(CF.thisClassName());
    ++Loadable;
  }
  printf("  all %zu classes were defineClass-able on arrival\n",
         Loadable);
  printf("  (isEagerLoadable: %s)\n",
         isEagerLoadable(*Restored) ? "yes" : "no");
  return 0;
}
