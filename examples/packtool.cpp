//===- packtool.cpp - a command-line pack/unpack tool ----------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
// A small production-style CLI over the library:
//
//   packtool pack <in.jar|in.zip> <out.cjp>   pack a jar's classfiles
//   packtool unpack <in.cjp> <out.jar>        unpack to a stored jar
//   packtool list <in.cjp>                    list a v3 archive's classes
//   packtool unpack-class <in.cjp> <name>     extract one class lazily
//   packtool info <in.cjp|in.jar>             describe an archive
//   packtool verify <in.class|jar|cjp>        run the bytecode verifier
//   packtool lint <in.class|jar|cjp>          whole-archive static analysis
//   packtool stats <in.cjp|in.jar> [--json]   per-stream composition
//   packtool tune <in.jar> <out.cjp>          per-stream backend tournament
//   packtool client <socket|port> <cmd> ...   drive a running cjpackd
//   packtool selftest <out-dir>               write a demo jar + archive
//
// `--threads N` (anywhere on the command line) packs into N shards
// encoded on N worker threads, and unpacks sharded archives on N
// threads. The default (1) writes the classic single-shard format.
// `--shards=N` overrides the shard count independently of the worker
// count; `--shards=auto` lets the library pick from the class count
// and hardware concurrency (autoShardCount), which trades
// cross-machine reproducibility for scaling on big inputs.
//
// `--indexed` on pack/stats writes the version-3 random-access layout
// (per-class index + independently compressed shard blobs). `list` and
// `unpack-class` require a version-3 archive — they memory-map it and
// touch only the index (list) or one shard's blob (unpack-class);
// unpack/info/verify/stats accept any version.
//
// `--backend=<name>` on pack/stats selects the final compression stage
// (store, zlib, huffman, arith); `tune` packs once per backend and
// repacks with the winning backend per stream. `--tune-for=size`
// (default) scores by packed bytes alone; `speed` and `balanced` fold
// each backend's measured encode+decode cost into the score, trading
// bytes for cheaper round-trips (machine-dependent output).
//
// `--verify[=warn|strict]` on pack lints every classfile with the
// flow analyzer first: warn (the default) reports diagnostics and
// packs anyway, strict refuses to pack a flagged input. The standalone
// `verify` command exits nonzero on any diagnostic unless --warn; on
// whole-archive inputs it builds the class hierarchy first so joins
// track least-common-superclass reference types.
//
// `lint` resolves every member reference against the archive's class
// hierarchy and reports cycles, missing ancestors, duplicate classes,
// and dangling/ambiguous/kind-mismatched references, plus counts of
// unreferenced private members and dead constant-pool entries. `--json`
// emits a machine-readable report; `--strict` exits nonzero on any
// structural diagnostic (dead weight never affects the exit code).
//
// `--strip-unreferenced` on pack drops those dead private members (and
// their pool entries) before encoding; the result is gated by a
// restore-then-verify pass in the library and pack fails loudly if the
// stripped archive does not restore cleanly.
//
// Non-class members of the input jar are carried in a side jar, as §12
// prescribes (the packed format handles classfiles only).
//
//===----------------------------------------------------------------------===//

#include "analysis/ArchiveAnalysis.h"
#include "analysis/Verifier.h"
#include "classfile/Reader.h"
#include "classfile/Writer.h"
#include "corpus/Corpus.h"
#include "pack/ArchiveReader.h"
#include "pack/Model.h"
#include "pack/Packer.h"
#include "pack/Stats.h"
#include "serve/Client.h"
#include "support/InputFile.h"
#include "zip/Jar.h"
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

using namespace cjpack;

namespace {

/// Worker-thread count from --threads (also the pack shard count
/// unless --shards overrides it).
unsigned NumThreads = 1;

/// Shard count from --shards: -1 follows --threads, 0 is auto
/// (PackOptions::Shards = 0), positive is an explicit count.
int ShardsOpt = -1;

/// The pack shard count the command line asked for.
unsigned shardCount() {
  return ShardsOpt < 0 ? NumThreads : static_cast<unsigned>(ShardsOpt);
}

/// --indexed: pack/stats write the version-3 random-access layout.
bool Indexed = false;

/// Pre-pack lint mode from --verify[=warn|strict].
enum class LintMode { Off, Warn, Strict };
LintMode Lint = LintMode::Off;

/// Final-stage compression backend from --backend=<name>.
BackendId PackBackend = BackendId::Zlib;

/// --strip-unreferenced: pack drops dead private members pre-encode.
bool StripUnreferenced = false;

/// --tune-for=<goal>: what the tune tournament optimizes per stream.
/// Size is the historical pure-bytes winner (deterministic across
/// machines); speed and balanced fold measured per-backend encode +
/// decode cost into the score, so their output depends on the machine
/// that ran the tournament.
enum class TuneGoal { Size, Speed, Balanced };
TuneGoal TuneFor = TuneGoal::Size;

bool readFile(const std::string &Path, std::vector<uint8_t> &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  Out.assign(std::istreambuf_iterator<char>(In),
             std::istreambuf_iterator<char>());
  return true;
}

bool writeFile(const std::string &Path, const std::vector<uint8_t> &Data) {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return false;
  Out.write(reinterpret_cast<const char *>(Data.data()),
            static_cast<std::streamsize>(Data.size()));
  return static_cast<bool>(Out);
}

bool isClassName(const std::string &Name) {
  return Name.size() > 6 &&
         Name.compare(Name.size() - 6, 6, ".class") == 0;
}

/// Unpacks an archive of any format version into named classfiles via
/// the library's version dispatch (cjpack::unpackAnyArchive), on the
/// command line's worker count.
Expected<std::vector<NamedClass>>
unpackAnyArchive(const std::vector<uint8_t> &Bytes) {
  UnpackOptions Options;
  Options.Threads = NumThreads;
  return cjpack::unpackAnyArchive(Bytes, Options);
}

/// Verifies one classfile, printing each diagnostic; returns the count.
size_t verifyOneClass(const std::string &Name,
                      const std::vector<uint8_t> &Data) {
  analysis::VerifyResult R = analysis::verifyClassBytes(Data);
  for (const analysis::Diagnostic &D : R.Diags)
    fprintf(stderr, "packtool: %s: %s\n", Name.c_str(),
            analysis::formatDiagnostic(D).c_str());
  return R.Diags.size();
}

/// Parses \p Classes, reporting parse failures as diagnostics into
/// \p Diags (stamped with the source name); parsed classes land in
/// \p Parsed with their source names parallel in \p Names.
void parseClassSet(const std::vector<NamedClass> &Classes,
                   std::vector<ClassFile> &Parsed,
                   std::vector<std::string> &Names,
                   std::vector<analysis::Diagnostic> &Diags) {
  for (const NamedClass &C : Classes) {
    auto CF = parseClassFile(C.Data);
    if (!CF) {
      Diags.push_back({analysis::DiagKind::MalformedCode, C.Name,
                       analysis::NoOffset,
                       "classfile does not parse: " + CF.message()});
      continue;
    }
    Parsed.push_back(std::move(*CF));
    Names.push_back(C.Name);
  }
}

/// Whole-archive verification: builds the class hierarchy over every
/// parseable class so reference joins track least-common-superclass
/// types, then verifies each class. Prints diagnostics; returns the
/// total count.
size_t verifyClassSet(const std::vector<NamedClass> &Classes) {
  std::vector<ClassFile> Parsed;
  std::vector<std::string> Names;
  std::vector<analysis::Diagnostic> ParseDiags;
  parseClassSet(Classes, Parsed, Names, ParseDiags);
  size_t NumDiags = ParseDiags.size();
  for (const analysis::Diagnostic &D : ParseDiags)
    fprintf(stderr, "packtool: %s: %s\n", D.Method.c_str(),
            analysis::formatDiagnostic(D).c_str());
  analysis::ClassHierarchy H = analysis::ClassHierarchy::build(Parsed);
  for (size_t K = 0; K < Parsed.size(); ++K) {
    analysis::VerifyResult R = analysis::verifyClass(Parsed[K], &H);
    for (const analysis::Diagnostic &D : R.Diags)
      fprintf(stderr, "packtool: %s: %s\n", Names[K].c_str(),
              analysis::formatDiagnostic(D).c_str());
    NumDiags += R.Diags.size();
  }
  return NumDiags;
}

/// Loads every classfile of a .class / .jar / .cjp input as named raw
/// bytes. Prints a message and returns false on a hard error.
bool loadClassInputs(const std::string &InPath,
                     const std::vector<uint8_t> &Bytes,
                     std::vector<NamedClass> &Out) {
  if (Bytes.size() >= 4 && Bytes[0] == 0xCA && Bytes[1] == 0xFE &&
      Bytes[2] == 0xBA && Bytes[3] == 0xBE) {
    NamedClass C;
    C.Name = InPath;
    C.Data = Bytes;
    Out.push_back(std::move(C));
    return true;
  }
  if (Bytes.size() >= 4 && Bytes[0] == 'C' && Bytes[1] == 'J') {
    auto Classes = unpackAnyArchive(Bytes);
    if (!Classes) {
      fprintf(stderr, "packtool: %s\n", Classes.message().c_str());
      return false;
    }
    Out = std::move(*Classes);
    return true;
  }
  auto Entries = readZip(Bytes);
  if (!Entries) {
    fprintf(stderr,
            "packtool: %s is neither a classfile, a packed archive, "
            "nor a zip\n",
            InPath.c_str());
    return false;
  }
  for (ZipEntry &E : *Entries)
    if (isClassName(E.Name))
      Out.push_back(std::move(E));
  return true;
}

int cmdPack(const std::string &InPath, const std::string &OutPath) {
  std::vector<uint8_t> Bytes;
  if (!readFile(InPath, Bytes)) {
    fprintf(stderr, "packtool: cannot read %s\n", InPath.c_str());
    return 1;
  }
  auto Entries = readZip(Bytes);
  if (!Entries) {
    fprintf(stderr, "packtool: %s: %s\n", InPath.c_str(),
            Entries.message().c_str());
    return 1;
  }
  std::vector<NamedClass> Classes;
  std::vector<ZipEntry> Others;
  for (ZipEntry &E : *Entries) {
    if (isClassName(E.Name))
      Classes.push_back(std::move(E));
    else
      Others.push_back(std::move(E));
  }
  if (Lint != LintMode::Off) {
    size_t NumDiags = 0;
    for (const NamedClass &C : Classes)
      NumDiags += verifyOneClass(C.Name, C.Data);
    if (NumDiags != 0 && Lint == LintMode::Strict) {
      fprintf(stderr,
              "packtool: %zu verifier diagnostics; refusing to pack "
              "(--verify=strict)\n",
              NumDiags);
      return 1;
    }
  }
  PackOptions Options;
  Options.Shards = shardCount();
  Options.Threads = NumThreads;
  Options.RandomAccessIndex = Indexed;
  Options.Backend = PackBackend;
  Options.StripUnreferenced = StripUnreferenced;
  auto Packed = packClassBytes(Classes, Options);
  if (!Packed) {
    fprintf(stderr, "packtool: %s\n", Packed.message().c_str());
    return 1;
  }
  if (!writeFile(OutPath, Packed->Archive)) {
    fprintf(stderr, "packtool: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  printf("%s: %zu classes, %zu -> %zu bytes (%.0f%%)\n", OutPath.c_str(),
         Classes.size(), Bytes.size(), Packed->Archive.size(),
         100.0 * Packed->Archive.size() / Bytes.size());
  if (StripUnreferenced)
    printf("stripped %zu dead fields, %zu dead methods (restore "
           "verified)\n",
           Packed->StrippedFields, Packed->StrippedMethods);
  if (!Others.empty()) {
    std::string SidePath = OutPath + ".resources.jar";
    writeFile(SidePath, writeZip(Others, ZipMethod::Deflated));
    printf("%zu non-class members written to %s\n", Others.size(),
           SidePath.c_str());
  }
  return 0;
}

int cmdUnpack(const std::string &InPath, const std::string &OutPath) {
  std::vector<uint8_t> Bytes;
  if (!readFile(InPath, Bytes)) {
    fprintf(stderr, "packtool: cannot read %s\n", InPath.c_str());
    return 1;
  }
  auto Classes = unpackAnyArchive(Bytes);
  if (!Classes) {
    fprintf(stderr, "packtool: %s\n", Classes.message().c_str());
    return 1;
  }
  if (!writeFile(OutPath, writeZip(*Classes, ZipMethod::Deflated))) {
    fprintf(stderr, "packtool: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  printf("%s: %zu classes, %zu bytes\n", OutPath.c_str(),
         Classes->size(), totalClassBytes(*Classes));
  return 0;
}

/// Opens \p Path as a memory-mapped version-3 archive. Prints the
/// failure and returns false when the file is unreadable or not an
/// indexed archive. The InputFile must outlive the reader (it owns the
/// mapped bytes).
bool openIndexed(const std::string &Path, InputFile &File,
                 Expected<PackedArchiveReader> &Reader) {
  auto F = InputFile::open(Path);
  if (!F) {
    fprintf(stderr, "packtool: %s\n", F.message().c_str());
    return false;
  }
  File = std::move(*F);
  Reader = PackedArchiveReader::open(File.data(), File.size());
  if (!Reader) {
    fprintf(stderr, "packtool: %s: %s\n", Path.c_str(),
            Reader.message().c_str());
    return false;
  }
  return true;
}

int cmdList(const std::string &InPath) {
  InputFile File;
  Expected<PackedArchiveReader> Reader = Error::failure("unopened");
  if (!openIndexed(InPath, File, Reader))
    return 1;
  // Names come straight off the uncompressed index: no stream is
  // inflated, no class decoded.
  for (const auto &E : Reader->index().Classes)
    printf("%6zu  %s\n", static_cast<size_t>(E.Shard), E.Name.c_str());
  printf("%s: %zu classes in %zu shards, %zu bytes%s\n", InPath.c_str(),
         Reader->classCount(), Reader->shardCount(), File.size(),
         File.isMapped() ? " (mapped)" : "");
  return 0;
}

int cmdUnpackClass(const std::string &InPath, const std::string &Name,
                   const std::string &OutPath) {
  InputFile File;
  Expected<PackedArchiveReader> Reader = Error::failure("unopened");
  if (!openIndexed(InPath, File, Reader))
    return 1;
  auto CF = Reader->unpackClass(Name);
  if (!CF) {
    fprintf(stderr, "packtool: %s\n", CF.message().c_str());
    return 1;
  }
  std::string Out = OutPath;
  if (Out.empty()) {
    // Default to the simple class name in the working directory.
    size_t Slash = Name.find_last_of('/');
    Out = (Slash == std::string::npos ? Name : Name.substr(Slash + 1)) +
          ".class";
  }
  std::vector<uint8_t> Data = writeClassFile(*CF);
  if (!writeFile(Out, Data)) {
    fprintf(stderr, "packtool: cannot write %s\n", Out.c_str());
    return 1;
  }
  printf("%s: %zu bytes (inflated %llu of %zu archive bytes)\n",
         Out.c_str(), Data.size(),
         static_cast<unsigned long long>(Reader->inflatedBytes()),
         File.size());
  return 0;
}

int cmdInfo(const std::string &InPath) {
  std::vector<uint8_t> Bytes;
  if (!readFile(InPath, Bytes)) {
    fprintf(stderr, "packtool: cannot read %s\n", InPath.c_str());
    return 1;
  }
  if (Bytes.size() >= 4 && Bytes[0] == 'C' && Bytes[1] == 'J') {
    auto Classes = unpackAnyArchive(Bytes);
    if (!Classes) {
      fprintf(stderr, "packtool: %s\n", Classes.message().c_str());
      return 1;
    }
    printf("%s: packed archive, %zu bytes, %zu classes\n",
           InPath.c_str(), Bytes.size(), Classes->size());
    for (const NamedClass &C : *Classes)
      printf("  %8zu  %s\n", C.Data.size(), C.Name.c_str());
    return 0;
  }
  auto Entries = readZip(Bytes);
  if (!Entries) {
    fprintf(stderr, "packtool: %s is neither a packed archive nor a "
                    "zip\n",
            InPath.c_str());
    return 1;
  }
  printf("%s: zip archive, %zu bytes, %zu members\n", InPath.c_str(),
         Bytes.size(), Entries->size());
  for (const ZipEntry &E : *Entries)
    printf("  %8zu  %s\n", E.Data.size(), E.Name.c_str());
  return 0;
}

int cmdVerify(const std::vector<std::string> &Args) {
  bool WarnOnly = false;
  std::string InPath;
  for (size_t I = 1; I < Args.size(); ++I) {
    if (Args[I] == "--warn")
      WarnOnly = true;
    else if (Args[I] == "--strict")
      WarnOnly = false;
    else
      InPath = Args[I];
  }
  if (InPath.empty()) {
    fprintf(stderr, "usage: packtool verify [--warn] <in.class|jar|cjp>\n");
    return 2;
  }
  std::vector<uint8_t> Bytes;
  if (!readFile(InPath, Bytes)) {
    fprintf(stderr, "packtool: cannot read %s\n", InPath.c_str());
    return 1;
  }
  std::vector<NamedClass> Classes;
  if (!loadClassInputs(InPath, Bytes, Classes))
    return 1;
  size_t NumDiags = verifyClassSet(Classes);
  printf("%s: %zu classes verified, %zu diagnostics\n", InPath.c_str(),
         Classes.size(), NumDiags);
  return (NumDiags == 0 || WarnOnly) ? 0 : 1;
}

/// Escapes \p S for a JSON string literal.
void printJsonString(FILE *Out, const std::string &S) {
  fputc('"', Out);
  for (char C : S) {
    if (C == '"' || C == '\\')
      fprintf(Out, "\\%c", C);
    else if (static_cast<unsigned char>(C) < 0x20)
      fprintf(Out, "\\u%04x", C);
    else
      fputc(C, Out);
  }
  fputc('"', Out);
}

/// `packtool lint`: whole-archive static analysis. Structural findings
/// (cycles, missing ancestors, duplicates, unresolvable references)
/// print as diagnostics and, under --strict, fail the exit code; dead
/// members and dead pool entries are reported as counts only — they are
/// a size opportunity for --strip-unreferenced, not defects.
int cmdLint(const std::vector<std::string> &Args) {
  bool Json = false;
  bool Strict = false;
  std::string InPath;
  for (size_t I = 1; I < Args.size(); ++I) {
    if (Args[I] == "--json")
      Json = true;
    else if (Args[I] == "--strict")
      Strict = true;
    else
      InPath = Args[I];
  }
  if (InPath.empty()) {
    fprintf(stderr,
            "usage: packtool lint [--json] [--strict] <in.class|jar|cjp>\n");
    return 2;
  }
  std::vector<uint8_t> Bytes;
  if (!readFile(InPath, Bytes)) {
    fprintf(stderr, "packtool: cannot read %s\n", InPath.c_str());
    return 1;
  }
  std::vector<NamedClass> Classes;
  if (!loadClassInputs(InPath, Bytes, Classes))
    return 1;
  std::vector<ClassFile> Parsed;
  std::vector<std::string> Names;
  std::vector<analysis::Diagnostic> Diags;
  parseClassSet(Classes, Parsed, Names, Diags);
  analysis::ArchiveAnalysisReport Report = analysis::analyzeArchive(Parsed);
  Diags.insert(Diags.end(), Report.Diags.begin(), Report.Diags.end());

  if (Json) {
    printf("{\n  \"source\": ");
    printJsonString(stdout, InPath);
    printf(",\n  \"classes\": %zu,\n", Report.ClassesAnalyzed);
    printf("  \"refs\": {\"checked\": %zu, \"resolved\": %zu, "
           "\"external\": %zu},\n",
           Report.RefsChecked, Report.RefsResolved, Report.RefsExternal);
    printf("  \"dead_members\": %zu,\n  \"dead_pool_entries\": %zu,\n",
           Report.DeadMembers.size(), Report.DeadPoolEntries);
    printf("  \"diagnostics\": [");
    for (size_t K = 0; K < Diags.size(); ++K) {
      const analysis::Diagnostic &D = Diags[K];
      printf("%s\n    {\"kind\": \"%s\", \"context\": ", K ? "," : "",
             analysis::diagKindName(D.Kind));
      printJsonString(stdout, D.Method);
      printf(", \"offset\": ");
      if (D.Offset == analysis::NoOffset)
        printf("null");
      else
        printf("%u", D.Offset);
      printf(", \"message\": ");
      printJsonString(stdout, D.Message);
      printf("}");
    }
    printf("%s],\n  \"clean\": %s\n}\n", Diags.empty() ? "" : "\n  ",
           Diags.empty() ? "true" : "false");
  } else {
    for (const analysis::Diagnostic &D : Diags)
      fprintf(stderr, "packtool: %s\n",
              analysis::formatDiagnostic(D).c_str());
    printf("%s: %zu classes, %zu refs (%zu resolved, %zu external), "
           "%zu diagnostics\n",
           InPath.c_str(), Report.ClassesAnalyzed, Report.RefsChecked,
           Report.RefsResolved, Report.RefsExternal, Diags.size());
    if (!Report.DeadMembers.empty() || Report.DeadPoolEntries != 0)
      printf("  %zu unreferenced private members, %zu dead constant-pool "
             "entries (pack --strip-unreferenced removes them)\n",
             Report.DeadMembers.size(), Report.DeadPoolEntries);
  }
  return (Strict && !Diags.empty()) ? 1 : 0;
}

/// Prints the per-stream composition table shared by both stats inputs.
void printStreamTable(const StreamSizes &Sizes, bool HaveItems) {
  printf("  %-18s %-8s %10s %10s%s\n", "stream", "category", "raw",
         "packed", HaveItems ? "      items" : "");
  for (unsigned I = 0; I < NumStreams; ++I) {
    StreamId Id = static_cast<StreamId>(I);
    if (Sizes.Raw[I] == 0 && Sizes.Packed[I] == 0 && Sizes.Items[I] == 0)
      continue;
    printf("  %-18s %-8s %10zu %10zu", streamName(Id),
           streamCategoryName(streamCategory(Id)), Sizes.Raw[I],
           Sizes.Packed[I]);
    if (HaveItems)
      printf(" %10llu", static_cast<unsigned long long>(Sizes.Items[I]));
    printf("\n");
  }
  printf("  %-18s %-8s %10zu %10zu", "total", "", Sizes.totalRaw(),
         Sizes.totalPacked());
  if (HaveItems)
    printf(" %10llu", static_cast<unsigned long long>(Sizes.totalItems()));
  printf("\n");
  size_t Packed = Sizes.totalPacked();
  if (Packed != 0) {
    printf("  composition:");
    for (StreamCategory C :
         {StreamCategory::Strings, StreamCategory::Opcodes,
          StreamCategory::Ints, StreamCategory::Refs, StreamCategory::Misc})
      printf(" %s %.1f%%", streamCategoryName(C),
             100.0 * Sizes.packedOf(C) / Packed);
    printf("\n");
  }
}

/// Prints the per-backend packed-byte accounting when any stream used a
/// non-default backend (or a non-zlib archive code is advertised).
void printBackendLine(const ArchiveStats &Stats) {
  printf("  backend %s:", archiveBackendCodeName(Stats.BackendCode));
  for (unsigned B = 0; B < NumBackends; ++B)
    if (Stats.BackendStreams[B] != 0)
      printf(" %s %zu bytes/%zu streams",
             backendName(static_cast<BackendId>(B)), Stats.BackendPacked[B],
             Stats.BackendStreams[B]);
  printf("\n");
}

/// Emits the machine-readable stats document. The schema is documented
/// in the README; bench tooling consumes the same shape.
void printStatsJson(FILE *Out, const std::string &Source,
                    const ArchiveStats &Stats, const StreamSizes &Sizes,
                    bool HaveItems, const PackResult *Packed,
                    size_t InputBytes) {
  fprintf(Out, "{\n  \"source\": \"%s\",\n  \"kind\": \"%s\",\n",
          Source.c_str(), Packed ? "jar" : "archive");
  fprintf(Out, "  \"version\": %u,\n  \"scheme\": \"%s\",\n",
          Stats.Version, refSchemeName(Stats.Scheme));
  fprintf(Out,
          "  \"flags\": {\"collapse_opcodes\": %s, \"compress_streams\": "
          "%s, \"preload\": %s},\n",
          Stats.CollapseOpcodes ? "true" : "false",
          Stats.CompressStreams ? "true" : "false",
          Stats.PreloadStandardRefs ? "true" : "false");
  fprintf(Out, "  \"shards\": %zu,\n  \"archive_bytes\": %zu,\n",
          Stats.Shards, Stats.ArchiveBytes);
  fprintf(Out, "  \"backend\": \"%s\",\n  \"backends\": [",
          archiveBackendCodeName(Stats.BackendCode));
  bool FirstBackend = true;
  for (unsigned B = 0; B < NumBackends; ++B) {
    if (Stats.BackendStreams[B] == 0)
      continue;
    fprintf(Out, "%s\n    {\"name\": \"%s\", \"packed\": %zu, "
                 "\"streams\": %zu}",
            FirstBackend ? "" : ",", backendName(static_cast<BackendId>(B)),
            Stats.BackendPacked[B], Stats.BackendStreams[B]);
    FirstBackend = false;
  }
  fprintf(Out, "\n  ],\n");
  fprintf(Out,
          "  \"header_bytes\": %zu,\n  \"index_bytes\": %zu,\n"
          "  \"indexed_classes\": %zu,\n  \"dictionary_bytes\": %zu,\n"
          "  \"dictionary_entries\": %zu,\n",
          Stats.HeaderBytes, Stats.IndexBytes, Stats.IndexedClasses,
          Stats.DictionaryBytes, Stats.DictionaryEntries);
  if (Packed) {
    fprintf(Out, "  \"input_bytes\": %zu,\n  \"class_count\": %zu,\n",
            InputBytes, Packed->ClassCount);
    const PhaseTimes &P = Packed->Trace.Phases;
    fprintf(Out,
            "  \"phases\": {\"parse_s\": %.6f, \"model_s\": %.6f, "
            "\"emit_s\": %.6f, \"deflate_s\": %.6f},\n",
            P.ParseSec, P.ModelSec, P.EmitSec, P.DeflateSec);
    fprintf(Out, "  \"shard_times\": [");
    for (size_t K = 0; K < Packed->Trace.Shards.size(); ++K) {
      const ShardTimes &S = Packed->Trace.Shards[K];
      fprintf(Out,
              "%s\n    {\"shard\": %zu, \"classes\": %zu, "
              "\"model_s\": %.6f, \"emit_s\": %.6f}",
              K ? "," : "", S.Shard, S.Classes, S.ModelSec, S.EmitSec);
    }
    fprintf(Out, "\n  ],\n  \"coder\": [");
    bool First = true;
    for (const auto &[Pool, T] : Packed->Trace.Coder.pools()) {
      fprintf(Out,
              "%s\n    {\"pool\": \"%s\", \"refs\": %llu, \"defs\": "
              "%llu}",
              First ? "" : ",",
              Pool < NumPoolKinds ? poolName(static_cast<PoolKind>(Pool))
                                  : "?",
              static_cast<unsigned long long>(T.Refs),
              static_cast<unsigned long long>(T.Defs));
      First = false;
    }
    fprintf(Out, "\n  ],\n");
  }
  fprintf(Out, "  \"streams\": [");
  bool First = true;
  for (unsigned I = 0; I < NumStreams; ++I) {
    StreamId Id = static_cast<StreamId>(I);
    fprintf(Out,
            "%s\n    {\"name\": \"%s\", \"category\": \"%s\", \"raw\": "
            "%zu, \"packed\": %zu",
            First ? "" : ",", streamName(Id),
            streamCategoryName(streamCategory(Id)), Sizes.Raw[I],
            Sizes.Packed[I]);
    if (HaveItems)
      fprintf(Out, ", \"items\": %llu",
              static_cast<unsigned long long>(Sizes.Items[I]));
    fprintf(Out, "}");
    First = false;
  }
  fprintf(Out, "\n  ],\n  \"categories\": {");
  First = true;
  for (StreamCategory C :
       {StreamCategory::Strings, StreamCategory::Opcodes,
        StreamCategory::Ints, StreamCategory::Refs, StreamCategory::Misc}) {
    fprintf(Out, "%s\"%s\": %zu", First ? "" : ", ",
            streamCategoryName(C), Sizes.packedOf(C));
    First = false;
  }
  fprintf(Out, "}\n}\n");
}

int cmdStats(const std::vector<std::string> &Args) {
  bool Json = false;
  std::string InPath;
  for (size_t I = 1; I < Args.size(); ++I) {
    if (Args[I] == "--json")
      Json = true;
    else
      InPath = Args[I];
  }
  if (InPath.empty()) {
    fprintf(stderr, "usage: packtool stats <in.cjp|in.jar> [--json]\n");
    return 2;
  }
  std::vector<uint8_t> Bytes;
  if (!readFile(InPath, Bytes)) {
    fprintf(stderr, "packtool: cannot read %s\n", InPath.c_str());
    return 1;
  }

  if (Bytes.size() >= 4 && Bytes[0] == 'C' && Bytes[1] == 'J') {
    // Existing archive: read the composition off the wire. No item
    // counts — those are encoder telemetry, not wire data.
    auto Stats = statPackedArchive(Bytes);
    if (!Stats) {
      fprintf(stderr, "packtool: %s\n", Stats.message().c_str());
      return 1;
    }
    if (Json) {
      printStatsJson(stdout, InPath, *Stats, Stats->Sizes,
                     /*HaveItems=*/false, /*Packed=*/nullptr, 0);
      return 0;
    }
    printf("%s: version %u, scheme %s, %zu shard%s, %zu bytes\n",
           InPath.c_str(), Stats->Version, refSchemeName(Stats->Scheme),
           Stats->Shards, Stats->Shards == 1 ? "" : "s",
           Stats->ArchiveBytes);
    printf("  header %zu bytes, dictionary %zu bytes (%zu entries)\n",
           Stats->HeaderBytes, Stats->DictionaryBytes,
           Stats->DictionaryEntries);
    if (Stats->Version == FormatVersionIndexed)
      printf("  index %zu bytes (%zu classes)\n", Stats->IndexBytes,
             Stats->IndexedClasses);
    printBackendLine(*Stats);
    printStreamTable(Stats->Sizes, /*HaveItems=*/false);
    return 0;
  }

  // A jar: pack it in memory and report the full pack-time telemetry
  // (stream items, phase times, per-shard timings, coder tallies).
  auto Entries = readZip(Bytes);
  if (!Entries) {
    fprintf(stderr,
            "packtool: %s is neither a packed archive nor a zip\n",
            InPath.c_str());
    return 1;
  }
  std::vector<NamedClass> Classes;
  for (ZipEntry &E : *Entries)
    if (isClassName(E.Name))
      Classes.push_back(std::move(E));
  PackOptions Options;
  Options.Shards = shardCount();
  Options.Threads = NumThreads;
  Options.RandomAccessIndex = Indexed;
  Options.Backend = PackBackend;
  auto Packed = packClassBytes(Classes, Options);
  if (!Packed) {
    fprintf(stderr, "packtool: %s\n", Packed.message().c_str());
    return 1;
  }
  auto Stats = statPackedArchive(Packed->Archive);
  if (!Stats) {
    fprintf(stderr, "packtool: %s\n", Stats.message().c_str());
    return 1;
  }
  // Report the encoder's accounting (it includes item counts); the
  // wire-level walk above contributes the framing figures and is the
  // cross-check that both agree.
  if (Json) {
    printStatsJson(stdout, InPath, *Stats, Packed->Sizes,
                   /*HaveItems=*/true, &*Packed, Bytes.size());
    return 0;
  }
  printf("%s: %zu classes, %zu -> %zu bytes (%.0f%%)\n", InPath.c_str(),
         Packed->ClassCount, Bytes.size(), Packed->Archive.size(),
         100.0 * Packed->Archive.size() / Bytes.size());
  printf("  version %u, scheme %s, %zu shard%s\n", Stats->Version,
         refSchemeName(Stats->Scheme), Stats->Shards,
         Stats->Shards == 1 ? "" : "s");
  printf("  header %zu bytes, dictionary %zu bytes (%zu entries)\n",
         Stats->HeaderBytes, Stats->DictionaryBytes,
         Stats->DictionaryEntries);
  if (Stats->Version == FormatVersionIndexed)
    printf("  index %zu bytes (%zu classes)\n", Stats->IndexBytes,
           Stats->IndexedClasses);
  printBackendLine(*Stats);
  printStreamTable(Packed->Sizes, /*HaveItems=*/true);
  const PhaseTimes &P = Packed->Trace.Phases;
  printf("  phases: parse %.3fs, model %.3fs, emit %.3fs, deflate "
         "%.3fs\n",
         P.ParseSec, P.ModelSec, P.EmitSec, P.DeflateSec);
  for (const ShardTimes &S : Packed->Trace.Shards)
    printf("  shard %zu: %zu classes, model %.3fs, emit %.3fs\n",
           S.Shard, S.Classes, S.ModelSec, S.EmitSec);
  if (!Packed->Trace.Coder.pools().empty()) {
    printf("  coder:");
    for (const auto &[Pool, T] : Packed->Trace.Coder.pools())
      printf(" %s %llu/%llu",
             Pool < NumPoolKinds ? poolName(static_cast<PoolKind>(Pool))
                                 : "?",
             static_cast<unsigned long long>(T.Refs),
             static_cast<unsigned long long>(T.Defs));
    printf(" (refs/defs)\n");
  }
  return 0;
}

/// The per-stream backend tournament: pack once per registered backend,
/// read each stream's packed size off the telemetry, score each
/// backend per stream, pick the winner (registry order breaks ties, so
/// store wins when nothing beats it), repack with that mixed plan, and
/// verify the result restores the same classfiles as the default
/// archive.
///
/// The score depends on --tune-for. `size` (the default) is packed
/// bytes alone. `speed` and `balanced` multiply the bytes by a
/// measured cost factor — each backend's deflate-phase telemetry plus
/// a timed unpack, normalized to cost-per-packed-byte against the
/// cheapest backend — linearly (speed) or by its square root
/// (balanced), trading some compression for cheaper round-trips.
int cmdTune(const std::string &InPath, const std::string &OutPath) {
  std::vector<uint8_t> Bytes;
  if (!readFile(InPath, Bytes)) {
    fprintf(stderr, "packtool: cannot read %s\n", InPath.c_str());
    return 1;
  }
  auto Entries = readZip(Bytes);
  if (!Entries) {
    fprintf(stderr, "packtool: %s: %s\n", InPath.c_str(),
            Entries.message().c_str());
    return 1;
  }
  std::vector<NamedClass> Classes;
  for (ZipEntry &E : *Entries)
    if (isClassName(E.Name))
      Classes.push_back(std::move(E));

  PackOptions Base;
  Base.Shards = shardCount();
  Base.Threads = NumThreads;
  Base.RandomAccessIndex = Indexed;

  std::array<StreamSizes, NumBackends> Sizes;
  std::array<size_t, NumBackends> ArchiveBytes{};
  std::array<double, NumBackends> CostPerByte{};
  std::vector<uint8_t> DefaultArchive;
  for (const CompressionBackend &B : allBackends()) {
    PackOptions Opt = Base;
    Opt.Backend = B.Id;
    auto Packed = packClassBytes(Classes, Opt);
    if (!Packed) {
      fprintf(stderr, "packtool: %s pack: %s\n", B.Name,
              Packed.message().c_str());
      return 1;
    }
    unsigned Idx = static_cast<unsigned>(B.Id);
    Sizes[Idx] = Packed->Sizes;
    ArchiveBytes[Idx] = Packed->Archive.size();
    if (TuneFor != TuneGoal::Size) {
      // Cost = backend-stage encode time (the deflate-phase telemetry;
      // parse/model/emit are backend-independent) plus a timed unpack,
      // per packed byte so backends compete on rate, not output size.
      auto T0 = std::chrono::steady_clock::now();
      auto Restored = unpackAnyArchive(Packed->Archive);
      double DecodeSec = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - T0)
                             .count();
      if (!Restored) {
        fprintf(stderr, "packtool: %s unpack: %s\n", B.Name,
                Restored.message().c_str());
        return 1;
      }
      size_t PackedBytes = Sizes[Idx].totalPacked();
      CostPerByte[Idx] = (Packed->Trace.Phases.DeflateSec + DecodeSec) /
                         static_cast<double>(PackedBytes ? PackedBytes : 1);
    }
    if (B.Id == BackendId::Zlib)
      DefaultArchive = std::move(Packed->Archive);
  }

  // Normalize measured cost against the cheapest backend; 1.0 for all
  // under --tune-for=size, so the score degenerates to packed bytes.
  std::array<double, NumBackends> CostFactor;
  CostFactor.fill(1.0);
  if (TuneFor != TuneGoal::Size) {
    double Cheapest = CostPerByte[0];
    for (unsigned B = 1; B < NumBackends; ++B)
      Cheapest = std::min(Cheapest, CostPerByte[B]);
    if (Cheapest <= 0)
      Cheapest = 1e-12; // degenerate timer resolution: fall back to size
    for (unsigned B = 0; B < NumBackends; ++B) {
      double F = CostPerByte[B] / Cheapest;
      CostFactor[B] = TuneFor == TuneGoal::Speed ? F : std::sqrt(F);
    }
  }

  std::array<BackendId, NumStreams> Winners;
  for (unsigned I = 0; I < NumStreams; ++I) {
    unsigned Best = 0;
    for (unsigned B = 1; B < NumBackends; ++B)
      if (static_cast<double>(Sizes[B].Packed[I]) * CostFactor[B] <
          static_cast<double>(Sizes[Best].Packed[I]) * CostFactor[Best])
        Best = B;
    Winners[I] = static_cast<BackendId>(Best);
  }

  PackOptions Mixed = Base;
  Mixed.StreamBackends = Winners;
  auto Tuned = packClassBytes(Classes, Mixed);
  if (!Tuned) {
    fprintf(stderr, "packtool: tuned pack: %s\n", Tuned.message().c_str());
    return 1;
  }

  // The tuned archive must restore exactly what the default one does.
  auto Want = unpackAnyArchive(DefaultArchive);
  auto Got = unpackAnyArchive(Tuned->Archive);
  if (!Want || !Got) {
    fprintf(stderr, "packtool: tune verification unpack failed: %s\n",
            (!Want ? Want.message() : Got.message()).c_str());
    return 1;
  }
  if (Want->size() != Got->size()) {
    fprintf(stderr, "packtool: tuned archive restores a different class "
                    "count; not writing it\n");
    return 1;
  }
  for (size_t I = 0; I < Want->size(); ++I)
    if ((*Want)[I].Name != (*Got)[I].Name ||
        (*Want)[I].Data != (*Got)[I].Data) {
      fprintf(stderr, "packtool: tuned archive restores different bytes "
                      "for %s; not writing it\n",
              (*Want)[I].Name.c_str());
      return 1;
    }

  printf("  %-18s %10s %10s %10s %10s  winner\n", "stream", "store",
         "zlib", "huffman", "arith");
  for (unsigned I = 0; I < NumStreams; ++I) {
    if (Sizes[0].Raw[I] == 0)
      continue;
    printf("  %-18s", streamName(static_cast<StreamId>(I)));
    for (unsigned B = 0; B < NumBackends; ++B)
      printf(" %10zu", Sizes[B].Packed[I]);
    printf("  %s\n", backendName(Winners[I]));
  }
  printf("  archives:");
  for (unsigned B = 0; B < NumBackends; ++B)
    printf(" %s %zu", backendName(static_cast<BackendId>(B)),
           ArchiveBytes[B]);
  printf(" -> tuned %zu bytes\n", Tuned->Archive.size());

  if (!writeFile(OutPath, Tuned->Archive)) {
    fprintf(stderr, "packtool: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  printf("%s: %zu classes, %zu -> %zu bytes (%.0f%%)\n", OutPath.c_str(),
         Classes.size(), Bytes.size(), Tuned->Archive.size(),
         100.0 * Tuned->Archive.size() / Bytes.size());
  return 0;
}

/// `packtool client <endpoint> <cmd> [args...]`: drive a running
/// cjpackd. The endpoint is a TCP loopback port when it is all digits,
/// a unix-domain socket path otherwise. Commands are the wire opcode
/// names (ping, pack, unpack, unpack-class, stat, verify, lint,
/// metrics, flush); unpack-class takes an optional trailing output
/// path (stdout otherwise).
int cmdClient(const std::vector<std::string> &Args) {
  if (Args.size() < 3) {
    fprintf(stderr,
            "usage: packtool client <socket|port> <cmd> [args...]\n");
    return 2;
  }
  const std::string &Endpoint = Args[1];
  const serve::Opcode *Op = serve::findOpcodeByName(Args[2]);
  if (!Op) {
    fprintf(stderr, "packtool: unknown server command '%s'\n",
            Args[2].c_str());
    return 2;
  }
  std::vector<std::string> OpArgs(Args.begin() + 3, Args.end());

  // unpack-class [out.class]: the third operand is a local output
  // path, not a request argument.
  std::string OutPath;
  if (*Op == serve::Opcode::UnpackClass && OpArgs.size() == 3) {
    OutPath = std::move(OpArgs.back());
    OpArgs.pop_back();
  }

  bool IsPort = !Endpoint.empty() &&
                Endpoint.find_first_not_of("0123456789") == std::string::npos;
  auto Conn = IsPort ? serve::Client::connectTcp(std::atoi(Endpoint.c_str()))
                     : serve::Client::connectUnix(Endpoint);
  if (!Conn) {
    fprintf(stderr, "packtool: %s\n", Conn.message().c_str());
    return 1;
  }
  auto Resp = Conn->call(*Op, std::move(OpArgs));
  if (!Resp) {
    fprintf(stderr, "packtool: %s\n", Resp.message().c_str());
    return 1;
  }
  if (Resp->St != serve::Status::Ok) {
    fprintf(stderr, "packtool: server: %s: %s\n",
            serve::statusName(Resp->St), Resp->text().c_str());
    return 1;
  }
  if (*Op == serve::Opcode::UnpackClass) {
    if (OutPath.empty()) {
      fwrite(Resp->Body.data(), 1, Resp->Body.size(), stdout);
    } else if (!writeFile(OutPath, Resp->Body)) {
      fprintf(stderr, "packtool: cannot write %s\n", OutPath.c_str());
      return 1;
    } else {
      printf("%s: %zu bytes\n", OutPath.c_str(), Resp->Body.size());
    }
    return 0;
  }
  std::string Text = Resp->text();
  fwrite(Text.data(), 1, Text.size(), stdout);
  if (!Text.empty() && Text.back() != '\n')
    printf("\n");
  return 0;
}

int cmdSelftest(const std::string &Dir) {
  CorpusSpec Spec;
  Spec.Name = "selftest";
  Spec.Seed = 7;
  Spec.NumClasses = 30;
  Spec.NumPackages = 3;
  std::vector<NamedClass> Classes = generateCorpus(Spec);
  std::string JarPath = Dir + "/demo.jar";
  if (!writeFile(JarPath, buildJar(Classes))) {
    fprintf(stderr, "packtool: cannot write %s\n", JarPath.c_str());
    return 1;
  }
  printf("wrote %s (%zu classes)\n", JarPath.c_str(), Classes.size());
  if (int Rc = cmdPack(JarPath, Dir + "/demo.cjp"))
    return Rc;
  if (int Rc = cmdUnpack(Dir + "/demo.cjp", Dir + "/demo-restored.jar"))
    return Rc;
  return cmdInfo(Dir + "/demo.cjp");
}

} // namespace

int main(int Argc, char **Argv) {
  // Pull out --threads N / --threads=N; what remains is the command.
  std::vector<std::string> Args;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--threads" && I + 1 < Argc) {
      NumThreads = static_cast<unsigned>(std::atoi(Argv[++I]));
    } else if (A.rfind("--threads=", 0) == 0) {
      NumThreads = static_cast<unsigned>(std::atoi(A.c_str() + 10));
    } else if (A == "--shards=auto") {
      ShardsOpt = 0;
    } else if (A.rfind("--shards=", 0) == 0) {
      ShardsOpt = std::atoi(A.c_str() + 9);
      if (ShardsOpt <= 0) {
        fprintf(stderr, "packtool: --shards wants a positive count or "
                        "'auto'\n");
        return 2;
      }
    } else if (A == "--indexed") {
      Indexed = true;
    } else if (A.rfind("--tune-for=", 0) == 0) {
      std::string Goal = A.substr(11);
      if (Goal == "size") {
        TuneFor = TuneGoal::Size;
      } else if (Goal == "speed") {
        TuneFor = TuneGoal::Speed;
      } else if (Goal == "balanced") {
        TuneFor = TuneGoal::Balanced;
      } else {
        fprintf(stderr, "packtool: --tune-for wants size, speed, or "
                        "balanced\n");
        return 2;
      }
    } else if (A == "--strip-unreferenced") {
      StripUnreferenced = true;
    } else if (A == "--verify" || A == "--verify=warn") {
      Lint = LintMode::Warn;
    } else if (A == "--verify=strict") {
      Lint = LintMode::Strict;
    } else if (A == "--backend" && I + 1 < Argc) {
      const CompressionBackend *B = findBackendByName(Argv[++I]);
      if (!B) {
        fprintf(stderr, "packtool: unknown backend '%s'\n", Argv[I]);
        return 2;
      }
      PackBackend = B->Id;
    } else if (A.rfind("--backend=", 0) == 0) {
      const CompressionBackend *B = findBackendByName(A.c_str() + 10);
      if (!B) {
        fprintf(stderr, "packtool: unknown backend '%s'\n", A.c_str() + 10);
        return 2;
      }
      PackBackend = B->Id;
    } else {
      Args.push_back(std::move(A));
    }
  }
  if (NumThreads == 0)
    NumThreads = 1;

  if (Args.size() >= 3 && Args[0] == "pack")
    return cmdPack(Args[1], Args[2]);
  if (Args.size() >= 3 && Args[0] == "unpack")
    return cmdUnpack(Args[1], Args[2]);
  if (Args.size() >= 2 && Args[0] == "list")
    return cmdList(Args[1]);
  if (Args.size() >= 3 && Args[0] == "unpack-class")
    return cmdUnpackClass(Args[1], Args[2],
                          Args.size() >= 4 ? Args[3] : std::string());
  if (Args.size() >= 2 && Args[0] == "info")
    return cmdInfo(Args[1]);
  if (Args.size() >= 2 && Args[0] == "verify")
    return cmdVerify(Args);
  if (Args.size() >= 2 && Args[0] == "lint")
    return cmdLint(Args);
  if (Args.size() >= 2 && Args[0] == "stats")
    return cmdStats(Args);
  if (Args.size() >= 3 && Args[0] == "tune")
    return cmdTune(Args[1], Args[2]);
  if (Args.size() >= 1 && Args[0] == "client")
    return cmdClient(Args);
  if (Args.size() >= 2 && Args[0] == "selftest")
    return cmdSelftest(Args[1]);
  if (Args.empty())
    return cmdSelftest("."); // run the demo when invoked bare
  fprintf(stderr,
          "usage: packtool [--threads N] [--shards=N|auto] [--indexed] "
          "[--backend=NAME] "
          "[--verify[=warn|strict]] [--strip-unreferenced] "
          "pack <in.jar> <out.cjp>\n"
          "       packtool [--threads N] unpack <in.cjp> <out.jar>\n"
          "       packtool list <in.cjp>\n"
          "       packtool unpack-class <in.cjp> <pkg/Name> [out.class]\n"
          "       packtool info <archive>\n"
          "       packtool verify [--warn] <in.class|jar|cjp>\n"
          "       packtool lint [--json] [--strict] <in.class|jar|cjp>\n"
          "       packtool stats [--indexed] <in.cjp|in.jar> [--json]\n"
          "       packtool [--tune-for=size|speed|balanced] tune "
          "<in.jar> <out.cjp>\n"
          "       packtool client <socket|port> <cmd> [args...]\n"
          "       packtool selftest <dir>\n"
          "backends: store, zlib (default), huffman, arith\n"
          "client commands: ping, pack, unpack, unpack-class, stat, "
          "verify, lint, metrics, flush\n");
  return 2;
}
