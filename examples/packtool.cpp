//===- packtool.cpp - a command-line pack/unpack tool ----------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
// A small production-style CLI over the library:
//
//   packtool pack <in.jar|in.zip> <out.cjp>   pack a jar's classfiles
//   packtool unpack <in.cjp> <out.jar>        unpack to a stored jar
//   packtool info <in.cjp|in.jar>             describe an archive
//   packtool verify <in.class|jar|cjp>        run the bytecode verifier
//   packtool selftest <out-dir>               write a demo jar + archive
//
// `--threads N` (anywhere on the command line) packs into N shards
// encoded on N worker threads, and unpacks sharded archives on N
// threads. The default (1) writes the classic single-shard format.
//
// `--verify[=warn|strict]` on pack lints every classfile with the
// flow analyzer first: warn (the default) reports diagnostics and
// packs anyway, strict refuses to pack a flagged input. The standalone
// `verify` command exits nonzero on any diagnostic unless --warn.
//
// Non-class members of the input jar are carried in a side jar, as §12
// prescribes (the packed format handles classfiles only).
//
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "classfile/Reader.h"
#include "corpus/Corpus.h"
#include "pack/Packer.h"
#include "zip/Jar.h"
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

using namespace cjpack;

namespace {

/// Worker-thread count from --threads (also the pack shard count).
unsigned NumThreads = 1;

/// Pre-pack lint mode from --verify[=warn|strict].
enum class LintMode { Off, Warn, Strict };
LintMode Lint = LintMode::Off;

bool readFile(const std::string &Path, std::vector<uint8_t> &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  Out.assign(std::istreambuf_iterator<char>(In),
             std::istreambuf_iterator<char>());
  return true;
}

bool writeFile(const std::string &Path, const std::vector<uint8_t> &Data) {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return false;
  Out.write(reinterpret_cast<const char *>(Data.data()),
            static_cast<std::streamsize>(Data.size()));
  return static_cast<bool>(Out);
}

bool isClassName(const std::string &Name) {
  return Name.size() > 6 &&
         Name.compare(Name.size() - 6, 6, ".class") == 0;
}

/// Verifies one classfile, printing each diagnostic; returns the count.
size_t verifyOneClass(const std::string &Name,
                      const std::vector<uint8_t> &Data) {
  analysis::VerifyResult R = analysis::verifyClassBytes(Data);
  for (const analysis::Diagnostic &D : R.Diags)
    fprintf(stderr, "packtool: %s: %s\n", Name.c_str(),
            analysis::formatDiagnostic(D).c_str());
  return R.Diags.size();
}

int cmdPack(const std::string &InPath, const std::string &OutPath) {
  std::vector<uint8_t> Bytes;
  if (!readFile(InPath, Bytes)) {
    fprintf(stderr, "packtool: cannot read %s\n", InPath.c_str());
    return 1;
  }
  auto Entries = readZip(Bytes);
  if (!Entries) {
    fprintf(stderr, "packtool: %s: %s\n", InPath.c_str(),
            Entries.message().c_str());
    return 1;
  }
  std::vector<NamedClass> Classes;
  std::vector<ZipEntry> Others;
  for (ZipEntry &E : *Entries) {
    if (isClassName(E.Name))
      Classes.push_back(std::move(E));
    else
      Others.push_back(std::move(E));
  }
  if (Lint != LintMode::Off) {
    size_t NumDiags = 0;
    for (const NamedClass &C : Classes)
      NumDiags += verifyOneClass(C.Name, C.Data);
    if (NumDiags != 0 && Lint == LintMode::Strict) {
      fprintf(stderr,
              "packtool: %zu verifier diagnostics; refusing to pack "
              "(--verify=strict)\n",
              NumDiags);
      return 1;
    }
  }
  PackOptions Options;
  Options.Shards = NumThreads;
  Options.Threads = NumThreads;
  auto Packed = packClassBytes(Classes, Options);
  if (!Packed) {
    fprintf(stderr, "packtool: %s\n", Packed.message().c_str());
    return 1;
  }
  if (!writeFile(OutPath, Packed->Archive)) {
    fprintf(stderr, "packtool: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  printf("%s: %zu classes, %zu -> %zu bytes (%.0f%%)\n", OutPath.c_str(),
         Classes.size(), Bytes.size(), Packed->Archive.size(),
         100.0 * Packed->Archive.size() / Bytes.size());
  if (!Others.empty()) {
    std::string SidePath = OutPath + ".resources.jar";
    writeFile(SidePath, writeZip(Others, ZipMethod::Deflated));
    printf("%zu non-class members written to %s\n", Others.size(),
           SidePath.c_str());
  }
  return 0;
}

int cmdUnpack(const std::string &InPath, const std::string &OutPath) {
  std::vector<uint8_t> Bytes;
  if (!readFile(InPath, Bytes)) {
    fprintf(stderr, "packtool: cannot read %s\n", InPath.c_str());
    return 1;
  }
  auto Classes = unpackArchive(Bytes, NumThreads);
  if (!Classes) {
    fprintf(stderr, "packtool: %s\n", Classes.message().c_str());
    return 1;
  }
  if (!writeFile(OutPath, writeZip(*Classes, ZipMethod::Deflated))) {
    fprintf(stderr, "packtool: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  printf("%s: %zu classes, %zu bytes\n", OutPath.c_str(),
         Classes->size(), totalClassBytes(*Classes));
  return 0;
}

int cmdInfo(const std::string &InPath) {
  std::vector<uint8_t> Bytes;
  if (!readFile(InPath, Bytes)) {
    fprintf(stderr, "packtool: cannot read %s\n", InPath.c_str());
    return 1;
  }
  if (Bytes.size() >= 4 && Bytes[0] == 'C' && Bytes[1] == 'J') {
    auto Classes = unpackArchive(Bytes, NumThreads);
    if (!Classes) {
      fprintf(stderr, "packtool: %s\n", Classes.message().c_str());
      return 1;
    }
    printf("%s: packed archive, %zu bytes, %zu classes\n",
           InPath.c_str(), Bytes.size(), Classes->size());
    for (const NamedClass &C : *Classes)
      printf("  %8zu  %s\n", C.Data.size(), C.Name.c_str());
    return 0;
  }
  auto Entries = readZip(Bytes);
  if (!Entries) {
    fprintf(stderr, "packtool: %s is neither a packed archive nor a "
                    "zip\n",
            InPath.c_str());
    return 1;
  }
  printf("%s: zip archive, %zu bytes, %zu members\n", InPath.c_str(),
         Bytes.size(), Entries->size());
  for (const ZipEntry &E : *Entries)
    printf("  %8zu  %s\n", E.Data.size(), E.Name.c_str());
  return 0;
}

int cmdVerify(const std::vector<std::string> &Args) {
  bool WarnOnly = false;
  std::string InPath;
  for (size_t I = 1; I < Args.size(); ++I) {
    if (Args[I] == "--warn")
      WarnOnly = true;
    else if (Args[I] == "--strict")
      WarnOnly = false;
    else
      InPath = Args[I];
  }
  if (InPath.empty()) {
    fprintf(stderr, "usage: packtool verify [--warn] <in.class|jar|cjp>\n");
    return 2;
  }
  std::vector<uint8_t> Bytes;
  if (!readFile(InPath, Bytes)) {
    fprintf(stderr, "packtool: cannot read %s\n", InPath.c_str());
    return 1;
  }
  size_t NumClasses = 0;
  size_t NumDiags = 0;
  if (Bytes.size() >= 4 && Bytes[0] == 0xCA && Bytes[1] == 0xFE &&
      Bytes[2] == 0xBA && Bytes[3] == 0xBE) {
    NumClasses = 1;
    NumDiags = verifyOneClass(InPath, Bytes);
  } else if (Bytes.size() >= 4 && Bytes[0] == 'C' && Bytes[1] == 'J') {
    auto Classes = unpackArchive(Bytes, NumThreads);
    if (!Classes) {
      fprintf(stderr, "packtool: %s\n", Classes.message().c_str());
      return 1;
    }
    for (const NamedClass &C : *Classes) {
      ++NumClasses;
      NumDiags += verifyOneClass(C.Name, C.Data);
    }
  } else {
    auto Entries = readZip(Bytes);
    if (!Entries) {
      fprintf(stderr,
              "packtool: %s is neither a classfile, a packed archive, "
              "nor a zip\n",
              InPath.c_str());
      return 1;
    }
    for (const ZipEntry &E : *Entries) {
      if (!isClassName(E.Name))
        continue;
      ++NumClasses;
      NumDiags += verifyOneClass(E.Name, E.Data);
    }
  }
  printf("%s: %zu classes verified, %zu diagnostics\n", InPath.c_str(),
         NumClasses, NumDiags);
  return (NumDiags == 0 || WarnOnly) ? 0 : 1;
}

int cmdSelftest(const std::string &Dir) {
  CorpusSpec Spec;
  Spec.Name = "selftest";
  Spec.Seed = 7;
  Spec.NumClasses = 30;
  Spec.NumPackages = 3;
  std::vector<NamedClass> Classes = generateCorpus(Spec);
  std::string JarPath = Dir + "/demo.jar";
  if (!writeFile(JarPath, buildJar(Classes))) {
    fprintf(stderr, "packtool: cannot write %s\n", JarPath.c_str());
    return 1;
  }
  printf("wrote %s (%zu classes)\n", JarPath.c_str(), Classes.size());
  if (int Rc = cmdPack(JarPath, Dir + "/demo.cjp"))
    return Rc;
  if (int Rc = cmdUnpack(Dir + "/demo.cjp", Dir + "/demo-restored.jar"))
    return Rc;
  return cmdInfo(Dir + "/demo.cjp");
}

} // namespace

int main(int Argc, char **Argv) {
  // Pull out --threads N / --threads=N; what remains is the command.
  std::vector<std::string> Args;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--threads" && I + 1 < Argc) {
      NumThreads = static_cast<unsigned>(std::atoi(Argv[++I]));
    } else if (A.rfind("--threads=", 0) == 0) {
      NumThreads = static_cast<unsigned>(std::atoi(A.c_str() + 10));
    } else if (A == "--verify" || A == "--verify=warn") {
      Lint = LintMode::Warn;
    } else if (A == "--verify=strict") {
      Lint = LintMode::Strict;
    } else {
      Args.push_back(std::move(A));
    }
  }
  if (NumThreads == 0)
    NumThreads = 1;

  if (Args.size() >= 3 && Args[0] == "pack")
    return cmdPack(Args[1], Args[2]);
  if (Args.size() >= 3 && Args[0] == "unpack")
    return cmdUnpack(Args[1], Args[2]);
  if (Args.size() >= 2 && Args[0] == "info")
    return cmdInfo(Args[1]);
  if (Args.size() >= 2 && Args[0] == "verify")
    return cmdVerify(Args);
  if (Args.size() >= 2 && Args[0] == "selftest")
    return cmdSelftest(Args[1]);
  if (Args.empty())
    return cmdSelftest("."); // run the demo when invoked bare
  fprintf(stderr,
          "usage: packtool [--threads N] [--verify[=warn|strict]] "
          "pack <in.jar> <out.cjp>\n"
          "       packtool [--threads N] unpack <in.cjp> <out.jar>\n"
          "       packtool info <archive>\n"
          "       packtool verify [--warn] <in.class|jar|cjp>\n"
          "       packtool selftest <dir>\n");
  return 2;
}
