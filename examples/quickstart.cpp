//===- quickstart.cpp - cjpack in twenty lines -----------------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
// The minimal end-to-end flow: take a collection of classfiles, pack
// them into the paper's wire format, unpack them back, and check the
// round trip. Here the classfiles come from the synthetic corpus
// generator; in a real deployment they would come from a jar.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "pack/Packer.h"
#include "zip/Jar.h"
#include <cstdio>

using namespace cjpack;

int main() {
  // 1. Get some classfiles (name + raw bytes).
  CorpusSpec Spec;
  Spec.Name = "quickstart";
  Spec.Seed = 42;
  Spec.NumClasses = 50;
  Spec.NumPackages = 4;
  std::vector<NamedClass> Classes = generateCorpus(Spec);
  printf("input: %zu classfiles, %zu bytes\n", Classes.size(),
         totalClassBytes(Classes));

  // 2. Pack. packClassBytes parses, strips debug info, canonicalizes the
  //    constant pool (the paper's §2 preprocessing), and encodes the
  //    wire format with the shipping configuration (move-to-front with
  //    transients and stack-state contexts).
  auto Packed = packClassBytes(Classes, PackOptions());
  if (!Packed) {
    fprintf(stderr, "pack failed: %s\n", Packed.message().c_str());
    return 1;
  }
  size_t JarSize = buildJar(Classes).size();
  printf("jar:    %zu bytes\n", JarSize);
  printf("packed: %zu bytes (%.0f%% of the jar)\n",
         Packed->Archive.size(),
         100.0 * Packed->Archive.size() / JarSize);

  // 3. Unpack. Decompression is deterministic (§12): the same archive
  //    always reproduces identical classfiles, ready for any JVM.
  auto Restored = unpackArchive(Packed->Archive);
  if (!Restored) {
    fprintf(stderr, "unpack failed: %s\n", Restored.message().c_str());
    return 1;
  }
  printf("unpacked %zu classfiles, %zu bytes\n", Restored->size(),
         totalClassBytes(*Restored));

  // 4. Verify: pack the restored classes again; byte-identical archive.
  auto Again = packClassBytes(*Restored, PackOptions());
  if (!Again || Again->Archive != Packed->Archive) {
    fprintf(stderr, "round trip mismatch!\n");
    return 1;
  }
  printf("round trip verified: repack is byte-identical\n");
  return 0;
}
