//===- cjpackd.cpp - the cjpack archive server daemon ----------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
// A long-running archive server over the serve library:
//
//   cjpackd --socket /run/cjpackd.sock [--tcp PORT] [--threads N]
//           [--cache-mb N] [--max-inflight N] [--timeout SEC]
//
// It serves pack/unpack/unpack-class/stat/verify/lint requests on a
// unix-domain socket (and optionally TCP loopback), keeping hot
// archives open in an LRU cache so repeated single-class extraction
// skips the open/parse/inflate cold path. Drive it with
// `packtool client <socket> <cmd> ...`.
//
// SIGTERM/SIGINT begin a graceful drain: in-flight requests finish and
// flush, then the daemon prints its final metrics and exits 0.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unistd.h>

using namespace cjpack;
using namespace cjpack::serve;

namespace {

// Signal handlers may only touch async-signal-safe state: write one
// byte into a pipe the main thread blocks on.
int StopPipe[2] = {-1, -1};

void onStopSignal(int) {
  char B = 1;
  [[maybe_unused]] ssize_t W = ::write(StopPipe[1], &B, 1);
}

int usage() {
  std::fprintf(
      stderr,
      "usage: cjpackd --socket PATH [--tcp PORT] [--threads N]\n"
      "               [--cache-mb N] [--max-inflight N] [--timeout SEC]\n"
      "\n"
      "  --socket PATH     unix-domain socket to listen on (required)\n"
      "  --tcp PORT        also listen on loopback TCP (0 = ephemeral)\n"
      "  --threads N       handler threads (default: hardware)\n"
      "  --cache-mb N      hot-archive cache capacity (default 256)\n"
      "  --max-inflight N  per-connection request window (default 4)\n"
      "  --timeout SEC     idle read timeout, 0 = none (default 60)\n");
  return 2;
}

bool parseUnsigned(const char *S, long &Out) {
  char *End = nullptr;
  Out = std::strtol(S, &End, 10);
  return End != S && *End == '\0' && Out >= 0;
}

} // namespace

int main(int Argc, char **Argv) {
  ServerConfig Config;
  Config.TcpPort = -1;

  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    auto Value = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    long N = 0;
    if (std::strcmp(A, "--socket") == 0) {
      const char *V = Value();
      if (!V)
        return usage();
      Config.UnixSocketPath = V;
    } else if (std::strcmp(A, "--tcp") == 0) {
      const char *V = Value();
      if (!V || !parseUnsigned(V, N) || N > 65535)
        return usage();
      Config.TcpPort = static_cast<int>(N);
    } else if (std::strcmp(A, "--threads") == 0) {
      const char *V = Value();
      if (!V || !parseUnsigned(V, N))
        return usage();
      Config.Threads = static_cast<unsigned>(N);
    } else if (std::strcmp(A, "--cache-mb") == 0) {
      const char *V = Value();
      if (!V || !parseUnsigned(V, N))
        return usage();
      Config.CacheBytes = static_cast<size_t>(N) << 20;
    } else if (std::strcmp(A, "--max-inflight") == 0) {
      const char *V = Value();
      if (!V || !parseUnsigned(V, N) || N == 0)
        return usage();
      Config.MaxInFlightPerConn = static_cast<unsigned>(N);
    } else if (std::strcmp(A, "--timeout") == 0) {
      const char *V = Value();
      if (!V || !parseUnsigned(V, N))
        return usage();
      Config.ReadTimeoutSec = static_cast<unsigned>(N);
    } else {
      std::fprintf(stderr, "cjpackd: unknown option '%s'\n", A);
      return usage();
    }
  }
  if (Config.UnixSocketPath.empty())
    return usage();

  if (::pipe(StopPipe) != 0) {
    std::perror("cjpackd: pipe");
    return 1;
  }
  std::signal(SIGPIPE, SIG_IGN);
  struct sigaction Sa = {};
  Sa.sa_handler = onStopSignal;
  ::sigaction(SIGTERM, &Sa, nullptr);
  ::sigaction(SIGINT, &Sa, nullptr);

  auto Srv = Server::start(Config);
  if (!Srv) {
    std::fprintf(stderr, "cjpackd: %s\n", Srv.message().c_str());
    return 1;
  }
  std::fprintf(stderr, "cjpackd: listening on %s",
               Config.UnixSocketPath.c_str());
  if (Config.TcpPort >= 0)
    std::fprintf(stderr, " and loopback:%d", (*Srv)->tcpPort());
  std::fprintf(stderr, "\n");
  std::fflush(stderr);

  // Block until a stop signal lands.
  char B = 0;
  while (::read(StopPipe[0], &B, 1) < 0 && errno == EINTR)
    ;

  std::fprintf(stderr, "cjpackd: draining\n");
  (*Srv)->requestStop();
  (*Srv)->wait();

  std::string Final = (*Srv)->metrics().render((*Srv)->cache().stats());
  std::fwrite(Final.data(), 1, Final.size(), stderr);
  std::fprintf(stderr, "cjpackd: bye\n");
  return 0;
}
