//===- bench_table7.cpp - Table 7: execution times -------------------------===//
//
// Part of cjpack. MIT license.
//
// Reproduces Table 7: wall-clock compression and decompression time per
// benchmark, and decompression throughput in KB of wire-format archive
// per second (the paper's metric: eager class loading consumes the
// archive as it streams in, §10.1/§11).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include <chrono>
#include <cstdio>

using namespace cjpack;

namespace {

double seconds(std::chrono::steady_clock::time_point A,
               std::chrono::steady_clock::time_point B) {
  return std::chrono::duration<double>(B - A).count();
}

} // namespace

int main() {
  printf("Table 7: execution times\n");
  printf("scale=%.2f\n\n", benchScale());
  printf("%-16s %12s %14s %12s\n", "Benchmark", "Compress(s)",
         "Decompress(s)", "Kbytes/sec");
  double TotalCompress = 0, TotalDecompress = 0;
  for (const CorpusSpec &Spec : paperBenchmarks(benchScale())) {
    BenchData B = loadBench(Spec);
    auto T0 = std::chrono::steady_clock::now();
    auto Packed = packClasses(B.Prepared, PackOptions());
    auto T1 = std::chrono::steady_clock::now();
    if (!Packed) {
      fprintf(stderr, "%s: %s\n", Spec.Name.c_str(),
              Packed.message().c_str());
      continue;
    }
    // Decompress to in-memory classfile models (the eager-loading
    // scenario: no jar is written back to disk).
    auto Unpacked = unpackClasses(Packed->Archive);
    auto T2 = std::chrono::steady_clock::now();
    if (!Unpacked) {
      fprintf(stderr, "%s: %s\n", Spec.Name.c_str(),
              Unpacked.message().c_str());
      continue;
    }
    double Compress = seconds(T0, T1);
    double Decompress = seconds(T1, T2);
    TotalCompress += Compress;
    TotalDecompress += Decompress;
    printf("%-16s %12.2f %14.3f %12.0f\n", Spec.Name.c_str(), Compress,
           Decompress,
           Packed->Archive.size() / 1024.0 / Decompress);
    fflush(stdout);
  }
  printf("\nTotals: compress %.2fs, decompress %.2fs (ratio %.1fx)\n",
         TotalCompress, TotalDecompress,
         TotalCompress / TotalDecompress);
  printf("Paper shape: the compressor is an order of magnitude slower\n"
         "than the decompressor (the paper reports ~15x on its\n"
         "statistics-collecting research prototype).\n");
  return 0;
}
