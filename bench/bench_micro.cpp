//===- bench_micro.cpp - google-benchmark microbenchmarks -----------------===//
//
// Part of cjpack. MIT license.
//
// Microbenchmarks of the hot substrates: the indexed-skiplist MTF queue
// (the paper's O(log k) move-to-front, §5), the §6 integer codecs, the
// arithmetic coder, and end-to-end pack/unpack on a small corpus.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "coder/Arithmetic.h"
#include "corpus/Rng.h"
#include "mtf/MtfQueue.h"
#include "support/VarInt.h"
#include "zip/Zlib.h"
#include <benchmark/benchmark.h>

using namespace cjpack;

static void BM_MtfQueueUse(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  MtfQueue Q;
  for (uint32_t V = 0; V < N; ++V)
    Q.pushFront(V);
  Rng R(1);
  for (auto _ : State) {
    uint32_t V = static_cast<uint32_t>(R.zipf(N));
    benchmark::DoNotOptimize(Q.use(V));
  }
}
BENCHMARK(BM_MtfQueueUse)->Arg(64)->Arg(1024)->Arg(16384);

static void BM_MtfQueueUseUniform(benchmark::State &State) {
  // Uniform access is the worst case for MTF: positions average N/2,
  // exercising the O(log k) bound rather than the hot front.
  size_t N = static_cast<size_t>(State.range(0));
  MtfQueue Q;
  for (uint32_t V = 0; V < N; ++V)
    Q.pushFront(V);
  Rng R(2);
  for (auto _ : State) {
    uint32_t V = static_cast<uint32_t>(R.below(N));
    benchmark::DoNotOptimize(Q.use(V));
  }
}
BENCHMARK(BM_MtfQueueUseUniform)->Arg(1024)->Arg(16384);

static void BM_VarIntRoundTrip(benchmark::State &State) {
  Rng R(3);
  std::vector<uint64_t> Values;
  for (int I = 0; I < 1024; ++I)
    Values.push_back(R.next() >> (R.below(60)));
  for (auto _ : State) {
    ByteWriter W;
    for (uint64_t V : Values)
      writeVarUInt(W, V);
    ByteReader Rd(W.data());
    uint64_t Sum = 0;
    for (size_t I = 0; I < Values.size(); ++I)
      Sum += readVarUInt(Rd);
    benchmark::DoNotOptimize(Sum);
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Values.size()));
}
BENCHMARK(BM_VarIntRoundTrip);

static void BM_ArithmeticEncode(benchmark::State &State) {
  Rng R(4);
  std::vector<uint32_t> Symbols;
  for (int I = 0; I < 4096; ++I)
    Symbols.push_back(static_cast<uint32_t>(R.zipf(256)));
  for (auto _ : State) {
    AdaptiveModel Model(256);
    ArithmeticEncoder Enc;
    for (uint32_t S : Symbols)
      Enc.encode(Model, S);
    benchmark::DoNotOptimize(Enc.finish());
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Symbols.size()));
}
BENCHMARK(BM_ArithmeticEncode);

namespace {

const BenchData &microCorpus() {
  static BenchData B = [] {
    CorpusSpec S;
    S.Name = "micro";
    S.Seed = 77;
    S.NumClasses = 40;
    S.NumPackages = 4;
    return loadBench(S);
  }();
  return B;
}

} // namespace

static void BM_PackArchive(benchmark::State &State) {
  const BenchData &B = microCorpus();
  for (auto _ : State) {
    auto P = packClasses(B.Prepared, PackOptions());
    benchmark::DoNotOptimize(P);
  }
  State.SetBytesProcessed(
      State.iterations() *
      static_cast<int64_t>(totalClassBytes(B.StrippedBytes)));
}
BENCHMARK(BM_PackArchive);

static void BM_UnpackArchive(benchmark::State &State) {
  const BenchData &B = microCorpus();
  auto P = packClasses(B.Prepared, PackOptions());
  if (!P)
    State.SkipWithError("pack failed");
  for (auto _ : State) {
    auto U = unpackClasses(P->Archive);
    benchmark::DoNotOptimize(U);
  }
  State.SetBytesProcessed(State.iterations() *
                          static_cast<int64_t>(P->Archive.size()));
}
BENCHMARK(BM_UnpackArchive);

static void BM_DeflateClassfiles(benchmark::State &State) {
  const BenchData &B = microCorpus();
  std::vector<uint8_t> All;
  for (const NamedClass &C : B.StrippedBytes)
    All.insert(All.end(), C.Data.begin(), C.Data.end());
  for (auto _ : State)
    benchmark::DoNotOptimize(deflateBytes(All));
  State.SetBytesProcessed(State.iterations() *
                          static_cast<int64_t>(All.size()));
}
BENCHMARK(BM_DeflateClassfiles);

BENCHMARK_MAIN();
