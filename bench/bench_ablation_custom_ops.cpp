//===- bench_ablation_custom_ops.cpp - §7.2 custom opcode ablation --------===//
//
// Part of cjpack. MIT license.
//
// The §7.2 experiment in full: derive custom digram opcodes for the
// opcode stream (including skip-pairs), then compare zlib on the raw
// stream against zlib on the rewritten stream. The paper found the
// rewrite shrinks the symbol count substantially but barely helps after
// zlib — which is why it was left out of the shipping format — while
// remaining attractive when zlib is unavailable on the client.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "pack/CustomOpcodes.h"
#include "zip/Zlib.h"
#include <cstdio>

using namespace cjpack;

int main() {
  printf("Ablation (par. 7.2): custom opcodes\n");
  printf("scale=%.2f\n\n", benchScale());
  printf("%-16s %9s %9s %7s | %9s %10s %9s | %9s %9s\n", "Benchmark",
         "opcodes", "rewritten", "newops", "est(KB)", "est'(KB)",
         "raw-gain", "zlib(B)", "zlib'(B)");
  for (const char *Name :
       {"javac", "mpegaudio", "jess", "swingall", "tools"}) {
    BenchData B = loadBench(paperBenchmark(Name, benchScale()));
    RawCodeStreams Raw = extractRawCodeStreams(B.Prepared);
    CustomOpcodeResult R =
        buildCustomOpcodes(Raw.Opcodes, /*MaxNewOps=*/54,
                           /*FirstNewSymbol=*/202);

    // Verify the rewrite inverts exactly.
    std::vector<uint8_t> Expanded =
        expandCustomOpcodes(R.Stream, R.Codebook, 202);
    if (Expanded != Raw.Opcodes) {
      fprintf(stderr, "%s: custom-opcode expansion mismatch!\n", Name);
      return 1;
    }

    std::vector<uint8_t> Rewritten;
    Rewritten.reserve(R.Stream.size());
    for (uint16_t S : R.Stream)
      Rewritten.push_back(static_cast<uint8_t>(S));
    size_t Plain = deflateBytes(Raw.Opcodes).size();
    size_t Custom = deflateBytes(Rewritten).size();
    printf("%-16s %9zu %9zu %7zu | %9.0f %10.0f %8s | %9zu %9zu\n", Name,
           Raw.Opcodes.size(), R.Stream.size(), R.Codebook.size(),
           R.EstimatedBitsBefore / 8192.0, R.EstimatedBitsAfter / 8192.0,
           pct(R.Stream.size(), Raw.Opcodes.size()).c_str(), Plain,
           Custom);
    fflush(stdout);
  }
  printf("\nPaper shape: the opcode count drops substantially, but after\n"
         "zlib the custom-opcode stream is only about the same as (or\n"
         "slightly better/worse than) zlib on the original opcodes.\n");
  return 0;
}
