//===- bench_table6.cpp - Table 6: compression ratios ---------------------===//
//
// Part of cjpack. MIT license.
//
// Reproduces Table 6, the paper's headline result: for every benchmark,
// the sizes of the jar / j0r.gz / Jazz / Packed archives, the latter
// three as percentages of the jar, and the composition of the packed
// archive (strings / opcodes / ints / refs / misc).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "jazz/Jazz.h"
#include <algorithm>
#include <cstdio>

using namespace cjpack;

int main() {
  printf("Table 6: compression ratios\n");
  printf("scale=%.2f\n\n", benchScale());
  printf("%-16s %7s %8s %7s %7s | %7s %6s %7s | %5s %5s %5s %5s %5s\n",
         "Benchmark", "jar(K)", "j0rgz(K)", "Jazz(K)", "Pack(K)",
         "j0r.gz%", "Jazz%", "Packed%", "Str", "Ops", "Ints", "Refs",
         "Misc");

  std::vector<BenchData> Benches = loadAllBenches();
  std::sort(Benches.begin(), Benches.end(),
            [](const BenchData &A, const BenchData &B) {
              return totalClassBytes(A.StrippedBytes) <
                     totalClassBytes(B.StrippedBytes);
            });
  for (const BenchData &B : Benches) {
    size_t Jar = buildJar(B.StrippedBytes).size();
    size_t J0rGz = buildJ0rGz(B.StrippedBytes).size();
    auto Jazz = jazzPack(B.Prepared);
    auto Packed = packClasses(B.Prepared, PackOptions());
    if (!Jazz || !Packed) {
      fprintf(stderr, "%s: pack failed\n", B.Spec.Name.c_str());
      continue;
    }
    size_t JazzSize = Jazz->size();
    size_t PackSize = Packed->Archive.size();
    const StreamSizes &Z = Packed->Sizes;
    size_t Total = Z.totalPacked();
    printf("%-16s %7s %8s %7s %7s | %7s %6s %7s | %5s %5s %5s %5s %5s\n",
           B.Spec.Name.c_str(), withCommas(Jar / 1024).c_str(),
           withCommas(J0rGz / 1024).c_str(),
           withCommas(JazzSize / 1024).c_str(),
           withCommas(PackSize / 1024).c_str(), pct(J0rGz, Jar).c_str(),
           pct(JazzSize, Jar).c_str(), pct(PackSize, Jar).c_str(),
           pct(Z.packedOf(StreamCategory::Strings), Total).c_str(),
           pct(Z.packedOf(StreamCategory::Opcodes), Total).c_str(),
           pct(Z.packedOf(StreamCategory::Ints), Total).c_str(),
           pct(Z.packedOf(StreamCategory::Refs), Total).c_str(),
           pct(Z.packedOf(StreamCategory::Misc), Total).c_str());
    fflush(stdout);
  }
  printf("\nPaper shape: Packed is 17-49%% of the jar (improving with\n"
         "archive size), Jazz lands between j0r.gz and Packed, and no\n"
         "single stream category dominates the packed archive.\n");
  return 0;
}
