//===- bench_table6.cpp - Table 6: compression ratios ---------------------===//
//
// Part of cjpack. MIT license.
//
// Reproduces Table 6, the paper's headline result: for every benchmark,
// the sizes of the jar / j0r.gz / Jazz / Packed archives, the latter
// three as percentages of the jar, and the composition of the packed
// archive (strings / opcodes / ints / refs / misc). The composition
// columns come from the encoder's per-stream telemetry (StreamSizes).
//
//   bench_table6 [--json FILE]
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "jazz/Jazz.h"
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

using namespace cjpack;

int main(int Argc, char **Argv) {
  std::string JsonPath;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0 && I + 1 < Argc)
      JsonPath = Argv[++I];
  }

  printf("Table 6: compression ratios\n");
  printf("scale=%.2f\n\n", benchScale());
  printf("%-16s %7s %8s %7s %7s | %7s %6s %7s | %5s %5s %5s %5s %5s\n",
         "Benchmark", "jar(K)", "j0rgz(K)", "Jazz(K)", "Pack(K)",
         "j0r.gz%", "Jazz%", "Packed%", "Str", "Ops", "Ints", "Refs",
         "Misc");

  std::vector<BenchData> Benches = loadAllBenches();
  std::sort(Benches.begin(), Benches.end(),
            [](const BenchData &A, const BenchData &B) {
              return totalClassBytes(A.StrippedBytes) <
                     totalClassBytes(B.StrippedBytes);
            });
  std::vector<JsonObject> Rows;
  for (const BenchData &B : Benches) {
    size_t Jar = buildJar(B.StrippedBytes).size();
    size_t J0rGz = buildJ0rGz(B.StrippedBytes).size();
    auto Jazz = jazzPack(B.Prepared);
    auto Packed = packClasses(B.Prepared, PackOptions());
    if (!Jazz || !Packed) {
      fprintf(stderr, "%s: pack failed\n", B.Spec.Name.c_str());
      continue;
    }
    size_t JazzSize = Jazz->size();
    size_t PackSize = Packed->Archive.size();
    const StreamSizes &Z = Packed->Sizes;
    size_t Total = Z.totalPacked();
    if (!JsonPath.empty()) {
      JsonObject Row;
      Row.add("name", B.Spec.Name);
      Row.add("classes", static_cast<uint64_t>(B.Prepared.size()));
      Row.add("jar_bytes", static_cast<uint64_t>(Jar));
      Row.add("j0rgz_bytes", static_cast<uint64_t>(J0rGz));
      Row.add("jazz_bytes", static_cast<uint64_t>(JazzSize));
      Row.add("packed_bytes", static_cast<uint64_t>(PackSize));
      Row.add("raw_stream_bytes", static_cast<uint64_t>(Z.totalRaw()));
      JsonObject Cats;
      for (StreamCategory C :
           {StreamCategory::Strings, StreamCategory::Opcodes,
            StreamCategory::Ints, StreamCategory::Refs,
            StreamCategory::Misc})
        Cats.add(streamCategoryName(C),
                 static_cast<uint64_t>(Z.packedOf(C)));
      Row.addRaw("categories", Cats.str(6));
      Rows.push_back(std::move(Row));
    }
    printf("%-16s %7s %8s %7s %7s | %7s %6s %7s | %5s %5s %5s %5s %5s\n",
           B.Spec.Name.c_str(), withCommas(Jar / 1024).c_str(),
           withCommas(J0rGz / 1024).c_str(),
           withCommas(JazzSize / 1024).c_str(),
           withCommas(PackSize / 1024).c_str(), pct(J0rGz, Jar).c_str(),
           pct(JazzSize, Jar).c_str(), pct(PackSize, Jar).c_str(),
           pct(Z.packedOf(StreamCategory::Strings), Total).c_str(),
           pct(Z.packedOf(StreamCategory::Opcodes), Total).c_str(),
           pct(Z.packedOf(StreamCategory::Ints), Total).c_str(),
           pct(Z.packedOf(StreamCategory::Refs), Total).c_str(),
           pct(Z.packedOf(StreamCategory::Misc), Total).c_str());
    fflush(stdout);
  }
  printf("\nPaper shape: Packed is 17-49%% of the jar (improving with\n"
         "archive size), Jazz lands between j0r.gz and Packed, and no\n"
         "single stream category dominates the packed archive.\n");

  if (!JsonPath.empty()) {
    FILE *Out = fopen(JsonPath.c_str(), "w");
    if (!Out) {
      fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    JsonObject Header;
    Header.add("bench", "table6");
    Header.add("scale", benchScale());
    writeBenchJson(Out, Header, Rows);
    fclose(Out);
    printf("wrote %s\n", JsonPath.c_str());
  }
  return 0;
}
