//===- bench_random_access.cpp - lazy reader smoke + baseline -------------===//
//
// Part of cjpack. MIT license.
//
// Measures what the version-3 index buys and what it costs: packs a
// fixed balanced corpus as an indexed archive at shard counts 1 and 4,
// then contrasts a full unpack against cold single-class fetches (a
// fresh PackedArchiveReader per fetch, so nothing is amortized) and
// reports the index overhead from the wire-level stats walk. The corpus
// is pinned — no CJPACK_SCALE — so the zlib-independent fields are
// bit-stable across machines and CI diffs the output against the
// committed baseline in bench/baselines/BENCH_random_access.json via
// compare_bench.py. Timings and inflate counts are informational.
//
//   bench_random_access [--json FILE]
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "pack/ArchiveReader.h"
#include "pack/Stats.h"
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <zlib.h>

using namespace cjpack;

namespace {

double msSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0 && I + 1 < Argc)
      JsonPath = Argv[++I];
  }

  CorpusSpec Spec;
  Spec.Name = "balanced";
  Spec.Seed = 1234;
  Spec.NumClasses = 48;
  Spec.NumPackages = 4;
  Spec.MeanMethods = 6;
  Spec.MeanStatements = 10;
  BenchData B = loadBench(Spec);
  size_t InputBytes = totalClassBytes(B.StrippedBytes);

  printf("Random-access bench (fixed corpus, cold fetch = fresh reader "
         "per class)\n\n");
  printf("%-14s %8s %12s %10s %10s %12s %11s %12s\n", "corpus", "shards",
         "archive(B)", "index(B)", "full(ms)", "full-infl(B)",
         "fetch(ms)", "fetch-infl(B)");

  std::vector<JsonObject> Rows;
  int Rc = 0;
  for (unsigned Shards : {1u, 4u}) {
    PackOptions Options;
    Options.Shards = Shards;
    Options.Threads = 2;
    Options.RandomAccessIndex = true;
    auto Packed = packClasses(B.Prepared, Options);
    if (!Packed) {
      fprintf(stderr, "s%u: pack failed: %s\n", Shards,
              Packed.message().c_str());
      Rc = 1;
      continue;
    }
    auto Stats = statPackedArchive(Packed->Archive);
    if (!Stats) {
      fprintf(stderr, "s%u: stats failed: %s\n", Shards,
              Stats.message().c_str());
      Rc = 1;
      continue;
    }

    // Full unpack through the reader, timed from open so the two paths
    // pay the same index/dictionary parse.
    auto T0 = std::chrono::steady_clock::now();
    auto Full = PackedArchiveReader::open(Packed->Archive);
    if (!Full || !Full->unpackAll()) {
      fprintf(stderr, "s%u: full unpack failed\n", Shards);
      Rc = 1;
      continue;
    }
    double FullMs = msSince(T0);
    uint64_t FullInflate = Full->inflatedBytes();

    // Cold fetch of every class: fresh reader each time, averaged.
    std::vector<std::string> Names = Full->classNames();
    double FetchMsTotal = 0;
    uint64_t FetchInflateTotal = 0;
    for (const std::string &Name : Names) {
      T0 = std::chrono::steady_clock::now();
      auto Reader = PackedArchiveReader::open(Packed->Archive);
      if (!Reader || !Reader->unpackClass(Name)) {
        fprintf(stderr, "s%u: cold fetch of %s failed\n", Shards,
                Name.c_str());
        Rc = 1;
        break;
      }
      FetchMsTotal += msSince(T0);
      FetchInflateTotal += Reader->inflatedBytes();
    }
    double FetchMs = FetchMsTotal / Names.size();
    uint64_t FetchInflate = FetchInflateTotal / Names.size();

    printf("%-14s %8u %12zu %10zu %10.1f %12llu %11.2f %12llu\n",
           "balanced", Shards, Packed->Archive.size(), Stats->IndexBytes,
           FullMs, static_cast<unsigned long long>(FullInflate), FetchMs,
           static_cast<unsigned long long>(FetchInflate));

    JsonObject Row;
    Row.add("name", "balanced/s" + std::to_string(Shards) + "/indexed");
    Row.add("shards", static_cast<uint64_t>(Shards));
    Row.add("classes", static_cast<uint64_t>(B.Prepared.size()));
    Row.add("input_bytes", static_cast<uint64_t>(InputBytes));
    Row.add("archive_bytes",
            static_cast<uint64_t>(Packed->Archive.size()));
    Row.add("raw_stream_bytes",
            static_cast<uint64_t>(Packed->Sizes.totalRaw()));
    Row.add("index_bytes", static_cast<uint64_t>(Stats->IndexBytes));
    Row.add("full_unpack_ms", FullMs);
    Row.add("full_inflate_bytes", FullInflate);
    Row.add("cold_fetch_ms", FetchMs);
    Row.add("cold_fetch_inflate_bytes", FetchInflate);
    Rows.push_back(std::move(Row));
  }

  if (!JsonPath.empty()) {
    FILE *Out = fopen(JsonPath.c_str(), "w");
    if (!Out) {
      fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    JsonObject Header;
    Header.add("bench", "random_access");
    Header.add("zlib", zlibVersion());
    writeBenchJson(Out, Header, Rows);
    fclose(Out);
    printf("\nwrote %s\n", JsonPath.c_str());
  }
  return Rc;
}
