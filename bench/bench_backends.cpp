//===- bench_backends.cpp - backend tournament smoke + baseline -----------===//
//
// Part of cjpack. MIT license.
//
// Packs one pinned corpus with every uniform compression backend plus
// the per-stream tournament winner ("mixed": for each stream, the
// backend that packed it smallest), round-trips each archive, and
// reports the sizes as JSON. The corpus is pinned — no CJPACK_SCALE —
// so the zlib-independent fields are bit-stable and only the rows that
// contain deflate output move with the zlib version (store / huffman /
// arith archives are fully deterministic outside the dictionary frame).
// CI diffs the output against bench/baselines/BENCH_backends.json via
// compare_bench.py.
//
//   bench_backends [--json FILE]
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "classfile/Writer.h"
#include "pack/Backend.h"
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <zlib.h>

using namespace cjpack;

namespace {

double msSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0 && I + 1 < Argc)
      JsonPath = Argv[++I];
  }

  CorpusSpec Spec;
  Spec.Name = "backends";
  Spec.Seed = 1234;
  Spec.NumClasses = 48;
  Spec.NumPackages = 4;
  Spec.MeanMethods = 6;
  Spec.MeanStatements = 10;
  BenchData B = loadBench(Spec);
  size_t InputBytes = totalClassBytes(B.StrippedBytes);

  printf("Backend tournament bench (fixed corpus, %zu classes)\n\n",
         B.Prepared.size());
  printf("%-9s %12s %12s %7s %8s %9s\n", "backend", "input(B)",
         "archive(B)", "ratio", "pack(ms)", "unpack(ms)");

  PackOptions Base;
  Base.Shards = 4;
  Base.Threads = 2;

  // One uniform pass per backend; remember the per-stream packed sizes
  // so the mixed row can pick each stream's winner.
  std::array<StreamSizes, NumBackends> PerBackend;
  std::vector<JsonObject> Rows;
  int Rc = 0;

  auto runOne = [&](const std::string &Name,
                    const PackOptions &Options) -> const PackResult * {
    static PackResult Last;
    auto T0 = std::chrono::steady_clock::now();
    auto Packed = packClasses(B.Prepared, Options);
    double PackMs = msSince(T0);
    if (!Packed) {
      fprintf(stderr, "%s: pack failed: %s\n", Name.c_str(),
              Packed.message().c_str());
      Rc = 1;
      return nullptr;
    }
    T0 = std::chrono::steady_clock::now();
    auto Restored = unpackClasses(Packed->Archive);
    double UnpackMs = msSince(T0);
    if (!Restored) {
      fprintf(stderr, "%s: unpack failed: %s\n", Name.c_str(),
              Restored.message().c_str());
      Rc = 1;
      return nullptr;
    }
    // Round-trip gate: the baseline must never record an archive that
    // does not restore the prepared classfiles exactly.
    bool Same = Restored->size() == B.Prepared.size();
    for (size_t I = 0; Same && I < Restored->size(); ++I)
      Same = writeClassFile((*Restored)[I]) ==
             writeClassFile(B.Prepared[I]);
    if (!Same) {
      fprintf(stderr, "%s: round-trip mismatch\n", Name.c_str());
      Rc = 1;
      return nullptr;
    }

    printf("%-9s %12zu %12zu %6.1f%% %8.1f %9.1f\n", Name.c_str(),
           InputBytes, Packed->Archive.size(),
           100.0 * Packed->Archive.size() / InputBytes, PackMs, UnpackMs);

    JsonObject Row;
    Row.add("name", Name);
    Row.add("shards", static_cast<uint64_t>(Base.Shards));
    Row.add("classes", static_cast<uint64_t>(B.Prepared.size()));
    Row.add("input_bytes", static_cast<uint64_t>(InputBytes));
    Row.add("archive_bytes", static_cast<uint64_t>(Packed->Archive.size()));
    Row.add("raw_stream_bytes",
            static_cast<uint64_t>(Packed->Sizes.totalRaw()));
    Row.add("ratio",
            static_cast<double>(Packed->Archive.size()) / InputBytes);
    Row.add("pack_ms", PackMs);
    Row.add("unpack_ms", UnpackMs);
    Rows.push_back(std::move(Row));
    Last = std::move(*Packed);
    return &Last;
  };

  for (const CompressionBackend &Backend : allBackends()) {
    PackOptions Options = Base;
    Options.Backend = Backend.Id;
    if (const PackResult *R = runOne(Backend.Name, Options))
      PerBackend[static_cast<uint8_t>(Backend.Id)] = R->Sizes;
  }

  if (Rc == 0) {
    // The tournament winner: per stream, the backend whose uniform pass
    // packed it smallest (registry order breaks ties, like packtool
    // tune).
    std::array<BackendId, NumStreams> Winners;
    for (unsigned I = 0; I < NumStreams; ++I) {
      unsigned Best = 0;
      for (unsigned K = 1; K < NumBackends; ++K)
        if (PerBackend[K].Packed[I] < PerBackend[Best].Packed[I])
          Best = K;
      Winners[I] = static_cast<BackendId>(Best);
    }
    PackOptions Mixed = Base;
    Mixed.StreamBackends = Winners;
    runOne("mixed", Mixed);
  }

  if (!JsonPath.empty()) {
    FILE *Out = fopen(JsonPath.c_str(), "w");
    if (!Out) {
      fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    JsonObject Header;
    Header.add("bench", "backends");
    Header.add("zlib", zlibVersion());
    writeBenchJson(Out, Header, Rows);
    fclose(Out);
    printf("\nwrote %s\n", JsonPath.c_str());
  }
  return Rc;
}
