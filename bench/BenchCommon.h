//===- BenchCommon.h - shared benchmark harness support --------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the table/figure reproduction binaries: loading a
/// benchmark (generate → parse → prepare), the jar-family baseline
/// sizes, raw code-stream extraction, and table formatting.
///
/// All benches honour CJPACK_SCALE (default 1.0) to shrink the corpora
/// for quick runs; the paper-shape conclusions hold at reduced scale.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_BENCH_BENCHCOMMON_H
#define CJPACK_BENCH_BENCHCOMMON_H

#include "classfile/ClassFile.h"
#include "corpus/Corpus.h"
#include "pack/Packer.h"
#include "zip/Jar.h"
#include <string>
#include <vector>

namespace cjpack {

/// One benchmark, fully materialized.
struct BenchData {
  CorpusSpec Spec;
  /// As "distributed": debug info present, per-member deflate.
  std::vector<NamedClass> RawClasses;
  /// Stripped + canonicalized models (pack input).
  std::vector<ClassFile> Prepared;
  /// Bytes of Prepared.
  std::vector<NamedClass> StrippedBytes;
};

/// CJPACK_SCALE env (default 1.0).
double benchScale();

/// Generates and prepares one benchmark.
BenchData loadBench(const CorpusSpec &Spec);

/// Generates and prepares all Table 1 benchmarks at benchScale().
std::vector<BenchData> loadAllBenches();

/// The paper's jar-family baseline sizes for one benchmark.
struct BaselineSizes {
  size_t Sj0r = 0;   ///< stripped classfile bytes, uncompressed
  size_t Jar = 0;    ///< as-distributed jar (debug info kept)
  size_t Sjar = 0;   ///< stripped jar
  size_t Sj0rGz = 0; ///< stored archive gzip'd as a whole
};
BaselineSizes baselineSizes(const BenchData &B);

/// Raw per-component code streams extracted straight from classfiles
/// (for Table 4 and the custom-opcode ablation).
struct RawCodeStreams {
  std::vector<uint8_t> Bytestream; ///< concatenated code arrays
  std::vector<uint8_t> Opcodes;    ///< opcode bytes (incl. wide prefixes)
};
RawCodeStreams extractRawCodeStreams(const std::vector<ClassFile> &Classes);

/// Formats N as "12,345".
std::string withCommas(size_t N);

/// Formats A/B as a percentage string like "61%".
std::string pct(size_t A, size_t B);

/// Ordered key/value builder for the benches' machine-readable output.
/// Values keep insertion order, so the emitted documents diff cleanly
/// between runs — the property the committed bench baselines rely on.
class JsonObject {
public:
  void add(const std::string &Key, const std::string &V);
  void add(const std::string &Key, const char *V);
  void add(const std::string &Key, uint64_t V);
  void add(const std::string &Key, double V);
  void add(const std::string &Key, bool V);
  /// Adds \p RawJson verbatim (for nested objects/arrays).
  void addRaw(const std::string &Key, const std::string &RawJson);

  /// Renders "{...}"; \p Indent spaces prefix every inner line.
  std::string str(unsigned Indent = 0) const;

private:
  std::vector<std::pair<std::string, std::string>> Fields;
};

/// JSON string literal with escaping.
std::string jsonQuote(const std::string &S);

/// Writes a bench report: a top-level object of \p Header fields plus a
/// "rows" array of per-measurement objects.
void writeBenchJson(FILE *Out, const JsonObject &Header,
                    const std::vector<JsonObject> &Rows);

} // namespace cjpack

#endif // CJPACK_BENCH_BENCHCOMMON_H
