//===- bench_serve.cpp - cjpackd serving latency + throughput ------------===//
//
// Part of cjpack. MIT license.
//
// Measures what the hot-archive cache buys: an in-process Server on a
// unix-domain socket serves `unpack-class` against a fixed indexed
// corpus, and every request goes through the real stack — client
// framing, the accept/reader/writer threads, the shared pool, the
// cache. Three measurements:
//
//   cold   every fetch preceded by a cache flush, so each pays the
//          open + mmap + index-parse + shard-inflate cold path
//   hot    cache warmed once, then the same fetches hit the cached
//          reader's already-decoded shard state
//   load   1/4/16 concurrent clients hammering hot fetches, for
//          throughput scaling
//
// The corpus is pinned — no CJPACK_SCALE — so the count fields
// (classes, requests, cache hits/misses) are bit-stable and CI diffs
// them against bench/baselines/BENCH_serve.json via compare_bench.py.
// Latency percentiles and throughput are informational (recorded for
// trend, never compared); archive_bytes gets the usual zlib-drift
// tolerance.
//
//   bench_serve [--json FILE]
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "serve/Client.h"
#include "serve/Server.h"
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>
#include <zlib.h>

using namespace cjpack;
using namespace cjpack::serve;

namespace {

double usSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

double percentile(std::vector<double> Sorted, double Q) {
  if (Sorted.empty())
    return 0;
  std::sort(Sorted.begin(), Sorted.end());
  size_t Rank = static_cast<size_t>(Q * static_cast<double>(Sorted.size()));
  if (Rank >= Sorted.size())
    Rank = Sorted.size() - 1;
  return Sorted[Rank];
}

double mean(const std::vector<double> &V) {
  if (V.empty())
    return 0;
  double Sum = 0;
  for (double X : V)
    Sum += X;
  return Sum / static_cast<double>(V.size());
}

std::string tempName(const char *Suffix) {
  return "/tmp/cjpack_bench_serve_" + std::to_string(::getpid()) + Suffix;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0 && I + 1 < Argc)
      JsonPath = Argv[++I];
  }

  // Fixed corpus: big enough that shard decode dominates the cold
  // path, small enough to keep the bench under a second hot.
  CorpusSpec Spec;
  Spec.Name = "serve";
  Spec.Seed = 4242;
  Spec.NumClasses = 96;
  Spec.NumPackages = 6;
  Spec.MeanMethods = 6;
  Spec.MeanStatements = 10;
  BenchData B = loadBench(Spec);

  PackOptions Options;
  Options.Shards = 4;
  Options.Threads = 2;
  Options.RandomAccessIndex = true;
  auto Packed = packClasses(B.Prepared, Options);
  if (!Packed) {
    fprintf(stderr, "pack failed: %s\n", Packed.message().c_str());
    return 1;
  }
  std::string CjpPath = tempName(".cjp");
  {
    std::ofstream Out(CjpPath, std::ios::binary);
    Out.write(reinterpret_cast<const char *>(Packed->Archive.data()),
              static_cast<std::streamsize>(Packed->Archive.size()));
    if (!Out) {
      fprintf(stderr, "cannot write %s\n", CjpPath.c_str());
      return 1;
    }
  }

  ServerConfig Config;
  Config.UnixSocketPath = tempName(".sock");
  Config.Threads = 4;
  auto Srv = Server::start(Config);
  if (!Srv) {
    fprintf(stderr, "server: %s\n", Srv.message().c_str());
    return 1;
  }

  auto Conn = Client::connectUnix(Config.UnixSocketPath);
  if (!Conn) {
    fprintf(stderr, "connect: %s\n", Conn.message().c_str());
    return 1;
  }

  // Class names straight from a local reader (no server round-trip).
  auto Ref = PackedArchiveReader::open(Packed->Archive);
  if (!Ref) {
    fprintf(stderr, "reader: %s\n", Ref.message().c_str());
    return 1;
  }
  std::vector<std::string> Names = Ref->classNames();
  constexpr size_t NumFetches = 48;

  auto Fetch = [&](Client &C, const std::string &Name) -> bool {
    auto R = C.call(Opcode::UnpackClass, {CjpPath, Name});
    return R && R->St == Status::Ok && !R->Body.empty();
  };

  int Rc = 0;
  std::vector<JsonObject> Rows;
  printf("Serving bench (%zu classes, 4 shards, %zu-byte archive)\n\n",
         Names.size(), Packed->Archive.size());
  printf("%-16s %9s %10s %10s %10s %10s\n", "mode", "requests",
         "p50(us)", "p99(us)", "mean(us)", "hits/miss");

  // Cold: flush before every fetch, so each request pays the whole
  // open + index parse + shard inflate path.
  CacheStats Before = (*Srv)->cache().stats();
  std::vector<double> ColdUs;
  for (size_t I = 0; I < NumFetches; ++I) {
    auto Fl = Conn->call(Opcode::CacheFlush);
    if (!Fl || Fl->St != Status::Ok) {
      fprintf(stderr, "flush failed\n");
      return 1;
    }
    auto T0 = std::chrono::steady_clock::now();
    if (!Fetch(*Conn, Names[I % Names.size()])) {
      fprintf(stderr, "cold fetch failed\n");
      Rc = 1;
    }
    ColdUs.push_back(usSince(T0));
  }
  CacheStats AfterCold = (*Srv)->cache().stats();
  uint64_t ColdHits = AfterCold.Hits - Before.Hits;
  uint64_t ColdMisses = AfterCold.Misses - Before.Misses;
  printf("%-16s %9zu %10.0f %10.0f %10.0f %6llu/%llu\n", "serve/cold",
         NumFetches, percentile(ColdUs, 0.50), percentile(ColdUs, 0.99),
         mean(ColdUs), static_cast<unsigned long long>(ColdHits),
         static_cast<unsigned long long>(ColdMisses));

  // Hot: warm the cache once, then the same fetch mix.
  if (!Fetch(*Conn, Names[0])) {
    fprintf(stderr, "warm fetch failed\n");
    Rc = 1;
  }
  CacheStats BeforeHot = (*Srv)->cache().stats();
  std::vector<double> HotUs;
  for (size_t I = 0; I < NumFetches; ++I) {
    auto T0 = std::chrono::steady_clock::now();
    if (!Fetch(*Conn, Names[I % Names.size()])) {
      fprintf(stderr, "hot fetch failed\n");
      Rc = 1;
    }
    HotUs.push_back(usSince(T0));
  }
  CacheStats AfterHot = (*Srv)->cache().stats();
  uint64_t HotHits = AfterHot.Hits - BeforeHot.Hits;
  uint64_t HotMisses = AfterHot.Misses - BeforeHot.Misses;
  printf("%-16s %9zu %10.0f %10.0f %10.0f %6llu/%llu\n", "serve/hot",
         NumFetches, percentile(HotUs, 0.50), percentile(HotUs, 0.99),
         mean(HotUs), static_cast<unsigned long long>(HotHits),
         static_cast<unsigned long long>(HotMisses));

  double Speedup = mean(HotUs) > 0 ? mean(ColdUs) / mean(HotUs) : 0;
  printf("\nhot fetch is %.1fx faster than cold (mean %0.f us vs "
         "%.0f us)\n\n",
         Speedup, mean(HotUs), mean(ColdUs));

  {
    JsonObject Row;
    Row.add("name", "serve/cold");
    Row.add("classes", static_cast<uint64_t>(Names.size()));
    Row.add("requests", static_cast<uint64_t>(NumFetches));
    Row.add("cache_hits", ColdHits);
    Row.add("cache_misses", ColdMisses);
    Row.add("archive_bytes", static_cast<uint64_t>(Packed->Archive.size()));
    Row.add("p50_us", percentile(ColdUs, 0.50));
    Row.add("p99_us", percentile(ColdUs, 0.99));
    Row.add("mean_us", mean(ColdUs));
    Rows.push_back(std::move(Row));
  }
  {
    JsonObject Row;
    Row.add("name", "serve/hot");
    Row.add("classes", static_cast<uint64_t>(Names.size()));
    Row.add("requests", static_cast<uint64_t>(NumFetches));
    Row.add("cache_hits", HotHits);
    Row.add("cache_misses", HotMisses);
    Row.add("archive_bytes", static_cast<uint64_t>(Packed->Archive.size()));
    Row.add("p50_us", percentile(HotUs, 0.50));
    Row.add("p99_us", percentile(HotUs, 0.99));
    Row.add("mean_us", mean(HotUs));
    Row.add("speedup_vs_cold", Speedup);
    Rows.push_back(std::move(Row));
  }

  // Throughput: concurrent clients, hot cache, fixed total requests.
  printf("%-16s %9s %10s %10s\n", "load", "requests", "wall(ms)", "req/s");
  for (unsigned Clients : {1u, 4u, 16u}) {
    constexpr unsigned PerClient = 32;
    std::vector<std::thread> Threads;
    std::vector<unsigned> Failures(Clients, 0);
    auto T0 = std::chrono::steady_clock::now();
    for (unsigned K = 0; K < Clients; ++K) {
      Threads.emplace_back([&, K] {
        auto C = Client::connectUnix(Config.UnixSocketPath);
        if (!C) {
          Failures[K] = PerClient;
          return;
        }
        for (unsigned I = 0; I < PerClient; ++I)
          if (!Fetch(*C, Names[(K * 13 + I) % Names.size()]))
            ++Failures[K];
      });
    }
    for (std::thread &Th : Threads)
      Th.join();
    double WallMs = usSince(T0) / 1000.0;
    unsigned Total = Clients * PerClient;
    unsigned Failed = 0;
    for (unsigned F : Failures)
      Failed += F;
    if (Failed) {
      fprintf(stderr, "clients%u: %u failed fetches\n", Clients, Failed);
      Rc = 1;
    }
    double Rps = WallMs > 0 ? 1000.0 * Total / WallMs : 0;
    printf("%-16s %9u %10.1f %10.0f\n",
           ("serve/clients" + std::to_string(Clients)).c_str(), Total,
           WallMs, Rps);

    JsonObject Row;
    Row.add("name", "serve/clients" + std::to_string(Clients));
    Row.add("clients", static_cast<uint64_t>(Clients));
    Row.add("requests", static_cast<uint64_t>(Total));
    Row.add("failed", static_cast<uint64_t>(Failed));
    Row.add("wall_ms", WallMs);
    Row.add("req_per_sec", Rps);
    Rows.push_back(std::move(Row));
  }

  (*Srv)->requestStop();
  (*Srv)->wait();
  ::remove(CjpPath.c_str());

  if (!JsonPath.empty()) {
    FILE *Out = fopen(JsonPath.c_str(), "w");
    if (!Out) {
      fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    JsonObject Header;
    Header.add("bench", "serve");
    Header.add("zlib", zlibVersion());
    writeBenchJson(Out, Header, Rows);
    fclose(Out);
    printf("\nwrote %s\n", JsonPath.c_str());
  }
  return Rc;
}
