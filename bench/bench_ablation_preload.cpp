//===- bench_ablation_preload.cpp - §14 preloaded references --------------===//
//
// Part of cjpack. MIT license.
//
// The §14 extension the paper proposes but does not implement: a
// standard set of preloaded references to frequently used packages,
// classes, and method references, shared by compressor and
// decompressor. The paper predicts a win on small archives and possible
// regression on large ones (preloaded entries that never occur dilute
// the queues); this bench measures both ends.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include <cstdio>

using namespace cjpack;

int main() {
  printf("Ablation (par. 14): preloaded standard references\n");
  printf("scale=%.2f\n\n", benchScale());
  printf("%-16s %10s %10s %8s\n", "Benchmark", "plain(B)", "preload(B)",
         "delta");
  for (const CorpusSpec &Spec : paperBenchmarks(benchScale())) {
    BenchData B = loadBench(Spec);
    auto Plain = packClasses(B.Prepared, PackOptions());
    PackOptions O;
    O.PreloadStandardRefs = true;
    auto Pre = packClasses(B.Prepared, O);
    if (!Plain || !Pre) {
      fprintf(stderr, "%s: pack failed\n", Spec.Name.c_str());
      continue;
    }
    // Sanity: preloaded archives must still unpack.
    auto U = unpackClasses(Pre->Archive);
    if (!U) {
      fprintf(stderr, "%s: unpack failed: %s\n", Spec.Name.c_str(),
              U.message().c_str());
      return 1;
    }
    long Delta = static_cast<long>(Pre->Archive.size()) -
                 static_cast<long>(Plain->Archive.size());
    printf("%-16s %10zu %10zu %+8ld\n", Spec.Name.c_str(),
           Plain->Archive.size(), Pre->Archive.size(), Delta);
    fflush(stdout);
  }
  printf("\nPaper shape (predicted in par. 14): \"it would help on small\n"
         "archives\"; on large archives the effect washes out or turns\n"
         "slightly negative.\n");
  return 0;
}
