#!/usr/bin/env python3
"""Diff a bench JSON report against its committed baseline.

Usage: compare_bench.py BASELINE.json CURRENT.json

Row-by-row (matched on "name"):
  - exact match required on the zlib-independent fields a row carries
    (pack rows: shards/classes/input_bytes/raw_stream_bytes; lint rows
    add the reference census, diagnostics, and dead-weight counts;
    strip rows add the removed-member counts; scale parse rows add the
    arena counters and view census; serve rows add the request and
    cache-hit/miss counts) — fields absent from the
    baseline row are skipped, so old baselines keep comparing
  - compressed sizes (archive_bytes, default_archive_bytes) must stay
    within TOLERANCE of the baseline (the deflate output legitimately
    drifts a little across zlib versions)
  - timings (pack_ms / unpack_ms / lint_ms), ratio, and the
    per-category packed byte split are informational and never compared
  - latency percentiles (p50_us / p99_us) are likewise never compared,
    but when a row carries them in both reports the relative change is
    printed as a non-failing trend note, so serving-latency drift is
    visible in CI logs without making wall-clock a gating signal

Exits nonzero with a per-field report on any mismatch. To accept an
intended change, regenerate the baseline:

    bench_pack --json bench/baselines/BENCH_pack.json
"""

import json
import sys

TOLERANCE = 0.05  # fraction of the baseline compressed size

EXACT_FIELDS = (
    "shards",
    "classes",
    "input_bytes",
    "raw_stream_bytes",
    "refs_checked",
    "refs_resolved",
    "refs_external",
    "diagnostics",
    "dead_members",
    "dead_pool_entries",
    "stripped_fields",
    "stripped_methods",
    "arena_allocations",
    "arena_bytes",
    "model_views",
    "requests",
    "cache_hits",
    "cache_misses",
)

SIZE_FIELDS = ("archive_bytes", "default_archive_bytes")

# Informational only: reported as a trend note, never a failure.
LATENCY_FIELDS = ("p50_us", "p99_us")


def main():
    if len(sys.argv) != 3:
        sys.stderr.write(__doc__)
        return 2
    with open(sys.argv[1]) as f:
        base = json.load(f)
    with open(sys.argv[2]) as f:
        cur = json.load(f)

    base_rows = {r["name"]: r for r in base["rows"]}
    cur_rows = {r["name"]: r for r in cur["rows"]}

    failures = []
    for name in base_rows:
        if name not in cur_rows:
            failures.append(f"{name}: missing from current report")
    for name in cur_rows:
        if name not in base_rows:
            failures.append(f"{name}: not in baseline")

    for name, b in sorted(base_rows.items()):
        c = cur_rows.get(name)
        if c is None:
            continue
        for field in EXACT_FIELDS:
            if field not in b:
                continue
            if field not in c:
                failures.append(f"{name}: {field} missing from current row")
            elif b[field] != c[field]:
                failures.append(
                    f"{name}: {field} changed {b[field]} -> {c[field]}"
                )
        for field in SIZE_FIELDS:
            if field not in b:
                continue
            if field not in c:
                failures.append(f"{name}: {field} missing from current row")
                continue
            drift = abs(c[field] - b[field])
            limit = TOLERANCE * b[field]
            if drift > limit:
                failures.append(
                    f"{name}: {field} {b[field]} -> {c[field]} "
                    f"(drift {drift}, limit {limit:.0f})"
                )

    trends = []
    for name, b in sorted(base_rows.items()):
        c = cur_rows.get(name)
        if c is None:
            continue
        for field in LATENCY_FIELDS:
            if field not in b or field not in c or not b[field]:
                continue
            delta = 100.0 * (c[field] - b[field]) / b[field]
            trends.append(
                f"{name}: {field} {b[field]:.0f} -> {c[field]:.0f} us "
                f"({delta:+.0f}%)"
            )

    if failures:
        print(f"bench baseline comparison FAILED ({len(failures)} issues):")
        for f in failures:
            print(f"  {f}")
        print(
            "\nIf the change is intended, regenerate the baseline:\n"
            "  bench_pack --json bench/baselines/BENCH_pack.json"
        )
        return 1

    if base.get("zlib") != cur.get("zlib"):
        print(
            f"note: zlib {base.get('zlib')} (baseline) vs "
            f"{cur.get('zlib')} (current); sizes within tolerance"
        )
    if trends:
        print("latency trend (informational, never gating):")
        for t in trends:
            print(f"  {t}")
    print(f"bench baseline comparison OK ({len(base_rows)} rows)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
