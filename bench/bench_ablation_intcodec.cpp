//===- bench_ablation_intcodec.cpp - §6 integer encoding ablation ---------===//
//
// Part of cjpack. MIT license.
//
// Compares the §6 integer encodings on integer streams extracted from a
// real benchmark: fixed two-byte values, 7-bit varints, and the
// range-aware bounded codec (when both sides know the bound), each raw
// and after zlib.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "bytecode/Instruction.h"
#include "support/VarInt.h"
#include "zip/Zlib.h"
#include <cstdio>

using namespace cjpack;

namespace {

struct IntStream {
  const char *Label;
  std::vector<uint32_t> Values;
  uint32_t Bound; ///< known exclusive upper bound (0: unbounded)
};

void report(const IntStream &S) {
  ByteWriter Fixed, Var, Bounded;
  for (uint32_t V : S.Values) {
    Fixed.writeU2(static_cast<uint16_t>(V));
    writeVarUInt(Var, V);
    if (S.Bound)
      writeBounded(Bounded, V, S.Bound);
  }
  printf("%-22s %9zu | %8zu %8zu | %8zu %8zu |", S.Label,
         S.Values.size(), Fixed.size(),
         deflateBytes(Fixed.data()).size(), Var.size(),
         deflateBytes(Var.data()).size());
  if (S.Bound)
    printf(" %8zu %8zu (n=%u)\n", Bounded.size(),
           deflateBytes(Bounded.data()).size(), S.Bound);
  else
    printf(" %8s %8s\n", "-", "-");
}

} // namespace

int main() {
  printf("Ablation (par. 6): integer encodings\n");
  printf("scale=%.2f\n\n", benchScale());
  BenchData B = loadBench(paperBenchmark("javac", benchScale()));

  IntStream Registers{"register numbers", {}, 0};
  IntStream MaxStacks{"max stack sizes", {}, 0};
  IntStream StringLens{"utf8 lengths", {}, 0};
  IntStream BranchMags{"branch magnitudes", {}, 0};
  uint32_t MaxReg = 0;

  for (const ClassFile &CF : B.Prepared) {
    for (uint16_t I = 1; I < CF.CP.count(); ++I)
      if (CF.CP.isValidIndex(I) && CF.CP.entry(I).Tag == CpTag::Utf8)
        StringLens.Values.push_back(
            static_cast<uint32_t>(CF.CP.utf8(I).size()));
    for (const MemberInfo &M : CF.Methods) {
      const AttributeInfo *A = findAttribute(M.Attributes, "Code");
      if (!A)
        continue;
      auto Code = parseCodeAttribute(*A, CF.CP);
      if (!Code)
        continue;
      MaxStacks.Values.push_back(Code->MaxStack);
      auto Insns = decodeCode(Code->Code);
      if (!Insns)
        continue;
      for (const Insn &I : *Insns) {
        if (opInfo(I.Opcode).Format == OpFormat::LocalU1 ||
            opInfo(I.Opcode).Format == OpFormat::Iinc) {
          Registers.Values.push_back(I.LocalIndex);
          MaxReg = std::max(MaxReg, I.LocalIndex);
        }
        if (I.isBranch())
          BranchMags.Values.push_back(static_cast<uint32_t>(
              std::abs(I.BranchTarget - static_cast<int32_t>(I.Offset))));
      }
    }
  }
  Registers.Bound = MaxReg + 1; // both sides know max_locals

  printf("%-22s %9s | %17s | %17s | %s\n", "stream", "count",
         "fixed-u2  +zlib", "varint  +zlib", "bounded  +zlib");
  report(Registers);
  report(MaxStacks);
  report(StringLens);
  report(BranchMags);
  printf("\nPaper shape: varints beat fixed-width before zlib and stay\n"
         "competitive after; the bounded codec matches varints in one\n"
         "byte per value whenever the range is known and small.\n");
  return 0;
}
