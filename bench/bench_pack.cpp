//===- bench_pack.cpp - deterministic pack smoke + baseline ---------------===//
//
// Part of cjpack. MIT license.
//
// Packs three small fixed corpora (balanced / numeric / string-heavy
// code) at shard counts 1 and 4, round-trips each archive, and reports
// the sizes as JSON. The corpora are pinned — no CJPACK_SCALE — so the
// zlib-independent fields (classes, input_bytes, raw_stream_bytes) are
// bit-stable across machines and the archive sizes move only with the
// zlib version. CI runs this and diffs the output against the committed
// baseline in bench/baselines/BENCH_pack.json via compare_bench.py.
//
//   bench_pack [--json FILE]
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "classfile/Writer.h"
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <zlib.h>

using namespace cjpack;

namespace {

double msSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0 && I + 1 < Argc)
      JsonPath = Argv[++I];
  }

  printf("Pack smoke bench (fixed corpora)\n\n");
  printf("%-14s %7s %8s %12s %12s %7s %8s %9s\n", "corpus", "shards",
         "classes", "input(B)", "archive(B)", "ratio", "pack(ms)",
         "unpack(ms)");

  struct {
    const char *Name;
    CodeStyle Style;
  } Styles[] = {{"balanced", CodeStyle::Balanced},
                {"numeric", CodeStyle::Numeric},
                {"stringheavy", CodeStyle::StringHeavy}};

  std::vector<JsonObject> Rows;
  int Rc = 0;
  for (auto &St : Styles) {
    CorpusSpec Spec;
    Spec.Name = St.Name;
    Spec.Seed = 1234;
    Spec.NumClasses = 48;
    Spec.NumPackages = 4;
    Spec.MeanMethods = 6;
    Spec.MeanStatements = 10;
    Spec.Code = St.Style;
    BenchData B = loadBench(Spec);
    size_t InputBytes = totalClassBytes(B.StrippedBytes);

    for (unsigned Shards : {1u, 4u}) {
      PackOptions Options;
      Options.Shards = Shards;
      Options.Threads = 2;
      auto T0 = std::chrono::steady_clock::now();
      auto Packed = packClasses(B.Prepared, Options);
      double PackMs = msSince(T0);
      if (!Packed) {
        fprintf(stderr, "%s/s%u: pack failed: %s\n", St.Name, Shards,
                Packed.message().c_str());
        Rc = 1;
        continue;
      }
      T0 = std::chrono::steady_clock::now();
      auto Restored = unpackClasses(Packed->Archive);
      double UnpackMs = msSince(T0);
      if (!Restored) {
        fprintf(stderr, "%s/s%u: unpack failed: %s\n", St.Name, Shards,
                Restored.message().c_str());
        Rc = 1;
        continue;
      }
      // Round-trip gate: the baseline must never record an archive
      // that does not restore the prepared classfiles exactly.
      bool Same = Restored->size() == B.Prepared.size();
      for (size_t I = 0; Same && I < Restored->size(); ++I)
        Same = writeClassFile((*Restored)[I]) ==
               writeClassFile(B.Prepared[I]);
      if (!Same) {
        fprintf(stderr, "%s/s%u: round-trip mismatch\n", St.Name, Shards);
        Rc = 1;
        continue;
      }

      printf("%-14s %7u %8zu %12zu %12zu %6.1f%% %8.1f %9.1f\n", St.Name,
             Shards, B.Prepared.size(), InputBytes,
             Packed->Archive.size(),
             100.0 * Packed->Archive.size() / InputBytes, PackMs,
             UnpackMs);

      JsonObject Row;
      Row.add("name", std::string(St.Name) + "/s" +
                          std::to_string(Shards));
      Row.add("shards", static_cast<uint64_t>(Shards));
      Row.add("classes", static_cast<uint64_t>(B.Prepared.size()));
      Row.add("input_bytes", static_cast<uint64_t>(InputBytes));
      Row.add("archive_bytes",
              static_cast<uint64_t>(Packed->Archive.size()));
      Row.add("raw_stream_bytes",
              static_cast<uint64_t>(Packed->Sizes.totalRaw()));
      Row.add("ratio",
              static_cast<double>(Packed->Archive.size()) / InputBytes);
      Row.add("pack_ms", PackMs);
      Row.add("unpack_ms", UnpackMs);
      JsonObject Cats;
      for (StreamCategory C :
           {StreamCategory::Strings, StreamCategory::Opcodes,
            StreamCategory::Ints, StreamCategory::Refs,
            StreamCategory::Misc})
        Cats.add(streamCategoryName(C),
                 static_cast<uint64_t>(Packed->Sizes.packedOf(C)));
      Row.addRaw("categories", Cats.str(6));
      Rows.push_back(std::move(Row));
    }
  }

  if (!JsonPath.empty()) {
    FILE *Out = fopen(JsonPath.c_str(), "w");
    if (!Out) {
      fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    JsonObject Header;
    Header.add("bench", "pack");
    Header.add("zlib", zlibVersion());
    writeBenchJson(Out, Header, Rows);
    fclose(Out);
    printf("\nwrote %s\n", JsonPath.c_str());
  }
  return Rc;
}
