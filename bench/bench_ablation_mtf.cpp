//===- bench_ablation_mtf.cpp - §5 ablations on move-to-front -------------===//
//
// Part of cjpack. MIT license.
//
// Two experiments the paper runs in §5's prose:
//
//  1. zlib over MTF indices vs adaptive arithmetic coding of the same
//     indices (for virtual method references). The paper found the
//     arithmetic coder ~2% smaller — before counting its dictionary —
//     and not worth abandoning zlib for.
//
//  2. MTF-transforming the JVM opcode stream before zlib. The paper
//     found this much worse than zlib on the raw opcodes, because MTF
//     destroys the repeating patterns zlib exploits.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "bytecode/Instruction.h"
#include "coder/Arithmetic.h"
#include "mtf/MtfQueue.h"
#include "pack/Model.h"
#include "support/VarInt.h"
#include "zip/Zlib.h"
#include <cstdio>

using namespace cjpack;

namespace {

/// MTF index stream of virtual-method references across a benchmark
/// (0 = first occurrence, k+1 = position k).
std::vector<uint32_t> methodRefIndices(const BenchData &B) {
  Model M;
  MtfQueue Q;
  std::vector<uint32_t> Indices;
  for (const ClassFile &CF : B.Prepared) {
    for (const MemberInfo &Mem : CF.Methods) {
      const AttributeInfo *A = findAttribute(Mem.Attributes, "Code");
      if (!A)
        continue;
      auto Code = parseCodeAttribute(*A, CF.CP);
      if (!Code)
        continue;
      auto Insns = decodeCode(Code->Code);
      if (!Insns)
        continue;
      for (const Insn &I : *Insns) {
        if (I.Opcode != Op::InvokeVirtual)
          continue;
        const CpEntry &E = CF.CP.entry(I.CpIndex);
        const CpEntry &NT = CF.CP.entry(E.Ref2);
        MMethodRef Ref;
        auto Owner = M.internClassByInternalName(CF.CP.className(E.Ref1));
        auto Sig = M.internSignature(CF.CP.utf8(NT.Ref2));
        if (!Owner || !Sig)
          continue;
        Ref.Owner = *Owner;
        Ref.Name = M.internMethodName(CF.CP.utf8(NT.Ref1));
        Ref.Sig = std::move(*Sig);
        uint32_t Id = M.internMethodRef(Ref);
        auto Pos = Q.use(Id);
        Indices.push_back(Pos ? static_cast<uint32_t>(*Pos) + 1 : 0);
      }
    }
  }
  return Indices;
}

size_t zlibIndexBytes(const std::vector<uint32_t> &Indices) {
  ByteWriter W;
  for (uint32_t I : Indices)
    writeVarUInt(W, I);
  return deflateBytes(W.data()).size();
}

size_t arithmeticIndexBytes(const std::vector<uint32_t> &Indices) {
  uint32_t MaxSym = 1;
  for (uint32_t I : Indices)
    MaxSym = std::max(MaxSym, I + 1);
  AdaptiveModel Model(MaxSym);
  ArithmeticEncoder Enc;
  for (uint32_t I : Indices)
    Enc.encode(Model, I);
  return Enc.finish().size();
}

std::vector<uint8_t> mtfBytes(const std::vector<uint8_t> &Stream) {
  // Classic byte-wise move-to-front transform.
  std::vector<uint8_t> Order(256);
  for (int I = 0; I < 256; ++I)
    Order[I] = static_cast<uint8_t>(I);
  std::vector<uint8_t> Out;
  Out.reserve(Stream.size());
  for (uint8_t B : Stream) {
    size_t Pos = 0;
    while (Order[Pos] != B)
      ++Pos;
    Out.push_back(static_cast<uint8_t>(Pos));
    Order.erase(Order.begin() + static_cast<long>(Pos));
    Order.insert(Order.begin(), B);
  }
  return Out;
}

} // namespace

int main() {
  printf("Ablation (par. 5): move-to-front encoding choices\n");
  printf("scale=%.2f\n\n", benchScale());

  printf("1. Virtual-method-reference MTF indices: zlib vs arithmetic\n");
  printf("%-16s %10s %12s %12s %8s\n", "Benchmark", "refs",
         "zlib(B)", "arith(B)", "arith/zlib");
  for (const char *Name : {"rt", "javac", "swingall", "jess"}) {
    BenchData B = loadBench(paperBenchmark(Name, benchScale()));
    std::vector<uint32_t> Indices = methodRefIndices(B);
    if (Indices.empty())
      continue;
    size_t Z = zlibIndexBytes(Indices);
    size_t A = arithmeticIndexBytes(Indices);
    printf("%-16s %10zu %12zu %12zu %7s\n", Name, Indices.size(), Z, A,
           pct(A, Z).c_str());
    fflush(stdout);
  }
  printf("Paper shape: arithmetic coding is within a few percent of\n"
         "zlib (the paper saw zlib ~2%% larger on rt.jar) — not worth a\n"
         "custom decoder.\n\n");

  printf("2. Opcode stream: zlib direct vs MTF-then-zlib\n");
  printf("%-16s %10s %12s %12s %10s\n", "Benchmark", "opcodes",
         "zlib(B)", "mtf+zlib(B)", "mtf/plain");
  for (const char *Name : {"javac", "mpegaudio", "jess"}) {
    BenchData B = loadBench(paperBenchmark(Name, benchScale()));
    RawCodeStreams Raw = extractRawCodeStreams(B.Prepared);
    size_t Plain = deflateBytes(Raw.Opcodes).size();
    size_t Mtf = deflateBytes(mtfBytes(Raw.Opcodes)).size();
    printf("%-16s %10zu %12zu %12zu %9s\n", Name, Raw.Opcodes.size(),
           Plain, Mtf, pct(Mtf, Plain).c_str());
    fflush(stdout);
  }
  printf("Paper shape: MTF destroys opcode digram patterns; the\n"
         "MTF-transformed stream compresses notably worse.\n");
  return 0;
}
