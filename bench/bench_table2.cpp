//===- bench_table2.cpp - Table 2: classfile breakdown --------------------===//
//
// Part of cjpack. MIT license.
//
// Reproduces Table 2: where the bytes of the swingall and javac
// benchmarks live — field/method definitions, code, constant pool —
// and how much of the Utf8 block survives sharing across classfiles and
// the paper's package/signature factoring (§3, §4).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "pack/Model.h"
#include <cstdio>
#include <set>

using namespace cjpack;

namespace {

struct Breakdown {
  size_t Total = 0;
  size_t FieldDefs = 0;
  size_t MethodDefs = 0;
  size_t Code = 0;
  size_t OtherCp = 0;
  size_t Utf8 = 0;
  size_t Utf8Shared = 0;
  size_t Utf8Factored = 0;
};

size_t attrBytes(const AttributeInfo &A) { return 6 + A.Bytes.size(); }

Breakdown analyze(const BenchData &B) {
  Breakdown Out;
  std::set<std::string, std::less<>> SharedTexts;
  size_t StringConstChars = 0;
  std::set<std::string, std::less<>> SeenStringConsts;

  for (size_t C = 0; C < B.Prepared.size(); ++C) {
    const ClassFile &CF = B.Prepared[C];
    Out.Total += B.StrippedBytes[C].Data.size();

    for (const MemberInfo &F : CF.Fields) {
      Out.FieldDefs += 8;
      for (const AttributeInfo &A : F.Attributes)
        Out.FieldDefs += attrBytes(A);
    }
    for (const MemberInfo &M : CF.Methods) {
      Out.MethodDefs += 8;
      for (const AttributeInfo &A : M.Attributes) {
        if (A.Name == "Code")
          Out.Code += attrBytes(A);
        else
          Out.MethodDefs += attrBytes(A);
      }
    }

    for (uint16_t I = 1; I < CF.CP.count(); ++I) {
      if (!CF.CP.isValidIndex(I))
        continue;
      const CpEntry &E = CF.CP.entry(I);
      switch (E.Tag) {
      case CpTag::Utf8:
        Out.Utf8 += 3 + E.Text.size();
        SharedTexts.emplace(E.Text);
        break;
      case CpTag::Integer:
      case CpTag::Float:
        Out.OtherCp += 5;
        break;
      case CpTag::Long:
      case CpTag::Double:
        Out.OtherCp += 9;
        break;
      case CpTag::Class:
      case CpTag::String:
        Out.OtherCp += 3;
        break;
      default:
        Out.OtherCp += 5;
        break;
      }
      if (E.Tag == CpTag::String &&
          SeenStringConsts.emplace(CF.CP.utf8(E.Ref1)).second)
        StringConstChars += CF.CP.utf8(E.Ref1).size();
    }
  }

  for (const std::string &S : SharedTexts)
    Out.Utf8Shared += 3 + S.size();

  // After factoring (§4), the character payload is: each distinct
  // package name, simple class name, and member name once, plus the
  // distinct string constants. Descriptor strings vanish entirely —
  // they become arrays of class references.
  size_t Chars = StringConstChars;
  std::set<std::string, std::less<>> Pkgs, Simples, FieldNames, MethodNames;
  for (size_t C = 0; C < B.Prepared.size(); ++C) {
    const ClassFile &CF = B.Prepared[C];
    auto NoteClass = [&](std::string_view Internal) {
      std::string Name(Internal);
      while (!Name.empty() && Name[0] == '[')
        Name.erase(Name.begin());
      if (!Name.empty() && Name[0] == 'L')
        Name = Name.substr(1, Name.size() - 2);
      else if (Name.size() <= 1)
        return; // primitive
      size_t Slash = Name.rfind('/');
      if (Slash == std::string::npos) {
        Pkgs.insert("");
        Simples.insert(Name);
      } else {
        Pkgs.insert(Name.substr(0, Slash));
        Simples.insert(Name.substr(Slash + 1));
      }
    };
    auto NoteDesc = [&](std::string_view Desc) {
      auto M = parseMethodDescriptor(Desc);
      if (M) {
        for (const TypeDesc &P : M->Params)
          if (P.Base == 'L')
            NoteClass(P.ClassName);
        if (M->Ret.Base == 'L')
          NoteClass(M->Ret.ClassName);
        return;
      }
      auto T = parseFieldDescriptor(Desc);
      if (T && T->Base == 'L')
        NoteClass(T->ClassName);
    };
    for (uint16_t I = 1; I < CF.CP.count(); ++I) {
      if (!CF.CP.isValidIndex(I))
        continue;
      const CpEntry &E = CF.CP.entry(I);
      if (E.Tag == CpTag::Class)
        NoteClass(CF.CP.className(I));
      if (E.Tag == CpTag::NameAndType)
        NoteDesc(CF.CP.utf8(E.Ref2));
    }
    for (const MemberInfo &F : CF.Fields) {
      FieldNames.emplace(CF.CP.utf8(F.NameIndex));
      NoteDesc(CF.CP.utf8(F.DescriptorIndex));
    }
    for (const MemberInfo &M : CF.Methods) {
      MethodNames.emplace(CF.CP.utf8(M.NameIndex));
      NoteDesc(CF.CP.utf8(M.DescriptorIndex));
    }
    for (uint16_t I = 1; I < CF.CP.count(); ++I) {
      if (!CF.CP.isValidIndex(I))
        continue;
      const CpEntry &E = CF.CP.entry(I);
      if (E.Tag == CpTag::FieldRef || E.Tag == CpTag::MethodRef ||
          E.Tag == CpTag::InterfaceMethodRef) {
        const CpEntry &NT = CF.CP.entry(E.Ref2);
        if (E.Tag == CpTag::FieldRef)
          FieldNames.emplace(CF.CP.utf8(NT.Ref1));
        else
          MethodNames.emplace(CF.CP.utf8(NT.Ref1));
      }
    }
  }
  for (const auto &S : Pkgs)
    Chars += S.size();
  for (const auto &S : Simples)
    Chars += S.size();
  for (const auto &S : FieldNames)
    Chars += S.size();
  for (const auto &S : MethodNames)
    Chars += S.size();
  Out.Utf8Factored = Chars;
  return Out;
}

void report(const char *Name, const Breakdown &B) {
  printf("%-34s %10s K\n", (std::string(Name) + " total").c_str(),
         withCommas(B.Total / 1024).c_str());
  printf("  %-32s %10s K\n", "Field definitions",
         withCommas(B.FieldDefs / 1024).c_str());
  printf("  %-32s %10s K\n", "Method definitions",
         withCommas(B.MethodDefs / 1024).c_str());
  printf("  %-32s %10s K\n", "Code",
         withCommas(B.Code / 1024).c_str());
  printf("  %-32s %10s K\n", "other constant pool",
         withCommas(B.OtherCp / 1024).c_str());
  printf("  %-32s %10s K\n", "Utf8 entries",
         withCommas(B.Utf8 / 1024).c_str());
  printf("  %-32s %10s K (%s of unshared)\n", "  if shared",
         withCommas(B.Utf8Shared / 1024).c_str(),
         pct(B.Utf8Shared, B.Utf8).c_str());
  printf("  %-32s %10s K (%s of unshared)\n", "  if shared & factored",
         withCommas(B.Utf8Factored / 1024).c_str(),
         pct(B.Utf8Factored, B.Utf8).c_str());
  printf("\n");
}

} // namespace

int main() {
  printf("Table 2: classfile breakdown (uncompressed sizes)\n");
  printf("scale=%.2f\n\n", benchScale());
  for (const char *Name : {"swingall", "javac"}) {
    BenchData B = loadBench(paperBenchmark(Name, benchScale()));
    report(Name, analyze(B));
  }
  printf("Paper shape: Utf8 entries dominate the classfile; sharing\n"
         "them across the archive removes a modest slice, factoring\n"
         "packages out of classnames and classnames out of signatures\n"
         "removes most of what remains (swingall: 2037K -> 1704K -> "
         "235K).\n");
  return 0;
}
