//===- bench_table3.cpp - Table 3: compressed reference sizes -------------===//
//
// Part of cjpack. MIT license.
//
// Reproduces Table 3: the zlib-compressed size of the reference streams
// under each §5.1 encoding scheme, for every benchmark. The packed
// archive is built once per (benchmark, scheme); the Refs category of
// the per-stream accounting is exactly "the size of compressed
// references".
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include <cstdio>

using namespace cjpack;

int main() {
  static const RefScheme Schemes[] = {
      RefScheme::Simple,        RefScheme::Basic,
      RefScheme::Freq,          RefScheme::Cache,
      RefScheme::MtfBasic,      RefScheme::MtfTransients,
      RefScheme::MtfContext,    RefScheme::MtfTransientsContext,
  };
  printf("Table 3: size (in bytes) of compressed references\n");
  printf("scale=%.2f\n\n", benchScale());
  printf("%-16s", "Benchmark");
  for (RefScheme S : Schemes)
    printf(" %13s", refSchemeName(S));
  printf("\n");
  std::vector<std::string> RawRows;
  for (const CorpusSpec &Spec : paperBenchmarks(benchScale())) {
    BenchData B = loadBench(Spec);
    printf("%-16s", Spec.Name.c_str());
    char RawRow[512];
    int RawAt = snprintf(RawRow, sizeof(RawRow), "%-16s",
                         Spec.Name.c_str());
    for (RefScheme S : Schemes) {
      PackOptions O;
      O.Scheme = S;
      auto P = packClasses(B.Prepared, O);
      if (!P) {
        printf(" %13s", "error");
        continue;
      }
      size_t Raw = 0;
      for (unsigned I = 0; I < NumStreams; ++I)
        if (streamCategory(static_cast<StreamId>(I)) ==
            StreamCategory::Refs)
          Raw += P->Sizes.Raw[I];
      printf(" %13s",
             withCommas(P->Sizes.packedOf(StreamCategory::Refs)).c_str());
      RawAt += snprintf(RawRow + RawAt, sizeof(RawRow) - RawAt,
                        " %13s", withCommas(Raw).c_str());
      fflush(stdout);
    }
    printf("\n");
    RawRows.push_back(RawRow);
  }
  printf("\nUncompressed reference bytes (before zlib), same schemes:\n");
  printf("%-16s", "Benchmark");
  for (RefScheme S : Schemes)
    printf(" %13s", refSchemeName(S));
  printf("\n");
  for (const std::string &Row : RawRows)
    printf("%s\n", Row.c_str());
  printf("\nPaper shape: Simple > Basic > Freq > Cache > MTF family. In\n"
         "this reproduction the pre-zlib table shows that ordering\n"
         "cleanly; after zlib, Freq's globally-ranked ids lose to\n"
         "Basic's locality-correlated ids (the same compress-vs-pattern\n"
         "tension §5 discusses for MTF and arithmetic coding).\n");
  return 0;
}
