//===- bench_scale.cpp - 10k-class scale campaign -------------------------===//
//
// Part of cjpack. MIT license.
//
// The scale campaign: a 10,000-class / 50+ MB corpus (an order of
// magnitude past the paper's largest benchmark) driven through the
// zero-copy ingestion model and the sharded pack pipeline.
//
// Measures:
//   * parse throughput (MB/s) for the three ownership modes — Owning
//     (bulk arena copy), Borrowed (no copy at all), and the
//     rvalue-vector adopt overload (buffer donation) — plus the arena
//     counters that quantify the allocation reduction: one or two
//     arena allocations per class instead of one malloc per string
//     and attribute payload
//   * pack wall time, serial (1 shard / 1 thread) versus sharded
//     (8 shards / all threads) versus autotuned (--shards=auto), and
//     the sharded archive's size overhead
//   * peak RSS via getrusage
//
//   bench_scale [--json FILE] [--classes N]
//
// The corpus is pinned (no CJPACK_SCALE): classes, input_bytes,
// raw_stream_bytes, and the arena counters are bit-stable across
// machines, so CI diffs them against bench/baselines/BENCH_scale.json
// via compare_bench.py. Timings, throughput, and the speedup ratio are
// informational — the committed baseline records them for the machine
// named by its hardware_concurrency field (speedup needs cores: on a
// 1-core container the sharded run cannot beat serial). The autotuned
// row carries no size fields at all — its shard count is
// machine-dependent by design.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "classfile/Reader.h"
#include "classfile/Transform.h"
#include "classfile/Writer.h"
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <zlib.h>

#ifdef __unix__
#include <sys/resource.h>
#endif

using namespace cjpack;

namespace {

double msSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

/// Process peak RSS in KB (0 where unsupported).
uint64_t peakRssKb() {
#ifdef __unix__
  rusage Ru{};
  getrusage(RUSAGE_SELF, &Ru);
  return static_cast<uint64_t>(Ru.ru_maxrss);
#else
  return 0;
#endif
}

struct ParseStats {
  double Ms = 0;
  uint64_t ArenaAllocations = 0;
  uint64_t ArenaBytes = 0;
  uint64_t Views = 0; ///< string_view/span fields the model holds
};

/// Counts the borrowed views one class holds — each of these was an
/// owning std::string / std::vector (one allocation apiece) before the
/// zero-copy model.
uint64_t countViews(ClassFile &CF) {
  uint64_t N = 0;
  for (uint16_t I = 1; I < CF.CP.count(); ++I)
    if (CF.CP.isValidIndex(I) && CF.CP.entry(I).Tag == CpTag::Utf8)
      ++N;
  N += CF.Attributes.size();
  for (const MemberInfo &F : CF.Fields)
    N += F.Attributes.size();
  for (const MemberInfo &M : CF.Methods)
    N += M.Attributes.size();
  return N;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath;
  unsigned NumClasses = 10000;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0 && I + 1 < Argc)
      JsonPath = Argv[++I];
    else if (std::strcmp(Argv[I], "--classes") == 0 && I + 1 < Argc)
      NumClasses = static_cast<unsigned>(std::atoi(Argv[++I]));
  }

  CorpusSpec Spec = scaleBenchmark(NumClasses);
  printf("Scale campaign: %u classes (%s)\n", NumClasses,
         Spec.Name.c_str());
  std::vector<NamedClass> Raw = generateCorpus(Spec);
  size_t InputBytes = totalClassBytes(Raw);
  printf("corpus: %zu classes, %s bytes\n\n", Raw.size(),
         withCommas(InputBytes).c_str());

  std::vector<JsonObject> Rows;
  int Rc = 0;

  //===--------------------------------------------------------------------===//
  // Parse throughput, three ownership modes
  //===--------------------------------------------------------------------===//

  auto ParseRow = [&](const char *Name, const ParseStats &S) {
    double MbPerS = InputBytes / 1e6 / (S.Ms / 1e3);
    printf("parse %-10s %8.1f ms  %7.1f MB/s  %10llu arena allocs  "
           "%12llu arena bytes\n",
           Name, S.Ms, MbPerS,
           static_cast<unsigned long long>(S.ArenaAllocations),
           static_cast<unsigned long long>(S.ArenaBytes));
    JsonObject Row;
    Row.add("name", std::string("scale/parse-") + Name);
    Row.add("classes", static_cast<uint64_t>(Raw.size()));
    Row.add("input_bytes", static_cast<uint64_t>(InputBytes));
    Row.add("parse_ms", S.Ms);
    Row.add("mb_per_s", MbPerS);
    Row.add("arena_allocations", S.ArenaAllocations);
    Row.add("arena_bytes", S.ArenaBytes);
    Row.add("model_views", S.Views);
    Rows.push_back(std::move(Row));
  };

  auto ParseAll = [&](ParseMode Mode) {
    ParseStats S;
    auto T0 = std::chrono::steady_clock::now();
    for (const NamedClass &C : Raw) {
      auto CF = parseClassFile(C.Data, {}, Mode);
      if (!CF) {
        fprintf(stderr, "parse failed: %s\n", CF.message().c_str());
        exit(1);
      }
      S.ArenaAllocations += CF->CP.arena().allocationCount();
      S.ArenaBytes += CF->CP.arena().bytesUsed();
      S.Views += countViews(*CF);
    }
    S.Ms = msSince(T0);
    return S;
  };

  ParseRow("owning", ParseAll(ParseMode::Owning));
  ParseRow("borrowed", ParseAll(ParseMode::Borrowed));

  {
    // Adopt: the caller's buffer is donated, so stage the copies
    // outside the clock — the mode's point is that a buffer you
    // already own costs nothing to hand over.
    std::vector<std::vector<uint8_t>> Buffers;
    Buffers.reserve(Raw.size());
    for (const NamedClass &C : Raw)
      Buffers.push_back(C.Data);
    ParseStats S;
    auto T0 = std::chrono::steady_clock::now();
    for (std::vector<uint8_t> &Buf : Buffers) {
      auto CF = parseClassFile(std::move(Buf));
      if (!CF) {
        fprintf(stderr, "parse failed: %s\n", CF.message().c_str());
        return 1;
      }
      S.ArenaAllocations += CF->CP.arena().allocationCount();
      S.ArenaBytes += CF->CP.arena().bytesUsed();
      S.Views += countViews(*CF);
    }
    S.Ms = msSince(T0);
    ParseRow("adopt", S);
  }

  //===--------------------------------------------------------------------===//
  // Pack wall: serial vs sharded vs autotuned
  //===--------------------------------------------------------------------===//

  std::vector<ClassFile> Prepared;
  Prepared.reserve(Raw.size());
  for (const NamedClass &C : Raw) {
    auto CF = parseClassFile(C.Data);
    if (!CF || prepareForPacking(*CF)) {
      fprintf(stderr, "prepare failed for %s\n", C.Name.c_str());
      return 1;
    }
    Prepared.push_back(std::move(*CF));
  }

  printf("\n");
  double SerialMs = 0;
  size_t SerialBytes = 0;
  auto PackRow = [&](const char *Name, unsigned Shards, unsigned Threads,
                     bool CompareSizes) {
    PackOptions O;
    O.Shards = Shards;
    O.Threads = Threads;
    auto T0 = std::chrono::steady_clock::now();
    auto Packed = packClasses(Prepared, O);
    double PackMs = msSince(T0);
    if (!Packed) {
      fprintf(stderr, "%s: pack failed: %s\n", Name,
              Packed.message().c_str());
      Rc = 1;
      return;
    }
    T0 = std::chrono::steady_clock::now();
    auto Restored = unpackClasses(Packed->Archive, Threads);
    double UnpackMs = msSince(T0);
    if (!Restored || Restored->size() != Prepared.size()) {
      fprintf(stderr, "%s: unpack failed\n", Name);
      Rc = 1;
      return;
    }
    size_t ResolvedShards = Packed->Trace.Shards.size();
    printf("pack %-12s %4zu shards %10.1f ms pack  %10.1f ms unpack  "
           "%12zu bytes\n",
           Name, ResolvedShards, PackMs, UnpackMs,
           Packed->Archive.size());

    JsonObject Row;
    Row.add("name", std::string("scale/pack-") + Name);
    Row.add("classes", static_cast<uint64_t>(Prepared.size()));
    Row.add("input_bytes", static_cast<uint64_t>(InputBytes));
    if (CompareSizes) {
      Row.add("shards", static_cast<uint64_t>(ResolvedShards));
      Row.add("archive_bytes",
              static_cast<uint64_t>(Packed->Archive.size()));
      Row.add("raw_stream_bytes",
              static_cast<uint64_t>(Packed->Sizes.totalRaw()));
    } else {
      // Autotuned: the shard count (and with it every size) depends on
      // hardware_concurrency, so none of it belongs in a cross-machine
      // baseline diff.
      Row.add("resolved_shards", static_cast<uint64_t>(ResolvedShards));
    }
    Row.add("pack_ms", PackMs);
    Row.add("unpack_ms", UnpackMs);
    if (SerialMs > 0) {
      Row.add("speedup_vs_serial", SerialMs / PackMs);
      if (CompareSizes && SerialBytes > 0)
        Row.add("size_overhead_vs_serial",
                static_cast<double>(Packed->Archive.size()) / SerialBytes -
                    1.0);
    } else {
      SerialMs = PackMs;
      SerialBytes = Packed->Archive.size();
    }
    Rows.push_back(std::move(Row));
  };

  PackRow("serial", /*Shards=*/1, /*Threads=*/1, /*CompareSizes=*/true);
  PackRow("sharded8", /*Shards=*/8, /*Threads=*/0, /*CompareSizes=*/true);
  PackRow("auto", /*Shards=*/0, /*Threads=*/0, /*CompareSizes=*/false);

  printf("\npeak RSS: %s KB\n", withCommas(peakRssKb()).c_str());

  if (!JsonPath.empty()) {
    FILE *Out = fopen(JsonPath.c_str(), "w");
    if (!Out) {
      fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    JsonObject Header;
    Header.add("bench", "scale");
    Header.add("zlib", zlibVersion());
    Header.add("hardware_concurrency",
               static_cast<uint64_t>(std::thread::hardware_concurrency()));
    Header.add("peak_rss_kb", peakRssKb());
    writeBenchJson(Out, Header, Rows);
    fclose(Out);
    printf("wrote %s\n", JsonPath.c_str());
  }
  return Rc;
}
