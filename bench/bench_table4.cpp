//===- bench_table4.cpp - Table 4: bytecode component compression ---------===//
//
// Part of cjpack. MIT license.
//
// Reproduces Table 4: compression factors for bytecode split into
// streams (§7) on javac and mpegaudio — the undivided bytestream, the
// opcode stream alone, opcodes collapsed under the approximate stack
// state (§7.1), opcodes after the custom-opcode digram pass (§7.2), and
// the register / branch-offset / method-reference streams.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "pack/CustomOpcodes.h"
#include "zip/Zlib.h"
#include <cstdio>

using namespace cjpack;

namespace {

struct Row {
  size_t Raw = 0;
  size_t Packed = 0;
};

void printRow(const char *Label, Row A, Row B) {
  printf("%-24s %8s %8s\n", Label, pct(A.Packed, A.Raw).c_str(),
         pct(B.Packed, B.Raw).c_str());
}

struct BenchRows {
  Row Bytestream, Opcodes, StackState, CustomOps, Registers, Branches,
      MethodRefs;
};

BenchRows analyze(const BenchData &B) {
  BenchRows R;
  RawCodeStreams Raw = extractRawCodeStreams(B.Prepared);
  R.Bytestream = {Raw.Bytestream.size(),
                  deflateBytes(Raw.Bytestream).size()};

  PackOptions Plain;
  Plain.CollapseOpcodes = false;
  auto PPlain = packClasses(B.Prepared, Plain);
  PackOptions Collapse;
  auto PColl = packClasses(B.Prepared, Collapse);
  if (!PPlain || !PColl) {
    fprintf(stderr, "pack failed\n");
    exit(1);
  }
  unsigned Ops = static_cast<unsigned>(StreamId::Opcodes);
  unsigned Regs = static_cast<unsigned>(StreamId::Registers);
  unsigned Br = static_cast<unsigned>(StreamId::BranchOffsets);
  unsigned MR = static_cast<unsigned>(StreamId::MethodRefs);
  R.Opcodes = {PPlain->Sizes.Raw[Ops], PPlain->Sizes.Packed[Ops]};
  // Collapsed-opcode ratio is reported against the same (uncollapsed)
  // opcode byte count so the rows compare like the paper's.
  R.StackState = {PPlain->Sizes.Raw[Ops], PColl->Sizes.Packed[Ops]};

  CustomOpcodeResult Custom =
      buildCustomOpcodes(Raw.Opcodes, /*MaxNewOps=*/54,
                         /*FirstNewSymbol=*/202);
  std::vector<uint8_t> CustomBytes;
  CustomBytes.reserve(Custom.Stream.size());
  for (uint16_t S : Custom.Stream)
    CustomBytes.push_back(static_cast<uint8_t>(S));
  R.CustomOps = {Raw.Opcodes.size(), deflateBytes(CustomBytes).size()};

  R.Registers = {PPlain->Sizes.Raw[Regs], PPlain->Sizes.Packed[Regs]};
  R.Branches = {PPlain->Sizes.Raw[Br], PPlain->Sizes.Packed[Br]};
  R.MethodRefs = {PPlain->Sizes.Raw[MR], PPlain->Sizes.Packed[MR]};
  return R;
}

} // namespace

int main() {
  printf("Table 4: compression for bytecode components\n");
  printf("scale=%.2f\n\n", benchScale());
  BenchRows Javac = analyze(loadBench(paperBenchmark("javac", benchScale())));
  BenchRows Mpeg =
      analyze(loadBench(paperBenchmark("mpegaudio", benchScale())));
  printf("%-24s %8s %8s\n", "Compression for", "javac", "mpegaudio");
  printRow("Bytestream", Javac.Bytestream, Mpeg.Bytestream);
  printRow("Opcodes", Javac.Opcodes, Mpeg.Opcodes);
  printRow("  using Stack State", Javac.StackState, Mpeg.StackState);
  printRow("  using Custom opcodes", Javac.CustomOps, Mpeg.CustomOps);
  printRow("Register numbers", Javac.Registers, Mpeg.Registers);
  printRow("Branch offsets", Javac.Branches, Mpeg.Branches);
  printRow("Method references", Javac.MethodRefs, Mpeg.MethodRefs);
  printf("\nPaper shape: the opcode stream compresses far better than\n"
         "the undivided bytestream; stack-state collapsing gains a\n"
         "little more; custom opcodes are roughly a wash after zlib.\n");
  return 0;
}
