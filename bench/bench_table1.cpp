//===- bench_table1.cpp - Table 1: benchmark programs ---------------------===//
//
// Part of cjpack. MIT license.
//
// Reproduces Table 1: per benchmark, the sizes of the sj0r (stripped,
// uncompressed), jar (as distributed), sjar (stripped jar), and sj0r.gz
// baselines, plus the paper's three ratio columns.
//
//   bench_table1 [--json FILE]
//
// --json writes the per-benchmark sizes as a JSON array (the CI bench
// smoke uploads it so the size trajectory accumulates). Unknown
// --benchmark_* flags are accepted and ignored for harness
// compatibility.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace cjpack;

int main(int Argc, char **Argv) {
  std::string JsonPath;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0 && I + 1 < Argc)
      JsonPath = Argv[++I];
    // --benchmark_min_time and friends: tolerated, not meaningful here.
  }

  printf("Table 1: benchmark programs (sizes in Kbytes)\n");
  printf("scale=%.2f (set CJPACK_SCALE to adjust)\n\n", benchScale());
  printf("%-16s %8s %8s %8s %9s | %9s %9s %12s  %s\n", "Benchmark",
         "sj0r", "jar", "sjar", "sj0r.gz", "sjar/sj0r", "sjar/jar",
         "sj0r.gz/sjar", "Description");
  struct JsonRow {
    std::string Name;
    BaselineSizes S;
  };
  std::vector<JsonRow> JsonRows;
  for (const CorpusSpec &Spec : paperBenchmarks(benchScale())) {
    BenchData B = loadBench(Spec);
    BaselineSizes S = baselineSizes(B);
    printf("%-16s %8s %8s %8s %9s | %9s %9s %12s  %s\n",
           Spec.Name.c_str(), withCommas(S.Sj0r / 1024).c_str(),
           withCommas(S.Jar / 1024).c_str(),
           withCommas(S.Sjar / 1024).c_str(),
           withCommas(S.Sj0rGz / 1024).c_str(),
           pct(S.Sjar, S.Sj0r).c_str(), pct(S.Sjar, S.Jar).c_str(),
           pct(S.Sj0rGz, S.Sjar).c_str(), Spec.Description.c_str());
    fflush(stdout);
    JsonRows.push_back({Spec.Name, S});
  }
  printf("\nPaper shape: sjar ~76-96%% of jar (stripping + canonical\n"
         "constant pool), sj0r.gz ~47-86%% of sjar (whole-archive\n"
         "compression beats per-member compression).\n");

  if (!JsonPath.empty()) {
    FILE *F = fopen(JsonPath.c_str(), "w");
    if (!F) {
      fprintf(stderr, "bench_table1: cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    fprintf(F,
            "{\n  \"benchmark\": \"bench_table1\",\n"
            "  \"scale\": %.3f,\n  \"rows\": [\n",
            benchScale());
    for (size_t K = 0; K < JsonRows.size(); ++K) {
      const JsonRow &R = JsonRows[K];
      fprintf(F,
              "    {\"name\": \"%s\", \"sj0r\": %zu, \"jar\": %zu, "
              "\"sjar\": %zu, \"sj0r_gz\": %zu}%s\n",
              R.Name.c_str(), R.S.Sj0r, R.S.Jar, R.S.Sjar, R.S.Sj0rGz,
              K + 1 < JsonRows.size() ? "," : "");
    }
    fprintf(F, "  ]\n}\n");
    fclose(F);
    printf("wrote %s\n", JsonPath.c_str());
  }
  return 0;
}
