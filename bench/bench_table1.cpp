//===- bench_table1.cpp - Table 1: benchmark programs ---------------------===//
//
// Part of cjpack. MIT license.
//
// Reproduces Table 1: per benchmark, the sizes of the sj0r (stripped,
// uncompressed), jar (as distributed), sjar (stripped jar), and sj0r.gz
// baselines, plus the paper's three ratio columns.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include <cstdio>

using namespace cjpack;

int main() {
  printf("Table 1: benchmark programs (sizes in Kbytes)\n");
  printf("scale=%.2f (set CJPACK_SCALE to adjust)\n\n", benchScale());
  printf("%-16s %8s %8s %8s %9s | %9s %9s %12s  %s\n", "Benchmark",
         "sj0r", "jar", "sjar", "sj0r.gz", "sjar/sj0r", "sjar/jar",
         "sj0r.gz/sjar", "Description");
  for (const CorpusSpec &Spec : paperBenchmarks(benchScale())) {
    BenchData B = loadBench(Spec);
    BaselineSizes S = baselineSizes(B);
    printf("%-16s %8s %8s %8s %9s | %9s %9s %12s  %s\n",
           Spec.Name.c_str(), withCommas(S.Sj0r / 1024).c_str(),
           withCommas(S.Jar / 1024).c_str(),
           withCommas(S.Sjar / 1024).c_str(),
           withCommas(S.Sj0rGz / 1024).c_str(),
           pct(S.Sjar, S.Sj0r).c_str(), pct(S.Sjar, S.Jar).c_str(),
           pct(S.Sj0rGz, S.Sjar).c_str(), Spec.Description.c_str());
    fflush(stdout);
  }
  printf("\nPaper shape: sjar ~76-96%% of jar (stripping + canonical\n"
         "constant pool), sj0r.gz ~47-86%% of sjar (whole-archive\n"
         "compression beats per-member compression).\n");
  return 0;
}
