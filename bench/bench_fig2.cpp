//===- bench_fig2.cpp - Figure 2: compression ratio vs jar size -----------===//
//
// Part of cjpack. MIT license.
//
// Reproduces Figure 2: the three series (j0r.gz, Jazz, Packed), each a
// percentage of the jar size, against the jar size in KB on a log axis.
// Emitted as CSV plus a coarse ASCII scatter so the crossover shape is
// visible without plotting.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "jazz/Jazz.h"
#include <algorithm>
#include <cmath>
#include <cstdio>

using namespace cjpack;

namespace {

struct Point {
  std::string Name;
  double JarKB;
  double J0rGzPct, JazzPct, PackedPct;
};

} // namespace

int main() {
  std::vector<Point> Points;
  for (const CorpusSpec &Spec : paperBenchmarks(benchScale())) {
    BenchData B = loadBench(Spec);
    size_t Jar = buildJar(B.StrippedBytes).size();
    size_t J0rGz = buildJ0rGz(B.StrippedBytes).size();
    auto Jazz = jazzPack(B.Prepared);
    auto Packed = packClasses(B.Prepared, PackOptions());
    if (!Jazz || !Packed)
      continue;
    Points.push_back({Spec.Name, Jar / 1024.0,
                      100.0 * J0rGz / Jar, 100.0 * Jazz->size() / Jar,
                      100.0 * Packed->Archive.size() / Jar});
  }
  std::sort(Points.begin(), Points.end(),
            [](const Point &A, const Point &B) { return A.JarKB < B.JarKB; });

  printf("Figure 2: compression ratio vs jar size\n");
  printf("scale=%.2f\n\n", benchScale());
  printf("benchmark,jar_kb,j0rgz_pct,jazz_pct,packed_pct\n");
  for (const Point &P : Points)
    printf("%s,%.0f,%.1f,%.1f,%.1f\n", P.Name.c_str(), P.JarKB,
           P.J0rGzPct, P.JazzPct, P.PackedPct);

  // ASCII scatter: x = log10(jar KB), y = % of jar.
  printf("\n  %% of jar   (g = j0r.gz, z = Jazz, p = Packed)\n");
  const int Rows = 20, Cols = 64;
  std::vector<std::string> Grid(Rows, std::string(Cols, ' '));
  double X0 = std::log10(std::max(1.0, Points.front().JarKB));
  double X1 = std::log10(Points.back().JarKB * 1.1);
  auto Plot = [&](double KB, double Pct, char C) {
    int X = static_cast<int>((std::log10(std::max(1.0, KB)) - X0) /
                             (X1 - X0) * (Cols - 1));
    int Y = Rows - 1 - static_cast<int>(Pct / 100.0 * (Rows - 1));
    X = std::clamp(X, 0, Cols - 1);
    Y = std::clamp(Y, 0, Rows - 1);
    Grid[Y][X] = C;
  };
  for (const Point &P : Points) {
    Plot(P.JarKB, P.J0rGzPct, 'g');
    Plot(P.JarKB, P.JazzPct, 'z');
    Plot(P.JarKB, P.PackedPct, 'p');
  }
  for (int R = 0; R < Rows; ++R)
    printf("%3d%% |%s\n", 100 - R * 100 / (Rows - 1), Grid[R].c_str());
  printf("     +%s\n", std::string(Cols, '-').c_str());
  printf("      jar size, log scale: %.0fK .. %.0fK\n",
         Points.front().JarKB, Points.back().JarKB);
  printf("\nPaper shape: Packed sits far below the other series and\n"
         "improves as archives grow; j0r.gz hovers in the 50-90%% band.\n");
  return 0;
}
