//===- bench_parallel.cpp - sharded pipeline speedup ----------------------===//
//
// Part of cjpack. MIT license.
//
// Measures the parallel pack/unpack pipeline against the serial
// baseline on a >= 200-class synthetic corpus: pack and unpack
// wall-clock speedup per thread count (shards = threads), plus the
// compressed-size overhead the per-shard models cost.
//
//   bench_parallel [--json FILE]
//
// Archive bytes are a pure function of (input, options, shard count),
// so every timed repetition packs to identical output; the bench
// asserts the sharded archives round-trip to the serial pipeline's
// classfiles before it reports any numbers.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "classfile/Writer.h"
#include "support/ThreadPool.h"
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

using namespace cjpack;

namespace {

/// Best-of-N wall clock of \p Fn, in milliseconds.
template <typename Fn> double timeMs(Fn &&F, int Reps = 3) {
  double Best = 1e100;
  for (int R = 0; R < Reps; ++R) {
    auto T0 = std::chrono::steady_clock::now();
    F();
    auto T1 = std::chrono::steady_clock::now();
    Best = std::min(
        Best, std::chrono::duration<double, std::milli>(T1 - T0).count());
  }
  return Best;
}

struct Row {
  unsigned Threads = 0;
  double PackMs = 0, PackSpeedup = 0;
  double UnpackMs = 0, UnpackSpeedup = 0;
  size_t Bytes = 0;
  double OverheadPct = 0;
};

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0 && I + 1 < Argc)
      JsonPath = Argv[++I];
  }

  CorpusSpec Spec;
  Spec.Name = "parallel";
  Spec.Description = "sharded pipeline speedup corpus";
  Spec.Seed = 42;
  Spec.NumClasses =
      std::max(240u, static_cast<unsigned>(240 * benchScale()));
  Spec.NumPackages = 8;
  Spec.MeanMethods = 8;
  Spec.MeanStatements = 12;
  BenchData B = loadBench(Spec);

  printf("Parallel pack/unpack pipeline (%u classes, %u hardware "
         "threads)\n\n",
         Spec.NumClasses, ThreadPool::defaultThreadCount());

  auto Serial = packClasses(B.Prepared, PackOptions());
  if (!Serial) {
    fprintf(stderr, "bench_parallel: %s\n", Serial.message().c_str());
    return 1;
  }
  auto SerialOut = unpackClasses(Serial->Archive);
  if (!SerialOut) {
    fprintf(stderr, "bench_parallel: %s\n", SerialOut.message().c_str());
    return 1;
  }
  double SerialPackMs =
      timeMs([&] { (void)packClasses(B.Prepared, PackOptions()); });
  double SerialUnpackMs =
      timeMs([&] { (void)unpackClasses(Serial->Archive, 1); });

  printf("serial baseline: pack %.1f ms, unpack %.1f ms, %zu bytes\n\n",
         SerialPackMs, SerialUnpackMs, Serial->Archive.size());
  printf("%8s %10s %8s %10s %8s %10s %9s\n", "threads", "pack ms",
         "speedup", "unpack ms", "speedup", "bytes", "overhead");

  std::vector<Row> Rows;
  for (unsigned T : {1u, 2u, 4u, 8u}) {
    PackOptions O;
    O.Shards = T;
    O.Threads = T;
    auto Packed = packClasses(B.Prepared, O);
    if (!Packed) {
      fprintf(stderr, "bench_parallel: %s\n", Packed.message().c_str());
      return 1;
    }
    auto Out = unpackClasses(Packed->Archive, T);
    if (!Out || Out->size() != SerialOut->size()) {
      fprintf(stderr, "bench_parallel: sharded unpack diverged\n");
      return 1;
    }
    for (size_t K = 0; K < Out->size(); ++K)
      if (writeClassFile((*Out)[K]) != writeClassFile((*SerialOut)[K])) {
        fprintf(stderr,
                "bench_parallel: class %zu differs from serial output\n",
                K);
        return 1;
      }

    Row R;
    R.Threads = T;
    R.PackMs = timeMs([&] { (void)packClasses(B.Prepared, O); });
    R.UnpackMs = timeMs([&] { (void)unpackClasses(Packed->Archive, T); });
    R.PackSpeedup = SerialPackMs / R.PackMs;
    R.UnpackSpeedup = SerialUnpackMs / R.UnpackMs;
    R.Bytes = Packed->Archive.size();
    R.OverheadPct = 100.0 *
                    (static_cast<double>(R.Bytes) -
                     static_cast<double>(Serial->Archive.size())) /
                    static_cast<double>(Serial->Archive.size());
    Rows.push_back(R);
    printf("%8u %10.1f %7.2fx %10.1f %7.2fx %10zu %8.2f%%\n", T, R.PackMs,
           R.PackSpeedup, R.UnpackMs, R.UnpackSpeedup, R.Bytes,
           R.OverheadPct);
    fflush(stdout);
  }

  printf("\nShard assignment is by stable class order, so archive bytes\n"
         "depend on the shard count but never on thread scheduling.\n"
         "Speedup tracks available cores. The residual size overhead is\n"
         "per-shard MTF state: shared definitions are factored into the\n"
         "archive dictionary and each stream's shard slices compress as\n"
         "one unit, so neither definitions nor deflate context are paid\n"
         "per shard.\n");

  if (!JsonPath.empty()) {
    FILE *F = fopen(JsonPath.c_str(), "w");
    if (!F) {
      fprintf(stderr, "bench_parallel: cannot write %s\n",
              JsonPath.c_str());
      return 1;
    }
    fprintf(F,
            "{\n  \"benchmark\": \"bench_parallel\",\n"
            "  \"classes\": %u,\n  \"hardware_threads\": %u,\n"
            "  \"serial\": {\"pack_ms\": %.3f, \"unpack_ms\": %.3f, "
            "\"bytes\": %zu},\n  \"parallel\": [\n",
            Spec.NumClasses, ThreadPool::defaultThreadCount(),
            SerialPackMs, SerialUnpackMs, Serial->Archive.size());
    for (size_t K = 0; K < Rows.size(); ++K) {
      const Row &R = Rows[K];
      fprintf(F,
              "    {\"threads\": %u, \"pack_ms\": %.3f, "
              "\"pack_speedup\": %.3f, \"unpack_ms\": %.3f, "
              "\"unpack_speedup\": %.3f, \"bytes\": %zu, "
              "\"size_overhead_pct\": %.3f}%s\n",
              R.Threads, R.PackMs, R.PackSpeedup, R.UnpackMs,
              R.UnpackSpeedup, R.Bytes, R.OverheadPct,
              K + 1 < Rows.size() ? "," : "");
    }
    fprintf(F, "  ]\n}\n");
    fclose(F);
    printf("wrote %s\n", JsonPath.c_str());
  }
  return 0;
}
