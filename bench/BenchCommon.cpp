//===- BenchCommon.cpp - shared benchmark harness support -----------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "bytecode/Instruction.h"
#include "classfile/Reader.h"
#include "classfile/Transform.h"
#include "classfile/Writer.h"
#include <cstdio>
#include <cstdlib>

using namespace cjpack;

double cjpack::benchScale() {
  const char *Env = getenv("CJPACK_SCALE");
  if (!Env)
    return 1.0;
  double Scale = atof(Env);
  return Scale > 0 ? Scale : 1.0;
}

BenchData cjpack::loadBench(const CorpusSpec &Spec) {
  BenchData B;
  B.Spec = Spec;
  B.RawClasses = generateCorpus(Spec);
  for (const NamedClass &C : B.RawClasses) {
    auto CF = parseClassFile(C.Data);
    if (!CF) {
      fprintf(stderr, "bench: %s: %s\n", C.Name.c_str(),
              CF.message().c_str());
      exit(1);
    }
    if (auto E = prepareForPacking(*CF)) {
      fprintf(stderr, "bench: %s: %s\n", C.Name.c_str(),
              E.message().c_str());
      exit(1);
    }
    B.StrippedBytes.push_back(
        {std::string(CF->thisClassName()) + ".class", writeClassFile(*CF)});
    B.Prepared.push_back(std::move(*CF));
  }
  return B;
}

std::vector<BenchData> cjpack::loadAllBenches() {
  std::vector<BenchData> Out;
  for (const CorpusSpec &Spec : paperBenchmarks(benchScale()))
    Out.push_back(loadBench(Spec));
  return Out;
}

BaselineSizes cjpack::baselineSizes(const BenchData &B) {
  BaselineSizes S;
  S.Sj0r = totalClassBytes(B.StrippedBytes);
  S.Jar = buildJar(B.RawClasses).size();
  S.Sjar = buildJar(B.StrippedBytes).size();
  S.Sj0rGz = buildJ0rGz(B.StrippedBytes).size();
  return S;
}

RawCodeStreams
cjpack::extractRawCodeStreams(const std::vector<ClassFile> &Classes) {
  RawCodeStreams Out;
  for (const ClassFile &CF : Classes) {
    for (const MemberInfo &M : CF.Methods) {
      const AttributeInfo *A = findAttribute(M.Attributes, "Code");
      if (!A)
        continue;
      auto Code = parseCodeAttribute(*A, CF.CP);
      if (!Code)
        continue;
      Out.Bytestream.insert(Out.Bytestream.end(), Code->Code.begin(),
                            Code->Code.end());
      auto Insns = decodeCode(Code->Code);
      if (!Insns)
        continue;
      for (const Insn &I : *Insns) {
        if (I.IsWide)
          Out.Opcodes.push_back(static_cast<uint8_t>(Op::Wide));
        Out.Opcodes.push_back(static_cast<uint8_t>(I.Opcode));
      }
    }
  }
  return Out;
}

std::string cjpack::withCommas(size_t N) {
  std::string Raw = std::to_string(N);
  std::string Out;
  int Count = 0;
  for (auto It = Raw.rbegin(); It != Raw.rend(); ++It) {
    if (Count != 0 && Count % 3 == 0)
      Out.insert(Out.begin(), ',');
    Out.insert(Out.begin(), *It);
    ++Count;
  }
  return Out;
}

std::string cjpack::pct(size_t A, size_t B) {
  if (B == 0)
    return "-";
  return std::to_string((A * 100 + B / 2) / B) + "%";
}

std::string cjpack::jsonQuote(const std::string &S) {
  std::string Out = "\"";
  for (char C : S) {
    switch (C) {
    case '"': Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\n': Out += "\\n"; break;
    case '\t': Out += "\\t"; break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
  return Out;
}

void JsonObject::add(const std::string &Key, const std::string &V) {
  Fields.emplace_back(Key, jsonQuote(V));
}

void JsonObject::add(const std::string &Key, const char *V) {
  Fields.emplace_back(Key, jsonQuote(V));
}

void JsonObject::add(const std::string &Key, uint64_t V) {
  Fields.emplace_back(Key, std::to_string(V));
}

void JsonObject::add(const std::string &Key, double V) {
  char Buf[48];
  snprintf(Buf, sizeof(Buf), "%.6g", V);
  Fields.emplace_back(Key, Buf);
}

void JsonObject::add(const std::string &Key, bool V) {
  Fields.emplace_back(Key, V ? "true" : "false");
}

void JsonObject::addRaw(const std::string &Key, const std::string &RawJson) {
  Fields.emplace_back(Key, RawJson);
}

std::string JsonObject::str(unsigned Indent) const {
  std::string Pad(Indent, ' ');
  std::string Out = "{";
  for (size_t I = 0; I < Fields.size(); ++I) {
    Out += I ? ",\n" : "\n";
    Out += Pad + "  " + jsonQuote(Fields[I].first) + ": " +
           Fields[I].second;
  }
  Out += "\n" + Pad + "}";
  return Out;
}

void cjpack::writeBenchJson(FILE *Out, const JsonObject &Header,
                            const std::vector<JsonObject> &Rows) {
  std::string Doc = Header.str();
  // Splice the rows array in before the header object's closing brace.
  Doc.erase(Doc.size() - 2); // "\n}"
  Doc += ",\n  \"rows\": [";
  for (size_t I = 0; I < Rows.size(); ++I) {
    Doc += I ? ",\n    " : "\n    ";
    Doc += Rows[I].str(4);
  }
  Doc += "\n  ]\n}\n";
  fputs(Doc.c_str(), Out);
}
