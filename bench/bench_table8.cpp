//===- bench_table8.cpp - Table 8: related-work comparison ----------------===//
//
// Part of cjpack. MIT license.
//
// Reproduces Table 8: quoted wire-code compression results from related
// work (constants from the paper's survey) next to this implementation's
// measured range, as a percentage of individually gzip'd classfiles
// (the sjar), over programs larger than 10K bytes.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "jazz/Jazz.h"
#include <algorithm>
#include <cstdio>

using namespace cjpack;

int main() {
  printf("Table 8: results on wire-code program compression\n");
  printf("scale=%.2f\n\n", benchScale());
  printf("%-44s %14s\n", "System", "%% of gzip'd classfiles");
  // Quoted from the paper's survey (Table 8) — literature constants.
  printf("%-44s %14s\n", "Slim Binaries [KF97, KF, Fra97]", "59");
  printf("%-44s %14s\n", "JShrink, DashO, and Jax", "65 - 83");
  printf("%-44s %14s\n", "jar.gz format (par. 2.1)", "55 - 85");
  printf("%-44s %14s\n", "Clazz format [HC98]", "52 - 90");
  printf("%-44s %14s\n", "Jazz format [BHV98]", "40 - 70");
  printf("%-44s %14s\n", "This paper, quoted (programs > 10K)",
         "17 - 41");

  size_t MinPct = 1000, MaxPct = 0;
  size_t JazzMin = 1000, JazzMax = 0;
  for (const CorpusSpec &Spec : paperBenchmarks(benchScale())) {
    BenchData B = loadBench(Spec);
    size_t Sjar = buildJar(B.StrippedBytes).size();
    if (Sjar <= 10 * 1024)
      continue; // the paper restricts to programs > 10K
    auto Packed = packClasses(B.Prepared, PackOptions());
    auto Jazz = jazzPack(B.Prepared);
    if (!Packed || !Jazz)
      continue;
    size_t P = (Packed->Archive.size() * 100 + Sjar / 2) / Sjar;
    size_t J = (Jazz->size() * 100 + Sjar / 2) / Sjar;
    MinPct = std::min(MinPct, P);
    MaxPct = std::max(MaxPct, P);
    JazzMin = std::min(JazzMin, J);
    JazzMax = std::max(JazzMax, J);
  }
  printf("%-44s %8zu - %zu\n", "Jazz reimplementation, measured", JazzMin,
         JazzMax);
  printf("%-44s %8zu - %zu\n", "This reproduction, measured", MinPct,
         MaxPct);
  printf("\nPaper shape: the packed format's range sits well below every\n"
         "prior system's quoted range.\n");
  return 0;
}
