//===- bench_lint.cpp - whole-archive analysis smoke + baseline -----------===//
//
// Part of cjpack. MIT license.
//
// Measures the whole-archive analyzer (ArchiveAnalysis.h) on pinned
// corpora: one per code style, plus a variant seeded with inherited
// refs and dead members through the corpus knobs. For each it records
// the resolution census (every ref resolved or provably external, zero
// structural diagnostics — the analyzer's false-positive guarantee as
// a regression check) and the dead weight found; the knobbed corpus is
// also packed with and without StripUnreferenced to pin what stripping
// removes and saves. Corpora are pinned — no CJPACK_SCALE — so all
// counts are bit-stable across machines and CI diffs the output
// against bench/baselines/BENCH_lint.json via compare_bench.py; only
// the stripped archive_bytes (zlib output) gets drift tolerance, and
// timings are informational.
//
//   bench_lint [--json FILE]
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "analysis/ArchiveAnalysis.h"
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <zlib.h>

using namespace cjpack;

namespace {

double msSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

CorpusSpec lintSpec(const char *Name, CodeStyle Style, uint64_t Seed) {
  CorpusSpec Spec;
  Spec.Name = Name;
  Spec.Seed = Seed;
  Spec.NumClasses = 48;
  Spec.NumPackages = 4;
  Spec.MeanMethods = 6;
  Spec.MeanStatements = 10;
  Spec.Code = Style;
  return Spec;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0 && I + 1 < Argc)
      JsonPath = Argv[++I];
  }

  CorpusSpec Knobbed = lintSpec("knobbed", CodeStyle::Balanced, 4242);
  Knobbed.PctInheritedRefs = 35;
  Knobbed.DeadMembersPerClass = 2;
  const CorpusSpec Specs[] = {
      lintSpec("balanced", CodeStyle::Balanced, 1234),
      lintSpec("numeric", CodeStyle::Numeric, 1234),
      lintSpec("stringheavy", CodeStyle::StringHeavy, 1234),
      Knobbed,
  };

  printf("Whole-archive analysis bench (pinned corpora)\n\n");
  printf("%-12s %8s %8s %9s %9s %6s %6s %6s %9s\n", "corpus", "classes",
         "refs", "resolved", "external", "diags", "deadM", "deadCP",
         "lint(ms)");

  std::vector<JsonObject> Rows;
  int Rc = 0;
  for (const CorpusSpec &Spec : Specs) {
    BenchData B = loadBench(Spec);

    auto T0 = std::chrono::steady_clock::now();
    analysis::ArchiveAnalysisReport R = analysis::analyzeArchive(B.Prepared);
    double LintMs = msSince(T0);

    if (!R.clean()) {
      fprintf(stderr, "%s: analyzer reported %zu structural diagnostics "
              "on a generated corpus (false positives)\n",
              Spec.Name.c_str(), R.Diags.size());
      Rc = 1;
    }
    if (R.RefsChecked != R.RefsResolved + R.RefsExternal) {
      fprintf(stderr, "%s: %zu refs neither resolved nor external\n",
              Spec.Name.c_str(),
              R.RefsChecked - R.RefsResolved - R.RefsExternal);
      Rc = 1;
    }

    printf("%-12s %8zu %8zu %9zu %9zu %6zu %6zu %6zu %9.1f\n",
           Spec.Name.c_str(), B.Prepared.size(), R.RefsChecked,
           R.RefsResolved, R.RefsExternal, R.Diags.size(),
           R.DeadMembers.size(), R.DeadPoolEntries, LintMs);

    JsonObject Row;
    Row.add("name", Spec.Name + "/lint");
    Row.add("classes", static_cast<uint64_t>(B.Prepared.size()));
    Row.add("input_bytes",
            static_cast<uint64_t>(totalClassBytes(B.StrippedBytes)));
    Row.add("refs_checked", static_cast<uint64_t>(R.RefsChecked));
    Row.add("refs_resolved", static_cast<uint64_t>(R.RefsResolved));
    Row.add("refs_external", static_cast<uint64_t>(R.RefsExternal));
    Row.add("diagnostics", static_cast<uint64_t>(R.Diags.size()));
    Row.add("dead_members", static_cast<uint64_t>(R.DeadMembers.size()));
    Row.add("dead_pool_entries", static_cast<uint64_t>(R.DeadPoolEntries));
    Row.add("lint_ms", LintMs);
    Rows.push_back(std::move(Row));
  }

  // Strip differential on the knobbed corpus: what StripUnreferenced
  // removes and what it saves on the wire.
  {
    BenchData B = loadBench(Knobbed);
    PackOptions Plain;
    auto Default = packClassBytes(B.RawClasses, Plain);
    PackOptions Strip;
    Strip.StripUnreferenced = true;
    auto T0 = std::chrono::steady_clock::now();
    auto Stripped = packClassBytes(B.RawClasses, Strip);
    double StripMs = msSince(T0);
    if (!Default || !Stripped) {
      fprintf(stderr, "strip differential pack failed: %s\n",
              (!Default ? Default.message() : Stripped.message()).c_str());
      Rc = 1;
    } else {
      if (Stripped->Archive.size() >= Default->Archive.size()) {
        fprintf(stderr, "stripped archive not smaller (%zu >= %zu)\n",
                Stripped->Archive.size(), Default->Archive.size());
        Rc = 1;
      }
      printf("\nstrip: %zu dead fields + %zu dead methods removed, "
             "%zu -> %zu bytes (%.1f ms)\n",
             Stripped->StrippedFields, Stripped->StrippedMethods,
             Default->Archive.size(), Stripped->Archive.size(), StripMs);

      JsonObject Row;
      Row.add("name", std::string("knobbed/strip"));
      Row.add("classes", static_cast<uint64_t>(B.Prepared.size()));
      Row.add("stripped_fields",
              static_cast<uint64_t>(Stripped->StrippedFields));
      Row.add("stripped_methods",
              static_cast<uint64_t>(Stripped->StrippedMethods));
      Row.add("raw_stream_bytes",
              static_cast<uint64_t>(Stripped->Sizes.totalRaw()));
      Row.add("archive_bytes",
              static_cast<uint64_t>(Stripped->Archive.size()));
      Row.add("default_archive_bytes",
              static_cast<uint64_t>(Default->Archive.size()));
      Row.add("strip_pack_ms", StripMs);
      Rows.push_back(std::move(Row));
    }
  }

  if (!JsonPath.empty()) {
    FILE *Out = fopen(JsonPath.c_str(), "w");
    if (!Out) {
      fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    JsonObject Header;
    Header.add("bench", "lint");
    Header.add("zlib", zlibVersion());
    writeBenchJson(Out, Header, Rows);
    fclose(Out);
    printf("\nwrote %s\n", JsonPath.c_str());
  }
  return Rc;
}
