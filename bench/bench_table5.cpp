//===- bench_table5.cpp - Table 5: separate packing / no gzip -------------===//
//
// Part of cjpack. MIT license.
//
// Reproduces Table 5: how much of the packed format's win comes from
// combining classfiles into one shared archive, and how much from zlib.
// Four variants of the packed format, reported as a percentage of the
// jar of individually gzip'd classfiles (sjar).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include <cstdio>

using namespace cjpack;

namespace {

size_t packSize(const std::vector<ClassFile> &Classes,
                const PackOptions &O) {
  auto P = packClasses(Classes, O);
  if (!P) {
    fprintf(stderr, "pack failed: %s\n", P.message().c_str());
    exit(1);
  }
  return P->Archive.size();
}

size_t packSeparately(const std::vector<ClassFile> &Classes,
                      const PackOptions &O) {
  size_t Total = 0;
  for (const ClassFile &CF : Classes)
    Total += packSize({CF}, O);
  return Total;
}

} // namespace

int main() {
  printf("Table 5: effects of separate packing and not gzipping\n");
  printf("(%% of size of jar file of gzip'd classfiles)\n");
  printf("scale=%.2f\n\n", benchScale());
  printf("%-36s %8s %10s\n", "Option", "javac", "mpegaudio");

  struct Variant {
    const char *Label;
    bool Separate;
    bool Compress;
  };
  static const Variant Variants[] = {
      {"Standard", false, true},
      {"Packed Separately", true, true},
      {"Not gzip'd", false, false},
      {"Packed Separately and not gzip'd", true, false},
  };

  BenchData Javac = loadBench(paperBenchmark("javac", benchScale()));
  BenchData Mpeg = loadBench(paperBenchmark("mpegaudio", benchScale()));
  size_t JavacSjar = buildJar(Javac.StrippedBytes).size();
  size_t MpegSjar = buildJar(Mpeg.StrippedBytes).size();

  for (const Variant &V : Variants) {
    PackOptions O;
    O.CompressStreams = V.Compress;
    size_t JavacSize = V.Separate ? packSeparately(Javac.Prepared, O)
                                  : packSize(Javac.Prepared, O);
    size_t MpegSize = V.Separate ? packSeparately(Mpeg.Prepared, O)
                                 : packSize(Mpeg.Prepared, O);
    printf("%-36s %8s %10s\n", V.Label,
           pct(JavacSize, JavacSjar).c_str(),
           pct(MpegSize, MpegSjar).c_str());
  }
  printf("\nPaper shape: packing separately roughly doubles the size;\n"
         "dropping zlib costs a factor of ~2 (more on code-heavy\n"
         "mpegaudio, whose streams are highly zlib-friendly).\n");
  return 0;
}
