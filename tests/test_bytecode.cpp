//===- test_bytecode.cpp - instruction codec and stack-state tests --------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Instruction.h"
#include "bytecode/StackState.h"
#include "classfile/ConstantPool.h"
#include "corpus/BytecodeBuilder.h"
#include <gtest/gtest.h>
#include <cstring>

using namespace cjpack;

namespace {

std::vector<uint8_t> buildCode(
    const std::function<void(BytecodeBuilder &)> &Fn) {
  ConstantPool CP;
  BytecodeBuilder B(CP, 1);
  Fn(B);
  std::span<const uint8_t> Code = B.finish().Code;
  return {Code.begin(), Code.end()};
}

} // namespace

TEST(InstructionCodec, SimpleSequenceRoundTrips) {
  std::vector<uint8_t> Code = buildCode([](BytecodeBuilder &B) {
    B.pushInt(1);
    B.pushInt(200);     // bipush won't fit, sipush
    B.op(Op::IAdd);
    B.op(Op::Pop);
    B.ret(VType::Void);
  });
  auto Insns = decodeCode(Code);
  ASSERT_TRUE(static_cast<bool>(Insns)) << Insns.message();
  EXPECT_EQ(encodeCode(*Insns), Code);
}

TEST(InstructionCodec, BranchTargetsAreAbsolute) {
  std::vector<uint8_t> Code = buildCode([](BytecodeBuilder &B) {
    auto L = B.newLabel();
    B.pushInt(0);
    B.branch(Op::IfEq, L);
    B.pushInt(1);
    B.op(Op::Pop);
    B.placeLabel(L);
    B.ret(VType::Void);
  });
  auto Insns = decodeCode(Code);
  ASSERT_TRUE(static_cast<bool>(Insns));
  const Insn *Branch = nullptr;
  for (const Insn &I : *Insns)
    if (I.Opcode == Op::IfEq)
      Branch = &I;
  ASSERT_NE(Branch, nullptr);
  // Target is the offset of the return instruction.
  EXPECT_EQ(static_cast<uint32_t>(Branch->BranchTarget),
            Insns->back().Offset);
  EXPECT_EQ(encodeCode(*Insns), Code);
}

TEST(InstructionCodec, TableSwitchRoundTrips) {
  std::vector<uint8_t> Code = buildCode([](BytecodeBuilder &B) {
    std::vector<BytecodeBuilder::Label> Cases;
    for (int I = 0; I < 3; ++I)
      Cases.push_back(B.newLabel());
    auto LDef = B.newLabel();
    B.pushInt(1);
    B.tableSwitch(10, Cases, LDef);
    for (auto L : Cases) {
      B.placeLabel(L);
      B.pushInt(0);
      B.op(Op::Pop);
    }
    B.placeLabel(LDef);
    B.ret(VType::Void);
  });
  auto Insns = decodeCode(Code);
  ASSERT_TRUE(static_cast<bool>(Insns)) << Insns.message();
  const Insn *Sw = nullptr;
  for (const Insn &I : *Insns)
    if (I.Opcode == Op::TableSwitch)
      Sw = &I;
  ASSERT_NE(Sw, nullptr);
  EXPECT_EQ(Sw->SwitchLow, 10);
  EXPECT_EQ(Sw->SwitchHigh, 12);
  ASSERT_EQ(Sw->SwitchTargets.size(), 3u);
  EXPECT_EQ(encodeCode(*Insns), Code);
}

TEST(InstructionCodec, LookupSwitchRoundTrips) {
  std::vector<uint8_t> Code = buildCode([](BytecodeBuilder &B) {
    std::vector<BytecodeBuilder::Label> Cases = {B.newLabel(),
                                                 B.newLabel()};
    auto LDef = B.newLabel();
    B.pushInt(1);
    B.lookupSwitch({-5, 1000}, Cases, LDef);
    for (auto L : Cases) {
      B.placeLabel(L);
      B.pushInt(0);
      B.op(Op::Pop);
    }
    B.placeLabel(LDef);
    B.ret(VType::Void);
  });
  auto Insns = decodeCode(Code);
  ASSERT_TRUE(static_cast<bool>(Insns)) << Insns.message();
  const Insn *Sw = nullptr;
  for (const Insn &I : *Insns)
    if (I.Opcode == Op::LookupSwitch)
      Sw = &I;
  ASSERT_NE(Sw, nullptr);
  ASSERT_EQ(Sw->SwitchMatches.size(), 2u);
  EXPECT_EQ(Sw->SwitchMatches[0], -5);
  EXPECT_EQ(Sw->SwitchMatches[1], 1000);
  EXPECT_EQ(encodeCode(*Insns), Code);
}

TEST(InstructionCodec, WideInstructionsRoundTrip) {
  std::vector<uint8_t> Code = buildCode([](BytecodeBuilder &B) {
    // Force locals beyond 255 so wide forms are emitted.
    for (int I = 0; I < 300; ++I)
      B.newLocal(VType::Int);
    B.pushInt(1);
    B.storeLocal(VType::Int, 290);
    B.loadLocal(VType::Int, 290);
    B.op(Op::Pop);
    B.ret(VType::Void);
  });
  auto Insns = decodeCode(Code);
  ASSERT_TRUE(static_cast<bool>(Insns)) << Insns.message();
  bool SawWide = false;
  for (const Insn &I : *Insns)
    if (I.IsWide) {
      SawWide = true;
      EXPECT_EQ(I.LocalIndex, 290u);
    }
  EXPECT_TRUE(SawWide);
  EXPECT_EQ(encodeCode(*Insns), Code);
}

TEST(InstructionCodec, RejectsTruncatedCode) {
  std::vector<uint8_t> Code = buildCode([](BytecodeBuilder &B) {
    B.pushInt(200);
    B.op(Op::Pop);
    B.ret(VType::Void);
  });
  Code.resize(2); // cut inside the sipush operand
  auto Insns = decodeCode(Code);
  if (Insns)
    FAIL() << "expected decode failure on truncated stream";
}

TEST(OpcodeTable, MnemonicsAndFormats) {
  EXPECT_STREQ(opInfo(Op::ALoad0).Mnemonic, "aload_0");
  EXPECT_STREQ(opInfo(Op::InvokeVirtual).Mnemonic, "invokevirtual");
  EXPECT_EQ(opInfo(Op::Ldc).Format, OpFormat::CpU1);
  EXPECT_EQ(opInfo(Op::Goto).Format, OpFormat::Branch2);
  EXPECT_EQ(opInfo(Op::GotoW).Format, OpFormat::Branch4);
  EXPECT_EQ(cpRefKind(Op::GetField), CpRefKind::FieldInstance);
  EXPECT_EQ(cpRefKind(Op::GetStatic), CpRefKind::FieldStatic);
  EXPECT_EQ(cpRefKind(Op::InvokeInterface), CpRefKind::MethodInterface);
  EXPECT_EQ(cpRefKind(Op::New), CpRefKind::ClassRef);
  EXPECT_EQ(cpRefKind(Op::IAdd), CpRefKind::None);
  uint32_t Idx = 99;
  EXPECT_TRUE(implicitLocalIndex(Op::ALoad0, Idx));
  EXPECT_EQ(Idx, 0u);
  EXPECT_TRUE(implicitLocalIndex(Op::IStore3, Idx));
  EXPECT_EQ(Idx, 3u);
  EXPECT_FALSE(implicitLocalIndex(Op::IAdd, Idx));
}

TEST(StackState, TracksSimpleArithmetic) {
  StackState S;
  S.startMethod();
  EXPECT_TRUE(S.isKnown());
  Insn I;
  I.Opcode = Op::IConst1;
  S.apply(I, nullptr);
  EXPECT_EQ(S.top(), VType::Int);
  Insn I2;
  I2.Opcode = Op::I2D;
  S.apply(I2, nullptr);
  EXPECT_EQ(S.top(), VType::Double);
}

TEST(StackState, CollapseFamiliesPredictVariants) {
  EXPECT_EQ(familyOf(Op::FAdd), OpFamily::Add);
  EXPECT_EQ(*variantFor(OpFamily::Add, VType::Float), Op::FAdd);
  EXPECT_EQ(*variantFor(OpFamily::Add, VType::Long), Op::LAdd);
  EXPECT_EQ(*variantFor(OpFamily::TypedReturn, VType::Ref), Op::AReturn);
  EXPECT_EQ(*variantFor(OpFamily::Store2, VType::Double), Op::DStore2);
  EXPECT_FALSE(variantFor(OpFamily::Add, VType::Ref).has_value());
  EXPECT_FALSE(variantFor(OpFamily::Add, VType::Unknown).has_value());
  // Shifts are keyed one below the top (the shifted value).
  EXPECT_EQ(familyKeyDepth(OpFamily::Shl), 1u);
  EXPECT_EQ(*variantFor(OpFamily::Shl, VType::Long), Op::LShl);
}

TEST(StackState, ShiftKeyedBySecondFromTop) {
  StackState S;
  S.startMethod();
  Insn LC;
  LC.Opcode = Op::LConst1;
  S.apply(LC, nullptr);
  Insn IC;
  IC.Opcode = Op::IConst2;
  S.apply(IC, nullptr);
  // Stack: J I — a shift here must predict the long variant.
  EXPECT_EQ(S.top(0), VType::Int);
  EXPECT_EQ(S.top(1), VType::Long);
  OpFamily F = familyOf(Op::LShl);
  EXPECT_EQ(*variantFor(F, S.top(familyKeyDepth(F))), Op::LShl);
}

TEST(StackState, UnknownAfterUnconditionalTransfer) {
  StackState S;
  S.startMethod();
  Insn G;
  G.Opcode = Op::Goto;
  G.Offset = 0;
  G.BranchTarget = 100;
  S.apply(G, nullptr);
  EXPECT_FALSE(S.isKnown());
  EXPECT_EQ(S.top(), VType::Unknown);
}

TEST(StackState, RecoversAtForwardBranchTarget) {
  StackState S;
  S.startMethod();
  Insn C;
  C.Opcode = Op::IConst1;
  C.Offset = 0;
  S.apply(C, nullptr);
  Insn Br; // ifeq +10 with an int under it
  Br.Opcode = Op::IfEq;
  Br.Offset = 1;
  Br.BranchTarget = 10;
  Insn C2;
  C2.Opcode = Op::IConst1;
  C2.Offset = 1;
  S.apply(C2, nullptr);
  S.apply(Br, nullptr);
  // Fall-through: still known, one int on the stack.
  EXPECT_TRUE(S.isKnown());
  EXPECT_EQ(S.top(), VType::Int);
  // Unconditional transfer kills the state...
  Insn G;
  G.Opcode = Op::Goto;
  G.Offset = 4;
  G.BranchTarget = 50;
  S.apply(G, nullptr);
  EXPECT_FALSE(S.isKnown());
  // ...but arriving at the saved forward target recovers it.
  Insn At;
  At.Opcode = Op::Nop;
  At.Offset = 10;
  S.apply(At, nullptr);
  EXPECT_TRUE(S.isKnown());
  EXPECT_EQ(S.top(), VType::Int);
}

TEST(StackState, InvokeUsesSignatureTypes) {
  StackState S;
  S.startMethod();
  Insn A;
  A.Opcode = Op::AConstNull;
  S.apply(A, nullptr);
  Insn C;
  C.Opcode = Op::IConst1;
  S.apply(C, nullptr);
  Insn Call;
  Call.Opcode = Op::InvokeVirtual;
  InsnTypes T;
  T.ArgTypes = {VType::Int};
  T.RetType = VType::Long;
  S.apply(Call, &T);
  EXPECT_TRUE(S.isKnown());
  EXPECT_EQ(S.top(), VType::Long);
}

TEST(StackState, ContextIdDistinguishesTopTwoTypes) {
  StackState S;
  S.startMethod();
  unsigned Empty = S.contextId();
  Insn A;
  A.Opcode = Op::IConst1;
  S.apply(A, nullptr);
  unsigned OneInt = S.contextId();
  Insn B;
  B.Opcode = Op::AConstNull;
  S.apply(B, nullptr);
  unsigned RefOverInt = S.contextId();
  EXPECT_NE(Empty, OneInt);
  EXPECT_NE(OneInt, RefOverInt);
  EXPECT_LT(Empty, StackState::NumContexts);
  EXPECT_LT(RefOverInt, StackState::NumContexts);
}

TEST(StackState, DupFamilyShuffles) {
  StackState S;
  S.startMethod();
  Insn A;
  A.Opcode = Op::AConstNull;
  S.apply(A, nullptr);
  Insn D;
  D.Opcode = Op::Dup;
  S.apply(D, nullptr);
  EXPECT_EQ(S.top(0), VType::Ref);
  EXPECT_EQ(S.top(1), VType::Ref);
  Insn Sw;
  Sw.Opcode = Op::Swap;
  Insn I;
  I.Opcode = Op::IConst3;
  S.apply(I, nullptr);
  S.apply(Sw, nullptr);
  EXPECT_EQ(S.top(0), VType::Ref);
  EXPECT_EQ(S.top(1), VType::Int);
}

TEST(EncodedLength, MatchesDecodedLengths) {
  std::vector<uint8_t> Code = buildCode([](BytecodeBuilder &B) {
    std::vector<BytecodeBuilder::Label> Cases = {B.newLabel()};
    auto LDef = B.newLabel();
    B.pushInt(5);
    B.tableSwitch(0, Cases, LDef);
    B.placeLabel(Cases[0]);
    B.placeLabel(LDef);
    B.pushInt(100000);
    B.op(Op::Pop);
    B.ret(VType::Void);
  });
  auto Insns = decodeCode(Code);
  ASSERT_TRUE(static_cast<bool>(Insns));
  for (const Insn &I : *Insns)
    EXPECT_EQ(encodedLength(I, I.Offset), I.Length)
        << opInfo(I.Opcode).Mnemonic;
}

class FamilyOpcodeTest : public ::testing::TestWithParam<int> {};

/// Exhaustive consistency of the collapse tables: for every opcode in a
/// family, variantFor(family, key-type) maps back to that opcode, and
/// the key type is derivable from the opcode's own stack behaviour.
TEST_P(FamilyOpcodeTest, VariantTablesAreConsistent) {
  uint8_t Raw = static_cast<uint8_t>(GetParam());
  Op O = static_cast<Op>(Raw);
  OpFamily F = familyOf(O);
  if (F == OpFamily::None)
    GTEST_SKIP() << opInfo(O).Mnemonic << " is not collapsible";
  // Find the key type by probing all VTypes: exactly one must map back.
  unsigned Matches = 0;
  for (VType T : {VType::Int, VType::Long, VType::Float, VType::Double,
                  VType::Ref}) {
    auto V = variantFor(F, T);
    if (V && *V == O) {
      ++Matches;
      // And the table's declared pops for the variant agree with the
      // key at the declared depth.
      const char *Pops = opInfo(O).Pops;
      if (Pops[0] != '*' && Pops[0] != '\0') {
        size_t L = strlen(Pops);
        unsigned Depth = familyKeyDepth(F);
        ASSERT_GT(L, Depth);
        char KeyChar = Pops[L - 1 - Depth];
        VType Expected;
        switch (KeyChar) {
        case 'I': Expected = VType::Int; break;
        case 'J': Expected = VType::Long; break;
        case 'F': Expected = VType::Float; break;
        case 'D': Expected = VType::Double; break;
        default: Expected = VType::Ref; break;
        }
        EXPECT_EQ(T, Expected) << opInfo(O).Mnemonic;
      }
    }
  }
  EXPECT_EQ(Matches, 1u) << opInfo(O).Mnemonic
                         << ": exactly one key type must select it";
  EXPECT_FALSE(variantFor(F, VType::Unknown).has_value());
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, FamilyOpcodeTest,
                         ::testing::Range(0, 202));

TEST(InstructionCodec, EveryFixedFormatOpcodeRoundTrips) {
  // Build a one-instruction code array for every opcode with a fixed
  // operand layout and check decode/encode identity.
  for (int Raw = 0; Raw <= MaxOpcode; ++Raw) {
    Op O = static_cast<Op>(Raw);
    ByteWriter W;
    switch (opInfo(O).Format) {
    case OpFormat::None:
      W.writeU1(static_cast<uint8_t>(O));
      break;
    case OpFormat::S1:
    case OpFormat::LocalU1:
    case OpFormat::CpU1:
    case OpFormat::NewArrayType:
      W.writeU1(static_cast<uint8_t>(O));
      W.writeU1(7);
      break;
    case OpFormat::S2:
    case OpFormat::CpU2:
      W.writeU1(static_cast<uint8_t>(O));
      W.writeU2(300);
      break;
    case OpFormat::Branch2:
      W.writeU1(static_cast<uint8_t>(O));
      W.writeU2(0); // branch to self
      break;
    case OpFormat::Branch4:
      W.writeU1(static_cast<uint8_t>(O));
      W.writeU4(0);
      break;
    case OpFormat::Iinc:
      W.writeU1(static_cast<uint8_t>(O));
      W.writeU1(3);
      W.writeU1(static_cast<uint8_t>(-2));
      break;
    case OpFormat::InvokeInterface:
      W.writeU1(static_cast<uint8_t>(O));
      W.writeU2(9);
      W.writeU1(2);
      W.writeU1(0);
      break;
    case OpFormat::InvokeDynamic:
      W.writeU1(static_cast<uint8_t>(O));
      W.writeU2(9);
      W.writeU1(0);
      W.writeU1(0);
      break;
    case OpFormat::MultiANewArray:
      W.writeU1(static_cast<uint8_t>(O));
      W.writeU2(9);
      W.writeU1(2);
      break;
    case OpFormat::TableSwitch:
    case OpFormat::LookupSwitch:
    case OpFormat::Wide:
      continue; // covered by dedicated tests above
    }
    std::vector<uint8_t> Code = W.take();
    auto Insns = decodeCode(Code);
    ASSERT_TRUE(static_cast<bool>(Insns)) << opInfo(O).Mnemonic;
    ASSERT_EQ(Insns->size(), 1u) << opInfo(O).Mnemonic;
    EXPECT_EQ(encodeCode(*Insns), Code) << opInfo(O).Mnemonic;
    EXPECT_EQ(encodedLength((*Insns)[0], 0), Code.size())
        << opInfo(O).Mnemonic;
  }
}

namespace {

/// Builds a switch instruction by hand: opcode, alignment pad (the
/// opcode sits at offset 0, so three pad bytes), then the given
/// big-endian s4 words, then \p Tail bytes of trailing code.
std::vector<uint8_t> switchCode(Op O, const std::vector<int32_t> &Words,
                                size_t Tail = 0) {
  ByteWriter W;
  W.writeU1(static_cast<uint8_t>(O));
  while (W.size() % 4 != 0)
    W.writeU1(0);
  for (int32_t V : Words)
    W.writeU4(static_cast<uint32_t>(V));
  for (size_t I = 0; I < Tail; ++I)
    W.writeU1(0); // nop
  return W.take();
}

/// Decode must fail with a decode-taxonomy error code.
void expectTypedFailure(const std::vector<uint8_t> &Code) {
  auto Insns = decodeCode(Code);
  ASSERT_FALSE(static_cast<bool>(Insns)) << "hostile code decoded";
  EXPECT_NE(Insns.code(), ErrorCode::Other) << Insns.message();
}

} // namespace

TEST(InstructionHardening, WideOnUndefinedOpcode) {
  // wide prefixing an opcode past jsr_w (201) is undefined.
  expectTypedFailure({196, 202, 0, 0});
}

TEST(InstructionHardening, WideOnNonLocalOpcode) {
  // wide may only modify local-variable instructions and iinc; nop is
  // neither.
  expectTypedFailure({196, 0, 0, 0});
}

TEST(InstructionHardening, TruncatedWideInstruction) {
  // wide iload cut before its 16-bit local index.
  expectTypedFailure({196, 21});
}

TEST(InstructionHardening, TableSwitchHighBelowLow) {
  // default=self, low=5, high=1: the count (high-low+1) would be
  // negative.
  expectTypedFailure(switchCode(Op::TableSwitch, {0, 5, 1}, 8));
}

TEST(InstructionHardening, TableSwitchHugeCount) {
  // low=0, high=INT32_MAX declares 2^31 targets in a few dozen bytes;
  // must be rejected before reserving anything.
  expectTypedFailure(switchCode(Op::TableSwitch, {0, 0, INT32_MAX}, 8));
}

TEST(InstructionHardening, TableSwitchTargetPastCodeEnd) {
  // A single entry whose target lands 100 bytes past the code array.
  expectTypedFailure(switchCode(Op::TableSwitch, {0, 0, 0, 100}, 4));
}

TEST(InstructionHardening, TableSwitchNegativeDefault) {
  expectTypedFailure(switchCode(Op::TableSwitch, {-1000, 0, 0, 0}, 4));
}

TEST(InstructionHardening, LookupSwitchNegativeCount) {
  expectTypedFailure(switchCode(Op::LookupSwitch, {0, -1}, 8));
}

TEST(InstructionHardening, LookupSwitchHugeCount) {
  // npairs larger than the whole code array cannot be satisfied.
  expectTypedFailure(switchCode(Op::LookupSwitch, {0, 1 << 30}, 8));
}

TEST(InstructionHardening, LookupSwitchTargetPastCodeEnd) {
  // One pair: match 7, target offset+200.
  expectTypedFailure(switchCode(Op::LookupSwitch, {0, 1, 7, 200}, 4));
}

TEST(InstructionHardening, BranchTargetPastCodeEnd) {
  // goto +100 in a four-byte method.
  expectTypedFailure({167, 0, 100, 177});
}

TEST(InstructionHardening, BranchTargetNegative) {
  // goto -16 from offset 0.
  expectTypedFailure({167, 0xFF, 0xF0, 177});
}
