//===- test_custom_opcodes.cpp - §7.2 digram coder tests ------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Instruction.h"
#include "classfile/Transform.h"
#include "corpus/Corpus.h"
#include "corpus/Rng.h"
#include "pack/CustomOpcodes.h"
#include <gtest/gtest.h>

using namespace cjpack;

TEST(CustomOpcodes, SimplePairIsFound) {
  // "ab" repeated: a single custom opcode should absorb the pair.
  std::vector<uint8_t> Stream;
  for (int I = 0; I < 100; ++I) {
    Stream.push_back(10);
    Stream.push_back(20);
  }
  CustomOpcodeResult R = buildCustomOpcodes(Stream, 8, 202);
  ASSERT_GE(R.Codebook.size(), 1u);
  EXPECT_EQ(R.Codebook[0].First, 10);
  EXPECT_EQ(R.Codebook[0].Second, 20);
  EXPECT_FALSE(R.Codebook[0].Skip);
  EXPECT_LE(R.Stream.size(), Stream.size() / 2 + 4);
  EXPECT_EQ(expandCustomOpcodes(R.Stream, R.Codebook, 202), Stream);
}

TEST(CustomOpcodes, SkipPairIsFound) {
  // a ? b with varying middles: only a skip-pair can absorb it.
  std::vector<uint8_t> Stream;
  Rng R(3);
  for (int I = 0; I < 200; ++I) {
    Stream.push_back(10);
    Stream.push_back(static_cast<uint8_t>(R.below(90) + 100));
    Stream.push_back(20);
  }
  CustomOpcodeResult Res = buildCustomOpcodes(Stream, 4, 202);
  ASSERT_GE(Res.Codebook.size(), 1u);
  bool FoundSkip = false;
  for (const CustomOp &Op : Res.Codebook)
    if (Op.Skip && Op.First == 10 && Op.Second == 20)
      FoundSkip = true;
  EXPECT_TRUE(FoundSkip);
  EXPECT_EQ(expandCustomOpcodes(Res.Stream, Res.Codebook, 202), Stream);
}

TEST(CustomOpcodes, NestedCustomOpsExpandCorrectly) {
  // "abcd" repeated forces chains: new1=(a,b), new2=(c,d), maybe
  // new3=(new1,new2). Expansion must invert the full chain.
  std::vector<uint8_t> Stream;
  for (int I = 0; I < 200; ++I)
    for (uint8_t B : {1, 2, 3, 4})
      Stream.push_back(B);
  CustomOpcodeResult R = buildCustomOpcodes(Stream, 16, 202);
  EXPECT_GE(R.Codebook.size(), 2u);
  EXPECT_LT(R.Stream.size(), Stream.size() / 2);
  EXPECT_EQ(expandCustomOpcodes(R.Stream, R.Codebook, 202), Stream);
}

TEST(CustomOpcodes, NoPairsMeansNoOps) {
  // All-distinct stream: nothing recurs, nothing to combine.
  std::vector<uint8_t> Stream;
  for (int I = 0; I < 200; ++I)
    Stream.push_back(static_cast<uint8_t>(I));
  CustomOpcodeResult R = buildCustomOpcodes(Stream, 8, 202);
  EXPECT_TRUE(R.Codebook.empty());
  EXPECT_EQ(R.Stream.size(), Stream.size());
}

TEST(CustomOpcodes, EmptyAndTinyStreams) {
  for (size_t N : {size_t(0), size_t(1), size_t(3)}) {
    std::vector<uint8_t> Stream(N, 42);
    CustomOpcodeResult R = buildCustomOpcodes(Stream, 8, 202);
    EXPECT_EQ(expandCustomOpcodes(R.Stream, R.Codebook, 202), Stream);
  }
}

TEST(CustomOpcodes, EstimatedBitsDecrease) {
  std::vector<uint8_t> Stream;
  Rng Rg(7);
  for (int I = 0; I < 3000; ++I) {
    // Skewed digram structure.
    uint8_t A = static_cast<uint8_t>(Rg.zipf(12));
    Stream.push_back(A);
    Stream.push_back(static_cast<uint8_t>(A + 50));
  }
  CustomOpcodeResult R = buildCustomOpcodes(Stream, 32, 202);
  EXPECT_LT(R.EstimatedBitsAfter, R.EstimatedBitsBefore);
  EXPECT_EQ(expandCustomOpcodes(R.Stream, R.Codebook, 202), Stream);
}

class CustomOpcodeSeedTest : public ::testing::TestWithParam<uint64_t> {};

/// Property: build + expand is the identity on random-ish opcode-like
/// streams, at any codebook size.
TEST_P(CustomOpcodeSeedTest, RoundTripsRandomStreams) {
  Rng R(GetParam());
  std::vector<uint8_t> Stream;
  size_t N = 200 + R.below(3000);
  for (size_t I = 0; I < N; ++I)
    Stream.push_back(static_cast<uint8_t>(R.zipf(60)));
  for (unsigned MaxOps : {1u, 8u, 54u}) {
    CustomOpcodeResult Res = buildCustomOpcodes(Stream, MaxOps, 202);
    EXPECT_LE(Res.Codebook.size(), MaxOps);
    for (const CustomOp &Op : Res.Codebook)
      EXPECT_GE(Op.Code, 202);
    EXPECT_EQ(expandCustomOpcodes(Res.Stream, Res.Codebook, 202), Stream)
        << "seed " << GetParam() << " maxops " << MaxOps;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CustomOpcodeSeedTest,
                         ::testing::Range<uint64_t>(1, 13));

TEST(CustomOpcodes, RealOpcodeStreamRoundTrips) {
  CorpusSpec Spec;
  Spec.Name = "customops";
  Spec.Seed = 11;
  Spec.NumClasses = 20;
  Spec.NumPackages = 2;
  std::vector<ClassFile> Classes = generateCorpusClasses(Spec);
  std::vector<uint8_t> Opcodes;
  for (ClassFile &CF : Classes) {
    ASSERT_FALSE(static_cast<bool>(prepareForPacking(CF)));
    for (const MemberInfo &M : CF.Methods) {
      const AttributeInfo *A = findAttribute(M.Attributes, "Code");
      if (!A)
        continue;
      auto Code = parseCodeAttribute(*A, CF.CP);
      ASSERT_TRUE(static_cast<bool>(Code));
      auto Insns = decodeCode(Code->Code);
      ASSERT_TRUE(static_cast<bool>(Insns));
      for (const Insn &I : *Insns)
        Opcodes.push_back(static_cast<uint8_t>(I.Opcode));
    }
  }
  ASSERT_GT(Opcodes.size(), 1000u);
  CustomOpcodeResult R = buildCustomOpcodes(Opcodes, 54, 202);
  EXPECT_GT(R.Codebook.size(), 4u) << "real bytecode has hot digrams";
  EXPECT_LT(R.Stream.size(), Opcodes.size());
  EXPECT_EQ(expandCustomOpcodes(R.Stream, R.Codebook, 202), Opcodes);
}
