//===- test_scale.cpp - shard autotuning and 10k-class smoke --------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Two things live here: unit tests for autoShardCount (the resolver
// behind PackOptions::Shards = 0), and the scale smoke — a 10k-class
// corpus packed with autotuned shards and round-tripped, so the whole
// zero-copy pipeline is exercised at modern-jar scale under ctest, not
// just in benchmarks.
//
//===----------------------------------------------------------------------===//

#include "classfile/Transform.h"
#include "classfile/Writer.h"
#include "corpus/Corpus.h"
#include "pack/Packer.h"
#include "pack/Streams.h"
#include <gtest/gtest.h>
#include <map>
#include <thread>

using namespace cjpack;

//===----------------------------------------------------------------------===//
// autoShardCount
//===----------------------------------------------------------------------===//

TEST(AutoShard, SerialFloorKeepsTinyCorporaSingleShard) {
  EXPECT_EQ(autoShardCount(0), 1u);
  EXPECT_EQ(autoShardCount(1), 1u);
  EXPECT_EQ(autoShardCount(AutoShardClassesPerShard), 1u);
  EXPECT_EQ(autoShardCount(2 * AutoShardClassesPerShard - 1), 1u);
}

TEST(AutoShard, ScalesWithClassCountUpToHardware) {
  size_t Hw = std::max(1u, std::thread::hardware_concurrency());
  size_t At2 = autoShardCount(2 * AutoShardClassesPerShard);
  EXPECT_EQ(At2, std::min<size_t>(2, Hw));
  // Monotonic in the class count, and never past the hardware or the
  // wire-format cap.
  size_t Prev = 0;
  for (size_t N : {size_t(512), size_t(1000), size_t(10000),
                   size_t(1000000), size_t(100000000)}) {
    size_t S = autoShardCount(N);
    EXPECT_GE(S, Prev);
    EXPECT_LE(S, Hw);
    EXPECT_LE(S, MaxShards);
    Prev = S;
  }
}

TEST(AutoShard, IsDeterministic) {
  for (size_t N : {size_t(0), size_t(300), size_t(5000), size_t(20000)})
    EXPECT_EQ(autoShardCount(N), autoShardCount(N));
}

TEST(AutoShard, ShardsZeroMatchesExplicitCount) {
  // Shards = 0 must behave exactly like spelling out the autotuned
  // count: the archive stays a pure function of (input, options,
  // shard count).
  CorpusSpec Spec = scaleBenchmark(600);
  std::vector<ClassFile> Classes = generateCorpusClasses(Spec);
  for (ClassFile &CF : Classes)
    ASSERT_FALSE(static_cast<bool>(prepareForPacking(CF)));

  PackOptions Auto;
  Auto.Shards = 0;
  auto A = packClasses(Classes, Auto);
  ASSERT_TRUE(static_cast<bool>(A)) << A.message();

  PackOptions Explicit;
  Explicit.Shards = static_cast<unsigned>(autoShardCount(Classes.size()));
  auto E = packClasses(Classes, Explicit);
  ASSERT_TRUE(static_cast<bool>(E)) << E.message();

  EXPECT_EQ(A->Archive, E->Archive);
  EXPECT_EQ(A->Trace.Shards.size(), autoShardCount(Classes.size()));
}

//===----------------------------------------------------------------------===//
// 10k-class scale smoke
//===----------------------------------------------------------------------===//

TEST(Scale, TenThousandClassRoundTrip) {
  CorpusSpec Spec = scaleBenchmark(10000);
  std::vector<ClassFile> Classes = generateCorpusClasses(Spec);
  ASSERT_EQ(Classes.size(), 10000u);
  size_t TotalBytes = 0;
  for (const ClassFile &CF : Classes)
    TotalBytes += writeClassFile(CF).size();
  EXPECT_GT(TotalBytes, 50u * 1024 * 1024)
      << "scale corpus shrank below the 50 MB campaign floor";

  std::map<std::string, std::vector<uint8_t>> Want;
  for (ClassFile &CF : Classes) {
    ASSERT_FALSE(static_cast<bool>(prepareForPacking(CF)));
    Want[std::string(CF.thisClassName())] = writeClassFile(CF);
  }

  PackOptions O;
  O.Shards = 0;  // autotune
  O.Threads = 0; // all hardware threads
  auto Packed = packClasses(Classes, O);
  ASSERT_TRUE(static_cast<bool>(Packed)) << Packed.message();
  EXPECT_EQ(Packed->ClassCount, Classes.size());
  EXPECT_EQ(Packed->Trace.Shards.size(), autoShardCount(Classes.size()));
  EXPECT_LT(Packed->Archive.size(), TotalBytes / 2)
      << "scale archive compresses poorly";

  auto Restored = unpackClasses(Packed->Archive, /*Threads=*/0u);
  ASSERT_TRUE(static_cast<bool>(Restored)) << Restored.message();
  ASSERT_EQ(Restored->size(), Classes.size());
  // Archive order is the eager-load order, not input order; compare as
  // a name -> bytes map.
  size_t Mismatches = 0;
  for (const ClassFile &CF : *Restored) {
    auto It = Want.find(std::string(CF.thisClassName()));
    if (It == Want.end() || writeClassFile(CF) != It->second)
      ++Mismatches;
  }
  EXPECT_EQ(Mismatches, 0u);
}
