//===- test_arena.cpp - arena and ownership-model tests -------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The zero-copy classfile model rests on two lifetime contracts:
// arena views stay valid until the arena dies (stable addresses, no
// reallocation), and Owning-mode classfiles are self-contained while
// Borrowed-mode ones borrow from the caller's buffer. These tests
// abuse both contracts on purpose — freed input buffers, unmapped
// pages, arena reuse — so a regression shows up as an ASan report (or
// a wrong byte) here rather than as corruption deep in a pack run.
//
//===----------------------------------------------------------------------===//

#include "classfile/Reader.h"
#include "classfile/Transform.h"
#include "classfile/Writer.h"
#include "corpus/Corpus.h"
#include "pack/Packer.h"
#include "support/Arena.h"
#include <algorithm>
#include <cstring>
#include <gtest/gtest.h>

#ifdef __unix__
#include <sys/mman.h>
#include <unistd.h>
#endif

using namespace cjpack;

namespace {

CorpusSpec tinySpec(uint64_t Seed = 41) {
  CorpusSpec S;
  S.Name = "arena";
  S.Seed = Seed;
  S.NumClasses = 12;
  S.NumPackages = 2;
  S.MeanMethods = 4;
  S.MeanStatements = 6;
  return S;
}

} // namespace

//===----------------------------------------------------------------------===//
// Arena contract
//===----------------------------------------------------------------------===//

TEST(Arena, CountersTrackAllocations) {
  Arena A;
  EXPECT_EQ(A.bytesUsed(), 0u);
  EXPECT_EQ(A.allocationCount(), 0u);
  EXPECT_EQ(A.bytesReserved(), 0u);
  A.allocate(100);
  A.allocate(28);
  EXPECT_EQ(A.bytesUsed(), 128u);
  EXPECT_EQ(A.allocationCount(), 2u);
  EXPECT_GE(A.bytesReserved(), 128u);
}

TEST(Arena, ViewsSurviveChunkGrowth) {
  // A tiny chunk size forces many chunks; every earlier view must stay
  // byte-for-byte intact as later chunks are added (stable addresses).
  Arena A(64);
  std::vector<std::string_view> Views;
  std::vector<std::string> Expect;
  for (int I = 0; I < 300; ++I) {
    std::string S = "string-" + std::to_string(I);
    Views.push_back(A.internString(S));
    Expect.push_back(std::move(S));
  }
  for (size_t I = 0; I < Views.size(); ++I)
    EXPECT_EQ(Views[I], Expect[I]) << "view " << I << " moved or corrupted";
}

TEST(Arena, OversizedAllocationDoesNotWasteCurrentChunk) {
  Arena A(64);
  uint8_t *Small1 = A.allocate(8);
  // Oversized: gets its own chunk, leaving the first chunk's cursor
  // untouched for the next small allocation.
  uint8_t *Big = A.allocate(1000);
  uint8_t *Small2 = A.allocate(8);
  EXPECT_EQ(Small2, Small1 + 8) << "cursor was disturbed by the big chunk";
  std::memset(Big, 0xAB, 1000); // the dedicated chunk is fully usable
  EXPECT_EQ(A.bytesUsed(), 1016u);
}

TEST(Arena, CopyAndAdoptPreserveBytes) {
  Arena A;
  std::vector<uint8_t> Buf = {1, 2, 3, 4, 5};
  std::span<const uint8_t> Copied = A.copy(Buf);
  EXPECT_NE(Copied.data(), Buf.data());
  EXPECT_TRUE(std::equal(Copied.begin(), Copied.end(), Buf.begin()));

  const uint8_t *Donated = Buf.data();
  std::span<const uint8_t> Adopted = A.adopt(std::move(Buf));
  EXPECT_EQ(Adopted.data(), Donated) << "adopt must not copy";
  EXPECT_EQ(Adopted.size(), 5u);
  EXPECT_EQ(Adopted[4], 5);
}

TEST(Arena, ResetRecyclesForReuse) {
  Arena A(128);
  for (int I = 0; I < 50; ++I)
    A.internString("some reasonably long interned string payload");
  ASSERT_GT(A.bytesReserved(), 0u);
  A.reset();
  EXPECT_EQ(A.bytesUsed(), 0u);
  EXPECT_EQ(A.allocationCount(), 0u);
  // The arena is fully usable again after reset.
  std::string_view V = A.internString("after-reset");
  EXPECT_EQ(V, "after-reset");
}

TEST(Arena, EmptyInputsAllocateNothing) {
  Arena A;
  EXPECT_TRUE(A.internString("").empty());
  EXPECT_TRUE(A.copy(std::span<const uint8_t>()).empty());
  EXPECT_EQ(A.allocationCount(), 0u);
}

//===----------------------------------------------------------------------===//
// ParseMode ownership
//===----------------------------------------------------------------------===//

TEST(ParseMode, BorrowedAndOwningAreBitIdentical) {
  // The two modes differ only in who keeps the backing bytes alive;
  // everything derived from them — re-serialization and full archives —
  // must be byte-identical.
  std::vector<NamedClass> Classes = generateCorpus(tinySpec());
  std::vector<ClassFile> Owning, Borrowed;
  for (const NamedClass &C : Classes) {
    auto O = parseClassFile(C.Data, {}, ParseMode::Owning);
    auto B = parseClassFile(C.Data, {}, ParseMode::Borrowed);
    ASSERT_TRUE(static_cast<bool>(O)) << O.message();
    ASSERT_TRUE(static_cast<bool>(B)) << B.message();
    EXPECT_EQ(writeClassFile(*O), writeClassFile(*B)) << C.Name;
    ASSERT_FALSE(static_cast<bool>(prepareForPacking(*O)));
    ASSERT_FALSE(static_cast<bool>(prepareForPacking(*B)));
    Owning.push_back(std::move(*O));
    Borrowed.push_back(std::move(*B));
  }
  // C.Data stays alive in Classes, so the Borrowed models are valid to
  // pack here.
  auto PO = packClasses(Owning, PackOptions());
  auto PB = packClasses(Borrowed, PackOptions());
  ASSERT_TRUE(static_cast<bool>(PO)) << PO.message();
  ASSERT_TRUE(static_cast<bool>(PB)) << PB.message();
  EXPECT_EQ(PO->Archive, PB->Archive);
}

TEST(ParseMode, OwningSurvivesInputDestruction) {
  // Parse in Owning mode, then clobber and free the input buffer. If
  // any view still pointed into it, the reads below would be
  // use-after-free (caught by ASan) or return the poison bytes.
  std::vector<NamedClass> Classes = generateCorpus(tinySpec(43));
  NamedClass &C = Classes.front();
  std::string WantName = C.Name.substr(0, C.Name.size() - 6); // .class
  std::vector<uint8_t> Input = C.Data;
  auto CF = parseClassFile(Input, {}, ParseMode::Owning);
  ASSERT_TRUE(static_cast<bool>(CF)) << CF.message();
  std::vector<uint8_t> Want = writeClassFile(*CF);
  std::fill(Input.begin(), Input.end(), uint8_t(0xDD));
  Input.clear();
  Input.shrink_to_fit();
  EXPECT_EQ(CF->thisClassName(), WantName);
  EXPECT_EQ(writeClassFile(*CF), Want);
}

TEST(ParseMode, AdoptOverloadIsZeroCopy) {
  std::vector<NamedClass> Classes = generateCorpus(tinySpec(47));
  std::vector<uint8_t> Input = Classes.front().Data;
  const uint8_t *Lo = Input.data();
  const uint8_t *Hi = Lo + Input.size();
  auto CF = parseClassFile(std::move(Input));
  ASSERT_TRUE(static_cast<bool>(CF)) << CF.message();
  // The adopted buffer was donated to the arena at its original
  // address, so the class's views must point into it — proof no bulk
  // copy happened.
  std::string_view Name = CF->thisClassName();
  const uint8_t *P = reinterpret_cast<const uint8_t *>(Name.data());
  EXPECT_TRUE(P >= Lo && P < Hi) << "views were copied, not adopted";
}

TEST(ParseMode, BorrowedViewsPointIntoCallerBuffer) {
  std::vector<NamedClass> Classes = generateCorpus(tinySpec(53));
  const std::vector<uint8_t> &Input = Classes.front().Data;
  auto CF = parseClassFile(Input, {}, ParseMode::Borrowed);
  ASSERT_TRUE(static_cast<bool>(CF)) << CF.message();
  std::string_view Name = CF->thisClassName();
  const uint8_t *P = reinterpret_cast<const uint8_t *>(Name.data());
  EXPECT_TRUE(P >= Input.data() && P < Input.data() + Input.size())
      << "Borrowed mode copied";
  // And it allocated nothing to own.
  EXPECT_EQ(CF->CP.arena().bytesUsed(), 0u);
}

#ifdef __unix__
TEST(ParseMode, OwningSurvivesUnmap) {
  // The motivating case: parse straight out of a memory mapping, drop
  // the mapping, keep using the class. Owning mode must have landed
  // every byte it needs in the arena; a stale view would fault or trip
  // ASan the moment the page is gone.
  std::vector<NamedClass> Classes = generateCorpus(tinySpec(59));
  const std::vector<uint8_t> &Data = Classes.front().Data;
  long Page = sysconf(_SC_PAGESIZE);
  size_t MapLen = ((Data.size() + Page - 1) / Page) * Page;
  void *Map = mmap(nullptr, MapLen, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  ASSERT_NE(Map, MAP_FAILED);
  std::memcpy(Map, Data.data(), Data.size());

  auto CF = parseClassFile(
      std::span<const uint8_t>(static_cast<const uint8_t *>(Map),
                               Data.size()),
      {}, ParseMode::Owning);
  ASSERT_TRUE(static_cast<bool>(CF)) << CF.message();
  ASSERT_EQ(munmap(Map, MapLen), 0);

  EXPECT_EQ(writeClassFile(*CF), Data);
}
#endif
