//===- test_jazz.cpp - Jazz comparator format tests -----------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "classfile/Reader.h"
#include "classfile/Transform.h"
#include "classfile/Writer.h"
#include "corpus/Corpus.h"
#include "jazz/Jazz.h"
#include "zip/Jar.h"
#include <gtest/gtest.h>
#include <map>

using namespace cjpack;

namespace {

std::vector<ClassFile> preparedCorpus(uint64_t Seed, unsigned N,
                                      CodeStyle Style) {
  CorpusSpec S;
  S.Name = "jazztest";
  S.Seed = Seed;
  S.NumClasses = N;
  S.NumPackages = 3;
  S.Code = Style;
  std::vector<ClassFile> Classes = generateCorpusClasses(S);
  for (ClassFile &CF : Classes) {
    auto E = prepareForPacking(CF);
    EXPECT_FALSE(static_cast<bool>(E)) << E.message();
  }
  return Classes;
}

void expectJazzRoundTrip(uint64_t Seed, unsigned N, CodeStyle Style) {
  std::vector<ClassFile> Classes = preparedCorpus(Seed, N, Style);
  std::map<std::string, std::vector<uint8_t>> Want;
  for (const ClassFile &CF : Classes)
    Want[std::string(CF.thisClassName())] = writeClassFile(CF);

  auto Archive = jazzPack(Classes);
  ASSERT_TRUE(static_cast<bool>(Archive)) << Archive.message();
  auto Back = jazzUnpack(*Archive);
  ASSERT_TRUE(static_cast<bool>(Back)) << Back.message();
  ASSERT_EQ(Back->size(), Classes.size());
  for (const ClassFile &CF : *Back)
    EXPECT_EQ(writeClassFile(CF), Want[std::string(CF.thisClassName())])
        << CF.thisClassName();
}

} // namespace

TEST(Jazz, RoundTripBalanced) { expectJazzRoundTrip(3001, 25, CodeStyle::Balanced); }
TEST(Jazz, RoundTripNumeric) { expectJazzRoundTrip(3002, 25, CodeStyle::Numeric); }
TEST(Jazz, RoundTripStringHeavy) {
  expectJazzRoundTrip(3003, 25, CodeStyle::StringHeavy);
}
TEST(Jazz, RoundTripSingleClass) {
  expectJazzRoundTrip(3004, 2, CodeStyle::Balanced);
}

TEST(Jazz, UncompressedVariantRoundTrips) {
  std::vector<ClassFile> Classes =
      preparedCorpus(3005, 10, CodeStyle::Balanced);
  auto Plain = jazzPack(Classes, /*Compress=*/false);
  auto Comp = jazzPack(Classes, /*Compress=*/true);
  ASSERT_TRUE(static_cast<bool>(Plain));
  ASSERT_TRUE(static_cast<bool>(Comp));
  EXPECT_GT(Plain->size(), Comp->size());
  auto Back = jazzUnpack(*Plain);
  ASSERT_TRUE(static_cast<bool>(Back));
  EXPECT_EQ(Back->size(), Classes.size());
}

TEST(Jazz, DeterministicDecompression) {
  std::vector<ClassFile> Classes =
      preparedCorpus(3006, 15, CodeStyle::Balanced);
  auto Archive = jazzPack(Classes);
  ASSERT_TRUE(static_cast<bool>(Archive));
  auto A = jazzUnpack(*Archive);
  auto B = jazzUnpack(*Archive);
  ASSERT_TRUE(static_cast<bool>(A));
  ASSERT_TRUE(static_cast<bool>(B));
  for (size_t I = 0; I < A->size(); ++I)
    EXPECT_EQ(writeClassFile((*A)[I]), writeClassFile((*B)[I]));
}

TEST(Jazz, RejectsCorruption) {
  std::vector<ClassFile> Classes =
      preparedCorpus(3007, 5, CodeStyle::Balanced);
  auto Archive = jazzPack(Classes);
  ASSERT_TRUE(static_cast<bool>(Archive));
  auto Bad = *Archive;
  Bad[0] ^= 0xFF; // magic
  EXPECT_FALSE(static_cast<bool>(jazzUnpack(Bad)));
  auto Short = *Archive;
  Short.resize(Short.size() / 2);
  EXPECT_FALSE(static_cast<bool>(jazzUnpack(Short)));
  auto Flip = *Archive;
  Flip[Flip.size() / 2] ^= 0x40; // inside the deflate body
  auto Result = jazzUnpack(Flip);
  // Either the inflate fails or the decoded structure is invalid; it
  // must not succeed with different classes.
  if (Result) {
    ASSERT_EQ(Result->size(), Classes.size());
    bool AllEqual = true;
    for (size_t I = 0; I < Classes.size(); ++I)
      if (writeClassFile((*Result)[I]) != writeClassFile(Classes[I]))
        AllEqual = false;
    EXPECT_TRUE(AllEqual) << "corruption silently changed classes";
  }
}

TEST(Jazz, SharesGlobalPoolAcrossClasses) {
  // The whole point of Jazz (§13.1): an archive of N similar classes is
  // much smaller than N separate archives.
  std::vector<ClassFile> Classes =
      preparedCorpus(3008, 20, CodeStyle::Balanced);
  auto Together = jazzPack(Classes);
  ASSERT_TRUE(static_cast<bool>(Together));
  size_t Separate = 0;
  for (const ClassFile &CF : Classes) {
    auto One = jazzPack({CF});
    ASSERT_TRUE(static_cast<bool>(One));
    Separate += One->size();
  }
  EXPECT_LT(Together->size() * 3, Separate * 2)
      << "shared pool should save at least a third";
}

TEST(Jazz, PackBytesEntryPoint) {
  CorpusSpec S;
  S.Name = "jazzbytes";
  S.Seed = 3009;
  S.NumClasses = 8;
  S.NumPackages = 2;
  std::vector<NamedClass> Raw = generateCorpus(S);
  auto Archive = jazzPackBytes(Raw);
  ASSERT_TRUE(static_cast<bool>(Archive)) << Archive.message();
  auto Back = jazzUnpack(*Archive);
  ASSERT_TRUE(static_cast<bool>(Back));
  EXPECT_EQ(Back->size(), Raw.size());
}
