//===- test_threadpool.cpp - work-stealing thread pool tests --------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"
#include <atomic>
#include <chrono>
#include <gtest/gtest.h>
#include <numeric>
#include <stdexcept>
#include <vector>

using namespace cjpack;

TEST(ThreadPool, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
  ThreadPool Pool;
  EXPECT_EQ(Pool.size(), ThreadPool::defaultThreadCount());
}

TEST(ThreadPool, ReturnsResultsThroughFutures) {
  ThreadPool Pool(4);
  std::vector<std::future<int>> Futures;
  for (int I = 0; I < 64; ++I)
    Futures.push_back(Pool.submit([I] { return I * I; }));
  for (int I = 0; I < 64; ++I)
    EXPECT_EQ(Futures[static_cast<size_t>(I)].get(), I * I);
}

TEST(ThreadPool, SingleWorkerRunsTasksInSubmissionOrder) {
  std::vector<int> Order;
  {
    ThreadPool Pool(1);
    for (int I = 0; I < 100; ++I)
      Pool.submit([I, &Order] { Order.push_back(I); });
  }
  std::vector<int> Want(100);
  std::iota(Want.begin(), Want.end(), 0);
  EXPECT_EQ(Order, Want);
}

TEST(ThreadPool, ExceptionPropagatesToFuture) {
  ThreadPool Pool(2);
  auto Ok = Pool.submit([] { return 7; });
  auto Bad = Pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_EQ(Ok.get(), 7);
  EXPECT_THROW(
      {
        try {
          Bad.get();
        } catch (const std::runtime_error &E) {
          EXPECT_STREQ(E.what(), "task failed");
          throw;
        }
      },
      std::runtime_error);
}

TEST(ThreadPool, ExceptionDoesNotKillTheWorker) {
  ThreadPool Pool(1);
  auto Bad = Pool.submit([] { throw std::runtime_error("boom"); });
  auto After = Pool.submit([] { return 42; });
  EXPECT_THROW(Bad.get(), std::runtime_error);
  EXPECT_EQ(After.get(), 42);
}

TEST(ThreadPool, DestructionDrainsQueuedWork) {
  std::atomic<int> Done{0};
  {
    ThreadPool Pool(2);
    for (int I = 0; I < 64; ++I)
      Pool.submit([&Done] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        ++Done;
      });
    // Destruction must run every queued task, not drop the backlog.
  }
  EXPECT_EQ(Done.load(), 64);
}

TEST(ThreadPool, ManySmallTasksAcrossWorkers) {
  std::atomic<long> Sum{0};
  {
    ThreadPool Pool(8);
    for (long I = 1; I <= 1000; ++I)
      Pool.submit([I, &Sum] { Sum += I; });
  }
  EXPECT_EQ(Sum.load(), 1000L * 1001 / 2);
}

TEST(ThreadPool, ConcurrentSubmittersRaceShutdown) {
  // Tiny tasks from several submitter threads maximize the window
  // where a spinning worker pops a task the instant it is published;
  // if the queued-task counter ever underflowed, workers would spin
  // and the pool destructor would stall instead of joining cleanly.
  std::atomic<int> Done{0};
  {
    ThreadPool Pool(4);
    std::vector<std::thread> Submitters;
    for (int T = 0; T < 4; ++T)
      Submitters.emplace_back([&Pool, &Done] {
        for (int I = 0; I < 500; ++I)
          Pool.submit([&Done] { ++Done; });
      });
    for (std::thread &T : Submitters)
      T.join();
    // Pool destruction races the tail of the just-submitted backlog.
  }
  EXPECT_EQ(Done.load(), 4 * 500);
}

TEST(ThreadPool, WorkersStealSkewedBacklog) {
  // One long task pins a worker; round-robin still parks half the
  // small tasks behind it, so completion requires the idle worker to
  // steal them.
  std::atomic<int> Small{0};
  {
    ThreadPool Pool(2);
    Pool.submit(
        [] { std::this_thread::sleep_for(std::chrono::milliseconds(50)); });
    for (int I = 0; I < 32; ++I)
      Pool.submit([&Small] { ++Small; });
  }
  EXPECT_EQ(Small.load(), 32);
}
