//===- test_classorder.cpp - §11 eager-loading class order ----------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
//
// eagerLoadOrder must produce a supertype-first permutation, stable with
// respect to the input order, tolerant of external supertypes and of
// malformed (cyclic) hierarchies; isEagerLoadable is its checker. These
// tests pin the contract on hand-built hierarchies where the expected
// order is known exactly, complementing the corpus-level checks.
//
//===----------------------------------------------------------------------===//

#include "pack/ClassOrder.h"
#include "pack/Packer.h"
#include "classfile/Transform.h"
#include "corpus/Corpus.h"
#include <algorithm>
#include <gtest/gtest.h>

using namespace cjpack;

namespace {

/// Minimal classfile: just enough constant pool for the names the
/// ordering logic reads.
ClassFile makeClass(const std::string &Name, const std::string &Super,
                    std::vector<std::string> Ifaces = {}) {
  ClassFile CF;
  CF.ThisClass = CF.CP.addClass(Name);
  if (!Super.empty())
    CF.SuperClass = CF.CP.addClass(Super);
  for (const std::string &I : Ifaces)
    CF.Interfaces.push_back(CF.CP.addClass(I));
  return CF;
}

std::vector<ClassFile> reorder(const std::vector<ClassFile> &Classes,
                               const std::vector<size_t> &Order) {
  std::vector<ClassFile> Out;
  for (size_t I : Order)
    Out.push_back(Classes[I]);
  return Out;
}

std::vector<std::string> namesOf(const std::vector<ClassFile> &Classes,
                                 const std::vector<size_t> &Order) {
  std::vector<std::string> Out;
  for (size_t I : Order)
    Out.emplace_back(Classes[I].thisClassName());
  return Out;
}

} // namespace

TEST(ClassOrder, EmptyAndSingleton) {
  EXPECT_TRUE(eagerLoadOrder({}).empty());
  EXPECT_TRUE(isEagerLoadable({}));
  std::vector<ClassFile> One;
  One.push_back(makeClass("A", "java/lang/Object"));
  EXPECT_EQ(eagerLoadOrder(One), std::vector<size_t>{0});
  EXPECT_TRUE(isEagerLoadable(One));
}

TEST(ClassOrder, AlreadyValidOrderIsUntouched) {
  // Stability: when the input already satisfies every constraint, the
  // order must be the identity — unrelated classes never move.
  std::vector<ClassFile> Classes;
  Classes.push_back(makeClass("A", "java/lang/Object"));
  Classes.push_back(makeClass("X", "java/lang/Object"));
  Classes.push_back(makeClass("B", "A"));
  Classes.push_back(makeClass("C", "B"));
  ASSERT_TRUE(isEagerLoadable(Classes));
  EXPECT_EQ(eagerLoadOrder(Classes), (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(ClassOrder, ReversedChainIsSorted) {
  std::vector<ClassFile> Classes;
  Classes.push_back(makeClass("C", "B"));
  Classes.push_back(makeClass("B", "A"));
  Classes.push_back(makeClass("A", "java/lang/Object"));
  ASSERT_FALSE(isEagerLoadable(Classes));
  std::vector<size_t> Order = eagerLoadOrder(Classes);
  EXPECT_EQ(namesOf(Classes, Order),
            (std::vector<std::string>{"A", "B", "C"}));
  EXPECT_TRUE(isEagerLoadable(reorder(Classes, Order)));
}

TEST(ClassOrder, InterfacesPrecedeImplementors) {
  std::vector<ClassFile> Classes;
  Classes.push_back(
      makeClass("Impl", "Base", {"IfaceOne", "IfaceTwo"}));
  Classes.push_back(makeClass("IfaceTwo", "java/lang/Object"));
  Classes.push_back(makeClass("Base", "java/lang/Object"));
  Classes.push_back(makeClass("IfaceOne", "java/lang/Object"));
  ASSERT_FALSE(isEagerLoadable(Classes));
  std::vector<size_t> Order = eagerLoadOrder(Classes);
  // Impl's supertypes are visited super-first then interfaces in
  // declaration order, so the full order is deterministic.
  EXPECT_EQ(namesOf(Classes, Order),
            (std::vector<std::string>{"Base", "IfaceOne", "IfaceTwo",
                                      "Impl"}));
  EXPECT_TRUE(isEagerLoadable(reorder(Classes, Order)));
}

TEST(ClassOrder, ExternalSupertypesImposeNoConstraint) {
  // Supertypes outside the archive (the JDK, other jars) cannot be
  // ordered before their subclasses and must not perturb the order.
  std::vector<ClassFile> Classes;
  Classes.push_back(makeClass("A", "external/Base", {"external/Iface"}));
  Classes.push_back(makeClass("B", "other/Base"));
  EXPECT_TRUE(isEagerLoadable(Classes));
  EXPECT_EQ(eagerLoadOrder(Classes), (std::vector<size_t>{0, 1}));
}

TEST(ClassOrder, DiamondHierarchy) {
  std::vector<ClassFile> Classes;
  Classes.push_back(makeClass("Bottom", "Left", {"Right"}));
  Classes.push_back(makeClass("Left", "Top"));
  Classes.push_back(makeClass("Right", "Top"));
  Classes.push_back(makeClass("Top", "java/lang/Object"));
  std::vector<size_t> Order = eagerLoadOrder(Classes);
  std::vector<ClassFile> Sorted = reorder(Classes, Order);
  EXPECT_TRUE(isEagerLoadable(Sorted));
  // Top is everyone's ancestor and must come first.
  EXPECT_EQ(Sorted.front().thisClassName(), "Top");
}

TEST(ClassOrder, CyclicHierarchyStillEmitsEveryClassOnce) {
  // Malformed input (an inheritance cycle) cannot be made loadable,
  // but the order must still be a permutation — no class dropped, no
  // class duplicated, no infinite recursion.
  std::vector<ClassFile> Classes;
  Classes.push_back(makeClass("A", "B"));
  Classes.push_back(makeClass("B", "A"));
  Classes.push_back(makeClass("C", "A"));
  std::vector<size_t> Order = eagerLoadOrder(Classes);
  ASSERT_EQ(Order.size(), Classes.size());
  std::vector<size_t> Sorted = Order;
  std::sort(Sorted.begin(), Sorted.end());
  EXPECT_EQ(Sorted, (std::vector<size_t>{0, 1, 2}));
}

TEST(ClassOrder, PackedArchivesComeOutEagerLoadable) {
  CorpusSpec Spec;
  Spec.Name = "ordertest";
  Spec.Seed = 31;
  Spec.NumClasses = 24;
  Spec.NumPackages = 3;
  std::vector<ClassFile> Classes = generateCorpusClasses(Spec);
  for (ClassFile &CF : Classes)
    ASSERT_FALSE(static_cast<bool>(prepareForPacking(CF)));
  // Scramble the input; the packer's OrderForEagerLoading must restore
  // the §11 property in the unpacked archive, at 1 and 4 shards.
  std::reverse(Classes.begin(), Classes.end());
  for (unsigned Shards : {1u, 4u}) {
    PackOptions Options;
    Options.Shards = Shards;
    auto Packed = packClasses(Classes, Options);
    ASSERT_TRUE(static_cast<bool>(Packed)) << Packed.message();
    auto Unpacked = unpackClasses(Packed->Archive);
    ASSERT_TRUE(static_cast<bool>(Unpacked)) << Unpacked.message();
    EXPECT_TRUE(isEagerLoadable(*Unpacked)) << Shards << " shards";
  }
}

TEST(ClassOrder, DisabledOrderingPreservesInputOrder) {
  std::vector<ClassFile> Classes;
  Classes.push_back(makeClass("pkg/C", "pkg/B"));
  Classes.push_back(makeClass("pkg/B", "pkg/A"));
  Classes.push_back(makeClass("pkg/A", "java/lang/Object"));
  for (ClassFile &CF : Classes)
    ASSERT_FALSE(static_cast<bool>(prepareForPacking(CF)));
  PackOptions Options;
  Options.OrderForEagerLoading = false;
  auto Packed = packClasses(Classes, Options);
  ASSERT_TRUE(static_cast<bool>(Packed)) << Packed.message();
  auto Unpacked = unpackClasses(Packed->Archive);
  ASSERT_TRUE(static_cast<bool>(Unpacked)) << Unpacked.message();
  ASSERT_EQ(Unpacked->size(), 3u);
  EXPECT_EQ((*Unpacked)[0].thisClassName(), "pkg/C");
  EXPECT_EQ((*Unpacked)[1].thisClassName(), "pkg/B");
  EXPECT_EQ((*Unpacked)[2].thisClassName(), "pkg/A");
}