//===- test_fault_injection.cpp - hostile-input fault injection -----------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Deterministic fault-injection driver for the decode surfaces. Takes
// valid artifacts (packed archives across the wire-format matrix,
// classfiles, zip/gzip containers) and derives hostile variants:
//
//   * truncation at every byte offset (a superset of every frame
//     boundary in the format),
//   * single-byte corruption at every offset with several XOR patterns
//     (0xFF inverts, 0x80 flips sign/continuation bits, 0x01 nudges
//     varint values off-by-one),
//   * >= 10k pseudo-random multi-byte mutations per archive, including
//     0xFF-run splices that turn varint lengths and counts into huge
//     values.
//
// Every variant must decode cleanly: either success, or a typed Error
// from the decode taxonomy (Truncated / Corrupt / LimitExceeded) —
// never a crash, sanitizer report, unbounded allocation, or hang. The
// whole driver is deterministic (fixed seeds, xorshift RNG), so a
// failure reproduces exactly. It runs under the ASan+UBSan CI matrix.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Instruction.h"
#include "classfile/ClassFile.h"
#include "classfile/Reader.h"
#include "corpus/Corpus.h"
#include "pack/ArchiveIndex.h"
#include "pack/ArchiveReader.h"
#include "pack/Backend.h"
#include "pack/Packer.h"
#include "pack/Stats.h"
#include "pack/Streams.h"
#include "support/VarInt.h"
#include "zip/ZipFile.h"
#include <gtest/gtest.h>

using namespace cjpack;

namespace {

// Tight limits so a mutation that smuggles a huge length through the
// checks shows up as a slow/large allocation immediately rather than
// relying on the 4GiB default inflate budget.
DecodeLimits testLimits() {
  DecodeLimits Limits;
  Limits.MaxClasses = 1u << 12;
  Limits.MaxPoolEntries = 1u << 16;
  Limits.MaxStringBytes = 1u << 16;
  Limits.MaxStreamBytes = 1u << 22;
  Limits.MaxInflateBytes = 1u << 24;
  Limits.MaxZipEntries = 1u << 10;
  return Limits;
}

UnpackOptions testOptions() {
  UnpackOptions Options;
  Options.Threads = 1; // keep each of the ~10^4 decodes cheap
  Options.Limits = testLimits();
  return Options;
}

/// xorshift64* — tiny deterministic RNG; libc rand() would make the
/// mutation schedule platform-dependent.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed ? Seed : 0x9E3779B97F4A7C15ull) {}
  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545F4914F6CDD1Dull;
  }
  /// Uniform value in [0, Bound).
  uint64_t below(uint64_t Bound) { return next() % Bound; }

private:
  uint64_t State;
};

std::vector<NamedClass> smallCorpus() {
  CorpusSpec Spec;
  Spec.Name = "faultinject";
  Spec.Seed = 41;
  Spec.NumClasses = 5;
  Spec.NumPackages = 2;
  Spec.MeanMethods = 3;
  Spec.MeanFields = 2;
  Spec.MeanStatements = 5;
  return generateCorpus(Spec);
}

std::vector<uint8_t> packedArchive(unsigned Shards, RefScheme Scheme,
                                   bool Indexed = false,
                                   BackendId Backend = BackendId::Zlib) {
  PackOptions Options;
  Options.Shards = Shards;
  Options.Scheme = Scheme;
  Options.RandomAccessIndex = Indexed;
  Options.Backend = Backend;
  auto Packed = packClassBytes(smallCorpus(), Options);
  EXPECT_TRUE(static_cast<bool>(Packed)) << Packed.message();
  return Packed ? Packed->Archive : std::vector<uint8_t>();
}

/// Decodes one hostile archive variant; the only acceptable outcomes
/// are success or a typed decode-taxonomy error.
void expectCleanUnpack(const std::vector<uint8_t> &Bytes,
                       const char *What, size_t Detail) {
  auto Classes = unpackClasses(Bytes, testOptions());
  if (Classes)
    return;
  EXPECT_NE(Classes.code(), ErrorCode::Other)
      << What << " at " << Detail
      << ": decode failure escaped the taxonomy: " << Classes.message();
}

/// Same contract for the lazy reader: open, list, decode every indexed
/// class. Success or a typed error, never a crash or OOB read.
void expectCleanReader(const std::vector<uint8_t> &Bytes, const char *What,
                       size_t Detail) {
  auto Reader = PackedArchiveReader::open(Bytes, testLimits());
  if (!Reader) {
    EXPECT_NE(Reader.code(), ErrorCode::Other)
        << What << " at " << Detail
        << ": reader open failure escaped the taxonomy: "
        << Reader.message();
    return;
  }
  auto All = Reader->unpackAll();
  if (!All) {
    EXPECT_NE(All.code(), ErrorCode::Other)
        << What << " at " << Detail
        << ": lazy decode failure escaped the taxonomy: "
        << All.message();
  }
}

void expectCleanClassfile(const std::vector<uint8_t> &Bytes,
                          const char *What, size_t Detail) {
  auto CF = parseClassFile(Bytes, testLimits());
  if (!CF) {
    EXPECT_NE(CF.code(), ErrorCode::Other)
        << What << " at " << Detail
        << ": parse failure escaped the taxonomy: " << CF.message();
    return;
  }
  for (const MemberInfo &M : CF->Methods)
    for (const AttributeInfo &A : M.Attributes)
      if (A.Name == "Code") {
        auto Code = parseCodeAttribute(A, CF->CP);
        if (!Code) {
          EXPECT_NE(Code.code(), ErrorCode::Other)
              << What << " at " << Detail << ": " << Code.message();
          continue;
        }
        auto Insns = decodeCode(Code->Code);
        if (!Insns) {
          EXPECT_NE(Insns.code(), ErrorCode::Other)
              << What << " at " << Detail << ": " << Insns.message();
        }
      }
}

void expectCleanZip(const std::vector<uint8_t> &Bytes, const char *What,
                    size_t Detail) {
  auto Entries = readZip(Bytes, testLimits());
  if (!Entries) {
    EXPECT_NE(Entries.code(), ErrorCode::Other)
        << What << " at " << Detail
        << ": zip failure escaped the taxonomy: " << Entries.message();
  }
  auto Inflated = gunzipBytes(Bytes, testLimits());
  if (!Inflated) {
    EXPECT_NE(Inflated.code(), ErrorCode::Other)
        << What << " at " << Detail
        << ": gzip failure escaped the taxonomy: " << Inflated.message();
  }
}

using CheckFn = void (*)(const std::vector<uint8_t> &, const char *, size_t);

/// Truncation at every byte offset — a superset of cutting at every
/// frame boundary (header fields, dictionary frame, shard table,
/// per-stream headers, stream payloads all land on some offset).
void truncateEverywhere(const std::vector<uint8_t> &Valid, CheckFn Check) {
  for (size_t Len = 0; Len < Valid.size(); ++Len)
    Check(std::vector<uint8_t>(Valid.begin(),
                               Valid.begin() + static_cast<ptrdiff_t>(Len)),
          "truncation", Len);
}

/// Single-byte XOR corruption at every offset, for each pattern.
void flipEverywhere(const std::vector<uint8_t> &Valid, CheckFn Check) {
  static const uint8_t Patterns[] = {0xFF, 0x80, 0x01};
  std::vector<uint8_t> Mutant = Valid;
  for (size_t I = 0; I < Valid.size(); ++I) {
    for (uint8_t Pattern : Patterns) {
      Mutant[I] = Valid[I] ^ Pattern;
      Check(Mutant, "byte flip", I);
    }
    Mutant[I] = Valid[I];
  }
}

/// Pseudo-random multi-byte mutations. Three deterministic kinds:
/// scattered byte rewrites, 0xFF-run splices (varint/length bombs:
/// a run of 0xFF continuation bytes encodes a huge value wherever a
/// varint is read), and truncate-then-corrupt combinations.
void mutateRandomly(const std::vector<uint8_t> &Valid, CheckFn Check,
                    uint64_t Seed, size_t Rounds) {
  Rng R(Seed);
  std::vector<uint8_t> Mutant;
  for (size_t Round = 0; Round < Rounds; ++Round) {
    Mutant = Valid;
    switch (R.below(3)) {
    case 0: { // scattered rewrites
      size_t N = 1 + R.below(8);
      for (size_t I = 0; I < N; ++I)
        Mutant[R.below(Mutant.size())] = static_cast<uint8_t>(R.next());
      break;
    }
    case 1: { // 0xFF run: turns any varint underneath into a huge value
      size_t Pos = R.below(Mutant.size());
      size_t Run = 1 + R.below(12);
      for (size_t I = Pos; I < Mutant.size() && I < Pos + Run; ++I)
        Mutant[I] = 0xFF;
      break;
    }
    default: { // truncate, then corrupt one byte of what is left
      Mutant.resize(1 + R.below(Mutant.size()));
      Mutant[R.below(Mutant.size())] = static_cast<uint8_t>(R.next());
      break;
    }
    }
    Check(Mutant, "random mutation round", Round);
  }
}

/// Re-frames a valid version-3 archive around a tampered index: parses
/// the real index, lets \p Mutate rewrite it, and splices the new frame
/// back between the header and the dictionary. Every other byte is
/// untouched, so the failure the reader reports is attributable to the
/// index alone.
std::vector<uint8_t> rebuildWithIndex(const std::vector<uint8_t> &Valid,
                                      void (*Mutate)(ArchiveIndex &)) {
  ByteReader R(Valid);
  R.skip(7);
  uint64_t IndexLen = readVarUInt(R);
  EXPECT_FALSE(R.hasError());
  ByteReader IndexR(Valid.data() + R.position(),
                    static_cast<size_t>(IndexLen));
  auto Index = ArchiveIndex::deserialize(IndexR);
  EXPECT_TRUE(static_cast<bool>(Index)) << Index.message();
  Mutate(*Index);
  ByteWriter W;
  W.writeBytes(Valid.data(), 7);
  std::vector<uint8_t> Body = Index->serialize();
  writeVarUInt(W, Body.size());
  W.writeBytes(Body);
  size_t Rest = R.position() + static_cast<size_t>(IndexLen);
  W.writeBytes(Valid.data() + Rest, Valid.size() - Rest);
  return W.take();
}

/// Opens + fully decodes a tampered v3 archive and requires the exact
/// error class the tampering must produce.
void expectReaderRejects(const std::vector<uint8_t> &Bytes, ErrorCode Code,
                         const char *What) {
  auto Reader = PackedArchiveReader::open(Bytes, testLimits());
  if (!Reader) {
    EXPECT_EQ(Reader.code(), Code) << What << ": " << Reader.message();
    return;
  }
  auto All = Reader->unpackAll();
  ASSERT_FALSE(static_cast<bool>(All))
      << What << ": tampered archive decoded successfully";
  EXPECT_EQ(All.code(), Code) << What << ": " << All.message();
}

} // namespace

// Every archive variant of the wire-format matrix survives truncation
// at every single byte offset.
TEST(FaultInjection, TruncatedArchiveEveryOffset) {
  for (unsigned Shards : {1u, 4u}) {
    auto Archive = packedArchive(Shards, RefScheme::MtfTransientsContext);
    ASSERT_FALSE(Archive.empty());
    truncateEverywhere(Archive, expectCleanUnpack);
  }
}

TEST(FaultInjection, FlippedArchiveEveryOffset) {
  for (unsigned Shards : {1u, 4u}) {
    auto Archive = packedArchive(Shards, RefScheme::MtfTransientsContext);
    ASSERT_FALSE(Archive.empty());
    flipEverywhere(Archive, expectCleanUnpack);
  }
}

// >= 10k deterministic mutations against each corpus archive (the
// ISSUE floor), across the single-shard and sharded wire formats.
TEST(FaultInjection, RandomMutationsSingleShard) {
  auto Archive = packedArchive(1, RefScheme::MtfTransientsContext);
  ASSERT_FALSE(Archive.empty());
  mutateRandomly(Archive, expectCleanUnpack, /*Seed=*/1, /*Rounds=*/10000);
}

TEST(FaultInjection, RandomMutationsSharded) {
  auto Archive = packedArchive(4, RefScheme::MtfTransientsContext);
  ASSERT_FALSE(Archive.empty());
  mutateRandomly(Archive, expectCleanUnpack, /*Seed=*/2, /*Rounds=*/10000);
}

// The alternate reference schemes share the decode entry but exercise
// different ref-decoder state machines; give each a smaller dose.
TEST(FaultInjection, RandomMutationsAltSchemes) {
  for (RefScheme Scheme : {RefScheme::Simple, RefScheme::Freq}) {
    auto Archive = packedArchive(1, Scheme);
    ASSERT_FALSE(Archive.empty());
    mutateRandomly(Archive, expectCleanUnpack,
                   /*Seed=*/3 + static_cast<uint64_t>(Scheme),
                   /*Rounds=*/2500);
  }
}

// The version-3 lazy reader under the same truncation / flip / mutation
// schedule as the whole-archive decoder.
TEST(FaultInjection, IndexedArchiveSweeps) {
  for (unsigned Shards : {1u, 3u}) {
    auto Archive =
        packedArchive(Shards, RefScheme::MtfTransientsContext, true);
    ASSERT_FALSE(Archive.empty());
    truncateEverywhere(Archive, expectCleanReader);
    flipEverywhere(Archive, expectCleanReader);
    mutateRandomly(Archive, expectCleanReader,
                   /*Seed=*/11 + Shards, /*Rounds=*/5000);
  }
}

// Crafted hostile indexes with the exact typed rejection each must
// produce — the attack surface the v3 format adds over v2.
TEST(FaultInjection, HostileIndexTyped) {
  auto Valid = packedArchive(3, RefScheme::MtfTransientsContext, true);
  ASSERT_FALSE(Valid.empty());
  // Sanity: the untampered archive decodes.
  {
    auto Reader = PackedArchiveReader::open(Valid, testLimits());
    ASSERT_TRUE(static_cast<bool>(Reader)) << Reader.message();
    ASSERT_TRUE(static_cast<bool>(Reader->unpackAll()));
  }

  // Index frame longer than the archive: the length prefix promises
  // bytes that do not exist.
  {
    std::vector<uint8_t> Short(Valid.begin(), Valid.begin() + 10);
    auto Reader = PackedArchiveReader::open(Short, testLimits());
    ASSERT_FALSE(static_cast<bool>(Reader));
    EXPECT_EQ(Reader.code(), ErrorCode::Truncated) << Reader.message();
  }

  // Shard extent reaching past the end of the archive.
  expectReaderRejects(
      rebuildWithIndex(Valid,
                       [](ArchiveIndex &I) { I.Shards.back().Length += 4; }),
      ErrorCode::Truncated, "extent past EOF");

  // Overlapping extents: shard 1 aliased onto shard 0's bytes.
  expectReaderRejects(
      rebuildWithIndex(Valid,
                       [](ArchiveIndex &I) { I.Shards[1].Offset = 0; }),
      ErrorCode::Corrupt, "overlapping extents");

  // A gap between extents.
  expectReaderRejects(
      rebuildWithIndex(Valid,
                       [](ArchiveIndex &I) { I.Shards[1].Offset += 1; }),
      ErrorCode::Corrupt, "extent gap");

  // Two entries claiming the same (shard, ordinal) slot.
  expectReaderRejects(rebuildWithIndex(Valid,
                                       [](ArchiveIndex &I) {
                                         I.Classes[1].Shard =
                                             I.Classes[0].Shard;
                                         I.Classes[1].Ordinal =
                                             I.Classes[0].Ordinal;
                                       }),
                      ErrorCode::Corrupt, "duplicate slot");

  // Duplicate class names.
  expectReaderRejects(rebuildWithIndex(Valid,
                                       [](ArchiveIndex &I) {
                                         I.Classes[1].Name =
                                             I.Classes[0].Name;
                                       }),
                      ErrorCode::Corrupt, "duplicate name");

  // Index claims more classes than the shard's own directory declares.
  expectReaderRejects(
      rebuildWithIndex(Valid,
                       [](ArchiveIndex &I) { I.Classes[0].Ordinal = 99; }),
      ErrorCode::Corrupt, "ordinal beyond directory");

  // An index entry whose name disagrees with the class decoded at its
  // slot (two swapped names).
  expectReaderRejects(rebuildWithIndex(Valid,
                                       [](ArchiveIndex &I) {
                                         std::swap(I.Classes[0].Name,
                                                   I.Classes[1].Name);
                                       }),
                      ErrorCode::Corrupt, "name mismatch");

  // An entry naming a shard that does not exist.
  expectReaderRejects(
      rebuildWithIndex(Valid,
                       [](ArchiveIndex &I) { I.Classes[0].Shard = 7; }),
      ErrorCode::Corrupt, "shard out of range");
}

// The classfile parser plus bytecode decoder under the same schedule.
TEST(FaultInjection, ClassfileTruncationAndMutation) {
  auto Classes = smallCorpus();
  ASSERT_FALSE(Classes.empty());
  const std::vector<uint8_t> &Bytes = Classes[0].Data;
  truncateEverywhere(Bytes, expectCleanClassfile);
  flipEverywhere(Bytes, expectCleanClassfile);
  mutateRandomly(Bytes, expectCleanClassfile, /*Seed=*/5, /*Rounds=*/2500);
}

// The zip central-directory reader and the gzip frame reader.
TEST(FaultInjection, ZipTruncationAndMutation) {
  auto Classes = smallCorpus();
  ASSERT_FALSE(Classes.empty());
  std::vector<ZipEntry> Entries;
  for (size_t I = 0; I < Classes.size() && I < 2; ++I)
    Entries.push_back({Classes[I].Name, Classes[I].Data});
  for (ZipMethod Method : {ZipMethod::Deflated, ZipMethod::Stored}) {
    std::vector<uint8_t> Zip = writeZip(Entries, Method);
    truncateEverywhere(Zip, expectCleanZip);
    mutateRandomly(Zip, expectCleanZip, /*Seed=*/7, /*Rounds=*/1500);
  }
  std::vector<uint8_t> Gz = gzipBytes(Classes[0].Data);
  truncateEverywhere(Gz, expectCleanZip);
  flipEverywhere(Gz, expectCleanZip);
}

namespace {

/// One stream directory entry of a version-1 archive: where its method
/// byte sits in the archive and what it says.
struct StreamEntry {
  size_t MethodOffset;
  uint8_t Method;
};

/// Walks a version-1 archive's stream directory (7-byte header, then
/// per stream: id byte, method byte, raw-length varint, stored-length
/// varint, payload) and returns each entry's method-byte location.
std::vector<StreamEntry> walkV1Streams(const std::vector<uint8_t> &Archive) {
  std::vector<StreamEntry> Entries;
  ByteReader R(Archive);
  R.skip(7);
  for (unsigned I = 0; I < NumStreams; ++I) {
    size_t MethodAt = R.position() + 1;
    R.readU1(); // stream id
    uint8_t Method = R.readU1();
    readVarUInt(R); // raw length
    uint64_t StoredLen = readVarUInt(R);
    EXPECT_FALSE(R.hasError()) << "stream " << I;
    if (R.hasError())
      break;
    R.skip(static_cast<size_t>(StoredLen));
    Entries.push_back({MethodAt, Method});
  }
  EXPECT_TRUE(R.atEnd());
  return Entries;
}

/// unpackClasses + statPackedArchive must both reject \p Bytes with the
/// exact error class.
void expectUnpackAndStatsReject(const std::vector<uint8_t> &Bytes,
                                ErrorCode Code, const char *What) {
  auto Classes = unpackClasses(Bytes, testOptions());
  ASSERT_FALSE(static_cast<bool>(Classes))
      << What << ": tampered archive decoded successfully";
  EXPECT_EQ(Classes.code(), Code) << What << ": " << Classes.message();
  auto Stats = statPackedArchive(Bytes, testLimits());
  ASSERT_FALSE(static_cast<bool>(Stats))
      << What << ": tampered archive stat'd successfully";
  EXPECT_EQ(Stats.code(), Code) << What << ": " << Stats.message();
}

} // namespace

// The non-default backends under the same truncation / flip / mutation
// schedule as the zlib pipeline: the Huffman and arithmetic decoders
// face every byte-level fault the container can deliver.
TEST(FaultInjection, BackendArchiveSweeps) {
  for (BackendId Backend : {BackendId::Huffman, BackendId::Arith}) {
    auto Archive = packedArchive(1, RefScheme::MtfTransientsContext,
                                 /*Indexed=*/false, Backend);
    ASSERT_FALSE(Archive.empty());
    truncateEverywhere(Archive, expectCleanUnpack);
    flipEverywhere(Archive, expectCleanUnpack);
    mutateRandomly(Archive, expectCleanUnpack,
                   /*Seed=*/21 + static_cast<uint64_t>(Backend),
                   /*Rounds=*/4000);

    auto Indexed = packedArchive(3, RefScheme::MtfTransientsContext,
                                 /*Indexed=*/true, Backend);
    ASSERT_FALSE(Indexed.empty());
    truncateEverywhere(Indexed, expectCleanReader);
    flipEverywhere(Indexed, expectCleanReader);
    mutateRandomly(Indexed, expectCleanReader,
                   /*Seed=*/31 + static_cast<uint64_t>(Backend),
                   /*Rounds=*/2500);
  }
}

// Crafted backend-id attacks with the exact typed rejection each must
// produce — the attack surface the pluggable registry adds.
TEST(FaultInjection, HostileBackendTyped) {
  auto Valid = packedArchive(1, RefScheme::MtfTransientsContext,
                             /*Indexed=*/false, BackendId::Huffman);
  ASSERT_FALSE(Valid.empty());
  ASSERT_TRUE(static_cast<bool>(unpackClasses(Valid, testOptions())));
  std::vector<StreamEntry> Streams = walkV1Streams(Valid);
  ASSERT_EQ(Streams.size(), NumStreams);

  // Unknown method bytes on every stream: one past the registry and a
  // far-out value.
  for (uint8_t Hostile : {uint8_t(NumBackends), uint8_t(0xFF)}) {
    for (const StreamEntry &E : Streams) {
      std::vector<uint8_t> Mutant = Valid;
      Mutant[E.MethodOffset] = Hostile;
      expectUnpackAndStatsReject(Mutant, ErrorCode::Corrupt,
                                 "unknown backend id");
    }
  }

  // Relabeling a compressed stream as stored breaks the stored-size
  // invariant (stored length != raw length) and must be Corrupt.
  for (const StreamEntry &E : Streams) {
    if (E.Method == static_cast<uint8_t>(BackendId::Store))
      continue;
    std::vector<uint8_t> Mutant = Valid;
    Mutant[E.MethodOffset] = static_cast<uint8_t>(BackendId::Store);
    expectUnpackAndStatsReject(Mutant, ErrorCode::Corrupt,
                               "compressed stream relabeled store");
  }

  // Relabeling across compressed backends (huffman bytes fed to the
  // zlib or arithmetic decoder and vice versa) cannot promise a
  // specific code — the payload is garbage to the other decoder — but
  // must stay inside the taxonomy.
  for (const StreamEntry &E : Streams) {
    for (unsigned Method = 1; Method < NumBackends; ++Method) {
      if (Method == E.Method)
        continue;
      std::vector<uint8_t> Mutant = Valid;
      Mutant[E.MethodOffset] = static_cast<uint8_t>(Method);
      expectCleanUnpack(Mutant, "backend relabel", E.MethodOffset);
    }
  }
}

// Hostile whole-archive backend codes in the header flags (bits 3..5):
// every reserved value must be Corrupt from all three decode surfaces.
TEST(FaultInjection, HostileArchiveBackendCode) {
  auto V1 = packedArchive(1, RefScheme::MtfTransientsContext);
  auto V3 = packedArchive(3, RefScheme::MtfTransientsContext, true);
  ASSERT_FALSE(V1.empty());
  ASSERT_FALSE(V3.empty());
  for (uint8_t Code = ArchiveBackendMixed + 1;
       Code <= BackendFlagMask; ++Code) {
    std::vector<uint8_t> BadV1 = V1;
    BadV1[6] = static_cast<uint8_t>(
        (BadV1[6] & ~(BackendFlagMask << BackendFlagShift)) |
        (Code << BackendFlagShift));
    expectUnpackAndStatsReject(BadV1, ErrorCode::Corrupt,
                               "reserved archive backend code");

    std::vector<uint8_t> BadV3 = V3;
    BadV3[6] = static_cast<uint8_t>(
        (BadV3[6] & ~(BackendFlagMask << BackendFlagShift)) |
        (Code << BackendFlagShift));
    auto Reader = PackedArchiveReader::open(BadV3, testLimits());
    ASSERT_FALSE(static_cast<bool>(Reader))
        << "reader accepted reserved backend code " << unsigned(Code);
    EXPECT_EQ(Reader.code(), ErrorCode::Corrupt) << Reader.message();
  }
}
