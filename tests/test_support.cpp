//===- test_support.cpp - byte I/O and §6 integer codec tests -------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/BitStream.h"
#include "support/ByteBuffer.h"
#include "support/Error.h"
#include "support/VarInt.h"
#include <gtest/gtest.h>

using namespace cjpack;

TEST(ByteBuffer, BigEndianRoundTrip) {
  ByteWriter W;
  W.writeU1(0xAB);
  W.writeU2(0x1234);
  W.writeU4(0xDEADBEEF);
  W.writeU8(0x0123456789ABCDEFull);
  W.writeString("hello");
  ByteReader R(W.data());
  EXPECT_EQ(R.readU1(), 0xAB);
  EXPECT_EQ(R.readU2(), 0x1234);
  EXPECT_EQ(R.readU4(), 0xDEADBEEFu);
  EXPECT_EQ(R.readU8(), 0x0123456789ABCDEFull);
  EXPECT_EQ(R.readString(5), "hello");
  EXPECT_TRUE(R.atEnd());
  EXPECT_FALSE(R.hasError());
}

TEST(ByteBuffer, BigEndianWireLayout) {
  ByteWriter W;
  W.writeU2(0x0102);
  ASSERT_EQ(W.data().size(), 2u);
  EXPECT_EQ(W.data()[0], 0x01); // classfiles are big-endian
  EXPECT_EQ(W.data()[1], 0x02);
}

TEST(ByteBuffer, OverrunSetsErrorInsteadOfCrashing) {
  std::vector<uint8_t> Two = {1, 2};
  ByteReader R(Two);
  EXPECT_EQ(R.readU4(), 0u);
  EXPECT_TRUE(R.hasError());
  EXPECT_TRUE(static_cast<bool>(R.takeError("test")));
}

TEST(ByteBuffer, PatchU2AndU4) {
  ByteWriter W;
  W.writeU4(0);
  W.writeU2(0);
  W.patchU4(0, 0xCAFEBABE);
  W.patchU2(4, 0x4242);
  ByteReader R(W.data());
  EXPECT_EQ(R.readU4(), 0xCAFEBABEu);
  EXPECT_EQ(R.readU2(), 0x4242);
}

TEST(VarInt, SmallValuesAreOneByte) {
  for (uint64_t V : {0ull, 1ull, 42ull, 127ull}) {
    ByteWriter W;
    writeVarUInt(W, V);
    EXPECT_EQ(W.size(), 1u) << V;
    ByteReader R(W.data());
    EXPECT_EQ(readVarUInt(R), V);
  }
}

TEST(VarInt, RoundTripWideRange) {
  for (uint64_t Shift = 0; Shift < 64; ++Shift) {
    uint64_t V = 1ull << Shift;
    for (uint64_t D : {0ull, 1ull}) {
      ByteWriter W;
      writeVarUInt(W, V - D);
      ByteReader R(W.data());
      EXPECT_EQ(readVarUInt(R), V - D);
    }
  }
}

TEST(VarInt, ZigzagMatchesPaperExample) {
  // §6: {-3,-2,-1,0,1,2,3} encodes as {5,3,1,0,2,4,6}.
  EXPECT_EQ(zigzagEncode(-3), 5u);
  EXPECT_EQ(zigzagEncode(-2), 3u);
  EXPECT_EQ(zigzagEncode(-1), 1u);
  EXPECT_EQ(zigzagEncode(0), 0u);
  EXPECT_EQ(zigzagEncode(1), 2u);
  EXPECT_EQ(zigzagEncode(2), 4u);
  EXPECT_EQ(zigzagEncode(3), 6u);
}

TEST(VarInt, SignedRoundTrip) {
  for (int64_t V : std::initializer_list<int64_t>{
           0, -1, 1, -128, 127, -65536, (1ll << 40), -(1ll << 40),
           INT64_MIN, INT64_MAX}) {
    ByteWriter W;
    writeVarInt(W, V);
    ByteReader R(W.data());
    EXPECT_EQ(readVarInt(R), V) << V;
  }
}

TEST(VarInt, OverlongEncodingIsMalformed) {
  // Eleven continuation groups can never be canonical: the tenth byte
  // must terminate the value.
  std::vector<uint8_t> Overlong(11, 0x80);
  Overlong.push_back(0x00);
  ByteReader R(Overlong);
  (void)readVarUInt(R);
  EXPECT_TRUE(R.hasError());
  Error E = R.takeError("varint");
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_EQ(E.code(), ErrorCode::Corrupt);
}

TEST(VarInt, TenthBytePayloadOverflowIsMalformed) {
  // Nine continuation groups carry 63 bits; the tenth byte may only
  // hold the single remaining bit. 0x02 there would be bit 64.
  std::vector<uint8_t> Overflow(9, 0x80);
  Overflow.push_back(0x02);
  ByteReader R(Overflow);
  (void)readVarUInt(R);
  EXPECT_TRUE(R.hasError());
}

TEST(VarInt, MaxValueDecodesAtTenBytes) {
  // UINT64_MAX is the canonical ten-byte extreme and must round-trip.
  ByteWriter W;
  writeVarUInt(W, UINT64_MAX);
  EXPECT_EQ(W.size(), MaxVarUIntBytes);
  ByteReader R(W.data());
  EXPECT_EQ(readVarUInt(R), UINT64_MAX);
  EXPECT_FALSE(R.hasError());
}

TEST(VarInt, RedundantTrailingGroupIsMalformed) {
  // 0x80 0x00 decodes to zero but the canonical form is plain 0x00;
  // accepting both would give a fuzzer two spellings per value.
  std::vector<uint8_t> Padded = {0x80, 0x00};
  ByteReader R(Padded);
  EXPECT_EQ(readVarUInt(R), 0u);
  EXPECT_TRUE(R.hasError());
}

TEST(VarInt, TruncatedVarIntSetsOverrun) {
  std::vector<uint8_t> Cut = {0xFF, 0xFF};
  ByteReader R(Cut);
  (void)readVarUInt(R);
  EXPECT_TRUE(R.hasError());
  Error E = R.takeError("varint");
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_EQ(E.code(), ErrorCode::Truncated);
}

TEST(Bounded, DecodedValueOutsideRangeIsMalformed) {
  // One-byte form: a byte >= N with no escape patterns in play.
  std::vector<uint8_t> High = {200};
  ByteReader R1(High);
  EXPECT_EQ(readBounded(R1, 100), 0u);
  EXPECT_TRUE(R1.hasError());
  // Two-byte form: an escape whose payload lands past N-1.
  ByteWriter W;
  writeBounded(W, 999, 1000);
  std::vector<uint8_t> Bytes = W.data();
  Bytes[1] = 0xFF; // second byte far beyond the range
  ByteReader R2(Bytes);
  EXPECT_EQ(readBounded(R2, 1000), 0u);
  EXPECT_TRUE(R2.hasError());
}

TEST(Bounded, SingleByteWhenRangeFits) {
  // n <= 256 means no escape patterns and a one-byte encoding.
  EXPECT_EQ(boundedEscapeCount(256), 0u);
  ByteWriter W;
  writeBounded(W, 255, 256);
  EXPECT_EQ(W.size(), 1u);
  ByteReader R(W.data());
  EXPECT_EQ(readBounded(R, 256), 255u);
}

class BoundedRangeTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BoundedRangeTest, RoundTripsWholeRange) {
  uint32_t N = GetParam();
  // Exhaustive for small N, sampled for large.
  uint32_t Step = N > 5000 ? 97 : 1;
  for (uint32_t X = 0; X < N; X += Step) {
    ByteWriter W;
    writeBounded(W, X, N);
    ASSERT_LE(W.size(), 2u);
    ByteReader R(W.data());
    ASSERT_EQ(readBounded(R, N), X) << "N=" << N;
  }
  // Always check the extremes.
  for (uint32_t X : {0u, N - 1}) {
    ByteWriter W;
    writeBounded(W, X, N);
    ByteReader R(W.data());
    ASSERT_EQ(readBounded(R, N), X);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranges, BoundedRangeTest,
                         ::testing::Values(1u, 2u, 255u, 256u, 257u, 300u,
                                           1000u, 4243u, 65535u, 65536u));

TEST(Bounded, SmallValuesStayOneByteInLargeRanges) {
  // The low (256 - r) values keep a one-byte encoding.
  uint32_t N = 1000;
  uint32_t Escapes = boundedEscapeCount(N);
  ASSERT_GT(Escapes, 0u);
  for (uint32_t X = 0; X < 256 - Escapes; ++X) {
    ByteWriter W;
    writeBounded(W, X, N);
    EXPECT_EQ(W.size(), 1u) << X;
  }
}

TEST(BitStream, RoundTrip) {
  BitWriter W;
  std::vector<bool> Bits;
  uint64_t Pattern = 0xA5F00F5Aull;
  for (int I = 0; I < 61; ++I) {
    bool B = (Pattern >> (I % 32)) & 1;
    Bits.push_back(B);
    W.writeBit(B);
  }
  std::vector<uint8_t> Bytes = W.finish();
  BitReader R(Bytes);
  for (bool B : Bits)
    EXPECT_EQ(R.readBit(), B);
  // Reads past the end return zero.
  for (int I = 0; I < 16; ++I)
    (void)R.readBit();
}

TEST(Expected, ValueAndError) {
  Expected<int> Ok(42);
  ASSERT_TRUE(static_cast<bool>(Ok));
  EXPECT_EQ(*Ok, 42);
  Expected<int> Bad(makeError("nope"));
  ASSERT_FALSE(static_cast<bool>(Bad));
  EXPECT_EQ(Bad.message(), "nope");
  Error E = Bad.takeError();
  EXPECT_TRUE(static_cast<bool>(E));
}
