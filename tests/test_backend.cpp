//===- test_backend.cpp - pluggable compression backend harness -----------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The differential gate for the backend registry: every registered
// backend must round-trip byte-identical classfiles across corpus
// styles, shard counts, and wire-format families, restoring exactly
// what the default zlib pipeline restores, and statPackedArchive's
// per-backend accounting must preserve the sum identity. Plus property
// tests for the from-scratch canonical Huffman codec (random
// distributions, determinism, strict decoder taxonomy) and the
// arithmetic byte codec.
//
//===----------------------------------------------------------------------===//

#include "classfile/Writer.h"
#include "coder/Arithmetic.h"
#include "coder/Huffman.h"
#include "corpus/Corpus.h"
#include "pack/ArchiveReader.h"
#include "pack/Backend.h"
#include "pack/Packer.h"
#include "pack/Stats.h"
#include <gtest/gtest.h>
#include <random>

using namespace cjpack;

namespace {

std::vector<NamedClass> corpusFor(CodeStyle Style) {
  CorpusSpec Spec;
  Spec.Name = "backend";
  Spec.Seed = 4242;
  Spec.NumClasses = 24;
  Spec.NumPackages = 3;
  Spec.MeanMethods = 5;
  Spec.MeanStatements = 8;
  Spec.Code = Style;
  return generateCorpus(Spec);
}

/// Unpacks an archive of any version into named classfile bytes.
std::vector<NamedClass> restoreAll(const std::vector<uint8_t> &Archive) {
  std::vector<NamedClass> Out;
  if (Archive.size() > 4 && Archive[4] == FormatVersionIndexed) {
    auto Reader = PackedArchiveReader::open(Archive);
    EXPECT_TRUE(static_cast<bool>(Reader)) << Reader.message();
    if (!Reader)
      return Out;
    auto Classes = Reader->unpackAll();
    EXPECT_TRUE(static_cast<bool>(Classes)) << Classes.message();
    if (!Classes)
      return Out;
    for (const ClassFile &CF : *Classes)
      Out.push_back(
          {std::string(CF.thisClassName()) + ".class", writeClassFile(CF)});
    return Out;
  }
  auto Classes = unpackArchive(Archive, 2u);
  EXPECT_TRUE(static_cast<bool>(Classes)) << Classes.message();
  if (Classes)
    Out = std::move(*Classes);
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TEST(BackendRegistry, WireIdsAndNames) {
  ASSERT_EQ(allBackends().size(), NumBackends);
  for (unsigned I = 0; I < NumBackends; ++I) {
    const CompressionBackend &B = allBackends()[I];
    EXPECT_EQ(static_cast<unsigned>(B.Id), I)
        << "registry must be indexed by wire id";
    EXPECT_STREQ(B.Name, backendName(B.Id));
    EXPECT_EQ(findBackend(static_cast<uint8_t>(I)), &B);
    EXPECT_EQ(findBackendByName(B.Name), &B);
  }
  EXPECT_EQ(findBackend(NumBackends), nullptr);
  EXPECT_EQ(findBackend(0xFF), nullptr);
  EXPECT_EQ(findBackendByName("deflate64"), nullptr);
  EXPECT_EQ(findBackendByName(""), nullptr);
}

TEST(BackendRegistry, ArchiveHeaderCodes) {
  // Zlib maps to header code 0 so default archives keep their
  // historical flag byte; every uniform code names itself.
  EXPECT_EQ(archiveBackendCode(BackendId::Zlib), 0);
  EXPECT_STREQ(archiveBackendCodeName(0), "zlib");
  EXPECT_STREQ(archiveBackendCodeName(archiveBackendCode(BackendId::Store)),
               "store");
  EXPECT_STREQ(
      archiveBackendCodeName(archiveBackendCode(BackendId::Huffman)),
      "huffman");
  EXPECT_STREQ(archiveBackendCodeName(archiveBackendCode(BackendId::Arith)),
               "arith");
  EXPECT_STREQ(archiveBackendCodeName(ArchiveBackendMixed), "mixed");
}

TEST(BackendRegistry, EveryBackendRoundTripsBytes) {
  std::mt19937 Rng(99);
  std::vector<std::vector<uint8_t>> Samples;
  Samples.push_back({});
  Samples.push_back({0x42});
  Samples.push_back(std::vector<uint8_t>(300, 0x7F));
  {
    std::vector<uint8_t> Text;
    for (unsigned I = 0; I < 2000; ++I)
      Text.push_back("the quick brown fox "[I % 20]);
    Samples.push_back(std::move(Text));
    std::vector<uint8_t> Noise(1000);
    for (uint8_t &B : Noise)
      B = static_cast<uint8_t>(Rng());
    Samples.push_back(std::move(Noise));
  }
  for (const CompressionBackend &B : allBackends()) {
    for (const std::vector<uint8_t> &Raw : Samples) {
      std::vector<uint8_t> Stored = B.Compress(Raw);
      auto Back = B.Decompress(Stored, Raw.size());
      ASSERT_TRUE(static_cast<bool>(Back))
          << B.Name << " size " << Raw.size() << ": " << Back.message();
      EXPECT_EQ(*Back, Raw) << B.Name << " size " << Raw.size();
    }
  }
}

//===----------------------------------------------------------------------===//
// Differential round-trip matrix
//===----------------------------------------------------------------------===//

class BackendMatrix
    : public ::testing::TestWithParam<std::tuple<CodeStyle, unsigned, bool>> {
};

TEST_P(BackendMatrix, RoundTripsIdenticallyAcrossBackends) {
  auto [Style, Shards, Indexed] = GetParam();
  auto Classes = corpusFor(Style);

  // The default pipeline's restore is the reference every backend must
  // reproduce byte-for-byte.
  PackOptions Default;
  Default.Shards = Shards;
  Default.Threads = 2;
  Default.RandomAccessIndex = Indexed;
  auto Reference = packClassBytes(Classes, Default);
  ASSERT_TRUE(static_cast<bool>(Reference)) << Reference.message();
  std::vector<NamedClass> Want = restoreAll(Reference->Archive);
  ASSERT_EQ(Want.size(), Classes.size());

  for (const CompressionBackend &B : allBackends()) {
    PackOptions Options = Default;
    Options.Backend = B.Id;
    auto Packed = packClassBytes(Classes, Options);
    ASSERT_TRUE(static_cast<bool>(Packed))
        << B.Name << ": " << Packed.message();

    // The header advertises the uniform backend (zlib archives keep
    // the historical code 0 — checked implicitly by the stats decode).
    auto Stats = statPackedArchive(Packed->Archive);
    ASSERT_TRUE(static_cast<bool>(Stats))
        << B.Name << ": " << Stats.message();
    EXPECT_EQ(Stats->BackendCode, archiveBackendCode(B.Id)) << B.Name;

    // Sum identities: framing + streams == archive, and the per-backend
    // split covers every packed stream byte.
    EXPECT_EQ(Stats->HeaderBytes + Stats->IndexBytes +
                  Stats->DictionaryBytes + Stats->Sizes.totalPacked(),
              Packed->Archive.size())
        << B.Name;
    size_t BackendSum = 0;
    for (unsigned K = 0; K < NumBackends; ++K)
      BackendSum += Stats->BackendPacked[K];
    EXPECT_EQ(BackendSum, Stats->Sizes.totalPacked()) << B.Name;
    // A uniform non-store plan may still store streams that refuse to
    // shrink, but it must never use a third backend.
    for (unsigned K = 0; K < NumBackends; ++K) {
      if (K != static_cast<unsigned>(B.Id) &&
          K != static_cast<unsigned>(BackendId::Store)) {
        EXPECT_EQ(Stats->BackendStreams[K], 0u)
            << B.Name << " unexpectedly used "
            << backendName(static_cast<BackendId>(K));
      }
    }

    std::vector<NamedClass> Got = restoreAll(Packed->Archive);
    ASSERT_EQ(Got.size(), Want.size()) << B.Name;
    for (size_t I = 0; I < Want.size(); ++I) {
      EXPECT_EQ(Got[I].Name, Want[I].Name) << B.Name << " #" << I;
      EXPECT_EQ(Got[I].Data, Want[I].Data) << B.Name << " " << Got[I].Name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, BackendMatrix,
    ::testing::Combine(::testing::Values(CodeStyle::Balanced,
                                         CodeStyle::Numeric,
                                         CodeStyle::StringHeavy),
                       ::testing::Values(1u, 4u),
                       ::testing::Bool()));

TEST(BackendMatrix, MixedPerStreamPlanRoundTrips) {
  auto Classes = corpusFor(CodeStyle::Balanced);
  PackOptions Default;
  Default.Shards = 4;
  Default.Threads = 2;
  auto Reference = packClassBytes(Classes, Default);
  ASSERT_TRUE(static_cast<bool>(Reference)) << Reference.message();
  std::vector<NamedClass> Want = restoreAll(Reference->Archive);

  // A deliberately motley plan: every backend appears.
  std::array<BackendId, NumStreams> Plan;
  for (unsigned I = 0; I < NumStreams; ++I)
    Plan[I] = static_cast<BackendId>(I % NumBackends);
  for (bool Indexed : {false, true}) {
    PackOptions Options = Default;
    Options.RandomAccessIndex = Indexed;
    Options.StreamBackends = Plan;
    auto Packed = packClassBytes(Classes, Options);
    ASSERT_TRUE(static_cast<bool>(Packed)) << Packed.message();

    auto Stats = statPackedArchive(Packed->Archive);
    ASSERT_TRUE(static_cast<bool>(Stats)) << Stats.message();
    EXPECT_EQ(Stats->BackendCode, ArchiveBackendMixed);
    size_t BackendSum = 0;
    for (unsigned K = 0; K < NumBackends; ++K)
      BackendSum += Stats->BackendPacked[K];
    EXPECT_EQ(BackendSum, Stats->Sizes.totalPacked());

    std::vector<NamedClass> Got = restoreAll(Packed->Archive);
    ASSERT_EQ(Got.size(), Want.size());
    for (size_t I = 0; I < Want.size(); ++I)
      EXPECT_EQ(Got[I].Data, Want[I].Data) << Got[I].Name;
  }
}

TEST(BackendMatrix, UncompressedOptionOverridesBackend) {
  // CompressStreams=false must force all-store no matter the backend
  // knob — it reproduces the paper's "not gzip'd" rows.
  auto Classes = corpusFor(CodeStyle::Balanced);
  PackOptions Raw;
  Raw.CompressStreams = false;
  PackOptions RawHuffman = Raw;
  RawHuffman.Backend = BackendId::Huffman;
  auto A = packClassBytes(Classes, Raw);
  auto B = packClassBytes(Classes, RawHuffman);
  ASSERT_TRUE(A && B);
  EXPECT_EQ(A->Archive, B->Archive);
}

//===----------------------------------------------------------------------===//
// Canonical Huffman property tests
//===----------------------------------------------------------------------===//

namespace {

/// Encode→decode identity plus determinism for one input.
void expectHuffmanRoundTrip(const std::vector<uint8_t> &Raw) {
  std::vector<uint8_t> Stored = huffmanCompress(Raw);
  std::vector<uint8_t> Again = huffmanCompress(Raw);
  EXPECT_EQ(Stored, Again) << "encoder must be deterministic";
  auto Back = huffmanDecompress(Stored, Raw.size());
  ASSERT_TRUE(static_cast<bool>(Back)) << Back.message();
  EXPECT_EQ(*Back, Raw);
}

} // namespace

TEST(Huffman, RandomDistributions) {
  std::mt19937 Rng(7);
  // Skewed: geometric-ish byte distribution, the shape MTF leaves.
  for (unsigned Round = 0; Round < 8; ++Round) {
    std::geometric_distribution<int> Skew(0.05 + 0.1 * Round);
    std::vector<uint8_t> Raw(1 + Rng() % 5000);
    for (uint8_t &B : Raw)
      B = static_cast<uint8_t>(std::min(Skew(Rng), 255));
    expectHuffmanRoundTrip(Raw);
  }
  // Uniform: all 256 symbols roughly equally likely (incompressible;
  // the stream layer would store it, but the codec must still be
  // lossless).
  for (unsigned Round = 0; Round < 4; ++Round) {
    std::vector<uint8_t> Raw(1 + Rng() % 3000);
    for (uint8_t &B : Raw)
      B = static_cast<uint8_t>(Rng());
    expectHuffmanRoundTrip(Raw);
  }
}

TEST(Huffman, DegenerateInputs) {
  expectHuffmanRoundTrip({});
  expectHuffmanRoundTrip({0});
  expectHuffmanRoundTrip({255});
  expectHuffmanRoundTrip(std::vector<uint8_t>(1, 7));
  expectHuffmanRoundTrip(std::vector<uint8_t>(100000, 7)); // one symbol
  expectHuffmanRoundTrip({1, 2});                          // two symbols
  std::vector<uint8_t> AllBytes(256);
  for (unsigned I = 0; I < 256; ++I)
    AllBytes[I] = static_cast<uint8_t>(I);
  expectHuffmanRoundTrip(AllBytes); // every symbol exactly once
}

TEST(Huffman, CodeLengthsAreDeterministicAndValid) {
  std::mt19937 Rng(11);
  for (unsigned Round = 0; Round < 32; ++Round) {
    std::array<uint64_t, 256> Freq{};
    unsigned Distinct = 2 + Rng() % 254;
    for (unsigned I = 0; I < Distinct; ++I)
      Freq[Rng() % 256] += 1 + Rng() % 100000;
    std::array<uint8_t, 256> A = huffmanCodeLengths(Freq);
    std::array<uint8_t, 256> B = huffmanCodeLengths(Freq);
    EXPECT_EQ(A, B) << "lengths must be a pure function of the histogram";
    // Kraft sum exactly one over the used symbols: a complete prefix
    // code with no length beyond the cap.
    uint64_t Kraft = 0;
    for (unsigned Sym = 0; Sym < 256; ++Sym) {
      if (Freq[Sym] == 0) {
        EXPECT_EQ(A[Sym], 0u) << Sym;
        continue;
      }
      ASSERT_GE(A[Sym], 1u) << Sym;
      ASSERT_LE(A[Sym], MaxHuffmanCodeLen) << Sym;
      Kraft += 1ull << (MaxHuffmanCodeLen - A[Sym]);
    }
    EXPECT_EQ(Kraft, 1ull << MaxHuffmanCodeLen);
    // More frequent symbols never get longer codes.
    for (unsigned X = 0; X < 256; ++X)
      for (unsigned Y = 0; Y < 256; ++Y)
        if (Freq[X] != 0 && Freq[Y] != 0 && Freq[X] > Freq[Y]) {
          EXPECT_LE(A[X], A[Y]) << X << " vs " << Y;
        }
  }
}

TEST(Huffman, LengthLimitKicksInOnExtremeSkew) {
  // Fibonacci-like weights force unlimited Huffman depths past 15; the
  // codec must fold them under the cap and still round-trip.
  std::array<uint64_t, 256> Freq{};
  uint64_t A = 1, B = 1;
  for (unsigned I = 0; I < 40; ++I) {
    Freq[I] = A;
    uint64_t Next = A + B;
    A = B;
    B = Next;
  }
  std::array<uint8_t, 256> Lengths = huffmanCodeLengths(Freq);
  unsigned MaxLen = 0;
  for (unsigned I = 0; I < 40; ++I)
    MaxLen = std::max<unsigned>(MaxLen, Lengths[I]);
  EXPECT_EQ(MaxLen, MaxHuffmanCodeLen);

  std::vector<uint8_t> Raw;
  for (unsigned I = 0; I < 40; ++I)
    Raw.insert(Raw.end(), static_cast<size_t>(std::min<uint64_t>(
                              Freq[I], 3000)),
               static_cast<uint8_t>(I));
  expectHuffmanRoundTrip(Raw);
}

TEST(Huffman, DecoderRejectsHostileBlobs) {
  std::vector<uint8_t> Raw(500);
  for (size_t I = 0; I < Raw.size(); ++I)
    Raw[I] = static_cast<uint8_t>(I % 7);
  std::vector<uint8_t> Stored = huffmanCompress(Raw);

  // Truncation anywhere is Truncated (or, once the final byte's
  // padding is gone mid-table, Corrupt) — never success, never a crash.
  for (size_t Len = 0; Len < Stored.size(); ++Len) {
    std::vector<uint8_t> Cut(Stored.begin(), Stored.begin() + Len);
    auto R = huffmanDecompress(Cut, Raw.size());
    ASSERT_FALSE(static_cast<bool>(R)) << Len;
    EXPECT_NE(R.code(), ErrorCode::Other) << Len;
  }

  // A blob declaring more than the container promised is LimitExceeded.
  auto Lying = huffmanDecompress(Stored, Raw.size() - 1);
  ASSERT_FALSE(static_cast<bool>(Lying));
  EXPECT_EQ(Lying.code(), ErrorCode::LimitExceeded);

  // Trailing bytes after the bit stream are Corrupt.
  std::vector<uint8_t> Padded = Stored;
  Padded.push_back(0);
  auto Trailing = huffmanDecompress(Padded, Raw.size());
  ASSERT_FALSE(static_cast<bool>(Trailing));
  EXPECT_EQ(Trailing.code(), ErrorCode::Corrupt);

  // An incomplete code-length table (Kraft sum below one) is Corrupt.
  std::vector<uint8_t> BadTable = Stored;
  // varint RawLen occupies 2 bytes for 500; kind byte next; table after.
  size_t TableAt = 3;
  BadTable[TableAt] = 0x01; // symbol 0: length 1, symbol 1: length 0 ...
  for (size_t I = 1; I < 128; ++I)
    BadTable[TableAt + I] = 0;
  auto Incomplete = huffmanDecompress(BadTable, Raw.size());
  ASSERT_FALSE(static_cast<bool>(Incomplete));
  EXPECT_EQ(Incomplete.code(), ErrorCode::Corrupt);

  // An unknown blob kind is Corrupt.
  std::vector<uint8_t> BadKind = Stored;
  BadKind[2] = 9;
  auto Unknown = huffmanDecompress(BadKind, Raw.size());
  ASSERT_FALSE(static_cast<bool>(Unknown));
  EXPECT_EQ(Unknown.code(), ErrorCode::Corrupt);

  // Random bit flips decode to the right length or fail typed.
  std::mt19937 Rng(23);
  for (unsigned Round = 0; Round < 500; ++Round) {
    std::vector<uint8_t> Mutant = Stored;
    Mutant[Rng() % Mutant.size()] ^= 1u << (Rng() % 8);
    auto R = huffmanDecompress(Mutant, Raw.size());
    if (R)
      EXPECT_EQ(R->size(), Raw.size());
    else
      EXPECT_NE(R.code(), ErrorCode::Other);
  }
}

//===----------------------------------------------------------------------===//
// Arithmetic byte codec
//===----------------------------------------------------------------------===//

TEST(ArithBytes, RoundTripsAndRejectsLies) {
  std::mt19937 Rng(31);
  for (size_t Size : {0u, 1u, 2u, 100u, 5000u}) {
    std::vector<uint8_t> Raw(Size);
    for (uint8_t &B : Raw)
      B = static_cast<uint8_t>(Rng() % 17);
    std::vector<uint8_t> Stored = arithCompressBytes(Raw);
    EXPECT_EQ(arithCompressBytes(Raw), Stored);
    auto Back = arithDecompressBytes(Stored, Raw.size());
    ASSERT_TRUE(static_cast<bool>(Back)) << Back.message();
    EXPECT_EQ(*Back, Raw);
    // The cap is max(DeclaredRaw, 1) — the zlib wrapper's historical
    // floor — so a one-byte lie is only detectable above two bytes.
    if (Raw.size() >= 2) {
      auto Lying = arithDecompressBytes(Stored, Raw.size() - 1);
      ASSERT_FALSE(static_cast<bool>(Lying));
      EXPECT_EQ(Lying.code(), ErrorCode::LimitExceeded);
    }
  }
  // An empty blob is Truncated, not a crash.
  auto Empty = arithDecompressBytes({}, 10);
  ASSERT_FALSE(static_cast<bool>(Empty));
  EXPECT_EQ(Empty.code(), ErrorCode::Truncated);
}
