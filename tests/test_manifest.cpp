//===- test_manifest.cpp - SHA-1, manifests, §12 signing ------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "classfile/Transform.h"
#include "corpus/Corpus.h"
#include "pack/Packer.h"
#include "support/Sha1.h"
#include "zip/Manifest.h"
#include <gtest/gtest.h>

using namespace cjpack;

namespace {

std::vector<uint8_t> bytesOf(const std::string &S) {
  return std::vector<uint8_t>(S.begin(), S.end());
}

} // namespace

TEST(Sha1, Fips180TestVectors) {
  // The canonical FIPS 180-1 vectors.
  EXPECT_EQ(sha1Hex(bytesOf("abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(sha1Hex(bytesOf(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
  EXPECT_EQ(sha1Hex(bytesOf("")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, MillionAs) {
  Sha1 S;
  std::vector<uint8_t> Chunk(1000, 'a');
  for (int I = 0; I < 1000; ++I)
    S.update(Chunk);
  auto Digest = S.finish();
  static const char *Hex = "0123456789abcdef";
  std::string Out;
  for (uint8_t B : Digest) {
    Out.push_back(Hex[B >> 4]);
    Out.push_back(Hex[B & 0xF]);
  }
  EXPECT_EQ(Out, "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  std::vector<uint8_t> Data = bytesOf("the quick brown fox jumps over "
                                      "the lazy dog, repeatedly");
  Sha1 S;
  for (uint8_t B : Data)
    S.update(&B, 1);
  EXPECT_EQ(S.finish(), sha1Of(Data));
}

TEST(Manifest, BuildWriteParseRoundTrip) {
  std::vector<NamedClass> Classes = {
      {"a/B.class", bytesOf("hello")},
      {"c/D.class", bytesOf("world")},
  };
  Manifest M = buildManifest(Classes);
  ASSERT_EQ(M.Entries.size(), 2u);
  std::string Text = writeManifest(M);
  auto Back = parseManifest(Text);
  ASSERT_TRUE(static_cast<bool>(Back)) << Back.message();
  EXPECT_EQ(Back->Version, "1.0");
  ASSERT_EQ(Back->Entries.size(), 2u);
  EXPECT_EQ(Back->Entries[0].Name, "a/B.class");
  EXPECT_EQ(Back->Entries[0].Sha1Digest, sha1Hex(bytesOf("hello")));
}

TEST(Manifest, VerifyDetectsTampering) {
  std::vector<NamedClass> Classes = {{"a/B.class", bytesOf("payload")}};
  Manifest M = buildManifest(Classes);
  EXPECT_TRUE(verifyManifest(M, Classes));
  Classes[0].Data[0] ^= 1;
  EXPECT_FALSE(verifyManifest(M, Classes));
  // A class absent from the manifest also fails.
  std::vector<NamedClass> Extra = {{"x/Y.class", bytesOf("new")}};
  EXPECT_FALSE(verifyManifest(M, Extra));
}

TEST(Manifest, ParseToleratesCrLfAndUnknownAttributes) {
  std::string Text = "Manifest-Version: 1.0\r\n"
                     "Created-By: cjpack test\r\n\r\n"
                     "Name: p/Q.class\r\n"
                     "SHA1-Digest: 0123\r\n\r\n";
  auto M = parseManifest(Text);
  ASSERT_TRUE(static_cast<bool>(M)) << M.message();
  ASSERT_EQ(M->Entries.size(), 1u);
  EXPECT_EQ(M->Entries[0].Name, "p/Q.class");
}

TEST(Manifest, ParseRejectsMalformed) {
  EXPECT_FALSE(static_cast<bool>(parseManifest("no colon here\n")));
  EXPECT_FALSE(
      static_cast<bool>(parseManifest("SHA1-Digest: orphaned\n")));
}

TEST(Signing, Section12WorkflowEndToEnd) {
  // Sender: pack, then immediately decompress and sign the result.
  CorpusSpec Spec;
  Spec.Name = "signing";
  Spec.Seed = 99;
  Spec.NumClasses = 12;
  Spec.NumPackages = 2;
  std::vector<NamedClass> Raw = generateCorpus(Spec);
  auto Packed = packClassBytes(Raw, PackOptions());
  ASSERT_TRUE(static_cast<bool>(Packed));
  auto SenderManifest = manifestForPackedArchive(Packed->Archive);
  ASSERT_TRUE(static_cast<bool>(SenderManifest))
      << SenderManifest.message();

  // The manifest travels as text next to the packed archive.
  std::string Wire = writeManifest(*SenderManifest);

  // Receiver: decompress and verify against the shipped manifest.
  auto Received = parseManifest(Wire);
  ASSERT_TRUE(static_cast<bool>(Received));
  auto Restored = unpackArchive(Packed->Archive);
  ASSERT_TRUE(static_cast<bool>(Restored));
  EXPECT_TRUE(verifyManifest(*Received, *Restored))
      << "deterministic decompression must reproduce signed bytes";

  // A signature over the ORIGINAL (pre-pack) classfiles would NOT
  // verify — packing renumbers constant pools (the problem §12 solves).
  Manifest Original = buildManifest(Raw);
  EXPECT_FALSE(verifyManifest(Original, *Restored));
}
