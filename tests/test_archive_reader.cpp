//===- test_archive_reader.cpp - lazy v3 reader behavior ------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The PackedArchiveReader contract: correctness (every lazily decoded
// class is byte-identical to the whole-archive decoder's output),
// laziness (single-class access inflates strictly less than a full
// unpack, measured through the shared DecodeBudget), caching (a second
// class from a decoded shard costs no new inflate), and the mmap path
// (InputFile end-to-end through a real file).
//
//===----------------------------------------------------------------------===//

#include "classfile/Writer.h"
#include "corpus/Corpus.h"
#include "pack/ArchiveReader.h"
#include "pack/Packer.h"
#include "pack/Stats.h"
#include "support/InputFile.h"
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <gtest/gtest.h>
#include <map>
#include <random>
#include <thread>

using namespace cjpack;

namespace {

std::vector<NamedClass> readerCorpus() {
  CorpusSpec Spec;
  Spec.Name = "reader";
  Spec.Seed = 97;
  Spec.NumClasses = 32;
  Spec.NumPackages = 3;
  Spec.MeanMethods = 5;
  Spec.MeanStatements = 8;
  return generateCorpus(Spec);
}

Expected<PackResult> packIndexed(const std::vector<NamedClass> &Classes,
                                 unsigned Shards, bool Compress = true) {
  PackOptions Options;
  Options.Shards = Shards;
  Options.Threads = 2;
  Options.CompressStreams = Compress;
  Options.RandomAccessIndex = true;
  return packClassBytes(Classes, Options);
}

} // namespace

TEST(ArchiveReader, EveryClassMatchesFullDecoder) {
  auto Classes = readerCorpus();
  auto Packed = packIndexed(Classes, 4);
  ASSERT_TRUE(static_cast<bool>(Packed)) << Packed.message();

  // Reference decode: the same input through the v2 pipeline.
  PackOptions V2;
  V2.Shards = 4;
  V2.Threads = 2;
  auto P2 = packClassBytes(Classes, V2);
  ASSERT_TRUE(static_cast<bool>(P2));
  auto Reference = unpackClasses(P2->Archive, 2u);
  ASSERT_TRUE(static_cast<bool>(Reference));

  auto Reader = PackedArchiveReader::open(Packed->Archive);
  ASSERT_TRUE(static_cast<bool>(Reader)) << Reader.message();
  ASSERT_EQ(Reader->classCount(), Classes.size());
  ASSERT_EQ(Reader->shardCount(), 4u);

  // unpackClass for every name, against the full decoder in archive
  // order; both pipelines share the §11 eager layout, so positions
  // agree.
  auto Names = Reader->classNames();
  ASSERT_EQ(Names.size(), Reference->size());
  for (size_t I = 0; I < Names.size(); ++I) {
    auto CF = Reader->unpackClass(Names[I]);
    ASSERT_TRUE(static_cast<bool>(CF)) << Names[I] << ": " << CF.message();
    EXPECT_EQ(CF->thisClassName(), Names[I]);
    EXPECT_EQ(writeClassFile(*CF), writeClassFile((*Reference)[I]))
        << Names[I];
  }

  // unpackAll matches too, reusing the now-decoded shards.
  auto All = Reader->unpackAll();
  ASSERT_TRUE(static_cast<bool>(All));
  ASSERT_EQ(All->size(), Reference->size());
  for (size_t I = 0; I < All->size(); ++I)
    EXPECT_EQ(writeClassFile((*All)[I]),
              writeClassFile((*Reference)[I]));
}

// The acceptance property of the whole feature: on a multi-shard
// compressed archive, fetching one class inflates strictly fewer bytes
// than a full unpack, as accounted by the DecodeBudget.
TEST(ArchiveReader, SingleClassInflatesStrictlyLess) {
  auto Classes = readerCorpus();
  auto Packed = packIndexed(Classes, 4, /*Compress=*/true);
  ASSERT_TRUE(static_cast<bool>(Packed)) << Packed.message();

  uint64_t FullInflate = 0;
  {
    auto Reader = PackedArchiveReader::open(Packed->Archive);
    ASSERT_TRUE(static_cast<bool>(Reader));
    ASSERT_TRUE(static_cast<bool>(Reader->unpackAll()));
    FullInflate = Reader->inflatedBytes();
  }
  ASSERT_GT(FullInflate, 0u);

  auto Reader = PackedArchiveReader::open(Packed->Archive);
  ASSERT_TRUE(static_cast<bool>(Reader));
  uint64_t AfterOpen = Reader->inflatedBytes();
  auto Names = Reader->classNames();
  auto CF = Reader->unpackClass(Names[Names.size() / 2]);
  ASSERT_TRUE(static_cast<bool>(CF)) << CF.message();
  uint64_t AfterOne = Reader->inflatedBytes();
  // Opening inflates at most the dictionary, and the one-class fetch
  // adds exactly one shard's streams — strictly less than all four.
  EXPECT_LT(AfterOpen, AfterOne);
  EXPECT_LT(AfterOne, FullInflate);
}

TEST(ArchiveReader, DecodedShardIsCached) {
  auto Classes = readerCorpus();
  auto Packed = packIndexed(Classes, 2);
  ASSERT_TRUE(static_cast<bool>(Packed));
  auto Reader = PackedArchiveReader::open(Packed->Archive);
  ASSERT_TRUE(static_cast<bool>(Reader));

  // Decode the last class of shard 0, then earlier ones: the prefix is
  // already decoded and the blob already inflated, so the budget must
  // not move.
  const ArchiveIndex &Index = Reader->index();
  std::vector<std::string> Shard0;
  for (const auto &E : Index.Classes)
    if (E.Shard == 0)
      Shard0.push_back(E.Name);
  ASSERT_GE(Shard0.size(), 2u);
  ASSERT_TRUE(static_cast<bool>(Reader->unpackClass(Shard0.back())));
  uint64_t Spent = Reader->inflatedBytes();
  for (const std::string &Name : Shard0)
    ASSERT_TRUE(static_cast<bool>(Reader->unpackClass(Name)));
  EXPECT_EQ(Reader->inflatedBytes(), Spent);
}

TEST(ArchiveReader, SingleShardAndUnknownName) {
  auto Classes = readerCorpus();
  auto Packed = packIndexed(Classes, 1);
  ASSERT_TRUE(static_cast<bool>(Packed));
  EXPECT_EQ(Packed->Archive[4], FormatVersionIndexed);
  auto Reader = PackedArchiveReader::open(Packed->Archive);
  ASSERT_TRUE(static_cast<bool>(Reader)) << Reader.message();
  EXPECT_EQ(Reader->shardCount(), 1u);
  auto All = Reader->unpackAll();
  ASSERT_TRUE(static_cast<bool>(All));
  EXPECT_EQ(All->size(), Classes.size());
  EXPECT_FALSE(static_cast<bool>(Reader->unpackClass("no/such/Class")));
}

TEST(ArchiveReader, StatsSumIdentityForIndexed) {
  auto Classes = readerCorpus();
  for (unsigned Shards : {1u, 4u}) {
    auto Packed = packIndexed(Classes, Shards);
    ASSERT_TRUE(static_cast<bool>(Packed));
    auto Stats = statPackedArchive(Packed->Archive);
    ASSERT_TRUE(static_cast<bool>(Stats)) << Stats.message();
    EXPECT_EQ(Stats->Version, FormatVersionIndexed);
    EXPECT_EQ(Stats->Shards, Shards);
    EXPECT_EQ(Stats->IndexedClasses, Classes.size());
    EXPECT_EQ(Stats->IndexBytes, Packed->IndexBytes);
    EXPECT_GT(Stats->IndexBytes, 0u);
    // Every archive byte is accounted for: header + index + dictionary
    // + per-stream packed == archive size.
    EXPECT_EQ(Stats->HeaderBytes + Stats->IndexBytes +
                  Stats->DictionaryBytes + Stats->Sizes.totalPacked(),
              Packed->Archive.size());
  }
}

TEST(ArchiveReader, DuplicateClassNamesRejectedAtPack) {
  auto Classes = readerCorpus();
  Classes.push_back(Classes.front());
  auto Packed = packIndexed(Classes, 2);
  EXPECT_FALSE(static_cast<bool>(Packed));
  // Without the index the same input still packs (v1/v2 archives are
  // positional, not name-addressed).
  PackOptions V2;
  V2.Shards = 2;
  EXPECT_TRUE(static_cast<bool>(packClassBytes(Classes, V2)));
}

TEST(ArchiveReader, MemoryMappedFileEndToEnd) {
  auto Classes = readerCorpus();
  auto Packed = packIndexed(Classes, 4);
  ASSERT_TRUE(static_cast<bool>(Packed));

  std::string Path =
      ::testing::TempDir() + "cjpack_reader_test.cjp";
  {
    FILE *F = fopen(Path.c_str(), "wb");
    ASSERT_NE(F, nullptr);
    ASSERT_EQ(fwrite(Packed->Archive.data(), 1, Packed->Archive.size(), F),
              Packed->Archive.size());
    fclose(F);
  }

  auto File = InputFile::open(Path);
  ASSERT_TRUE(static_cast<bool>(File)) << File.message();
  ASSERT_EQ(File->size(), Packed->Archive.size());
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_TRUE(File->isMapped());
#endif
  auto Reader = PackedArchiveReader::open(File->data(), File->size());
  ASSERT_TRUE(static_cast<bool>(Reader)) << Reader.message();
  auto Names = Reader->classNames();
  ASSERT_FALSE(Names.empty());
  auto CF = Reader->unpackClass(Names.front());
  ASSERT_TRUE(static_cast<bool>(CF)) << CF.message();
  EXPECT_EQ(CF->thisClassName(), Names.front());
  remove(Path.c_str());

  EXPECT_FALSE(static_cast<bool>(InputFile::open(Path + ".missing")));
}

// The thread-safety contract: many threads hammering one shared reader
// (all classes, shuffled per thread) must each see exactly the bytes
// the whole-archive decoder produces, with no torn shard state. Run
// under TSan in CI, this is the proof behind sharing hot readers
// across cjpackd request threads.
TEST(ArchiveReader, ConcurrentUnpackOverSharedReader) {
  auto Classes = readerCorpus();
  auto Packed = packIndexed(Classes, 4);
  ASSERT_TRUE(static_cast<bool>(Packed)) << Packed.message();

  auto Reader = PackedArchiveReader::open(Packed->Archive);
  ASSERT_TRUE(static_cast<bool>(Reader)) << Reader.message();
  std::vector<std::string> Names = Reader->classNames();
  ASSERT_EQ(Names.size(), Classes.size());

  // Reference bytes from a fresh, serial reader.
  std::map<std::string, std::vector<uint8_t>> Want;
  {
    auto Ref = PackedArchiveReader::open(Packed->Archive);
    ASSERT_TRUE(static_cast<bool>(Ref));
    for (const std::string &N : Names) {
      auto CF = Ref->unpackClass(N);
      ASSERT_TRUE(static_cast<bool>(CF)) << CF.message();
      Want[N] = writeClassFile(*CF);
    }
  }

  constexpr unsigned NumThreads = 8;
  std::atomic<unsigned> Mismatches{0};
  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      // A different traversal order per thread, so threads contend on
      // different shards at different times.
      std::vector<std::string> Order = Names;
      std::mt19937 Rng(1234 + T);
      std::shuffle(Order.begin(), Order.end(), Rng);
      for (const std::string &N : Order) {
        auto CF = Reader->unpackClass(N);
        if (!CF) {
          Failures.fetch_add(1);
          continue;
        }
        if (writeClassFile(*CF) != Want[N])
          Mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0u);
  EXPECT_EQ(Mismatches.load(), 0u);
}
