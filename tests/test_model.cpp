//===- test_model.cpp - restructured model (Fig. 1) tests -----------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "pack/ClassOrder.h"
#include "pack/Model.h"
#include "pack/Preload.h"
#include <gtest/gtest.h>
#include <set>

using namespace cjpack;

TEST(Model, SplitClassName) {
  std::string Pkg, Simple;
  splitClassName("java/lang/String", Pkg, Simple);
  EXPECT_EQ(Pkg, "java/lang");
  EXPECT_EQ(Simple, "String");
  splitClassName("TopLevel", Pkg, Simple);
  EXPECT_EQ(Pkg, "");
  EXPECT_EQ(Simple, "TopLevel");
}

TEST(Model, InterningIsIdempotent) {
  Model M;
  uint32_t A = M.internPackage("java/util");
  EXPECT_EQ(M.internPackage("java/util"), A);
  uint32_t B = M.internPackage("java/io");
  EXPECT_NE(A, B);
  EXPECT_EQ(M.package(A), "java/util");
}

TEST(Model, PackagesAndSimpleNamesAreShared) {
  // The §3 factoring: java/lang occurs once; Simple names can repeat
  // across packages.
  Model M;
  auto A = M.internClassByInternalName("java/lang/String");
  auto B = M.internClassByInternalName("java/lang/Object");
  auto C = M.internClassByInternalName("com/acme/String");
  ASSERT_TRUE(static_cast<bool>(A));
  ASSERT_TRUE(static_cast<bool>(B));
  ASSERT_TRUE(static_cast<bool>(C));
  EXPECT_EQ(M.classRef(*A).Package, M.classRef(*B).Package);
  EXPECT_NE(M.classRef(*A).Package, M.classRef(*C).Package);
  EXPECT_EQ(M.classRef(*A).Simple, M.classRef(*C).Simple);
}

TEST(Model, ArrayAndPrimitiveClassRefs) {
  Model M;
  auto Arr = M.internClassByInternalName("[[Ljava/lang/String;");
  ASSERT_TRUE(static_cast<bool>(Arr));
  EXPECT_EQ(M.classRef(*Arr).Dims, 2);
  EXPECT_EQ(M.classRefInternalName(*Arr), "[[Ljava/lang/String;");
  EXPECT_EQ(M.classRefVType(*Arr), VType::Ref);

  auto IntArr = M.internClassByInternalName("[I");
  ASSERT_TRUE(static_cast<bool>(IntArr));
  EXPECT_EQ(M.classRefInternalName(*IntArr), "[I");

  TypeDesc T;
  T.Base = 'J';
  uint32_t LongRef = M.internTypeDesc(T);
  EXPECT_EQ(M.classRefVType(LongRef), VType::Long);
  EXPECT_EQ(printTypeDesc(M.classRefTypeDesc(LongRef)), "J");
}

TEST(Model, PlainClassNameRoundTrips) {
  Model M;
  auto Id = M.internClassByInternalName("com/acme/util/HashEntry");
  ASSERT_TRUE(static_cast<bool>(Id));
  EXPECT_EQ(M.classRefInternalName(*Id), "com/acme/util/HashEntry");
  EXPECT_EQ(printTypeDesc(M.classRefTypeDesc(*Id)),
            "Lcom/acme/util/HashEntry;");
}

TEST(Model, SignatureFactorsAndReprints) {
  Model M;
  std::string Desc = "(I[JLjava/lang/String;)Ljava/util/Vector;";
  auto Sig = M.internSignature(Desc);
  ASSERT_TRUE(static_cast<bool>(Sig));
  ASSERT_EQ(Sig->size(), 4u); // return + 3 params
  EXPECT_EQ(M.signatureDescriptor(*Sig), Desc);
  std::vector<VType> Args;
  VType Ret = VType::Void;
  M.signatureVTypes(*Sig, Args, Ret);
  ASSERT_EQ(Args.size(), 3u);
  EXPECT_EQ(Args[0], VType::Int);
  EXPECT_EQ(Args[1], VType::Ref);
  EXPECT_EQ(Args[2], VType::Ref);
  EXPECT_EQ(Ret, VType::Ref);
}

TEST(Model, SignatureSharingAcrossMethods) {
  // Two methods with the same parameter types share every class ref —
  // the §4 claim that factoring kills descriptor duplication.
  Model M;
  auto A = M.internSignature("(Ljava/lang/String;)Ljava/lang/String;");
  auto B = M.internSignature("(Ljava/lang/String;)V");
  ASSERT_TRUE(static_cast<bool>(A) && static_cast<bool>(B));
  EXPECT_EQ((*A)[1], (*B)[1]) << "parameter class ref shared";
}

TEST(Model, MemberRefInterning) {
  Model M;
  MFieldRef F1, F2;
  F1.Owner = F2.Owner = *M.internClassByInternalName("a/B");
  F1.Name = M.internFieldName("x");
  F2.Name = M.internFieldName("x");
  TypeDesc T;
  T.Base = 'I';
  F1.Type = F2.Type = M.internTypeDesc(T);
  EXPECT_EQ(M.internFieldRef(F1), M.internFieldRef(F2));

  MMethodRef M1;
  M1.Owner = F1.Owner;
  M1.Name = M.internMethodName("go");
  M1.Sig = *M.internSignature("()V");
  uint32_t Id = M.internMethodRef(M1);
  EXPECT_EQ(M.internMethodRef(M1), Id);
  EXPECT_EQ(M.methodRef(Id).Name, M1.Name);
}

TEST(Model, RejectsMalformedNames) {
  Model M;
  EXPECT_FALSE(static_cast<bool>(M.internClassByInternalName("[")));
  EXPECT_FALSE(static_cast<bool>(M.internClassByInternalName("[Lx")));
  EXPECT_FALSE(static_cast<bool>(M.internSignature("not a descriptor")));
}

TEST(Preload, SeedsConsistentlyOnBothSides) {
  // The encoder-side and decoder-side preloads must walk identical
  // sequences; capture both and compare.
  struct Capture final : RefEncoder {
    std::vector<std::pair<uint32_t, uint32_t>> Events;
    bool encode(uint32_t, uint32_t, uint32_t, ByteWriter &) override {
      return false;
    }
    bool preload(uint32_t Pool, uint32_t Object) override {
      Events.push_back({Pool, Object});
      return true;
    }
  };
  struct CaptureDec final : RefDecoder {
    std::vector<std::pair<uint32_t, uint32_t>> Events;
    std::optional<uint32_t> decode(uint32_t, uint32_t,
                                   ByteReader &) override {
      return std::nullopt;
    }
    void registerNew(uint32_t, uint32_t, uint32_t) override {}
    bool preload(uint32_t Pool, uint32_t Object) override {
      Events.push_back({Pool, Object});
      return true;
    }
  };
  Model MEnc, MDec;
  Capture Enc;
  CaptureDec Dec;
  ASSERT_TRUE(preloadStandardRefs(
      MEnc, Enc, RefScheme::MtfTransientsContext));
  ASSERT_TRUE(preloadStandardRefs(
      MDec, Dec, RefScheme::MtfTransientsContext));
  EXPECT_EQ(Enc.Events, Dec.Events);
  EXPECT_GT(Enc.Events.size(), 40u);
}

TEST(Preload, SimpleSchemeMergesPools) {
  struct Capture final : RefEncoder {
    std::set<uint32_t> Pools;
    bool encode(uint32_t, uint32_t, uint32_t, ByteWriter &) override {
      return false;
    }
    bool preload(uint32_t Pool, uint32_t Object) override {
      (void)Object;
      Pools.insert(Pool);
      return true;
    }
  };
  Model M;
  Capture Enc;
  ASSERT_TRUE(preloadStandardRefs(M, Enc, RefScheme::Simple));
  EXPECT_FALSE(Enc.Pools.count(poolId(PoolKind::MethodSpecial)))
      << "Simple merges all method pools into MethodVirtual";
  EXPECT_TRUE(Enc.Pools.count(poolId(PoolKind::MethodVirtual)));
}
