//===- test_pack.cpp - packed archive end-to-end tests --------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The central invariant (§12): decompression is deterministic and
// reproduces the prepared (stripped + canonicalized) classfiles exactly,
// byte for byte.
//
//===----------------------------------------------------------------------===//

#include "classfile/Reader.h"
#include "classfile/Transform.h"
#include "classfile/Writer.h"
#include "corpus/Corpus.h"
#include "jazz/Jazz.h"
#include "pack/ClassOrder.h"
#include "pack/Packer.h"
#include "corpus/Rng.h"
#include "zip/Jar.h"
#include <gtest/gtest.h>
#include <map>

using namespace cjpack;

namespace {

CorpusSpec testSpec(uint64_t Seed, CodeStyle Style = CodeStyle::Balanced,
                    unsigned NumClasses = 30) {
  CorpusSpec S;
  S.Name = "packtest";
  S.Seed = Seed;
  S.NumClasses = NumClasses;
  S.NumPackages = 3;
  S.MeanMethods = 6;
  S.MeanStatements = 10;
  S.Code = Style;
  return S;
}

/// Prepared classfiles of the spec, in eager-load order (the order the
/// packer will emit them), keyed by class name for comparison.
std::map<std::string, std::vector<uint8_t>>
preparedBytes(const std::vector<ClassFile> &Classes) {
  std::map<std::string, std::vector<uint8_t>> Out;
  for (const ClassFile &CF : Classes)
    Out[std::string(CF.thisClassName())] = writeClassFile(CF);
  return Out;
}

void expectRoundTrip(const PackOptions &Options, uint64_t Seed,
                     CodeStyle Style = CodeStyle::Balanced,
                     unsigned NumClasses = 30) {
  std::vector<ClassFile> Classes =
      generateCorpusClasses(testSpec(Seed, Style, NumClasses));
  for (ClassFile &CF : Classes)
    ASSERT_FALSE(static_cast<bool>(prepareForPacking(CF)));
  auto Want = preparedBytes(Classes);

  auto Packed = packClasses(Classes, Options);
  ASSERT_TRUE(static_cast<bool>(Packed)) << Packed.message();
  auto Unpacked = unpackClasses(Packed->Archive);
  ASSERT_TRUE(static_cast<bool>(Unpacked)) << Unpacked.message();
  ASSERT_EQ(Unpacked->size(), Classes.size());

  for (const ClassFile &CF : *Unpacked) {
    auto It = Want.find(std::string(CF.thisClassName()));
    ASSERT_NE(It, Want.end()) << CF.thisClassName();
    EXPECT_EQ(writeClassFile(CF), It->second)
        << "byte mismatch for " << CF.thisClassName();
  }
}

} // namespace

TEST(PackRoundTrip, DefaultOptions) {
  expectRoundTrip(PackOptions(), 1001);
}

TEST(PackRoundTrip, NumericCorpus) {
  expectRoundTrip(PackOptions(), 1002, CodeStyle::Numeric);
}

TEST(PackRoundTrip, StringHeavyCorpus) {
  expectRoundTrip(PackOptions(), 1003, CodeStyle::StringHeavy);
}

TEST(PackRoundTrip, NoCollapse) {
  PackOptions O;
  O.CollapseOpcodes = false;
  expectRoundTrip(O, 1004);
}

TEST(PackRoundTrip, NoCompression) {
  PackOptions O;
  O.CompressStreams = false;
  expectRoundTrip(O, 1005);
}

TEST(PackRoundTrip, NoEagerOrdering) {
  PackOptions O;
  O.OrderForEagerLoading = false;
  expectRoundTrip(O, 1006);
}

class PackSchemeTest : public ::testing::TestWithParam<RefScheme> {};

TEST_P(PackSchemeTest, RoundTripsUnderEveryScheme) {
  PackOptions O;
  O.Scheme = GetParam();
  expectRoundTrip(O, 1100 + static_cast<uint64_t>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, PackSchemeTest,
    ::testing::Values(RefScheme::Simple, RefScheme::Basic, RefScheme::Freq,
                      RefScheme::Cache, RefScheme::MtfBasic,
                      RefScheme::MtfTransients, RefScheme::MtfContext,
                      RefScheme::MtfTransientsContext),
    [](const auto &Info) {
      std::string Name = refSchemeName(Info.param);
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

TEST(PackRoundTrip, SingleClass) {
  expectRoundTrip(PackOptions(), 1200, CodeStyle::Balanced, 2);
}

TEST(PackRoundTrip, DecompressionIsDeterministic) {
  std::vector<ClassFile> Classes = generateCorpusClasses(testSpec(1300));
  for (ClassFile &CF : Classes)
    ASSERT_FALSE(static_cast<bool>(prepareForPacking(CF)));
  auto Packed = packClasses(Classes, PackOptions());
  ASSERT_TRUE(static_cast<bool>(Packed));
  auto A = unpackArchive(Packed->Archive);
  auto B = unpackArchive(Packed->Archive);
  ASSERT_TRUE(static_cast<bool>(A));
  ASSERT_TRUE(static_cast<bool>(B));
  ASSERT_EQ(A->size(), B->size());
  for (size_t I = 0; I < A->size(); ++I) {
    EXPECT_EQ((*A)[I].Name, (*B)[I].Name);
    EXPECT_EQ((*A)[I].Data, (*B)[I].Data);
  }
}

TEST(PackRoundTrip, PackedIdempotence) {
  // Packing the unpacked classes again yields the identical archive —
  // the property that makes sign-after-decompress (§12) workable.
  std::vector<ClassFile> Classes = generateCorpusClasses(testSpec(1301));
  for (ClassFile &CF : Classes)
    ASSERT_FALSE(static_cast<bool>(prepareForPacking(CF)));
  auto P1 = packClasses(Classes, PackOptions());
  ASSERT_TRUE(static_cast<bool>(P1));
  auto U1 = unpackClasses(P1->Archive);
  ASSERT_TRUE(static_cast<bool>(U1));
  auto P2 = packClasses(*U1, PackOptions());
  ASSERT_TRUE(static_cast<bool>(P2));
  EXPECT_EQ(P1->Archive, P2->Archive);
}

TEST(PackFromBytes, ParsesPreparesAndPacks) {
  std::vector<NamedClass> Raw = generateCorpus(testSpec(1400));
  auto Packed = packClassBytes(Raw, PackOptions());
  ASSERT_TRUE(static_cast<bool>(Packed)) << Packed.message();
  EXPECT_EQ(Packed->ClassCount, Raw.size());
  auto Unpacked = unpackArchive(Packed->Archive);
  ASSERT_TRUE(static_cast<bool>(Unpacked)) << Unpacked.message();
  EXPECT_EQ(Unpacked->size(), Raw.size());
  for (const NamedClass &C : *Unpacked) {
    auto CF = parseClassFile(C.Data);
    ASSERT_TRUE(static_cast<bool>(CF)) << CF.message();
  }
}

TEST(PackCompression, BeatsJarAndJ0rGz) {
  // The headline claim: packed < j0r.gz < jar on realistic corpora.
  std::vector<NamedClass> Raw =
      generateCorpus(testSpec(1500, CodeStyle::Balanced, 120));
  std::vector<ClassFile> Prepared;
  for (const NamedClass &C : Raw) {
    auto CF = parseClassFile(C.Data);
    ASSERT_TRUE(static_cast<bool>(CF));
    ASSERT_FALSE(static_cast<bool>(prepareForPacking(*CF)));
    Prepared.push_back(std::move(*CF));
  }
  std::vector<NamedClass> Stripped;
  for (const ClassFile &CF : Prepared)
    Stripped.push_back(
        {std::string(CF.thisClassName()) + ".class", writeClassFile(CF)});

  size_t Jar = buildJar(Stripped).size();
  size_t J0rGz = buildJ0rGz(Stripped).size();
  auto Packed = packClasses(Prepared, PackOptions());
  ASSERT_TRUE(static_cast<bool>(Packed));
  size_t Pack = Packed->Archive.size();

  EXPECT_LT(J0rGz, Jar);
  EXPECT_LT(Pack, J0rGz);
  // Factor of ~2+ over jar on this corpus (paper reports 2-5x).
  EXPECT_LT(Pack * 2, Jar);
}

TEST(PackStats, StreamSizesAddUp) {
  std::vector<ClassFile> Classes = generateCorpusClasses(testSpec(1600));
  for (ClassFile &CF : Classes)
    ASSERT_FALSE(static_cast<bool>(prepareForPacking(CF)));
  auto Packed = packClasses(Classes, PackOptions());
  ASSERT_TRUE(static_cast<bool>(Packed));
  size_t Sum = Packed->Sizes.totalPacked();
  // Archive = 7-byte header + streams.
  EXPECT_EQ(Packed->Archive.size(), Sum + 7);
  // Every category is represented on a balanced corpus.
  EXPECT_GT(Packed->Sizes.packedOf(StreamCategory::Strings), 0u);
  EXPECT_GT(Packed->Sizes.packedOf(StreamCategory::Opcodes), 0u);
  EXPECT_GT(Packed->Sizes.packedOf(StreamCategory::Refs), 0u);
  EXPECT_GT(Packed->Sizes.packedOf(StreamCategory::Ints), 0u);
  EXPECT_GT(Packed->Sizes.packedOf(StreamCategory::Misc), 0u);
}

TEST(PackErrors, RejectsCorruptArchive) {
  std::vector<ClassFile> Classes =
      generateCorpusClasses(testSpec(1700, CodeStyle::Balanced, 5));
  for (ClassFile &CF : Classes)
    ASSERT_FALSE(static_cast<bool>(prepareForPacking(CF)));
  auto Packed = packClasses(Classes, PackOptions());
  ASSERT_TRUE(static_cast<bool>(Packed));
  auto Bad = Packed->Archive;
  Bad[0] ^= 0xFF;
  EXPECT_FALSE(static_cast<bool>(unpackArchive(Bad)));
  auto Short = Packed->Archive;
  Short.resize(Short.size() / 2);
  EXPECT_FALSE(static_cast<bool>(unpackArchive(Short)));
}

TEST(PackErrors, RejectsUnpreparedClasses) {
  std::vector<ClassFile> Classes =
      generateCorpusClasses(testSpec(1800, CodeStyle::Balanced, 3));
  static constexpr uint8_t SourceFileBytes[] = {0, 0};
  Classes[0].Attributes.push_back({"SourceFile", SourceFileBytes});
  auto Packed = packClasses(Classes, PackOptions());
  EXPECT_FALSE(static_cast<bool>(Packed));
}

TEST(PackOrdering, ArchiveIsEagerLoadable) {
  std::vector<ClassFile> Classes = generateCorpusClasses(testSpec(1900));
  std::reverse(Classes.begin(), Classes.end());
  for (ClassFile &CF : Classes)
    ASSERT_FALSE(static_cast<bool>(prepareForPacking(CF)));
  auto Packed = packClasses(Classes, PackOptions());
  ASSERT_TRUE(static_cast<bool>(Packed));
  auto Unpacked = unpackClasses(Packed->Archive);
  ASSERT_TRUE(static_cast<bool>(Unpacked));
  EXPECT_TRUE(isEagerLoadable(*Unpacked))
      << "archive order must allow defineClass-as-bytes-arrive (§11)";
}

TEST(Jazz, RoundTripsAndLandsBetweenBaselines) {
  std::vector<NamedClass> Raw =
      generateCorpus(testSpec(2000, CodeStyle::Balanced, 80));
  std::vector<ClassFile> Prepared;
  for (const NamedClass &C : Raw) {
    auto CF = parseClassFile(C.Data);
    ASSERT_TRUE(static_cast<bool>(CF));
    ASSERT_FALSE(static_cast<bool>(prepareForPacking(*CF)));
    Prepared.push_back(std::move(*CF));
  }
  auto Want = preparedBytes(Prepared);

  auto Jazz = jazzPack(Prepared);
  ASSERT_TRUE(static_cast<bool>(Jazz)) << Jazz.message();
  auto Back = jazzUnpack(*Jazz);
  ASSERT_TRUE(static_cast<bool>(Back)) << Back.message();
  ASSERT_EQ(Back->size(), Prepared.size());
  for (const ClassFile &CF : *Back)
    EXPECT_EQ(writeClassFile(CF), Want[std::string(CF.thisClassName())])
        << CF.thisClassName();

  // Size ordering on a realistic corpus: Packed < Jazz < jar.
  std::vector<NamedClass> Stripped;
  for (const ClassFile &CF : Prepared)
    Stripped.push_back(
        {std::string(CF.thisClassName()) + ".class", writeClassFile(CF)});
  auto Packed = packClasses(Prepared, PackOptions());
  ASSERT_TRUE(static_cast<bool>(Packed));
  EXPECT_LT(Packed->Archive.size(), Jazz->size());
  EXPECT_LT(Jazz->size(), buildJar(Stripped).size());
}

TEST(PackPreload, RoundTripsWithStandardRefs) {
  PackOptions O;
  O.PreloadStandardRefs = true;
  expectRoundTrip(O, 2100);
}

TEST(PackPreload, ShrinksSmallArchives) {
  // §14: preloading helps most when the archive is small relative to
  // the standard-library references it makes.
  std::vector<ClassFile> Classes =
      generateCorpusClasses(testSpec(2101, CodeStyle::Balanced, 4));
  for (ClassFile &CF : Classes)
    ASSERT_FALSE(static_cast<bool>(prepareForPacking(CF)));
  auto Plain = packClasses(Classes, PackOptions());
  PackOptions O;
  O.PreloadStandardRefs = true;
  auto Pre = packClasses(Classes, O);
  ASSERT_TRUE(static_cast<bool>(Plain));
  ASSERT_TRUE(static_cast<bool>(Pre));
  EXPECT_LT(Pre->Archive.size(), Plain->Archive.size());
}

TEST(PackPreload, RejectedForStatsSchemes) {
  std::vector<ClassFile> Classes =
      generateCorpusClasses(testSpec(2102, CodeStyle::Balanced, 3));
  for (ClassFile &CF : Classes)
    ASSERT_FALSE(static_cast<bool>(prepareForPacking(CF)));
  for (RefScheme S : {RefScheme::Freq, RefScheme::Cache}) {
    PackOptions O;
    O.Scheme = S;
    O.PreloadStandardRefs = true;
    auto P = packClasses(Classes, O);
    EXPECT_FALSE(static_cast<bool>(P)) << refSchemeName(S);
  }
}

TEST(PackPreload, WorksWithEveryNonStatsScheme) {
  for (RefScheme S : {RefScheme::Simple, RefScheme::Basic,
                      RefScheme::MtfBasic, RefScheme::MtfContext}) {
    PackOptions O;
    O.Scheme = S;
    O.PreloadStandardRefs = true;
    expectRoundTrip(O, 2103, CodeStyle::Balanced, 10);
  }
}

TEST(PackFuzz, ByteFlipsNeverCrash) {
  // Corruption sweep: flipping any single byte of the archive must
  // yield either a decode error or a structurally valid (if wrong)
  // result — never a crash or hang.
  std::vector<ClassFile> Classes =
      generateCorpusClasses(testSpec(2200, CodeStyle::Balanced, 8));
  for (ClassFile &CF : Classes)
    ASSERT_FALSE(static_cast<bool>(prepareForPacking(CF)));
  auto Packed = packClasses(Classes, PackOptions());
  ASSERT_TRUE(static_cast<bool>(Packed));
  const std::vector<uint8_t> &Good = Packed->Archive;
  size_t Step = std::max<size_t>(1, Good.size() / 300);
  size_t Errors = 0, Survived = 0;
  for (size_t At = 0; At < Good.size(); At += Step) {
    std::vector<uint8_t> Bad = Good;
    Bad[At] ^= 0x41;
    auto U = unpackClasses(Bad);
    if (U)
      ++Survived;
    else
      ++Errors;
  }
  // Most flips must be detected (deflate checksums, structural checks).
  EXPECT_GT(Errors, Survived);
}

TEST(PackFuzz, TruncationsNeverCrash) {
  std::vector<ClassFile> Classes =
      generateCorpusClasses(testSpec(2201, CodeStyle::Balanced, 6));
  for (ClassFile &CF : Classes)
    ASSERT_FALSE(static_cast<bool>(prepareForPacking(CF)));
  auto Packed = packClasses(Classes, PackOptions());
  ASSERT_TRUE(static_cast<bool>(Packed));
  const std::vector<uint8_t> &Good = Packed->Archive;
  for (size_t Len = 0; Len < Good.size(); Len += 7) {
    std::vector<uint8_t> Short(Good.begin(),
                               Good.begin() + static_cast<long>(Len));
    auto U = unpackClasses(Short);
    EXPECT_FALSE(static_cast<bool>(U)) << "truncation at " << Len
                                       << " decoded successfully";
  }
}

TEST(PackFuzz, RandomBytesAreRejected) {
  Rng R(2202);
  for (int Trial = 0; Trial < 50; ++Trial) {
    std::vector<uint8_t> Junk(16 + R.below(4000));
    for (auto &B : Junk)
      B = static_cast<uint8_t>(R.next());
    // Make some trials wear the right magic to get past the header.
    if (Trial % 2 == 0) {
      Junk[0] = 'C'; Junk[1] = 'J'; Junk[2] = 'P'; Junk[3] = 'K';
      Junk[4] = 1;
      Junk[5] = static_cast<uint8_t>(R.below(8));
      Junk[6] = static_cast<uint8_t>(R.below(8));
    }
    auto U = unpackClasses(Junk);
    EXPECT_FALSE(static_cast<bool>(U));
  }
}

TEST(PackDeterminism, RepackIsByteIdentical) {
  std::vector<ClassFile> Classes = generateCorpusClasses(testSpec(2300));
  for (ClassFile &CF : Classes)
    ASSERT_FALSE(static_cast<bool>(prepareForPacking(CF)));
  auto A = packClasses(Classes, PackOptions());
  auto B = packClasses(Classes, PackOptions());
  ASSERT_TRUE(static_cast<bool>(A));
  ASSERT_TRUE(static_cast<bool>(B));
  EXPECT_EQ(A->Archive, B->Archive);
}

class PackSeedSweep : public ::testing::TestWithParam<uint64_t> {};

/// Property sweep: the end-to-end byte-exact round trip holds across
/// many generator seeds and styles.
TEST_P(PackSeedSweep, RoundTripHolds) {
  uint64_t Seed = GetParam();
  CodeStyle Style = static_cast<CodeStyle>(Seed % 3);
  expectRoundTrip(PackOptions(), 3000 + Seed, Style,
                  6 + static_cast<unsigned>(Seed % 20));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PackSeedSweep,
                         ::testing::Range<uint64_t>(0, 16));
