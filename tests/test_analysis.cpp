//===- test_analysis.cpp - flow analysis / verifier tests -----------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Covers the CFG builder and the worklist verifier on hand-assembled
// method bodies with known defects (each diagnostic kind, at the right
// offset), the legal-but-tricky cases (overlapping handler ranges,
// long/double slot discipline), the differential guarantees (FlowState
// equals StackState on branch-free code; the corpus generator and the
// full pack/unpack round trip are verifier-clean), and hostile input.
//
//===----------------------------------------------------------------------===//

#include "analysis/FlowState.h"
#include "analysis/Verifier.h"
#include "bytecode/Instruction.h"
#include "classfile/Reader.h"
#include "classfile/Writer.h"
#include "corpus/Corpus.h"
#include "pack/Packer.h"
#include <gtest/gtest.h>

using namespace cjpack;
using namespace cjpack::analysis;

namespace {

uint8_t byteOf(Op O) { return static_cast<uint8_t>(O); }

/// One synthetic method body to analyze.
struct MethodSpec {
  std::string Desc = "()V";
  uint16_t MaxStack = 4;
  uint16_t MaxLocals = 4;
  std::vector<uint8_t> Code;
  std::vector<ExceptionTableEntry> Table;
};

/// Wraps \p S into a minimal one-method classfile.
ClassFile makeClass(const MethodSpec &S) {
  ClassFile CF;
  CF.ThisClass = CF.CP.addClass("T");
  CF.SuperClass = CF.CP.addClass("java/lang/Object");
  MemberInfo M;
  M.AccessFlags = AccStatic;
  M.NameIndex = CF.CP.addUtf8("test");
  M.DescriptorIndex = CF.CP.addUtf8(S.Desc);
  CodeAttribute Code;
  Code.MaxStack = S.MaxStack;
  Code.MaxLocals = S.MaxLocals;
  Code.Code = S.Code;
  Code.ExceptionTable = S.Table;
  M.Attributes.push_back(encodeCodeAttribute(Code, CF.CP));
  CF.Methods.push_back(std::move(M));
  return CF;
}

/// Analyzes the single method of \p S.
MethodAnalysis analyze(const MethodSpec &S) {
  ClassFile CF = makeClass(S);
  return analyzeMethod(CF, CF.Methods[0], "T.test" + S.Desc);
}

/// Number of diagnostics of kind \p K in \p Diags.
size_t countKind(const std::vector<Diagnostic> &Diags, DiagKind K) {
  size_t N = 0;
  for (const Diagnostic &D : Diags)
    N += D.Kind == K;
  return N;
}

/// First diagnostic of kind \p K, or nullptr.
const Diagnostic *findKind(const std::vector<Diagnostic> &Diags, DiagKind K) {
  for (const Diagnostic &D : Diags)
    if (D.Kind == K)
      return &D;
  return nullptr;
}

TEST(Verifier, CleanStraightLineMethod) {
  MethodSpec S;
  S.Desc = "()I";
  S.Code = {byteOf(Op::IConst0), byteOf(Op::IStore0), byteOf(Op::ILoad0),
            byteOf(Op::IReturn)};
  MethodAnalysis A = analyze(S);
  ASSERT_TRUE(A.Decoded);
  EXPECT_TRUE(A.Diags.empty())
      << formatDiagnostic(A.Diags.front());
  ASSERT_EQ(A.Graph.Blocks.size(), 1u);
  ASSERT_TRUE(A.BlockEntry[0].has_value());
  EXPECT_TRUE(A.BlockEntry[0]->Stack.empty());
}

TEST(Verifier, ParametersSeedTheEntryFrame) {
  MethodSpec S;
  S.Desc = "(IJ)J"; // int in slot 0, long in slots 1-2
  S.MaxLocals = 3;
  S.Code = {byteOf(Op::LLoad), 1, byteOf(Op::LReturn)};
  MethodAnalysis A = analyze(S);
  ASSERT_TRUE(A.Decoded);
  EXPECT_TRUE(A.Diags.empty())
      << formatDiagnostic(A.Diags.front());
  ASSERT_TRUE(A.BlockEntry[0].has_value());
  const Frame &F = A.BlockEntry[0].value();
  ASSERT_EQ(F.Locals.size(), 3u);
  EXPECT_EQ(F.Locals[0], AType::Int);
  EXPECT_EQ(F.Locals[1], AType::Long);
  EXPECT_EQ(F.Locals[2], AType::Long2);
}

TEST(Verifier, StackUnderflowAtJoin) {
  // Both paths into the join at offset 5 arrive with an empty stack; the
  // pop there underflows.
  MethodSpec S;
  S.Code = {byteOf(Op::IConst0),
            byteOf(Op::IfEq), 0, 4, // 1: ifeq -> 5
            byteOf(Op::Nop),        // 4
            byteOf(Op::Pop),        // 5: join, stack empty
            byteOf(Op::Return)};
  MethodAnalysis A = analyze(S);
  const Diagnostic *D = findKind(A.Diags, DiagKind::StackUnderflow);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Offset, 5u);
}

TEST(Verifier, MergeDepthMismatchAtJoin) {
  // The branch edge reaches offset 6 with an empty stack, the
  // fallthrough with one int.
  MethodSpec S;
  S.MaxStack = 2;
  S.Code = {byteOf(Op::IConst0),
            byteOf(Op::IfEq), 0, 5, // 1: ifeq -> 6
            byteOf(Op::IConst1),    // 4
            byteOf(Op::Nop),        // 5
            byteOf(Op::Return)};    // 6: join at depth 0 vs 1
  MethodAnalysis A = analyze(S);
  EXPECT_EQ(countKind(A.Diags, DiagKind::MergeDepthMismatch), 1u);
}

TEST(Verifier, DepthAgreeingJoinIsClean) {
  // Same shape, but both paths arrive at depth 1 with the same type.
  MethodSpec S;
  S.Desc = "()I";
  S.MaxStack = 2;
  S.Code = {byteOf(Op::IConst0),
            byteOf(Op::IConst1),
            byteOf(Op::IfEq), 0, 4, // 2: ifeq -> 6
            byteOf(Op::Nop),        // 5
            byteOf(Op::IReturn)};   // 6: join, one int either way
  MethodAnalysis A = analyze(S);
  EXPECT_TRUE(A.Diags.empty())
      << formatDiagnostic(A.Diags.front());
}

TEST(Verifier, TypeClashAtMergedUse) {
  // One path leaves an int on the stack, the other a null reference;
  // the merged slot is Top, so areturn cannot type it.
  MethodSpec S;
  S.Desc = "()Ljava/lang/Object;";
  S.MaxStack = 2;
  S.Code = {byteOf(Op::IConst0),
            byteOf(Op::IfEq), 0, 7,    // 1: ifeq -> 8
            byteOf(Op::AConstNull),    // 4
            byteOf(Op::Goto), 0, 4,    // 5: goto -> 9
            byteOf(Op::IConst1),       // 8
            byteOf(Op::AReturn)};      // 9: join, Ref vs Int
  MethodAnalysis A = analyze(S);
  EXPECT_EQ(countKind(A.Diags, DiagKind::InvalidBranchTarget), 0u);
  const Diagnostic *D = findKind(A.Diags, DiagKind::TypeClash);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Offset, 9u);
}

TEST(Verifier, LongSlotDisciplineClean) {
  MethodSpec S;
  S.Desc = "()J";
  S.MaxStack = 2;
  S.MaxLocals = 2;
  S.Code = {byteOf(Op::LConst0), byteOf(Op::LStore0), byteOf(Op::LLoad0),
            byteOf(Op::LReturn)};
  MethodAnalysis A = analyze(S);
  EXPECT_TRUE(A.Diags.empty())
      << formatDiagnostic(A.Diags.front());
}

TEST(Verifier, PopSplittingLongIsClash) {
  MethodSpec S;
  S.MaxStack = 2;
  S.Code = {byteOf(Op::LConst0), byteOf(Op::Pop), byteOf(Op::Return)};
  MethodAnalysis A = analyze(S);
  const Diagnostic *D = findKind(A.Diags, DiagKind::TypeClash);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Offset, 1u);
}

TEST(Verifier, StoreTearingLongLocalIsBadLocal) {
  // istore_1 lands on the second half of the long in slots 0-1; the
  // following lload_0 must not see a whole long any more.
  MethodSpec S;
  S.Desc = "()J";
  S.MaxStack = 2;
  S.MaxLocals = 2;
  S.Code = {byteOf(Op::LConst0), byteOf(Op::LStore0),
            byteOf(Op::IConst0), byteOf(Op::IStore1),
            byteOf(Op::LLoad0),  byteOf(Op::LReturn)};
  MethodAnalysis A = analyze(S);
  const Diagnostic *D = findKind(A.Diags, DiagKind::BadLocal);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Offset, 4u);
}

TEST(Verifier, Dup2RoundTripsLong) {
  MethodSpec S;
  S.Desc = "()J";
  S.MaxStack = 4;
  S.MaxLocals = 2;
  S.Code = {byteOf(Op::LConst0), byteOf(Op::Dup2), byteOf(Op::LStore0),
            byteOf(Op::LReturn)};
  MethodAnalysis A = analyze(S);
  EXPECT_TRUE(A.Diags.empty())
      << formatDiagnostic(A.Diags.front());
}

TEST(Verifier, StackOverflowBeyondMaxStack) {
  MethodSpec S;
  S.MaxStack = 1;
  S.Code = {byteOf(Op::IConst0), byteOf(Op::IConst1), byteOf(Op::Pop),
            byteOf(Op::Pop), byteOf(Op::Return)};
  MethodAnalysis A = analyze(S);
  const Diagnostic *D = findKind(A.Diags, DiagKind::StackOverflow);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Offset, 1u);
}

TEST(Verifier, FallOffEnd) {
  MethodSpec S;
  S.Code = {byteOf(Op::IConst0), byteOf(Op::IStore0)};
  MethodAnalysis A = analyze(S);
  EXPECT_EQ(countKind(A.Diags, DiagKind::FallOffEnd), 1u);
}

TEST(Verifier, UnreachableCode) {
  MethodSpec S;
  S.Code = {byteOf(Op::Return), byteOf(Op::Nop), byteOf(Op::Return)};
  MethodAnalysis A = analyze(S);
  const Diagnostic *D = findKind(A.Diags, DiagKind::UnreachableCode);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Offset, 1u);
}

TEST(Verifier, InvalidBranchTarget) {
  // Target 3 is the middle of the ifeq operand bytes.
  MethodSpec S;
  S.Code = {byteOf(Op::IConst0), byteOf(Op::IfEq), 0, 2,
            byteOf(Op::Return)};
  MethodAnalysis A = analyze(S);
  EXPECT_EQ(countKind(A.Diags, DiagKind::InvalidBranchTarget), 1u);
}

TEST(Verifier, OverlappingHandlerRangesAreLegal) {
  // Two handlers protect overlapping prefixes of the body; both handler
  // blocks must be reachable through exception edges and the method must
  // verify clean.
  MethodSpec S;
  S.MaxStack = 1;
  S.MaxLocals = 3;
  S.Code = {byteOf(Op::IConst0),           // 0
            byteOf(Op::IStore0),           // 1
            byteOf(Op::Goto), 0, 8,        // 2: goto -> 10
            byteOf(Op::AStore1),           // 5: handler 1
            byteOf(Op::Goto), 0, 4,        // 6: goto -> 10
            byteOf(Op::AStore2),           // 9: handler 2
            byteOf(Op::Return)};           // 10
  S.Table = {{0, 2, 5, 0}, {1, 2, 9, 0}};
  MethodAnalysis A = analyze(S);
  ASSERT_TRUE(A.Decoded);
  EXPECT_TRUE(A.Diags.empty())
      << formatDiagnostic(A.Diags.front());
  EXPECT_EQ(A.Graph.ValidHandlers.size(), 2u);
  // Both handler entries got a frame with the thrown reference on it.
  for (uint32_t Off : {5u, 9u}) {
    uint32_t B = A.Graph.blockAtOffset(Off);
    ASSERT_NE(B, NoBlock);
    ASSERT_TRUE(A.BlockEntry[B].has_value());
    ASSERT_EQ(A.BlockEntry[B]->Stack.size(), 1u);
    EXPECT_EQ(A.BlockEntry[B]->Stack[0], AType::Ref);
  }
}

TEST(Verifier, HandlerSeesLocalsFromMidRange) {
  // Slot 0 is only an int from offset 1 onward; the handler entry state
  // must merge the before (Top) and after (Int) views to Top, so loading
  // it in the handler is a defect.
  MethodSpec S;
  S.Desc = "()I";
  S.MaxStack = 1;
  S.MaxLocals = 1;
  S.Code = {byteOf(Op::IConst0),    // 0
            byteOf(Op::IStore0),    // 1
            byteOf(Op::ILoad0),     // 2
            byteOf(Op::IReturn),    // 3
            byteOf(Op::Pop),        // 4: handler, drop the throwable
            byteOf(Op::ILoad0),     // 5: local 0 not assigned on all paths
            byteOf(Op::IReturn)};   // 6
  S.Table = {{0, 4, 4, 0}};
  MethodAnalysis A = analyze(S);
  const Diagnostic *D = findKind(A.Diags, DiagKind::BadLocal);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Offset, 5u);
}

TEST(Verifier, InvalidHandlerRangeReversed) {
  MethodSpec S;
  S.Code = {byteOf(Op::Nop), byteOf(Op::Nop), byteOf(Op::Return)};
  S.Table = {{2, 1, 0, 0}}; // start after end
  MethodAnalysis A = analyze(S);
  EXPECT_EQ(countKind(A.Diags, DiagKind::InvalidHandlerRange), 1u);
  EXPECT_TRUE(A.Graph.ValidHandlers.empty());
}

TEST(Verifier, InvalidHandlerPcMidInstruction) {
  MethodSpec S;
  S.MaxStack = 2;
  S.Code = {byteOf(Op::IConst0), byteOf(Op::SiPush), 0, 1,
            byteOf(Op::Pop2), byteOf(Op::Return)};
  S.Table = {{0, 4, 2, 0}}; // handler pc inside the sipush
  MethodAnalysis A = analyze(S);
  EXPECT_EQ(countKind(A.Diags, DiagKind::InvalidHandlerRange), 1u);
}

TEST(Verifier, JsrRetSubroutineIsTolerated) {
  // jsr pushes a return address the subroutine stores and ret consumes.
  // The lenient analysis must not flag this legacy pattern.
  MethodSpec S;
  S.MaxStack = 1;
  S.MaxLocals = 1;
  S.Code = {byteOf(Op::Jsr), 0, 4,   // 0: jsr -> 4
            byteOf(Op::Return),      // 3
            byteOf(Op::AStore0),     // 4: store the return address
            byteOf(Op::Ret), 0};     // 5: ret 0
  MethodAnalysis A = analyze(S);
  ASSERT_TRUE(A.Decoded);
  EXPECT_TRUE(A.Diags.empty())
      << formatDiagnostic(A.Diags.front());
}

TEST(Verifier, MalformedCodeOnTruncatedBytecode) {
  MethodSpec S;
  S.Code = {byteOf(Op::SiPush)}; // operand bytes missing
  MethodAnalysis A = analyze(S);
  EXPECT_FALSE(A.Decoded);
  EXPECT_EQ(countKind(A.Diags, DiagKind::MalformedCode), 1u);
}

TEST(Verifier, GarbageBytesNeverCrash) {
  std::vector<uint8_t> Garbage = {0xCA, 0xFE, 0xBA, 0xBE, 0x00, 0x03,
                                  0x00, 0x2D, 0xFF, 0xFF};
  VerifyResult R = verifyClassBytes(Garbage);
  EXPECT_FALSE(R.clean());
  EXPECT_EQ(countKind(R.Diags, DiagKind::MalformedCode), 1u);
}

TEST(Verifier, DiagnosticFormatting) {
  Diagnostic D;
  D.Kind = DiagKind::StackUnderflow;
  D.Method = "T.test()V";
  D.Offset = 5;
  D.Message = "pop from an empty stack";
  std::string Text = formatDiagnostic(D);
  EXPECT_NE(Text.find("stack-underflow"), std::string::npos);
  EXPECT_NE(Text.find("T.test()V"), std::string::npos);
  EXPECT_NE(Text.find('5'), std::string::npos);
}

//===--------------------------------------------------------------------===//
// Differential: FlowState vs. StackState on branch-free code
//===--------------------------------------------------------------------===//

// On code with no branches, no switches, and no handlers, the
// merge-correct FlowState must agree with the paper's linear StackState
// at every instruction — the flow analysis only ever changes predictions
// at join points.
TEST(FlowStateDifferential, MatchesLinearStackStateOnStraightLine) {
  std::vector<std::vector<uint8_t>> Bodies = {
      {byteOf(Op::IConst0), byteOf(Op::IConst1), byteOf(Op::IAdd),
       byteOf(Op::IStore0), byteOf(Op::ILoad0), byteOf(Op::I2L),
       byteOf(Op::LStore1), byteOf(Op::LLoad1), byteOf(Op::L2I),
       byteOf(Op::IReturn)},
      {byteOf(Op::LConst0), byteOf(Op::LConst1), byteOf(Op::LAdd),
       byteOf(Op::Dup2), byteOf(Op::LStore0), byteOf(Op::LReturn)},
      {byteOf(Op::BiPush), 40, byteOf(Op::SiPush), 1, 0,
       byteOf(Op::IAdd), byteOf(Op::I2B), byteOf(Op::IReturn)},
      {byteOf(Op::AConstNull), byteOf(Op::Dup), byteOf(Op::Pop),
       byteOf(Op::AReturn)},
  };
  for (const std::vector<uint8_t> &Body : Bodies) {
    auto Insns = decodeCode(Body);
    ASSERT_TRUE(static_cast<bool>(Insns));
    StackState Linear;
    FlowState Flow;
    Linear.startMethod();
    Flow.startMethod();
    for (const Insn &I : *Insns) {
      Flow.enterInsn(I.Offset);
      EXPECT_EQ(Flow.isKnown(), Linear.isKnown()) << "offset " << I.Offset;
      EXPECT_EQ(Flow.top(0), Linear.top(0)) << "offset " << I.Offset;
      EXPECT_EQ(Flow.top(1), Linear.top(1)) << "offset " << I.Offset;
      EXPECT_EQ(Flow.contextId(), Linear.contextId())
          << "offset " << I.Offset;
      Flow.apply(I, nullptr);
      Linear.apply(I, nullptr);
    }
  }
}

// At a forward join whose incoming depths disagree, FlowState must
// degrade to unknown (StackState simply keeps the fallthrough view; the
// two are allowed to differ here — this pins the FlowState behavior).
TEST(FlowStateDifferential, ConflictingJoinDegradesToUnknown) {
  std::vector<uint8_t> Body = {
      byteOf(Op::IConst0),
      byteOf(Op::IfEq), 0, 5, // 1: ifeq -> 6
      byteOf(Op::IConst1),    // 4
      byteOf(Op::Nop),        // 5
      byteOf(Op::Return)};    // 6: depth 0 vs depth 1
  auto Insns = decodeCode(Body);
  ASSERT_TRUE(static_cast<bool>(Insns));
  FlowState Flow;
  Flow.startMethod();
  for (const Insn &I : *Insns) {
    Flow.enterInsn(I.Offset);
    if (I.Offset == 6) {
      EXPECT_FALSE(Flow.isKnown());
    }
    Flow.apply(I, nullptr);
  }
}

// At a depth-agreeing join, FlowState stays known and merges types
// slotwise.
TEST(FlowStateDifferential, AgreeingJoinStaysKnown) {
  std::vector<uint8_t> Body = {
      byteOf(Op::IConst0),
      byteOf(Op::IConst1),
      byteOf(Op::IfEq), 0, 4, // 2: ifeq -> 6
      byteOf(Op::Nop),        // 5
      byteOf(Op::IReturn)};   // 6: one int on both paths
  auto Insns = decodeCode(Body);
  ASSERT_TRUE(static_cast<bool>(Insns));
  FlowState Flow;
  Flow.startMethod();
  for (const Insn &I : *Insns) {
    Flow.enterInsn(I.Offset);
    if (I.Offset == 6) {
      EXPECT_TRUE(Flow.isKnown());
      EXPECT_EQ(Flow.top(0), VType::Int);
    }
    Flow.apply(I, nullptr);
  }
}

//===--------------------------------------------------------------------===//
// Corpus and round-trip sweeps
//===--------------------------------------------------------------------===//

CorpusSpec sweepSpec(uint64_t Seed, CodeStyle Style) {
  CorpusSpec Spec;
  Spec.Name = "analysis-sweep";
  Spec.Seed = Seed;
  Spec.NumClasses = 12;
  Spec.NumPackages = 2;
  Spec.MeanStatements = 14;
  Spec.Code = Style;
  return Spec;
}

// Every class the corpus generator emits must be verifier-clean: the
// benchmarks only exercise the packer honestly if their bodies would
// pass a real JVM's checks.
TEST(VerifySweep, GeneratedCorpusIsClean) {
  unsigned TotalMethods = 0;
  for (CodeStyle Style :
       {CodeStyle::Balanced, CodeStyle::Numeric, CodeStyle::StringHeavy}) {
    for (uint64_t Seed : {1u, 17u}) {
      for (const NamedClass &C : generateCorpus(sweepSpec(Seed, Style))) {
        VerifyResult R = verifyClassBytes(C.Data);
        TotalMethods += R.MethodsAnalyzed; // interfaces contribute none
        EXPECT_TRUE(R.clean())
            << C.Name << ": " << formatDiagnostic(R.Diags.front());
      }
    }
  }
  EXPECT_GT(TotalMethods, 100u);
}

// Decoder-reconstructed classes must verify exactly as clean as the
// originals: packing must not manufacture or mask defects.
TEST(VerifySweep, RoundTripIsClean) {
  std::vector<NamedClass> Classes =
      generateCorpus(sweepSpec(5, CodeStyle::Balanced));
  auto Packed = packClassBytes(Classes, {});
  ASSERT_TRUE(static_cast<bool>(Packed));
  auto Restored = unpackArchive(Packed->Archive);
  ASSERT_TRUE(static_cast<bool>(Restored));
  ASSERT_EQ(Restored->size(), Classes.size());
  for (const NamedClass &C : *Restored) {
    VerifyResult R = verifyClassBytes(C.Data);
    EXPECT_TRUE(R.clean())
        << C.Name << ": " << formatDiagnostic(R.Diags.front());
  }
}

} // namespace
