//===- test_skiplist.cpp - indexed skiplist / MTF queue tests -------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/Rng.h"
#include "mtf/IndexedSkipList.h"
#include "mtf/MtfQueue.h"
#include <deque>
#include <gtest/gtest.h>

using namespace cjpack;

TEST(IndexedSkipList, InsertFrontAndAccess) {
  IndexedSkipList L;
  for (uint32_t V = 0; V < 10; ++V)
    L.insertFront(V);
  ASSERT_EQ(L.size(), 10u);
  // Front is the most recently inserted.
  for (size_t I = 0; I < 10; ++I)
    EXPECT_EQ(L.valueAt(I), 9 - I);
}

TEST(IndexedSkipList, MoveToFront) {
  IndexedSkipList L;
  for (uint32_t V = 0; V < 5; ++V)
    L.insertFront(V); // list: 4 3 2 1 0
  L.moveToFront(3);   // move "1": 1 4 3 2 0
  EXPECT_EQ(L.valueAt(0), 1u);
  EXPECT_EQ(L.valueAt(1), 4u);
  EXPECT_EQ(L.valueAt(2), 3u);
  EXPECT_EQ(L.valueAt(3), 2u);
  EXPECT_EQ(L.valueAt(4), 0u);
}

TEST(IndexedSkipList, PositionOfIsStableAcrossMoves) {
  IndexedSkipList L;
  std::vector<IndexedSkipList::Node *> Nodes;
  for (uint32_t V = 0; V < 50; ++V)
    Nodes.push_back(L.insertFront(V));
  // positionOf must agree with valueAt for every node.
  for (auto *N : Nodes) {
    size_t Pos = L.positionOf(N);
    EXPECT_EQ(L.valueAt(Pos), N->Value);
  }
  L.moveToFront(37);
  L.moveToFront(12);
  for (auto *N : Nodes) {
    size_t Pos = L.positionOf(N);
    EXPECT_EQ(L.valueAt(Pos), N->Value);
  }
}

TEST(IndexedSkipList, EraseAt) {
  IndexedSkipList L;
  for (uint32_t V = 0; V < 8; ++V)
    L.insertFront(V); // 7 6 5 4 3 2 1 0
  L.eraseAt(0);
  L.eraseAt(6); // removes "0"
  ASSERT_EQ(L.size(), 6u);
  EXPECT_EQ(L.valueAt(0), 6u);
  EXPECT_EQ(L.valueAt(5), 1u);
}

TEST(IndexedSkipList, ClearAndReuse) {
  IndexedSkipList L;
  for (uint32_t V = 0; V < 100; ++V)
    L.insertFront(V);
  L.clear();
  EXPECT_EQ(L.size(), 0u);
  EXPECT_TRUE(L.empty());
  L.insertFront(7);
  EXPECT_EQ(L.valueAt(0), 7u);
}

/// Property test: the skiplist agrees with a naive std::deque model
/// through a long random mixed workload.
TEST(IndexedSkipList, MatchesNaiveModelUnderRandomWorkload) {
  IndexedSkipList L;
  std::deque<uint32_t> Model;
  Rng R(12345);
  uint32_t NextVal = 0;
  for (int Step = 0; Step < 20000; ++Step) {
    unsigned P = static_cast<unsigned>(R.below(100));
    if (Model.empty() || P < 30) {
      L.insertFront(NextVal);
      Model.push_front(NextVal);
      ++NextVal;
    } else if (P < 80) {
      size_t Pos = static_cast<size_t>(R.below(Model.size()));
      L.moveToFront(Pos);
      uint32_t V = Model[Pos];
      Model.erase(Model.begin() + static_cast<long>(Pos));
      Model.push_front(V);
    } else if (P < 90) {
      size_t Pos = static_cast<size_t>(R.below(Model.size()));
      ASSERT_EQ(L.valueAt(Pos), Model[Pos]);
    } else {
      size_t Pos = static_cast<size_t>(R.below(Model.size()));
      L.eraseAt(Pos);
      Model.erase(Model.begin() + static_cast<long>(Pos));
    }
    ASSERT_EQ(L.size(), Model.size());
  }
  for (size_t I = 0; I < Model.size(); I += 37)
    EXPECT_EQ(L.valueAt(I), Model[I]);
}

TEST(MtfQueue, EncoderDecoderSymmetry) {
  // Drive an encoder-side queue and a decoder-side queue with the same
  // reference stream; decoder must reproduce the values.
  MtfQueue Enc, Dec;
  Rng R(99);
  std::vector<uint32_t> Universe;
  for (uint32_t V = 100; V < 160; ++V)
    Universe.push_back(V);
  for (int Step = 0; Step < 5000; ++Step) {
    uint32_t V = Universe[R.zipf(Universe.size())];
    auto Pos = Enc.use(V, /*InsertIfNew=*/true);
    if (!Pos) {
      Dec.pushFront(V);
    } else {
      uint32_t Got = Dec.useAt(*Pos);
      ASSERT_EQ(Got, V);
    }
  }
}

TEST(MtfQueue, FindDoesNotMutate) {
  MtfQueue Q;
  Q.pushFront(1);
  Q.pushFront(2);
  Q.pushFront(3); // 3 2 1
  EXPECT_EQ(*Q.find(1), 2u);
  EXPECT_EQ(*Q.find(1), 2u); // unchanged
  EXPECT_EQ(*Q.use(1), 2u);  // now moves
  EXPECT_EQ(*Q.find(1), 0u);
  EXPECT_FALSE(Q.find(42).has_value());
}

TEST(MtfQueue, TransientBypass) {
  MtfQueue Q;
  EXPECT_FALSE(Q.use(5, /*InsertIfNew=*/false).has_value());
  EXPECT_FALSE(Q.contains(5));
  EXPECT_FALSE(Q.use(5, /*InsertIfNew=*/true).has_value());
  EXPECT_TRUE(Q.contains(5));
  EXPECT_EQ(*Q.use(5), 0u);
}

/// MTF behaviour yields small indices for skewed access patterns — the
/// property §5 relies on.
TEST(MtfQueue, SkewedAccessYieldsSmallIndices) {
  MtfQueue Q;
  Rng R(7);
  for (uint32_t V = 0; V < 1000; ++V)
    Q.pushFront(V);
  uint64_t Sum = 0;
  unsigned N = 2000;
  for (unsigned I = 0; I < N; ++I) {
    uint32_t V = 999 - static_cast<uint32_t>(R.zipf(8)); // hot set of 8
    Sum += *Q.use(V);
  }
  // Hot items stay near the front: average index must be far below a
  // uniform baseline (~500).
  EXPECT_LT(Sum / N, 20u);
}
