//===- test_classfile.cpp - classfile model/parser/writer/transform tests -===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "classfile/Descriptor.h"
#include "classfile/Reader.h"
#include "classfile/Transform.h"
#include "classfile/Writer.h"
#include "corpus/BytecodeBuilder.h"
#include <algorithm>
#include <gtest/gtest.h>

using namespace cjpack;

namespace {

/// Builds a small but representative classfile by hand.
ClassFile makeSampleClass() {
  ClassFile CF;
  CF.AccessFlags = AccPublic | AccSuper;
  CF.ThisClass = CF.CP.addClass("com/example/Sample");
  CF.SuperClass = CF.CP.addClass("java/lang/Object");
  CF.Interfaces.push_back(CF.CP.addClass("java/lang/Runnable"));

  MemberInfo Field;
  Field.AccessFlags = AccPrivate | AccStatic | AccFinal;
  Field.NameIndex = CF.CP.addUtf8("LIMIT");
  Field.DescriptorIndex = CF.CP.addUtf8("I");
  {
    ByteWriter W;
    W.writeU2(CF.CP.addInteger(1000000));
    Field.Attributes.push_back({"ConstantValue", CF.arena().adopt(W.take())});
  }
  CF.Fields.push_back(std::move(Field));

  MemberInfo Ctor;
  Ctor.AccessFlags = AccPublic;
  Ctor.NameIndex = CF.CP.addUtf8("<init>");
  Ctor.DescriptorIndex = CF.CP.addUtf8("()V");
  BytecodeBuilder B(CF.CP, 1);
  B.loadLocal(VType::Ref, 0);
  B.invoke(Op::InvokeSpecial, "java/lang/Object", "<init>", "()V");
  B.ret(VType::Void);
  Ctor.Attributes.push_back(encodeCodeAttribute(B.finish(), CF.CP));
  CF.Methods.push_back(std::move(Ctor));

  MemberInfo Run;
  Run.AccessFlags = AccPublic;
  Run.NameIndex = CF.CP.addUtf8("run");
  Run.DescriptorIndex = CF.CP.addUtf8("()V");
  BytecodeBuilder B2(CF.CP, 1);
  B2.pushString("hello world");
  B2.op(Op::Pop);
  B2.pushInt(123456); // forces an ldc of an Integer entry
  B2.op(Op::Pop);
  B2.ret(VType::Void);
  Run.Attributes.push_back(encodeCodeAttribute(B2.finish(), CF.CP));
  CF.Methods.push_back(std::move(Run));
  return CF;
}

} // namespace

TEST(ClassFileIO, WriteParseRoundTrip) {
  ClassFile CF = makeSampleClass();
  std::vector<uint8_t> Bytes = writeClassFile(CF);
  auto Parsed = parseClassFile(Bytes);
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.message();
  EXPECT_EQ(Parsed->thisClassName(), "com/example/Sample");
  EXPECT_EQ(Parsed->superClassName(), "java/lang/Object");
  ASSERT_EQ(Parsed->Interfaces.size(), 1u);
  EXPECT_EQ(Parsed->CP.className(Parsed->Interfaces[0]),
            "java/lang/Runnable");
  ASSERT_EQ(Parsed->Fields.size(), 1u);
  ASSERT_EQ(Parsed->Methods.size(), 2u);
  // Re-serialize: byte-identical.
  EXPECT_EQ(writeClassFile(*Parsed), Bytes);
}

TEST(ClassFileIO, RejectsBadMagic) {
  std::vector<uint8_t> Bytes = writeClassFile(makeSampleClass());
  Bytes[0] = 0x00;
  auto Parsed = parseClassFile(Bytes);
  EXPECT_FALSE(static_cast<bool>(Parsed));
}

TEST(ClassFileIO, RejectsTruncation) {
  std::vector<uint8_t> Bytes = writeClassFile(makeSampleClass());
  for (size_t Cut : std::initializer_list<size_t>{
           4, 10, 20, Bytes.size() / 2, Bytes.size() - 1}) {
    std::vector<uint8_t> Short(Bytes.begin(), Bytes.begin() + Cut);
    EXPECT_FALSE(static_cast<bool>(parseClassFile(Short))) << Cut;
  }
}

TEST(ClassFileIO, RejectsTrailingGarbage) {
  std::vector<uint8_t> Bytes = writeClassFile(makeSampleClass());
  Bytes.push_back(0);
  EXPECT_FALSE(static_cast<bool>(parseClassFile(Bytes)));
}

TEST(ConstantPool, DedupAndWideSlots) {
  ConstantPool CP;
  uint16_t A = CP.addUtf8("abc");
  EXPECT_EQ(CP.addUtf8("abc"), A);
  uint16_t L = CP.addLong(7);
  uint16_t Next = CP.addUtf8("after-long");
  EXPECT_EQ(Next, L + 2) << "Long must occupy two slots";
  EXPECT_EQ(CP.addLong(7), L);
  EXPECT_FALSE(CP.isValidIndex(L + 1)) << "shadow slot is unusable";
}

TEST(ConstantPool, RefBuildersShareSubparts) {
  ConstantPool CP;
  uint16_t F1 = CP.addRef(CpTag::FieldRef, "A", "x", "I");
  uint16_t F2 = CP.addRef(CpTag::FieldRef, "A", "y", "I");
  EXPECT_NE(F1, F2);
  // Class and descriptor Utf8 entries are shared.
  EXPECT_EQ(CP.entry(F1).Ref1, CP.entry(F2).Ref1);
  const CpEntry &N1 = CP.entry(CP.entry(F1).Ref2);
  const CpEntry &N2 = CP.entry(CP.entry(F2).Ref2);
  EXPECT_EQ(N1.Ref2, N2.Ref2) << "descriptor Utf8 shared";
}

TEST(Descriptor, ParsesFieldDescriptors) {
  auto T = parseFieldDescriptor("[[Ljava/lang/String;");
  ASSERT_TRUE(static_cast<bool>(T));
  EXPECT_EQ(T->Dims, 2);
  EXPECT_EQ(T->Base, 'L');
  EXPECT_EQ(T->ClassName, "java/lang/String");
  EXPECT_EQ(printTypeDesc(*T), "[[Ljava/lang/String;");

  auto P = parseFieldDescriptor("I");
  ASSERT_TRUE(static_cast<bool>(P));
  EXPECT_EQ(P->Base, 'I');
  EXPECT_EQ(vtypeOf(*P), VType::Int);
}

TEST(Descriptor, ParsesMethodDescriptors) {
  auto M = parseMethodDescriptor("(I[JLjava/lang/String;)Ljava/lang/Object;");
  ASSERT_TRUE(static_cast<bool>(M));
  ASSERT_EQ(M->Params.size(), 3u);
  EXPECT_EQ(M->Params[0].Base, 'I');
  EXPECT_EQ(M->Params[1].Dims, 1);
  EXPECT_EQ(M->Params[1].Base, 'J');
  EXPECT_EQ(M->Params[2].ClassName, "java/lang/String");
  EXPECT_EQ(M->Ret.ClassName, "java/lang/Object");
  EXPECT_EQ(printMethodDesc(*M),
            "(I[JLjava/lang/String;)Ljava/lang/Object;");
}

TEST(Descriptor, RejectsMalformed) {
  EXPECT_FALSE(static_cast<bool>(parseFieldDescriptor("")));
  EXPECT_FALSE(static_cast<bool>(parseFieldDescriptor("Q")));
  EXPECT_FALSE(static_cast<bool>(parseFieldDescriptor("Labc")));
  EXPECT_FALSE(static_cast<bool>(parseFieldDescriptor("II")));
  EXPECT_FALSE(static_cast<bool>(parseFieldDescriptor("V")));
  EXPECT_FALSE(static_cast<bool>(parseMethodDescriptor("()")));
  EXPECT_FALSE(static_cast<bool>(parseMethodDescriptor("(V)V")));
  EXPECT_FALSE(static_cast<bool>(parseMethodDescriptor("I")));
}

TEST(Transform, StripRemovesDebugAttributes) {
  ClassFile CF = makeSampleClass();
  static constexpr uint8_t SourceFileBytes[] = {0, 1};
  static constexpr uint8_t FancyBytes[] = {1, 2, 3};
  CF.Attributes.push_back({"SourceFile", SourceFileBytes});
  CF.Methods[0].Attributes.push_back({"UnknownFancyAttr", FancyBytes});
  stripDebugInfo(CF);
  EXPECT_EQ(findAttribute(CF.Attributes, "SourceFile"), nullptr);
  EXPECT_EQ(findAttribute(CF.Methods[0].Attributes, "UnknownFancyAttr"),
            nullptr);
  EXPECT_NE(findAttribute(CF.Methods[0].Attributes, "Code"), nullptr);
}

TEST(Transform, CanonicalizeGarbageCollects) {
  ClassFile CF = makeSampleClass();
  // Add garbage entries that nothing references.
  CF.CP.addUtf8("unused-string-constant-xyzzy");
  CF.CP.addClass("com/example/NeverReferenced");
  uint16_t Before = CF.CP.count();
  ASSERT_TRUE(!canonicalizeConstantPool(CF));
  EXPECT_LT(CF.CP.count(), Before);
  // The classfile still parses and refers to the right names.
  auto Parsed = parseClassFile(writeClassFile(CF));
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.message();
  EXPECT_EQ(Parsed->thisClassName(), "com/example/Sample");
}

TEST(Transform, CanonicalizeIsIdempotent) {
  ClassFile CF = makeSampleClass();
  ASSERT_TRUE(!prepareForPacking(CF));
  std::vector<uint8_t> Once = writeClassFile(CF);
  ASSERT_TRUE(!canonicalizeConstantPool(CF));
  EXPECT_EQ(writeClassFile(CF), Once);
}

TEST(Transform, LdcConstantsGetLowIndices) {
  ClassFile CF = makeSampleClass();
  ASSERT_TRUE(!prepareForPacking(CF));
  // Every ldc operand in every method must be <= 255 after
  // canonicalization (§9).
  for (const MemberInfo &M : CF.Methods) {
    const AttributeInfo *A = findAttribute(M.Attributes, "Code");
    if (!A)
      continue;
    auto Code = parseCodeAttribute(*A, CF.CP);
    ASSERT_TRUE(static_cast<bool>(Code));
    auto Insns = decodeCode(Code->Code);
    ASSERT_TRUE(static_cast<bool>(Insns));
    for (const Insn &I : *Insns)
      if (I.Opcode == Op::Ldc) {
        EXPECT_LE(I.CpIndex, 0xFF);
        EXPECT_TRUE(CF.CP.isValidIndex(I.CpIndex));
      }
  }
}

TEST(Transform, SortsUtf8ByContent) {
  ClassFile CF = makeSampleClass();
  ASSERT_TRUE(!prepareForPacking(CF));
  // All Utf8 entries must appear as one contiguous, sorted block.
  std::vector<std::string> Texts;
  for (uint16_t I = 1; I < CF.CP.count(); ++I)
    if (CF.CP.isValidIndex(I) && CF.CP.entry(I).Tag == CpTag::Utf8)
      Texts.emplace_back(CF.CP.utf8(I));
  ASSERT_FALSE(Texts.empty());
  EXPECT_TRUE(std::is_sorted(Texts.begin(), Texts.end()));
}

TEST(Transform, CanonicalizeRejectsUnknownAttributes) {
  ClassFile CF = makeSampleClass();
  static constexpr uint8_t MysteryBytes[] = {9, 9};
  CF.Attributes.push_back({"MysteryAttr", MysteryBytes});
  EXPECT_TRUE(static_cast<bool>(canonicalizeConstantPool(CF)));
}

TEST(CodeAttribute, ParseEncodeRoundTrip) {
  ClassFile CF = makeSampleClass();
  const AttributeInfo *A = findAttribute(CF.Methods[1].Attributes, "Code");
  ASSERT_NE(A, nullptr);
  auto Code = parseCodeAttribute(*A, CF.CP);
  ASSERT_TRUE(static_cast<bool>(Code));
  AttributeInfo Re = encodeCodeAttribute(*Code, CF.CP);
  EXPECT_TRUE(std::equal(Re.Bytes.begin(), Re.Bytes.end(), A->Bytes.begin(),
                         A->Bytes.end()));
}
