//===- test_preload.cpp - §14 preloaded standard references ---------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The §14 extension seeds both coder sides with a fixed table of
// standard references before any class is coded. These tests pin the
// contract: scheme support matches refSchemeSupportsPreload, encoder
// and decoder seed identically and stay in sync on the wire, preloaded
// names never pay for a definition, and unsupported schemes refuse to
// pack rather than desync.
//
//===----------------------------------------------------------------------===//

#include "classfile/Transform.h"
#include "classfile/Writer.h"
#include "corpus/Corpus.h"
#include "pack/Model.h"
#include "pack/Packer.h"
#include "pack/Preload.h"
#include <gtest/gtest.h>
#include <map>

using namespace cjpack;

namespace {

const RefScheme AllSchemes[] = {
    RefScheme::Simple,        RefScheme::Basic,
    RefScheme::Freq,          RefScheme::Cache,
    RefScheme::MtfBasic,      RefScheme::MtfTransients,
    RefScheme::MtfContext,    RefScheme::MtfTransientsContext,
};

CorpusSpec smallSpec(uint64_t Seed) {
  CorpusSpec S;
  S.Name = "preloadtest";
  S.Seed = Seed;
  S.NumClasses = 12;
  S.NumPackages = 2;
  S.MeanMethods = 5;
  S.MeanStatements = 8;
  return S;
}

} // namespace

TEST(Preload, SupportMatchesSchemeCapability) {
  for (RefScheme S : AllSchemes) {
    RefStats Stats;
    Model EncM;
    auto Enc = makeRefEncoder(S, &Stats);
    EXPECT_EQ(preloadStandardRefs(EncM, *Enc, S),
              refSchemeSupportsPreload(S))
        << refSchemeName(S);
    Model DecM;
    auto Dec = makeRefDecoder(S);
    EXPECT_EQ(preloadStandardRefs(DecM, *Dec, S),
              refSchemeSupportsPreload(S))
        << refSchemeName(S);
  }
}

TEST(Preload, EncoderAndDecoderSeedIdenticalModels) {
  for (RefScheme S : AllSchemes) {
    if (!refSchemeSupportsPreload(S))
      continue;
    RefStats Stats;
    Model EncM, DecM;
    auto Enc = makeRefEncoder(S, &Stats);
    auto Dec = makeRefDecoder(S);
    ASSERT_TRUE(preloadStandardRefs(EncM, *Enc, S));
    ASSERT_TRUE(preloadStandardRefs(DecM, *Dec, S));
    // Interning a standard name again must hit the preloaded entry and
    // return the same id on both sides.
    for (const char *Name :
         {"java/lang/Object", "java/lang/String", "java/util/Vector"}) {
      auto E = EncM.internClassByInternalName(Name);
      auto D = DecM.internClassByInternalName(Name);
      ASSERT_TRUE(static_cast<bool>(E));
      ASSERT_TRUE(static_cast<bool>(D));
      EXPECT_EQ(*E, *D) << Name << " under " << refSchemeName(S);
    }
    EXPECT_EQ(EncM.internMethodName("<init>"),
              DecM.internMethodName("<init>"));
    EXPECT_EQ(EncM.internFieldName("out"), DecM.internFieldName("out"));
  }
}

TEST(Preload, PreloadedReferencesNeedNoDefinition) {
  RefScheme S = RefScheme::MtfTransientsContext;
  RefStats Stats;
  Model EncM, DecM;
  auto Enc = makeRefEncoder(S, &Stats);
  auto Dec = makeRefDecoder(S);
  ASSERT_TRUE(preloadStandardRefs(EncM, *Enc, S));
  ASSERT_TRUE(preloadStandardRefs(DecM, *Dec, S));

  auto Obj = EncM.internClassByInternalName("java/lang/Object");
  ASSERT_TRUE(static_cast<bool>(Obj));
  ByteWriter W;
  // Already seeded: the encoder must not ask for a definition...
  EXPECT_FALSE(Enc->encode(poolId(PoolKind::ClassRefPool), 0, *Obj, W));
  uint32_t Name = EncM.internMethodName("toString");
  EXPECT_FALSE(Enc->encode(poolId(PoolKind::MethodName), 0, Name, W));

  // ...and the decoder must resolve the same ids from the same bytes.
  ByteReader R(W.data().data(), W.data().size());
  auto DecObj = Dec->decode(poolId(PoolKind::ClassRefPool), 0, R);
  ASSERT_TRUE(DecObj.has_value());
  EXPECT_EQ(*DecObj, *Obj);
  auto DecName = Dec->decode(poolId(PoolKind::MethodName), 0, R);
  ASSERT_TRUE(DecName.has_value());
  EXPECT_EQ(*DecName, Name);
  EXPECT_FALSE(R.hasError());
}

TEST(Preload, StandardNamesAreNeverDefinedOnTheWire) {
  std::vector<ClassFile> Classes = generateCorpusClasses(smallSpec(5));
  for (ClassFile &CF : Classes)
    ASSERT_FALSE(static_cast<bool>(prepareForPacking(CF)));
  PackOptions Plain;
  Plain.CompressStreams = false;
  PackOptions Pre = Plain;
  Pre.PreloadStandardRefs = true;
  auto Without = packClasses(Classes, Plain);
  auto With = packClasses(Classes, Pre);
  ASSERT_TRUE(static_cast<bool>(Without)) << Without.message();
  ASSERT_TRUE(static_cast<bool>(With)) << With.message();
  // java/lang & co. are seeded, so their package/simple-name characters
  // never appear in the class-name character stream.
  unsigned CNC = static_cast<unsigned>(StreamId::ClassNameChars);
  EXPECT_LT(With->Sizes.Raw[CNC], Without->Sizes.Raw[CNC]);
  unsigned SL = static_cast<unsigned>(StreamId::StringLengths);
  EXPECT_LT(With->Sizes.Raw[SL], Without->Sizes.Raw[SL]);
}

TEST(Preload, RoundTripsAtShardCounts1And4) {
  std::vector<ClassFile> Classes = generateCorpusClasses(smallSpec(9));
  for (ClassFile &CF : Classes)
    ASSERT_FALSE(static_cast<bool>(prepareForPacking(CF)));
  for (unsigned Shards : {1u, 4u}) {
    PackOptions Options;
    Options.PreloadStandardRefs = true;
    Options.Shards = Shards;
    auto Packed = packClasses(Classes, Options);
    ASSERT_TRUE(static_cast<bool>(Packed)) << Packed.message();
    auto Unpacked = unpackClasses(Packed->Archive);
    ASSERT_TRUE(static_cast<bool>(Unpacked)) << Unpacked.message();
    ASSERT_EQ(Unpacked->size(), Classes.size());
    std::map<std::string, std::vector<uint8_t>> Want;
    for (const ClassFile &CF : Classes)
      Want[std::string(CF.thisClassName())] = writeClassFile(CF);
    for (const ClassFile &CF : *Unpacked)
      EXPECT_EQ(writeClassFile(CF), Want[std::string(CF.thisClassName())])
          << CF.thisClassName() << " at " << Shards << " shards";
  }
}

TEST(Preload, PackingIsDeterministicWithPreload) {
  std::vector<ClassFile> Classes = generateCorpusClasses(smallSpec(13));
  for (ClassFile &CF : Classes)
    ASSERT_FALSE(static_cast<bool>(prepareForPacking(CF)));
  PackOptions Options;
  Options.PreloadStandardRefs = true;
  Options.Shards = 4;
  auto A = packClasses(Classes, Options);
  auto B = packClasses(Classes, Options);
  ASSERT_TRUE(static_cast<bool>(A)) << A.message();
  ASSERT_TRUE(static_cast<bool>(B)) << B.message();
  EXPECT_EQ(A->Archive, B->Archive);
}

TEST(Preload, UnsupportedSchemesRefuseToPack) {
  std::vector<ClassFile> Classes = generateCorpusClasses(smallSpec(17));
  for (ClassFile &CF : Classes)
    ASSERT_FALSE(static_cast<bool>(prepareForPacking(CF)));
  for (RefScheme S : {RefScheme::Freq, RefScheme::Cache}) {
    PackOptions Options;
    Options.Scheme = S;
    Options.PreloadStandardRefs = true;
    auto Packed = packClasses(Classes, Options);
    ASSERT_FALSE(static_cast<bool>(Packed)) << refSchemeName(S);
    EXPECT_NE(Packed.message().find("does not support preloaded"),
              std::string::npos)
        << Packed.message();
  }
}
