//===- test_corpus.cpp - synthetic corpus generator tests -----------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "classfile/Reader.h"
#include "classfile/Transform.h"
#include "classfile/Writer.h"
#include "bytecode/Instruction.h"
#include "corpus/Corpus.h"
#include "pack/ClassOrder.h"
#include <algorithm>
#include <gtest/gtest.h>
#include <set>

using namespace cjpack;

namespace {

CorpusSpec smallSpec(uint64_t Seed = 7, CodeStyle Style = CodeStyle::Balanced) {
  CorpusSpec S;
  S.Name = "unit";
  S.Seed = Seed;
  S.NumClasses = 25;
  S.NumPackages = 3;
  S.MeanMethods = 6;
  S.MeanStatements = 10;
  S.Code = Style;
  return S;
}

} // namespace

TEST(Corpus, GeneratesParsableClasses) {
  std::vector<NamedClass> Classes = generateCorpus(smallSpec());
  ASSERT_EQ(Classes.size(), 25u);
  for (const NamedClass &C : Classes) {
    auto CF = parseClassFile(C.Data);
    ASSERT_TRUE(static_cast<bool>(CF)) << C.Name << ": " << CF.message();
    EXPECT_EQ(std::string(CF->thisClassName()) + ".class", C.Name);
  }
}

TEST(Corpus, IsDeterministic) {
  std::vector<NamedClass> A = generateCorpus(smallSpec());
  std::vector<NamedClass> B = generateCorpus(smallSpec());
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].Name, B[I].Name);
    EXPECT_EQ(A[I].Data, B[I].Data);
  }
}

TEST(Corpus, DifferentSeedsDiffer) {
  std::vector<NamedClass> A = generateCorpus(smallSpec(1));
  std::vector<NamedClass> B = generateCorpus(smallSpec(2));
  EXPECT_NE(A[0].Data, B[0].Data);
}

TEST(Corpus, AllBytecodeDecodes) {
  for (CodeStyle Style : {CodeStyle::Balanced, CodeStyle::Numeric,
                          CodeStyle::StringHeavy}) {
    std::vector<ClassFile> Classes =
        generateCorpusClasses(smallSpec(11, Style));
    size_t Methods = 0;
    for (const ClassFile &CF : Classes) {
      for (const MemberInfo &M : CF.Methods) {
        const AttributeInfo *A = findAttribute(M.Attributes, "Code");
        if (!A)
          continue;
        auto Code = parseCodeAttribute(*A, CF.CP);
        ASSERT_TRUE(static_cast<bool>(Code)) << Code.message();
        auto Insns = decodeCode(Code->Code);
        ASSERT_TRUE(static_cast<bool>(Insns)) << Insns.message();
        std::vector<uint8_t> Re = encodeCode(*Insns);
        EXPECT_TRUE(std::equal(Re.begin(), Re.end(), Code->Code.begin(),
                               Code->Code.end()));
        ++Methods;
      }
    }
    EXPECT_GT(Methods, 50u);
  }
}

TEST(Corpus, ClassesSurvivePrepareForPacking) {
  std::vector<ClassFile> Classes = generateCorpusClasses(smallSpec(13));
  for (ClassFile &CF : Classes) {
    auto E = prepareForPacking(CF);
    ASSERT_FALSE(static_cast<bool>(E)) << E.message();
    auto Re = parseClassFile(writeClassFile(CF));
    ASSERT_TRUE(static_cast<bool>(Re)) << Re.message();
  }
}

TEST(Corpus, HierarchyReferencesGeneratedClasses) {
  std::vector<ClassFile> Classes = generateCorpusClasses(smallSpec(17));
  std::set<std::string, std::less<>> Names;
  for (const ClassFile &CF : Classes)
    Names.emplace(CF.thisClassName());
  unsigned InternalSupers = 0, Interfaces = 0;
  for (const ClassFile &CF : Classes) {
    if (Names.count(CF.superClassName()))
      ++InternalSupers;
    if (CF.AccessFlags & AccInterface)
      ++Interfaces;
  }
  EXPECT_GT(InternalSupers, 0u) << "some classes subclass generated ones";
  EXPECT_GT(Interfaces, 0u);
}

TEST(Corpus, EagerLoadOrderIsValid) {
  std::vector<ClassFile> Classes = generateCorpusClasses(smallSpec(19));
  // Generated order is already supertype-first (supers come from earlier
  // skeletons), and eagerLoadOrder must agree.
  std::vector<size_t> Order = eagerLoadOrder(Classes);
  ASSERT_EQ(Order.size(), Classes.size());
  std::vector<ClassFile> Reordered;
  for (size_t I : Order)
    Reordered.push_back(Classes[I]);
  EXPECT_TRUE(isEagerLoadable(Reordered));
}

TEST(Corpus, ShuffledClassesBecomeEagerLoadable) {
  std::vector<ClassFile> Classes = generateCorpusClasses(smallSpec(23));
  std::reverse(Classes.begin(), Classes.end());
  if (isEagerLoadable(Classes))
    GTEST_SKIP() << "reversal kept order valid; nothing to test";
  std::vector<size_t> Order = eagerLoadOrder(Classes);
  std::vector<ClassFile> Reordered;
  for (size_t I : Order)
    Reordered.push_back(Classes[I]);
  EXPECT_TRUE(isEagerLoadable(Reordered));
}

TEST(Corpus, ConstantPoolIsUtf8Dominant) {
  // Table 2's shape: Utf8 entries are the bulk of classfile bytes.
  std::vector<ClassFile> Classes = generateCorpusClasses(smallSpec(29));
  size_t Utf8Bytes = 0, Total = 0;
  for (ClassFile &CF : Classes) {
    ASSERT_FALSE(static_cast<bool>(prepareForPacking(CF)));
    std::vector<uint8_t> Bytes = writeClassFile(CF);
    Total += Bytes.size();
    for (uint16_t I = 1; I < CF.CP.count(); ++I)
      if (CF.CP.isValidIndex(I) && CF.CP.entry(I).Tag == CpTag::Utf8)
        Utf8Bytes += CF.CP.utf8(I).size() + 3;
  }
  double Share = static_cast<double>(Utf8Bytes) / Total;
  EXPECT_GT(Share, 0.35) << "Utf8 share too low for realism";
  EXPECT_LT(Share, 0.85);
}

TEST(Corpus, ObfuscatedStyleShrinksClasses) {
  // The name style perturbs the RNG sequence, so individual corpora are
  // noisy; sum across seeds so the shorter identifiers dominate.
  size_t NormalBytes = 0, ObfBytes = 0;
  for (uint64_t Seed : {31u, 32u, 33u, 34u}) {
    CorpusSpec Normal = smallSpec(Seed);
    Normal.NumClasses = 60;
    CorpusSpec Obf = Normal;
    Obf.Style = NameStyle::Obfuscated;
    NormalBytes += totalClassBytes(generateCorpus(Normal));
    ObfBytes += totalClassBytes(generateCorpus(Obf));
  }
  EXPECT_LT(ObfBytes, NormalBytes);
}

TEST(Corpus, PaperBenchmarksAreDefined) {
  std::vector<CorpusSpec> Specs = paperBenchmarks(0.1);
  ASSERT_EQ(Specs.size(), 19u);
  std::set<std::string> Names;
  for (const CorpusSpec &S : Specs) {
    EXPECT_TRUE(Names.insert(S.Name).second) << "duplicate " << S.Name;
    EXPECT_GE(S.NumClasses, 2u);
  }
  EXPECT_TRUE(Names.count("rt"));
  EXPECT_TRUE(Names.count("javac"));
  EXPECT_TRUE(Names.count("mpegaudio"));
  CorpusSpec Javac = paperBenchmark("javac", 0.05);
  EXPECT_EQ(Javac.Name, "javac");
}

TEST(Corpus, ScaleControlsClassCount) {
  CorpusSpec Full = paperBenchmark("javac", 1.0);
  CorpusSpec Tenth = paperBenchmark("javac", 0.1);
  EXPECT_GT(Full.NumClasses, Tenth.NumClasses * 8);
}
