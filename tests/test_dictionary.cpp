//===- test_dictionary.cpp - shared shard dictionary tests ----------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The version-2 archive preamble: definitions interned by two or more
// shards are factored into a SharedDictionary that both sides replay
// into every shard's model through the preload mechanism. These tests
// cover the frame's serialization, its corruption handling, and the
// pack-level contract that schemes without preload support degrade to
// an empty dictionary rather than failing.
//
//===----------------------------------------------------------------------===//

#include "classfile/Transform.h"
#include "corpus/Corpus.h"
#include "pack/Dictionary.h"
#include "pack/Packer.h"
#include "support/VarInt.h"
#include <gtest/gtest.h>

using namespace cjpack;

namespace {

SharedDictionary makeDictionary() {
  SharedDictionary D;
  D.Packages = {"com/example", "org/demo"};
  D.Simples = {"Widget", "Gadget", "Helper"};
  D.FieldNames = {"count", "name"};
  D.MethodNames = {"run", "close", "toString"};
  D.Strings = {"hello", "", "a longer shared string constant"};
  DictClassRef R;
  R.Dims = 0;
  R.Base = 'L';
  R.Package = 1;
  R.Simple = 2;
  D.ClassRefs.push_back(R);
  DictClassRef Prim;
  Prim.Dims = 2;
  Prim.Base = 'I';
  D.ClassRefs.push_back(Prim);
  return D;
}

std::vector<ClassFile> preparedCorpus(uint64_t Seed, unsigned NumClasses) {
  CorpusSpec S;
  S.Name = "dict";
  S.Seed = Seed;
  S.NumClasses = NumClasses;
  S.NumPackages = 3;
  std::vector<ClassFile> Classes = generateCorpusClasses(S);
  for (ClassFile &CF : Classes)
    EXPECT_FALSE(static_cast<bool>(prepareForPacking(CF)));
  return Classes;
}

} // namespace

TEST(SharedDictionaryFrame, RoundTripsThroughSerialization) {
  SharedDictionary D = makeDictionary();
  EXPECT_FALSE(D.empty());
  EXPECT_EQ(D.entryCount(), 15u);
  for (bool Compress : {true, false}) {
    ByteWriter W;
    D.serialize(W, Compress);
    std::vector<uint8_t> Bytes = W.take();
    ByteReader R(Bytes);
    auto Got = SharedDictionary::deserialize(R);
    ASSERT_TRUE(static_cast<bool>(Got)) << Got.message();
    EXPECT_TRUE(R.atEnd());
    EXPECT_EQ(Got->Packages, D.Packages);
    EXPECT_EQ(Got->Simples, D.Simples);
    EXPECT_EQ(Got->FieldNames, D.FieldNames);
    EXPECT_EQ(Got->MethodNames, D.MethodNames);
    EXPECT_EQ(Got->Strings, D.Strings);
    ASSERT_EQ(Got->ClassRefs.size(), 2u);
    EXPECT_EQ(Got->ClassRefs[0].Base, 'L');
    EXPECT_EQ(Got->ClassRefs[0].Package, 1u);
    EXPECT_EQ(Got->ClassRefs[0].Simple, 2u);
    EXPECT_EQ(Got->ClassRefs[1].Base, 'I');
    EXPECT_EQ(Got->ClassRefs[1].Dims, 2u);
  }
}

TEST(SharedDictionaryFrame, EmptyDictionaryFrameIsTiny) {
  SharedDictionary D;
  EXPECT_TRUE(D.empty());
  ByteWriter W;
  D.serialize(W, true);
  // Raw length 6 (six zero counts), stored verbatim: cheap enough to
  // carry unconditionally in every sharded archive.
  EXPECT_LE(W.size(), 8u);
  std::vector<uint8_t> Bytes = W.take();
  ByteReader R(Bytes);
  auto Got = SharedDictionary::deserialize(R);
  ASSERT_TRUE(static_cast<bool>(Got)) << Got.message();
  EXPECT_TRUE(Got->empty());
}

TEST(SharedDictionaryFrame, RejectsCorruption) {
  ByteWriter W;
  makeDictionary().serialize(W, false);
  std::vector<uint8_t> Bytes = W.take();
  // Truncation at several depths.
  for (size_t Cut : {size_t(1), Bytes.size() / 2, Bytes.size() - 1}) {
    std::vector<uint8_t> Short(Bytes.begin(),
                               Bytes.begin() + static_cast<long>(Cut));
    ByteReader R(Short);
    EXPECT_FALSE(static_cast<bool>(SharedDictionary::deserialize(R)))
        << Cut;
  }
  // A stored length larger than the raw length is implausible.
  ByteWriter Bad;
  writeVarUInt(Bad, 4);
  writeVarUInt(Bad, 9);
  for (int I = 0; I < 9; ++I)
    Bad.writeU1(0);
  std::vector<uint8_t> BadBytes = Bad.take();
  ByteReader R(BadBytes);
  EXPECT_FALSE(static_cast<bool>(SharedDictionary::deserialize(R)));
}

TEST(SharedDictionaryFrame, RejectsClassRefNamesOutOfRange) {
  SharedDictionary D;
  D.Packages = {"p"};
  D.Simples = {"S"};
  DictClassRef R;
  R.Base = 'L';
  R.Package = 0;
  R.Simple = 7; // beyond Simples
  D.ClassRefs.push_back(R);
  ByteWriter W;
  D.serialize(W, false);
  std::vector<uint8_t> Bytes = W.take();
  ByteReader Rd(Bytes);
  EXPECT_FALSE(static_cast<bool>(SharedDictionary::deserialize(Rd)));
}

TEST(PackDictionary, ShardedArchivesFactorSharedDefinitions) {
  auto Classes = preparedCorpus(8101, 32);
  PackOptions O;
  O.Shards = 4;
  auto Packed = packClasses(Classes, O);
  ASSERT_TRUE(static_cast<bool>(Packed)) << Packed.message();
  // The corpus shares packages, names, and class refs across shards,
  // so the default (MTF) scheme always finds entries to factor out.
  EXPECT_GT(Packed->DictionaryEntries, 0u);
  EXPECT_GT(Packed->DictionaryBytes, 0u);
  EXPECT_LT(Packed->DictionaryBytes, Packed->Archive.size());

  // Serial archives have no dictionary.
  auto Serial = packClasses(Classes, PackOptions());
  ASSERT_TRUE(static_cast<bool>(Serial)) << Serial.message();
  EXPECT_EQ(Serial->DictionaryEntries, 0u);
  EXPECT_EQ(Serial->DictionaryBytes, 0u);
}

TEST(PackDictionary, SchemesWithoutPreloadDegradeToEmptyDictionary) {
  auto Classes = preparedCorpus(8102, 24);
  auto Want = packClasses(Classes, PackOptions());
  ASSERT_TRUE(static_cast<bool>(Want)) << Want.message();

  for (RefScheme Scheme : {RefScheme::Freq, RefScheme::Cache}) {
    PackOptions O;
    O.Scheme = Scheme;
    O.Shards = 3;
    auto Packed = packClasses(Classes, O);
    ASSERT_TRUE(static_cast<bool>(Packed)) << Packed.message();
    EXPECT_EQ(Packed->DictionaryEntries, 0u);
    auto Out = unpackClasses(Packed->Archive);
    ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
    EXPECT_EQ(Out->size(), Classes.size());
  }
}

TEST(PackDictionary, PreloadedStandardRefsStayOutOfTheDictionary) {
  auto Classes = preparedCorpus(8103, 24);
  PackOptions Plain;
  Plain.Shards = 4;
  PackOptions Std = Plain;
  Std.PreloadStandardRefs = true;
  auto A = packClasses(Classes, Plain);
  auto B = packClasses(Classes, Std);
  ASSERT_TRUE(static_cast<bool>(A)) << A.message();
  ASSERT_TRUE(static_cast<bool>(B)) << B.message();
  // The §14 table covers java/lang and friends, which every shard
  // uses; with it preloaded those entries must not be re-shipped.
  EXPECT_LT(B->DictionaryEntries, A->DictionaryEntries);
  auto Out = unpackClasses(B->Archive);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  EXPECT_EQ(Out->size(), Classes.size());
}
