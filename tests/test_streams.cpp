//===- test_streams.cpp - stream-set serialization tests ------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/Rng.h"
#include "pack/Streams.h"
#include "support/VarInt.h"
#include <gtest/gtest.h>

using namespace cjpack;

namespace {

std::vector<uint8_t> fillStreams(StreamSet &S) {
  // Write recognizable content into a few streams.
  for (int I = 0; I < 1000; ++I) {
    writeVarUInt(S.out(StreamId::Counts), static_cast<uint64_t>(I));
    S.out(StreamId::Opcodes).writeU1(static_cast<uint8_t>(I % 7));
  }
  S.out(StreamId::NameChars).writeString("the quick brown fox");
  std::vector<uint8_t> Expected = {1, 2, 3, 4, 5};
  S.out(StreamId::Registers).writeBytes(Expected);
  return Expected;
}

} // namespace

TEST(StreamSet, SerializeDeserializeRoundTrip) {
  for (bool Compress : {true, false}) {
    StreamSet S;
    std::vector<uint8_t> Regs = fillStreams(S);
    StreamSizes Sizes;
    std::vector<uint8_t> Bytes = S.serialize(Compress, &Sizes);

    StreamSet S2;
    ByteReader R(Bytes);
    ASSERT_FALSE(static_cast<bool>(S2.deserialize(R))) << Compress;
    EXPECT_TRUE(R.atEnd());
    for (int I = 0; I < 1000; ++I) {
      EXPECT_EQ(readVarUInt(S2.in(StreamId::Counts)),
                static_cast<uint64_t>(I));
      EXPECT_EQ(S2.in(StreamId::Opcodes).readU1(), I % 7);
    }
    EXPECT_EQ(S2.in(StreamId::NameChars).readString(19),
              "the quick brown fox");
    EXPECT_EQ(S2.in(StreamId::Registers).readBytes(5), Regs);
  }
}

TEST(StreamSet, CompressionShrinksRedundantStreams) {
  StreamSet S;
  for (int I = 0; I < 5000; ++I)
    S.out(StreamId::Opcodes).writeU1(static_cast<uint8_t>(I % 3));
  StreamSizes Plain, Packed;
  size_t Raw = S.serialize(false, &Plain).size();
  size_t Comp = S.serialize(true, &Packed).size();
  EXPECT_LT(Comp, Raw / 5);
  EXPECT_EQ(Plain.Raw[static_cast<unsigned>(StreamId::Opcodes)], 5000u);
  EXPECT_LT(Packed.Packed[static_cast<unsigned>(StreamId::Opcodes)],
            200u);
}

TEST(StreamSet, IncompressibleStreamsAreStored) {
  StreamSet S;
  Rng R(9);
  for (int I = 0; I < 4096; ++I)
    S.out(StreamId::DoubleConsts).writeU1(static_cast<uint8_t>(R.next()));
  StreamSizes Sizes;
  std::vector<uint8_t> Bytes = S.serialize(true, &Sizes);
  unsigned Idx = static_cast<unsigned>(StreamId::DoubleConsts);
  // Stored verbatim: packed ≈ raw + small header.
  EXPECT_GE(Sizes.Packed[Idx], Sizes.Raw[Idx]);
  EXPECT_LE(Sizes.Packed[Idx], Sizes.Raw[Idx] + 16);
  StreamSet S2;
  ByteReader Rd(Bytes);
  ASSERT_FALSE(static_cast<bool>(S2.deserialize(Rd)));
}

TEST(StreamSet, SizesSumToSerializedBytes) {
  StreamSet S;
  fillStreams(S);
  StreamSizes Sizes;
  std::vector<uint8_t> Bytes = S.serialize(true, &Sizes);
  EXPECT_EQ(Sizes.totalPacked(), Bytes.size());
  size_t ByCategory = 0;
  for (StreamCategory C :
       {StreamCategory::Strings, StreamCategory::Opcodes,
        StreamCategory::Ints, StreamCategory::Refs, StreamCategory::Misc})
    ByCategory += Sizes.packedOf(C);
  EXPECT_EQ(ByCategory, Bytes.size());
}

TEST(StreamSet, DeserializeRejectsCorruption) {
  StreamSet S;
  fillStreams(S);
  std::vector<uint8_t> Bytes = S.serialize(true, nullptr);
  // Truncation at several depths.
  for (size_t Cut : {size_t(1), Bytes.size() / 3, Bytes.size() - 1}) {
    std::vector<uint8_t> Short(Bytes.begin(),
                               Bytes.begin() + static_cast<long>(Cut));
    StreamSet S2;
    ByteReader R(Short);
    EXPECT_TRUE(static_cast<bool>(S2.deserialize(R))) << Cut;
  }
  // Bad stream id in the first header byte.
  std::vector<uint8_t> Bad = Bytes;
  Bad[0] = 0xEE;
  StreamSet S3;
  ByteReader R(Bad);
  EXPECT_TRUE(static_cast<bool>(S3.deserialize(R)));
}

TEST(StreamSet, EveryStreamHasNameAndCategory) {
  for (unsigned I = 0; I < NumStreams; ++I) {
    StreamId Id = static_cast<StreamId>(I);
    EXPECT_STRNE(streamName(Id), "?");
    EXPECT_STRNE(streamCategoryName(streamCategory(Id)), "?");
  }
}

namespace {

/// Three shards with distinct content, one stream populated only by the
/// middle shard, and everything else empty.
std::vector<StreamSet> makeShardSets() {
  std::vector<StreamSet> Shards(3);
  for (size_t K = 0; K < Shards.size(); ++K) {
    for (int I = 0; I < 200 * (static_cast<int>(K) + 1); ++I)
      Shards[K].out(StreamId::Opcodes)
          .writeU1(static_cast<uint8_t>(I % 11 + static_cast<int>(K)));
    Shards[K].out(StreamId::NameChars)
        .writeString("shard" + std::to_string(K));
  }
  Shards[1].out(StreamId::Registers).writeBytes({9, 8, 7});
  return Shards;
}

} // namespace

TEST(ShardedStreams, RoundTripsThroughSerialization) {
  for (bool Compress : {true, false}) {
    std::vector<StreamSet> Shards = makeShardSets();
    StreamSizes Sizes;
    std::vector<uint8_t> Bytes =
        serializeShardedStreams(Shards, Compress, &Sizes);

    ByteReader R(Bytes);
    auto Got = deserializeShardedStreams(R);
    ASSERT_TRUE(static_cast<bool>(Got)) << Got.message();
    EXPECT_TRUE(R.atEnd());
    ASSERT_EQ(Got->size(), Shards.size());
    for (size_t K = 0; K < Shards.size(); ++K)
      for (unsigned I = 0; I < NumStreams; ++I) {
        StreamId Id = static_cast<StreamId>(I);
        const std::vector<uint8_t> &Raw = Shards[K].raw(Id);
        EXPECT_EQ((*Got)[K].in(Id).readBytes(Raw.size()), Raw);
        EXPECT_TRUE((*Got)[K].in(Id).atEnd());
      }
    // Accounting covers everything but the shard-count varint.
    EXPECT_EQ(Sizes.totalPacked() + 1, Bytes.size()) << Compress;
  }
}

TEST(ShardedStreams, GroupedCompressionSharesContextAcrossShards) {
  // The same incompressible bytes in every shard: per-shard deflate
  // stores four verbatim copies, the grouped container compresses the
  // repeats as back-references into the first shard's slice.
  Rng Random(11);
  std::vector<uint8_t> Noise;
  for (int I = 0; I < 3000; ++I)
    Noise.push_back(static_cast<uint8_t>(Random.next()));
  std::vector<StreamSet> Shards(4);
  size_t PerShardTotal = 0;
  for (StreamSet &S : Shards) {
    S.out(StreamId::Opcodes).writeBytes(Noise);
    PerShardTotal += S.serialize(true, nullptr).size();
  }
  std::vector<uint8_t> Grouped =
      serializeShardedStreams(Shards, true, nullptr);
  EXPECT_LT(Grouped.size(), PerShardTotal / 2);
}

TEST(ShardedStreams, RejectsImplausibleShardCounts) {
  for (uint64_t Count : {uint64_t(0), uint64_t(MaxShards + 1)}) {
    ByteWriter W;
    writeVarUInt(W, Count);
    std::vector<uint8_t> Bytes = W.take();
    ByteReader R(Bytes);
    EXPECT_FALSE(static_cast<bool>(deserializeShardedStreams(R)));
  }
}

TEST(ShardedStreams, RejectsCorruption) {
  std::vector<uint8_t> Bytes =
      serializeShardedStreams(makeShardSets(), true, nullptr);
  // Truncation at several depths.
  for (size_t Cut : {size_t(1), Bytes.size() / 3, Bytes.size() - 1}) {
    std::vector<uint8_t> Short(Bytes.begin(),
                               Bytes.begin() + static_cast<long>(Cut));
    ByteReader R(Short);
    EXPECT_FALSE(static_cast<bool>(deserializeShardedStreams(R))) << Cut;
  }
  // Bad stream id in the first header byte after the shard count.
  std::vector<uint8_t> Bad = Bytes;
  Bad[1] = 0xEE;
  ByteReader R(Bad);
  EXPECT_FALSE(static_cast<bool>(deserializeShardedStreams(R)));
}
