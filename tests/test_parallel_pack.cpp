//===- test_parallel_pack.cpp - sharded pipeline differential tests -------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The sharded pipeline's contract: for a fixed (input, options, shard
// count) the archive bytes are deterministic, shard-count 1 is
// byte-identical to the original version-1 wire format, and unpacking a
// sharded archive yields classfiles byte-identical to the serial
// pipeline's output for every shard count.
//
//===----------------------------------------------------------------------===//

#include "classfile/Transform.h"
#include "classfile/Writer.h"
#include "corpus/Corpus.h"
#include "pack/Packer.h"
#include "pack/Streams.h"
#include <gtest/gtest.h>
#include <map>

using namespace cjpack;

namespace {

std::vector<ClassFile> preparedCorpus(uint64_t Seed, unsigned NumClasses) {
  CorpusSpec S;
  S.Name = "parallel";
  S.Seed = Seed;
  S.NumClasses = NumClasses;
  S.NumPackages = 4;
  S.MeanMethods = 6;
  S.MeanStatements = 10;
  std::vector<ClassFile> Classes = generateCorpusClasses(S);
  for (ClassFile &CF : Classes)
    EXPECT_FALSE(static_cast<bool>(prepareForPacking(CF)));
  return Classes;
}

std::map<std::string, std::vector<uint8_t>>
bytesByName(const std::vector<ClassFile> &Classes) {
  std::map<std::string, std::vector<uint8_t>> Out;
  for (const ClassFile &CF : Classes)
    Out[CF.thisClassName()] = writeClassFile(CF);
  return Out;
}

} // namespace

TEST(ParallelPack, SingleShardIsByteIdenticalToSerialFormat) {
  auto Classes = preparedCorpus(7001, 24);
  auto Serial = packClasses(Classes, PackOptions());
  ASSERT_TRUE(static_cast<bool>(Serial)) << Serial.message();

  PackOptions O;
  O.Shards = 1;
  O.Threads = 4;
  auto OneShard = packClasses(Classes, O);
  ASSERT_TRUE(static_cast<bool>(OneShard)) << OneShard.message();

  EXPECT_EQ(OneShard->Archive, Serial->Archive);
  ASSERT_GE(Serial->Archive.size(), 5u);
  EXPECT_EQ(Serial->Archive[4], FormatVersionSerial);
}

TEST(ParallelPack, ShardedArchiveUsesVersionedHeader) {
  auto Classes = preparedCorpus(7002, 24);
  PackOptions O;
  O.Shards = 4;
  auto Packed = packClasses(Classes, O);
  ASSERT_TRUE(static_cast<bool>(Packed)) << Packed.message();
  ASSERT_GE(Packed->Archive.size(), 5u);
  EXPECT_EQ(Packed->Archive[4], FormatVersionSharded);
}

TEST(ParallelPack, RoundTripMatchesSerialAcrossShardCounts) {
  auto Classes = preparedCorpus(7003, 40);

  auto Serial = packClasses(Classes, PackOptions());
  ASSERT_TRUE(static_cast<bool>(Serial)) << Serial.message();
  auto SerialOut = unpackClasses(Serial->Archive);
  ASSERT_TRUE(static_cast<bool>(SerialOut)) << SerialOut.message();
  auto Want = bytesByName(*SerialOut);

  for (unsigned Shards : {1u, 2u, 4u, 8u}) {
    PackOptions O;
    O.Shards = Shards;
    O.Threads = 4;
    auto Packed = packClasses(Classes, O);
    ASSERT_TRUE(static_cast<bool>(Packed)) << Packed.message();
    for (unsigned Threads : {1u, 3u}) {
      auto Out = unpackClasses(Packed->Archive, Threads);
      ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
      ASSERT_EQ(Out->size(), Classes.size()) << "shards=" << Shards;
      auto Got = bytesByName(*Out);
      EXPECT_EQ(Got, Want) << "shards=" << Shards
                           << " threads=" << Threads;
    }
  }
}

TEST(ParallelPack, ArchiveBytesAreDeterministic) {
  auto Classes = preparedCorpus(7004, 32);
  PackOptions O;
  O.Shards = 4;
  for (unsigned Threads : {1u, 2u, 8u}) {
    O.Threads = Threads;
    auto A = packClasses(Classes, O);
    auto B = packClasses(Classes, O);
    ASSERT_TRUE(static_cast<bool>(A)) << A.message();
    ASSERT_TRUE(static_cast<bool>(B)) << B.message();
    EXPECT_EQ(A->Archive, B->Archive) << "threads=" << Threads;
  }
  // Thread count never changes the bytes; shard count may.
  O.Threads = 1;
  auto One = packClasses(Classes, O);
  O.Threads = 8;
  auto Eight = packClasses(Classes, O);
  ASSERT_TRUE(static_cast<bool>(One) && static_cast<bool>(Eight));
  EXPECT_EQ(One->Archive, Eight->Archive);
}

TEST(ParallelPack, ShardCountClampsToClassCount) {
  auto Classes = preparedCorpus(7005, 3);
  PackOptions O;
  O.Shards = 16;
  O.Threads = 2;
  auto Packed = packClasses(Classes, O);
  ASSERT_TRUE(static_cast<bool>(Packed)) << Packed.message();
  auto Out = unpackClasses(Packed->Archive);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  EXPECT_EQ(Out->size(), 3u);
}

TEST(ParallelPack, ShardedRoundTripUnderNonDefaultOptions) {
  auto Classes = preparedCorpus(7006, 24);
  auto Want = bytesByName(Classes);
  for (PackOptions O : {PackOptions()}) {
    O.Shards = 3;
    O.CompressStreams = false;
    auto Packed = packClasses(Classes, O);
    ASSERT_TRUE(static_cast<bool>(Packed)) << Packed.message();
    auto Out = unpackClasses(Packed->Archive);
    ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
    EXPECT_EQ(bytesByName(*Out), Want);

    O.CompressStreams = true;
    O.Scheme = RefScheme::Simple;
    Packed = packClasses(Classes, O);
    ASSERT_TRUE(static_cast<bool>(Packed)) << Packed.message();
    Out = unpackClasses(Packed->Archive);
    ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
    EXPECT_EQ(bytesByName(*Out), Want);
  }
}

TEST(ParallelPack, SizesAccumulateAcrossShards) {
  auto Classes = preparedCorpus(7007, 32);
  PackOptions O;
  O.Shards = 4;
  auto Packed = packClasses(Classes, O);
  ASSERT_TRUE(static_cast<bool>(Packed)) << Packed.message();
  EXPECT_EQ(Packed->ClassCount, 32u);
  // Header + shard table precede the payloads the accounting covers.
  EXPECT_GT(Packed->Sizes.totalPacked(), 0u);
  EXPECT_LT(Packed->Sizes.totalPacked(), Packed->Archive.size());
  EXPECT_GE(Packed->Archive.size(), Packed->Sizes.totalPacked() + 7);
}

TEST(ParallelPack, TruncatedShardedArchiveFailsCleanly) {
  auto Classes = preparedCorpus(7008, 16);
  PackOptions O;
  O.Shards = 4;
  auto Packed = packClasses(Classes, O);
  ASSERT_TRUE(static_cast<bool>(Packed)) << Packed.message();
  std::vector<uint8_t> Cut(Packed->Archive.begin(),
                           Packed->Archive.begin() +
                               Packed->Archive.size() / 2);
  auto Out = unpackClasses(Cut);
  EXPECT_FALSE(static_cast<bool>(Out));
}
