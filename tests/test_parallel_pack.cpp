//===- test_parallel_pack.cpp - sharded pipeline differential tests -------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The sharded pipeline's contract: for a fixed (input, options, shard
// count) the archive bytes are deterministic, shard-count 1 is
// byte-identical to the original version-1 wire format, and unpacking a
// sharded archive yields classfiles byte-identical to the serial
// pipeline's output for every shard count.
//
//===----------------------------------------------------------------------===//

#include "classfile/Transform.h"
#include "classfile/Writer.h"
#include "corpus/Corpus.h"
#include "pack/Dictionary.h"
#include "pack/Packer.h"
#include "pack/Streams.h"
#include "support/VarInt.h"
#include <gtest/gtest.h>
#include <map>

using namespace cjpack;

namespace {

std::vector<ClassFile> preparedCorpus(uint64_t Seed, unsigned NumClasses) {
  CorpusSpec S;
  S.Name = "parallel";
  S.Seed = Seed;
  S.NumClasses = NumClasses;
  S.NumPackages = 4;
  S.MeanMethods = 6;
  S.MeanStatements = 10;
  std::vector<ClassFile> Classes = generateCorpusClasses(S);
  for (ClassFile &CF : Classes)
    EXPECT_FALSE(static_cast<bool>(prepareForPacking(CF)));
  return Classes;
}

std::map<std::string, std::vector<uint8_t>>
bytesByName(const std::vector<ClassFile> &Classes) {
  std::map<std::string, std::vector<uint8_t>> Out;
  for (const ClassFile &CF : Classes)
    Out[std::string(CF.thisClassName())] = writeClassFile(CF);
  return Out;
}

} // namespace

TEST(ParallelPack, SingleShardIsByteIdenticalToSerialFormat) {
  auto Classes = preparedCorpus(7001, 24);
  auto Serial = packClasses(Classes, PackOptions());
  ASSERT_TRUE(static_cast<bool>(Serial)) << Serial.message();

  PackOptions O;
  O.Shards = 1;
  O.Threads = 4;
  auto OneShard = packClasses(Classes, O);
  ASSERT_TRUE(static_cast<bool>(OneShard)) << OneShard.message();

  EXPECT_EQ(OneShard->Archive, Serial->Archive);
  ASSERT_GE(Serial->Archive.size(), 5u);
  EXPECT_EQ(Serial->Archive[4], FormatVersionSerial);
}

TEST(ParallelPack, ShardedArchiveUsesVersionedHeader) {
  auto Classes = preparedCorpus(7002, 24);
  PackOptions O;
  O.Shards = 4;
  auto Packed = packClasses(Classes, O);
  ASSERT_TRUE(static_cast<bool>(Packed)) << Packed.message();
  ASSERT_GE(Packed->Archive.size(), 5u);
  EXPECT_EQ(Packed->Archive[4], FormatVersionSharded);
}

TEST(ParallelPack, RoundTripMatchesSerialAcrossShardCounts) {
  auto Classes = preparedCorpus(7003, 40);

  auto Serial = packClasses(Classes, PackOptions());
  ASSERT_TRUE(static_cast<bool>(Serial)) << Serial.message();
  auto SerialOut = unpackClasses(Serial->Archive);
  ASSERT_TRUE(static_cast<bool>(SerialOut)) << SerialOut.message();
  auto Want = bytesByName(*SerialOut);

  for (unsigned Shards : {1u, 2u, 4u, 8u}) {
    PackOptions O;
    O.Shards = Shards;
    O.Threads = 4;
    auto Packed = packClasses(Classes, O);
    ASSERT_TRUE(static_cast<bool>(Packed)) << Packed.message();
    for (unsigned Threads : {1u, 3u}) {
      auto Out = unpackClasses(Packed->Archive, Threads);
      ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
      ASSERT_EQ(Out->size(), Classes.size()) << "shards=" << Shards;
      auto Got = bytesByName(*Out);
      EXPECT_EQ(Got, Want) << "shards=" << Shards
                           << " threads=" << Threads;
    }
  }
}

TEST(ParallelPack, ArchiveBytesAreDeterministic) {
  auto Classes = preparedCorpus(7004, 32);
  PackOptions O;
  O.Shards = 4;
  for (unsigned Threads : {1u, 2u, 8u}) {
    O.Threads = Threads;
    auto A = packClasses(Classes, O);
    auto B = packClasses(Classes, O);
    ASSERT_TRUE(static_cast<bool>(A)) << A.message();
    ASSERT_TRUE(static_cast<bool>(B)) << B.message();
    EXPECT_EQ(A->Archive, B->Archive) << "threads=" << Threads;
  }
  // Thread count never changes the bytes; shard count may.
  O.Threads = 1;
  auto One = packClasses(Classes, O);
  O.Threads = 8;
  auto Eight = packClasses(Classes, O);
  ASSERT_TRUE(static_cast<bool>(One) && static_cast<bool>(Eight));
  EXPECT_EQ(One->Archive, Eight->Archive);
}

TEST(ParallelPack, ShardCountClampsToClassCount) {
  auto Classes = preparedCorpus(7005, 3);
  PackOptions O;
  O.Shards = 16;
  O.Threads = 2;
  auto Packed = packClasses(Classes, O);
  ASSERT_TRUE(static_cast<bool>(Packed)) << Packed.message();
  auto Out = unpackClasses(Packed->Archive);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  EXPECT_EQ(Out->size(), 3u);
}

TEST(ParallelPack, ShardedRoundTripUnderNonDefaultOptions) {
  auto Classes = preparedCorpus(7006, 24);
  auto Want = bytesByName(Classes);
  for (PackOptions O : {PackOptions()}) {
    O.Shards = 3;
    O.CompressStreams = false;
    auto Packed = packClasses(Classes, O);
    ASSERT_TRUE(static_cast<bool>(Packed)) << Packed.message();
    auto Out = unpackClasses(Packed->Archive);
    ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
    EXPECT_EQ(bytesByName(*Out), Want);

    O.CompressStreams = true;
    O.Scheme = RefScheme::Simple;
    Packed = packClasses(Classes, O);
    ASSERT_TRUE(static_cast<bool>(Packed)) << Packed.message();
    Out = unpackClasses(Packed->Archive);
    ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
    EXPECT_EQ(bytesByName(*Out), Want);
  }
}

TEST(ParallelPack, SizesAccumulateAcrossShards) {
  auto Classes = preparedCorpus(7007, 32);
  PackOptions O;
  O.Shards = 4;
  auto Packed = packClasses(Classes, O);
  ASSERT_TRUE(static_cast<bool>(Packed)) << Packed.message();
  EXPECT_EQ(Packed->ClassCount, 32u);
  // Header + shard table precede the payloads the accounting covers.
  EXPECT_GT(Packed->Sizes.totalPacked(), 0u);
  EXPECT_LT(Packed->Sizes.totalPacked(), Packed->Archive.size());
  EXPECT_GE(Packed->Archive.size(), Packed->Sizes.totalPacked() + 7);
}

TEST(ParallelPack, TruncatedShardedArchiveFailsCleanly) {
  auto Classes = preparedCorpus(7008, 16);
  PackOptions O;
  O.Shards = 4;
  auto Packed = packClasses(Classes, O);
  ASSERT_TRUE(static_cast<bool>(Packed)) << Packed.message();
  std::vector<uint8_t> Cut(Packed->Archive.begin(),
                           Packed->Archive.begin() +
                               Packed->Archive.size() / 2);
  auto Out = unpackClasses(Cut);
  EXPECT_FALSE(static_cast<bool>(Out));
}

namespace {

/// The seven-byte archive header: magic, version, scheme, flags.
void writeArchiveHeader(ByteWriter &W, uint8_t Version) {
  W.writeU4(0x434A504Bu);
  W.writeU1(Version);
  W.writeU1(static_cast<uint8_t>(RefScheme::MtfTransientsContext));
  W.writeU1(0);
}

} // namespace

TEST(ParallelPack, TruncatedShardTableFailsCleanly) {
  // A sharded header promising shards but ending right after the shard
  // count: the shard table itself is the truncation point.
  ByteWriter W;
  writeArchiveHeader(W, FormatVersionSharded);
  writeVarUInt(W, 0); // empty dictionary frame: raw length 0
  writeVarUInt(W, 0); // stored length 0
  writeVarUInt(W, 3); // three shards, then nothing
  auto Out = unpackClasses(W.take());
  ASSERT_FALSE(static_cast<bool>(Out));
  EXPECT_NE(Out.code(), ErrorCode::Other) << Out.message();
}

TEST(ParallelPack, DictionaryClassRefOutOfRangeFailsCleanly) {
  // A dictionary whose class ref indexes package 5 of an empty package
  // list must be rejected at deserialize time, before any shard can
  // replay it into a model.
  ByteWriter Body;
  for (int List = 0; List < 5; ++List)
    writeVarUInt(Body, 0); // Packages..Strings all empty
  writeVarUInt(Body, 1);   // one class ref
  Body.writeU1(0);         // dims
  Body.writeU1('L');
  writeVarUInt(Body, 5); // package index into the empty list
  writeVarUInt(Body, 0);
  std::vector<uint8_t> Raw = Body.take();
  ByteWriter Frame;
  writeVarUInt(Frame, Raw.size());
  writeVarUInt(Frame, Raw.size()); // stored == raw: not deflated
  Frame.writeBytes(Raw);
  std::vector<uint8_t> Bytes = Frame.take();
  ByteReader R(Bytes);
  auto Dict = SharedDictionary::deserialize(R);
  ASSERT_FALSE(static_cast<bool>(Dict));
  EXPECT_EQ(Dict.code(), ErrorCode::Corrupt) << Dict.message();
}

TEST(ParallelPack, DuplicateStreamIdFailsCleanly) {
  // A sharded container repeating stream id 0 where id 1 belongs: ids
  // must appear in order, or some stream's reader would never be
  // populated.
  ByteWriter W;
  writeVarUInt(W, 1); // one shard
  for (int Stream = 0; Stream < 2; ++Stream) {
    W.writeU1(0); // id 0 twice
    W.writeU1(0); // method: stored
    writeVarUInt(W, 0); // shard raw length
    writeVarUInt(W, 0); // stored length
  }
  std::vector<uint8_t> Bytes = W.take();
  ByteReader R(Bytes);
  auto Shards = deserializeShardedStreams(R);
  ASSERT_FALSE(static_cast<bool>(Shards));
  EXPECT_EQ(Shards.code(), ErrorCode::Corrupt) << Shards.message();
}

TEST(ParallelPack, SerialStreamSetWithShuffledIdsFailsCleanly) {
  // The version-1 body writes all 21 streams in id order; a swapped id
  // byte used to leave a null stream reader behind. It must be Corrupt.
  auto Classes = preparedCorpus(7009, 8);
  auto Packed = packClasses(Classes, PackOptions());
  ASSERT_TRUE(static_cast<bool>(Packed)) << Packed.message();
  std::vector<uint8_t> Mutant = Packed->Archive;
  // Byte 7 is the first stream header's id byte (header is 7 bytes).
  ASSERT_EQ(Mutant[7], 0);
  Mutant[7] = 5;
  auto Out = unpackClasses(Mutant);
  ASSERT_FALSE(static_cast<bool>(Out));
  EXPECT_EQ(Out.code(), ErrorCode::Corrupt) << Out.message();
}
