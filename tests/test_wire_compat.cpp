//===- test_wire_compat.cpp - golden archive-byte compatibility -----------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The differential gate for codec refactors: archives packed from a
// pinned corpus must stay byte-for-byte identical to golden SHA-1
// hashes recorded from the pre-refactor encoder, across corpus styles,
// shard counts 1 and 4, preload, opcode collapsing off, ordering off,
// and every reference scheme. Uncompressed archives are asserted
// unconditionally (pure function of the codec); compressed archives
// additionally depend on the zlib version, so those hashes are only
// asserted under the zlib they were recorded with.
//
// To regenerate after an INTENDED wire change (which must also bump the
// format version): print sha1Hex(packClassBytes(...)->Archive) for each
// key below with Threads=2 and update the table.
//
// Also checks here because it shares the corpus: the statPackedArchive
// sum identity (header + index + dictionary + per-stream packed ==
// archive bytes), its agreement with the encoder's own accounting, and
// the cross-version decode matrix (each decoder accepts exactly the
// versions it claims, with typed VersionMismatch otherwise).
//
//===----------------------------------------------------------------------===//

#include "classfile/Writer.h"
#include "corpus/Corpus.h"
#include "pack/ArchiveReader.h"
#include "pack/Packer.h"
#include "pack/Stats.h"
#include "support/Sha1.h"
#include <gtest/gtest.h>
#include <map>
#include <string>
#include <zlib.h>

using namespace cjpack;

namespace {

/// zlib version the compressed golden hashes were recorded under.
const char *const GoldenZlib = "1.2.13";

/// zlib version the backend rows' dictionary frames were recorded
/// under (the backend registry postdates the 1.2.13 rows above).
const char *const BackendGoldenZlib = "1.3.1";

/// Sentinel for expectGolden: infer the zlib dependence from the pack
/// options (compressed → GoldenZlib, uncompressed → none).
const char *const InferZlibDep = "";

/// Golden SHA-1 of the archive bytes for each (corpus, options) key.
const std::map<std::string, std::string> GoldenHashes = {
    {"balanced/s1/raw", "bf33effb4a399a16d75c0880ebb68608fd348ab8"},
    {"balanced/s1/z", "bfb18d229ef015baf43db7dbf16bae16b88a5840"},
    {"balanced/s4/raw", "7cad34cc0afbd91947cf1252d73998b88b4e3dca"},
    {"balanced/s4/z", "1b9c7330b06d97bdf8705f0b49f6c27b581758c5"},
    {"numeric/s1/raw", "bc5031a55f75dcf2699aa82ce30f42b4a5728b3a"},
    {"numeric/s1/z", "45d50643bfceb432e6283fc8cc452a17731dd750"},
    {"numeric/s4/raw", "981b1c869fef3335322bb807b6e47cf854f58484"},
    {"numeric/s4/z", "7e080afad124b0d4e7010d518d9d6f2af7d95303"},
    {"stringheavy/s1/raw", "f5a558f93ecbe0dcb45c505459d069fdc92a2855"},
    {"stringheavy/s1/z", "b6658014fff2b0c1ef53a786e43bb847fbe9f22f"},
    {"stringheavy/s4/raw", "83d3025a9809256514e25f2db8ef632f61d66b4f"},
    {"stringheavy/s4/z", "efaf1f519e6b74b0b91353f1d3ba2c2f1a61a301"},
    {"balanced/s1/preload", "9d2c8af60b868c44523825e80cf02fe9c01a703b"},
    {"balanced/s4/preload", "7a671cb18780a1d3a1829067a20b21703c641f59"},
    {"balanced/s1/nocollapse", "73412ab33f34329d0e8c0b00c7b9465b860a3802"},
    {"balanced/s1/noorder", "bf33effb4a399a16d75c0880ebb68608fd348ab8"},
    {"balanced/s1/scheme-Simple",
     "f034dda72c7c8c5b625e1392661b8aa22e148739"},
    {"balanced/s1/scheme-Basic",
     "d6941b715ad16d7f3d8f5db7b498506e00d577b5"},
    {"balanced/s1/scheme-Freq",
     "136c9b08f4eb30b71ada9cf812d1cef41a1ff42f"},
    {"balanced/s1/scheme-Cache",
     "0e3319f04144edd25c1845a448947325d9d21c25"},
    {"balanced/s1/scheme-MTF Basic",
     "c11324435557831ef943fa437cc6f5e95bfa6096"},
    {"balanced/s1/scheme-MTF Transients",
     "fe054393c6fc725162bdb0d0739dfde8d6d42378"},
    {"balanced/s1/scheme-MTF Context",
     "8c886cd993767368c599c06c904940f80a2ccead"},
    {"balanced/s1/scheme-MTF Trans+Ctx",
     "bf33effb4a399a16d75c0880ebb68608fd348ab8"},
    {"balanced/s4/scheme-Simple",
     "aff35dddd467cb31431c650701a7ed761b030c5e"},
    {"balanced/s4/scheme-Basic",
     "ac1943a87e5771ad1128893710c2ef4b93414c3e"},
    {"balanced/s4/scheme-Freq",
     "dc6a0fd9051860c2091b0d689829f1a70deb9946"},
    {"balanced/s4/scheme-Cache",
     "20b590e05e55fbc7aa6afa018c0d6c6fb20c48cd"},
    {"balanced/s4/scheme-MTF Basic",
     "3889b7dbbc228ff8ccf1937d2f2b0c5608a4d4ab"},
    {"balanced/s4/scheme-MTF Transients",
     "e669a933514839b042d6b2684c4f17635e1e6c3e"},
    {"balanced/s4/scheme-MTF Context",
     "9d5e3ae13f6e8c67331d1bf67a00e19b8b500c17"},
    {"balanced/s4/scheme-MTF Trans+Ctx",
     "7cad34cc0afbd91947cf1252d73998b88b4e3dca"},
    // Version-3 indexed archives. These rows pin the v3 layout itself;
    // the rows above double as proof the v3 code path leaves v1/v2
    // byte-identical.
    {"balanced/s1/v3raw", "180936faf6d5b9160b1c22fe49b506f0216dbb69"},
    {"balanced/s1/v3z", "77a4d2bba68f5724c3c50c81ce7d635db38eb2a0"},
    {"balanced/s4/v3raw", "acdbc96f64b3d2a5a630525da52e04a94e742414"},
    {"balanced/s4/v3z", "ceaa75bdc726bae3388669596e68de3c024059f4"},
    // Non-default compression backends. The s1 rows are zlib-free (a
    // version-1 archive has no dictionary frame), so they hold under
    // any zlib; the s4 rows deflate the dictionary and are pinned to
    // BackendGoldenZlib.
    {"balanced/s1/b-store", "8e2e977765132ab6626d7fd1d278444ee34e587d"},
    {"balanced/s1/b-huffman",
     "358f66e9215dc23689a47fe115bfcc16c04b9f2a"},
    {"balanced/s4/b-store", "03f11144bdf4f19fd423aad32f98845e192babc9"},
    {"balanced/s4/b-huffman",
     "6671f354536aad39321bdbf58e8ddb3b160d4084"},
};

std::vector<NamedClass> corpusFor(CodeStyle Style) {
  CorpusSpec Spec;
  Spec.Name = "wirecompat";
  Spec.Seed = 1234;
  Spec.NumClasses = 48;
  Spec.NumPackages = 4;
  Spec.MeanMethods = 6;
  Spec.MeanStatements = 10;
  Spec.Code = Style;
  return generateCorpus(Spec);
}

/// Packs (Threads=2, like the recording run) and checks the archive
/// hash against the golden table, plus the stats sum identity.
/// \p RequiredZlib names the zlib version the row's bytes depend on:
/// InferZlibDep derives it from the options (the historical rows),
/// nullptr asserts the archive contains no zlib output at all, so the
/// hash holds under any zlib.
void expectGolden(const std::string &Key,
                  const std::vector<NamedClass> &Classes,
                  PackOptions Options,
                  const char *RequiredZlib = InferZlibDep) {
  Options.Threads = 2;
  auto Packed = packClassBytes(Classes, Options);
  ASSERT_TRUE(static_cast<bool>(Packed)) << Key << ": "
                                         << Packed.message();

  // Composition identity: the wire-level walk must account for every
  // archive byte and agree with the encoder's own per-stream packing.
  auto Stats = statPackedArchive(Packed->Archive);
  ASSERT_TRUE(static_cast<bool>(Stats)) << Key << ": "
                                        << Stats.message();
  EXPECT_EQ(Stats->HeaderBytes + Stats->IndexBytes +
                Stats->DictionaryBytes + Stats->Sizes.totalPacked(),
            Packed->Archive.size())
      << Key;
  EXPECT_EQ(Stats->IndexBytes, Packed->IndexBytes) << Key;
  for (unsigned I = 0; I < NumStreams; ++I) {
    EXPECT_EQ(Stats->Sizes.Raw[I], Packed->Sizes.Raw[I])
        << Key << " raw " << streamName(static_cast<StreamId>(I));
    EXPECT_EQ(Stats->Sizes.Packed[I], Packed->Sizes.Packed[I])
        << Key << " packed " << streamName(static_cast<StreamId>(I));
  }

  if (RequiredZlib == InferZlibDep)
    RequiredZlib = Options.CompressStreams ? GoldenZlib : nullptr;
  if (RequiredZlib && std::string(zlibVersion()) != RequiredZlib)
    GTEST_SKIP() << "golden recorded under zlib " << RequiredZlib
                 << ", running " << zlibVersion();
  auto It = GoldenHashes.find(Key);
  ASSERT_NE(It, GoldenHashes.end()) << "no golden hash for " << Key;
  EXPECT_EQ(sha1Hex(Packed->Archive), It->second)
      << Key << ": archive bytes changed — wire format break";
}

} // namespace

class WireCompatStyles
    : public ::testing::TestWithParam<std::tuple<CodeStyle, unsigned>> {};

TEST_P(WireCompatStyles, UncompressedArchiveMatchesGolden) {
  auto [Style, Shards] = GetParam();
  const char *Name = Style == CodeStyle::Balanced    ? "balanced"
                     : Style == CodeStyle::Numeric   ? "numeric"
                                                     : "stringheavy";
  PackOptions Raw;
  Raw.Shards = Shards;
  Raw.CompressStreams = false;
  expectGolden(std::string(Name) + "/s" + std::to_string(Shards) +
                   "/raw",
               corpusFor(Style), Raw);
}

TEST_P(WireCompatStyles, CompressedArchiveMatchesGolden) {
  auto [Style, Shards] = GetParam();
  const char *Name = Style == CodeStyle::Balanced    ? "balanced"
                     : Style == CodeStyle::Numeric   ? "numeric"
                                                     : "stringheavy";
  PackOptions Z;
  Z.Shards = Shards;
  expectGolden(std::string(Name) + "/s" + std::to_string(Shards) + "/z",
               corpusFor(Style), Z);
}

INSTANTIATE_TEST_SUITE_P(
    AllStyles, WireCompatStyles,
    ::testing::Combine(::testing::Values(CodeStyle::Balanced,
                                         CodeStyle::Numeric,
                                         CodeStyle::StringHeavy),
                       ::testing::Values(1u, 4u)));

TEST(WireCompat, PreloadedArchives) {
  auto Classes = corpusFor(CodeStyle::Balanced);
  for (unsigned Shards : {1u, 4u}) {
    PackOptions Options;
    Options.Shards = Shards;
    Options.CompressStreams = false;
    Options.PreloadStandardRefs = true;
    expectGolden("balanced/s" + std::to_string(Shards) + "/preload",
                 Classes, Options);
  }
}

TEST(WireCompat, CollapseAndOrderingKnobs) {
  auto Classes = corpusFor(CodeStyle::Balanced);
  PackOptions NoCollapse;
  NoCollapse.CompressStreams = false;
  NoCollapse.CollapseOpcodes = false;
  expectGolden("balanced/s1/nocollapse", Classes, NoCollapse);
  PackOptions NoOrder;
  NoOrder.CompressStreams = false;
  NoOrder.OrderForEagerLoading = false;
  expectGolden("balanced/s1/noorder", Classes, NoOrder);
}

TEST(WireCompat, EveryReferenceScheme) {
  auto Classes = corpusFor(CodeStyle::Balanced);
  for (unsigned Shards : {1u, 4u}) {
    for (uint8_t S = 0;
         S <= static_cast<uint8_t>(RefScheme::MtfTransientsContext);
         ++S) {
      PackOptions Options;
      Options.Shards = Shards;
      Options.CompressStreams = false;
      Options.Scheme = static_cast<RefScheme>(S);
      expectGolden("balanced/s" + std::to_string(Shards) + "/scheme-" +
                       refSchemeName(Options.Scheme),
                   Classes, Options);
    }
  }
}

TEST(WireCompat, IndexedArchives) {
  auto Classes = corpusFor(CodeStyle::Balanced);
  for (unsigned Shards : {1u, 4u}) {
    PackOptions Raw;
    Raw.Shards = Shards;
    Raw.CompressStreams = false;
    Raw.RandomAccessIndex = true;
    expectGolden("balanced/s" + std::to_string(Shards) + "/v3raw",
                 Classes, Raw);
    PackOptions Z;
    Z.Shards = Shards;
    Z.RandomAccessIndex = true;
    expectGolden("balanced/s" + std::to_string(Shards) + "/v3z", Classes,
                 Z);
  }
}

// The pluggable backends pin their own wire bytes: the per-stream
// method bytes, the header backend code, and the codec output itself.
// (The zlib rows above double as proof the registry leaves the default
// pipeline byte-identical.)
TEST(WireCompat, BackendArchives) {
  auto Classes = corpusFor(CodeStyle::Balanced);
  for (unsigned Shards : {1u, 4u}) {
    for (BackendId Backend : {BackendId::Store, BackendId::Huffman}) {
      PackOptions Options;
      Options.Shards = Shards;
      Options.Backend = Backend;
      expectGolden("balanced/s" + std::to_string(Shards) + "/b-" +
                       backendName(Backend),
                   Classes, Options,
                   Shards == 1 ? nullptr : BackendGoldenZlib);
    }
  }
}

// Each decoder must accept exactly the versions it claims and reject
// the rest with a typed VersionMismatch — never a crash, never a decode
// of bytes laid out for a different version.
TEST(WireCompat, CrossVersionDecodeMatrix) {
  auto Classes = corpusFor(CodeStyle::Balanced);
  PackOptions V1;
  V1.Shards = 1;
  PackOptions V2;
  V2.Shards = 4;
  V2.Threads = 2;
  PackOptions V3 = V2;
  V3.RandomAccessIndex = true;
  auto P1 = packClassBytes(Classes, V1);
  auto P2 = packClassBytes(Classes, V2);
  auto P3 = packClassBytes(Classes, V3);
  ASSERT_TRUE(P1 && P2 && P3);
  ASSERT_EQ(P1->Archive[4], FormatVersionSerial);
  ASSERT_EQ(P2->Archive[4], FormatVersionSharded);
  ASSERT_EQ(P3->Archive[4], FormatVersionIndexed);

  // The whole-archive decoder handles v1/v2, rejects v3.
  EXPECT_TRUE(static_cast<bool>(unpackClasses(P1->Archive)));
  EXPECT_TRUE(static_cast<bool>(unpackClasses(P2->Archive)));
  auto RejectV3 = unpackClasses(P3->Archive);
  ASSERT_FALSE(static_cast<bool>(RejectV3));
  EXPECT_EQ(RejectV3.code(), ErrorCode::VersionMismatch);

  // The lazy reader handles v3, rejects v1/v2.
  EXPECT_TRUE(static_cast<bool>(PackedArchiveReader::open(P3->Archive)));
  for (const auto *P : {&P1, &P2}) {
    auto Reject = PackedArchiveReader::open((*P)->Archive);
    ASSERT_FALSE(static_cast<bool>(Reject));
    EXPECT_EQ(Reject.code(), ErrorCode::VersionMismatch);
  }

  // An unknown future version is VersionMismatch everywhere.
  std::vector<uint8_t> Future = P1->Archive;
  Future[4] = 99;
  auto U = unpackClasses(Future);
  ASSERT_FALSE(static_cast<bool>(U));
  EXPECT_EQ(U.code(), ErrorCode::VersionMismatch);
  auto R = PackedArchiveReader::open(Future);
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_EQ(R.code(), ErrorCode::VersionMismatch);
  auto S = statPackedArchive(Future);
  ASSERT_FALSE(static_cast<bool>(S));
  EXPECT_EQ(S.code(), ErrorCode::VersionMismatch);

  // Stats reads all three real versions.
  for (const auto *P : {&P1, &P2, &P3})
    EXPECT_TRUE(static_cast<bool>(statPackedArchive((*P)->Archive)));

  // The decoders agree: all three versions of the same input unpack to
  // the identical classfiles.
  auto C1 = unpackClasses(P1->Archive);
  auto C2 = unpackClasses(P2->Archive, 2u);
  auto Rd = PackedArchiveReader::open(P3->Archive);
  ASSERT_TRUE(C1 && C2 && Rd);
  auto C3 = Rd->unpackAll();
  ASSERT_TRUE(static_cast<bool>(C3));
  ASSERT_EQ(C1->size(), Classes.size());
  ASSERT_EQ(C2->size(), Classes.size());
  ASSERT_EQ(C3->size(), Classes.size());
  for (size_t I = 0; I < C1->size(); ++I) {
    EXPECT_EQ(writeClassFile((*C1)[I]), writeClassFile((*C2)[I])) << I;
    EXPECT_EQ(writeClassFile((*C2)[I]), writeClassFile((*C3)[I])) << I;
  }
}

TEST(WireCompat, StatsRejectsMalformedFraming) {
  auto Classes = corpusFor(CodeStyle::Balanced);
  PackOptions Options;
  Options.Shards = 4;
  auto Packed = packClassBytes(Classes, Options);
  ASSERT_TRUE(static_cast<bool>(Packed)) << Packed.message();

  std::vector<uint8_t> Bad = Packed->Archive;
  Bad[0] ^= 0xFF; // magic
  EXPECT_FALSE(static_cast<bool>(statPackedArchive(Bad)));

  Bad = Packed->Archive;
  Bad[4] = 99; // version
  EXPECT_FALSE(static_cast<bool>(statPackedArchive(Bad)));

  Bad = Packed->Archive;
  Bad.resize(Bad.size() / 2); // truncation
  EXPECT_FALSE(static_cast<bool>(statPackedArchive(Bad)));

  Bad = Packed->Archive;
  Bad.push_back(0); // trailing garbage breaks the sum identity
  EXPECT_FALSE(static_cast<bool>(statPackedArchive(Bad)));
}
