//===- test_zip.cpp - zip/jar/gzip substrate tests -------------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/Rng.h"
#include "zip/Jar.h"
#include "zip/Zlib.h"
#include "zip/ZipFile.h"
#include <gtest/gtest.h>

using namespace cjpack;

namespace {

std::vector<uint8_t> randomBytes(size_t N, uint64_t Seed) {
  Rng R(Seed);
  std::vector<uint8_t> Out(N);
  for (auto &B : Out)
    B = static_cast<uint8_t>(R.next());
  return Out;
}

std::vector<uint8_t> compressibleBytes(size_t N) {
  std::vector<uint8_t> Out;
  const char *Phrase = "the quick brown fox jumps over the lazy dog. ";
  while (Out.size() < N)
    Out.insert(Out.end(), Phrase, Phrase + 46);
  Out.resize(N);
  return Out;
}

} // namespace

TEST(Zlib, DeflateInflateRoundTrip) {
  for (size_t N : {0u, 1u, 100u, 10000u, 300000u}) {
    std::vector<uint8_t> Data = compressibleBytes(N);
    std::vector<uint8_t> Comp = deflateBytes(Data);
    auto Raw = inflateBytes(Comp, N);
    ASSERT_TRUE(static_cast<bool>(Raw)) << N;
    EXPECT_EQ(*Raw, Data);
  }
}

TEST(Zlib, CompressesRedundantData) {
  std::vector<uint8_t> Data = compressibleBytes(100000);
  EXPECT_LT(deflateBytes(Data).size(), Data.size() / 10);
}

TEST(Zlib, InflateRejectsGarbage) {
  std::vector<uint8_t> Garbage = randomBytes(64, 3);
  auto Raw = inflateBytes(Garbage);
  EXPECT_FALSE(static_cast<bool>(Raw));
}

TEST(Zlib, InflateRejectsTruncation) {
  std::vector<uint8_t> Comp = deflateBytes(compressibleBytes(10000));
  Comp.resize(Comp.size() / 2);
  auto Raw = inflateBytes(Comp);
  EXPECT_FALSE(static_cast<bool>(Raw));
}

TEST(Zip, StoredAndDeflatedRoundTrip) {
  std::vector<ZipEntry> Entries;
  Entries.push_back({"a/Alpha.class", compressibleBytes(5000)});
  Entries.push_back({"b/Beta.class", randomBytes(2000, 7)});
  Entries.push_back({"empty.class", {}});
  for (ZipMethod M : {ZipMethod::Stored, ZipMethod::Deflated}) {
    std::vector<uint8_t> Zip = writeZip(Entries, M);
    auto Back = readZip(Zip);
    ASSERT_TRUE(static_cast<bool>(Back)) << Back.message();
    ASSERT_EQ(Back->size(), 3u);
    for (size_t I = 0; I < 3; ++I) {
      EXPECT_EQ((*Back)[I].Name, Entries[I].Name);
      EXPECT_EQ((*Back)[I].Data, Entries[I].Data);
    }
  }
}

TEST(Zip, IncompressibleMembersFallBackToStored) {
  // Deflating random bytes would grow them; the writer must store them.
  std::vector<ZipEntry> Entries = {{"noise.bin", randomBytes(4096, 11)}};
  std::vector<uint8_t> Deflated = writeZip(Entries, ZipMethod::Deflated);
  std::vector<uint8_t> Stored = writeZip(Entries, ZipMethod::Stored);
  EXPECT_EQ(Deflated.size(), Stored.size());
  auto Back = readZip(Deflated);
  ASSERT_TRUE(static_cast<bool>(Back));
  EXPECT_EQ((*Back)[0].Data, Entries[0].Data);
}

TEST(Zip, DetectsCorruptedMember) {
  std::vector<ZipEntry> Entries = {{"x.class", compressibleBytes(3000)}};
  std::vector<uint8_t> Zip = writeZip(Entries, ZipMethod::Deflated);
  // Flip a byte inside the member data (after the 30-byte header+name).
  Zip[40] ^= 0xFF;
  auto Back = readZip(Zip);
  EXPECT_FALSE(static_cast<bool>(Back));
}

TEST(Zip, RejectsTruncatedArchive) {
  std::vector<ZipEntry> Entries = {{"x.class", compressibleBytes(100)}};
  std::vector<uint8_t> Zip = writeZip(Entries, ZipMethod::Deflated);
  Zip.resize(Zip.size() - 10);
  EXPECT_FALSE(static_cast<bool>(readZip(Zip)));
}

TEST(Gzip, RoundTripAndTrailerValidation) {
  std::vector<uint8_t> Data = compressibleBytes(12345);
  std::vector<uint8_t> Gz = gzipBytes(Data);
  auto Back = gunzipBytes(Gz);
  ASSERT_TRUE(static_cast<bool>(Back)) << Back.message();
  EXPECT_EQ(*Back, Data);
  // Corrupt the CRC in the trailer.
  Gz[Gz.size() - 6] ^= 0x55;
  EXPECT_FALSE(static_cast<bool>(gunzipBytes(Gz)));
}

TEST(Jar, BaselineSizeOrdering) {
  // For compressible classfile-like data: sj0r.gz < jar < j0r.
  std::vector<NamedClass> Classes;
  for (int I = 0; I < 20; ++I)
    Classes.push_back({"pkg/C" + std::to_string(I) + ".class",
                       compressibleBytes(3000 + 100 * I)});
  size_t Raw = totalClassBytes(Classes);
  size_t Jar = buildJar(Classes).size();
  size_t J0r = buildJ0r(Classes).size();
  size_t J0rGz = buildJ0rGz(Classes).size();
  EXPECT_LT(Jar, J0r);
  EXPECT_LT(J0rGz, Jar) << "whole-archive compression beats per-member";
  EXPECT_GT(J0r, Raw) << "stored zip adds headers";
}

TEST(Jar, JarIsValidZipOfClasses) {
  std::vector<NamedClass> Classes = {
      {"a/A.class", compressibleBytes(1000)},
      {"a/B.class", compressibleBytes(2000)}};
  auto Back = readZip(buildJar(Classes));
  ASSERT_TRUE(static_cast<bool>(Back));
  ASSERT_EQ(Back->size(), 2u);
  EXPECT_EQ((*Back)[0].Data, Classes[0].Data);
  EXPECT_EQ((*Back)[1].Data, Classes[1].Data);
}

namespace {

/// Little-endian patch helpers for corrupting zip records in place.
void patchLeU4(std::vector<uint8_t> &B, size_t At, uint32_t V) {
  B[At] = static_cast<uint8_t>(V);
  B[At + 1] = static_cast<uint8_t>(V >> 8);
  B[At + 2] = static_cast<uint8_t>(V >> 16);
  B[At + 3] = static_cast<uint8_t>(V >> 24);
}

void patchLeU2(std::vector<uint8_t> &B, size_t At, uint16_t V) {
  B[At] = static_cast<uint8_t>(V);
  B[At + 1] = static_cast<uint8_t>(V >> 8);
}

uint32_t readLeU4(const std::vector<uint8_t> &B, size_t At) {
  return static_cast<uint32_t>(B[At]) |
         static_cast<uint32_t>(B[At + 1]) << 8 |
         static_cast<uint32_t>(B[At + 2]) << 16 |
         static_cast<uint32_t>(B[At + 3]) << 24;
}

/// Our writer emits no zip comment, so the EOCD record is the file's
/// last 22 bytes.
size_t eocdAt(const std::vector<uint8_t> &Zip) { return Zip.size() - 22; }

std::vector<uint8_t> twoEntryZip(ZipMethod Method) {
  std::vector<ZipEntry> Entries;
  Entries.push_back({"a.class", compressibleBytes(600)});
  Entries.push_back({"b.class", randomBytes(200, 99)});
  return writeZip(Entries, Method);
}

} // namespace

TEST(ZipHardening, CentralDirectoryOutsideFileIsCorrupt) {
  std::vector<uint8_t> Zip = twoEntryZip(ZipMethod::Deflated);
  patchLeU4(Zip, eocdAt(Zip) + 16, 0x7FFFFFFF); // central dir start
  auto Out = readZip(Zip);
  ASSERT_FALSE(static_cast<bool>(Out));
  EXPECT_EQ(Out.code(), ErrorCode::Corrupt) << Out.message();
}

TEST(ZipHardening, EntryCountExceedsDirectorySizeIsCorrupt) {
  // 60000 claimed entries need ~2.7MB of central directory; the real
  // directory is a couple hundred bytes.
  std::vector<uint8_t> Zip = twoEntryZip(ZipMethod::Deflated);
  patchLeU2(Zip, eocdAt(Zip) + 8, 60000);
  patchLeU2(Zip, eocdAt(Zip) + 10, 60000);
  auto Out = readZip(Zip);
  ASSERT_FALSE(static_cast<bool>(Out));
  EXPECT_EQ(Out.code(), ErrorCode::Corrupt) << Out.message();
}

TEST(ZipHardening, EntryCountOverLimitIsLimitExceeded) {
  std::vector<uint8_t> Zip = twoEntryZip(ZipMethod::Stored);
  DecodeLimits Limits;
  Limits.MaxZipEntries = 1;
  auto Out = readZip(Zip, Limits);
  ASSERT_FALSE(static_cast<bool>(Out));
  EXPECT_EQ(Out.code(), ErrorCode::LimitExceeded) << Out.message();
}

TEST(ZipHardening, StoredSizeMismatchIsCorrupt) {
  std::vector<uint8_t> Zip = twoEntryZip(ZipMethod::Stored);
  // First central entry's uncompressed size is at +24; growing it past
  // the compressed size must fail before any member data is trusted.
  size_t Central = readLeU4(Zip, eocdAt(Zip) + 16);
  uint32_t RawSize = readLeU4(Zip, Central + 24);
  patchLeU4(Zip, Central + 24, RawSize + 1);
  auto Out = readZip(Zip);
  ASSERT_FALSE(static_cast<bool>(Out));
  EXPECT_NE(Out.code(), ErrorCode::Other) << Out.message();
}

TEST(ZipHardening, DeflateOutputBeyondDeclaredSizeIsRejected) {
  // Shrink a deflated member's declared uncompressed size: inflation
  // must stop at the declared cap instead of trusting the stream.
  std::vector<uint8_t> Zip = twoEntryZip(ZipMethod::Deflated);
  size_t Central = readLeU4(Zip, eocdAt(Zip) + 16);
  uint32_t RawSize = readLeU4(Zip, Central + 24);
  ASSERT_GT(RawSize, 1u);
  patchLeU4(Zip, Central + 24, RawSize / 2);
  auto Out = readZip(Zip);
  ASSERT_FALSE(static_cast<bool>(Out));
  EXPECT_NE(Out.code(), ErrorCode::Other) << Out.message();
}

TEST(ZipHardening, TotalInflateChargesAgainstBudget) {
  std::vector<uint8_t> Zip = twoEntryZip(ZipMethod::Deflated);
  DecodeLimits Limits;
  Limits.MaxInflateBytes = 100; // both members together exceed this
  auto Out = readZip(Zip, Limits);
  ASSERT_FALSE(static_cast<bool>(Out));
  EXPECT_EQ(Out.code(), ErrorCode::LimitExceeded) << Out.message();
}

TEST(GzipHardening, DeclaredSizeOverBudgetIsLimitExceeded) {
  // A lying trailer declaring 4GB must fail the budget check up front,
  // not allocate 4GB and inflate into it.
  std::vector<uint8_t> Gz = gzipBytes(compressibleBytes(512));
  patchLeU4(Gz, Gz.size() - 4, 0xFFFFFFFFu);
  DecodeLimits Limits;
  Limits.MaxInflateBytes = 1u << 20;
  auto Out = gunzipBytes(Gz, Limits);
  ASSERT_FALSE(static_cast<bool>(Out));
  EXPECT_EQ(Out.code(), ErrorCode::LimitExceeded) << Out.message();
}
