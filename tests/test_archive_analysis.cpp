//===- test_archive_analysis.cpp - whole-archive analysis tests -----------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Covers ArchiveAnalysis end to end: hierarchy construction (lookups,
// least-common-superclass, subtype queries, the typed-reference join
// lattice), the structural diagnostics (superclass cycles, missing
// ancestors, interface diamonds), reference resolution through the
// superclass chain and interface closure with every verdict exercised,
// the hierarchy-informed verifier joins, the corpus knobs that seed
// inherited refs and dead members, and the StripUnreferenced
// differential guarantees (restored output verifies clean, archives are
// never larger, and strictly smaller when dead weight was seeded).
//
//===----------------------------------------------------------------------===//

#include "analysis/ArchiveAnalysis.h"
#include "analysis/Verifier.h"
#include "classfile/Reader.h"
#include "classfile/Transform.h"
#include "classfile/Writer.h"
#include "corpus/BytecodeBuilder.h"
#include "corpus/Corpus.h"
#include "pack/Packer.h"
#include "support/Sha1.h"
#include <algorithm>
#include <array>
#include <gtest/gtest.h>
#include <set>

using namespace cjpack;
using namespace cjpack::analysis;

namespace {

//===----------------------------------------------------------------------===//
// Hand-built archive helpers
//===----------------------------------------------------------------------===//

ClassFile mkClass(const std::string &Name,
                  const std::string &Super = "java/lang/Object",
                  std::vector<std::string> Ifaces = {},
                  bool IsInterface = false) {
  ClassFile CF;
  CF.AccessFlags = static_cast<uint16_t>(
      AccPublic | (IsInterface ? (AccInterface | AccAbstract) : AccSuper));
  CF.ThisClass = CF.CP.addClass(Name);
  CF.SuperClass = CF.CP.addClass(Super);
  for (const std::string &I : Ifaces)
    CF.Interfaces.push_back(CF.CP.addClass(I));
  return CF;
}

void addField(ClassFile &CF, const std::string &Name, const std::string &Desc,
              uint16_t Flags = AccPublic) {
  MemberInfo MI;
  MI.AccessFlags = Flags;
  MI.NameIndex = CF.CP.addUtf8(Name);
  MI.DescriptorIndex = CF.CP.addUtf8(Desc);
  CF.Fields.push_back(std::move(MI));
}

void addMethod(ClassFile &CF, const std::string &Name,
               const std::string &Desc, uint16_t Flags = AccPublic) {
  MemberInfo MI;
  MI.AccessFlags = Flags;
  MI.NameIndex = CF.CP.addUtf8(Name);
  MI.DescriptorIndex = CF.CP.addUtf8(Desc);
  CF.Methods.push_back(std::move(MI));
}

/// Name of member \p M in \p CF's pool.
std::string memberName(const ClassFile &CF, const MemberInfo &M) {
  return std::string(CF.CP.entry(M.NameIndex).Text);
}

size_t countKind(const std::vector<Diagnostic> &Diags, DiagKind K) {
  size_t N = 0;
  for (const Diagnostic &D : Diags)
    N += D.Kind == K;
  return N;
}

//===----------------------------------------------------------------------===//
// Hierarchy queries
//===----------------------------------------------------------------------===//

TEST(ClassHierarchy, BuildsDefinedAndExternalNodes) {
  std::vector<ClassFile> Classes;
  Classes.push_back(mkClass("pkg/B"));
  Classes.push_back(mkClass("pkg/A", "pkg/B"));
  ClassHierarchy H = ClassHierarchy::build(Classes);

  int32_t A = H.lookup("pkg/A"), B = H.lookup("pkg/B");
  ASSERT_GE(A, 0);
  ASSERT_GE(B, 0);
  EXPECT_TRUE(H.isDefined(A));
  EXPECT_TRUE(H.isDefined(B));
  EXPECT_EQ(H.node(A).Super, B);

  // Object is mentioned as B's superclass, so it has a node — but an
  // external (undefined) one.
  int32_t Obj = H.lookup("java/lang/Object");
  ASSERT_GE(Obj, 0);
  EXPECT_FALSE(H.isDefined(Obj));
  EXPECT_EQ(H.lookup("pkg/NotMentioned"), ClassNone);
  EXPECT_TRUE(H.duplicates().empty());
  EXPECT_TRUE(H.malformed().empty());
}

TEST(ClassHierarchy, LeastCommonSuperclassAndSubtype) {
  std::vector<ClassFile> Classes;
  Classes.push_back(mkClass("pkg/I", "java/lang/Object", {}, true));
  Classes.push_back(mkClass("pkg/C"));
  Classes.push_back(mkClass("pkg/D1", "pkg/C", {"pkg/I"}));
  Classes.push_back(mkClass("pkg/D2", "pkg/C"));
  ClassHierarchy H = ClassHierarchy::build(Classes);

  int32_t I = H.lookup("pkg/I"), C = H.lookup("pkg/C"),
          D1 = H.lookup("pkg/D1"), D2 = H.lookup("pkg/D2");
  EXPECT_EQ(H.leastCommonSuperclass(D1, D2), C);
  EXPECT_EQ(H.leastCommonSuperclass(D1, C), C);
  EXPECT_EQ(H.leastCommonSuperclass(D1, D1), D1);

  EXPECT_TRUE(H.isSubtypeOf(D1, C));
  EXPECT_TRUE(H.isSubtypeOf(D1, I));
  EXPECT_FALSE(H.isSubtypeOf(D2, I));
  EXPECT_FALSE(H.isSubtypeOf(C, D1));
}

TEST(ClassHierarchy, JoinRefClassesLattice) {
  std::vector<ClassFile> Classes;
  Classes.push_back(mkClass("pkg/C"));
  Classes.push_back(mkClass("pkg/D1", "pkg/C"));
  Classes.push_back(mkClass("pkg/D2", "pkg/C"));
  ClassHierarchy H = ClassHierarchy::build(Classes);

  int32_t C = H.lookup("pkg/C"), D1 = H.lookup("pkg/D1"),
          D2 = H.lookup("pkg/D2");
  // ClassNull is the identity, ClassNone absorbs.
  EXPECT_EQ(H.joinRefClasses(ClassNull, D1), D1);
  EXPECT_EQ(H.joinRefClasses(D1, ClassNull), D1);
  EXPECT_EQ(H.joinRefClasses(ClassNull, ClassNull), ClassNull);
  EXPECT_EQ(H.joinRefClasses(ClassNone, D1), ClassNone);
  EXPECT_EQ(H.joinRefClasses(D1, ClassNone), ClassNone);
  // Two in-archive classes meet at their least common superclass.
  EXPECT_EQ(H.joinRefClasses(D1, D1), D1);
  EXPECT_EQ(H.joinRefClasses(D1, D2), C);
  EXPECT_EQ(H.joinRefClasses(D1, C), C);
}

//===----------------------------------------------------------------------===//
// Structural diagnostics
//===----------------------------------------------------------------------===//

TEST(ArchiveAnalysis, SuperclassCycleIsDiagnosedAndWalksTerminate) {
  std::vector<ClassFile> Classes;
  Classes.push_back(mkClass("pkg/A", "pkg/B"));
  Classes.push_back(mkClass("pkg/B", "pkg/A"));
  ArchiveAnalysisReport R = analyzeArchive(Classes);
  EXPECT_GE(countKind(R.Diags, DiagKind::SuperclassCycle), 1u);

  const ClassHierarchy &H = R.Hierarchy;
  int32_t A = H.lookup("pkg/A"), B = H.lookup("pkg/B");
  EXPECT_TRUE(H.node(A).OnCycle);
  EXPECT_TRUE(H.node(B).OnCycle);
  // Queries over cycle nodes terminate instead of spinning.
  EXPECT_EQ(H.leastCommonSuperclass(A, B), H.leastCommonSuperclass(A, B));
  (void)H.isSubtypeOf(A, B);
}

TEST(ArchiveAnalysis, MissingAncestorVsPlatformExemption) {
  std::vector<ClassFile> Classes;
  Classes.push_back(mkClass("pkg/Gone", "vendor/NotShipped"));
  Classes.push_back(mkClass("pkg/Fine", "java/util/ArrayList"));
  ArchiveAnalysisReport R = analyzeArchive(Classes);
  EXPECT_EQ(countKind(R.Diags, DiagKind::MissingAncestor), 1u);

  EXPECT_FALSE(isPlatformClassName("vendor/NotShipped"));
  EXPECT_TRUE(isPlatformClassName("java/util/ArrayList"));
  EXPECT_TRUE(isPlatformClassName("javax/swing/JFrame"));
  EXPECT_TRUE(isPlatformClassName("jdk/internal/misc/Unsafe"));
  EXPECT_TRUE(isPlatformClassName("sun/misc/Launcher"));
}

TEST(ArchiveAnalysis, DuplicateClassNameIsDiagnosed) {
  std::vector<ClassFile> Classes;
  Classes.push_back(mkClass("pkg/Twice"));
  Classes.push_back(mkClass("pkg/Twice"));
  ArchiveAnalysisReport R = analyzeArchive(Classes);
  EXPECT_EQ(countKind(R.Diags, DiagKind::DuplicateClass), 1u);
  EXPECT_EQ(R.Hierarchy.duplicates().size(), 1u);
}

//===----------------------------------------------------------------------===//
// Reference resolution
//===----------------------------------------------------------------------===//

TEST(RefResolution, InheritedMembersResolveThroughTheChain) {
  std::vector<ClassFile> Classes;
  Classes.push_back(mkClass("pkg/I", "java/lang/Object", {}, true));
  addMethod(Classes.back(), "fromIface", "()V", AccPublic | AccAbstract);
  Classes.push_back(mkClass("pkg/Base"));
  addField(Classes.back(), "inherited", "I");
  addMethod(Classes.back(), "fromBase", "()I");
  Classes.push_back(mkClass("pkg/Mid", "pkg/Base", {"pkg/I"}));
  Classes.push_back(mkClass("pkg/Leaf", "pkg/Mid"));
  ClassHierarchy H = ClassHierarchy::build(Classes);

  // Field on the grandparent, ref owned by the leaf.
  RefResolution F = H.resolveField("pkg/Leaf", "inherited", "I");
  EXPECT_EQ(F.Verdict, RefVerdict::Resolved);
  EXPECT_EQ(F.DefiningClass, H.lookup("pkg/Base"));
  ASSERT_NE(F.Member, nullptr);
  EXPECT_EQ(memberName(Classes[1], *F.Member), "inherited");

  // Method on the grandparent.
  RefResolution M = H.resolveMethod("pkg/Leaf", "fromBase", "()I", false);
  EXPECT_EQ(M.Verdict, RefVerdict::Resolved);
  EXPECT_EQ(M.DefiningClass, H.lookup("pkg/Base"));

  // Method declared only on an interface implemented mid-chain.
  RefResolution IM = H.resolveMethod("pkg/Leaf", "fromIface", "()V", false);
  EXPECT_EQ(IM.Verdict, RefVerdict::Resolved);
  EXPECT_EQ(IM.DefiningClass, H.lookup("pkg/I"));
}

TEST(RefResolution, InterfaceDiamond) {
  // Two unrelated concrete (default) declarations are genuinely
  // ambiguous; once one of them is abstract the concrete survivor wins.
  std::vector<ClassFile> Classes;
  Classes.push_back(mkClass("pkg/I1", "java/lang/Object", {}, true));
  addMethod(Classes.back(), "m", "()V", AccPublic); // default method
  Classes.push_back(mkClass("pkg/I2", "java/lang/Object", {}, true));
  addMethod(Classes.back(), "m", "()V", AccPublic); // default method
  Classes.push_back(mkClass("pkg/C", "java/lang/Object",
                            {"pkg/I1", "pkg/I2"}));
  {
    ClassHierarchy H = ClassHierarchy::build(Classes);
    RefResolution R = H.resolveMethod("pkg/C", "m", "()V", false);
    EXPECT_EQ(R.Verdict, RefVerdict::Ambiguous);
    ArchiveAnalysisReport Rep = analyzeArchive(Classes);
    EXPECT_GE(countKind(Rep.Diags, DiagKind::AmbiguousRef), 0u);
  }
  Classes[1].Methods[0].AccessFlags |= AccAbstract;
  {
    ClassHierarchy H = ClassHierarchy::build(Classes);
    RefResolution R = H.resolveMethod("pkg/C", "m", "()V", false);
    EXPECT_EQ(R.Verdict, RefVerdict::Resolved);
  }
  // A sub-interface overriding both sides is maximally specific: no
  // ambiguity even with two concrete declarations above it.
  Classes[1].Methods[0].AccessFlags &= static_cast<uint16_t>(~AccAbstract);
  Classes.push_back(mkClass("pkg/I3", "java/lang/Object",
                            {"pkg/I1", "pkg/I2"}, true));
  addMethod(Classes.back(), "m", "()V", AccPublic);
  Classes.push_back(mkClass("pkg/C2", "java/lang/Object", {"pkg/I3"}));
  {
    ClassHierarchy H = ClassHierarchy::build(Classes);
    RefResolution R = H.resolveMethod("pkg/C2", "m", "()V", false);
    EXPECT_EQ(R.Verdict, RefVerdict::Resolved);
    EXPECT_EQ(R.DefiningClass, H.lookup("pkg/I3"));
  }
}

TEST(RefResolution, ExternalDanglingAndKindVerdicts) {
  std::vector<ClassFile> Classes;
  Classes.push_back(mkClass("pkg/I", "java/lang/Object", {}, true));
  Classes.push_back(mkClass("pkg/OnPlatform", "java/util/ArrayList"));
  Classes.push_back(mkClass("pkg/OnObject"));
  ClassHierarchy H = ClassHierarchy::build(Classes);

  // Owner outside the archive: clean external verdict.
  EXPECT_EQ(H.resolveMethod("java/util/List", "size", "()I", true).Verdict,
            RefVerdict::External);
  EXPECT_EQ(H.resolveField("java/util/List", "x", "I").Verdict,
            RefVerdict::External);

  // The search escaping through a non-Object platform superclass cannot
  // prove absence.
  EXPECT_EQ(H.resolveMethod("pkg/OnPlatform", "maybe", "()V", false).Verdict,
            RefVerdict::External);

  // An Object-rooted chain is a complete search: unknown members are
  // dangling, Object's own fixed methods are external.
  EXPECT_EQ(H.resolveMethod("pkg/OnObject", "noSuch", "()V", false).Verdict,
            RefVerdict::Dangling);
  EXPECT_EQ(H.resolveField("pkg/OnObject", "noField", "I").Verdict,
            RefVerdict::Dangling);
  EXPECT_EQ(H.resolveMethod("pkg/OnObject", "hashCode", "()I", false).Verdict,
            RefVerdict::External);
  EXPECT_TRUE(isKnownObjectMethod("wait", "(JI)V"));
  EXPECT_FALSE(isKnownObjectMethod("wait", "(I)V"));

  // Methodref naming an interface (and the reverse).
  EXPECT_EQ(H.resolveMethod("pkg/I", "m", "()V", false).Verdict,
            RefVerdict::KindMismatch);
  EXPECT_EQ(H.resolveMethod("pkg/OnObject", "m", "()V", true).Verdict,
            RefVerdict::KindMismatch);

  // Array owners answer to the runtime, not the archive.
  EXPECT_EQ(H.resolveMethod("[Lpkg/OnObject;", "clone",
                            "()Ljava/lang/Object;", false)
                .Verdict,
            RefVerdict::External);
}

TEST(ArchiveAnalysis, DanglingRefBecomesDiagnostic) {
  std::vector<ClassFile> Classes;
  Classes.push_back(mkClass("pkg/T"));
  Classes.push_back(mkClass("pkg/User"));
  Classes.back().CP.addRef(CpTag::MethodRef, "pkg/T", "noSuch", "()V");
  ArchiveAnalysisReport R = analyzeArchive(Classes);
  EXPECT_EQ(countKind(R.Diags, DiagKind::DanglingRef), 1u);
  EXPECT_GE(R.RefsChecked, 1u);
}

//===----------------------------------------------------------------------===//
// Hierarchy-informed verifier joins
//===----------------------------------------------------------------------===//

TEST(TypedJoins, BranchArmsMeetAtLeastCommonSuperclass) {
  std::vector<ClassFile> Classes;
  Classes.push_back(mkClass("pkg/B"));
  Classes.push_back(mkClass("pkg/D1", "pkg/B"));
  Classes.push_back(mkClass("pkg/D2", "pkg/B"));

  // static void test(int): one branch arm news up D1, the other D2;
  // both fall into a shared astore.
  ClassFile T = mkClass("pkg/T");
  BytecodeBuilder Bld(T.CP, /*ParamSlots=*/1);
  unsigned Slot = Bld.newLocal(VType::Ref);
  auto Else = Bld.newLabel();
  auto Join = Bld.newLabel();
  Bld.loadLocal(VType::Int, 0);
  Bld.branch(Op::IfEq, Else);
  Bld.newObject("pkg/D1");
  Bld.op(Op::Dup);
  Bld.invoke(Op::InvokeSpecial, "pkg/D1", "<init>", "()V");
  Bld.branch(Op::Goto, Join);
  Bld.placeLabel(Else);
  Bld.newObject("pkg/D2");
  Bld.op(Op::Dup);
  Bld.invoke(Op::InvokeSpecial, "pkg/D2", "<init>", "()V");
  Bld.placeLabel(Join);
  Bld.storeLocal(VType::Ref, Slot);
  Bld.ret(VType::Void);

  MemberInfo M;
  M.AccessFlags = AccPublic | AccStatic;
  M.NameIndex = T.CP.addUtf8("test");
  M.DescriptorIndex = T.CP.addUtf8("(I)V");
  M.Attributes.push_back(encodeCodeAttribute(Bld.finish(), T.CP));
  T.Methods.push_back(std::move(M));
  Classes.push_back(std::move(T));

  ClassHierarchy H = ClassHierarchy::build(Classes);
  const ClassFile &TC = Classes.back();
  MethodAnalysis MA =
      analyzeMethod(TC, TC.Methods[0], "pkg/T.test(I)V", &H);
  ASSERT_TRUE(MA.Decoded);
  EXPECT_TRUE(MA.Diags.empty());

  // The join block starts with exactly the newed object on the stack;
  // its tracked class must be the least common superclass pkg/B, not
  // either arm's type and not untyped.
  int32_t B = H.lookup("pkg/B");
  bool SawJoin = false;
  for (const std::optional<Frame> &F : MA.BlockEntry)
    if (F && F->Stack.size() == 1 && F->StackCls.size() == 1 &&
        F->StackCls[0] == B)
      SawJoin = true;
  EXPECT_TRUE(SawJoin);

  // Without a hierarchy nothing is tracked and frames stay legacy-shaped.
  MethodAnalysis Legacy =
      analyzeMethod(TC, TC.Methods[0], "pkg/T.test(I)V");
  for (const std::optional<Frame> &F : Legacy.BlockEntry)
    if (F) {
      EXPECT_TRUE(F->StackCls.empty());
      EXPECT_TRUE(F->LocalCls.empty());
    }
}

//===----------------------------------------------------------------------===//
// Corpus integration: all styles lint clean, knobs seed what they claim
//===----------------------------------------------------------------------===//

CorpusSpec smallSpec(CodeStyle Style, uint64_t Seed) {
  CorpusSpec Spec;
  Spec.Name = "lint-corpus";
  Spec.Seed = Seed;
  Spec.NumClasses = 24;
  Spec.NumPackages = 3;
  Spec.Code = Style;
  return Spec;
}

TEST(CorpusLint, EveryStyleResolvesEveryReference) {
  uint64_t Seed = 7;
  for (CodeStyle Style :
       {CodeStyle::Balanced, CodeStyle::Numeric, CodeStyle::StringHeavy}) {
    std::vector<ClassFile> Classes =
        generateCorpusClasses(smallSpec(Style, Seed++));
    ArchiveAnalysisReport R = analyzeArchive(Classes);
    // Zero false positives: generated archives are structurally clean
    // and every reference is either resolved in-archive or provably
    // external (platform calls).
    for (const Diagnostic &D : R.Diags)
      ADD_FAILURE() << formatDiagnostic(D);
    EXPECT_EQ(R.ClassesAnalyzed, Classes.size());
    EXPECT_GT(R.RefsChecked, 0u);
    EXPECT_EQ(R.RefsChecked, R.RefsResolved + R.RefsExternal);
    EXPECT_GT(R.RefsResolved, 0u);
    EXPECT_GT(R.RefsExternal, 0u);
  }
}

TEST(CorpusLint, InheritedRefKnobEmitsHierarchyWalkingRefs) {
  CorpusSpec Spec = smallSpec(CodeStyle::Balanced, 11);
  Spec.PctInheritedRefs = 40;
  std::vector<ClassFile> Classes = generateCorpusClasses(Spec);
  ArchiveAnalysisReport R = analyzeArchive(Classes);
  for (const Diagnostic &D : R.Diags)
    ADD_FAILURE() << formatDiagnostic(D);
  EXPECT_EQ(R.RefsChecked, R.RefsResolved + R.RefsExternal);

  // At least one emitted ref must actually require the hierarchy walk:
  // owner names a class that does not define the member.
  const ClassHierarchy &H = R.Hierarchy;
  size_t Inherited = 0;
  for (const ClassFile &CF : Classes) {
    for (uint16_t I = 1; I < CF.CP.count(); ++I) {
      if (!CF.CP.isValidIndex(I))
        continue;
      const CpEntry &E = CF.CP.entry(I);
      if (E.Tag != CpTag::FieldRef && E.Tag != CpTag::MethodRef)
        continue;
      std::string_view Owner =
          CF.CP.entry(CF.CP.entry(E.Ref1).Ref1).Text;
      const CpEntry &NT = CF.CP.entry(E.Ref2);
      std::string_view Name = CF.CP.entry(NT.Ref1).Text;
      std::string_view Desc = CF.CP.entry(NT.Ref2).Text;
      RefResolution RR =
          E.Tag == CpTag::FieldRef
              ? H.resolveField(Owner, Name, Desc)
              : H.resolveMethod(Owner, Name, Desc, false);
      if (RR.Verdict == RefVerdict::Resolved &&
          H.node(RR.DefiningClass).Name != Owner)
        ++Inherited;
    }
  }
  EXPECT_GT(Inherited, 0u);
}

TEST(CorpusLint, DeadMemberKnobSeedsStrippableWeight) {
  CorpusSpec Spec = smallSpec(CodeStyle::Balanced, 13);
  Spec.DeadMembersPerClass = 2;
  std::vector<ClassFile> Classes = generateCorpusClasses(Spec);
  ArchiveAnalysisReport R = analyzeArchive(Classes);
  for (const Diagnostic &D : R.Diags)
    ADD_FAILURE() << formatDiagnostic(D);
  // Every concrete class got two members nothing references.
  EXPECT_GE(R.DeadMembers.size(), Classes.size());
}

//===----------------------------------------------------------------------===//
// StripUnreferenced differential
//===----------------------------------------------------------------------===//

/// Packs \p Spec's corpus twice (with and without stripping) and
/// returns {default, stripped} results after asserting both decode and
/// verify clean.
std::pair<PackResult, PackResult> packBothWays(const CorpusSpec &Spec) {
  std::vector<NamedClass> Classes = generateCorpus(Spec);
  PackOptions Plain;
  auto Default = packClassBytes(Classes, Plain);
  EXPECT_TRUE(static_cast<bool>(Default)) << Default.message();
  PackOptions Strip;
  Strip.StripUnreferenced = true;
  auto Stripped = packClassBytes(Classes, Strip);
  EXPECT_TRUE(static_cast<bool>(Stripped)) << Stripped.message();

  auto Restored = unpackClasses(Stripped->Archive);
  EXPECT_TRUE(static_cast<bool>(Restored)) << Restored.message();
  for (const ClassFile &CF : *Restored) {
    VerifyResult V = verifyClass(CF);
    for (const Diagnostic &D : V.Diags)
      ADD_FAILURE() << formatDiagnostic(D);
  }
  return {std::move(*Default), std::move(*Stripped)};
}

TEST(StripUnreferenced, StrictlySmallerWhenDeadWeightIsSeeded) {
  CorpusSpec Spec = smallSpec(CodeStyle::Balanced, 17);
  Spec.DeadMembersPerClass = 2;
  auto [Default, Stripped] = packBothWays(Spec);
  EXPECT_GT(Stripped.StrippedFields + Stripped.StrippedMethods, 0u);
  EXPECT_LT(Stripped.Archive.size(), Default.Archive.size());
  EXPECT_EQ(Default.StrippedFields + Default.StrippedMethods, 0u);
}

TEST(StripUnreferenced, NeverLargerOnDefaultCorpora) {
  for (uint64_t Seed : {19u, 23u}) {
    auto [Default, Stripped] =
        packBothWays(smallSpec(CodeStyle::Balanced, Seed));
    EXPECT_LE(Stripped.Archive.size(), Default.Archive.size());
  }
}

TEST(StripUnreferenced, RetainedMembersSurviveByteLossless) {
  CorpusSpec Spec = smallSpec(CodeStyle::StringHeavy, 29);
  Spec.DeadMembersPerClass = 1;
  std::vector<NamedClass> Raw = generateCorpus(Spec);

  // Reference stripping: prepare + strip in-process, then compare the
  // packer's restored bytes against the same classes written directly.
  std::vector<ClassFile> Prepared;
  for (const NamedClass &C : Raw) {
    auto CF = parseClassFile(C.Data);
    ASSERT_TRUE(static_cast<bool>(CF)) << CF.message();
    ASSERT_FALSE(static_cast<bool>(prepareForPacking(*CF)));
    Prepared.push_back(std::move(*CF));
  }
  auto Stats = stripUnreferencedMembers(Prepared);
  ASSERT_TRUE(static_cast<bool>(Stats)) << Stats.message();
  EXPECT_GT(Stats->membersRemoved(), 0u);

  PackOptions Options;
  Options.StripUnreferenced = true;
  auto Packed = packClassBytes(Raw, Options);
  ASSERT_TRUE(static_cast<bool>(Packed)) << Packed.message();
  EXPECT_EQ(Packed->StrippedFields, Stats->FieldsRemoved);
  EXPECT_EQ(Packed->StrippedMethods, Stats->MethodsRemoved);

  auto Restored = unpackClasses(Packed->Archive);
  ASSERT_TRUE(static_cast<bool>(Restored)) << Restored.message();
  ASSERT_EQ(Restored->size(), Prepared.size());

  // Order-independent byte equality (packing may reorder classes).
  // Compare SHA-1 digests: sorting raw byte vectors trips a GCC-12
  // -Wstringop-overread false positive.
  std::set<std::array<uint8_t, 20>> Want, Got;
  for (const ClassFile &CF : Prepared)
    Want.insert(sha1Of(writeClassFile(CF)));
  for (const ClassFile &CF : *Restored)
    Got.insert(sha1Of(writeClassFile(CF)));
  EXPECT_EQ(Want, Got);

  // Nothing dead remains — the strip converged for this corpus — and
  // the restored archive is structurally clean.
  ArchiveAnalysisReport After = analyzeArchive(*Restored);
  for (const Diagnostic &D : After.Diags)
    ADD_FAILURE() << formatDiagnostic(D);
}

} // namespace
