//===- test_serve.cpp - cjpackd server, protocol, and cache ---------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The serving stack end to end: protocol encode/parse round-trips and
// the typed rejection of hostile payloads, the hot-archive LRU cache
// (hits, capacity eviction, staleness invalidation), and a real server
// on a unix-domain socket driven through the Client — including the
// hostile-client suite (truncated frames, oversized length prefixes,
// garbage opcodes, mid-request disconnects) that the daemon must
// survive with typed errors and no cross-request interference.
//
//===----------------------------------------------------------------------===//

#include "serve/ArchiveCache.h"
#include "serve/Client.h"
#include "serve/Server.h"
#include "classfile/Writer.h"
#include "corpus/Corpus.h"
#include "pack/ArchiveReader.h"
#include "pack/Packer.h"
#include "zip/Jar.h"
#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>
#include <thread>

using namespace cjpack;
using namespace cjpack::serve;

namespace {

std::vector<NamedClass> serveCorpus(uint64_t Seed = 41,
                                    unsigned NumClasses = 24) {
  CorpusSpec Spec;
  Spec.Name = "serve";
  Spec.Seed = Seed;
  Spec.NumClasses = NumClasses;
  Spec.NumPackages = 3;
  return generateCorpus(Spec);
}

std::vector<uint8_t> packIndexed(const std::vector<NamedClass> &Classes,
                                 unsigned Shards = 2) {
  PackOptions Options;
  Options.Shards = Shards;
  Options.RandomAccessIndex = true;
  auto Packed = packClassBytes(Classes, Options);
  EXPECT_TRUE(static_cast<bool>(Packed)) << Packed.message();
  return Packed->Archive;
}

bool writeFileBytes(const std::string &Path,
                    const std::vector<uint8_t> &Data) {
  std::ofstream Out(Path, std::ios::binary);
  Out.write(reinterpret_cast<const char *>(Data.data()),
            static_cast<std::streamsize>(Data.size()));
  return static_cast<bool>(Out);
}

std::string tempPath(const std::string &Name) {
  return ::testing::TempDir() + Name;
}

/// A started server plus its socket path; stops on destruction.
struct TestServer {
  std::string SocketPath;
  std::unique_ptr<Server> Srv;

  TestServer() = default;
  TestServer(TestServer &&) = default;
  TestServer &operator=(TestServer &&) = default;

  static TestServer start(ServerConfig Config = {},
                          const std::string &Tag = "d") {
    TestServer T;
    T.SocketPath = tempPath("cjpackd_test_" + Tag + ".sock");
    Config.UnixSocketPath = T.SocketPath;
    if (Config.Threads == 0)
      Config.Threads = 4;
    auto S = Server::start(Config);
    EXPECT_TRUE(static_cast<bool>(S)) << S.message();
    if (S)
      T.Srv = std::move(*S);
    return T;
  }

  Client connect() {
    auto C = Client::connectUnix(SocketPath);
    EXPECT_TRUE(static_cast<bool>(C)) << C.message();
    return std::move(*C);
  }

  ~TestServer() {
    if (Srv) {
      Srv->requestStop();
      Srv->wait();
    }
  }
};

/// Fetches one metric line's value from a metrics response body.
long metricValue(const std::string &Body, const std::string &Key) {
  size_t Pos = 0;
  while (Pos < Body.size()) {
    size_t End = Body.find('\n', Pos);
    if (End == std::string::npos)
      End = Body.size();
    std::string Line = Body.substr(Pos, End - Pos);
    if (Line.rfind(Key + " ", 0) == 0)
      return std::atol(Line.c_str() + Key.size() + 1);
    Pos = End + 1;
  }
  return -1;
}

} // namespace

//===----------------------------------------------------------------------===//
// Protocol
//===----------------------------------------------------------------------===//

TEST(ServeProtocol, RequestRoundTrip) {
  Request Req;
  Req.Op = Opcode::UnpackClass;
  Req.Args = {"/tmp/app.cjp", "com/example/Main"};
  auto Parsed = parseRequest(encodeRequest(Req));
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.message();
  EXPECT_EQ(Parsed->Op, Opcode::UnpackClass);
  EXPECT_EQ(Parsed->Args, Req.Args);

  // No-arg and empty-string-arg requests survive too.
  Request Ping;
  Ping.Op = Opcode::Ping;
  auto P2 = parseRequest(encodeRequest(Ping));
  ASSERT_TRUE(static_cast<bool>(P2));
  EXPECT_TRUE(P2->Args.empty());

  Request Empty;
  Empty.Op = Opcode::Stat;
  Empty.Args = {""};
  auto P3 = parseRequest(encodeRequest(Empty));
  ASSERT_TRUE(static_cast<bool>(P3));
  ASSERT_EQ(P3->Args.size(), 1u);
  EXPECT_TRUE(P3->Args[0].empty());
}

TEST(ServeProtocol, ResponseRoundTrip) {
  Response R = Response::fail(Status::LimitExceeded, "too big");
  auto Parsed = parseResponse(encodeResponse(R));
  ASSERT_TRUE(static_cast<bool>(Parsed));
  EXPECT_EQ(Parsed->St, Status::LimitExceeded);
  EXPECT_EQ(Parsed->text(), "too big");
}

TEST(ServeProtocol, HostilePayloadsRejectTyped) {
  // Empty and one-byte payloads: shorter than the fixed header.
  EXPECT_EQ(parseRequest({}).code(), ErrorCode::Truncated);
  uint8_t One[1] = {0};
  EXPECT_EQ(parseRequest(std::span<const uint8_t>(One, 1)).code(),
            ErrorCode::Truncated);

  // Unknown opcode.
  uint8_t BadOp[2] = {0xEE, 0};
  EXPECT_EQ(parseRequest(std::span<const uint8_t>(BadOp, 2)).code(),
            ErrorCode::Corrupt);

  // Argument count over the cap.
  uint8_t ManyArgs[2] = {0, 255};
  EXPECT_EQ(
      parseRequest(std::span<const uint8_t>(ManyArgs, 2)).code(),
      ErrorCode::LimitExceeded);

  // Argument length promising more bytes than the payload holds.
  uint8_t Overhang[3] = {0, 1, 50};
  EXPECT_EQ(
      parseRequest(std::span<const uint8_t>(Overhang, 3)).code(),
      ErrorCode::Truncated);

  // Argument length over the per-argument cap.
  {
    Request R;
    R.Op = Opcode::Stat;
    R.Args = {std::string(100, 'x')};
    std::vector<uint8_t> Enc = encodeRequest(R);
    ProtocolLimits Tight;
    Tight.MaxArgBytes = 10;
    EXPECT_EQ(parseRequest(Enc, Tight).code(),
              ErrorCode::LimitExceeded);
  }

  // Trailing garbage after the last argument.
  {
    Request R;
    R.Op = Opcode::Ping;
    std::vector<uint8_t> Enc = encodeRequest(R);
    Enc.push_back(0x42);
    EXPECT_EQ(parseRequest(Enc).code(), ErrorCode::Corrupt);
  }

  // Response side: empty payload and unknown status byte.
  EXPECT_EQ(parseResponse({}).code(), ErrorCode::Truncated);
  uint8_t BadSt[1] = {0x77};
  EXPECT_EQ(parseResponse(std::span<const uint8_t>(BadSt, 1)).code(),
            ErrorCode::Corrupt);

  // Frame length validation.
  EXPECT_FALSE(static_cast<bool>(validateFrameLength(100, 1000)));
  EXPECT_TRUE(static_cast<bool>(validateFrameLength(0x7FFFFFFF, 1000)));
}

TEST(ServeProtocol, OpcodeNamesRoundTrip) {
  for (unsigned I = 0; I < NumOpcodes; ++I) {
    Opcode Op = static_cast<Opcode>(I);
    const Opcode *Found = findOpcodeByName(opcodeName(Op));
    ASSERT_NE(Found, nullptr) << opcodeName(Op);
    EXPECT_EQ(*Found, Op);
  }
  EXPECT_EQ(findOpcodeByName("no-such-op"), nullptr);
}

//===----------------------------------------------------------------------===//
// ArchiveCache
//===----------------------------------------------------------------------===//

TEST(ArchiveCacheTest, HitMissAndByteIdenticalResults) {
  auto Classes = serveCorpus();
  std::string Path = tempPath("cache_basic.cjp");
  ASSERT_TRUE(writeFileBytes(Path, packIndexed(Classes)));

  ArchiveCache Cache(64u << 20);
  auto A1 = Cache.get(Path);
  ASSERT_TRUE(static_cast<bool>(A1)) << A1.message();
  auto A2 = Cache.get(Path);
  ASSERT_TRUE(static_cast<bool>(A2));
  EXPECT_EQ(A1->get(), A2->get()) << "second get must share the entry";

  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Entries, 1u);

  // A class through the cached reader matches a fresh in-process one.
  std::string Name = (*A1)->Reader.classNames().front();
  auto Hot = (*A1)->Reader.unpackClass(Name);
  ASSERT_TRUE(static_cast<bool>(Hot)) << Hot.message();
  auto Fresh = PackedArchiveReader::open(packIndexed(Classes));
  ASSERT_TRUE(static_cast<bool>(Fresh));
  auto Cold = Fresh->unpackClass(Name);
  ASSERT_TRUE(static_cast<bool>(Cold));
  EXPECT_EQ(writeClassFile(*Hot), writeClassFile(*Cold));

  std::remove(Path.c_str());
}

TEST(ArchiveCacheTest, CapacityEvictsLeastRecentlyUsed) {
  auto ClassesA = serveCorpus(41);
  auto ClassesB = serveCorpus(43);
  std::string PathA = tempPath("cache_evict_a.cjp");
  std::string PathB = tempPath("cache_evict_b.cjp");
  std::vector<uint8_t> ArchA = packIndexed(ClassesA);
  ASSERT_TRUE(writeFileBytes(PathA, ArchA));
  ASSERT_TRUE(writeFileBytes(PathB, packIndexed(ClassesB)));

  // Capacity fits one archive, not two.
  ArchiveCache Cache(ArchA.size() + ArchA.size() / 2);
  ASSERT_TRUE(static_cast<bool>(Cache.get(PathA)));
  ASSERT_TRUE(static_cast<bool>(Cache.get(PathB))); // evicts A
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Entries, 1u);
  EXPECT_EQ(S.Evictions, 1u);
  ASSERT_TRUE(static_cast<bool>(Cache.get(PathA))); // miss again
  EXPECT_EQ(Cache.stats().Misses, 3u);
  EXPECT_EQ(Cache.stats().Hits, 0u);

  std::remove(PathA.c_str());
  std::remove(PathB.c_str());
}

TEST(ArchiveCacheTest, RewrittenFileInvalidatesEntry) {
  auto ClassesA = serveCorpus(41);
  auto ClassesB = serveCorpus(47, 8);
  std::string Path = tempPath("cache_stale.cjp");
  ASSERT_TRUE(writeFileBytes(Path, packIndexed(ClassesA)));

  ArchiveCache Cache(64u << 20);
  auto A1 = Cache.get(Path);
  ASSERT_TRUE(static_cast<bool>(A1));
  size_t CountA = (*A1)->Reader.classCount();

  // Rewrite the file with different contents (different size, so the
  // identity check cannot be fooled by a same-second mtime).
  ASSERT_TRUE(writeFileBytes(Path, packIndexed(ClassesB)));
  auto A2 = Cache.get(Path);
  ASSERT_TRUE(static_cast<bool>(A2)) << A2.message();
  EXPECT_NE((*A2)->Reader.classCount(), CountA);
  EXPECT_EQ(Cache.stats().Misses, 2u);
  EXPECT_EQ(Cache.stats().Evictions, 1u);

  // The evicted entry's shared_ptr still works (mapping stays valid).
  EXPECT_EQ((*A1)->Reader.classCount(), CountA);

  std::remove(Path.c_str());
}

TEST(ArchiveCacheTest, MissingAndGarbageFilesFailTyped) {
  ArchiveCache Cache(1u << 20);
  EXPECT_FALSE(static_cast<bool>(Cache.get(tempPath("no_such.cjp"))));

  std::string Path = tempPath("cache_garbage.cjp");
  ASSERT_TRUE(writeFileBytes(Path, {0xDE, 0xAD, 0xBE, 0xEF, 0x01}));
  EXPECT_FALSE(static_cast<bool>(Cache.get(Path)));
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.OpenFailures, 2u);
  EXPECT_EQ(S.Entries, 0u) << "failures must never be cached";
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Server end-to-end over a unix socket
//===----------------------------------------------------------------------===//

TEST(ServeServer, PingAndUnknownCommand) {
  TestServer T = TestServer::start({}, "ping");
  ASSERT_TRUE(T.Srv);
  Client C = T.connect();
  auto R = C.call(Opcode::Ping);
  ASSERT_TRUE(static_cast<bool>(R)) << R.message();
  EXPECT_EQ(R->St, Status::Ok);
  EXPECT_EQ(R->text(), "pong");

  // Wrong argument count: typed BadRequest, connection stays usable.
  auto Bad = C.call(Opcode::Stat, {"a", "b", "c"});
  ASSERT_TRUE(static_cast<bool>(Bad));
  EXPECT_EQ(Bad->St, Status::BadRequest);
  auto Again = C.call(Opcode::Ping);
  ASSERT_TRUE(static_cast<bool>(Again));
  EXPECT_EQ(Again->St, Status::Ok);
}

TEST(ServeServer, PackStatUnpackClassFlowWithCacheHit) {
  TestServer T = TestServer::start({}, "flow");
  ASSERT_TRUE(T.Srv);
  Client C = T.connect();

  auto Classes = serveCorpus();
  std::string JarPath = tempPath("serve_flow.jar");
  std::string CjpPath = tempPath("serve_flow.cjp");
  ASSERT_TRUE(writeFileBytes(JarPath, buildJar(Classes)));

  auto Packed = C.call(Opcode::Pack, {JarPath, CjpPath});
  ASSERT_TRUE(static_cast<bool>(Packed)) << Packed.message();
  ASSERT_EQ(Packed->St, Status::Ok) << Packed->text();

  auto Stat = C.call(Opcode::Stat, {CjpPath});
  ASSERT_TRUE(static_cast<bool>(Stat));
  ASSERT_EQ(Stat->St, Status::Ok) << Stat->text();
  EXPECT_EQ(metricValue(Stat->text(), "version"), 3);
  EXPECT_EQ(metricValue(Stat->text(), "indexed_classes"),
            static_cast<long>(Classes.size()));

  // Same class twice: miss then hit, byte-identical both times and
  // equal to what an in-process reader produces.
  std::string Name = Classes.front().Name;
  Name = Name.substr(0, Name.size() - 6); // drop ".class"
  auto F1 = C.call(Opcode::UnpackClass, {CjpPath, Name});
  ASSERT_TRUE(static_cast<bool>(F1));
  ASSERT_EQ(F1->St, Status::Ok) << F1->text();
  auto F2 = C.call(Opcode::UnpackClass, {CjpPath, Name});
  ASSERT_TRUE(static_cast<bool>(F2));
  ASSERT_EQ(F2->St, Status::Ok);
  EXPECT_EQ(F1->Body, F2->Body);

  // The served bytes match an in-process reader over the same archive
  // (the canonical form — input bytes are only preserved for canonical
  // classfiles).
  {
    std::ifstream In(CjpPath, std::ios::binary);
    std::vector<uint8_t> Archive((std::istreambuf_iterator<char>(In)),
                                 std::istreambuf_iterator<char>());
    auto Ref = PackedArchiveReader::open(Archive);
    ASSERT_TRUE(static_cast<bool>(Ref)) << Ref.message();
    auto CF = Ref->unpackClass(Name);
    ASSERT_TRUE(static_cast<bool>(CF)) << CF.message();
    EXPECT_EQ(F1->Body, writeClassFile(*CF));
  }

  auto M = C.call(Opcode::Metrics);
  ASSERT_TRUE(static_cast<bool>(M));
  ASSERT_EQ(M->St, Status::Ok);
  EXPECT_EQ(metricValue(M->text(), "cache_hits"), 1);
  EXPECT_EQ(metricValue(M->text(), "cache_misses"), 1);
  EXPECT_GE(metricValue(M->text(), "requests"), 4);
  EXPECT_GE(metricValue(M->text(), "latency_samples"), 4);

  // Verify and lint accept the archive too.
  auto V = C.call(Opcode::Verify, {CjpPath});
  ASSERT_TRUE(static_cast<bool>(V));
  EXPECT_EQ(V->St, Status::Ok) << V->text();
  auto L = C.call(Opcode::Lint, {CjpPath});
  ASSERT_TRUE(static_cast<bool>(L));
  EXPECT_EQ(L->St, Status::Ok) << L->text();
  EXPECT_EQ(metricValue(L->text(), "classes"),
            static_cast<long>(Classes.size()));

  // Flush drops the entry; the next fetch misses again.
  auto Fl = C.call(Opcode::CacheFlush);
  ASSERT_TRUE(static_cast<bool>(Fl));
  EXPECT_EQ(Fl->St, Status::Ok);
  auto F3 = C.call(Opcode::UnpackClass, {CjpPath, Name});
  ASSERT_TRUE(static_cast<bool>(F3));
  EXPECT_EQ(F3->St, Status::Ok);
  EXPECT_EQ(F3->Body, F1->Body);
  auto M2 = C.call(Opcode::Metrics);
  ASSERT_TRUE(static_cast<bool>(M2));
  EXPECT_EQ(metricValue(M2->text(), "cache_misses"), 2);

  std::remove(JarPath.c_str());
  std::remove(CjpPath.c_str());
}

TEST(ServeServer, UnpackRoundTripOverSocket) {
  TestServer T = TestServer::start({}, "unpack");
  ASSERT_TRUE(T.Srv);
  Client C = T.connect();

  auto Classes = serveCorpus();
  std::string CjpPath = tempPath("serve_unpack.cjp");
  std::string OutJar = tempPath("serve_unpack_out.jar");
  ASSERT_TRUE(writeFileBytes(CjpPath, packIndexed(Classes)));

  auto R = C.call(Opcode::Unpack, {CjpPath, OutJar});
  ASSERT_TRUE(static_cast<bool>(R));
  ASSERT_EQ(R->St, Status::Ok) << R->text();

  // The restored jar holds every class byte-identically.
  std::ifstream In(OutJar, std::ios::binary);
  std::vector<uint8_t> Jar((std::istreambuf_iterator<char>(In)),
                           std::istreambuf_iterator<char>());
  auto Entries = readZip(Jar);
  ASSERT_TRUE(static_cast<bool>(Entries)) << Entries.message();
  ASSERT_EQ(Entries->size(), Classes.size());

  std::remove(CjpPath.c_str());
  std::remove(OutJar.c_str());
}

TEST(ServeServer, FileErrorsComeBackTyped) {
  TestServer T = TestServer::start({}, "errs");
  ASSERT_TRUE(T.Srv);
  Client C = T.connect();

  auto Missing = C.call(Opcode::Stat, {tempPath("nope.cjp")});
  ASSERT_TRUE(static_cast<bool>(Missing));
  EXPECT_EQ(Missing->St, Status::Failed);

  std::string Garbage = tempPath("serve_garbage.cjp");
  ASSERT_TRUE(writeFileBytes(Garbage, {'C', 'J', 'P', 'K', 0x63, 0, 0}));
  auto Bad = C.call(Opcode::Stat, {Garbage});
  ASSERT_TRUE(static_cast<bool>(Bad));
  EXPECT_EQ(Bad->St, Status::VersionMismatch) << Bad->text();

  auto BadClass = C.call(Opcode::UnpackClass, {Garbage, "com/x/Y"});
  ASSERT_TRUE(static_cast<bool>(BadClass));
  EXPECT_NE(BadClass->St, Status::Ok);

  std::remove(Garbage.c_str());
}

TEST(ServeServer, BudgetExhaustionDoesNotPoisonLaterRequests) {
  // A request-limits budget small enough that unpack (fresh budget per
  // request) fails LimitExceeded — and the next request, with its own
  // fresh budget, succeeds.
  ServerConfig Config;
  Config.RequestLimits.MaxInflateBytes = 16; // absurdly tight
  TestServer T = TestServer::start(Config, "budget");
  ASSERT_TRUE(T.Srv);
  Client C = T.connect();

  auto Classes = serveCorpus();
  std::string CjpPath = tempPath("serve_budget.cjp");
  std::string OutJar = tempPath("serve_budget_out.jar");
  ASSERT_TRUE(writeFileBytes(CjpPath, packIndexed(Classes)));

  auto R1 = C.call(Opcode::Unpack, {CjpPath, OutJar});
  ASSERT_TRUE(static_cast<bool>(R1));
  EXPECT_EQ(R1->St, Status::LimitExceeded) << R1->text();

  // Cached readers run under CacheLimits (default: generous), so the
  // same archive still serves single classes.
  std::string Name = (*PackedArchiveReader::open(packIndexed(Classes)))
                         .classNames()
                         .front();
  auto R2 = C.call(Opcode::UnpackClass, {CjpPath, Name});
  ASSERT_TRUE(static_cast<bool>(R2));
  EXPECT_EQ(R2->St, Status::Ok) << R2->text();

  // And ping still works: no cross-request poisoning.
  auto R3 = C.call(Opcode::Ping);
  ASSERT_TRUE(static_cast<bool>(R3));
  EXPECT_EQ(R3->St, Status::Ok);

  std::remove(CjpPath.c_str());
  std::remove(OutJar.c_str());
}

//===----------------------------------------------------------------------===//
// Hostile clients
//===----------------------------------------------------------------------===//

TEST(ServeHostile, OversizedLengthPrefixClosesAfterTypedError) {
  TestServer T = TestServer::start({}, "oversize");
  ASSERT_TRUE(T.Srv);
  Client C = T.connect();

  // Declare a 2 GiB request frame.
  ASSERT_TRUE(C.sendRaw({0x7F, 0xFF, 0xFF, 0xFF}));
  auto R = C.readResponse();
  ASSERT_TRUE(static_cast<bool>(R)) << R.message();
  EXPECT_EQ(R->St, Status::LimitExceeded);
  // The connection is then closed: the next read fails cleanly.
  EXPECT_FALSE(static_cast<bool>(C.readResponse()));

  // The server survives and accepts new connections.
  Client C2 = T.connect();
  auto Ping = C2.call(Opcode::Ping);
  ASSERT_TRUE(static_cast<bool>(Ping));
  EXPECT_EQ(Ping->St, Status::Ok);
}

TEST(ServeHostile, GarbageOpcodeLeavesConnectionUsable) {
  TestServer T = TestServer::start({}, "garbage");
  ASSERT_TRUE(T.Srv);
  Client C = T.connect();

  // A well-framed payload with an unknown opcode.
  std::vector<uint8_t> Payload = {0xEE, 0x00};
  ASSERT_TRUE(C.sendRaw(frame(Payload)));
  auto R = C.readResponse();
  ASSERT_TRUE(static_cast<bool>(R)) << R.message();
  EXPECT_EQ(R->St, Status::Corrupt);

  // Same connection, valid request: still served.
  auto Ping = C.call(Opcode::Ping);
  ASSERT_TRUE(static_cast<bool>(Ping));
  EXPECT_EQ(Ping->St, Status::Ok);

  // Malformed argument table (truncated argument) on the same
  // connection: typed reject, still usable.
  std::vector<uint8_t> Truncated = {0x04, 0x01, 0x30};
  ASSERT_TRUE(C.sendRaw(frame(Truncated)));
  auto R2 = C.readResponse();
  ASSERT_TRUE(static_cast<bool>(R2));
  EXPECT_EQ(R2->St, Status::Truncated);
  auto Ping2 = C.call(Opcode::Ping);
  ASSERT_TRUE(static_cast<bool>(Ping2));
  EXPECT_EQ(Ping2->St, Status::Ok);
}

TEST(ServeHostile, MidRequestDisconnectsDoNotKillTheServer) {
  TestServer T = TestServer::start({}, "disco");
  ASSERT_TRUE(T.Srv);

  {
    // Half a frame header, then hang up.
    Client C = T.connect();
    ASSERT_TRUE(C.sendRaw({0x00, 0x00}));
  }
  {
    // A full header promising 100 bytes, then hang up mid-payload.
    Client C = T.connect();
    ASSERT_TRUE(C.sendRaw({0x00, 0x00, 0x00, 0x64, 0x01, 0x02}));
  }
  {
    // A valid request, but disconnect without reading the response.
    Client C = T.connect();
    Request Req;
    Req.Op = Opcode::Ping;
    ASSERT_TRUE(C.sendRaw(frame(encodeRequest(Req))));
  }

  // After all that abuse, a polite client is served normally.
  Client C = T.connect();
  auto Ping = C.call(Opcode::Ping);
  ASSERT_TRUE(static_cast<bool>(Ping)) << Ping.message();
  EXPECT_EQ(Ping->St, Status::Ok);
}

TEST(ServeHostile, ZeroLengthFrameRejectsTyped) {
  TestServer T = TestServer::start({}, "zero");
  ASSERT_TRUE(T.Srv);
  Client C = T.connect();
  // Zero-length payload: shorter than the request fixed header.
  ASSERT_TRUE(C.sendRaw({0x00, 0x00, 0x00, 0x00}));
  auto R = C.readResponse();
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_EQ(R->St, Status::Truncated);
  auto Ping = C.call(Opcode::Ping);
  ASSERT_TRUE(static_cast<bool>(Ping));
  EXPECT_EQ(Ping->St, Status::Ok);
}

//===----------------------------------------------------------------------===//
// Concurrency and shutdown
//===----------------------------------------------------------------------===//

TEST(ServeServer, ConcurrentClientsShareTheCache) {
  ServerConfig Config;
  Config.Threads = 4;
  TestServer T = TestServer::start(Config, "conc");
  ASSERT_TRUE(T.Srv);

  auto Classes = serveCorpus(41, 32);
  std::string CjpPath = tempPath("serve_conc.cjp");
  std::vector<uint8_t> Archive = packIndexed(Classes, 4);
  ASSERT_TRUE(writeFileBytes(CjpPath, Archive));
  auto Ref = PackedArchiveReader::open(Archive);
  ASSERT_TRUE(static_cast<bool>(Ref));
  std::vector<std::string> Names = Ref->classNames();

  constexpr unsigned NumClients = 4;
  constexpr unsigned PerClient = 32;
  std::atomic<unsigned> Bad{0};
  std::vector<std::thread> Threads;
  for (unsigned K = 0; K < NumClients; ++K) {
    Threads.emplace_back([&, K] {
      auto C = Client::connectUnix(T.SocketPath);
      if (!C) {
        Bad.fetch_add(1);
        return;
      }
      for (unsigned I = 0; I < PerClient; ++I) {
        const std::string &Name = Names[(K * 7 + I) % Names.size()];
        auto R = C->call(Opcode::UnpackClass, {CjpPath, Name});
        if (!R || R->St != Status::Ok || R->Body.empty())
          Bad.fetch_add(1);
      }
    });
  }
  for (std::thread &Th : Threads)
    Th.join();
  EXPECT_EQ(Bad.load(), 0u);

  // One miss opened the archive; everything else hit.
  CacheStats S = T.Srv->cache().stats();
  EXPECT_GE(S.Hits, NumClients * PerClient - S.Misses);
  EXPECT_LE(S.Misses, NumClients); // racing first misses at worst
  EXPECT_EQ(T.Srv->metrics().requests(), NumClients * PerClient);

  std::remove(CjpPath.c_str());
}

TEST(ServeServer, GracefulShutdownDrainsInFlight) {
  TestServer T = TestServer::start({}, "drain");
  ASSERT_TRUE(T.Srv);
  Client C = T.connect();
  auto Ping = C.call(Opcode::Ping);
  ASSERT_TRUE(static_cast<bool>(Ping));

  T.Srv->requestStop();
  T.Srv->wait();

  // The listener is gone and the old connection reads EOF.
  EXPECT_FALSE(static_cast<bool>(C.readResponse()));
  EXPECT_FALSE(static_cast<bool>(Client::connectUnix(T.SocketPath)));
  EXPECT_GE(T.Srv->metrics().connections(), 1u);
}

TEST(ServeServer, TcpLoopbackListener) {
  ServerConfig Config;
  Config.TcpPort = 0; // ephemeral
  TestServer T = TestServer::start(Config, "tcp");
  ASSERT_TRUE(T.Srv);
  ASSERT_GT(T.Srv->tcpPort(), 0);
  auto C = Client::connectTcp(T.Srv->tcpPort());
  ASSERT_TRUE(static_cast<bool>(C)) << C.message();
  auto Ping = C->call(Opcode::Ping);
  ASSERT_TRUE(static_cast<bool>(Ping));
  EXPECT_EQ(Ping->St, Status::Ok);
  EXPECT_EQ(Ping->text(), "pong");
}
