//===- test_coder.cpp - reference scheme and arithmetic coder tests -------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "coder/Arithmetic.h"
#include "coder/RefCoder.h"
#include "corpus/Rng.h"
#include "support/VarInt.h"
#include <gtest/gtest.h>
#include <map>

using namespace cjpack;

namespace {

struct RefEvent {
  uint32_t Pool, Sub, Object;
};

/// A synthetic reference stream with skewed reuse across two pools and
/// several contexts.
std::vector<RefEvent> makeStream(size_t N, uint64_t Seed,
                                 uint32_t Universe = 80) {
  Rng R(Seed);
  std::vector<RefEvent> Out;
  for (size_t I = 0; I < N; ++I) {
    RefEvent E;
    E.Pool = static_cast<uint32_t>(R.below(2));
    E.Sub = static_cast<uint32_t>(R.below(3));
    // Context-correlated objects: each (pool, sub) prefers its own slice
    // of the universe, plus a shared hot set.
    if (R.chance(70))
      E.Object = E.Pool * 1000 + E.Sub * 100 +
                 static_cast<uint32_t>(R.zipf(Universe / 4));
    else
      E.Object = E.Pool * 1000 + static_cast<uint32_t>(R.zipf(Universe));
    Out.push_back(E);
  }
  return Out;
}

/// Runs encode over the stream, then decode, checking the decoder
/// reproduces the object sequence exactly.
void roundTrip(RefScheme S, const std::vector<RefEvent> &Stream) {
  RefStats Stats;
  for (const RefEvent &E : Stream)
    Stats.note(E.Pool, E.Object);

  auto Enc = makeRefEncoder(S, &Stats);
  ByteWriter W;
  std::vector<bool> NewFlags;
  for (const RefEvent &E : Stream)
    NewFlags.push_back(Enc->encode(E.Pool, E.Sub, E.Object, W));

  auto Dec = makeRefDecoder(S);
  ByteReader R(W.data());
  for (size_t I = 0; I < Stream.size(); ++I) {
    const RefEvent &E = Stream[I];
    auto Got = Dec->decode(E.Pool, E.Sub, R);
    if (NewFlags[I]) {
      // First occurrence: decoder must also see "new"; the caller then
      // registers the object (we use the same id space for the test).
      if (Got.has_value()) {
        // Freq/Cache may resolve a first occurrence from an already
        // bound id only if the encoder also returned false; mismatch is
        // a failure.
        FAIL() << refSchemeName(S) << ": decoder resolved event " << I
               << " but encoder saw a first occurrence";
      }
      Dec->registerNew(E.Pool, E.Sub, E.Object);
    } else {
      ASSERT_TRUE(Got.has_value())
          << refSchemeName(S) << ": decoder saw new at event " << I;
      ASSERT_EQ(*Got, E.Object) << refSchemeName(S) << " event " << I;
    }
  }
  EXPECT_FALSE(R.hasError());
}

} // namespace

class RefSchemeTest : public ::testing::TestWithParam<RefScheme> {};

TEST_P(RefSchemeTest, RoundTripsSkewedStream) {
  roundTrip(GetParam(), makeStream(5000, 42));
}

TEST_P(RefSchemeTest, RoundTripsTinyStream) {
  roundTrip(GetParam(), makeStream(3, 1));
}

TEST_P(RefSchemeTest, RoundTripsAllUniqueObjects) {
  // Every object occurs exactly once: all transients.
  std::vector<RefEvent> Stream;
  for (uint32_t I = 0; I < 200; ++I)
    Stream.push_back({I % 3, I % 2, 10000 + I});
  roundTrip(GetParam(), Stream);
}

TEST_P(RefSchemeTest, RoundTripsSingleObjectRepeated) {
  std::vector<RefEvent> Stream(500, RefEvent{0, 0, 7});
  roundTrip(GetParam(), Stream);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, RefSchemeTest,
    ::testing::Values(RefScheme::Simple, RefScheme::Basic, RefScheme::Freq,
                      RefScheme::Cache, RefScheme::MtfBasic,
                      RefScheme::MtfTransients, RefScheme::MtfContext,
                      RefScheme::MtfTransientsContext),
    [](const auto &Info) {
      std::string Name = refSchemeName(Info.param);
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

TEST(RefSchemes, MtfBeatsBasicOnSkewedStreams) {
  // The paper's Table 3 ordering: MTF < Freq < Basic in raw index bytes
  // on reuse-heavy streams.
  auto Stream = makeStream(20000, 9, 400);
  RefStats Stats;
  for (const RefEvent &E : Stream)
    Stats.note(E.Pool, E.Object);
  auto SizeOf = [&](RefScheme S) {
    auto Enc = makeRefEncoder(S, &Stats);
    ByteWriter W;
    for (const RefEvent &E : Stream)
      Enc->encode(E.Pool, E.Sub, E.Object, W);
    return W.size();
  };
  size_t Simple = SizeOf(RefScheme::Simple);
  size_t Basic = SizeOf(RefScheme::Basic);
  size_t Mtf = SizeOf(RefScheme::MtfTransientsContext);
  EXPECT_LT(Basic, Simple);
  EXPECT_LT(Mtf, Basic);
}

TEST(RefStats, CountsRanksAndTransients) {
  RefStats Stats;
  Stats.note(1, 10);
  Stats.note(1, 10);
  Stats.note(1, 10);
  Stats.note(1, 20);
  Stats.note(1, 20);
  Stats.note(1, 30);
  EXPECT_EQ(Stats.countOf(1, 10), 3u);
  EXPECT_TRUE(Stats.isTransient(1, 30));
  EXPECT_FALSE(Stats.isTransient(1, 20));
  EXPECT_EQ(Stats.rankOf(1, 10), 1u) << "most frequent gets rank 1";
  EXPECT_EQ(Stats.rankOf(1, 20), 2u);
  EXPECT_EQ(Stats.rankOf(1, 30), 0u) << "transients have no rank";
  EXPECT_EQ(Stats.countOf(2, 10), 0u) << "pools are independent";
}

TEST(Arithmetic, RoundTripsSkewedSymbols) {
  Rng R(5);
  std::vector<uint32_t> Symbols;
  for (int I = 0; I < 20000; ++I)
    Symbols.push_back(static_cast<uint32_t>(R.zipf(64)));
  AdaptiveModel EncModel(64);
  ArithmeticEncoder Enc;
  for (uint32_t S : Symbols)
    Enc.encode(EncModel, S);
  std::vector<uint8_t> Bytes = Enc.finish();

  AdaptiveModel DecModel(64);
  ArithmeticDecoder Dec(Bytes);
  for (uint32_t S : Symbols)
    ASSERT_EQ(Dec.decode(DecModel), S);
}

TEST(Arithmetic, ApproachesEntropyOnBiasedCoin) {
  // 95/5 binary source: entropy ~0.286 bits/symbol. The adaptive coder
  // should land well under 0.5 bits/symbol.
  Rng R(17);
  std::vector<uint32_t> Symbols;
  for (int I = 0; I < 50000; ++I)
    Symbols.push_back(R.chance(95) ? 0 : 1);
  AdaptiveModel Model(2);
  ArithmeticEncoder Enc;
  for (uint32_t S : Symbols)
    Enc.encode(Model, S);
  std::vector<uint8_t> Bytes = Enc.finish();
  double BitsPerSymbol = 8.0 * Bytes.size() / Symbols.size();
  EXPECT_LT(BitsPerSymbol, 0.5);
  EXPECT_GT(BitsPerSymbol, 0.25);
}

TEST(Arithmetic, SingleSymbolAlphabet) {
  AdaptiveModel Model(1);
  ArithmeticEncoder Enc;
  for (int I = 0; I < 100; ++I)
    Enc.encode(Model, 0);
  std::vector<uint8_t> Bytes = Enc.finish();
  AdaptiveModel DecModel(1);
  ArithmeticDecoder Dec(Bytes);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(Dec.decode(DecModel), 0u);
}
