file(REMOVE_RECURSE
  "CMakeFiles/packtool.dir/packtool.cpp.o"
  "CMakeFiles/packtool.dir/packtool.cpp.o.d"
  "packtool"
  "packtool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packtool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
