# Empty dependencies file for packtool.
# This may be replaced when dependencies are built.
