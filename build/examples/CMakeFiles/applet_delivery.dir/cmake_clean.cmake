file(REMOVE_RECURSE
  "CMakeFiles/applet_delivery.dir/applet_delivery.cpp.o"
  "CMakeFiles/applet_delivery.dir/applet_delivery.cpp.o.d"
  "applet_delivery"
  "applet_delivery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/applet_delivery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
