# Empty compiler generated dependencies file for applet_delivery.
# This may be replaced when dependencies are built.
