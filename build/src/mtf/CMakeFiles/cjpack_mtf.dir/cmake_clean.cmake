file(REMOVE_RECURSE
  "CMakeFiles/cjpack_mtf.dir/IndexedSkipList.cpp.o"
  "CMakeFiles/cjpack_mtf.dir/IndexedSkipList.cpp.o.d"
  "CMakeFiles/cjpack_mtf.dir/MtfQueue.cpp.o"
  "CMakeFiles/cjpack_mtf.dir/MtfQueue.cpp.o.d"
  "libcjpack_mtf.a"
  "libcjpack_mtf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cjpack_mtf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
