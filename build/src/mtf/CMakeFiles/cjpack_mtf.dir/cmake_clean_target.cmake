file(REMOVE_RECURSE
  "libcjpack_mtf.a"
)
