# Empty dependencies file for cjpack_mtf.
# This may be replaced when dependencies are built.
