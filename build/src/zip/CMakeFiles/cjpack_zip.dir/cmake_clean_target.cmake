file(REMOVE_RECURSE
  "libcjpack_zip.a"
)
