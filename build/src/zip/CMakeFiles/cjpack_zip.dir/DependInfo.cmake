
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/zip/Jar.cpp" "src/zip/CMakeFiles/cjpack_zip.dir/Jar.cpp.o" "gcc" "src/zip/CMakeFiles/cjpack_zip.dir/Jar.cpp.o.d"
  "/root/repo/src/zip/Manifest.cpp" "src/zip/CMakeFiles/cjpack_zip.dir/Manifest.cpp.o" "gcc" "src/zip/CMakeFiles/cjpack_zip.dir/Manifest.cpp.o.d"
  "/root/repo/src/zip/Sha1.cpp" "src/zip/CMakeFiles/cjpack_zip.dir/Sha1.cpp.o" "gcc" "src/zip/CMakeFiles/cjpack_zip.dir/Sha1.cpp.o.d"
  "/root/repo/src/zip/ZipFile.cpp" "src/zip/CMakeFiles/cjpack_zip.dir/ZipFile.cpp.o" "gcc" "src/zip/CMakeFiles/cjpack_zip.dir/ZipFile.cpp.o.d"
  "/root/repo/src/zip/Zlib.cpp" "src/zip/CMakeFiles/cjpack_zip.dir/Zlib.cpp.o" "gcc" "src/zip/CMakeFiles/cjpack_zip.dir/Zlib.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
