# Empty dependencies file for cjpack_zip.
# This may be replaced when dependencies are built.
