file(REMOVE_RECURSE
  "CMakeFiles/cjpack_zip.dir/Jar.cpp.o"
  "CMakeFiles/cjpack_zip.dir/Jar.cpp.o.d"
  "CMakeFiles/cjpack_zip.dir/Manifest.cpp.o"
  "CMakeFiles/cjpack_zip.dir/Manifest.cpp.o.d"
  "CMakeFiles/cjpack_zip.dir/Sha1.cpp.o"
  "CMakeFiles/cjpack_zip.dir/Sha1.cpp.o.d"
  "CMakeFiles/cjpack_zip.dir/ZipFile.cpp.o"
  "CMakeFiles/cjpack_zip.dir/ZipFile.cpp.o.d"
  "CMakeFiles/cjpack_zip.dir/Zlib.cpp.o"
  "CMakeFiles/cjpack_zip.dir/Zlib.cpp.o.d"
  "libcjpack_zip.a"
  "libcjpack_zip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cjpack_zip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
