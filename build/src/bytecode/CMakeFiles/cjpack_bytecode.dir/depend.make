# Empty dependencies file for cjpack_bytecode.
# This may be replaced when dependencies are built.
