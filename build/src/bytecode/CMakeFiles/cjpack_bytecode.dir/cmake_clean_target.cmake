file(REMOVE_RECURSE
  "libcjpack_bytecode.a"
)
