file(REMOVE_RECURSE
  "CMakeFiles/cjpack_bytecode.dir/Instruction.cpp.o"
  "CMakeFiles/cjpack_bytecode.dir/Instruction.cpp.o.d"
  "CMakeFiles/cjpack_bytecode.dir/Opcodes.cpp.o"
  "CMakeFiles/cjpack_bytecode.dir/Opcodes.cpp.o.d"
  "CMakeFiles/cjpack_bytecode.dir/StackState.cpp.o"
  "CMakeFiles/cjpack_bytecode.dir/StackState.cpp.o.d"
  "libcjpack_bytecode.a"
  "libcjpack_bytecode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cjpack_bytecode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
