
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bytecode/Instruction.cpp" "src/bytecode/CMakeFiles/cjpack_bytecode.dir/Instruction.cpp.o" "gcc" "src/bytecode/CMakeFiles/cjpack_bytecode.dir/Instruction.cpp.o.d"
  "/root/repo/src/bytecode/Opcodes.cpp" "src/bytecode/CMakeFiles/cjpack_bytecode.dir/Opcodes.cpp.o" "gcc" "src/bytecode/CMakeFiles/cjpack_bytecode.dir/Opcodes.cpp.o.d"
  "/root/repo/src/bytecode/StackState.cpp" "src/bytecode/CMakeFiles/cjpack_bytecode.dir/StackState.cpp.o" "gcc" "src/bytecode/CMakeFiles/cjpack_bytecode.dir/StackState.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
