
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coder/Arithmetic.cpp" "src/coder/CMakeFiles/cjpack_coder.dir/Arithmetic.cpp.o" "gcc" "src/coder/CMakeFiles/cjpack_coder.dir/Arithmetic.cpp.o.d"
  "/root/repo/src/coder/RefCoder.cpp" "src/coder/CMakeFiles/cjpack_coder.dir/RefCoder.cpp.o" "gcc" "src/coder/CMakeFiles/cjpack_coder.dir/RefCoder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mtf/CMakeFiles/cjpack_mtf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
