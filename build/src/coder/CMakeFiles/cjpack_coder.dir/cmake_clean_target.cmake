file(REMOVE_RECURSE
  "libcjpack_coder.a"
)
