file(REMOVE_RECURSE
  "CMakeFiles/cjpack_coder.dir/Arithmetic.cpp.o"
  "CMakeFiles/cjpack_coder.dir/Arithmetic.cpp.o.d"
  "CMakeFiles/cjpack_coder.dir/RefCoder.cpp.o"
  "CMakeFiles/cjpack_coder.dir/RefCoder.cpp.o.d"
  "libcjpack_coder.a"
  "libcjpack_coder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cjpack_coder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
