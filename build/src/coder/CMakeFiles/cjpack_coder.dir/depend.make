# Empty dependencies file for cjpack_coder.
# This may be replaced when dependencies are built.
