# Empty compiler generated dependencies file for cjpack_jazz.
# This may be replaced when dependencies are built.
