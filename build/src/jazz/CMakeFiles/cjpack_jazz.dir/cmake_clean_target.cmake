file(REMOVE_RECURSE
  "libcjpack_jazz.a"
)
