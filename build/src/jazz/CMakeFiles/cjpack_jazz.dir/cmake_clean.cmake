file(REMOVE_RECURSE
  "CMakeFiles/cjpack_jazz.dir/Jazz.cpp.o"
  "CMakeFiles/cjpack_jazz.dir/Jazz.cpp.o.d"
  "libcjpack_jazz.a"
  "libcjpack_jazz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cjpack_jazz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
