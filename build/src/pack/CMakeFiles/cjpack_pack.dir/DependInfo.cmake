
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pack/ClassOrder.cpp" "src/pack/CMakeFiles/cjpack_pack.dir/ClassOrder.cpp.o" "gcc" "src/pack/CMakeFiles/cjpack_pack.dir/ClassOrder.cpp.o.d"
  "/root/repo/src/pack/CodeCommon.cpp" "src/pack/CMakeFiles/cjpack_pack.dir/CodeCommon.cpp.o" "gcc" "src/pack/CMakeFiles/cjpack_pack.dir/CodeCommon.cpp.o.d"
  "/root/repo/src/pack/CustomOpcodes.cpp" "src/pack/CMakeFiles/cjpack_pack.dir/CustomOpcodes.cpp.o" "gcc" "src/pack/CMakeFiles/cjpack_pack.dir/CustomOpcodes.cpp.o.d"
  "/root/repo/src/pack/Decoder.cpp" "src/pack/CMakeFiles/cjpack_pack.dir/Decoder.cpp.o" "gcc" "src/pack/CMakeFiles/cjpack_pack.dir/Decoder.cpp.o.d"
  "/root/repo/src/pack/Encoder.cpp" "src/pack/CMakeFiles/cjpack_pack.dir/Encoder.cpp.o" "gcc" "src/pack/CMakeFiles/cjpack_pack.dir/Encoder.cpp.o.d"
  "/root/repo/src/pack/Model.cpp" "src/pack/CMakeFiles/cjpack_pack.dir/Model.cpp.o" "gcc" "src/pack/CMakeFiles/cjpack_pack.dir/Model.cpp.o.d"
  "/root/repo/src/pack/Preload.cpp" "src/pack/CMakeFiles/cjpack_pack.dir/Preload.cpp.o" "gcc" "src/pack/CMakeFiles/cjpack_pack.dir/Preload.cpp.o.d"
  "/root/repo/src/pack/Streams.cpp" "src/pack/CMakeFiles/cjpack_pack.dir/Streams.cpp.o" "gcc" "src/pack/CMakeFiles/cjpack_pack.dir/Streams.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/classfile/CMakeFiles/cjpack_classfile.dir/DependInfo.cmake"
  "/root/repo/build/src/bytecode/CMakeFiles/cjpack_bytecode.dir/DependInfo.cmake"
  "/root/repo/build/src/coder/CMakeFiles/cjpack_coder.dir/DependInfo.cmake"
  "/root/repo/build/src/mtf/CMakeFiles/cjpack_mtf.dir/DependInfo.cmake"
  "/root/repo/build/src/zip/CMakeFiles/cjpack_zip.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
