# Empty dependencies file for cjpack_pack.
# This may be replaced when dependencies are built.
