file(REMOVE_RECURSE
  "libcjpack_pack.a"
)
