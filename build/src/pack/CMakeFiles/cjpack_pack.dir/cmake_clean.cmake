file(REMOVE_RECURSE
  "CMakeFiles/cjpack_pack.dir/ClassOrder.cpp.o"
  "CMakeFiles/cjpack_pack.dir/ClassOrder.cpp.o.d"
  "CMakeFiles/cjpack_pack.dir/CodeCommon.cpp.o"
  "CMakeFiles/cjpack_pack.dir/CodeCommon.cpp.o.d"
  "CMakeFiles/cjpack_pack.dir/CustomOpcodes.cpp.o"
  "CMakeFiles/cjpack_pack.dir/CustomOpcodes.cpp.o.d"
  "CMakeFiles/cjpack_pack.dir/Decoder.cpp.o"
  "CMakeFiles/cjpack_pack.dir/Decoder.cpp.o.d"
  "CMakeFiles/cjpack_pack.dir/Encoder.cpp.o"
  "CMakeFiles/cjpack_pack.dir/Encoder.cpp.o.d"
  "CMakeFiles/cjpack_pack.dir/Model.cpp.o"
  "CMakeFiles/cjpack_pack.dir/Model.cpp.o.d"
  "CMakeFiles/cjpack_pack.dir/Preload.cpp.o"
  "CMakeFiles/cjpack_pack.dir/Preload.cpp.o.d"
  "CMakeFiles/cjpack_pack.dir/Streams.cpp.o"
  "CMakeFiles/cjpack_pack.dir/Streams.cpp.o.d"
  "libcjpack_pack.a"
  "libcjpack_pack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cjpack_pack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
