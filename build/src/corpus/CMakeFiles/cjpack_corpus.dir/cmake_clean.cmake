file(REMOVE_RECURSE
  "CMakeFiles/cjpack_corpus.dir/BytecodeBuilder.cpp.o"
  "CMakeFiles/cjpack_corpus.dir/BytecodeBuilder.cpp.o.d"
  "CMakeFiles/cjpack_corpus.dir/Corpus.cpp.o"
  "CMakeFiles/cjpack_corpus.dir/Corpus.cpp.o.d"
  "CMakeFiles/cjpack_corpus.dir/Names.cpp.o"
  "CMakeFiles/cjpack_corpus.dir/Names.cpp.o.d"
  "libcjpack_corpus.a"
  "libcjpack_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cjpack_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
