
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/BytecodeBuilder.cpp" "src/corpus/CMakeFiles/cjpack_corpus.dir/BytecodeBuilder.cpp.o" "gcc" "src/corpus/CMakeFiles/cjpack_corpus.dir/BytecodeBuilder.cpp.o.d"
  "/root/repo/src/corpus/Corpus.cpp" "src/corpus/CMakeFiles/cjpack_corpus.dir/Corpus.cpp.o" "gcc" "src/corpus/CMakeFiles/cjpack_corpus.dir/Corpus.cpp.o.d"
  "/root/repo/src/corpus/Names.cpp" "src/corpus/CMakeFiles/cjpack_corpus.dir/Names.cpp.o" "gcc" "src/corpus/CMakeFiles/cjpack_corpus.dir/Names.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/classfile/CMakeFiles/cjpack_classfile.dir/DependInfo.cmake"
  "/root/repo/build/src/bytecode/CMakeFiles/cjpack_bytecode.dir/DependInfo.cmake"
  "/root/repo/build/src/zip/CMakeFiles/cjpack_zip.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
