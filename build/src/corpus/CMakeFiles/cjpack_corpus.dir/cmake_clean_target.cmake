file(REMOVE_RECURSE
  "libcjpack_corpus.a"
)
