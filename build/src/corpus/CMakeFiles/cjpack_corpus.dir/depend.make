# Empty dependencies file for cjpack_corpus.
# This may be replaced when dependencies are built.
