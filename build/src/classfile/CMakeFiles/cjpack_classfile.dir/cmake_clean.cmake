file(REMOVE_RECURSE
  "CMakeFiles/cjpack_classfile.dir/ClassFile.cpp.o"
  "CMakeFiles/cjpack_classfile.dir/ClassFile.cpp.o.d"
  "CMakeFiles/cjpack_classfile.dir/ConstantPool.cpp.o"
  "CMakeFiles/cjpack_classfile.dir/ConstantPool.cpp.o.d"
  "CMakeFiles/cjpack_classfile.dir/Descriptor.cpp.o"
  "CMakeFiles/cjpack_classfile.dir/Descriptor.cpp.o.d"
  "CMakeFiles/cjpack_classfile.dir/Reader.cpp.o"
  "CMakeFiles/cjpack_classfile.dir/Reader.cpp.o.d"
  "CMakeFiles/cjpack_classfile.dir/Transform.cpp.o"
  "CMakeFiles/cjpack_classfile.dir/Transform.cpp.o.d"
  "CMakeFiles/cjpack_classfile.dir/Writer.cpp.o"
  "CMakeFiles/cjpack_classfile.dir/Writer.cpp.o.d"
  "libcjpack_classfile.a"
  "libcjpack_classfile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cjpack_classfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
