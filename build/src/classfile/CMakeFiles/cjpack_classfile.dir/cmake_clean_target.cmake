file(REMOVE_RECURSE
  "libcjpack_classfile.a"
)
