# Empty dependencies file for cjpack_classfile.
# This may be replaced when dependencies are built.
