
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/classfile/ClassFile.cpp" "src/classfile/CMakeFiles/cjpack_classfile.dir/ClassFile.cpp.o" "gcc" "src/classfile/CMakeFiles/cjpack_classfile.dir/ClassFile.cpp.o.d"
  "/root/repo/src/classfile/ConstantPool.cpp" "src/classfile/CMakeFiles/cjpack_classfile.dir/ConstantPool.cpp.o" "gcc" "src/classfile/CMakeFiles/cjpack_classfile.dir/ConstantPool.cpp.o.d"
  "/root/repo/src/classfile/Descriptor.cpp" "src/classfile/CMakeFiles/cjpack_classfile.dir/Descriptor.cpp.o" "gcc" "src/classfile/CMakeFiles/cjpack_classfile.dir/Descriptor.cpp.o.d"
  "/root/repo/src/classfile/Reader.cpp" "src/classfile/CMakeFiles/cjpack_classfile.dir/Reader.cpp.o" "gcc" "src/classfile/CMakeFiles/cjpack_classfile.dir/Reader.cpp.o.d"
  "/root/repo/src/classfile/Transform.cpp" "src/classfile/CMakeFiles/cjpack_classfile.dir/Transform.cpp.o" "gcc" "src/classfile/CMakeFiles/cjpack_classfile.dir/Transform.cpp.o.d"
  "/root/repo/src/classfile/Writer.cpp" "src/classfile/CMakeFiles/cjpack_classfile.dir/Writer.cpp.o" "gcc" "src/classfile/CMakeFiles/cjpack_classfile.dir/Writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bytecode/CMakeFiles/cjpack_bytecode.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
