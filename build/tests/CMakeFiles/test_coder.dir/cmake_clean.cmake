file(REMOVE_RECURSE
  "CMakeFiles/test_coder.dir/test_coder.cpp.o"
  "CMakeFiles/test_coder.dir/test_coder.cpp.o.d"
  "test_coder"
  "test_coder.pdb"
  "test_coder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
