# Empty dependencies file for test_coder.
# This may be replaced when dependencies are built.
