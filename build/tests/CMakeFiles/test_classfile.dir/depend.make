# Empty dependencies file for test_classfile.
# This may be replaced when dependencies are built.
