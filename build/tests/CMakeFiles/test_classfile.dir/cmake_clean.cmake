file(REMOVE_RECURSE
  "CMakeFiles/test_classfile.dir/test_classfile.cpp.o"
  "CMakeFiles/test_classfile.dir/test_classfile.cpp.o.d"
  "test_classfile"
  "test_classfile.pdb"
  "test_classfile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_classfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
