file(REMOVE_RECURSE
  "CMakeFiles/test_jazz.dir/test_jazz.cpp.o"
  "CMakeFiles/test_jazz.dir/test_jazz.cpp.o.d"
  "test_jazz"
  "test_jazz.pdb"
  "test_jazz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jazz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
