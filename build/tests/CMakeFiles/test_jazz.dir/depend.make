# Empty dependencies file for test_jazz.
# This may be replaced when dependencies are built.
