file(REMOVE_RECURSE
  "CMakeFiles/test_streams.dir/test_streams.cpp.o"
  "CMakeFiles/test_streams.dir/test_streams.cpp.o.d"
  "test_streams"
  "test_streams.pdb"
  "test_streams[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_streams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
