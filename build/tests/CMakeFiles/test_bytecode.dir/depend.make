# Empty dependencies file for test_bytecode.
# This may be replaced when dependencies are built.
