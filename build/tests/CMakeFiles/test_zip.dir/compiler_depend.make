# Empty compiler generated dependencies file for test_zip.
# This may be replaced when dependencies are built.
