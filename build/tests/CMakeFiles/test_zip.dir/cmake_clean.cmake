file(REMOVE_RECURSE
  "CMakeFiles/test_zip.dir/test_zip.cpp.o"
  "CMakeFiles/test_zip.dir/test_zip.cpp.o.d"
  "test_zip"
  "test_zip.pdb"
  "test_zip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
