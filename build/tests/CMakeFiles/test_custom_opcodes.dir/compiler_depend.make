# Empty compiler generated dependencies file for test_custom_opcodes.
# This may be replaced when dependencies are built.
