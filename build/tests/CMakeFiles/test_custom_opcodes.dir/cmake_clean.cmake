file(REMOVE_RECURSE
  "CMakeFiles/test_custom_opcodes.dir/test_custom_opcodes.cpp.o"
  "CMakeFiles/test_custom_opcodes.dir/test_custom_opcodes.cpp.o.d"
  "test_custom_opcodes"
  "test_custom_opcodes.pdb"
  "test_custom_opcodes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_custom_opcodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
