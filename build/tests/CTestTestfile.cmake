# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_skiplist[1]_include.cmake")
include("/root/repo/build/tests/test_classfile[1]_include.cmake")
include("/root/repo/build/tests/test_bytecode[1]_include.cmake")
include("/root/repo/build/tests/test_zip[1]_include.cmake")
include("/root/repo/build/tests/test_coder[1]_include.cmake")
include("/root/repo/build/tests/test_corpus[1]_include.cmake")
include("/root/repo/build/tests/test_pack[1]_include.cmake")
include("/root/repo/build/tests/test_streams[1]_include.cmake")
include("/root/repo/build/tests/test_custom_opcodes[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_jazz[1]_include.cmake")
include("/root/repo/build/tests/test_manifest[1]_include.cmake")
