file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_preload.dir/bench_ablation_preload.cpp.o"
  "CMakeFiles/bench_ablation_preload.dir/bench_ablation_preload.cpp.o.d"
  "bench_ablation_preload"
  "bench_ablation_preload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_preload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
