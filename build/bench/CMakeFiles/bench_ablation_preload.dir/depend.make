# Empty dependencies file for bench_ablation_preload.
# This may be replaced when dependencies are built.
