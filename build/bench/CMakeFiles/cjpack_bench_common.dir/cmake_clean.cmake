file(REMOVE_RECURSE
  "CMakeFiles/cjpack_bench_common.dir/BenchCommon.cpp.o"
  "CMakeFiles/cjpack_bench_common.dir/BenchCommon.cpp.o.d"
  "libcjpack_bench_common.a"
  "libcjpack_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cjpack_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
