# Empty dependencies file for cjpack_bench_common.
# This may be replaced when dependencies are built.
