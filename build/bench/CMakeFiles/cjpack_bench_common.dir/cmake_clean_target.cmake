file(REMOVE_RECURSE
  "libcjpack_bench_common.a"
)
