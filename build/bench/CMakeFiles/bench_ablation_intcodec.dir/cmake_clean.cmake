file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_intcodec.dir/bench_ablation_intcodec.cpp.o"
  "CMakeFiles/bench_ablation_intcodec.dir/bench_ablation_intcodec.cpp.o.d"
  "bench_ablation_intcodec"
  "bench_ablation_intcodec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_intcodec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
