# Empty dependencies file for bench_ablation_intcodec.
# This may be replaced when dependencies are built.
