file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_custom_ops.dir/bench_ablation_custom_ops.cpp.o"
  "CMakeFiles/bench_ablation_custom_ops.dir/bench_ablation_custom_ops.cpp.o.d"
  "bench_ablation_custom_ops"
  "bench_ablation_custom_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_custom_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
