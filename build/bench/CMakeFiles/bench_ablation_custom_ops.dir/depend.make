# Empty dependencies file for bench_ablation_custom_ops.
# This may be replaced when dependencies are built.
