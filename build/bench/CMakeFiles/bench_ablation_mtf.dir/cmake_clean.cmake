file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mtf.dir/bench_ablation_mtf.cpp.o"
  "CMakeFiles/bench_ablation_mtf.dir/bench_ablation_mtf.cpp.o.d"
  "bench_ablation_mtf"
  "bench_ablation_mtf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mtf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
