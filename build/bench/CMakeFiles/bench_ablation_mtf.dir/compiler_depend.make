# Empty compiler generated dependencies file for bench_ablation_mtf.
# This may be replaced when dependencies are built.
