//===- Jazz.h - the Jazz comparator format (§13.1) -------------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reimplementation of the Jazz archive format [BHV98] as §13.1
/// describes it, used as the comparator in Table 6 / Figure 2:
///
///  * a single global constant pool shared by every classfile — the
///    "sharing" idea without the paper's factoring (package names stay
///    inside class names, class names stay inside descriptors);
///  * standard constant-pool entry kinds are retained;
///  * references use fixed per-kind ids (first-seen order), with no
///    locality adaptation (no move-to-front);
///  * everything is serialized into one stream and zlib-compressed.
///
/// Like the packed format, decompression deterministically reproduces
/// the prepareForPacking-canonical classfiles.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_JAZZ_JAZZ_H
#define CJPACK_JAZZ_JAZZ_H

#include "classfile/ClassFile.h"
#include "support/Error.h"
#include "zip/Jar.h"
#include <vector>

namespace cjpack {

/// Packs prepared classfiles into a Jazz archive.
Expected<std::vector<uint8_t>>
jazzPack(const std::vector<ClassFile> &Classes, bool Compress = true);

/// Unpacks a Jazz archive.
Expected<std::vector<ClassFile>>
jazzUnpack(const std::vector<uint8_t> &Archive);

/// Parses + prepares raw classfiles, then packs them.
Expected<std::vector<uint8_t>>
jazzPackBytes(const std::vector<NamedClass> &Classes);

} // namespace cjpack

#endif // CJPACK_JAZZ_JAZZ_H
