//===- Jazz.cpp - the Jazz comparator format (§13.1) ----------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "jazz/Jazz.h"
#include "bytecode/Instruction.h"
#include "classfile/Reader.h"
#include "classfile/Transform.h"
#include "coder/RefCoder.h"
#include "pack/CodeCommon.h"
#include "support/VarInt.h"
#include "zip/Zlib.h"
#include <map>

using namespace cjpack;

namespace {

/// Jazz's global pools: standard constant-pool entry kinds, shared
/// across classfiles, unfactored.
enum class JPool : uint32_t { Utf8, Loadable, Class, Nat, Field, Method };

struct JLoadable {
  CpTag Tag = CpTag::Integer;
  uint64_t Bits = 0;
  uint32_t Utf8 = 0; ///< for String entries

  bool operator<(const JLoadable &O) const {
    return std::tie(Tag, Bits, Utf8) < std::tie(O.Tag, O.Bits, O.Utf8);
  }
};

struct JNat {
  uint32_t Name = 0, Desc = 0;
  bool operator<(const JNat &O) const {
    return std::tie(Name, Desc) < std::tie(O.Name, O.Desc);
  }
};

struct JMember {
  uint32_t Class = 0, Nat = 0;
  bool IsInterface = false; ///< method refs only
  bool operator<(const JMember &O) const {
    return std::tie(Class, Nat, IsInterface) <
           std::tie(O.Class, O.Nat, O.IsInterface);
  }
};

class JazzModel {
public:
  template <typename T, typename MapT>
  static uint32_t internInto(MapT &Ids, std::vector<T> &Items,
                             const T &Key) {
    auto It = Ids.find(Key);
    if (It != Ids.end())
      return It->second;
    uint32_t Id = static_cast<uint32_t>(Items.size());
    Items.push_back(Key);
    Ids.emplace(Key, Id);
    return Id;
  }

  uint32_t utf8(std::string_view S) {
    auto It = UtfIds.find(S);
    if (It != UtfIds.end())
      return It->second;
    uint32_t Id = static_cast<uint32_t>(Utfs.size());
    Utfs.emplace_back(S);
    UtfIds.emplace(S, Id);
    return Id;
  }
  uint32_t loadable(const JLoadable &L) {
    return internInto(LoadIds, Loads, L);
  }
  uint32_t classEntry(std::string_view Name) {
    return internInto(ClassIds, Classes, utf8(Name));
  }
  uint32_t nat(std::string_view Name, std::string_view Desc) {
    return internInto(NatIds, Nats, JNat{utf8(Name), utf8(Desc)});
  }
  uint32_t fieldRef(uint32_t Cls, uint32_t Nat) {
    return internInto(FieldIds, Fields, JMember{Cls, Nat, false});
  }
  uint32_t methodRef(uint32_t Cls, uint32_t Nat, bool IsInterface) {
    return internInto(MethodIds, Methods, JMember{Cls, Nat, IsInterface});
  }

  std::vector<std::string> Utfs;
  std::vector<JLoadable> Loads;
  std::vector<uint32_t> Classes; ///< utf8 id of the name
  std::vector<JNat> Nats;
  std::vector<JMember> Fields, Methods;

private:
  std::map<std::string, uint32_t, std::less<>> UtfIds;
  std::map<JLoadable, uint32_t> LoadIds;
  std::map<uint32_t, uint32_t> ClassIds;
  std::map<JNat, uint32_t> NatIds;
  std::map<JMember, uint32_t> FieldIds, MethodIds;
};

//===----------------------------------------------------------------------===//
// Encoder
//===----------------------------------------------------------------------===//

class JazzEncoder {
public:
  JazzEncoder() : Enc(makeRefEncoder(RefScheme::Basic, nullptr)) {}

  Error encodeArchive(const std::vector<ClassFile> &Classes,
                      ByteWriter &W) {
    writeVarUInt(W, Classes.size());
    for (const ClassFile &CF : Classes)
      if (auto E = encodeClass(CF, W))
        return E;
    return Error::success();
  }

private:
  uint32_t pool(JPool P) { return static_cast<uint32_t>(P); }

  void refUtf8(uint32_t Id, ByteWriter &W) {
    if (Enc->encode(pool(JPool::Utf8), 0, Id, W)) {
      const std::string &S = M.Utfs[Id];
      writeVarUInt(W, S.size());
      W.writeString(S);
    }
  }

  void refLoadable(uint32_t Id, ByteWriter &W) {
    if (Enc->encode(pool(JPool::Loadable), 0, Id, W)) {
      const JLoadable &L = M.Loads[Id];
      W.writeU1(static_cast<uint8_t>(L.Tag));
      switch (L.Tag) {
      case CpTag::Integer:
      case CpTag::Float:
        W.writeU4(static_cast<uint32_t>(L.Bits));
        break;
      case CpTag::Long:
      case CpTag::Double:
        W.writeU8(L.Bits);
        break;
      case CpTag::String:
        refUtf8(L.Utf8, W);
        break;
      default:
        assert(false && "bad loadable tag");
      }
    }
  }

  void refClass(uint32_t Id, ByteWriter &W) {
    if (Enc->encode(pool(JPool::Class), 0, Id, W))
      refUtf8(M.Classes[Id], W);
  }

  void refNat(uint32_t Id, ByteWriter &W) {
    if (Enc->encode(pool(JPool::Nat), 0, Id, W)) {
      refUtf8(M.Nats[Id].Name, W);
      refUtf8(M.Nats[Id].Desc, W);
    }
  }

  void refMember(JPool P, uint32_t Id, ByteWriter &W) {
    const std::vector<JMember> &Items =
        P == JPool::Field ? M.Fields : M.Methods;
    if (Enc->encode(pool(P), 0, Id, W)) {
      const JMember &E = Items[Id];
      if (P == JPool::Method)
        W.writeU1(E.IsInterface ? 1 : 0);
      refClass(E.Class, W);
      refNat(E.Nat, W);
    }
  }

  Expected<uint32_t> loadableFromCp(const ClassFile &CF, uint16_t Index) {
    if (!CF.CP.isValidIndex(Index))
      return Error::failure("jazz: dangling constant index");
    const CpEntry &E = CF.CP.entry(Index);
    JLoadable L;
    L.Tag = E.Tag;
    switch (E.Tag) {
    case CpTag::Integer:
    case CpTag::Float:
    case CpTag::Long:
    case CpTag::Double:
      L.Bits = E.Bits;
      break;
    case CpTag::String:
      L.Utf8 = M.utf8(CF.CP.utf8(E.Ref1));
      break;
    default:
      return Error::failure("jazz: unsupported loadable kind");
    }
    return M.loadable(L);
  }

  uint32_t classFromCp(const ClassFile &CF, uint16_t Index) {
    return M.classEntry(CF.CP.className(Index));
  }

  Expected<uint32_t> memberFromCp(const ClassFile &CF, uint16_t Index,
                                  bool IsField) {
    const CpEntry &E = CF.CP.entry(Index);
    if (IsField ? E.Tag != CpTag::FieldRef
                : (E.Tag != CpTag::MethodRef &&
                   E.Tag != CpTag::InterfaceMethodRef))
      return Error::failure("jazz: member ref kind mismatch");
    const CpEntry &NT = CF.CP.entry(E.Ref2);
    uint32_t Cls = classFromCp(CF, E.Ref1);
    uint32_t Nat = M.nat(CF.CP.utf8(NT.Ref1), CF.CP.utf8(NT.Ref2));
    if (IsField)
      return M.fieldRef(Cls, Nat);
    return M.methodRef(Cls, Nat, E.Tag == CpTag::InterfaceMethodRef);
  }

  Error encodeClass(const ClassFile &CF, ByteWriter &W) {
    writeVarUInt(W, CF.MinorVersion);
    writeVarUInt(W, CF.MajorVersion);
    uint32_t Flags = CF.AccessFlags;
    if (CF.SuperClass != 0)
      Flags |= PackedFlagAux0;
    if (findAttribute(CF.Attributes, "Synthetic"))
      Flags |= PackedFlagSynthetic;
    if (findAttribute(CF.Attributes, "Deprecated"))
      Flags |= PackedFlagDeprecated;
    writeVarUInt(W, Flags);
    refClass(M.classEntry(CF.thisClassName()), W);
    if (CF.SuperClass != 0)
      refClass(M.classEntry(CF.superClassName()), W);
    writeVarUInt(W, CF.Interfaces.size());
    for (uint16_t I : CF.Interfaces)
      refClass(classFromCp(CF, I), W);

    writeVarUInt(W, CF.Fields.size());
    for (const MemberInfo &F : CF.Fields)
      if (auto E = encodeField(CF, F, W))
        return E;
    writeVarUInt(W, CF.Methods.size());
    for (const MemberInfo &Mth : CF.Methods)
      if (auto E = encodeMethod(CF, Mth, W))
        return E;
    return Error::success();
  }

  uint32_t memberFlags(const MemberInfo &MI) {
    uint32_t Flags = MI.AccessFlags;
    if (findAttribute(MI.Attributes, "Synthetic"))
      Flags |= PackedFlagSynthetic;
    if (findAttribute(MI.Attributes, "Deprecated"))
      Flags |= PackedFlagDeprecated;
    return Flags;
  }

  Error encodeField(const ClassFile &CF, const MemberInfo &F,
                    ByteWriter &W) {
    const AttributeInfo *Const =
        findAttribute(F.Attributes, "ConstantValue");
    uint32_t Flags = memberFlags(F);
    if (Const)
      Flags |= PackedFlagAux0;
    writeVarUInt(W, Flags);
    refUtf8(M.utf8(CF.CP.utf8(F.NameIndex)), W);
    refUtf8(M.utf8(CF.CP.utf8(F.DescriptorIndex)), W);
    if (Const) {
      if (Const->Bytes.size() != 2)
        return makeError("jazz: malformed ConstantValue");
      ByteReader CR(Const->Bytes);
      auto Id = loadableFromCp(CF, CR.readU2());
      if (!Id)
        return Id.takeError();
      refLoadable(*Id, W);
    }
    return Error::success();
  }

  Error encodeMethod(const ClassFile &CF, const MemberInfo &Mth,
                     ByteWriter &W) {
    const AttributeInfo *Code = findAttribute(Mth.Attributes, "Code");
    const AttributeInfo *Exceptions =
        findAttribute(Mth.Attributes, "Exceptions");
    uint32_t Flags = memberFlags(Mth);
    if (Code)
      Flags |= PackedFlagAux0;
    if (Exceptions)
      Flags |= PackedFlagAux1;
    writeVarUInt(W, Flags);
    refUtf8(M.utf8(CF.CP.utf8(Mth.NameIndex)), W);
    refUtf8(M.utf8(CF.CP.utf8(Mth.DescriptorIndex)), W);
    if (Exceptions) {
      ByteReader ER(Exceptions->Bytes);
      uint16_t N = ER.readU2();
      writeVarUInt(W, N);
      for (uint16_t K = 0; K < N; ++K)
        refClass(classFromCp(CF, ER.readU2()), W);
    }
    if (Code)
      return encodeCode(CF, *Code, W);
    return Error::success();
  }

  Error encodeCode(const ClassFile &CF, const AttributeInfo &Attr,
                   ByteWriter &W) {
    auto Code = parseCodeAttribute(Attr, CF.CP);
    if (!Code)
      return Code.takeError();
    auto Insns = decodeCode(Code->Code);
    if (!Insns)
      return Insns.takeError();
    writeVarUInt(W, Code->MaxStack);
    writeVarUInt(W, Code->MaxLocals);
    writeVarUInt(W, Code->ExceptionTable.size());
    writeVarUInt(W, Insns->size());
    for (const ExceptionTableEntry &E : Code->ExceptionTable) {
      writeVarUInt(W, E.StartPc);
      writeVarUInt(W, E.EndPc - E.StartPc);
      writeVarUInt(W, E.HandlerPc);
      if (E.CatchType == 0) {
        W.writeU1(0);
      } else {
        W.writeU1(1);
        refClass(classFromCp(CF, E.CatchType), W);
      }
    }
    for (const Insn &I : *Insns)
      if (auto E = encodeInsn(CF, I, W))
        return E;
    return Error::success();
  }

  Error encodeInsn(const ClassFile &CF, const Insn &I, ByteWriter &W) {
    if (I.IsWide)
      W.writeU1(static_cast<uint8_t>(Op::Wide));
    W.writeU1(static_cast<uint8_t>(I.Opcode));
    switch (opInfo(I.Opcode).Format) {
    case OpFormat::None:
      break;
    case OpFormat::S1:
    case OpFormat::S2:
    case OpFormat::NewArrayType:
      writeVarInt(W, I.Const);
      break;
    case OpFormat::LocalU1:
      writeVarUInt(W, I.LocalIndex);
      break;
    case OpFormat::Iinc:
      writeVarUInt(W, I.LocalIndex);
      writeVarInt(W, I.Const);
      break;
    case OpFormat::CpU1:
    case OpFormat::CpU2:
    case OpFormat::InvokeInterface: {
      switch (cpRefKind(I.Opcode)) {
      case CpRefKind::LoadConst:
      case CpRefKind::LoadConst2: {
        auto Id = loadableFromCp(CF, I.CpIndex);
        if (!Id)
          return Id.takeError();
        refLoadable(*Id, W);
        break;
      }
      case CpRefKind::ClassRef:
        refClass(classFromCp(CF, I.CpIndex), W);
        break;
      case CpRefKind::FieldInstance:
      case CpRefKind::FieldStatic: {
        auto Id = memberFromCp(CF, I.CpIndex, /*IsField=*/true);
        if (!Id)
          return Id.takeError();
        refMember(JPool::Field, *Id, W);
        break;
      }
      default: {
        auto Id = memberFromCp(CF, I.CpIndex, /*IsField=*/false);
        if (!Id)
          return Id.takeError();
        refMember(JPool::Method, *Id, W);
        if (I.Opcode == Op::InvokeInterface)
          writeVarUInt(W, I.InvokeCount);
        break;
      }
      }
      break;
    }
    case OpFormat::Branch2:
    case OpFormat::Branch4:
      writeVarInt(W, I.BranchTarget - static_cast<int32_t>(I.Offset));
      break;
    case OpFormat::MultiANewArray:
      refClass(classFromCp(CF, I.CpIndex), W);
      writeVarUInt(W, static_cast<uint32_t>(I.Const));
      break;
    case OpFormat::TableSwitch:
      writeVarInt(W, I.SwitchLow);
      writeVarInt(W, I.SwitchHigh);
      writeVarInt(W, I.SwitchDefault - static_cast<int32_t>(I.Offset));
      for (int32_t T : I.SwitchTargets)
        writeVarInt(W, T - static_cast<int32_t>(I.Offset));
      break;
    case OpFormat::LookupSwitch:
      writeVarUInt(W, I.SwitchMatches.size());
      writeVarInt(W, I.SwitchDefault - static_cast<int32_t>(I.Offset));
      for (size_t K = 0; K < I.SwitchMatches.size(); ++K) {
        writeVarInt(W, I.SwitchMatches[K]);
        writeVarInt(W, I.SwitchTargets[K] - static_cast<int32_t>(I.Offset));
      }
      break;
    case OpFormat::InvokeDynamic:
      return makeError("jazz: invokedynamic is not supported");
    case OpFormat::Wide:
      return makeError("jazz: unexpected wide format");
    }
    return Error::success();
  }

  JazzModel M;
  std::unique_ptr<RefEncoder> Enc;
};

//===----------------------------------------------------------------------===//
// Decoder
//===----------------------------------------------------------------------===//

class JazzDecoder {
public:
  JazzDecoder() : Dec(makeRefDecoder(RefScheme::Basic)) {}

  Expected<std::vector<ClassFile>> decodeArchive(ByteReader &R) {
    size_t Count = static_cast<size_t>(readVarUInt(R));
    if (R.hasError() || Count > (1u << 24))
      return Error::failure("jazz: implausible class count");
    std::vector<ClassFile> Out;
    for (size_t I = 0; I < Count; ++I) {
      auto CF = decodeClass(R);
      if (!CF)
        return CF.takeError();
      Out.push_back(std::move(*CF));
    }
    return Out;
  }

private:
  uint32_t pool(JPool P) { return static_cast<uint32_t>(P); }

  uint32_t readUtf8(ByteReader &R) {
    auto Existing = Dec->decode(pool(JPool::Utf8), 0, R);
    if (Existing)
      return *Existing;
    size_t Len = static_cast<size_t>(readVarUInt(R));
    uint32_t Id = JazzModel::internInto(UtfIds, M.Utfs, R.readString(Len));
    Dec->registerNew(pool(JPool::Utf8), 0, Id);
    return Id;
  }

  uint32_t readLoadable(ByteReader &R) {
    auto Existing = Dec->decode(pool(JPool::Loadable), 0, R);
    if (Existing)
      return *Existing;
    JLoadable L;
    L.Tag = static_cast<CpTag>(R.readU1());
    switch (L.Tag) {
    case CpTag::Integer:
    case CpTag::Float:
      L.Bits = R.readU4();
      break;
    case CpTag::Long:
    case CpTag::Double:
      L.Bits = R.readU8();
      break;
    default: // String (validated on materialization)
      L.Utf8 = readUtf8(R);
      break;
    }
    uint32_t Id = static_cast<uint32_t>(M.Loads.size());
    M.Loads.push_back(L);
    Dec->registerNew(pool(JPool::Loadable), 0, Id);
    return Id;
  }

  uint32_t readClass(ByteReader &R) {
    auto Existing = Dec->decode(pool(JPool::Class), 0, R);
    if (Existing)
      return *Existing;
    uint32_t Utf = readUtf8(R);
    uint32_t Id = static_cast<uint32_t>(M.Classes.size());
    M.Classes.push_back(Utf);
    Dec->registerNew(pool(JPool::Class), 0, Id);
    return Id;
  }

  uint32_t readNat(ByteReader &R) {
    auto Existing = Dec->decode(pool(JPool::Nat), 0, R);
    if (Existing)
      return *Existing;
    JNat N;
    N.Name = readUtf8(R);
    N.Desc = readUtf8(R);
    uint32_t Id = static_cast<uint32_t>(M.Nats.size());
    M.Nats.push_back(N);
    Dec->registerNew(pool(JPool::Nat), 0, Id);
    return Id;
  }

  uint32_t readMember(JPool P, ByteReader &R) {
    auto Existing = Dec->decode(pool(P), 0, R);
    if (Existing)
      return *Existing;
    JMember E;
    if (P == JPool::Method)
      E.IsInterface = R.readU1() != 0;
    E.Class = readClass(R);
    E.Nat = readNat(R);
    std::vector<JMember> &Items =
        P == JPool::Field ? M.Fields : M.Methods;
    uint32_t Id = static_cast<uint32_t>(Items.size());
    Items.push_back(E);
    Dec->registerNew(pool(P), 0, Id);
    return Id;
  }

  uint16_t materializeLoadable(ClassFile &CF, uint32_t Id) {
    const JLoadable &L = M.Loads[Id];
    switch (L.Tag) {
    case CpTag::Integer:
      return CF.CP.addInteger(static_cast<int32_t>(L.Bits));
    case CpTag::Float:
      return CF.CP.addFloat(static_cast<uint32_t>(L.Bits));
    case CpTag::Long:
      return CF.CP.addLong(static_cast<int64_t>(L.Bits));
    case CpTag::Double:
      return CF.CP.addDouble(L.Bits);
    default:
      return CF.CP.addString(M.Utfs[L.Utf8]);
    }
  }

  const std::string &classNameOf(uint32_t Id) {
    return M.Utfs[M.Classes[Id]];
  }

  Expected<ClassFile> decodeClass(ByteReader &R) {
    uint32_t MinorV = static_cast<uint32_t>(readVarUInt(R));
    uint32_t MajorV = static_cast<uint32_t>(readVarUInt(R));
    uint32_t Flags = static_cast<uint32_t>(readVarUInt(R));
    uint32_t ThisId = readClass(R);
    uint32_t SuperId = 0;
    bool HasSuper = (Flags & PackedFlagAux0) != 0;
    if (HasSuper)
      SuperId = readClass(R);
    size_t IfaceCount = static_cast<size_t>(readVarUInt(R));
    if (R.hasError() || IfaceCount > 0xFFFF)
      return Error::failure("jazz: truncated class header");
    std::vector<uint32_t> Ifaces;
    for (size_t I = 0; I < IfaceCount; ++I)
      Ifaces.push_back(readClass(R));

    // Collect everything first so ldc constants can claim low indices.
    struct FieldRec {
      uint32_t Flags, Name, Desc;
      bool HasConst = false;
      uint32_t Const = 0;
    };
    struct MethodRec {
      uint32_t Flags, Name, Desc;
      std::vector<uint32_t> Exceptions;
      bool HasCode = false;
      uint32_t MaxStack = 0, MaxLocals = 0;
      struct Exc {
        uint32_t Start, End, Handler;
        bool HasCatch;
        uint32_t CatchClass;
      };
      std::vector<Exc> Table;
      std::vector<Insn> Insns;
      struct OperandRec {
        CpRefKind Kind = CpRefKind::None;
        uint32_t Id = 0;
      };
      std::vector<OperandRec> Operands;
    };

    std::vector<FieldRec> FieldRecs;
    size_t FieldCount = static_cast<size_t>(readVarUInt(R));
    if (R.hasError() || FieldCount > 0xFFFF)
      return Error::failure("jazz: truncated fields");
    for (size_t I = 0; I < FieldCount; ++I) {
      FieldRec F;
      F.Flags = static_cast<uint32_t>(readVarUInt(R));
      F.Name = readUtf8(R);
      F.Desc = readUtf8(R);
      if (F.Flags & PackedFlagAux0) {
        F.HasConst = true;
        F.Const = readLoadable(R);
      }
      FieldRecs.push_back(F);
    }

    std::vector<MethodRec> MethodRecs;
    size_t MethodCount = static_cast<size_t>(readVarUInt(R));
    if (R.hasError() || MethodCount > 0xFFFF)
      return Error::failure("jazz: truncated methods");
    for (size_t I = 0; I < MethodCount; ++I) {
      MethodRec DM;
      DM.Flags = static_cast<uint32_t>(readVarUInt(R));
      DM.Name = readUtf8(R);
      DM.Desc = readUtf8(R);
      if (DM.Flags & PackedFlagAux1) {
        size_t N = static_cast<size_t>(readVarUInt(R));
        if (R.hasError() || N > 0xFFFF)
          return Error::failure("jazz: truncated Exceptions");
        for (size_t K = 0; K < N; ++K)
          DM.Exceptions.push_back(readClass(R));
      }
      if (DM.Flags & PackedFlagAux0) {
        DM.HasCode = true;
        DM.MaxStack = static_cast<uint32_t>(readVarUInt(R));
        DM.MaxLocals = static_cast<uint32_t>(readVarUInt(R));
        size_t ExcCount = static_cast<size_t>(readVarUInt(R));
        size_t InsnCount = static_cast<size_t>(readVarUInt(R));
        if (R.hasError() || ExcCount > 0xFFFF)
          return Error::failure("jazz: truncated code header");
        for (size_t K = 0; K < ExcCount; ++K) {
          MethodRec::Exc E;
          E.Start = static_cast<uint32_t>(readVarUInt(R));
          E.End = E.Start + static_cast<uint32_t>(readVarUInt(R));
          E.Handler = static_cast<uint32_t>(readVarUInt(R));
          E.HasCatch = R.readU1() != 0;
          E.CatchClass = E.HasCatch ? readClass(R) : 0;
          DM.Table.push_back(E);
        }
        uint32_t Offset = 0;
        for (size_t K = 0; K < InsnCount; ++K) {
          auto Decoded = decodeInsn(R, Offset);
          if (!Decoded)
            return Decoded.takeError();
          Decoded->first.Offset = Offset;
          Decoded->first.Length =
              encodedLength(Decoded->first, Offset);
          Offset += Decoded->first.Length;
          DM.Insns.push_back(std::move(Decoded->first));
          DM.Operands.push_back(
              {cpRefKind(DM.Insns.back().Opcode), Decoded->second});
        }
      }
      MethodRecs.push_back(std::move(DM));
    }
    if (R.hasError())
      return Error::failure("jazz: truncated class body");

    // Materialize.
    ClassFile CF;
    CF.MinorVersion = static_cast<uint16_t>(MinorV);
    CF.MajorVersion = static_cast<uint16_t>(MajorV);
    CF.AccessFlags = static_cast<uint16_t>(Flags & 0xFFFF);
    for (const MethodRec &DM : MethodRecs)
      for (size_t K = 0; K < DM.Insns.size(); ++K)
        if (DM.Insns[K].Opcode == Op::Ldc)
          materializeLoadable(CF, DM.Operands[K].Id);
    CF.ThisClass = CF.CP.addClass(classNameOf(ThisId));
    CF.SuperClass = HasSuper ? CF.CP.addClass(classNameOf(SuperId)) : 0;
    for (uint32_t I : Ifaces)
      CF.Interfaces.push_back(CF.CP.addClass(classNameOf(I)));
    if (Flags & PackedFlagSynthetic)
      CF.Attributes.push_back({"Synthetic", {}});
    if (Flags & PackedFlagDeprecated)
      CF.Attributes.push_back({"Deprecated", {}});

    for (const FieldRec &F : FieldRecs) {
      MemberInfo MI;
      MI.AccessFlags = static_cast<uint16_t>(F.Flags & 0xFFFF);
      MI.NameIndex = CF.CP.addUtf8(M.Utfs[F.Name]);
      MI.DescriptorIndex = CF.CP.addUtf8(M.Utfs[F.Desc]);
      if (F.HasConst) {
        ByteWriter W;
        W.writeU2(materializeLoadable(CF, F.Const));
        MI.Attributes.push_back({"ConstantValue", CF.arena().adopt(W.take())});
      }
      if (F.Flags & PackedFlagSynthetic)
        MI.Attributes.push_back({"Synthetic", {}});
      if (F.Flags & PackedFlagDeprecated)
        MI.Attributes.push_back({"Deprecated", {}});
      CF.Fields.push_back(std::move(MI));
    }

    for (MethodRec &DM : MethodRecs) {
      MemberInfo MI;
      MI.AccessFlags = static_cast<uint16_t>(DM.Flags & 0xFFFF);
      MI.NameIndex = CF.CP.addUtf8(M.Utfs[DM.Name]);
      MI.DescriptorIndex = CF.CP.addUtf8(M.Utfs[DM.Desc]);
      if (DM.HasCode) {
        CodeAttribute Code;
        Code.MaxStack = static_cast<uint16_t>(DM.MaxStack);
        Code.MaxLocals = static_cast<uint16_t>(DM.MaxLocals);
        for (size_t K = 0; K < DM.Insns.size(); ++K) {
          Insn &I = DM.Insns[K];
          uint32_t Id = DM.Operands[K].Id;
          switch (cpRefKind(I.Opcode)) {
          case CpRefKind::None:
            break;
          case CpRefKind::LoadConst:
          case CpRefKind::LoadConst2:
            I.CpIndex = materializeLoadable(CF, Id);
            if (I.Opcode == Op::Ldc && I.CpIndex > 0xFF)
              return Error::failure("jazz: ldc constant escaped the low "
                                    "indices");
            break;
          case CpRefKind::ClassRef:
            I.CpIndex = CF.CP.addClass(classNameOf(Id));
            break;
          case CpRefKind::FieldInstance:
          case CpRefKind::FieldStatic: {
            const JMember &E = M.Fields[Id];
            I.CpIndex = CF.CP.addRef(CpTag::FieldRef,
                                     classNameOf(E.Class),
                                     M.Utfs[M.Nats[E.Nat].Name],
                                     M.Utfs[M.Nats[E.Nat].Desc]);
            break;
          }
          default: {
            const JMember &E = M.Methods[Id];
            I.CpIndex = CF.CP.addRef(
                E.IsInterface ? CpTag::InterfaceMethodRef
                              : CpTag::MethodRef,
                classNameOf(E.Class), M.Utfs[M.Nats[E.Nat].Name],
                M.Utfs[M.Nats[E.Nat].Desc]);
            break;
          }
          }
        }
        std::vector<uint8_t> CodeBytes = encodeCode(DM.Insns);
        Code.Code = CodeBytes;
        for (const MethodRec::Exc &E : DM.Table) {
          ExceptionTableEntry T;
          T.StartPc = static_cast<uint16_t>(E.Start);
          T.EndPc = static_cast<uint16_t>(E.End);
          T.HandlerPc = static_cast<uint16_t>(E.Handler);
          T.CatchType =
              E.HasCatch ? CF.CP.addClass(classNameOf(E.CatchClass)) : 0;
          Code.ExceptionTable.push_back(T);
        }
        MI.Attributes.push_back(encodeCodeAttribute(Code, CF.CP));
      }
      if (DM.Flags & PackedFlagAux1) {
        ByteWriter W;
        W.writeU2(static_cast<uint16_t>(DM.Exceptions.size()));
        for (uint32_t C : DM.Exceptions)
          W.writeU2(CF.CP.addClass(classNameOf(C)));
        MI.Attributes.push_back({"Exceptions", CF.arena().adopt(W.take())});
      }
      if (DM.Flags & PackedFlagSynthetic)
        MI.Attributes.push_back({"Synthetic", {}});
      if (DM.Flags & PackedFlagDeprecated)
        MI.Attributes.push_back({"Deprecated", {}});
      CF.Methods.push_back(std::move(MI));
    }

    if (auto E = canonicalizeConstantPool(CF))
      return E;
    return CF;
  }

  Expected<std::pair<Insn, uint32_t>> decodeInsn(ByteReader &R,
                                                 uint32_t Offset) {
    Insn I;
    uint32_t OperandId = 0;
    uint8_t Code = R.readU1();
    if (Code == static_cast<uint8_t>(Op::Wide)) {
      I.IsWide = true;
      Code = R.readU1();
    }
    if (R.hasError() || !isValidOpcode(Code))
      return Error::failure("jazz: bad opcode byte");
    I.Opcode = static_cast<Op>(Code);
    switch (opInfo(I.Opcode).Format) {
    case OpFormat::None:
      break;
    case OpFormat::S1:
    case OpFormat::S2:
    case OpFormat::NewArrayType:
      I.Const = static_cast<int32_t>(readVarInt(R));
      break;
    case OpFormat::LocalU1:
      I.LocalIndex = static_cast<uint32_t>(readVarUInt(R));
      break;
    case OpFormat::Iinc:
      I.LocalIndex = static_cast<uint32_t>(readVarUInt(R));
      I.Const = static_cast<int32_t>(readVarInt(R));
      break;
    case OpFormat::CpU1:
    case OpFormat::CpU2:
    case OpFormat::InvokeInterface:
      switch (cpRefKind(I.Opcode)) {
      case CpRefKind::LoadConst:
      case CpRefKind::LoadConst2:
        OperandId = readLoadable(R);
        break;
      case CpRefKind::ClassRef:
        OperandId = readClass(R);
        break;
      case CpRefKind::FieldInstance:
      case CpRefKind::FieldStatic:
        OperandId = readMember(JPool::Field, R);
        break;
      default:
        OperandId = readMember(JPool::Method, R);
        if (I.Opcode == Op::InvokeInterface)
          I.InvokeCount = static_cast<uint8_t>(readVarUInt(R));
        break;
      }
      break;
    case OpFormat::Branch2:
    case OpFormat::Branch4:
      I.BranchTarget = static_cast<int32_t>(Offset) +
                       static_cast<int32_t>(readVarInt(R));
      break;
    case OpFormat::MultiANewArray:
      OperandId = readClass(R);
      I.Const = static_cast<int32_t>(readVarUInt(R));
      break;
    case OpFormat::TableSwitch: {
      I.SwitchLow = static_cast<int32_t>(readVarInt(R));
      I.SwitchHigh = static_cast<int32_t>(readVarInt(R));
      if (I.SwitchHigh < I.SwitchLow ||
          static_cast<int64_t>(I.SwitchHigh) - I.SwitchLow >= (1 << 24))
        return Error::failure("jazz: malformed tableswitch");
      I.SwitchDefault = static_cast<int32_t>(Offset) +
                        static_cast<int32_t>(readVarInt(R));
      int64_t N = static_cast<int64_t>(I.SwitchHigh) - I.SwitchLow + 1;
      for (int64_t K = 0; K < N; ++K)
        I.SwitchTargets.push_back(static_cast<int32_t>(Offset) +
                                  static_cast<int32_t>(readVarInt(R)));
      break;
    }
    case OpFormat::LookupSwitch: {
      size_t N = static_cast<size_t>(readVarUInt(R));
      if (N >= (1u << 24))
        return Error::failure("jazz: malformed lookupswitch");
      I.SwitchDefault = static_cast<int32_t>(Offset) +
                        static_cast<int32_t>(readVarInt(R));
      for (size_t K = 0; K < N; ++K) {
        I.SwitchMatches.push_back(static_cast<int32_t>(readVarInt(R)));
        I.SwitchTargets.push_back(static_cast<int32_t>(Offset) +
                                  static_cast<int32_t>(readVarInt(R)));
      }
      break;
    }
    case OpFormat::InvokeDynamic:
    case OpFormat::Wide:
      return Error::failure("jazz: unsupported opcode format");
    }
    return std::make_pair(std::move(I), OperandId);
  }

  JazzModel M;
  std::map<std::string, uint32_t, std::less<>> UtfIds;
  std::unique_ptr<RefDecoder> Dec;
};

} // namespace

Expected<std::vector<uint8_t>>
cjpack::jazzPack(const std::vector<ClassFile> &Classes, bool Compress) {
  ByteWriter Body;
  JazzEncoder Enc;
  if (auto E = Enc.encodeArchive(Classes, Body))
    return E;
  ByteWriter W;
  W.writeU4(0x4A415A31u); // "JAZ1"
  W.writeU1(Compress ? 1 : 0);
  if (Compress) {
    std::vector<uint8_t> Deflated = deflateBytes(Body.data());
    writeVarUInt(W, Body.size());
    W.writeBytes(Deflated);
  } else {
    writeVarUInt(W, Body.size());
    W.writeBytes(Body.data());
  }
  return W.take();
}

Expected<std::vector<ClassFile>>
cjpack::jazzUnpack(const std::vector<uint8_t> &Archive) {
  ByteReader R(Archive);
  if (R.readU4() != 0x4A415A31u)
    return Error::failure("jazz: bad magic");
  uint8_t Compressed = R.readU1();
  uint64_t RawLen64 = readVarUInt(R);
  std::vector<uint8_t> Body = R.readBytes(R.remaining());
  if (R.hasError())
    return makeError(ErrorCode::Truncated, "jazz: truncated archive");
  // Validate the declared length before it drives the inflate
  // allocation; cap inflation by it so a lying header cannot bomb.
  if (RawLen64 > DecodeLimits().MaxStreamBytes)
    return makeError(ErrorCode::LimitExceeded,
                     "jazz: declared size over limit");
  size_t RawLen = static_cast<size_t>(RawLen64);
  if (Compressed) {
    auto Raw = inflateBytes(Body, RawLen, RawLen ? RawLen : 1);
    if (!Raw)
      return Raw.takeError();
    if (Raw->size() != RawLen)
      return makeError(ErrorCode::Corrupt, "jazz: declared size mismatch");
    Body = std::move(*Raw);
  }
  ByteReader BR(Body);
  JazzDecoder Dec;
  return Dec.decodeArchive(BR);
}

Expected<std::vector<uint8_t>>
cjpack::jazzPackBytes(const std::vector<NamedClass> &Classes) {
  std::vector<ClassFile> Parsed;
  for (const NamedClass &C : Classes) {
    auto CF = parseClassFile(C.Data);
    if (!CF)
      return Error::failure(C.Name + ": " + CF.message());
    if (auto E = prepareForPacking(*CF))
      return Error::failure(C.Name + ": " + E.message());
    Parsed.push_back(std::move(*CF));
  }
  return jazzPack(Parsed);
}
