//===- Rng.h - deterministic random source for corpus generation -*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic PRNG (splitmix64) so every generated benchmark
/// corpus is reproducible from its seed across platforms and runs.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_CORPUS_RNG_H
#define CJPACK_CORPUS_RNG_H

#include <cassert>
#include <cstddef>
#include <cstdint>

namespace cjpack {

/// splitmix64-based deterministic generator.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    State += 0x9E3779B97F4A7C15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
    return Z ^ (Z >> 31);
  }

  /// Uniform integer in [0, Bound).
  uint64_t below(uint64_t Bound) {
    assert(Bound > 0);
    return next() % Bound;
  }

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi);
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo + 1)));
  }

  /// True with probability \p Percent / 100.
  bool chance(unsigned Percent) { return below(100) < Percent; }

  /// Zipf-flavoured index in [0, N): small indices strongly preferred.
  /// Matches the skewed reuse patterns of real identifier/constant use.
  size_t zipf(size_t N) {
    assert(N > 0);
    // Repeatedly halve the range with probability 1/2.
    size_t Hi = N;
    while (Hi > 1 && chance(55))
      Hi = (Hi + 1) / 2;
    return below(Hi);
  }

  double unit() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

private:
  uint64_t State;
};

} // namespace cjpack

#endif // CJPACK_CORPUS_RNG_H
