//===- BytecodeBuilder.h - typed JVM bytecode assembler --------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small assembler for JVM method bodies: typed push/load/store/invoke
/// primitives with operand-stack depth tracking, label-based branches
/// with fixups, and exception-table regions. This is the code-generation
/// backend of the synthetic corpus's mini compiler; it guarantees the
/// emitted code is structurally valid (balanced stack, in-range locals,
/// resolvable branches) so the packer exercises the same invariants real
/// javac output would.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_CORPUS_BYTECODEBUILDER_H
#define CJPACK_CORPUS_BYTECODEBUILDER_H

#include "bytecode/Opcodes.h"
#include "classfile/ClassFile.h"
#include "classfile/Descriptor.h"
#include "support/ByteBuffer.h"
#include <string>
#include <vector>

namespace cjpack {

/// Assembles one method body.
class BytecodeBuilder {
public:
  /// \p CP is the pool of the classfile under construction; \p NumParams
  /// is the number of local slots occupied by the receiver (if any) and
  /// parameters.
  BytecodeBuilder(ConstantPool &CP, unsigned ParamSlots);

  /// \name Constants
  /// @{
  void pushInt(int32_t V);
  void pushLong(int64_t V);
  void pushFloat(float V);
  void pushDouble(double V);
  void pushString(const std::string &S);
  void pushNull();
  /// @}

  /// \name Locals
  /// @{
  /// Reserves a fresh local slot (two for long/double).
  unsigned newLocal(VType T);
  void loadLocal(VType T, unsigned Index);
  void storeLocal(VType T, unsigned Index);
  void iinc(unsigned Index, int8_t Delta);
  unsigned maxLocals() const { return MaxLocals; }
  /// @}

  /// \name Operators
  /// @{
  /// Emits a no-operand opcode with stack delta derived from its table
  /// entry (arithmetic, conversion, comparison, array access, dup/pop,
  /// monitors, arraylength, athrow).
  void op(Op O);
  /// @}

  /// \name Fields and methods
  /// @{
  void getField(const std::string &Cls, const std::string &Name,
                const std::string &Desc, bool IsStatic);
  void putField(const std::string &Cls, const std::string &Name,
                const std::string &Desc, bool IsStatic);
  void invoke(Op Kind, const std::string &Cls, const std::string &Name,
              const std::string &Desc);
  void newObject(const std::string &Cls);
  void newArray(char ElemType); ///< primitive newarray
  void anewArray(const std::string &Cls);
  void checkCast(const std::string &Cls);
  void instanceOf(const std::string &Cls);
  /// @}

  /// \name Control flow
  /// @{
  using Label = size_t;
  Label newLabel();
  void placeLabel(Label L);
  /// Conditional/unconditional branch to \p L (forward or backward).
  void branch(Op O, Label L);
  void tableSwitch(int32_t Low, const std::vector<Label> &Cases,
                   Label Default);
  void lookupSwitch(const std::vector<int32_t> &Keys,
                    const std::vector<Label> &Cases, Label Default);
  void ret(VType T); ///< typed return ('Void' emits return)
  /// Registers a try-region: [Start, End) with handler at \p Handler.
  /// Pass empty \p CatchClass for a catch-all.
  void addExceptionRegion(Label Start, Label End, Label Handler,
                          const std::string &CatchClass);
  /// Marks the current position as an exception-handler entry (stack
  /// becomes [throwable]).
  void beginHandler();
  /// @}

  /// Current operand stack depth in slots.
  unsigned stackDepth() const { return Depth; }

  /// Finalizes: patches branches, builds the Code attribute.
  CodeAttribute finish();

private:
  void adjust(int Delta);
  void emitBranchPlaceholder(Op O, Label L);
  uint16_t classIndex(const std::string &Cls);

  ConstantPool &CP;
  ByteWriter Code;
  unsigned Depth = 0;
  unsigned MaxStack = 0;
  unsigned MaxLocals;
  std::vector<int32_t> LabelOffsets; ///< -1 until placed
  struct Fixup {
    size_t At;      ///< offset of the 2-byte operand
    size_t InsnAt;  ///< offset of the opcode (branch base)
    Label Target;
    bool Wide4;     ///< 4-byte operand (switch entries)
  };
  std::vector<Fixup> Fixups;
  struct Region {
    Label Start, End, Handler;
    std::string CatchClass;
  };
  std::vector<Region> Regions;
};

} // namespace cjpack

#endif // CJPACK_CORPUS_BYTECODEBUILDER_H
