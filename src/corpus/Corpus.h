//===- Corpus.h - synthetic benchmark corpora ------------------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates synthetic Java classfile collections standing in for the
/// paper's Table 1 benchmarks (SPEC JVM98, the JDK runtime, Swing, ...),
/// which we cannot redistribute. Each benchmark is a deterministic
/// function of its spec: package structure, class hierarchy, fields,
/// method signatures, and bytecode bodies are synthesized with the
/// statistical shape of real classfiles (Utf8-dominant constant pools,
/// ~20% bytecode, skewed identifier reuse, aload_0/getfield idioms).
///
/// Scale note: specs are sized so generated sj0r totals land near the
/// paper's Table 1 numbers at Scale = 1.0; benches accept a scale factor
/// to trade fidelity for runtime.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_CORPUS_CORPUS_H
#define CJPACK_CORPUS_CORPUS_H

#include "classfile/ClassFile.h"
#include "corpus/Names.h"
#include "zip/Jar.h"
#include <string>
#include <vector>

namespace cjpack {

/// Statistical flavour of generated method bodies.
enum class CodeStyle : uint8_t {
  Balanced,    ///< a mix of calls, branches, field traffic
  Numeric,     ///< arithmetic-loop heavy, few strings (mpegaudio-like)
  StringHeavy, ///< many string constants and calls (jess/db-like)
};

/// Parameters of one synthetic benchmark.
struct CorpusSpec {
  std::string Name;
  std::string Description;
  uint64_t Seed = 1;
  unsigned NumClasses = 10;
  unsigned NumPackages = 2;
  unsigned MeanMethods = 8;
  unsigned MeanFields = 5;
  unsigned MeanStatements = 12;
  unsigned PctInterfaces = 8;
  NameStyle Style = NameStyle::Normal;
  CodeStyle Code = CodeStyle::Balanced;
  std::string Vendor = "com/example";
  /// Emit SourceFile, LineNumberTable, and LocalVariableTable attributes,
  /// as compilers do by default — the debug information §2 strips.
  bool EmitDebugInfo = true;
  /// Percent of call/field-access statements emitted against the
  /// *subclass* as owner while the member is defined on a generated
  /// superclass or interface, so reference resolution must walk the
  /// hierarchy (what javac emits for inherited members). 0 — the
  /// default — draws nothing from the RNG, keeping the wire-format
  /// golden hashes valid.
  unsigned PctInheritedRefs = 0;
  /// Dead private members (fields and methods no reference in the
  /// corpus targets) seeded per concrete class, as food for
  /// `packtool lint` dead-weight reporting and
  /// PackOptions::StripUnreferenced. 0 — the default — draws nothing.
  unsigned DeadMembersPerClass = 0;
};

/// Generates the classfiles of \p Spec (parsed model form).
std::vector<ClassFile> generateCorpusClasses(const CorpusSpec &Spec);

/// Generates the classfiles of \p Spec as named raw bytes.
std::vector<NamedClass> generateCorpus(const CorpusSpec &Spec);

/// The 19 benchmarks of Table 1, sized to approximate the paper's sj0r
/// column scaled by \p Scale (class counts, not bytes, are scaled).
std::vector<CorpusSpec> paperBenchmarks(double Scale = 1.0);

/// Looks up one paper benchmark by name (e.g. "javac", "rt").
CorpusSpec paperBenchmark(const std::string &Name, double Scale = 1.0);

/// The scale-campaign corpus: \p NumClasses classes (default 10000)
/// with realistic method/field/debug-info weight, sized so the default
/// lands well past 50 MB of classfile bytes — an order of magnitude
/// beyond the paper's largest benchmark (rt at ~1500 classes). Used by
/// the scale smoke test and bench_scale to exercise arena allocation,
/// shard autotuning, and parallel throughput at modern jar sizes.
CorpusSpec scaleBenchmark(unsigned NumClasses = 10000);

} // namespace cjpack

#endif // CJPACK_CORPUS_CORPUS_H
