//===- BytecodeBuilder.cpp - typed JVM bytecode assembler -----------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/BytecodeBuilder.h"
#include <cassert>
#include <cstring>

using namespace cjpack;

BytecodeBuilder::BytecodeBuilder(ConstantPool &CP, unsigned ParamSlots)
    : CP(CP), MaxLocals(ParamSlots) {}

void BytecodeBuilder::adjust(int Delta) {
  assert(Delta >= 0 || Depth >= static_cast<unsigned>(-Delta));
  Depth = static_cast<unsigned>(static_cast<int>(Depth) + Delta);
  if (Depth > MaxStack)
    MaxStack = Depth;
}

static unsigned slotsOf(VType T) {
  return (T == VType::Long || T == VType::Double) ? 2 : 1;
}

static unsigned stackSlots(const char *Effect) {
  unsigned Slots = 0;
  for (const char *P = Effect; *P; ++P)
    Slots += (*P == 'J' || *P == 'D') ? 2 : 1;
  return Slots;
}

//===----------------------------------------------------------------------===//
// Constants
//===----------------------------------------------------------------------===//

void BytecodeBuilder::pushInt(int32_t V) {
  if (V >= -1 && V <= 5) {
    Code.writeU1(static_cast<uint8_t>(3 + V)); // iconst_<V>
  } else if (V >= -128 && V <= 127) {
    Code.writeU1(static_cast<uint8_t>(Op::BiPush));
    Code.writeU1(static_cast<uint8_t>(V));
  } else if (V >= -32768 && V <= 32767) {
    Code.writeU1(static_cast<uint8_t>(Op::SiPush));
    Code.writeU2(static_cast<uint16_t>(V));
  } else {
    uint16_t Index = CP.addInteger(V);
    if (Index <= 0xFF) {
      Code.writeU1(static_cast<uint8_t>(Op::Ldc));
      Code.writeU1(static_cast<uint8_t>(Index));
    } else {
      Code.writeU1(static_cast<uint8_t>(Op::LdcW));
      Code.writeU2(Index);
    }
  }
  adjust(+1);
}

void BytecodeBuilder::pushLong(int64_t V) {
  if (V == 0 || V == 1) {
    Code.writeU1(static_cast<uint8_t>(V == 0 ? Op::LConst0 : Op::LConst1));
  } else {
    Code.writeU1(static_cast<uint8_t>(Op::Ldc2W));
    Code.writeU2(CP.addLong(V));
  }
  adjust(+2);
}

void BytecodeBuilder::pushFloat(float V) {
  if (V == 0.0f || V == 1.0f || V == 2.0f) {
    Code.writeU1(static_cast<uint8_t>(
        V == 0.0f ? Op::FConst0 : (V == 1.0f ? Op::FConst1 : Op::FConst2)));
  } else {
    uint32_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    uint16_t Index = CP.addFloat(Bits);
    if (Index <= 0xFF) {
      Code.writeU1(static_cast<uint8_t>(Op::Ldc));
      Code.writeU1(static_cast<uint8_t>(Index));
    } else {
      Code.writeU1(static_cast<uint8_t>(Op::LdcW));
      Code.writeU2(Index);
    }
  }
  adjust(+1);
}

void BytecodeBuilder::pushDouble(double V) {
  if (V == 0.0 || V == 1.0) {
    Code.writeU1(static_cast<uint8_t>(V == 0.0 ? Op::DConst0 : Op::DConst1));
  } else {
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    Code.writeU1(static_cast<uint8_t>(Op::Ldc2W));
    Code.writeU2(CP.addDouble(Bits));
  }
  adjust(+2);
}

void BytecodeBuilder::pushString(const std::string &S) {
  uint16_t Index = CP.addString(S);
  if (Index <= 0xFF) {
    Code.writeU1(static_cast<uint8_t>(Op::Ldc));
    Code.writeU1(static_cast<uint8_t>(Index));
  } else {
    Code.writeU1(static_cast<uint8_t>(Op::LdcW));
    Code.writeU2(Index);
  }
  adjust(+1);
}

void BytecodeBuilder::pushNull() {
  Code.writeU1(static_cast<uint8_t>(Op::AConstNull));
  adjust(+1);
}

//===----------------------------------------------------------------------===//
// Locals
//===----------------------------------------------------------------------===//

unsigned BytecodeBuilder::newLocal(VType T) {
  unsigned Index = MaxLocals;
  MaxLocals += slotsOf(T);
  return Index;
}

void BytecodeBuilder::loadLocal(VType T, unsigned Index) {
  static const uint8_t Base[] = {21, 22, 23, 24, 25}; // iload..aload
  unsigned K;
  switch (T) {
  case VType::Int: K = 0; break;
  case VType::Long: K = 1; break;
  case VType::Float: K = 2; break;
  case VType::Double: K = 3; break;
  default: K = 4; break;
  }
  if (Index <= 3) {
    Code.writeU1(static_cast<uint8_t>(26 + K * 4 + Index)); // iload_<n>...
  } else if (Index <= 0xFF) {
    Code.writeU1(Base[K]);
    Code.writeU1(static_cast<uint8_t>(Index));
  } else {
    Code.writeU1(static_cast<uint8_t>(Op::Wide));
    Code.writeU1(Base[K]);
    Code.writeU2(static_cast<uint16_t>(Index));
  }
  adjust(static_cast<int>(slotsOf(T)));
}

void BytecodeBuilder::storeLocal(VType T, unsigned Index) {
  static const uint8_t Base[] = {54, 55, 56, 57, 58}; // istore..astore
  unsigned K;
  switch (T) {
  case VType::Int: K = 0; break;
  case VType::Long: K = 1; break;
  case VType::Float: K = 2; break;
  case VType::Double: K = 3; break;
  default: K = 4; break;
  }
  if (Index <= 3) {
    Code.writeU1(static_cast<uint8_t>(59 + K * 4 + Index)); // istore_<n>...
  } else if (Index <= 0xFF) {
    Code.writeU1(Base[K]);
    Code.writeU1(static_cast<uint8_t>(Index));
  } else {
    Code.writeU1(static_cast<uint8_t>(Op::Wide));
    Code.writeU1(Base[K]);
    Code.writeU2(static_cast<uint16_t>(Index));
  }
  adjust(-static_cast<int>(slotsOf(T)));
}

void BytecodeBuilder::iinc(unsigned Index, int8_t Delta) {
  assert(Index <= 0xFF);
  Code.writeU1(static_cast<uint8_t>(Op::IInc));
  Code.writeU1(static_cast<uint8_t>(Index));
  Code.writeU1(static_cast<uint8_t>(Delta));
}

//===----------------------------------------------------------------------===//
// Operators
//===----------------------------------------------------------------------===//

void BytecodeBuilder::op(Op O) {
  const OpInfo &Info = opInfo(O);
  Code.writeU1(static_cast<uint8_t>(O));
  if (Info.Pops[0] != '*' && Info.Pushes[0] != '*') {
    adjust(-static_cast<int>(stackSlots(Info.Pops)));
    adjust(static_cast<int>(stackSlots(Info.Pushes)));
    return;
  }
  // Stack-shuffling and other special cases the table marks '*'.
  switch (O) {
  case Op::Dup:
    adjust(+1);
    break;
  case Op::Dup2:
  case Op::DupX1:
    adjust(O == Op::Dup2 ? +2 : +1);
    break;
  case Op::Pop:
    adjust(-1);
    break;
  case Op::Pop2:
    adjust(-2);
    break;
  case Op::Swap:
    break;
  case Op::AThrow:
    adjust(-1);
    break;
  default:
    assert(false && "op() does not support this opcode");
    break;
  }
}

//===----------------------------------------------------------------------===//
// Fields and methods
//===----------------------------------------------------------------------===//

uint16_t BytecodeBuilder::classIndex(const std::string &Cls) {
  return CP.addClass(Cls);
}

void BytecodeBuilder::getField(const std::string &Cls,
                               const std::string &Name,
                               const std::string &Desc, bool IsStatic) {
  Code.writeU1(static_cast<uint8_t>(IsStatic ? Op::GetStatic
                                             : Op::GetField));
  Code.writeU2(CP.addRef(CpTag::FieldRef, Cls, Name, Desc));
  if (!IsStatic)
    adjust(-1);
  adjust(static_cast<int>(slotsOf(vtypeOfFieldDescriptor(Desc))));
}

void BytecodeBuilder::putField(const std::string &Cls,
                               const std::string &Name,
                               const std::string &Desc, bool IsStatic) {
  Code.writeU1(static_cast<uint8_t>(IsStatic ? Op::PutStatic
                                             : Op::PutField));
  Code.writeU2(CP.addRef(CpTag::FieldRef, Cls, Name, Desc));
  adjust(-static_cast<int>(slotsOf(vtypeOfFieldDescriptor(Desc))));
  if (!IsStatic)
    adjust(-1);
}

void BytecodeBuilder::invoke(Op Kind, const std::string &Cls,
                             const std::string &Name,
                             const std::string &Desc) {
  std::vector<VType> Args;
  VType Ret = VType::Void;
  [[maybe_unused]] bool Ok = vtypesOfMethodDescriptor(Desc, Args, Ret);
  assert(Ok && "invoke with malformed descriptor");
  CpTag Tag = Kind == Op::InvokeInterface ? CpTag::InterfaceMethodRef
                                          : CpTag::MethodRef;
  Code.writeU1(static_cast<uint8_t>(Kind));
  Code.writeU2(CP.addRef(Tag, Cls, Name, Desc));
  unsigned ArgSlots = 0;
  for (VType T : Args)
    ArgSlots += slotsOf(T);
  if (Kind == Op::InvokeInterface) {
    Code.writeU1(static_cast<uint8_t>(ArgSlots + 1));
    Code.writeU1(0);
  }
  adjust(-static_cast<int>(ArgSlots));
  if (Kind != Op::InvokeStatic)
    adjust(-1);
  if (Ret != VType::Void)
    adjust(static_cast<int>(slotsOf(Ret)));
}

void BytecodeBuilder::newObject(const std::string &Cls) {
  Code.writeU1(static_cast<uint8_t>(Op::New));
  Code.writeU2(classIndex(Cls));
  adjust(+1);
}

void BytecodeBuilder::newArray(char ElemType) {
  static const struct { char C; uint8_t AType; } Map[] = {
      {'Z', 4}, {'C', 5}, {'F', 6}, {'D', 7},
      {'B', 8}, {'S', 9}, {'I', 10}, {'J', 11}};
  uint8_t AType = 10;
  for (const auto &M : Map)
    if (M.C == ElemType)
      AType = M.AType;
  Code.writeU1(static_cast<uint8_t>(Op::NewArray));
  Code.writeU1(AType);
  // pops the count, pushes the array: net zero slots
}

void BytecodeBuilder::anewArray(const std::string &Cls) {
  Code.writeU1(static_cast<uint8_t>(Op::ANewArray));
  Code.writeU2(classIndex(Cls));
}

void BytecodeBuilder::checkCast(const std::string &Cls) {
  Code.writeU1(static_cast<uint8_t>(Op::CheckCast));
  Code.writeU2(classIndex(Cls));
}

void BytecodeBuilder::instanceOf(const std::string &Cls) {
  Code.writeU1(static_cast<uint8_t>(Op::InstanceOf));
  Code.writeU2(classIndex(Cls));
}

//===----------------------------------------------------------------------===//
// Control flow
//===----------------------------------------------------------------------===//

BytecodeBuilder::Label BytecodeBuilder::newLabel() {
  LabelOffsets.push_back(-1);
  return LabelOffsets.size() - 1;
}

void BytecodeBuilder::placeLabel(Label L) {
  assert(LabelOffsets[L] == -1 && "label placed twice");
  LabelOffsets[L] = static_cast<int32_t>(Code.size());
}

void BytecodeBuilder::branch(Op O, Label L) {
  const OpInfo &Info = opInfo(O);
  assert(Info.Format == OpFormat::Branch2 && "branch() takes 16-bit ops");
  size_t InsnAt = Code.size();
  Code.writeU1(static_cast<uint8_t>(O));
  size_t OperandAt = Code.size();
  Code.writeU2(0);
  Fixups.push_back({OperandAt, InsnAt, L, false});
  adjust(-static_cast<int>(stackSlots(Info.Pops)));
}

void BytecodeBuilder::tableSwitch(int32_t Low,
                                  const std::vector<Label> &Cases,
                                  Label Default) {
  size_t InsnAt = Code.size();
  Code.writeU1(static_cast<uint8_t>(Op::TableSwitch));
  while (Code.size() % 4 != 0)
    Code.writeU1(0);
  Fixups.push_back({Code.size(), InsnAt, Default, true});
  Code.writeU4(0);
  Code.writeU4(static_cast<uint32_t>(Low));
  Code.writeU4(static_cast<uint32_t>(Low + static_cast<int32_t>(Cases.size()) - 1));
  for (Label L : Cases) {
    Fixups.push_back({Code.size(), InsnAt, L, true});
    Code.writeU4(0);
  }
  adjust(-1);
}

void BytecodeBuilder::lookupSwitch(const std::vector<int32_t> &Keys,
                                   const std::vector<Label> &Cases,
                                   Label Default) {
  assert(Keys.size() == Cases.size());
  size_t InsnAt = Code.size();
  Code.writeU1(static_cast<uint8_t>(Op::LookupSwitch));
  while (Code.size() % 4 != 0)
    Code.writeU1(0);
  Fixups.push_back({Code.size(), InsnAt, Default, true});
  Code.writeU4(0);
  Code.writeU4(static_cast<uint32_t>(Keys.size()));
  for (size_t I = 0; I < Keys.size(); ++I) {
    Code.writeU4(static_cast<uint32_t>(Keys[I]));
    Fixups.push_back({Code.size(), InsnAt, Cases[I], true});
    Code.writeU4(0);
  }
  adjust(-1);
}

void BytecodeBuilder::ret(VType T) {
  switch (T) {
  case VType::Void:
    Code.writeU1(static_cast<uint8_t>(Op::Return));
    break;
  case VType::Int:
    Code.writeU1(static_cast<uint8_t>(Op::IReturn));
    adjust(-1);
    break;
  case VType::Long:
    Code.writeU1(static_cast<uint8_t>(Op::LReturn));
    adjust(-2);
    break;
  case VType::Float:
    Code.writeU1(static_cast<uint8_t>(Op::FReturn));
    adjust(-1);
    break;
  case VType::Double:
    Code.writeU1(static_cast<uint8_t>(Op::DReturn));
    adjust(-2);
    break;
  default:
    Code.writeU1(static_cast<uint8_t>(Op::AReturn));
    adjust(-1);
    break;
  }
}

void BytecodeBuilder::addExceptionRegion(Label Start, Label End,
                                         Label Handler,
                                         const std::string &CatchClass) {
  Regions.push_back({Start, End, Handler, CatchClass});
}

void BytecodeBuilder::beginHandler() {
  Depth = 1; // the thrown reference
  if (Depth > MaxStack)
    MaxStack = Depth;
}

CodeAttribute BytecodeBuilder::finish() {
  for (const Fixup &F : Fixups) {
    int32_t Target = LabelOffsets[F.Target];
    assert(Target >= 0 && "branch to unplaced label");
    int32_t Delta = Target - static_cast<int32_t>(F.InsnAt);
    if (F.Wide4)
      Code.patchU4(F.At, static_cast<uint32_t>(Delta));
    else
      Code.patchU2(F.At, static_cast<uint16_t>(Delta));
  }
  CodeAttribute Out;
  Out.MaxStack = static_cast<uint16_t>(MaxStack);
  Out.MaxLocals = static_cast<uint16_t>(MaxLocals);
  Out.Code = CP.arena().adopt(Code.take());
  for (const Region &R : Regions) {
    ExceptionTableEntry E;
    E.StartPc = static_cast<uint16_t>(LabelOffsets[R.Start]);
    E.EndPc = static_cast<uint16_t>(LabelOffsets[R.End]);
    E.HandlerPc = static_cast<uint16_t>(LabelOffsets[R.Handler]);
    E.CatchType = R.CatchClass.empty() ? 0 : CP.addClass(R.CatchClass);
    Out.ExceptionTable.push_back(E);
  }
  return Out;
}
