//===- Names.h - identifier and string synthesis ---------------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthesizes realistic Java identifiers — package names, CamelCase
/// class names, camelCase member names — and natural-language-flavoured
/// string constants. Name realism matters for the reproduction: the
/// paper's wins from sharing package names and factoring signatures
/// (§3, §4) depend on the skewed reuse distribution of real programs.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_CORPUS_NAMES_H
#define CJPACK_CORPUS_NAMES_H

#include "corpus/Rng.h"
#include <string>
#include <vector>

namespace cjpack {

/// How identifiers are spelled in a generated benchmark.
enum class NameStyle : uint8_t {
  Normal,     ///< descriptive names as a human would write
  Obfuscated, ///< one/two-letter names, as produced by Jax/DashO (§13)
};

/// A deterministic name factory for one benchmark.
class NameGen {
public:
  NameGen(Rng &R, NameStyle Style) : R(R), Style(Style) {}

  /// A package internal name such as "com/acme/media/codec".
  std::string packageName(const std::string &RootVendor);

  /// A CamelCase simple class name ("AudioStreamFactory", or "c" when
  /// obfuscated).
  std::string className();

  /// A camelCase method name ("getSampleRate").
  std::string methodName();

  /// A camelCase field name ("sampleRate").
  std::string fieldName();

  /// A natural-language-like string constant.
  std::string stringLiteral();

private:
  std::string word();
  std::string capWord();
  std::string uniformWord();
  std::string capUniformWord();
  std::string shortName();

  Rng &R;
  NameStyle Style;
  unsigned ObfCounter = 0;
};

} // namespace cjpack

#endif // CJPACK_CORPUS_NAMES_H
