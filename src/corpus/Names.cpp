//===- Names.cpp - identifier and string synthesis ------------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/Names.h"

using namespace cjpack;

namespace {

// Vocabulary skewed toward systems/GUI/compiler vocabulary, mirroring
// the domains of the paper's benchmarks (runtime library, Swing, javac,
// parser generators, codecs, ...).
const char *const Words[] = {
    "stream",  "buffer",   "event",    "handler", "node",    "tree",
    "table",   "index",    "value",    "name",    "type",    "state",
    "frame",   "panel",    "widget",   "layout",  "border",  "image",
    "pixel",   "color",    "font",     "glyph",   "text",    "label",
    "input",   "output",   "file",     "path",    "entry",   "cache",
    "pool",    "queue",    "stack",    "list",    "map",     "set",
    "key",     "token",    "parser",   "lexer",   "symbol",  "scope",
    "method",  "field",    "class",    "member",  "access",  "modifier",
    "sample",  "rate",     "channel",  "filter",  "codec",   "decoder",
    "encoder", "packet",   "header",   "block",   "segment", "offset",
    "length",  "count",    "total",    "limit",   "bound",   "range",
    "window",  "view",     "model",    "control", "action",  "command",
    "result",  "status",   "error",    "message", "reason",  "context",
    "session", "request",  "response", "client",  "server",  "socket",
    "thread",  "monitor",  "lock",     "task",    "job",     "worker",
    "timer",   "clock",    "tick",     "delay",   "period",  "phase",
    "graph",   "edge",     "vertex",   "weight",  "cost",    "score",
    "matrix",  "vector",   "point",    "rect",    "shape",   "curve",
    "audio",   "video",    "media",    "track",   "mixer",   "volume",
    "user",    "group",    "owner",    "policy",  "rule",    "grammar",
};
constexpr size_t NumWords = sizeof(Words) / sizeof(Words[0]);

const char *const ClassSuffixes[] = {
    "Manager", "Factory", "Impl",    "Event",   "Listener", "Adapter",
    "Handler", "Stream",  "Reader",  "Writer",  "Buffer",   "Util",
    "Info",    "Entry",   "Context", "Support", "Model",    "View",
    "Panel",   "Layout",  "Editor",  "Parser",  "Visitor",  "Builder",
    "Filter",  "Cache",   "Table",   "Set",     "Map",      "Exception",
};
constexpr size_t NumClassSuffixes =
    sizeof(ClassSuffixes) / sizeof(ClassSuffixes[0]);

const char *const MethodVerbs[] = {
    "get",    "set",    "is",     "has",    "add",     "remove",
    "create", "build",  "make",   "find",   "lookup",  "resolve",
    "read",   "write",  "open",   "close",  "flush",   "reset",
    "init",   "update", "notify", "fire",   "dispatch", "handle",
    "parse",  "scan",   "emit",   "encode", "decode",  "process",
    "compute","apply",  "check",  "verify", "validate", "compare",
};
constexpr size_t NumMethodVerbs =
    sizeof(MethodVerbs) / sizeof(MethodVerbs[0]);

const char *const PackageRoots[] = {
    "util", "io", "net", "awt", "swing", "text", "media", "codec",
    "event", "image", "parser", "tools", "lang", "sql", "beans",
    "security", "rmi", "applet", "accessibility", "naming",
};
constexpr size_t NumPackageRoots =
    sizeof(PackageRoots) / sizeof(PackageRoots[0]);

std::string capitalize(std::string S) {
  if (!S.empty() && S[0] >= 'a' && S[0] <= 'z')
    S[0] = static_cast<char>(S[0] - 'a' + 'A');
  return S;
}

} // namespace

std::string NameGen::word() { return Words[R.zipf(NumWords)]; }

std::string NameGen::capWord() { return capitalize(word()); }

// Uniformly drawn words give real code's long tail of one-off
// identifiers; zipf-drawn words give the reused hot set.
std::string NameGen::uniformWord() { return Words[R.below(NumWords)]; }

std::string NameGen::capUniformWord() { return capitalize(uniformWord()); }

std::string NameGen::shortName() {
  // Obfuscators assign names in sequence: a, b, ..., z, aa, ab, ...
  unsigned N = ObfCounter++;
  std::string Out;
  do {
    Out.insert(Out.begin(), static_cast<char>('a' + N % 26));
    N /= 26;
  } while (N != 0);
  return Out;
}

std::string NameGen::packageName(const std::string &RootVendor) {
  std::string Out = RootVendor;
  Out += '/';
  Out += PackageRoots[R.zipf(NumPackageRoots)];
  if (R.chance(40)) {
    Out += '/';
    Out += word();
  }
  return Out;
}

std::string NameGen::className() {
  if (Style == NameStyle::Obfuscated)
    return shortName();
  std::string Out = capWord();
  if (R.chance(75))
    Out += capUniformWord();
  if (R.chance(70))
    Out += ClassSuffixes[R.zipf(NumClassSuffixes)];
  return Out;
}

std::string NameGen::methodName() {
  if (Style == NameStyle::Obfuscated)
    return shortName();
  std::string Out = MethodVerbs[R.zipf(NumMethodVerbs)];
  // A zipf-hot head (accessors reused everywhere) over a long uniform
  // tail of method names that appear in a single class.
  if (R.chance(30)) {
    Out += capWord();
  } else {
    Out += capUniformWord();
    if (R.chance(55))
      Out += capUniformWord();
  }
  return Out;
}

std::string NameGen::fieldName() {
  if (Style == NameStyle::Obfuscated)
    return shortName();
  std::string Out = word();
  if (R.chance(60))
    Out += capUniformWord();
  return Out;
}

std::string NameGen::stringLiteral() {
  // Short natural-language fragments and property keys, as classfile
  // string constants tend to be.
  if (R.chance(25)) {
    std::string Out = word();
    Out += '.';
    Out += word();
    return Out;
  }
  unsigned N = static_cast<unsigned>(R.range(2, 10));
  std::string Out;
  for (unsigned I = 0; I < N; ++I) {
    if (I)
      Out += ' ';
    Out += word();
  }
  return Out;
}
