//===- Corpus.cpp - synthetic benchmark corpora ---------------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "bytecode/Instruction.h"
#include "classfile/Writer.h"
#include "corpus/BytecodeBuilder.h"
#include <algorithm>
#include <cassert>
#include <set>

using namespace cjpack;

namespace {

//===----------------------------------------------------------------------===//
// Skeletons: signatures decided before any bytecode is generated, so
// method bodies can call across classes.
//===----------------------------------------------------------------------===//

struct FieldSig {
  std::string Name;
  std::string Desc;
  bool IsStatic = false;
  bool HasConst = false;
  int64_t ConstInt = 0;       ///< Integer/Long constant payload
  std::string ConstString;    ///< String constant payload
  char ConstKindChar = 0;     ///< 'I','J','F','D','S' when HasConst
  /// With the lint/strip knobs on, visibility is decided up front (so
  /// inherited-ref emission can respect it) instead of drawn in
  /// buildClass; PrivacyDecided distinguishes the two regimes so the
  /// default draw sequence is untouched.
  bool IsPrivate = false;
  bool PrivacyDecided = false;
  /// Seeded by CorpusSpec::DeadMembersPerClass; excluded from every
  /// reference-emitting picker so it stays genuinely unreferenced.
  bool IsDead = false;
};

struct MethodSig {
  std::string Name;
  std::string Desc;
  bool IsStatic = false;
  bool IsAbstract = false;
  bool IsPrivate = false; ///< only seeded dead methods are private
  bool IsDead = false;    ///< see FieldSig::IsDead
};

struct Skeleton {
  std::string Internal;
  std::string Super = "java/lang/Object";
  std::vector<std::string> Interfaces;
  bool IsInterface = false;
  std::vector<FieldSig> Fields;
  std::vector<MethodSig> Methods;
};

/// Well-known environment classes generated code may reference.
struct KnownMethod {
  const char *Cls, *Name, *Desc;
  Op Kind;
};

const KnownMethod KnownCalls[] = {
    {"java/lang/Math", "max", "(II)I", Op::InvokeStatic},
    {"java/lang/Math", "min", "(II)I", Op::InvokeStatic},
    {"java/lang/Math", "abs", "(I)I", Op::InvokeStatic},
    {"java/lang/System", "currentTimeMillis", "()J", Op::InvokeStatic},
    {"java/lang/String", "valueOf", "(I)Ljava/lang/String;",
     Op::InvokeStatic},
};
constexpr size_t NumKnownCalls = sizeof(KnownCalls) / sizeof(KnownCalls[0]);

//===----------------------------------------------------------------------===//
// Generator
//===----------------------------------------------------------------------===//

class CorpusGenerator {
public:
  explicit CorpusGenerator(const CorpusSpec &Spec)
      : Spec(Spec), R(Spec.Seed), Names(R, Spec.Style) {}

  std::vector<ClassFile> run() {
    buildPackages();
    buildStringPool();
    buildSkeletons();
    std::vector<ClassFile> Out;
    Out.reserve(Skeletons.size());
    for (const Skeleton &Sk : Skeletons)
      Out.push_back(buildClass(Sk));
    return Out;
  }

private:
  struct Local {
    VType T = VType::Int;
    unsigned Index = 0;
    std::string RefClass; ///< for T == Ref: internal name, "" if opaque
  };

  /// Per-method-body generation state.
  struct BodyCtx {
    BytecodeBuilder *B = nullptr;
    const Skeleton *Self = nullptr;
    bool IsStatic = false;
    std::vector<Local> Locals;
    unsigned Budget = 0; ///< remaining statements, bounds recursion
  };

  void buildPackages() {
    std::set<std::string> Seen;
    while (Packages.size() < Spec.NumPackages) {
      std::string P = Names.packageName(Spec.Vendor);
      if (Seen.insert(P).second)
        Packages.push_back(P);
    }
  }

  void buildStringPool() {
    size_t N = 8 + Spec.NumClasses / 2;
    if (Spec.Code == CodeStyle::StringHeavy)
      N *= 4;
    if (Spec.Code == CodeStyle::Numeric)
      N /= 4;
    for (size_t I = 0; I < std::max<size_t>(N, 4); ++I)
      StringPool.push_back(Names.stringLiteral());
  }

  std::string randomFieldDesc() {
    unsigned P = static_cast<unsigned>(R.below(100));
    switch (Spec.Code) {
    case CodeStyle::Numeric:
      if (P < 35) return "I";
      if (P < 50) return "J";
      if (P < 62) return "F";
      if (P < 75) return "D";
      if (P < 85) return "[I";
      if (P < 92) return "[F";
      break;
    case CodeStyle::StringHeavy:
      if (P < 30) return "Ljava/lang/String;";
      if (P < 50) return "I";
      if (P < 60) return "Ljava/util/Vector;";
      if (P < 68) return "Ljava/util/Hashtable;";
      break;
    case CodeStyle::Balanced:
      if (P < 30) return "I";
      if (P < 45) return "Ljava/lang/String;";
      if (P < 53) return "J";
      if (P < 58) return "F";
      if (P < 63) return "D";
      if (P < 71) return "Z";
      if (P < 76) return "[I";
      break;
    }
    // Reference to a generated class when possible: a zipf-hot head
    // plus a uniform tail, like real cross-class reference patterns.
    if (!Skeletons.empty() && R.chance(70)) {
      size_t Pick = R.chance(40) ? R.zipf(Skeletons.size())
                                 : R.below(Skeletons.size());
      return "L" + Skeletons[Pick].Internal + ";";
    }
    return "Ljava/lang/Object;";
  }

  std::string randomMethodDesc() {
    unsigned NParams = static_cast<unsigned>(R.range(0, 3));
    std::string Desc = "(";
    for (unsigned I = 0; I < NParams; ++I)
      Desc += randomFieldDesc();
    Desc += ")";
    unsigned P = static_cast<unsigned>(R.below(100));
    if (P < 45)
      Desc += "V";
    else if (P < 70)
      Desc += "I";
    else
      Desc += randomFieldDesc();
    return Desc;
  }

  void buildSkeletons() {
    Skeletons.reserve(Spec.NumClasses);
    for (unsigned I = 0; I < Spec.NumClasses; ++I) {
      Skeleton Sk;
      Sk.IsInterface = R.chance(Spec.PctInterfaces);
      const std::string &Pkg = Packages[R.zipf(Packages.size())];
      // Simple names may repeat across packages (the paper's point);
      // retry a few times only to keep internal names unique.
      for (int Try = 0; Try < 20; ++Try) {
        Sk.Internal = Pkg + "/" + Names.className();
        if (!UsedNames.count(Sk.Internal))
          break;
      }
      if (UsedNames.count(Sk.Internal))
        Sk.Internal += std::to_string(I);
      UsedNames.insert(Sk.Internal);

      if (!Sk.IsInterface) {
        // Subclass an earlier generated class sometimes.
        if (!ConcreteIdx.empty() && R.chance(30))
          Sk.Super = Skeletons[ConcreteIdx[R.zipf(ConcreteIdx.size())]]
                         .Internal;
        if (!InterfaceIdx.empty() && R.chance(25))
          Sk.Interfaces.push_back(
              Skeletons[InterfaceIdx[R.zipf(InterfaceIdx.size())]]
                  .Internal);
      }

      unsigned NFields = Sk.IsInterface
                             ? static_cast<unsigned>(R.range(0, 3))
                             : static_cast<unsigned>(R.range(
                                   1, std::max(2u, Spec.MeanFields * 2)));
      for (unsigned F = 0; F < NFields; ++F) {
        FieldSig FS;
        FS.Name = Names.fieldName();
        FS.Desc = randomFieldDesc();
        FS.IsStatic = Sk.IsInterface || R.chance(20);
        if (FS.IsStatic && R.chance(Sk.IsInterface ? 90 : 35)) {
          // static final constant
          if (FS.Desc == "I") {
            FS.HasConst = true;
            FS.ConstKindChar = 'I';
            FS.ConstInt = R.range(-4, 1000);
          } else if (FS.Desc == "J") {
            FS.HasConst = true;
            FS.ConstKindChar = 'J';
            FS.ConstInt = R.range(0, 1000000);
          } else if (FS.Desc == "Ljava/lang/String;") {
            FS.HasConst = true;
            FS.ConstKindChar = 'S';
            FS.ConstString = StringPool[R.zipf(StringPool.size())];
          }
        }
        Sk.Fields.push_back(std::move(FS));
      }

      unsigned NMethods = static_cast<unsigned>(
          R.range(1, std::max(2u, Spec.MeanMethods * 2)));
      for (unsigned M = 0; M < NMethods; ++M) {
        MethodSig MS;
        MS.Name = Names.methodName();
        MS.Desc = randomMethodDesc();
        MS.IsStatic = !Sk.IsInterface && R.chance(18);
        MS.IsAbstract = Sk.IsInterface;
        Sk.Methods.push_back(std::move(MS));
      }

      // Lint/strip knobs. Every draw below is gated on a knob being
      // non-zero, so default specs keep the historical draw sequence
      // (and therefore the golden wire hashes) bit-for-bit.
      bool Knobs =
          Spec.PctInheritedRefs > 0 || Spec.DeadMembersPerClass > 0;
      if (Knobs && !Sk.IsInterface) {
        // Inherited-ref emission must know which ancestor members are
        // visible, so visibility is decided here rather than drawn in
        // buildClass.
        for (FieldSig &FS : Sk.Fields) {
          FS.IsPrivate = R.chance(60);
          FS.PrivacyDecided = true;
        }
        for (unsigned D = 0; D < Spec.DeadMembersPerClass; ++D) {
          if (R.chance(50)) {
            FieldSig FS;
            FS.Name = Names.fieldName();
            FS.Desc = randomFieldDesc();
            FS.IsPrivate = true;
            FS.PrivacyDecided = true;
            FS.IsDead = true;
            Sk.Fields.push_back(std::move(FS));
          } else {
            MethodSig MS;
            MS.Name = Names.methodName();
            MS.Desc = randomMethodDesc();
            MS.IsPrivate = true;
            MS.IsDead = true;
            Sk.Methods.push_back(std::move(MS));
          }
        }
      }

      if (Sk.IsInterface)
        InterfaceIdx.push_back(Skeletons.size());
      else
        ConcreteIdx.push_back(Skeletons.size());
      Skeletons.push_back(std::move(Sk));
    }
  }

  //===--------------------------------------------------------------===//
  // Bodies
  //===--------------------------------------------------------------===//

  /// Pushes an int value from a local, a constant, or a field.
  void pushIntValue(BodyCtx &C) {
    // Prefer locals to produce the iload/arith patterns zlib feeds on.
    std::vector<const Local *> Ints;
    for (const Local &L : C.Locals)
      if (L.T == VType::Int)
        Ints.push_back(&L);
    if (!Ints.empty() && R.chance(55)) {
      C.B->loadLocal(VType::Int, Ints[R.below(Ints.size())]->Index);
      return;
    }
    if (R.chance(12)) {
      // A large constant now and then exercises ldc of integers.
      C.B->pushInt(static_cast<int32_t>(R.range(100000, 100040)) *
                   static_cast<int32_t>(R.range(1, 9)));
      return;
    }
    C.B->pushInt(static_cast<int32_t>(R.zipf(64)));
  }

  Local *pickLocal(BodyCtx &C, VType T) {
    std::vector<Local *> Match;
    for (Local &L : C.Locals)
      if (L.T == T)
        Match.push_back(&L);
    if (Match.empty())
      return nullptr;
    return Match[R.below(Match.size())];
  }

  Local newTypedLocal(BodyCtx &C, VType T, const std::string &RefClass) {
    Local L;
    L.T = T;
    L.Index = C.B->newLocal(T);
    L.RefClass = RefClass;
    return L;
  }

  void stmtIntArith(BodyCtx &C) {
    pushIntValue(C);
    pushIntValue(C);
    static const Op Ops[] = {Op::IAdd, Op::ISub, Op::IMul, Op::IAnd,
                             Op::IOr,  Op::IXor, Op::IShl, Op::IShr};
    C.B->op(Ops[R.below(8)]);
    Local *Dst = pickLocal(C, VType::Int);
    if (Dst && R.chance(70)) {
      C.B->storeLocal(VType::Int, Dst->Index);
    } else {
      Local L = newTypedLocal(C, VType::Int, "");
      C.B->storeLocal(VType::Int, L.Index);
      C.Locals.push_back(L);
    }
  }

  void pushLongValue(BodyCtx &C) {
    if (Local *L = pickLocal(C, VType::Long); L && R.chance(60)) {
      C.B->loadLocal(VType::Long, L->Index);
      return;
    }
    if (R.chance(30))
      C.B->pushLong(static_cast<int64_t>(R.below(3)));
    else
      // Real code's long constants are mostly small or round numbers.
      C.B->pushLong(R.range(0, 100000) * (R.chance(20) ? 1000 : 1));
  }

  void stmtLongArith(BodyCtx &C) {
    pushLongValue(C);
    pushLongValue(C);
    static const Op Ops[] = {Op::LAdd, Op::LSub, Op::LMul, Op::LAnd,
                             Op::LXor};
    C.B->op(Ops[R.below(5)]);
    Local *Dst = pickLocal(C, VType::Long);
    if (!Dst) {
      Local L = newTypedLocal(C, VType::Long, "");
      C.Locals.push_back(L);
      Dst = &C.Locals.back();
    }
    C.B->storeLocal(VType::Long, Dst->Index);
  }

  void pushDoubleValue(BodyCtx &C) {
    if (Local *L = pickLocal(C, VType::Double); L && R.chance(60)) {
      C.B->loadLocal(VType::Double, L->Index);
      return;
    }
    // Quantized values: real double constants have low-entropy bits.
    C.B->pushDouble(static_cast<double>(R.range(0, 512)) / 8.0);
  }

  void stmtDoubleArith(BodyCtx &C) {
    pushDoubleValue(C);
    pushDoubleValue(C);
    static const Op Ops[] = {Op::DAdd, Op::DSub, Op::DMul, Op::DDiv};
    C.B->op(Ops[R.below(4)]);
    Local *Dst = pickLocal(C, VType::Double);
    if (!Dst) {
      Local L = newTypedLocal(C, VType::Double, "");
      C.Locals.push_back(L);
      Dst = &C.Locals.back();
    }
    C.B->storeLocal(VType::Double, Dst->Index);
  }

  void stmtFloatArith(BodyCtx &C) {
    auto PushF = [&] {
      if (Local *L = pickLocal(C, VType::Float); L && R.chance(60))
        C.B->loadLocal(VType::Float, L->Index);
      else
        C.B->pushFloat(static_cast<float>(R.range(0, 256)) / 16.0f);
    };
    PushF();
    PushF();
    static const Op Ops[] = {Op::FAdd, Op::FSub, Op::FMul};
    C.B->op(Ops[R.below(3)]);
    Local *Dst = pickLocal(C, VType::Float);
    if (!Dst) {
      Local L = newTypedLocal(C, VType::Float, "");
      C.Locals.push_back(L);
      Dst = &C.Locals.back();
    }
    C.B->storeLocal(VType::Float, Dst->Index);
  }

  /// Half the string literals come from the shared pool (resource keys
  /// and the like recur); half are unique to their use site (error
  /// messages mostly appear once).
  std::string pickLiteral() {
    if (R.chance(50))
      return StringPool[R.zipf(StringPool.size())];
    return Names.stringLiteral();
  }

  void stmtString(BodyCtx &C) {
    const std::string S = pickLiteral();
    switch (R.below(3)) {
    case 0: { // String s = "...";
      C.B->pushString(S);
      Local L = newTypedLocal(C, VType::Ref, "java/lang/String");
      C.B->storeLocal(VType::Ref, L.Index);
      C.Locals.push_back(L);
      break;
    }
    case 1: // System.out.println("...");
      C.B->getField("java/lang/System", "out", "Ljava/io/PrintStream;",
                    /*IsStatic=*/true);
      C.B->pushString(S);
      C.B->invoke(Op::InvokeVirtual, "java/io/PrintStream", "println",
                  "(Ljava/lang/String;)V");
      break;
    default: { // new StringBuffer().append("...").append(i).toString()
      C.B->newObject("java/lang/StringBuffer");
      C.B->op(Op::Dup);
      C.B->invoke(Op::InvokeSpecial, "java/lang/StringBuffer", "<init>",
                  "()V");
      C.B->pushString(S);
      C.B->invoke(Op::InvokeVirtual, "java/lang/StringBuffer", "append",
                  "(Ljava/lang/String;)Ljava/lang/StringBuffer;");
      pushIntValue(C);
      C.B->invoke(Op::InvokeVirtual, "java/lang/StringBuffer", "append",
                  "(I)Ljava/lang/StringBuffer;");
      C.B->invoke(Op::InvokeVirtual, "java/lang/StringBuffer", "toString",
                  "()Ljava/lang/String;");
      Local L = newTypedLocal(C, VType::Ref, "java/lang/String");
      C.B->storeLocal(VType::Ref, L.Index);
      C.Locals.push_back(L);
      break;
    }
    }
  }

  /// Pushes default-ish arguments for \p Desc; returns false if that is
  /// not possible (never happens with our descriptors).
  void pushArgsFor(BodyCtx &C, const std::string &Desc) {
    auto M = parseMethodDescriptor(Desc);
    assert(M && "generated descriptor must parse");
    for (const TypeDesc &P : M->Params) {
      switch (vtypeOf(P)) {
      case VType::Int:
        pushIntValue(C);
        break;
      case VType::Long:
        pushLongValue(C);
        break;
      case VType::Float:
        C.B->pushFloat(1.0f);
        break;
      case VType::Double:
        pushDoubleValue(C);
        break;
      default:
        // Use a matching local if we have one, else null.
        if (P.Dims == 0 && P.Base == 'L') {
          for (Local &L : C.Locals)
            if (L.T == VType::Ref && L.RefClass == P.ClassName &&
                R.chance(80)) {
              C.B->loadLocal(VType::Ref, L.Index);
              goto next;
            }
        }
        C.B->pushNull();
      next:
        break;
      }
    }
  }

  /// Disposes of a call result of type \p Ret.
  void disposeResult(BodyCtx &C, const TypeDesc &Ret) {
    VType T = vtypeOf(Ret);
    if (T == VType::Void)
      return;
    if (T == VType::Long || T == VType::Double) {
      Local L = newTypedLocal(C, T, "");
      C.B->storeLocal(T, L.Index);
      C.Locals.push_back(L);
      return;
    }
    if (R.chance(50)) {
      C.B->op(Op::Pop);
      return;
    }
    Local L = newTypedLocal(
        C, T, T == VType::Ref && Ret.Dims == 0 && Ret.Base == 'L'
                  ? Ret.ClassName
                  : "");
    C.B->storeLocal(T, L.Index);
    C.Locals.push_back(L);
  }

  const Skeleton *findSkeleton(const std::string &Internal) const {
    for (const Skeleton &Sk : Skeletons)
      if (Sk.Internal == Internal)
        return &Sk;
    return nullptr;
  }

  /// Visits every generated ancestor of \p Sk (superclass chain plus
  /// the full interface closure), excluding \p Sk itself.
  template <typename Fn> void forEachAncestor(const Skeleton &Sk, Fn Visit) {
    std::vector<const Skeleton *> Work;
    std::set<const Skeleton *> Seen;
    auto Push = [&](const std::string &Name) {
      const Skeleton *S = findSkeleton(Name);
      if (S && Seen.insert(S).second)
        Work.push_back(S);
    };
    Push(Sk.Super);
    for (const std::string &I : Sk.Interfaces)
      Push(I);
    while (!Work.empty()) {
      const Skeleton *S = Work.back();
      Work.pop_back();
      Visit(*S);
      Push(S->Super);
      for (const std::string &I : S->Interfaces)
        Push(I);
    }
  }

  /// Calls a method the enclosing class inherits, naming the *subclass*
  /// as the constant-pool owner — exactly what javac emits, and the
  /// case that forces reference resolution to walk the superclass chain
  /// or interface closure. Returns false (emitting nothing) when no
  /// generated ancestor contributes a visible instance method.
  bool emitInheritedCall(BodyCtx &C) {
    std::vector<const MethodSig *> Cands;
    forEachAncestor(*C.Self, [&](const Skeleton &A) {
      for (const MethodSig &MS : A.Methods)
        if (!MS.IsStatic && !MS.IsDead && !MS.IsPrivate)
          Cands.push_back(&MS);
    });
    if (Cands.empty())
      return false;
    const MethodSig *MS = Cands[R.below(Cands.size())];
    C.B->loadLocal(VType::Ref, 0);
    pushArgsFor(C, MS->Desc);
    C.B->invoke(Op::InvokeVirtual, C.Self->Internal, MS->Name, MS->Desc);
    disposeResult(C, parseMethodDescriptor(MS->Desc)->Ret);
    return true;
  }

  /// Reads a field the enclosing class inherits, again owned by the
  /// subclass in the emitted ref. Visible non-constant ancestor fields
  /// only; interface constants are excluded like own constants are.
  bool emitInheritedGet(BodyCtx &C) {
    std::vector<const FieldSig *> Cands;
    forEachAncestor(*C.Self, [&](const Skeleton &A) {
      for (const FieldSig &F : A.Fields)
        if (!F.HasConst && !F.IsDead && !F.IsPrivate &&
            vtypeOfFieldDescriptor(F.Desc) != VType::Unknown)
          Cands.push_back(&F);
    });
    if (Cands.empty())
      return false;
    const FieldSig *F = Cands[R.below(Cands.size())];
    if (!F->IsStatic)
      C.B->loadLocal(VType::Ref, 0);
    C.B->getField(C.Self->Internal, F->Name, F->Desc, F->IsStatic);
    disposeResult(C, *parseFieldDescriptor(F->Desc));
    return true;
  }

  void stmtCall(BodyCtx &C) {
    if (Spec.PctInheritedRefs > 0 && !C.IsStatic &&
        R.chance(Spec.PctInheritedRefs) && emitInheritedCall(C))
      return;
    // Candidates: own methods (via this), methods on typed ref locals,
    // known static calls, constructing a generated class.
    unsigned P = static_cast<unsigned>(R.below(100));
    if (P < 20) { // known static call
      const KnownMethod &KM = KnownCalls[R.below(NumKnownCalls)];
      pushArgsFor(C, KM.Desc);
      C.B->invoke(KM.Kind, KM.Cls, KM.Name, KM.Desc);
      auto M = parseMethodDescriptor(KM.Desc);
      disposeResult(C, M->Ret);
      return;
    }
    if (P < 55 && !C.IsStatic && !C.Self->Methods.empty()) {
      // this.someOwnMethod(...) — seeded dead members are excluded so
      // they stay genuinely unreferenced. With the knobs off the
      // filtered list equals Methods, so the zipf draw is unchanged.
      std::vector<const MethodSig *> Own;
      for (const MethodSig &MS : C.Self->Methods)
        if (!MS.IsDead)
          Own.push_back(&MS);
      if (!Own.empty()) {
        const MethodSig &MS = *Own[R.zipf(Own.size())];
        if (!MS.IsStatic) {
          C.B->loadLocal(VType::Ref, 0);
          pushArgsFor(C, MS.Desc);
          C.B->invoke(Op::InvokeVirtual, C.Self->Internal, MS.Name,
                      MS.Desc);
        } else {
          pushArgsFor(C, MS.Desc);
          C.B->invoke(Op::InvokeStatic, C.Self->Internal, MS.Name,
                      MS.Desc);
        }
        disposeResult(C, parseMethodDescriptor(MS.Desc)->Ret);
        return;
      }
    }
    if (P < 80) {
      // Call through a typed ref local when we have one.
      std::vector<Local *> Refs;
      for (Local &L : C.Locals)
        if (L.T == VType::Ref && !L.RefClass.empty() &&
            findSkeleton(L.RefClass))
          Refs.push_back(&L);
      if (!Refs.empty()) {
        Local *Recv = Refs[R.below(Refs.size())];
        const Skeleton *Target = findSkeleton(Recv->RefClass);
        std::vector<const MethodSig *> Callable;
        for (const MethodSig &MS : Target->Methods)
          if (!MS.IsStatic && !MS.IsDead && !MS.IsPrivate)
            Callable.push_back(&MS);
        if (!Callable.empty()) {
          const MethodSig *MS = Callable[R.zipf(Callable.size())];
          C.B->loadLocal(VType::Ref, Recv->Index);
          pushArgsFor(C, MS->Desc);
          C.B->invoke(Target->IsInterface ? Op::InvokeInterface
                                          : Op::InvokeVirtual,
                      Target->Internal, MS->Name, MS->Desc);
          disposeResult(C, parseMethodDescriptor(MS->Desc)->Ret);
          return;
        }
      }
    }
    // new SomeGeneratedClass()
    if (!ConcreteIdx.empty()) {
      const Skeleton &Target =
          Skeletons[ConcreteIdx[R.zipf(ConcreteIdx.size())]];
      C.B->newObject(Target.Internal);
      C.B->op(Op::Dup);
      C.B->invoke(Op::InvokeSpecial, Target.Internal, "<init>", "()V");
      Local L = newTypedLocal(C, VType::Ref, Target.Internal);
      C.B->storeLocal(VType::Ref, L.Index);
      C.Locals.push_back(L);
    }
  }

  void stmtFieldAccess(BodyCtx &C, const Skeleton &Sk) {
    if (Spec.PctInheritedRefs > 0 && !C.IsStatic &&
        R.chance(Spec.PctInheritedRefs) && emitInheritedGet(C))
      return;
    std::vector<const FieldSig *> Usable;
    for (const FieldSig &F : Sk.Fields)
      if (!F.HasConst && !F.IsDead && (F.IsStatic || !C.IsStatic))
        Usable.push_back(&F);
    if (Usable.empty())
      return;
    const FieldSig *F = Usable[R.below(Usable.size())];
    VType T = vtypeOfFieldDescriptor(F->Desc);
    if (T == VType::Unknown)
      return;
    bool Put = R.chance(45);
    if (Put) {
      if (!F->IsStatic)
        C.B->loadLocal(VType::Ref, 0);
      switch (T) {
      case VType::Int:
        pushIntValue(C);
        break;
      case VType::Long:
        pushLongValue(C);
        break;
      case VType::Float:
        C.B->pushFloat(0.0f);
        break;
      case VType::Double:
        pushDoubleValue(C);
        break;
      default:
        C.B->pushNull();
        break;
      }
      C.B->putField(Sk.Internal, F->Name, F->Desc, F->IsStatic);
    } else {
      if (!F->IsStatic)
        C.B->loadLocal(VType::Ref, 0);
      C.B->getField(Sk.Internal, F->Name, F->Desc, F->IsStatic);
      TypeDesc TD = *parseFieldDescriptor(F->Desc);
      disposeResult(C, TD);
    }
  }

  void stmtIf(BodyCtx &C, const Skeleton &Sk) {
    pushIntValue(C);
    auto L = C.B->newLabel();
    static const Op Conds[] = {Op::IfEq, Op::IfNe, Op::IfLt,
                               Op::IfGe, Op::IfGt, Op::IfLe};
    C.B->branch(Conds[R.below(6)], L);
    // Locals born inside a branch are not definitely assigned on paths
    // that skip it, so they go out of scope with the branch body.
    size_t Scope = C.Locals.size();
    unsigned N = static_cast<unsigned>(R.range(1, 3));
    for (unsigned I = 0; I < N && C.Budget > 0; ++I)
      statement(C, Sk);
    C.Locals.resize(Scope);
    if (R.chance(40)) {
      auto LEnd = C.B->newLabel();
      C.B->branch(Op::Goto, LEnd);
      C.B->placeLabel(L);
      unsigned M = static_cast<unsigned>(R.range(1, 2));
      for (unsigned I = 0; I < M && C.Budget > 0; ++I)
        statement(C, Sk);
      C.Locals.resize(Scope);
      C.B->placeLabel(LEnd);
    } else {
      C.B->placeLabel(L);
    }
  }

  void stmtLoop(BodyCtx &C, const Skeleton &Sk) {
    Local I = newTypedLocal(C, VType::Int, "");
    C.Locals.push_back(I);
    C.B->pushInt(0);
    C.B->storeLocal(VType::Int, I.Index);
    auto LCond = C.B->newLabel();
    auto LEnd = C.B->newLabel();
    C.B->placeLabel(LCond);
    C.B->loadLocal(VType::Int, I.Index);
    C.B->pushInt(static_cast<int32_t>(R.range(2, 64)));
    C.B->branch(Op::IfICmpGe, LEnd);
    // The body may run zero times; its locals go out of scope with it.
    size_t Scope = C.Locals.size();
    unsigned N = static_cast<unsigned>(R.range(1, 3));
    for (unsigned K = 0; K < N && C.Budget > 0; ++K)
      statement(C, Sk);
    C.Locals.resize(Scope);
    C.B->iinc(I.Index, 1);
    C.B->branch(Op::Goto, LCond);
    C.B->placeLabel(LEnd);
  }

  void stmtArray(BodyCtx &C) {
    C.B->pushInt(static_cast<int32_t>(R.range(2, 40)));
    C.B->newArray('I');
    Local A = newTypedLocal(C, VType::Ref, "");
    C.B->storeLocal(VType::Ref, A.Index);
    C.Locals.push_back(A);
    // arr[k] = v; v2 = arr[k2];
    C.B->loadLocal(VType::Ref, A.Index);
    C.B->pushInt(static_cast<int32_t>(R.below(2)));
    pushIntValue(C);
    C.B->op(Op::IAStore);
    C.B->loadLocal(VType::Ref, A.Index);
    C.B->pushInt(0);
    C.B->op(Op::IALoad);
    C.B->op(Op::Pop);
  }

  void stmtSwitch(BodyCtx &C, const Skeleton &Sk) {
    pushIntValue(C);
    unsigned N = static_cast<unsigned>(R.range(3, 6));
    std::vector<BytecodeBuilder::Label> Cases;
    for (unsigned I = 0; I < N; ++I)
      Cases.push_back(C.B->newLabel());
    auto LDefault = C.B->newLabel();
    auto LEnd = C.B->newLabel();
    bool Table = R.chance(60);
    if (Table) {
      C.B->tableSwitch(0, Cases, LDefault);
    } else {
      std::vector<int32_t> Keys;
      int32_t K = 0;
      for (unsigned I = 0; I < N; ++I) {
        K += static_cast<int32_t>(R.range(1, 9));
        Keys.push_back(K);
      }
      C.B->lookupSwitch(Keys, Cases, LDefault);
    }
    for (unsigned I = 0; I < N; ++I) {
      C.B->placeLabel(Cases[I]);
      // Case-local variables are only assigned when that case runs.
      size_t Scope = C.Locals.size();
      if (C.Budget > 0)
        statement(C, Sk);
      C.Locals.resize(Scope);
      C.B->branch(Op::Goto, LEnd);
    }
    C.B->placeLabel(LDefault);
    C.B->placeLabel(LEnd);
  }

  void stmtTryCatch(BodyCtx &C, const Skeleton &Sk) {
    auto LStart = C.B->newLabel();
    auto LEndTry = C.B->newLabel();
    auto LHandler = C.B->newLabel();
    auto LDone = C.B->newLabel();
    C.B->placeLabel(LStart);
    // The protected range must be non-empty, and the handler can fire
    // anywhere inside it, so try-body locals do not survive the block.
    size_t Scope = C.Locals.size();
    stmtIntArith(C);
    unsigned N = static_cast<unsigned>(R.range(1, 2));
    for (unsigned I = 1; I < N && C.Budget > 0; ++I)
      statement(C, Sk);
    C.Locals.resize(Scope);
    C.B->placeLabel(LEndTry);
    C.B->branch(Op::Goto, LDone);
    C.B->placeLabel(LHandler);
    C.B->beginHandler();
    // The caught exception is only assigned on the handler path; keep
    // it out of scope so fallthrough code never reads it.
    Local E = newTypedLocal(C, VType::Ref, "java/lang/Exception");
    C.B->storeLocal(VType::Ref, E.Index);
    C.B->placeLabel(LDone);
    C.B->addExceptionRegion(LStart, LEndTry, LHandler,
                            R.chance(80) ? "java/lang/Exception" : "");
  }

  void statement(BodyCtx &C, const Skeleton &Sk) {
    if (C.Budget == 0)
      return;
    --C.Budget;
    unsigned P = static_cast<unsigned>(R.below(100));
    switch (Spec.Code) {
    case CodeStyle::Numeric:
      if (P < 28) return stmtIntArith(C);
      if (P < 42) return stmtLongArith(C);
      if (P < 52) return stmtFloatArith(C);
      if (P < 64) return stmtDoubleArith(C);
      if (P < 74) return stmtArray(C);
      if (P < 84) return stmtLoop(C, Sk);
      if (P < 92) return stmtIf(C, Sk);
      if (P < 97) return stmtFieldAccess(C, Sk);
      return stmtCall(C);
    case CodeStyle::StringHeavy:
      if (P < 30) return stmtString(C);
      if (P < 45) return stmtCall(C);
      if (P < 60) return stmtIntArith(C);
      if (P < 72) return stmtFieldAccess(C, Sk);
      if (P < 82) return stmtIf(C, Sk);
      if (P < 88) return stmtLoop(C, Sk);
      if (P < 92) return stmtTryCatch(C, Sk);
      if (P < 96) return stmtSwitch(C, Sk);
      return stmtArray(C);
    case CodeStyle::Balanced:
      break;
    }
    if (P < 20) return stmtIntArith(C);
    if (P < 35) return stmtCall(C);
    if (P < 48) return stmtFieldAccess(C, Sk);
    if (P < 60) return stmtIf(C, Sk);
    if (P < 70) return stmtString(C);
    if (P < 78) return stmtLoop(C, Sk);
    if (P < 84) return stmtArray(C);
    if (P < 89) return stmtLongArith(C);
    if (P < 93) return stmtDoubleArith(C);
    if (P < 97) return stmtTryCatch(C, Sk);
    return stmtSwitch(C, Sk);
  }

  /// Emits the final return, producing a value of the method's return
  /// type.
  void emitReturn(BodyCtx &C, const std::string &Desc) {
    auto M = parseMethodDescriptor(Desc);
    VType T = vtypeOf(M->Ret);
    switch (T) {
    case VType::Void:
      break;
    case VType::Int:
      pushIntValue(C);
      break;
    case VType::Long:
      pushLongValue(C);
      break;
    case VType::Float:
      C.B->pushFloat(0.0f);
      break;
    case VType::Double:
      pushDoubleValue(C);
      break;
    default:
      if (M->Ret.Dims == 0 && M->Ret.Base == 'L' &&
          M->Ret.ClassName == "java/lang/String" && R.chance(60)) {
        C.B->pushString(pickLiteral());
      } else {
        C.B->pushNull();
      }
      break;
    }
    C.B->ret(T);
  }

  CodeAttribute buildBody(ConstantPool &CP, const Skeleton &Sk,
                          const MethodSig &MS) {
    auto M = parseMethodDescriptor(MS.Desc);
    assert(M && "generated descriptor must parse");
    unsigned Slots = MS.IsStatic ? 0 : 1;
    BodyCtx C;
    std::vector<Local> Params;
    for (const TypeDesc &P : M->Params) {
      Local L;
      L.T = vtypeOf(P);
      L.Index = Slots;
      if (P.Dims == 0 && P.Base == 'L')
        L.RefClass = P.ClassName;
      Slots += (L.T == VType::Long || L.T == VType::Double) ? 2 : 1;
      Params.push_back(L);
    }
    BytecodeBuilder B(CP, Slots);
    C.B = &B;
    C.Self = &Sk;
    C.IsStatic = MS.IsStatic;
    C.Locals = std::move(Params);
    C.Budget = static_cast<unsigned>(
        R.range(1, std::max(2u, Spec.MeanStatements * 2)));
    while (C.Budget > 0)
      statement(C, Sk);
    emitReturn(C, MS.Desc);
    return B.finish();
  }

  CodeAttribute buildCtor(ConstantPool &CP, const Skeleton &Sk) {
    BytecodeBuilder B(CP, 1);
    B.loadLocal(VType::Ref, 0);
    B.invoke(Op::InvokeSpecial, Sk.Super, "<init>", "()V");
    // Initialize a few instance fields (never seeded dead ones — a
    // putfield here would make them reachable).
    for (const FieldSig &F : Sk.Fields) {
      if (F.IsStatic || F.IsDead || !R.chance(50))
        continue;
      VType T = vtypeOfFieldDescriptor(F.Desc);
      B.loadLocal(VType::Ref, 0);
      switch (T) {
      case VType::Int:
        B.pushInt(static_cast<int32_t>(R.zipf(16)));
        break;
      case VType::Long:
        B.pushLong(0);
        break;
      case VType::Float:
        B.pushFloat(0.0f);
        break;
      case VType::Double:
        B.pushDouble(0.0);
        break;
      default:
        if (F.Desc == "Ljava/lang/String;")
          B.pushString(StringPool[R.zipf(StringPool.size())]);
        else
          B.pushNull();
        break;
      }
      B.putField(Sk.Internal, F.Name, F.Desc, /*IsStatic=*/false);
    }
    B.ret(VType::Void);
    return B.finish();
  }

  ClassFile buildClass(const Skeleton &Sk) {
    ClassFile CF;
    CF.AccessFlags = AccPublic | (Sk.IsInterface
                                      ? (AccInterface | AccAbstract)
                                      : AccSuper);
    CF.ThisClass = CF.CP.addClass(Sk.Internal);
    CF.SuperClass = CF.CP.addClass(Sk.Super);
    for (const std::string &I : Sk.Interfaces)
      CF.Interfaces.push_back(CF.CP.addClass(I));

    for (const FieldSig &F : Sk.Fields) {
      MemberInfo MI;
      MI.AccessFlags = static_cast<uint16_t>(
          (F.IsStatic ? AccStatic : 0) |
          (Sk.IsInterface
               ? (AccPublic | AccFinal | AccStatic)
               : (F.PrivacyDecided
                      ? (F.IsPrivate ? AccPrivate : AccPublic)
                      : (R.chance(60) ? AccPrivate : AccPublic))));
      if (F.HasConst)
        MI.AccessFlags |= AccFinal;
      MI.NameIndex = CF.CP.addUtf8(F.Name);
      MI.DescriptorIndex = CF.CP.addUtf8(F.Desc);
      if (F.HasConst) {
        uint16_t CIdx = 0;
        switch (F.ConstKindChar) {
        case 'I':
          CIdx = CF.CP.addInteger(static_cast<int32_t>(F.ConstInt));
          break;
        case 'J':
          CIdx = CF.CP.addLong(F.ConstInt);
          break;
        case 'S':
          CIdx = CF.CP.addString(F.ConstString);
          break;
        default:
          break;
        }
        if (CIdx != 0) {
          ByteWriter W;
          W.writeU2(CIdx);
          MI.Attributes.push_back(
              {"ConstantValue", CF.arena().adopt(W.take())});
        }
      }
      CF.Fields.push_back(std::move(MI));
    }

    if (!Sk.IsInterface) {
      MemberInfo Ctor;
      Ctor.AccessFlags = AccPublic;
      Ctor.NameIndex = CF.CP.addUtf8("<init>");
      Ctor.DescriptorIndex = CF.CP.addUtf8("()V");
      CodeAttribute Code = buildCtor(CF.CP, Sk);
      if (Spec.EmitDebugInfo)
        attachDebugInfo(CF.CP, Code, 1);
      Ctor.Attributes.push_back(encodeCodeAttribute(Code, CF.CP));
      CF.Methods.push_back(std::move(Ctor));
    }

    for (const MethodSig &MS : Sk.Methods) {
      MemberInfo MI;
      MI.AccessFlags = static_cast<uint16_t>(
          (MS.IsPrivate ? AccPrivate : AccPublic) |
          (MS.IsStatic ? AccStatic : 0) |
          (MS.IsAbstract ? AccAbstract : 0));
      MI.NameIndex = CF.CP.addUtf8(MS.Name);
      MI.DescriptorIndex = CF.CP.addUtf8(MS.Desc);
      if (!MS.IsAbstract) {
        CodeAttribute Code = buildBody(CF.CP, Sk, MS);
        if (Spec.EmitDebugInfo)
          attachDebugInfo(CF.CP, Code,
                          MS.IsStatic ? 0u : 1u);
        MI.Attributes.push_back(encodeCodeAttribute(Code, CF.CP));
        if (R.chance(12)) {
          ByteWriter W;
          W.writeU2(1);
          W.writeU2(CF.CP.addClass("java/io/IOException"));
          MI.Attributes.push_back(
              {"Exceptions", CF.arena().adopt(W.take())});
        }
      }
      CF.Methods.push_back(std::move(MI));
    }

    if (Spec.EmitDebugInfo) {
      size_t Slash = Sk.Internal.rfind('/');
      std::string Simple = Slash == std::string::npos
                               ? Sk.Internal
                               : Sk.Internal.substr(Slash + 1);
      ByteWriter W;
      W.writeU2(CF.CP.addUtf8(Simple + ".java"));
      CF.Attributes.push_back({"SourceFile", CF.arena().adopt(W.take())});
    }
    return CF;
  }

  /// Adds LineNumberTable and (sometimes) LocalVariableTable attributes
  /// to \p Code, as javac does by default.
  void attachDebugInfo(ConstantPool &CP, CodeAttribute &Code,
                       unsigned ThisSlots) {
    auto Insns = decodeCode(Code.Code);
    if (!Insns)
      return;
    ByteWriter LNT;
    uint16_t Entries = 0;
    unsigned Line = static_cast<unsigned>(R.range(10, 400));
    ByteWriter Body;
    for (size_t K = 0; K < Insns->size(); K += 2 + R.below(3)) {
      Body.writeU2(static_cast<uint16_t>((*Insns)[K].Offset));
      Body.writeU2(static_cast<uint16_t>(Line));
      Line += 1 + static_cast<unsigned>(R.below(3));
      ++Entries;
    }
    LNT.writeU2(Entries);
    LNT.writeBytes(Body.data());
    Code.Attributes.push_back(
        {"LineNumberTable", CP.arena().adopt(LNT.take())});

    if (R.chance(55)) {
      ByteWriter LVT;
      uint16_t N = static_cast<uint16_t>(ThisSlots + R.below(3));
      LVT.writeU2(N);
      for (uint16_t K = 0; K < N; ++K) {
        LVT.writeU2(0);
        LVT.writeU2(static_cast<uint16_t>(Code.Code.size()));
        LVT.writeU2(CP.addUtf8(K == 0 && ThisSlots ? "this"
                                                   : Names.fieldName()));
        LVT.writeU2(CP.addUtf8(K == 0 && ThisSlots
                                   ? "Ljava/lang/Object;"
                                   : "I"));
        LVT.writeU2(K);
      }
      Code.Attributes.push_back(
          {"LocalVariableTable", CP.arena().adopt(LVT.take())});
    }
  }

  const CorpusSpec &Spec;
  Rng R;
  NameGen Names;
  std::vector<std::string> Packages;
  std::vector<std::string> StringPool;
  std::vector<Skeleton> Skeletons;
  std::vector<size_t> ConcreteIdx, InterfaceIdx;
  std::set<std::string> UsedNames;
};

} // namespace

std::vector<ClassFile>
cjpack::generateCorpusClasses(const CorpusSpec &Spec) {
  return CorpusGenerator(Spec).run();
}

std::vector<NamedClass> cjpack::generateCorpus(const CorpusSpec &Spec) {
  std::vector<ClassFile> Classes = generateCorpusClasses(Spec);
  std::vector<NamedClass> Out;
  Out.reserve(Classes.size());
  for (const ClassFile &CF : Classes) {
    NamedClass C;
    C.Name = std::string(CF.thisClassName()) + ".class";
    C.Data = writeClassFile(CF);
    Out.push_back(std::move(C));
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Paper benchmark specs (Table 1)
//===----------------------------------------------------------------------===//

std::vector<CorpusSpec> cjpack::paperBenchmarks(double Scale) {
  auto Mk = [&](const char *Name, const char *Desc, uint64_t Seed,
                unsigned Classes, unsigned Packages, unsigned Methods,
                unsigned Stmts, NameStyle Style, CodeStyle Code,
                const char *Vendor) {
    CorpusSpec S;
    S.Name = Name;
    S.Description = Desc;
    S.Seed = Seed;
    S.NumClasses =
        std::max(2u, static_cast<unsigned>(Classes * Scale + 0.5));
    S.NumPackages = std::max(1u, std::min(Packages, S.NumClasses));
    S.MeanMethods = Methods;
    S.MeanFields = 5;
    S.MeanStatements = Stmts;
    S.Style = Style;
    S.Code = Code;
    S.Vendor = Vendor;
    return S;
  };
  // Class counts calibrated so sj0r totals approximate Table 1.
  return {
      Mk("rt", "Java 1.2 runtime", 101, 2699, 48, 8, 9,
         NameStyle::Normal, CodeStyle::Balanced, "java"),
      Mk("swingall", "JFC/Swing 1.1 GUI widgets", 102, 853, 14, 9, 9,
         NameStyle::Normal, CodeStyle::Balanced, "javax/swing"),
      Mk("tools", "Java 1.2 tools (javadoc, javac, jar)", 103, 460, 9, 8, 9, NameStyle::Normal, CodeStyle::Balanced, "sun/tools"),
      Mk("icebrowserbean", "HTML browser bean", 104, 75, 3, 8, 9,
         NameStyle::Normal, CodeStyle::Balanced, "ice/browser"),
      Mk("jmark20", "Byte's Java benchmark", 105, 105, 4, 8, 14,
         NameStyle::Normal, CodeStyle::Numeric, "com/bytemark"),
      Mk("visaj", "visual GUI builder", 106, 616, 10, 8, 9,
         NameStyle::Normal, CodeStyle::Balanced, "com/visaj"),
      Mk("ImageEditor", "image editor from VisaJ", 107, 129, 5, 8, 9,
         NameStyle::Normal, CodeStyle::Balanced, "com/visaj/image"),
      Mk("Hanoi", "demo applet distributed with Jax", 108, 27, 2, 8, 9,
         NameStyle::Normal, CodeStyle::Balanced, "com/hanoi"),
      Mk("Hanoi_big", "Hanoi, partially jax'd", 109, 18, 2, 8, 9,
         NameStyle::Obfuscated, CodeStyle::Balanced, "com/hanoi"),
      Mk("Hanoi_jax", "Hanoi, fully jax'd", 110, 10, 1, 8, 9,
         NameStyle::Obfuscated, CodeStyle::Balanced, "com/hanoi"),
      Mk("javafig", "Java version of xfig", 111, 109, 4, 8, 9,
         NameStyle::Normal, CodeStyle::Balanced, "javafig"),
      Mk("javafig_dashO", "javafig processed by DashO", 112, 85, 3, 8, 9, NameStyle::Obfuscated, CodeStyle::Balanced, "javafig"),
      Mk("compress", "SPEC 201: modified Lempel-Ziv (LZW)", 113, 5, 1, 8,
         16, NameStyle::Normal, CodeStyle::Numeric, "spec/compress"),
      Mk("jess", "SPEC 202: Java expert shell system", 114, 58, 3, 8, 9, NameStyle::Normal, CodeStyle::StringHeavy, "spec/jess"),
      Mk("raytrace", "SPEC 205: raytracing a dinosaur", 115, 18, 2, 8,
         14, NameStyle::Normal, CodeStyle::Numeric, "spec/raytrace"),
      Mk("db", "SPEC 209: memory-resident database", 116, 2, 1, 8, 9,
         NameStyle::Normal, CodeStyle::StringHeavy, "spec/db"),
      Mk("javac", "SPEC 213: Sun's JDK 1.0.2 compiler", 117, 149, 6, 8, 9, NameStyle::Normal, CodeStyle::Balanced, "sun/javac"),
      Mk("mpegaudio", "SPEC 222: MPEG layer 3 decoder", 118, 30, 2, 9,
         18, NameStyle::Normal, CodeStyle::Numeric, "spec/mpegaudio"),
      Mk("jack", "SPEC 228: parser generator (PCCTS)", 119, 27, 2, 8, 9,
         NameStyle::Normal, CodeStyle::StringHeavy, "spec/jack"),
  };
}

CorpusSpec cjpack::scaleBenchmark(unsigned NumClasses) {
  CorpusSpec S;
  S.Name = "scale" + std::to_string(NumClasses);
  S.Description = "scale campaign corpus";
  S.Seed = 9001;
  S.NumClasses = NumClasses;
  // ~50 classes per package keeps the package pool realistic for big
  // jars (rt.jar-era layouts) without degenerating to one package.
  S.NumPackages = std::max(1u, NumClasses / 50);
  S.MeanMethods = 10;
  S.MeanFields = 6;
  S.MeanStatements = 14;
  S.Vendor = "com/scale";
  return S;
}

CorpusSpec cjpack::paperBenchmark(const std::string &Name, double Scale) {
  for (CorpusSpec &S : paperBenchmarks(Scale))
    if (S.Name == Name)
      return S;
  assert(false && "unknown paper benchmark name");
  return CorpusSpec();
}
