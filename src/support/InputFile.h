//===- InputFile.h - read-only memory-mapped file --------------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A read-only view of a file's bytes, memory-mapped where the platform
/// allows it. The point of mapping is the lazy-read contract of the
/// version-3 archive format: PackedArchiveReader opens a multi-megabyte
/// archive, reads the small index frame, and then touches only the
/// pages of the shard blobs a request actually decodes — the kernel
/// never faults in the rest. On platforms without mmap (or when the
/// map fails, e.g. on a pipe) the whole file is read into an owned
/// buffer instead; callers see the same span either way.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_SUPPORT_INPUTFILE_H
#define CJPACK_SUPPORT_INPUTFILE_H

#include "support/Error.h"
#include <cstdint>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define CJPACK_HAVE_MMAP 1
#endif

namespace cjpack {

/// An open read-only file: a stable (data, size) span valid for the
/// object's lifetime. Movable, not copyable; unmaps/frees on
/// destruction.
class InputFile {
public:
  InputFile() = default;
  InputFile(const InputFile &) = delete;
  InputFile &operator=(const InputFile &) = delete;

  InputFile(InputFile &&Other) noexcept { *this = std::move(Other); }
  InputFile &operator=(InputFile &&Other) noexcept {
    if (this != &Other) {
      reset();
      Mapped = Other.Mapped;
      MappedSize = Other.MappedSize;
      Owned = std::move(Other.Owned);
      Other.Mapped = nullptr;
      Other.MappedSize = 0;
    }
    return *this;
  }

  ~InputFile() { reset(); }

  /// Opens \p Path read-only. Prefers mmap; falls back to reading the
  /// file into memory. Fails with a typed Error when the file cannot
  /// be opened or read.
  static Expected<InputFile> open(const std::string &Path) {
    InputFile F;
#if CJPACK_HAVE_MMAP
    int Fd = ::open(Path.c_str(), O_RDONLY);
    if (Fd >= 0) {
      struct stat St;
      if (::fstat(Fd, &St) == 0 && S_ISREG(St.st_mode)) {
        if (St.st_size == 0) {
          ::close(Fd);
          return F; // empty file: valid zero-length span
        }
        void *P = ::mmap(nullptr, static_cast<size_t>(St.st_size),
                         PROT_READ, MAP_PRIVATE, Fd, 0);
        ::close(Fd);
        if (P != MAP_FAILED) {
          F.Mapped = P;
          F.MappedSize = static_cast<size_t>(St.st_size);
          return F;
        }
        // Map failed (e.g. exotic filesystem): fall through to the
        // buffered path below.
      } else {
        ::close(Fd);
      }
    }
#endif
    std::ifstream In(Path, std::ios::binary);
    if (!In)
      return Error::failure("cannot open '" + Path + "'");
    F.Owned.assign(std::istreambuf_iterator<char>(In),
                   std::istreambuf_iterator<char>());
    if (In.bad())
      return Error::failure("cannot read '" + Path + "'");
    return F;
  }

  const uint8_t *data() const {
    return Mapped ? static_cast<const uint8_t *>(Mapped) : Owned.data();
  }
  size_t size() const { return Mapped ? MappedSize : Owned.size(); }
  bool isMapped() const { return Mapped != nullptr; }

private:
  void reset() {
#if CJPACK_HAVE_MMAP
    if (Mapped)
      ::munmap(Mapped, MappedSize);
#endif
    Mapped = nullptr;
    MappedSize = 0;
    Owned.clear();
  }

  void *Mapped = nullptr;
  size_t MappedSize = 0;
  std::vector<uint8_t> Owned;
};

} // namespace cjpack

#endif // CJPACK_SUPPORT_INPUTFILE_H
