//===- ThreadPool.h - work-stealing thread pool ----------------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool for the sharded pack/unpack
/// pipeline. Each worker owns a deque; submissions are distributed
/// round-robin and idle workers steal from the opposite end of their
/// peers' deques, so a handful of coarse shard tasks balances even when
/// shard costs are skewed.
///
/// submit() returns a std::future, so results and exceptions propagate
/// to the caller; the destructor drains every queued task before
/// joining (shutdown never drops submitted work). The pool itself is
/// scheduling-dependent, which is why the pack pipeline assigns work to
/// shards by stable class order and only uses the pool to *execute*
/// shards — archive bytes never depend on thread timing.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_SUPPORT_THREADPOOL_H
#define CJPACK_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace cjpack {

class ThreadPool {
public:
  /// Spawns \p ThreadCount workers; 0 means one per hardware thread.
  explicit ThreadPool(unsigned ThreadCount = 0) {
    if (ThreadCount == 0)
      ThreadCount = defaultThreadCount();
    Workers.reserve(ThreadCount);
    for (unsigned I = 0; I < ThreadCount; ++I)
      Workers.push_back(std::make_unique<Worker>());
    Threads.reserve(ThreadCount);
    for (unsigned I = 0; I < ThreadCount; ++I)
      Threads.emplace_back([this, I] { workerLoop(I); });
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Runs every task already submitted, then joins the workers.
  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> Lock(SleepMutex);
      Stopping = true;
    }
    SleepCv.notify_all();
    for (std::thread &T : Threads)
      T.join();
  }

  unsigned size() const { return static_cast<unsigned>(Threads.size()); }

  /// One worker per hardware thread (at least one).
  static unsigned defaultThreadCount() {
    unsigned N = std::thread::hardware_concurrency();
    return N == 0 ? 1 : N;
  }

  /// Enqueues \p F for execution. The returned future delivers F's
  /// result, or rethrows whatever F threw.
  template <typename Fn>
  std::future<std::invoke_result_t<Fn>> submit(Fn &&F) {
    using R = std::invoke_result_t<Fn>;
    auto Task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(F));
    std::future<R> Result = Task->get_future();
    Worker &W = *Workers[NextQueue++ % Workers.size()];
    // Count the task before publishing it: a spinning worker can pop
    // and run it the moment it lands in the queue, and its decrement
    // must never observe QueuedTasks == 0 (a size_t underflow would
    // busy-wake sleepers and stall the destructor's drain-and-join).
    {
      std::lock_guard<std::mutex> Lock(SleepMutex);
      ++QueuedTasks;
    }
    {
      std::lock_guard<std::mutex> Lock(W.Mutex);
      W.Queue.emplace_back([Task] { (*Task)(); });
    }
    SleepCv.notify_one();
    return Result;
  }

private:
  struct Worker {
    std::mutex Mutex;
    std::deque<std::function<void()>> Queue;
  };

  /// Pops from the front of worker \p I's own queue.
  bool popLocal(unsigned I, std::function<void()> &Out) {
    Worker &W = *Workers[I];
    std::lock_guard<std::mutex> Lock(W.Mutex);
    if (W.Queue.empty())
      return false;
    Out = std::move(W.Queue.front());
    W.Queue.pop_front();
    return true;
  }

  /// Steals from the back of some other worker's queue.
  bool steal(unsigned Self, std::function<void()> &Out) {
    for (unsigned K = 1; K < Workers.size(); ++K) {
      Worker &W = *Workers[(Self + K) % Workers.size()];
      std::lock_guard<std::mutex> Lock(W.Mutex);
      if (W.Queue.empty())
        continue;
      Out = std::move(W.Queue.back());
      W.Queue.pop_back();
      return true;
    }
    return false;
  }

  void workerLoop(unsigned I) {
    std::function<void()> Task;
    while (true) {
      if (popLocal(I, Task) || steal(I, Task)) {
        {
          std::lock_guard<std::mutex> Lock(SleepMutex);
          --QueuedTasks;
        }
        Task();
        Task = nullptr;
        continue;
      }
      std::unique_lock<std::mutex> Lock(SleepMutex);
      SleepCv.wait(Lock, [this] { return Stopping || QueuedTasks > 0; });
      if (QueuedTasks == 0 && Stopping)
        return;
    }
  }

  std::vector<std::unique_ptr<Worker>> Workers;
  std::vector<std::thread> Threads;
  std::atomic<uint64_t> NextQueue{0};
  std::mutex SleepMutex;
  std::condition_variable SleepCv;
  size_t QueuedTasks = 0; ///< guarded by SleepMutex
  bool Stopping = false;  ///< guarded by SleepMutex
};

} // namespace cjpack

#endif // CJPACK_SUPPORT_THREADPOOL_H
