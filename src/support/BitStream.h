//===- BitStream.h - MSB-first bit I/O -------------------------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MSB-first bit writer/reader used by the arithmetic coder (§5's
/// MTF-vs-arithmetic ablation).
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_SUPPORT_BITSTREAM_H
#define CJPACK_SUPPORT_BITSTREAM_H

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace cjpack {

/// Accumulates bits MSB-first into a byte vector.
class BitWriter {
public:
  void writeBit(bool Bit) {
    Acc = static_cast<uint8_t>(Acc << 1 | (Bit ? 1 : 0));
    if (++Filled == 8) {
      Bytes.push_back(Acc);
      Acc = 0;
      Filled = 0;
    }
  }

  /// Pads the final partial byte with zero bits and returns the buffer.
  std::vector<uint8_t> finish() {
    while (Filled != 0)
      writeBit(false);
    return std::move(Bytes);
  }

  size_t bitCount() const { return Bytes.size() * 8 + Filled; }

private:
  std::vector<uint8_t> Bytes;
  uint8_t Acc = 0;
  unsigned Filled = 0;
};

/// Reads bits MSB-first; reads past the end return zero bits (matching
/// the arithmetic decoder's convention).
class BitReader {
public:
  explicit BitReader(std::span<const uint8_t> Bytes) : Bytes(Bytes) {}

  bool readBit() {
    if (At >= Bytes.size() * 8)
      return false;
    bool Bit = (Bytes[At / 8] >> (7 - At % 8)) & 1;
    ++At;
    return Bit;
  }

private:
  std::span<const uint8_t> Bytes;
  size_t At = 0;
};

} // namespace cjpack

#endif // CJPACK_SUPPORT_BITSTREAM_H
