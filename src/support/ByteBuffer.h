//===- ByteBuffer.h - Big-endian byte readers and writers ------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ByteWriter appends big-endian integers and raw bytes to a growable
/// buffer; ByteReader consumes them from a span. Java classfiles are
/// big-endian throughout, so these are the primitives under the classfile
/// parser/writer and the packed wire format.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_SUPPORT_BYTEBUFFER_H
#define CJPACK_SUPPORT_BYTEBUFFER_H

#include "support/Error.h"
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace cjpack {

/// Growable big-endian byte sink.
class ByteWriter {
public:
  void writeU1(uint8_t V) { Bytes.push_back(V); }

  void writeU2(uint16_t V) {
    Bytes.push_back(static_cast<uint8_t>(V >> 8));
    Bytes.push_back(static_cast<uint8_t>(V));
  }

  void writeU4(uint32_t V) {
    writeU2(static_cast<uint16_t>(V >> 16));
    writeU2(static_cast<uint16_t>(V));
  }

  void writeU8(uint64_t V) {
    writeU4(static_cast<uint32_t>(V >> 32));
    writeU4(static_cast<uint32_t>(V));
  }

  void writeBytes(const uint8_t *Data, size_t Len) {
    Bytes.insert(Bytes.end(), Data, Data + Len);
  }

  void writeBytes(const std::vector<uint8_t> &Data) {
    Bytes.insert(Bytes.end(), Data.begin(), Data.end());
  }

  void writeBytes(std::span<const uint8_t> Data) {
    Bytes.insert(Bytes.end(), Data.begin(), Data.end());
  }

  void writeString(std::string_view S) {
    writeBytes(reinterpret_cast<const uint8_t *>(S.data()), S.size());
  }

  /// Patches a previously written big-endian u2 at absolute offset \p At.
  void patchU2(size_t At, uint16_t V) {
    assert(At + 2 <= Bytes.size() && "patch out of range");
    Bytes[At] = static_cast<uint8_t>(V >> 8);
    Bytes[At + 1] = static_cast<uint8_t>(V);
  }

  /// Patches a previously written big-endian u4 at absolute offset \p At.
  void patchU4(size_t At, uint32_t V) {
    assert(At + 4 <= Bytes.size() && "patch out of range");
    Bytes[At] = static_cast<uint8_t>(V >> 24);
    Bytes[At + 1] = static_cast<uint8_t>(V >> 16);
    Bytes[At + 2] = static_cast<uint8_t>(V >> 8);
    Bytes[At + 3] = static_cast<uint8_t>(V);
  }

  size_t size() const { return Bytes.size(); }
  const std::vector<uint8_t> &data() const { return Bytes; }
  std::vector<uint8_t> take() { return std::move(Bytes); }

private:
  std::vector<uint8_t> Bytes;
};

/// Bounds-checked big-endian byte source over non-owned memory.
///
/// All read methods report overruns via hasError() rather than asserting so
/// that malformed input files are a recoverable error, not a crash.
class ByteReader {
public:
  ByteReader(const uint8_t *Data, size_t Len) : Data(Data), Len(Len) {}
  explicit ByteReader(const std::vector<uint8_t> &Buf)
      : Data(Buf.data()), Len(Buf.size()) {}
  explicit ByteReader(std::span<const uint8_t> Buf)
      : Data(Buf.data()), Len(Buf.size()) {}

  uint8_t readU1() {
    if (!require(1))
      return 0;
    return Data[Pos++];
  }

  uint16_t readU2() {
    if (!require(2))
      return 0;
    uint16_t V = static_cast<uint16_t>(Data[Pos] << 8 | Data[Pos + 1]);
    Pos += 2;
    return V;
  }

  uint32_t readU4() {
    if (!require(4))
      return 0;
    uint32_t V = static_cast<uint32_t>(Data[Pos]) << 24 |
                 static_cast<uint32_t>(Data[Pos + 1]) << 16 |
                 static_cast<uint32_t>(Data[Pos + 2]) << 8 |
                 static_cast<uint32_t>(Data[Pos + 3]);
    Pos += 4;
    return V;
  }

  uint64_t readU8() {
    uint64_t Hi = readU4();
    return Hi << 32 | readU4();
  }

  /// Reads \p N raw bytes; returns an empty vector (and sets the error
  /// flag) on overrun.
  std::vector<uint8_t> readBytes(size_t N) {
    if (!require(N))
      return {};
    std::vector<uint8_t> Out(Data + Pos, Data + Pos + N);
    Pos += N;
    return Out;
  }

  /// Reads \p N raw bytes as a borrowed view of the underlying buffer
  /// (no copy); empty + error flag on overrun. The view is valid as
  /// long as the buffer this reader was constructed over.
  std::span<const uint8_t> readSpan(size_t N) {
    if (!require(N))
      return {};
    std::span<const uint8_t> Out(Data + Pos, N);
    Pos += N;
    return Out;
  }

  /// Reads \p N bytes as a borrowed string view (no copy); same
  /// lifetime rule as readSpan.
  std::string_view readStringView(size_t N) {
    if (!require(N))
      return {};
    std::string_view Out(reinterpret_cast<const char *>(Data + Pos), N);
    Pos += N;
    return Out;
  }

  /// Reads \p N bytes as a string.
  std::string readString(size_t N) {
    if (!require(N))
      return {};
    std::string Out(reinterpret_cast<const char *>(Data + Pos), N);
    Pos += N;
    return Out;
  }

  bool skip(size_t N) {
    if (!require(N))
      return false;
    Pos += N;
    return true;
  }

  size_t position() const { return Pos; }
  size_t remaining() const { return Len - Pos; }
  bool atEnd() const { return Pos == Len; }
  bool hasError() const { return Overrun || Malformed; }

  /// Marks the stream corrupt (e.g. a non-canonical varint). Reads keep
  /// returning zeros; hasError()/takeError() report the failure.
  void flagMalformed() { Malformed = true; }

  /// Classification of the failure: Truncated for overruns, Corrupt for
  /// malformed encodings. Only meaningful when hasError().
  ErrorCode errorCode() const {
    return Malformed ? ErrorCode::Corrupt : ErrorCode::Truncated;
  }

  /// Produces a typed Error, with the byte offset of the failure, if any
  /// read overran the buffer or hit a malformed encoding.
  Error takeError(const char *Context) const {
    if (Malformed)
      return makeError(ErrorCode::Corrupt,
                       std::string(Context) + ": malformed input at byte " +
                           std::to_string(Pos));
    if (!Overrun)
      return Error::success();
    return makeError(ErrorCode::Truncated,
                     std::string(Context) + ": truncated input");
  }

private:
  bool require(size_t N) {
    if (Len - Pos < N) {
      Overrun = true;
      Pos = Len;
      return false;
    }
    return true;
  }

  const uint8_t *Data;
  size_t Len;
  size_t Pos = 0;
  bool Overrun = false;
  bool Malformed = false;
};

} // namespace cjpack

#endif // CJPACK_SUPPORT_BYTEBUFFER_H
