//===- Arena.h - bump allocator for classfile payloads ---------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A chunked bump allocator backing the owning mode of the zero-copy
/// classfile model. The parse→model→encode path stores strings as
/// std::string_view and byte payloads as std::span<const uint8_t>; when
/// a classfile borrows from a caller-owned buffer (an mmapped jar, an
/// archive slice) nothing is allocated here, and when it must own its
/// bytes (zip-inflated members, corpus-generated classes, decoded
/// archives) they land in the arena exactly once. Chunks are never
/// reallocated or freed before the arena dies, so every view handed out
/// stays valid for the arena's lifetime — the property the whole
/// borrowed model rests on. reset() recycles the first chunk for
/// serve-loop reuse.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_SUPPORT_ARENA_H
#define CJPACK_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

namespace cjpack {

/// A bump allocator with stable addresses: allocations never move, and
/// nothing is freed until destruction (or reset()). Not thread-safe —
/// an arena belongs to one classfile (or one decode pipeline) at a
/// time, mirroring the single-writer rule for the model it backs.
class Arena {
public:
  /// Default chunk size: big enough that a typical classfile's strings
  /// and attribute payloads fit in one chunk, small enough that a tiny
  /// class does not pin megabytes.
  static constexpr size_t DefaultChunkBytes = 16 * 1024;

  Arena() = default;
  explicit Arena(size_t ChunkBytes) : ChunkBytes(ChunkBytes) {}

  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;
  Arena(Arena &&) = default;
  Arena &operator=(Arena &&) = default;

  /// Allocates \p N bytes (unaligned — byte payloads only). Returns a
  /// stable pointer valid until the arena is destroyed or reset.
  uint8_t *allocate(size_t N) {
    ++Allocations;
    Used += N;
    if (N > Remaining) {
      // Oversized requests get a dedicated chunk so the current chunk's
      // tail is not wasted on them.
      if (N >= ChunkBytes) {
        Chunks.push_back(std::make_unique<uint8_t[]>(N));
        Reserved += N;
        return Chunks.back().get();
      }
      Chunks.push_back(std::make_unique<uint8_t[]>(ChunkBytes));
      Reserved += ChunkBytes;
      Cursor = Chunks.back().get();
      Remaining = ChunkBytes;
    }
    uint8_t *P = Cursor;
    Cursor += N;
    Remaining -= N;
    return P;
  }

  /// Copies \p Bytes into the arena; returns the stable copy.
  std::span<const uint8_t> copy(std::span<const uint8_t> Bytes) {
    if (Bytes.empty())
      return {};
    uint8_t *P = allocate(Bytes.size());
    std::memcpy(P, Bytes.data(), Bytes.size());
    return {P, Bytes.size()};
  }

  std::span<const uint8_t> copy(const std::vector<uint8_t> &Bytes) {
    return copy(std::span<const uint8_t>(Bytes.data(), Bytes.size()));
  }

  /// Copies \p Text into the arena; returns a stable view of the copy.
  std::string_view internString(std::string_view Text) {
    if (Text.empty())
      return {};
    uint8_t *P = allocate(Text.size());
    std::memcpy(P, Text.data(), Text.size());
    return {reinterpret_cast<const char *>(P), Text.size()};
  }

  /// Takes ownership of \p Buf without copying it; its bytes stay valid
  /// (at their current addresses) for the arena's lifetime. This is how
  /// an inflated zip member or a decoded buffer becomes arena-owned for
  /// free: the producer's vector is donated instead of re-copied.
  std::span<const uint8_t> adopt(std::vector<uint8_t> Buf) {
    Kept.push_back(std::move(Buf));
    return {Kept.back().data(), Kept.back().size()};
  }

  /// Bytes handed out so far (excludes chunk slack).
  size_t bytesUsed() const { return Used; }
  /// Number of allocate() calls served (the malloc-count stand-in for
  /// the allocation-reduction benchmarks).
  size_t allocationCount() const { return Allocations; }
  /// Total bytes of chunk capacity reserved from the system.
  size_t bytesReserved() const { return Reserved; }

  /// Drops every chunk and rewinds, invalidating all views previously
  /// handed out. For serve-loop reuse where one arena backs many
  /// short-lived parses.
  void reset() {
    Chunks.clear();
    Kept.clear();
    Cursor = nullptr;
    Remaining = 0;
    Reserved = 0;
    Used = 0;
    Allocations = 0;
  }

private:
  size_t ChunkBytes = DefaultChunkBytes;
  std::vector<std::unique_ptr<uint8_t[]>> Chunks;
  std::vector<std::vector<uint8_t>> Kept;
  uint8_t *Cursor = nullptr;
  size_t Remaining = 0;
  size_t Reserved = 0;
  size_t Used = 0;
  size_t Allocations = 0;
};

} // namespace cjpack

#endif // CJPACK_SUPPORT_ARENA_H
