//===- Sha1.h - SHA-1 digest -----------------------------------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A standalone SHA-1 implementation (FIPS 180-1), the digest 1990s jar
/// manifests used for member signatures. Used by the §12 signing
/// workflow: sign the decompressed classfiles, ship the manifest with
/// the packed archive, and rely on deterministic decompression to make
/// the digests reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_SUPPORT_SHA1_H
#define CJPACK_SUPPORT_SHA1_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace cjpack {

/// Incremental SHA-1.
class Sha1 {
public:
  Sha1() { reset(); }

  void reset();
  void update(const uint8_t *Data, size_t Len);
  void update(const std::vector<uint8_t> &Data) {
    update(Data.data(), Data.size());
  }

  /// Finalizes and returns the 20-byte digest. The object must be
  /// reset() before reuse.
  std::array<uint8_t, 20> finish();

private:
  void processBlock(const uint8_t *Block);

  uint32_t H[5];
  uint8_t Buffer[64];
  size_t BufferLen = 0;
  uint64_t TotalBits = 0;
};

/// One-shot digest of \p Data.
std::array<uint8_t, 20> sha1Of(const std::vector<uint8_t> &Data);

/// Digest as lowercase hex.
std::string sha1Hex(const std::vector<uint8_t> &Data);

} // namespace cjpack

#endif // CJPACK_SUPPORT_SHA1_H
