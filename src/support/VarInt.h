//===- VarInt.h - Integer codecs from Pugh §6 ------------------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three integer encodings of §6 of the paper:
///
///  * unsigned varint: low seven bits per byte, high bit set when more
///    bytes follow — good for unbounded skewed-small distributions;
///  * zigzag signed mapping: x >= 0 ? 2x : -2x-1, moving the sign into
///    the least significant bit so small negatives stay small;
///  * bounded codec: when both sides know the value lies in 0..n-1
///    (n <= 2^16), reserve the top r = floor((n-2)/255) patterns of the
///    first byte to flag a two-byte encoding.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_SUPPORT_VARINT_H
#define CJPACK_SUPPORT_VARINT_H

#include "support/ByteBuffer.h"
#include <cstdint>

namespace cjpack {

/// Writes \p V as a 7-bits-per-byte varint, least significant group first.
inline void writeVarUInt(ByteWriter &W, uint64_t V) {
  while (V >= 0x80) {
    W.writeU1(static_cast<uint8_t>(V) | 0x80);
    V >>= 7;
  }
  W.writeU1(static_cast<uint8_t>(V));
}

/// Longest canonical varint: ten groups of seven bits cover 64 bits.
inline constexpr unsigned MaxVarUIntBytes = 10;

/// Reads a varint written by writeVarUInt.
///
/// Hostile-input contract: only canonical encodings decode. A varint
/// longer than ten bytes, one whose tenth byte carries more than the
/// top bit of a uint64, or one with a redundant trailing zero group
/// (e.g. 0x80 0x00 for zero) flags the reader malformed, so a fuzzer
/// cannot loop the decoder on padded encodings or smuggle the same
/// value under two byte patterns. Truncation is reported through the
/// reader's overrun flag as usual; the partial value is returned.
inline uint64_t readVarUInt(ByteReader &R) {
  uint64_t V = 0;
  for (unsigned Shift = 0; Shift < 7 * MaxVarUIntBytes; Shift += 7) {
    uint8_t B = R.readU1();
    if (R.hasError())
      return V;
    if (Shift == 63 && (B & 0xFE)) {
      // Tenth byte: a continuation bit or any payload bit above the
      // 64th overflows uint64.
      R.flagMalformed();
      return V;
    }
    V |= static_cast<uint64_t>(B & 0x7F) << Shift;
    if (!(B & 0x80)) {
      if (Shift > 0 && B == 0)
        R.flagMalformed(); // non-canonical: redundant trailing group
      return V;
    }
  }
  return V; // unreachable: the tenth byte always returns above
}

/// Maps a signed value onto the unsigned line: {-3..3} -> {5,3,1,0,2,4,6}.
inline uint64_t zigzagEncode(int64_t V) {
  return V >= 0 ? static_cast<uint64_t>(V) * 2
                : static_cast<uint64_t>(-(V + 1)) * 2 + 1;
}

/// Inverse of zigzagEncode.
inline int64_t zigzagDecode(uint64_t V) {
  return (V & 1) ? -static_cast<int64_t>(V / 2) - 1
                 : static_cast<int64_t>(V / 2);
}

/// Writes a signed varint via the zigzag mapping.
inline void writeVarInt(ByteWriter &W, int64_t V) {
  writeVarUInt(W, zigzagEncode(V));
}

/// Reads a signed varint written by writeVarInt.
inline int64_t readVarInt(ByteReader &R) { return zigzagDecode(readVarUInt(R)); }

/// Number of two-byte escape patterns for the bounded codec with range
/// 0..n-1. Zero when n <= 256 (every value fits in one byte).
inline uint32_t boundedEscapeCount(uint32_t N) {
  if (N <= 256)
    return 0;
  return (N - 2) / 255;
}

/// Writes \p X, known by both sides to lie in 0..N-1 with N <= 2^16, in
/// one byte where possible and two bytes otherwise (§6).
inline void writeBounded(ByteWriter &W, uint32_t X, uint32_t N) {
  assert(N >= 1 && N <= 65536 && "bounded codec requires 1 <= N <= 2^16");
  assert(X < N && "value out of declared range");
  uint32_t R = boundedEscapeCount(N);
  uint32_t Base = 256 - R;
  if (X < Base) {
    W.writeU1(static_cast<uint8_t>(X));
    return;
  }
  uint32_t Rem = X - Base;
  W.writeU1(static_cast<uint8_t>(Rem % R + Base));
  W.writeU1(static_cast<uint8_t>(Rem / R));
}

/// Reads a value written by writeBounded with the same \p N. A decoded
/// value outside 0..N-1 (possible only for corrupt input) flags the
/// reader malformed and returns 0, keeping the caller's declared range
/// trustworthy as an index bound.
inline uint32_t readBounded(ByteReader &R0, uint32_t N) {
  assert(N >= 1 && N <= 65536 && "bounded codec requires 1 <= N <= 2^16");
  uint32_t R = boundedEscapeCount(N);
  uint32_t Base = 256 - R;
  uint32_t B = R0.readU1();
  if (B < Base) {
    if (B >= N) {
      R0.flagMalformed();
      return 0;
    }
    return B;
  }
  uint32_t B2 = R0.readU1();
  uint32_t V = Base + (B - Base) + B2 * R;
  if (V >= N) {
    R0.flagMalformed();
    return 0;
  }
  return V;
}

} // namespace cjpack

#endif // CJPACK_SUPPORT_VARINT_H
