//===- StringHash.h - heterogeneous string-keyed lookup --------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Transparent hash/equality for std::string-keyed unordered containers,
/// so a std::string_view (e.g. borrowed classfile text) probes without
/// materializing a temporary std::string. Use as
///   std::unordered_map<std::string, V, StringHash, std::equal_to<>>
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_SUPPORT_STRINGHASH_H
#define CJPACK_SUPPORT_STRINGHASH_H

#include <functional>
#include <string_view>

namespace cjpack {

struct StringHash {
  using is_transparent = void;
  size_t operator()(std::string_view S) const noexcept {
    return std::hash<std::string_view>{}(S);
  }
};

} // namespace cjpack

#endif // CJPACK_SUPPORT_STRINGHASH_H
