//===- Error.h - Lightweight error handling for cjpack ---------*- C++ -*-===//
//
// Part of cjpack, a reproduction of "Compressing Java Class Files"
// (Pugh, PLDI 1999). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight Error / Expected<T> pair in the spirit of LLVM's error
/// handling, without exceptions or RTTI. Errors carry a message string;
/// Expected<T> carries either a value or an error message.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_SUPPORT_ERROR_H
#define CJPACK_SUPPORT_ERROR_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace cjpack {

/// A recoverable error: either success (empty) or a failure message.
///
/// Unlike LLVM's Error this is not checked-on-destruction; it is a plain
/// value type, cheap to construct and move.
class Error {
public:
  /// Constructs a success value.
  Error() = default;

  /// Constructs a failure carrying \p Msg.
  static Error failure(std::string Msg) {
    Error E;
    E.Msg = std::move(Msg);
    return E;
  }

  /// Constructs a success value (symmetry with LLVM's Error::success()).
  static Error success() { return Error(); }

  /// True if this represents a failure.
  explicit operator bool() const { return Msg.has_value(); }

  /// Returns the failure message; only valid on failures.
  const std::string &message() const {
    assert(Msg && "message() on a success Error");
    return *Msg;
  }

private:
  std::optional<std::string> Msg;
};

/// Either a T or an error message, for fallible functions returning values.
template <typename T> class Expected {
public:
  /// Constructs a success value.
  Expected(T Value) : Value(std::move(Value)) {}

  /// Constructs a failure from an Error (which must be a failure).
  Expected(Error E) : Err(std::move(E)) {
    assert(Err && "Expected constructed from a success Error");
  }

  /// True on success.
  explicit operator bool() const { return Value.has_value(); }

  /// Accessors for the success value; only valid on success.
  T &operator*() {
    assert(Value && "dereferencing failed Expected");
    return *Value;
  }
  const T &operator*() const {
    assert(Value && "dereferencing failed Expected");
    return *Value;
  }
  T *operator->() {
    assert(Value && "dereferencing failed Expected");
    return &*Value;
  }
  const T *operator->() const {
    assert(Value && "dereferencing failed Expected");
    return &*Value;
  }

  /// Moves the error out; returns success() if this holds a value.
  Error takeError() {
    if (Value)
      return Error::success();
    return std::move(Err);
  }

  /// Returns the failure message; only valid on failures.
  const std::string &message() const { return Err.message(); }

private:
  std::optional<T> Value;
  Error Err;
};

/// Builds a failure Error from a message.
inline Error makeError(std::string Msg) {
  return Error::failure(std::move(Msg));
}

} // namespace cjpack

#endif // CJPACK_SUPPORT_ERROR_H
