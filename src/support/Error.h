//===- Error.h - Lightweight error handling for cjpack ---------*- C++ -*-===//
//
// Part of cjpack, a reproduction of "Compressing Java Class Files"
// (Pugh, PLDI 1999). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight Error / Expected<T> pair in the spirit of LLVM's error
/// handling, without exceptions or RTTI. Errors carry a message string
/// plus a coarse ErrorCode so decoders can classify failures on hostile
/// input; Expected<T> carries either a value or an error.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_SUPPORT_ERROR_H
#define CJPACK_SUPPORT_ERROR_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace cjpack {

/// Failure taxonomy of the decode path. Every error produced while
/// decoding wire input (packed archives, classfiles, zips, compressed
/// streams) is one of the typed codes after Other; Other covers
/// non-decode failures (encoder misuse, unsupported options).
enum class ErrorCode : uint8_t {
  Other,           ///< not a decode-taxonomy failure
  Truncated,       ///< input ended before a promised structure
  Corrupt,         ///< structurally invalid wire data
  LimitExceeded,   ///< input demanded more than a configured resource cap
  VersionMismatch, ///< well-formed header, but a format version this
                   ///< reader does not handle (callers can route the
                   ///< archive to the right reader or report precisely)
};

/// Printable name of \p C.
inline const char *errorCodeName(ErrorCode C) {
  switch (C) {
  case ErrorCode::Other: return "Other";
  case ErrorCode::Truncated: return "Truncated";
  case ErrorCode::Corrupt: return "Corrupt";
  case ErrorCode::LimitExceeded: return "LimitExceeded";
  case ErrorCode::VersionMismatch: return "VersionMismatch";
  }
  return "?";
}

/// A recoverable error: either success (empty) or a failure message.
///
/// Unlike LLVM's Error this is not checked-on-destruction; it is a plain
/// value type, cheap to construct and move.
class Error {
public:
  /// Constructs a success value.
  Error() = default;

  /// Constructs a failure carrying \p Msg.
  static Error failure(std::string Msg) {
    return failure(ErrorCode::Other, std::move(Msg));
  }

  /// Constructs a failure classified as \p Code.
  static Error failure(ErrorCode Code, std::string Msg) {
    Error E;
    E.Msg = std::move(Msg);
    E.Code = Code;
    return E;
  }

  /// Constructs a success value (symmetry with LLVM's Error::success()).
  static Error success() { return Error(); }

  /// True if this represents a failure.
  explicit operator bool() const { return Msg.has_value(); }

  /// Returns the failure message; only valid on failures.
  const std::string &message() const {
    assert(Msg && "message() on a success Error");
    return *Msg;
  }

  /// Returns the failure classification; only valid on failures.
  ErrorCode code() const {
    assert(Msg && "code() on a success Error");
    return Code;
  }

private:
  std::optional<std::string> Msg;
  ErrorCode Code = ErrorCode::Other;
};

/// Either a T or an error message, for fallible functions returning values.
template <typename T> class Expected {
public:
  /// Constructs a success value.
  Expected(T Value) : Value(std::move(Value)) {}

  /// Constructs a failure from an Error (which must be a failure).
  Expected(Error E) : Err(std::move(E)) {
    assert(Err && "Expected constructed from a success Error");
  }

  /// True on success.
  explicit operator bool() const { return Value.has_value(); }

  /// Accessors for the success value; only valid on success.
  T &operator*() {
    assert(Value && "dereferencing failed Expected");
    return *Value;
  }
  const T &operator*() const {
    assert(Value && "dereferencing failed Expected");
    return *Value;
  }
  T *operator->() {
    assert(Value && "dereferencing failed Expected");
    return &*Value;
  }
  const T *operator->() const {
    assert(Value && "dereferencing failed Expected");
    return &*Value;
  }

  /// Moves the error out; returns success() if this holds a value.
  Error takeError() {
    if (Value)
      return Error::success();
    return std::move(Err);
  }

  /// Returns the failure message; only valid on failures.
  const std::string &message() const { return Err.message(); }

  /// Returns the failure classification; only valid on failures.
  ErrorCode code() const { return Err.code(); }

private:
  std::optional<T> Value;
  Error Err;
};

/// Builds a failure Error from a message.
inline Error makeError(std::string Msg) {
  return Error::failure(std::move(Msg));
}

/// Builds a classified failure Error.
inline Error makeError(ErrorCode Code, std::string Msg) {
  return Error::failure(Code, std::move(Msg));
}

} // namespace cjpack

#endif // CJPACK_SUPPORT_ERROR_H
