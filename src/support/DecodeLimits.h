//===- DecodeLimits.h - resource caps for hostile input --------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Resource budgets enforced while decoding wire input. Every decoder
/// layer — packed archives, classfiles, zip central directories,
/// compressed streams — consumes lengths and counts it read from the
/// wire; DecodeLimits bounds what those values may demand, so a hostile
/// archive is rejected with ErrorCode::LimitExceeded instead of driving
/// an allocation, a decompression bomb, or an unbounded loop.
///
/// The defaults are generous (far above anything a legitimate archive
/// produces) so existing callers never notice them; servers decoding
/// untrusted uploads can tighten them per request. DecodeBudget holds
/// the mutable spend counters; the inflate budget is shared across the
/// shard decoder threads, hence atomic.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_SUPPORT_DECODELIMITS_H
#define CJPACK_SUPPORT_DECODELIMITS_H

#include "support/Error.h"
#include <atomic>
#include <cstdint>
#include <string>

namespace cjpack {

/// Configurable caps on what decoded wire data may demand. All fields
/// are upper bounds; a decoder hitting one fails with LimitExceeded.
struct DecodeLimits {
  /// Classes per packed archive.
  uint64_t MaxClasses = 1u << 20;
  /// Interned objects per model pool (packages, class refs, method
  /// refs, string constants, ...) while decoding one shard.
  uint64_t MaxPoolEntries = 1u << 22;
  /// Instructions per decoded method body (the JVM caps a code array at
  /// 65535 bytes, so this is already beyond any valid method).
  uint64_t MaxMethodInsns = 1u << 16;
  /// Bytes of a single decoded string (class name, member name, string
  /// constant).
  uint64_t MaxStringBytes = 1u << 20;
  /// Decompressed bytes of a single wire stream.
  uint64_t MaxStreamBytes = 1u << 30;
  /// Total inflate output across the whole decode — the decompression
  /// bomb bound, shared by every stream, shard, and zip member.
  uint64_t MaxInflateBytes = 1ull << 32;
  /// Constant-pool entries per parsed classfile (the format caps the
  /// count field at 65535 anyway).
  uint64_t MaxPoolCount = 1u << 16;
  /// Members of a zip central directory.
  uint64_t MaxZipEntries = 1u << 16;
};

/// Mutable spend state for one decode operation. Shards decode
/// concurrently against the same budget, so the counter is atomic.
class DecodeBudget {
public:
  DecodeBudget() = default;
  explicit DecodeBudget(const DecodeLimits &L) : Limits(L) {}

  const DecodeLimits &limits() const { return Limits; }

  /// Charges \p Bytes of inflate output against the shared budget.
  /// Returns a LimitExceeded error when the total would cross the cap.
  Error chargeInflate(uint64_t Bytes, const char *Context) {
    uint64_t Prior = InflateSpent.fetch_add(Bytes, std::memory_order_relaxed);
    if (Prior + Bytes > Limits.MaxInflateBytes)
      return makeError(ErrorCode::LimitExceeded,
                       std::string(Context) +
                           ": inflate output budget exceeded");
    return Error::success();
  }

  uint64_t inflateSpent() const {
    return InflateSpent.load(std::memory_order_relaxed);
  }

private:
  DecodeLimits Limits;
  std::atomic<uint64_t> InflateSpent{0};
};

} // namespace cjpack

#endif // CJPACK_SUPPORT_DECODELIMITS_H
