//===- PackTrace.h - pack/unpack telemetry ---------------------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instrumentation shared by the pack pipeline, the coder layer, and the
/// reporting tools: per-phase wall times (parse, model, emit, deflate),
/// per-shard timings, and per-pool reference/definition tallies from the
/// coder. None of it feeds back into the wire format — recording is
/// strictly observational, so archives are byte-identical with tracing
/// on or off.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_SUPPORT_PACKTRACE_H
#define CJPACK_SUPPORT_PACKTRACE_H

#include <chrono>
#include <cstdint>
#include <map>
#include <vector>

namespace cjpack {

/// Wall-clock seconds spent in each pipeline phase of one pack run.
/// Parse covers classfile parsing + prepareForPacking (only populated by
/// packClassBytes); Model covers the counting passes, dictionary build,
/// and id remapping; Emit covers the emitting passes; Deflate covers
/// stream serialization and compression.
struct PhaseTimes {
  double ParseSec = 0;
  double ModelSec = 0;
  double EmitSec = 0;
  double DeflateSec = 0;

  double totalSec() const { return ParseSec + ModelSec + EmitSec + DeflateSec; }
};

/// Per-shard timing of the two codec passes.
struct ShardTimes {
  size_t Shard = 0;   ///< shard index in archive order
  size_t Classes = 0; ///< classes encoded by this shard
  double ModelSec = 0;
  double EmitSec = 0;
};

/// Reference/definition tallies for one coder pool.
struct CoderPoolTally {
  uint64_t Refs = 0; ///< references coded (including first occurrences)
  uint64_t Defs = 0; ///< first occurrences (definition follows on the wire)
};

/// Per-pool tallies collected by the coder layer's counted entry points
/// (RefEncoder::encodeCounted / RefDecoder::decodeCounted). Keyed by the
/// raw pool id so support stays independent of the pack layer's
/// PoolKind enum.
class CoderTally {
public:
  void note(uint32_t Pool, bool Def) {
    CoderPoolTally &T = Pools[Pool];
    ++T.Refs;
    if (Def)
      ++T.Defs;
  }

  const std::map<uint32_t, CoderPoolTally> &pools() const { return Pools; }

  uint64_t totalRefs() const {
    uint64_t N = 0;
    for (const auto &[Pool, T] : Pools)
      N += T.Refs;
    return N;
  }

  uint64_t totalDefs() const {
    uint64_t N = 0;
    for (const auto &[Pool, T] : Pools)
      N += T.Defs;
    return N;
  }

  /// Merges \p Other into this tally (shard roll-up).
  void add(const CoderTally &Other) {
    for (const auto &[Pool, T] : Other.Pools) {
      Pools[Pool].Refs += T.Refs;
      Pools[Pool].Defs += T.Defs;
    }
  }

private:
  std::map<uint32_t, CoderPoolTally> Pools;
};

/// Everything one pack run records about itself.
struct PackTrace {
  PhaseTimes Phases;
  std::vector<ShardTimes> Shards;
  CoderTally Coder;
};

/// Minimal steady-clock stopwatch for phase attribution.
class Stopwatch {
public:
  Stopwatch() : Start(std::chrono::steady_clock::now()) {}

  /// Seconds since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         Start)
        .count();
  }

  void restart() { Start = std::chrono::steady_clock::now(); }

private:
  std::chrono::steady_clock::time_point Start;
};

} // namespace cjpack

#endif // CJPACK_SUPPORT_PACKTRACE_H
