//===- IndexedSkipList.cpp - order-statistic skiplist ---------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "mtf/IndexedSkipList.h"
#include <cassert>

using namespace cjpack;

IndexedSkipList::IndexedSkipList() : RngState(0x9E3779B97F4A7C15ull) {
  Head.Height = MaxLevel;
  Head.Links.resize(MaxLevel);
}

IndexedSkipList::~IndexedSkipList() { clear(); }

void IndexedSkipList::clear() {
  Node *N = Head.Links[0].Next;
  while (N) {
    Node *Next = N->Links[0].Next;
    delete N;
    N = Next;
  }
  for (auto &L : Head.Links)
    L = {};
  Size = 0;
}

uint8_t IndexedSkipList::randomHeight() {
  // xorshift64*; geometric heights with p = 1/2.
  RngState ^= RngState >> 12;
  RngState ^= RngState << 25;
  RngState ^= RngState >> 27;
  uint64_t R = RngState * 0x2545F4914F6CDD1Dull;
  uint8_t H = 1;
  while ((R & 1) && H < MaxLevel) {
    ++H;
    R >>= 1;
  }
  return H;
}

void IndexedSkipList::attachFront(Node *N) {
  assert(N->Height >= 1 && N->Links.size() == N->Height);
  for (int L = 0; L < N->Height; ++L) {
    N->Links[L] = Head.Links[L];
    Head.Links[L].Next = N;
    Head.Links[L].Width = 1;
  }
  // Links from the head that skip over the new front element lengthen
  // by one.
  for (int L = N->Height; L < MaxLevel; ++L)
    if (Head.Links[L].Next)
      ++Head.Links[L].Width;
  ++Size;
}

IndexedSkipList::Node *IndexedSkipList::insertFront(uint32_t Value) {
  Node *N = new Node;
  N->Value = Value;
  N->Height = randomHeight();
  N->Links.resize(N->Height);
  attachFront(N);
  return N;
}

uint32_t IndexedSkipList::valueAt(size_t Pos) const {
  assert(Pos < Size && "skiplist position out of range");
  // 1-based rank search: advance while the link does not overshoot.
  size_t Rank = Pos + 1;
  size_t At = 0;
  const Node *N = &Head;
  for (int L = MaxLevel - 1; L >= 0; --L) {
    while (N->Links[L].Next && At + N->Links[L].Width <= Rank) {
      At += N->Links[L].Width;
      N = N->Links[L].Next;
    }
    if (At == Rank)
      return N->Value;
  }
  assert(false && "rank search failed");
  return N->Value;
}

IndexedSkipList::Node *IndexedSkipList::detachAt(size_t Pos) {
  assert(Pos < Size && "skiplist position out of range");
  size_t Rank = Pos + 1;
  // Collect, per level, the last node strictly before Rank.
  Node *Preds[MaxLevel];
  size_t At = 0;
  Node *N = &Head;
  for (int L = MaxLevel - 1; L >= 0; --L) {
    while (N->Links[L].Next && At + N->Links[L].Width < Rank) {
      At += N->Links[L].Width;
      N = N->Links[L].Next;
    }
    Preds[L] = N;
  }
  Node *Target = Preds[0]->Links[0].Next;
  assert(Target && "detach target missing");
  for (int L = 0; L < MaxLevel; ++L) {
    if (L < Target->Height) {
      Preds[L]->Links[L].Width += Target->Links[L].Width - 1;
      Preds[L]->Links[L].Next = Target->Links[L].Next;
      if (!Preds[L]->Links[L].Next)
        Preds[L]->Links[L].Width = 0;
    } else if (Preds[L]->Links[L].Next) {
      --Preds[L]->Links[L].Width;
    }
  }
  --Size;
  return Target;
}

void IndexedSkipList::eraseAt(size_t Pos) { delete detachAt(Pos); }

IndexedSkipList::Node *IndexedSkipList::moveToFront(size_t Pos) {
  if (Pos == 0) {
    Node *Front = Head.Links[0].Next;
    assert(Front && "moveToFront on empty list");
    return Front;
  }
  Node *N = detachAt(Pos);
  attachFront(N);
  return N;
}

size_t IndexedSkipList::positionOf(const Node *N) const {
  // Walk to the end following each node's highest non-null link,
  // accumulating the distance; position = size - distance-to-end.
  size_t Dist = 0;
  const Node *Cur = N;
  while (true) {
    int L = Cur->Height - 1;
    while (L >= 0 && !Cur->Links[L].Next)
      --L;
    if (L < 0)
      break;
    Dist += Cur->Links[L].Width;
    Cur = Cur->Links[L].Next;
  }
  assert(Dist < Size || (Dist == Size && N != &Head));
  return Size - 1 - Dist;
}

// Position math: the last element has distance-to-end 0 and position
// Size-1, hence the Size - 1 - Dist above.
