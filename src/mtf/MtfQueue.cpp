//===- MtfQueue.cpp - move-to-front queue over a skiplist -----------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "mtf/MtfQueue.h"
#include <cassert>

using namespace cjpack;

std::optional<size_t> MtfQueue::use(uint32_t Value, bool InsertIfNew) {
  auto It = Index.find(Value);
  if (It == Index.end()) {
    if (InsertIfNew)
      Index.emplace(Value, List.insertFront(Value));
    return std::nullopt;
  }
  size_t Pos = List.positionOf(It->second);
  List.moveToFront(Pos);
  return Pos;
}

std::optional<size_t> MtfQueue::find(uint32_t Value) const {
  auto It = Index.find(Value);
  if (It == Index.end())
    return std::nullopt;
  return List.positionOf(It->second);
}

void MtfQueue::pushFront(uint32_t Value) {
  if (Index.count(Value))
    return;
  Index.emplace(Value, List.insertFront(Value));
}

uint32_t MtfQueue::useAt(size_t Pos) {
  // Out-of-range positions only arise from corrupt wire input; recover
  // safely (the caller's structural checks will reject the result).
  if (Pos >= List.size())
    return 0;
  IndexedSkipList::Node *N = List.moveToFront(Pos);
  return N->Value;
}
