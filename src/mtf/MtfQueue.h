//===- MtfQueue.h - move-to-front queue over a skiplist --------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The move-to-front queue of §5. The compressor side pairs the indexed
/// skiplist with a hashtable from element ids to skiplist nodes, so that
/// "have we seen this element, and where is it now?" is O(log n)
/// expected. The decompressor side only ever accesses by position.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_MTF_MTFQUEUE_H
#define CJPACK_MTF_MTFQUEUE_H

#include "mtf/IndexedSkipList.h"
#include <optional>
#include <unordered_map>

namespace cjpack {

/// Move-to-front queue of element ids.
class MtfQueue {
public:
  size_t size() const { return List.size(); }
  bool contains(uint32_t Value) const { return Index.count(Value) != 0; }

  /// Compressor: if \p Value is present, returns its current position
  /// and moves it to the front. If absent, returns nullopt and inserts
  /// it at the front when \p InsertIfNew (the transients variant keeps
  /// once-only objects out of the queue).
  std::optional<size_t> use(uint32_t Value, bool InsertIfNew = true);

  /// Compressor: position of \p Value without mutating, if present.
  std::optional<size_t> find(uint32_t Value) const;

  /// Inserts \p Value at the front (decoder's "new object" action; also
  /// used when a method reference must be seeded into several queues,
  /// §5.1.6). No-op if already present.
  void pushFront(uint32_t Value);

  /// Decompressor: returns the value at \p Pos and moves it to the
  /// front.
  uint32_t useAt(size_t Pos);

private:
  IndexedSkipList List;
  std::unordered_map<uint32_t, IndexedSkipList::Node *> Index;
};

} // namespace cjpack

#endif // CJPACK_MTF_MTFQUEUE_H
