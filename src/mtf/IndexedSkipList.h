//===- IndexedSkipList.h - order-statistic skiplist ------------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A skiplist [Pug90] modified so every link records the distance it
/// travels forward in the list, giving O(log n) expected access by
/// position and O(log k) expected move-to-front of the element at
/// position k — the structure §5 of the paper uses to implement its
/// move-to-front queues.
///
/// The list stores uint32_t element ids (reference coders map objects to
/// dense ids). Nodes are stable: moveToFront detaches and re-attaches
/// the same node, so external pointers into the list stay valid — the
/// compressor's value→node hashtable depends on this.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_MTF_INDEXEDSKIPLIST_H
#define CJPACK_MTF_INDEXEDSKIPLIST_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cjpack {

/// Skiplist with positional access; front of the list is position 0.
class IndexedSkipList {
public:
  static constexpr int MaxLevel = 32;

  struct Node {
    struct Link {
      Node *Next = nullptr;
      size_t Width = 0; ///< positions skipped by following this link
    };
    uint32_t Value = 0;
    uint8_t Height = 0;
    std::vector<Link> Links; ///< Height entries, level 0 first
  };

  IndexedSkipList();
  ~IndexedSkipList();
  IndexedSkipList(const IndexedSkipList &) = delete;
  IndexedSkipList &operator=(const IndexedSkipList &) = delete;

  size_t size() const { return Size; }
  bool empty() const { return Size == 0; }

  /// Inserts \p Value at the front; returns its (stable) node.
  Node *insertFront(uint32_t Value);

  /// Value at position \p Pos (0-based).
  uint32_t valueAt(size_t Pos) const;

  /// Detaches and frees the node at \p Pos.
  void eraseAt(size_t Pos);

  /// Moves the element at \p Pos to the front; returns its node.
  Node *moveToFront(size_t Pos);

  /// Position of \p N, computed by walking the highest outgoing link of
  /// each node to the end of the list and subtracting from the size —
  /// the compressor-side operation described in §5.
  size_t positionOf(const Node *N) const;

  /// Removes every element.
  void clear();

private:
  uint8_t randomHeight();
  Node *detachAt(size_t Pos);
  void attachFront(Node *N);

  Node Head;
  size_t Size = 0;
  uint64_t RngState;
};

} // namespace cjpack

#endif // CJPACK_MTF_INDEXEDSKIPLIST_H
