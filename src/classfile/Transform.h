//===- Transform.h - Classfile preprocessing (§2, §9) ----------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's baseline preprocessing of classfiles (§2):
///
///  * strip LineNumberTable, LocalVariableTable, SourceFile, and any
///    attribute the packed format does not recognize (whose constant-pool
///    references could not be renumbered);
///  * garbage-collect the constant pool;
///  * sort entries by type, Utf8 entries by content;
///  * assign int/float/string constants the smallest indices so every
///    `ldc` operand fits in one byte (§9).
///
/// These transforms alone give the ~20% jar-size improvement the paper
/// reports before any new techniques are applied.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_CLASSFILE_TRANSFORM_H
#define CJPACK_CLASSFILE_TRANSFORM_H

#include "classfile/ClassFile.h"
#include "support/Error.h"

namespace cjpack {

/// Attributes the packed format understands; everything else is dropped
/// by stripForPacking.
bool isRecognizedAttribute(std::string_view Name);

/// Removes debug attributes (LineNumberTable, LocalVariableTable,
/// SourceFile) and, when \p DropUnrecognized, every attribute outside
/// the recognized set — including all attributes nested in Code.
void stripDebugInfo(ClassFile &CF, bool DropUnrecognized = true);

/// Garbage-collects and canonically re-orders the constant pool,
/// renumbering every reference (including inside bytecode). Requires
/// unrecognized attributes to have been stripped first; fails otherwise
/// and on malformed bytecode.
Error canonicalizeConstantPool(ClassFile &CF);

/// stripDebugInfo + canonicalizeConstantPool.
Error prepareForPacking(ClassFile &CF);

} // namespace cjpack

#endif // CJPACK_CLASSFILE_TRANSFORM_H
