//===- Transform.cpp - Classfile preprocessing (§2, §9) -------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "classfile/Transform.h"
#include "bytecode/Instruction.h"
#include "support/ByteBuffer.h"
#include <algorithm>
#include <map>
#include <set>

using namespace cjpack;

bool cjpack::isRecognizedAttribute(std::string_view Name) {
  return Name == "Code" || Name == "ConstantValue" || Name == "Exceptions" ||
         Name == "Synthetic" || Name == "Deprecated";
}

static bool isDebugAttribute(std::string_view Name) {
  return Name == "LineNumberTable" || Name == "LocalVariableTable" ||
         Name == "SourceFile";
}

static void filterAttributes(std::vector<AttributeInfo> &Attrs,
                             bool DropUnrecognized) {
  std::erase_if(Attrs, [&](const AttributeInfo &A) {
    if (isDebugAttribute(A.Name))
      return true;
    return DropUnrecognized && !isRecognizedAttribute(A.Name);
  });
}

void cjpack::stripDebugInfo(ClassFile &CF, bool DropUnrecognized) {
  filterAttributes(CF.Attributes, DropUnrecognized);
  for (MemberInfo &F : CF.Fields)
    filterAttributes(F.Attributes, DropUnrecognized);
  for (MemberInfo &M : CF.Methods) {
    filterAttributes(M.Attributes, DropUnrecognized);
    for (AttributeInfo &A : M.Attributes) {
      if (A.Name != "Code")
        continue;
      // Rewrite the Code attribute with all nested attributes removed.
      auto Code = parseCodeAttribute(A, CF.CP);
      if (!Code)
        continue; // malformed code is caught later by canonicalize
      Code->Attributes.clear();
      A = encodeCodeAttribute(*Code, CF.CP);
    }
  }
}

namespace {

/// One method's decoded Code attribute, kept so bytecode constant-pool
/// operands can be renumbered and the attribute re-encoded.
struct DecodedMethod {
  MemberInfo *Member = nullptr;
  AttributeInfo *Attr = nullptr;
  CodeAttribute Code;
  std::vector<Insn> Insns;
};

/// Sort keys placing entries in the canonical §2/§9 order.
enum class CpGroup : uint8_t {
  LdcConst,   ///< int/float/string referenced by a one-byte ldc
  OtherConst, ///< remaining int/float/string
  WideConst,  ///< long/double
  ClassEntry,
  MemberRef,
  NameType,
  Text,       ///< Utf8, sorted by content
  Other,
};

class PoolCanonicalizer {
public:
  explicit PoolCanonicalizer(ClassFile &CF) : CF(CF) {}

  Error run() {
    if (auto E = decodeMethods())
      return E;
    markRoots();
    closeOverReferences();
    if (auto E = assignNewIndices())
      return E;
    rebuildPool();
    remapStructure();
    return Error::success();
  }

private:
  Error decodeMethods() {
    for (MemberInfo &M : CF.Methods) {
      for (AttributeInfo &A : M.Attributes) {
        if (A.Name != "Code")
          continue;
        auto Code = parseCodeAttribute(A, CF.CP);
        if (!Code)
          return Code.takeError();
        auto Insns = decodeCode(Code->Code);
        if (!Insns)
          return Insns.takeError();
        DecodedMethod D;
        D.Member = &M;
        D.Attr = &A;
        D.Code = std::move(*Code);
        D.Insns = std::move(*Insns);
        Methods.push_back(std::move(D));
      }
    }
    return Error::success();
  }

  void mark(uint16_t Index) {
    if (Index != 0)
      Reachable.insert(Index);
  }

  void markRoots() {
    mark(CF.ThisClass);
    mark(CF.SuperClass);
    for (uint16_t I : CF.Interfaces)
      mark(I);
    auto MarkMember = [&](const MemberInfo &M) {
      mark(M.NameIndex);
      mark(M.DescriptorIndex);
      for (const AttributeInfo &A : M.Attributes) {
        if (A.Name == "ConstantValue" && A.Bytes.size() == 2) {
          ByteReader R(A.Bytes);
          mark(R.readU2());
        } else if (A.Name == "Exceptions") {
          ByteReader R(A.Bytes);
          uint16_t N = R.readU2();
          for (uint16_t K = 0; K < N; ++K)
            mark(R.readU2());
        }
      }
    };
    for (const MemberInfo &F : CF.Fields)
      MarkMember(F);
    for (const MemberInfo &M : CF.Methods)
      MarkMember(M);
    for (const DecodedMethod &D : Methods) {
      for (const ExceptionTableEntry &E : D.Code.ExceptionTable)
        mark(E.CatchType);
      for (const Insn &I : D.Insns) {
        if (I.hasCpOperand()) {
          mark(I.CpIndex);
          if (I.Opcode == Op::Ldc)
            LdcReferenced.insert(I.CpIndex);
        }
      }
    }
  }

  void closeOverReferences() {
    std::vector<uint16_t> Work(Reachable.begin(), Reachable.end());
    while (!Work.empty()) {
      uint16_t Index = Work.back();
      Work.pop_back();
      if (!CF.CP.isValidIndex(Index))
        continue;
      const CpEntry &E = CF.CP.entry(Index);
      auto Visit = [&](uint16_t Ref) {
        if (Ref != 0 && Reachable.insert(Ref).second)
          Work.push_back(Ref);
      };
      switch (E.Tag) {
      case CpTag::Class:
      case CpTag::String:
      case CpTag::MethodType:
      case CpTag::Module:
      case CpTag::Package:
      case CpTag::MethodHandle:
        Visit(E.Ref1);
        break;
      case CpTag::FieldRef:
      case CpTag::MethodRef:
      case CpTag::InterfaceMethodRef:
      case CpTag::NameAndType:
      case CpTag::Dynamic:
      case CpTag::InvokeDynamic:
        Visit(E.Ref1);
        Visit(E.Ref2);
        break;
      default:
        break;
      }
    }
  }

  CpGroup groupOf(uint16_t Index, const CpEntry &E) const {
    switch (E.Tag) {
    case CpTag::Integer:
    case CpTag::Float:
    case CpTag::String:
      return LdcReferenced.count(Index) ? CpGroup::LdcConst
                                        : CpGroup::OtherConst;
    case CpTag::Long:
    case CpTag::Double:
      return CpGroup::WideConst;
    case CpTag::Class:
      return CpGroup::ClassEntry;
    case CpTag::FieldRef:
    case CpTag::MethodRef:
    case CpTag::InterfaceMethodRef:
      return CpGroup::MemberRef;
    case CpTag::NameAndType:
      return CpGroup::NameType;
    case CpTag::Utf8:
      return CpGroup::Text;
    default:
      return CpGroup::Other;
    }
  }

  /// A within-group sort key: tag first, then content. References sort
  /// by the *content* they denote so equal pools sort identically
  /// regardless of original numbering.
  std::string sortKey(const CpEntry &E) const {
    std::string Key;
    Key.push_back(static_cast<char>(E.Tag));
    auto AppendU64 = [&](uint64_t V) {
      for (int Shift = 56; Shift >= 0; Shift -= 8)
        Key.push_back(static_cast<char>(V >> Shift));
    };
    auto Utf8At = [&](uint16_t Ref) -> std::string_view {
      if (!CF.CP.isValidIndex(Ref) || CF.CP.entry(Ref).Tag != CpTag::Utf8)
        return {};
      return CF.CP.utf8(Ref);
    };
    switch (E.Tag) {
    case CpTag::Utf8:
      Key += E.Text;
      break;
    case CpTag::Integer:
    case CpTag::Float:
    case CpTag::Long:
    case CpTag::Double:
      AppendU64(E.Bits);
      break;
    case CpTag::Class:
    case CpTag::MethodType:
    case CpTag::Module:
    case CpTag::Package:
      Key += Utf8At(E.Ref1);
      break;
    case CpTag::String:
      Key += Utf8At(E.Ref1);
      break;
    case CpTag::NameAndType:
      Key += Utf8At(E.Ref1);
      Key.push_back('\0');
      Key += Utf8At(E.Ref2);
      break;
    case CpTag::FieldRef:
    case CpTag::MethodRef:
    case CpTag::InterfaceMethodRef: {
      const CpEntry &C = CF.CP.entry(E.Ref1);
      if (C.Tag == CpTag::Class)
        Key += Utf8At(C.Ref1);
      Key.push_back('\0');
      const CpEntry &NT = CF.CP.entry(E.Ref2);
      if (NT.Tag == CpTag::NameAndType) {
        Key += Utf8At(NT.Ref1);
        Key.push_back('\0');
        Key += Utf8At(NT.Ref2);
      }
      break;
    }
    default:
      AppendU64(E.Ref1);
      AppendU64(E.Ref2);
      break;
    }
    return Key;
  }

  Error assignNewIndices() {
    // Attribute names must live in the pool; synthesize Utf8 entries for
    // any not already reachable so they participate in the sorted block.
    std::set<std::string, std::less<>> AttrNames;
    auto Collect = [&](const std::vector<AttributeInfo> &Attrs) {
      for (const AttributeInfo &A : Attrs)
        AttrNames.emplace(A.Name);
    };
    Collect(CF.Attributes);
    for (const MemberInfo &F : CF.Fields)
      Collect(F.Attributes);
    for (const MemberInfo &M : CF.Methods)
      Collect(M.Attributes);
    for (const DecodedMethod &D : Methods)
      Collect(D.Code.Attributes);
    std::set<std::string, std::less<>> ReachableTexts;
    for (uint16_t I : Reachable)
      if (CF.CP.isValidIndex(I) && CF.CP.entry(I).Tag == CpTag::Utf8)
        ReachableTexts.emplace(CF.CP.utf8(I));
    for (const std::string &Name : AttrNames)
      if (!ReachableTexts.count(Name))
        SynthesizedTexts.push_back(Name);

    struct Item {
      CpGroup Group;
      std::string Key;
      uint16_t OldIndex; ///< 0 for synthesized Utf8 entries
      const std::string *SynthText = nullptr;
    };
    std::vector<Item> Items;
    for (uint16_t I : Reachable) {
      if (!CF.CP.isValidIndex(I))
        return makeError(ErrorCode::Corrupt,
                         "canonicalize: dangling constant pool index " +
                             std::to_string(I));
      const CpEntry &E = CF.CP.entry(I);
      Items.push_back({groupOf(I, E), sortKey(E), I, nullptr});
    }
    for (const std::string &Text : SynthesizedTexts) {
      std::string Key;
      Key.push_back(static_cast<char>(CpTag::Utf8));
      Key += Text;
      Items.push_back({CpGroup::Text, std::move(Key), 0, &Text});
    }

    std::sort(Items.begin(), Items.end(), [](const Item &A, const Item &B) {
      if (A.Group != B.Group)
        return A.Group < B.Group;
      if (A.Key != B.Key)
        return A.Key < B.Key;
      return A.OldIndex < B.OldIndex;
    });

    uint16_t Next = 1;
    for (const Item &It : Items) {
      bool Wide =
          It.OldIndex != 0 && CF.CP.entry(It.OldIndex).isWide();
      if (It.OldIndex != 0)
        OldToNew[It.OldIndex] = Next;
      else
        SynthIndex[*It.SynthText] = Next;
      NewOrder.push_back(It.OldIndex == 0
                             ? std::pair<uint16_t, const std::string *>(
                                   0, It.SynthText)
                             : std::pair<uint16_t, const std::string *>(
                                   It.OldIndex, nullptr));
      Next = static_cast<uint16_t>(Next + (Wide ? 2 : 1));
      if (Next == 0)
        return makeError(ErrorCode::LimitExceeded,
                         "canonicalize: constant pool overflow");
    }

    for (uint16_t I : LdcReferenced)
      if (OldToNew[I] > 255)
        return makeError(ErrorCode::Corrupt,
                         "canonicalize: cannot keep ldc constant below "
                         "index 256");
    return Error::success();
  }

  uint16_t remap(uint16_t Old) const {
    if (Old == 0)
      return 0;
    auto It = OldToNew.find(Old);
    assert(It != OldToNew.end() && "remapping an unreachable cp index");
    return It->second;
  }

  void rebuildPool() {
    // The replacement pool must share the class's arena: copied entries
    // keep views into it, and the synthesized texts below are interned
    // into it (SynthesizedTexts itself dies with this canonicalizer).
    CF.arena();
    ConstantPool NewCP(CF.CP.arenaPtr());
    for (const auto &[OldIndex, SynthText] : NewOrder) {
      if (SynthText) {
        CpEntry E;
        E.Tag = CpTag::Utf8;
        E.Text = CF.arena().internString(*SynthText);
        NewCP.appendRaw(std::move(E));
        continue;
      }
      CpEntry E = CF.CP.entry(OldIndex);
      switch (E.Tag) {
      case CpTag::Class:
      case CpTag::String:
      case CpTag::MethodType:
      case CpTag::Module:
      case CpTag::Package:
      case CpTag::MethodHandle:
        E.Ref1 = remap(E.Ref1);
        break;
      case CpTag::FieldRef:
      case CpTag::MethodRef:
      case CpTag::InterfaceMethodRef:
      case CpTag::NameAndType:
      case CpTag::Dynamic:
      case CpTag::InvokeDynamic:
        E.Ref1 = remap(E.Ref1);
        E.Ref2 = remap(E.Ref2);
        break;
      default:
        break;
      }
      NewCP.appendRaw(std::move(E));
    }
    NewCP.rebuildIndex();
    CF.CP = std::move(NewCP);
  }

  void remapStructure() {
    CF.ThisClass = remap(CF.ThisClass);
    CF.SuperClass = remap(CF.SuperClass);
    for (uint16_t &I : CF.Interfaces)
      I = remap(I);
    auto RemapMember = [&](MemberInfo &M) {
      M.NameIndex = remap(M.NameIndex);
      M.DescriptorIndex = remap(M.DescriptorIndex);
      for (AttributeInfo &A : M.Attributes) {
        if (A.Name == "ConstantValue" && A.Bytes.size() == 2) {
          ByteReader R(A.Bytes);
          uint16_t V = remap(R.readU2());
          ByteWriter W;
          W.writeU2(V);
          A.Bytes = CF.arena().copy(W.data());
        } else if (A.Name == "Exceptions") {
          ByteReader R(A.Bytes);
          uint16_t N = R.readU2();
          ByteWriter W;
          W.writeU2(N);
          for (uint16_t K = 0; K < N; ++K)
            W.writeU2(remap(R.readU2()));
          A.Bytes = CF.arena().copy(W.data());
        }
      }
    };
    for (MemberInfo &F : CF.Fields)
      RemapMember(F);
    for (MemberInfo &M : CF.Methods)
      RemapMember(M);
    for (DecodedMethod &D : Methods) {
      for (ExceptionTableEntry &E : D.Code.ExceptionTable)
        E.CatchType = remap(E.CatchType);
      for (Insn &I : D.Insns)
        if (I.hasCpOperand())
          I.CpIndex = remap(I.CpIndex);
      D.Code.Code = CF.arena().adopt(encodeCode(D.Insns));
      *D.Attr = encodeCodeAttribute(D.Code, CF.CP);
    }
  }

  ClassFile &CF;
  std::vector<DecodedMethod> Methods;
  std::set<uint16_t> Reachable;
  std::set<uint16_t> LdcReferenced;
  std::vector<std::string> SynthesizedTexts;
  std::map<uint16_t, uint16_t> OldToNew;
  std::map<std::string, uint16_t> SynthIndex;
  std::vector<std::pair<uint16_t, const std::string *>> NewOrder;
};

} // namespace

Error cjpack::canonicalizeConstantPool(ClassFile &CF) {
  auto CheckRecognized =
      [&](const std::vector<AttributeInfo> &Attrs) -> Error {
    for (const AttributeInfo &A : Attrs)
      if (!isRecognizedAttribute(A.Name))
        return makeError("canonicalize: unrecognized attribute '" +
                         std::string(A.Name) + "' (strip first)");
    return Error::success();
  };
  if (auto E = CheckRecognized(CF.Attributes))
    return E;
  for (const MemberInfo &F : CF.Fields)
    if (auto E = CheckRecognized(F.Attributes))
      return E;
  for (const MemberInfo &M : CF.Methods)
    if (auto E = CheckRecognized(M.Attributes))
      return E;
  return PoolCanonicalizer(CF).run();
}

Error cjpack::prepareForPacking(ClassFile &CF) {
  stripDebugInfo(CF);
  return canonicalizeConstantPool(CF);
}
