//===- Descriptor.cpp - JVM type descriptor parsing -----------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "classfile/Descriptor.h"

using namespace cjpack;

/// Parses one type starting at Desc[Pos]; advances Pos past it.
static Expected<TypeDesc> parseOne(std::string_view Desc, size_t &Pos,
                                   bool AllowVoid) {
  TypeDesc T;
  while (Pos < Desc.size() && Desc[Pos] == '[') {
    ++T.Dims;
    ++Pos;
    if (T.Dims == 0) // overflowed uint8_t: 256+ dimensions is malformed
      return Error::failure("descriptor: too many array dimensions");
  }
  if (Pos >= Desc.size())
    return Error::failure("descriptor: truncated type in '" +
                          std::string(Desc) + "'");
  char C = Desc[Pos++];
  switch (C) {
  case 'B': case 'C': case 'D': case 'F': case 'I': case 'J': case 'S':
  case 'Z':
    T.Base = C;
    return T;
  case 'V':
    if (!AllowVoid || T.Dims != 0)
      return Error::failure("descriptor: void in illegal position");
    T.Base = 'V';
    return T;
  case 'L': {
    size_t End = Desc.find(';', Pos);
    if (End == std::string_view::npos)
      return Error::failure("descriptor: unterminated class name in '" +
                            std::string(Desc) + "'");
    T.Base = 'L';
    T.ClassName = std::string(Desc.substr(Pos, End - Pos));
    if (T.ClassName.empty())
      return Error::failure("descriptor: empty class name");
    Pos = End + 1;
    return T;
  }
  default:
    return Error::failure(std::string("descriptor: bad base type '") + C +
                          "' in '" + std::string(Desc) + "'");
  }
}

Expected<TypeDesc> cjpack::parseFieldDescriptor(std::string_view Desc) {
  size_t Pos = 0;
  auto T = parseOne(Desc, Pos, /*AllowVoid=*/false);
  if (!T)
    return T;
  if (Pos != Desc.size())
    return Error::failure("descriptor: trailing characters in '" +
                          std::string(Desc) + "'");
  return T;
}

Expected<MethodDesc> cjpack::parseMethodDescriptor(std::string_view Desc) {
  if (Desc.empty() || Desc[0] != '(')
    return Error::failure("descriptor: method descriptor must start with "
                          "'(': '" +
                          std::string(Desc) + "'");
  MethodDesc M;
  size_t Pos = 1;
  while (Pos < Desc.size() && Desc[Pos] != ')') {
    auto T = parseOne(Desc, Pos, /*AllowVoid=*/false);
    if (!T)
      return T.takeError();
    M.Params.push_back(std::move(*T));
  }
  if (Pos >= Desc.size())
    return Error::failure("descriptor: missing ')' in '" + std::string(Desc) +
                          "'");
  ++Pos; // consume ')'
  auto Ret = parseOne(Desc, Pos, /*AllowVoid=*/true);
  if (!Ret)
    return Ret.takeError();
  if (Pos != Desc.size())
    return Error::failure("descriptor: trailing characters in '" +
                          std::string(Desc) + "'");
  M.Ret = std::move(*Ret);
  return M;
}

std::string cjpack::printTypeDesc(const TypeDesc &T) {
  std::string Out(T.Dims, '[');
  if (T.Base == 'L') {
    Out += 'L';
    Out += T.ClassName;
    Out += ';';
  } else {
    Out += T.Base;
  }
  return Out;
}

std::string cjpack::printMethodDesc(const MethodDesc &M) {
  std::string Out = "(";
  for (const TypeDesc &P : M.Params)
    Out += printTypeDesc(P);
  Out += ')';
  Out += printTypeDesc(M.Ret);
  return Out;
}

VType cjpack::vtypeOf(const TypeDesc &T) {
  if (T.Dims > 0 || T.Base == 'L')
    return VType::Ref;
  switch (T.Base) {
  case 'B': case 'C': case 'S': case 'Z': case 'I':
    return VType::Int;
  case 'J':
    return VType::Long;
  case 'F':
    return VType::Float;
  case 'D':
    return VType::Double;
  case 'V':
    return VType::Void;
  default:
    return VType::Unknown;
  }
}

VType cjpack::vtypeOfFieldDescriptor(std::string_view Desc) {
  auto T = parseFieldDescriptor(Desc);
  if (!T)
    return VType::Unknown;
  return vtypeOf(*T);
}

bool cjpack::vtypesOfMethodDescriptor(std::string_view Desc,
                                      std::vector<VType> &Args, VType &Ret) {
  auto M = parseMethodDescriptor(Desc);
  if (!M)
    return false;
  Args.clear();
  for (const TypeDesc &P : M->Params)
    Args.push_back(vtypeOf(P));
  Ret = vtypeOf(M->Ret);
  return true;
}
