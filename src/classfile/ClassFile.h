//===- ClassFile.h - JVM classfile model -----------------------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// In-memory model of a standard JVM classfile: version, constant pool,
/// access flags, members, and attributes. Attribute names are stored as
/// strings (resolved from / interned into the constant pool at parse and
/// write time) so transformations can filter attributes without chasing
/// Utf8 indices.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_CLASSFILE_CLASSFILE_H
#define CJPACK_CLASSFILE_CLASSFILE_H

#include "classfile/ConstantPool.h"
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace cjpack {

/// JVM access/property flags (classfile format).
enum AccessFlag : uint16_t {
  AccPublic = 0x0001,
  AccPrivate = 0x0002,
  AccProtected = 0x0004,
  AccStatic = 0x0008,
  AccFinal = 0x0010,
  AccSuper = 0x0020, // also ACC_SYNCHRONIZED on methods
  AccSynchronized = 0x0020,
  AccVolatile = 0x0040,
  AccTransient = 0x0080,
  AccNative = 0x0100,
  AccInterface = 0x0200,
  AccAbstract = 0x0400,
};

/// A raw attribute: resolved name plus its info bytes (which may contain
/// constant-pool indices interpreted per attribute kind). Both fields
/// are views: into the input buffer for borrowed parses, into the
/// class's arena for owning parses and synthesized attributes, or into
/// static storage for literal names.
struct AttributeInfo {
  std::string_view Name;
  std::span<const uint8_t> Bytes;
};

/// A field_info or method_info structure.
struct MemberInfo {
  uint16_t AccessFlags = 0;
  uint16_t NameIndex = 0;
  uint16_t DescriptorIndex = 0;
  std::vector<AttributeInfo> Attributes;
};

/// One entry of a Code attribute's exception table.
struct ExceptionTableEntry {
  uint16_t StartPc = 0;
  uint16_t EndPc = 0;
  uint16_t HandlerPc = 0;
  uint16_t CatchType = 0; ///< Class cp index, or 0 for catch-all
};

/// Parsed view of a Code attribute. Code is a subspan of the enclosing
/// attribute's bytes (no copy); re-encoded code lands in the arena.
struct CodeAttribute {
  uint16_t MaxStack = 0;
  uint16_t MaxLocals = 0;
  std::span<const uint8_t> Code;
  std::vector<ExceptionTableEntry> ExceptionTable;
  std::vector<AttributeInfo> Attributes;
};

/// A complete classfile.
struct ClassFile {
  uint16_t MinorVersion = 3;
  uint16_t MajorVersion = 45; ///< JDK 1.0.2-era default (45.3)
  ConstantPool CP;
  uint16_t AccessFlags = 0;
  uint16_t ThisClass = 0;  ///< Class cp index
  uint16_t SuperClass = 0; ///< Class cp index, 0 for java/lang/Object
  std::vector<uint16_t> Interfaces; ///< Class cp indices
  std::vector<MemberInfo> Fields;
  std::vector<MemberInfo> Methods;
  std::vector<AttributeInfo> Attributes;

  /// Internal name of this class (e.g. "java/util/HashMap").
  std::string_view thisClassName() const { return CP.className(ThisClass); }

  /// Internal name of the superclass, or "" for java/lang/Object's 0.
  std::string_view superClassName() const {
    return SuperClass == 0 ? std::string_view() : CP.className(SuperClass);
  }

  /// The arena backing this class's owned strings and payloads; shared
  /// with (and stored on) the constant pool so pool swaps and copies
  /// keep the storage alive.
  Arena &arena() { return CP.arena(); }
};

/// Finds the attribute named \p Name in \p Attrs, or nullptr.
const AttributeInfo *findAttribute(const std::vector<AttributeInfo> &Attrs,
                                   std::string_view Name);

/// Parses a Code attribute's info bytes; \p CP resolves nested attribute
/// names.
Expected<CodeAttribute> parseCodeAttribute(const AttributeInfo &Attr,
                                           const ConstantPool &CP);

/// Encodes \p Code back into an AttributeInfo named "Code", interning
/// nested attribute names into \p CP.
AttributeInfo encodeCodeAttribute(const CodeAttribute &Code,
                                  ConstantPool &CP);

} // namespace cjpack

#endif // CJPACK_CLASSFILE_CLASSFILE_H
