//===- Reader.cpp - JVM classfile parser ----------------------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "classfile/Reader.h"
#include "support/ByteBuffer.h"
#include <string>

using namespace cjpack;

namespace {

class ClassParser {
public:
  /// Borrowed parse over \p Bytes; Owning mode first lands the whole
  /// input in CF's arena with one bulk copy and borrows from that.
  /// (CF is declared before R so the arena exists when R is built.)
  ClassParser(std::span<const uint8_t> Bytes, const DecodeLimits &Limits,
              ParseMode Mode)
      : R(Mode == ParseMode::Owning ? CF.arena().copy(Bytes) : Bytes),
        Limits(Limits) {}

  /// Zero-copy owning parse: adopt the caller's buffer into the arena.
  ClassParser(std::vector<uint8_t> &&Bytes, const DecodeLimits &Limits)
      : R(CF.arena().adopt(std::move(Bytes))), Limits(Limits) {}

  Expected<ClassFile> parse() {
    if (R.readU4() != 0xCAFEBABEu)
      return makeError(ErrorCode::Corrupt, "classfile: bad magic");
    CF.MinorVersion = R.readU2();
    CF.MajorVersion = R.readU2();

    if (auto E = parseConstantPool())
      return E;

    CF.AccessFlags = R.readU2();
    CF.ThisClass = R.readU2();
    CF.SuperClass = R.readU2();
    uint16_t IfaceCount = R.readU2();
    for (uint16_t I = 0; I < IfaceCount; ++I)
      CF.Interfaces.push_back(R.readU2());

    if (auto E = parseMembers(CF.Fields))
      return E;
    if (auto E = parseMembers(CF.Methods))
      return E;
    if (auto E = parseAttributes(CF.Attributes))
      return E;

    if (auto E = R.takeError("classfile"))
      return E;
    if (!R.atEnd())
      return makeError(ErrorCode::Corrupt,
                       "classfile: trailing bytes after attributes");
    if (!CF.CP.isValidIndex(CF.ThisClass) ||
        CF.CP.entry(CF.ThisClass).Tag != CpTag::Class)
      return makeError(ErrorCode::Corrupt,
                       "classfile: this_class is not a Class entry");
    return std::move(CF);
  }

private:
  Error parseConstantPool() {
    uint16_t Count = R.readU2();
    if (R.hasError() || Count == 0)
      return makeError(ErrorCode::Corrupt,
                       "classfile: bad constant pool count");
    if (Count > Limits.MaxPoolCount)
      return makeError(ErrorCode::LimitExceeded,
                       "classfile: constant pool count over limit");
    // Every entry costs at least three bytes (tag + two payload bytes),
    // so a count the remaining input cannot hold is corrupt up front.
    if (static_cast<uint64_t>(Count - 1) * 3 > R.remaining())
      return makeError(ErrorCode::Corrupt,
                       "classfile: constant pool larger than input");
    uint16_t Index = 1;
    while (Index < Count) {
      CpEntry E;
      uint8_t Tag = R.readU1();
      E.Tag = static_cast<CpTag>(Tag);
      switch (E.Tag) {
      case CpTag::Utf8: {
        uint16_t Len = R.readU2();
        E.Text = R.readStringView(Len);
        break;
      }
      case CpTag::Integer:
      case CpTag::Float:
        E.Bits = R.readU4();
        break;
      case CpTag::Long:
      case CpTag::Double:
        E.Bits = R.readU8();
        break;
      case CpTag::Class:
      case CpTag::String:
      case CpTag::MethodType:
      case CpTag::Module:
      case CpTag::Package:
        E.Ref1 = R.readU2();
        break;
      case CpTag::FieldRef:
      case CpTag::MethodRef:
      case CpTag::InterfaceMethodRef:
      case CpTag::NameAndType:
      case CpTag::Dynamic:
      case CpTag::InvokeDynamic:
        E.Ref1 = R.readU2();
        E.Ref2 = R.readU2();
        break;
      case CpTag::MethodHandle:
        E.RefKind = R.readU1();
        E.Ref1 = R.readU2();
        break;
      case CpTag::None:
      default:
        return makeError(ErrorCode::Corrupt,
                         "classfile: unknown constant tag " +
                             std::to_string(Tag) + " at cp index " +
                             std::to_string(Index) + " (byte " +
                             std::to_string(R.position() - 1) + ")");
      }
      bool Wide = E.isWide();
      CF.CP.appendRaw(std::move(E));
      Index += Wide ? 2 : 1;
    }
    if (Index != Count)
      return makeError(ErrorCode::Corrupt,
                       "classfile: wide constant overruns pool");
    CF.CP.rebuildIndex();
    return R.takeError("classfile constant pool");
  }

  Error parseAttributes(std::vector<AttributeInfo> &Out) {
    uint16_t Count = R.readU2();
    for (uint16_t I = 0; I < Count; ++I) {
      uint16_t NameIdx = R.readU2();
      uint32_t Len = R.readU4();
      if (R.hasError())
        return makeError(ErrorCode::Truncated,
                         "classfile: truncated attribute header");
      if (!CF.CP.isValidIndex(NameIdx) ||
          CF.CP.entry(NameIdx).Tag != CpTag::Utf8)
        return makeError(ErrorCode::Corrupt,
                         "classfile: attribute name index " +
                             std::to_string(NameIdx) + " is not Utf8");
      if (Len > R.remaining())
        return makeError(ErrorCode::Truncated,
                         "classfile: attribute length " +
                             std::to_string(Len) + " overruns input at byte " +
                             std::to_string(R.position()));
      AttributeInfo A;
      A.Name = CF.CP.utf8(NameIdx);
      A.Bytes = R.readSpan(Len);
      Out.push_back(A);
    }
    return R.takeError("classfile attributes");
  }

  Error parseMembers(std::vector<MemberInfo> &Out) {
    uint16_t Count = R.readU2();
    for (uint16_t I = 0; I < Count; ++I) {
      MemberInfo M;
      M.AccessFlags = R.readU2();
      M.NameIndex = R.readU2();
      M.DescriptorIndex = R.readU2();
      if (auto E = parseAttributes(M.Attributes))
        return E;
      Out.push_back(std::move(M));
    }
    return R.takeError("classfile members");
  }

  ClassFile CF;
  ByteReader R;
  DecodeLimits Limits;
};

} // namespace

Expected<ClassFile>
cjpack::parseClassFile(std::span<const uint8_t> Bytes,
                       const DecodeLimits &Limits, ParseMode Mode) {
  return ClassParser(Bytes, Limits, Mode).parse();
}

Expected<ClassFile> cjpack::parseClassFile(std::vector<uint8_t> &&Bytes,
                                           const DecodeLimits &Limits) {
  return ClassParser(std::move(Bytes), Limits).parse();
}
