//===- ConstantPool.h - JVM classfile constant pool ------------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classfile constant pool: entries for every JVM constant kind, with
/// deduplicating builders and lookup helpers. Long and Double entries
/// occupy two slots, the second slot holding a None placeholder, exactly
/// as the classfile format numbers them.
///
/// Utf8 text is stored as std::string_view. In borrowed mode (parsing
/// over an mmapped jar or archive slice) views point into the caller's
/// buffer and the pool allocates nothing; in owning mode new text is
/// interned into the pool's Arena, which is shared — via shared_ptr —
/// with every copy of the pool and with the ClassFile that embeds it,
/// so views stay valid as long as any owner is alive.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_CLASSFILE_CONSTANTPOOL_H
#define CJPACK_CLASSFILE_CONSTANTPOOL_H

#include "support/Arena.h"
#include "support/Error.h"
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cjpack {

/// Constant-pool entry tags, numbered as in the classfile format.
enum class CpTag : uint8_t {
  None = 0, ///< unusable slot (index 0, or the shadow of a Long/Double)
  Utf8 = 1,
  Integer = 3,
  Float = 4,
  Long = 5,
  Double = 6,
  Class = 7,
  String = 8,
  FieldRef = 9,
  MethodRef = 10,
  InterfaceMethodRef = 11,
  NameAndType = 12,
  MethodHandle = 15,
  MethodType = 16,
  Dynamic = 17,
  InvokeDynamic = 18,
  Module = 19,
  Package = 20,
};

/// Human-readable tag name (for diagnostics).
const char *cpTagName(CpTag Tag);

/// One constant-pool entry. Which fields are meaningful depends on Tag:
///  * Utf8: Text (a view into the input mapping or the pool's arena)
///  * Integer/Float/Long/Double: Bits (raw IEEE/two's-complement bits)
///  * Class/String/MethodType/Module/Package: Ref1 (a Utf8 index)
///  * FieldRef/MethodRef/InterfaceMethodRef: Ref1 = Class, Ref2 = N&T
///  * NameAndType: Ref1 = name Utf8, Ref2 = descriptor Utf8
///  * MethodHandle: RefKind + Ref1 (a member ref)
///  * Dynamic/InvokeDynamic: Ref1 = bootstrap index, Ref2 = N&T
struct CpEntry {
  CpTag Tag = CpTag::None;
  uint16_t Ref1 = 0;
  uint16_t Ref2 = 0;
  uint64_t Bits = 0;
  uint8_t RefKind = 0;
  std::string_view Text;

  bool isWide() const { return Tag == CpTag::Long || Tag == CpTag::Double; }
};

/// A classfile constant pool. Index 0 is reserved and unusable.
class ConstantPool {
public:
  ConstantPool() { Entries.emplace_back(); }

  /// Constructs a pool sharing \p Mem, so entries copied from another
  /// pool backed by the same arena stay valid after the swap
  /// (canonicalization rebuilds pools this way).
  explicit ConstantPool(std::shared_ptr<Arena> Mem) : Mem(std::move(Mem)) {
    Entries.emplace_back();
  }

  /// The classfile constant_pool_count (number of slots including slot 0).
  uint16_t count() const { return static_cast<uint16_t>(Entries.size()); }

  /// True if \p Index names a usable entry.
  bool isValidIndex(uint16_t Index) const {
    return Index >= 1 && Index < count() &&
           Entries[Index].Tag != CpTag::None;
  }

  const CpEntry &entry(uint16_t Index) const {
    assert(Index >= 1 && Index < count() && "constant pool index range");
    return Entries[Index];
  }

  CpEntry &entry(uint16_t Index) {
    assert(Index >= 1 && Index < count() && "constant pool index range");
    return Entries[Index];
  }

  /// Appends \p E without deduplication (parser path). Long/Double consume
  /// the following slot too. Returns the entry's index. The caller
  /// guarantees E.Text outlives the pool (input mapping or this pool's
  /// arena).
  uint16_t appendRaw(CpEntry E);

  /// \name Deduplicating builders
  /// Each returns the index of an existing equal entry or appends one.
  /// Newly inserted text is interned into the pool's arena, so the
  /// argument view may be transient.
  /// @{
  uint16_t addUtf8(std::string_view Text);
  uint16_t addInteger(int32_t Value);
  uint16_t addFloat(uint32_t RawBits);
  uint16_t addLong(int64_t Value);
  uint16_t addDouble(uint64_t RawBits);
  uint16_t addClass(std::string_view InternalName);
  uint16_t addString(std::string_view Value);
  uint16_t addNameAndType(std::string_view Name, std::string_view Desc);
  uint16_t addRef(CpTag Kind, std::string_view ClassName,
                  std::string_view Name, std::string_view Desc);
  /// @}

  /// Text of the Utf8 entry at \p Index (asserts tag).
  std::string_view utf8(uint16_t Index) const;

  /// Internal name (e.g. "java/lang/String") of the Class entry at
  /// \p Index.
  std::string_view className(uint16_t Index) const;

  /// Rebuilds the dedup maps after entries are replaced wholesale.
  void rebuildIndex();

  /// The arena owning this pool's interned text (created lazily).
  /// Shared by every copy of the pool; appending is safe because
  /// existing views never move.
  Arena &arena() {
    if (!Mem)
      Mem = std::make_shared<Arena>();
    return *Mem;
  }

  /// The shared handle itself (may be null if nothing was ever
  /// interned). Pass to the ConstantPool(shared_ptr) constructor to
  /// build a replacement pool over the same storage.
  const std::shared_ptr<Arena> &arenaPtr() const { return Mem; }

private:
  uint16_t addKeyed(CpEntry E);
  std::string keyOf(const CpEntry &E) const;

  std::vector<CpEntry> Entries;
  std::unordered_map<std::string, uint16_t> Dedup;
  std::shared_ptr<Arena> Mem;
};

} // namespace cjpack

#endif // CJPACK_CLASSFILE_CONSTANTPOOL_H
