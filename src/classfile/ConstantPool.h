//===- ConstantPool.h - JVM classfile constant pool ------------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classfile constant pool: entries for every JVM constant kind, with
/// deduplicating builders and lookup helpers. Long and Double entries
/// occupy two slots, the second slot holding a None placeholder, exactly
/// as the classfile format numbers them.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_CLASSFILE_CONSTANTPOOL_H
#define CJPACK_CLASSFILE_CONSTANTPOOL_H

#include "support/Error.h"
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace cjpack {

/// Constant-pool entry tags, numbered as in the classfile format.
enum class CpTag : uint8_t {
  None = 0, ///< unusable slot (index 0, or the shadow of a Long/Double)
  Utf8 = 1,
  Integer = 3,
  Float = 4,
  Long = 5,
  Double = 6,
  Class = 7,
  String = 8,
  FieldRef = 9,
  MethodRef = 10,
  InterfaceMethodRef = 11,
  NameAndType = 12,
  MethodHandle = 15,
  MethodType = 16,
  Dynamic = 17,
  InvokeDynamic = 18,
  Module = 19,
  Package = 20,
};

/// Human-readable tag name (for diagnostics).
const char *cpTagName(CpTag Tag);

/// One constant-pool entry. Which fields are meaningful depends on Tag:
///  * Utf8: Text
///  * Integer/Float/Long/Double: Bits (raw IEEE/two's-complement bits)
///  * Class/String/MethodType/Module/Package: Ref1 (a Utf8 index)
///  * FieldRef/MethodRef/InterfaceMethodRef: Ref1 = Class, Ref2 = N&T
///  * NameAndType: Ref1 = name Utf8, Ref2 = descriptor Utf8
///  * MethodHandle: RefKind + Ref1 (a member ref)
///  * Dynamic/InvokeDynamic: Ref1 = bootstrap index, Ref2 = N&T
struct CpEntry {
  CpTag Tag = CpTag::None;
  uint16_t Ref1 = 0;
  uint16_t Ref2 = 0;
  uint64_t Bits = 0;
  uint8_t RefKind = 0;
  std::string Text;

  bool isWide() const { return Tag == CpTag::Long || Tag == CpTag::Double; }
};

/// A classfile constant pool. Index 0 is reserved and unusable.
class ConstantPool {
public:
  ConstantPool() { Entries.emplace_back(); }

  /// The classfile constant_pool_count (number of slots including slot 0).
  uint16_t count() const { return static_cast<uint16_t>(Entries.size()); }

  /// True if \p Index names a usable entry.
  bool isValidIndex(uint16_t Index) const {
    return Index >= 1 && Index < count() &&
           Entries[Index].Tag != CpTag::None;
  }

  const CpEntry &entry(uint16_t Index) const {
    assert(Index >= 1 && Index < count() && "constant pool index range");
    return Entries[Index];
  }

  CpEntry &entry(uint16_t Index) {
    assert(Index >= 1 && Index < count() && "constant pool index range");
    return Entries[Index];
  }

  /// Appends \p E without deduplication (parser path). Long/Double consume
  /// the following slot too. Returns the entry's index.
  uint16_t appendRaw(CpEntry E);

  /// \name Deduplicating builders
  /// Each returns the index of an existing equal entry or appends one.
  /// @{
  uint16_t addUtf8(const std::string &Text);
  uint16_t addInteger(int32_t Value);
  uint16_t addFloat(uint32_t RawBits);
  uint16_t addLong(int64_t Value);
  uint16_t addDouble(uint64_t RawBits);
  uint16_t addClass(const std::string &InternalName);
  uint16_t addString(const std::string &Value);
  uint16_t addNameAndType(const std::string &Name, const std::string &Desc);
  uint16_t addRef(CpTag Kind, const std::string &ClassName,
                  const std::string &Name, const std::string &Desc);
  /// @}

  /// Text of the Utf8 entry at \p Index (asserts tag).
  const std::string &utf8(uint16_t Index) const;

  /// Internal name (e.g. "java/lang/String") of the Class entry at
  /// \p Index.
  const std::string &className(uint16_t Index) const;

  /// Rebuilds the dedup maps after entries are replaced wholesale.
  void rebuildIndex();

private:
  uint16_t addKeyed(CpEntry E);
  std::string keyOf(const CpEntry &E) const;

  std::vector<CpEntry> Entries;
  std::unordered_map<std::string, uint16_t> Dedup;
};

} // namespace cjpack

#endif // CJPACK_CLASSFILE_CONSTANTPOOL_H
