//===- Descriptor.h - JVM type descriptor parsing --------------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Field and method descriptor parsing ("(IJLjava/lang/String;)V") and
/// printing. The packed format factors descriptors into arrays of class
/// references (§4); TypeDesc is the unit of that factoring: a base type
/// (primitive or class) plus an array dimension count.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_CLASSFILE_DESCRIPTOR_H
#define CJPACK_CLASSFILE_DESCRIPTOR_H

#include "bytecode/StackState.h"
#include "support/Error.h"
#include <string>
#include <string_view>
#include <vector>

namespace cjpack {

/// One type in a descriptor: \p Dims array dimensions over a base that is
/// either a primitive ('B','C','D','F','I','J','S','Z','V') or a class
/// ('L', with ClassName holding the internal name).
struct TypeDesc {
  uint8_t Dims = 0;
  char Base = 'V';
  std::string ClassName;

  bool isClass() const { return Base == 'L'; }
  bool isVoid() const { return Base == 'V' && Dims == 0; }

  bool operator==(const TypeDesc &O) const {
    return Dims == O.Dims && Base == O.Base && ClassName == O.ClassName;
  }
};

/// A parsed method descriptor.
struct MethodDesc {
  std::vector<TypeDesc> Params;
  TypeDesc Ret;
};

/// Parses a field descriptor such as "[[Ljava/lang/String;".
Expected<TypeDesc> parseFieldDescriptor(std::string_view Desc);

/// Parses a method descriptor such as "(I[J)Ljava/lang/Object;".
Expected<MethodDesc> parseMethodDescriptor(std::string_view Desc);

/// Prints \p T back into descriptor syntax.
std::string printTypeDesc(const TypeDesc &T);

/// Prints \p M back into descriptor syntax.
std::string printMethodDesc(const MethodDesc &M);

/// Stack-machine type of a value of type \p T (arrays and classes are
/// Ref; B/C/S/Z/I are Int; V maps to Void).
VType vtypeOf(const TypeDesc &T);

/// Stack-machine type for a field descriptor string; Unknown on parse
/// failure.
VType vtypeOfFieldDescriptor(std::string_view Desc);

/// Argument/return stack-machine types for a method descriptor string.
/// Returns false on parse failure.
bool vtypesOfMethodDescriptor(std::string_view Desc,
                              std::vector<VType> &Args, VType &Ret);

} // namespace cjpack

#endif // CJPACK_CLASSFILE_DESCRIPTOR_H
