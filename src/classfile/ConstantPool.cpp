//===- ConstantPool.cpp - JVM classfile constant pool ---------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "classfile/ConstantPool.h"

using namespace cjpack;

const char *cjpack::cpTagName(CpTag Tag) {
  switch (Tag) {
  case CpTag::None: return "None";
  case CpTag::Utf8: return "Utf8";
  case CpTag::Integer: return "Integer";
  case CpTag::Float: return "Float";
  case CpTag::Long: return "Long";
  case CpTag::Double: return "Double";
  case CpTag::Class: return "Class";
  case CpTag::String: return "String";
  case CpTag::FieldRef: return "FieldRef";
  case CpTag::MethodRef: return "MethodRef";
  case CpTag::InterfaceMethodRef: return "InterfaceMethodRef";
  case CpTag::NameAndType: return "NameAndType";
  case CpTag::MethodHandle: return "MethodHandle";
  case CpTag::MethodType: return "MethodType";
  case CpTag::Dynamic: return "Dynamic";
  case CpTag::InvokeDynamic: return "InvokeDynamic";
  case CpTag::Module: return "Module";
  case CpTag::Package: return "Package";
  }
  return "Invalid";
}

uint16_t ConstantPool::appendRaw(CpEntry E) {
  uint16_t Index = count();
  bool Wide = E.isWide();
  Entries.push_back(std::move(E));
  if (Wide)
    Entries.emplace_back(); // shadow slot
  return Index;
}

std::string ConstantPool::keyOf(const CpEntry &E) const {
  // A compact textual key: tag byte, then the discriminating payload.
  std::string Key;
  Key.push_back(static_cast<char>(E.Tag));
  switch (E.Tag) {
  case CpTag::Utf8:
    Key += E.Text;
    break;
  case CpTag::Integer:
  case CpTag::Float:
  case CpTag::Long:
  case CpTag::Double:
    Key.append(reinterpret_cast<const char *>(&E.Bits), sizeof(E.Bits));
    break;
  case CpTag::MethodHandle:
    Key.push_back(static_cast<char>(E.RefKind));
    Key.append(reinterpret_cast<const char *>(&E.Ref1), sizeof(E.Ref1));
    break;
  default:
    Key.append(reinterpret_cast<const char *>(&E.Ref1), sizeof(E.Ref1));
    Key.append(reinterpret_cast<const char *>(&E.Ref2), sizeof(E.Ref2));
    break;
  }
  return Key;
}

uint16_t ConstantPool::addKeyed(CpEntry E) {
  std::string Key = keyOf(E);
  auto It = Dedup.find(Key);
  if (It != Dedup.end())
    return It->second;
  // The caller's Text view may be transient (a temporary, a buffer the
  // pool does not own); intern the copy that the entry will keep.
  if (E.Tag == CpTag::Utf8)
    E.Text = arena().internString(E.Text);
  uint16_t Index = appendRaw(std::move(E));
  Dedup.emplace(std::move(Key), Index);
  return Index;
}

void ConstantPool::rebuildIndex() {
  Dedup.clear();
  for (uint16_t I = 1; I < count(); ++I)
    if (Entries[I].Tag != CpTag::None)
      Dedup.emplace(keyOf(Entries[I]), I);
}

uint16_t ConstantPool::addUtf8(std::string_view Text) {
  CpEntry E;
  E.Tag = CpTag::Utf8;
  E.Text = Text;
  // Dedup hit returns the existing entry; only a genuinely new string
  // is interned into the arena (addKeyed copies E.Text before insert).
  return addKeyed(std::move(E));
}

uint16_t ConstantPool::addInteger(int32_t Value) {
  CpEntry E;
  E.Tag = CpTag::Integer;
  E.Bits = static_cast<uint32_t>(Value);
  return addKeyed(std::move(E));
}

uint16_t ConstantPool::addFloat(uint32_t RawBits) {
  CpEntry E;
  E.Tag = CpTag::Float;
  E.Bits = RawBits;
  return addKeyed(std::move(E));
}

uint16_t ConstantPool::addLong(int64_t Value) {
  CpEntry E;
  E.Tag = CpTag::Long;
  E.Bits = static_cast<uint64_t>(Value);
  return addKeyed(std::move(E));
}

uint16_t ConstantPool::addDouble(uint64_t RawBits) {
  CpEntry E;
  E.Tag = CpTag::Double;
  E.Bits = RawBits;
  return addKeyed(std::move(E));
}

uint16_t ConstantPool::addClass(std::string_view InternalName) {
  CpEntry E;
  E.Tag = CpTag::Class;
  E.Ref1 = addUtf8(InternalName);
  return addKeyed(std::move(E));
}

uint16_t ConstantPool::addString(std::string_view Value) {
  CpEntry E;
  E.Tag = CpTag::String;
  E.Ref1 = addUtf8(Value);
  return addKeyed(std::move(E));
}

uint16_t ConstantPool::addNameAndType(std::string_view Name,
                                      std::string_view Desc) {
  CpEntry E;
  E.Tag = CpTag::NameAndType;
  E.Ref1 = addUtf8(Name);
  E.Ref2 = addUtf8(Desc);
  return addKeyed(std::move(E));
}

uint16_t ConstantPool::addRef(CpTag Kind, std::string_view ClassName,
                              std::string_view Name, std::string_view Desc) {
  assert((Kind == CpTag::FieldRef || Kind == CpTag::MethodRef ||
          Kind == CpTag::InterfaceMethodRef) &&
         "addRef takes a member-reference tag");
  CpEntry E;
  E.Tag = Kind;
  E.Ref1 = addClass(ClassName);
  E.Ref2 = addNameAndType(Name, Desc);
  return addKeyed(std::move(E));
}

std::string_view ConstantPool::utf8(uint16_t Index) const {
  const CpEntry &E = entry(Index);
  assert(E.Tag == CpTag::Utf8 && "expected a Utf8 entry");
  return E.Text;
}

std::string_view ConstantPool::className(uint16_t Index) const {
  const CpEntry &E = entry(Index);
  assert(E.Tag == CpTag::Class && "expected a Class entry");
  return utf8(E.Ref1);
}
