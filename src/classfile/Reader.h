//===- Reader.h - JVM classfile parser -------------------------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses standard .class bytes into the ClassFile model. Fails with a
/// descriptive error on truncated or structurally invalid input.
///
/// The model borrows: Utf8 text and attribute payloads are views into
/// the bytes being parsed. ParseMode picks who keeps those bytes alive:
///
///  * Owning (the default): the input is landed in the class's arena
///    exactly once — either by a single bulk copy, or for the
///    rvalue-vector overload by adopting the caller's buffer with no
///    copy at all — and the ClassFile is self-contained.
///  * Borrowed: nothing is copied; every view points into the caller's
///    buffer (an mmapped jar, an archive slice), which MUST outlive the
///    ClassFile and everything derived from it that holds views.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_CLASSFILE_READER_H
#define CJPACK_CLASSFILE_READER_H

#include "classfile/ClassFile.h"
#include "support/DecodeLimits.h"
#include "support/Error.h"
#include <cstdint>
#include <span>
#include <vector>

namespace cjpack {

/// Who owns the bytes a parsed ClassFile's views point into.
enum class ParseMode {
  /// The ClassFile owns them (arena). Safe for any caller.
  Owning,
  /// The caller's buffer backs every view and must outlive the class.
  Borrowed,
};

/// Parses \p Bytes as a classfile. Every length and count read from the
/// wire is bounds-checked against the remaining input and \p Limits, so
/// hostile bytes produce a typed Error (Truncated / Corrupt /
/// LimitExceeded), never an overread.
Expected<ClassFile> parseClassFile(std::span<const uint8_t> Bytes,
                                   const DecodeLimits &Limits = {},
                                   ParseMode Mode = ParseMode::Owning);

/// Zero-copy owning parse: \p Bytes is donated to the class's arena, so
/// the result is self-contained without any bulk copy.
Expected<ClassFile> parseClassFile(std::vector<uint8_t> &&Bytes,
                                   const DecodeLimits &Limits = {});

} // namespace cjpack

#endif // CJPACK_CLASSFILE_READER_H
