//===- Reader.h - JVM classfile parser -------------------------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses standard .class bytes into the ClassFile model. Fails with a
/// descriptive error on truncated or structurally invalid input.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_CLASSFILE_READER_H
#define CJPACK_CLASSFILE_READER_H

#include "classfile/ClassFile.h"
#include "support/DecodeLimits.h"
#include "support/Error.h"
#include <cstdint>
#include <vector>

namespace cjpack {

/// Parses \p Bytes as a classfile. Every length and count read from the
/// wire is bounds-checked against the remaining input and \p Limits, so
/// hostile bytes produce a typed Error (Truncated / Corrupt /
/// LimitExceeded), never an overread.
Expected<ClassFile> parseClassFile(const std::vector<uint8_t> &Bytes,
                                   const DecodeLimits &Limits = {});

} // namespace cjpack

#endif // CJPACK_CLASSFILE_READER_H
