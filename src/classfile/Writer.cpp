//===- Writer.cpp - JVM classfile serializer ------------------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "classfile/Writer.h"
#include "support/ByteBuffer.h"

using namespace cjpack;

static void writeAttributes(ByteWriter &W, ConstantPool &CP,
                            const std::vector<AttributeInfo> &Attrs) {
  W.writeU2(static_cast<uint16_t>(Attrs.size()));
  for (const AttributeInfo &A : Attrs) {
    W.writeU2(CP.addUtf8(A.Name));
    W.writeU4(static_cast<uint32_t>(A.Bytes.size()));
    W.writeBytes(A.Bytes);
  }
}

static void writeMembers(ByteWriter &W, ConstantPool &CP,
                         const std::vector<MemberInfo> &Members) {
  W.writeU2(static_cast<uint16_t>(Members.size()));
  for (const MemberInfo &M : Members) {
    W.writeU2(M.AccessFlags);
    W.writeU2(M.NameIndex);
    W.writeU2(M.DescriptorIndex);
    writeAttributes(W, CP, M.Attributes);
  }
}

static void writeConstantPool(ByteWriter &W, const ConstantPool &CP) {
  W.writeU2(CP.count());
  for (uint16_t I = 1; I < CP.count(); ++I) {
    const CpEntry &E = CP.entry(I);
    if (E.Tag == CpTag::None)
      continue; // shadow slot of a Long/Double
    W.writeU1(static_cast<uint8_t>(E.Tag));
    switch (E.Tag) {
    case CpTag::Utf8:
      W.writeU2(static_cast<uint16_t>(E.Text.size()));
      W.writeString(E.Text);
      break;
    case CpTag::Integer:
    case CpTag::Float:
      W.writeU4(static_cast<uint32_t>(E.Bits));
      break;
    case CpTag::Long:
    case CpTag::Double:
      W.writeU8(E.Bits);
      break;
    case CpTag::Class:
    case CpTag::String:
    case CpTag::MethodType:
    case CpTag::Module:
    case CpTag::Package:
      W.writeU2(E.Ref1);
      break;
    case CpTag::FieldRef:
    case CpTag::MethodRef:
    case CpTag::InterfaceMethodRef:
    case CpTag::NameAndType:
    case CpTag::Dynamic:
    case CpTag::InvokeDynamic:
      W.writeU2(E.Ref1);
      W.writeU2(E.Ref2);
      break;
    case CpTag::MethodHandle:
      W.writeU1(E.RefKind);
      W.writeU2(E.Ref1);
      break;
    case CpTag::None:
      break;
    }
  }
}

std::vector<uint8_t> cjpack::writeClassFile(const ClassFile &CF) {
  // Serialize the body first so attribute-name interning lands in the
  // pool copy before the pool is emitted.
  ConstantPool CP = CF.CP;
  ByteWriter Body;
  Body.writeU2(CF.AccessFlags);
  Body.writeU2(CF.ThisClass);
  Body.writeU2(CF.SuperClass);
  Body.writeU2(static_cast<uint16_t>(CF.Interfaces.size()));
  for (uint16_t I : CF.Interfaces)
    Body.writeU2(I);
  writeMembers(Body, CP, CF.Fields);
  writeMembers(Body, CP, CF.Methods);
  writeAttributes(Body, CP, CF.Attributes);

  ByteWriter W;
  W.writeU4(0xCAFEBABEu);
  W.writeU2(CF.MinorVersion);
  W.writeU2(CF.MajorVersion);
  writeConstantPool(W, CP);
  W.writeBytes(Body.data());
  return W.take();
}
