//===- Writer.h - JVM classfile serializer ---------------------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes a ClassFile model into standard .class bytes. Attribute
/// name strings are interned into (a copy of) the constant pool before
/// the pool itself is emitted, so the model never needs to pre-intern
/// them. parse(write(cf)) is the identity on the model.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_CLASSFILE_WRITER_H
#define CJPACK_CLASSFILE_WRITER_H

#include "classfile/ClassFile.h"
#include <cstdint>
#include <vector>

namespace cjpack {

/// Serializes \p CF to classfile bytes.
std::vector<uint8_t> writeClassFile(const ClassFile &CF);

} // namespace cjpack

#endif // CJPACK_CLASSFILE_WRITER_H
