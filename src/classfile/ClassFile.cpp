//===- ClassFile.cpp - JVM classfile model helpers ------------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "classfile/ClassFile.h"
#include "support/ByteBuffer.h"

using namespace cjpack;

const AttributeInfo *
cjpack::findAttribute(const std::vector<AttributeInfo> &Attrs,
                      std::string_view Name) {
  for (const AttributeInfo &A : Attrs)
    if (A.Name == Name)
      return &A;
  return nullptr;
}

Expected<CodeAttribute>
cjpack::parseCodeAttribute(const AttributeInfo &Attr,
                           const ConstantPool &CP) {
  assert(Attr.Name == "Code" && "not a Code attribute");
  ByteReader R(Attr.Bytes);
  CodeAttribute Out;
  Out.MaxStack = R.readU2();
  Out.MaxLocals = R.readU2();
  uint32_t CodeLen = R.readU4();
  if (CodeLen > R.remaining())
    return Error::failure(ErrorCode::Corrupt,
                          "Code attribute: code_length overruns attribute");
  Out.Code = R.readSpan(CodeLen);
  uint16_t ExcCount = R.readU2();
  Out.ExceptionTable.reserve(ExcCount);
  for (uint16_t I = 0; I < ExcCount; ++I) {
    ExceptionTableEntry E;
    E.StartPc = R.readU2();
    E.EndPc = R.readU2();
    E.HandlerPc = R.readU2();
    E.CatchType = R.readU2();
    Out.ExceptionTable.push_back(E);
  }
  uint16_t AttrCount = R.readU2();
  for (uint16_t I = 0; I < AttrCount; ++I) {
    uint16_t NameIdx = R.readU2();
    uint32_t Len = R.readU4();
    if (R.hasError() || !CP.isValidIndex(NameIdx))
      return Error::failure(ErrorCode::Corrupt,
                            "Code attribute: bad nested attribute header");
    AttributeInfo Nested;
    Nested.Name = CP.utf8(NameIdx);
    Nested.Bytes = R.readSpan(Len);
    Out.Attributes.push_back(Nested);
  }
  if (auto E = R.takeError("Code attribute"))
    return E;
  return Out;
}

AttributeInfo cjpack::encodeCodeAttribute(const CodeAttribute &Code,
                                          ConstantPool &CP) {
  ByteWriter W;
  W.writeU2(Code.MaxStack);
  W.writeU2(Code.MaxLocals);
  W.writeU4(static_cast<uint32_t>(Code.Code.size()));
  W.writeBytes(Code.Code);
  W.writeU2(static_cast<uint16_t>(Code.ExceptionTable.size()));
  for (const ExceptionTableEntry &E : Code.ExceptionTable) {
    W.writeU2(E.StartPc);
    W.writeU2(E.EndPc);
    W.writeU2(E.HandlerPc);
    W.writeU2(E.CatchType);
  }
  W.writeU2(static_cast<uint16_t>(Code.Attributes.size()));
  for (const AttributeInfo &A : Code.Attributes) {
    W.writeU2(CP.addUtf8(A.Name));
    W.writeU4(static_cast<uint32_t>(A.Bytes.size()));
    W.writeBytes(A.Bytes);
  }
  AttributeInfo Out;
  Out.Name = "Code";
  // The writer's buffer dies with this frame; park the encoded body in
  // the pool's arena so the returned view survives.
  Out.Bytes = CP.arena().copy(W.data());
  return Out;
}
