//===- Lattice.h - Verification type lattice -------------------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flat type lattice the worklist verifier interprets over, and the
/// slot-per-entry frames it merges at join points. Unlike the packer's
/// coarse VType stack (one element per value), frames here are
/// slot-accurate: a long or double occupies two adjacent slots, the
/// first half (Long/Double) below the second (Long2/Double2), matching
/// the classfile's max_stack / max_locals accounting and letting the
/// analyzer catch category-2 pair splits.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_ANALYSIS_LATTICE_H
#define CJPACK_ANALYSIS_LATTICE_H

#include "bytecode/StackState.h"
#include <vector>

namespace cjpack::analysis {

/// One stack or local slot. Top is the lattice's absorbing element:
/// a slot holding no usable value (never written, or a merge conflict).
enum class AType : uint8_t {
  Top,
  Int,
  Float,
  Ref,
  RetAddr, ///< jsr return address
  Long,    ///< first slot of a long pair
  Long2,   ///< second slot of a long pair
  Double,  ///< first slot of a double pair
  Double2, ///< second slot of a double pair
};

/// Printable name of \p T (e.g. "int", "long[2]").
const char *atypeName(AType T);

/// True for the first slot of a category-2 pair.
inline bool isCat2Start(AType T) {
  return T == AType::Long || T == AType::Double;
}

/// True for the second slot of a category-2 pair.
inline bool isCat2Second(AType T) {
  return T == AType::Long2 || T == AType::Double2;
}

/// Join of two slots in the flat lattice: equal types meet themselves,
/// anything else conflicts to Top.
inline AType mergeSlot(AType A, AType B) { return A == B ? A : AType::Top; }

class ClassHierarchy;

/// A verification frame: operand-stack slots (bottom of stack first) and
/// local-variable slots (always exactly max_locals entries).
///
/// When the verifier runs with a ClassHierarchy (whole-archive mode),
/// StackCls/LocalCls run parallel to Stack/Locals and refine each Ref
/// slot with a hierarchy node id (ArchiveAnalysis.h's ClassNone for an
/// untyped reference, ClassNull for aconst_null): joins then meet two
/// in-archive references at their least common superclass instead of
/// collapsing to the untyped Ref. Without a hierarchy both vectors stay
/// empty and frames behave exactly as before.
struct Frame {
  std::vector<AType> Stack;
  std::vector<AType> Locals;
  std::vector<int32_t> StackCls;
  std::vector<int32_t> LocalCls;

  bool operator==(const Frame &) const = default;
};

/// Outcome of merging an incoming edge state into a block's entry frame.
enum class MergeOutcome : uint8_t {
  Unchanged,     ///< entry frame already covered the incoming state
  Changed,       ///< entry frame widened; block must be revisited
  DepthMismatch, ///< stack depths differ; states are incompatible
};

/// Merges \p From into \p Into slotwise. Local arrays must be the same
/// length (both are max_locals); stack depth differences are reported,
/// not merged. With \p H, Ref slots additionally join their tracked
/// classes at the least common superclass (a widening on the finite
/// superclass chain, so the fixpoint still terminates).
MergeOutcome mergeFrame(Frame &Into, const Frame &From,
                        const ClassHierarchy *H = nullptr);

/// Appends the slot expansion of coarse type \p T to \p Out (category-2
/// types append their pair; Void appends nothing).
void appendSlots(std::vector<AType> &Out, VType T);

/// Number of slots \p T occupies (0 for Void).
unsigned slotWidth(VType T);

} // namespace cjpack::analysis

#endif // CJPACK_ANALYSIS_LATTICE_H
