//===- Cfg.cpp - Bytecode control-flow graph ------------------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Cfg.h"
#include <algorithm>
#include <functional>
#include <set>

using namespace cjpack;
using namespace cjpack::analysis;

bool cjpack::analysis::isTerminator(Op O) {
  switch (O) {
  case Op::Goto:
  case Op::GotoW:
  case Op::TableSwitch:
  case Op::LookupSwitch:
  case Op::IReturn:
  case Op::LReturn:
  case Op::FReturn:
  case Op::DReturn:
  case Op::AReturn:
  case Op::Return:
  case Op::AThrow:
  case Op::Ret:
    return true;
  default:
    return false;
  }
}

bool cjpack::analysis::isConditionalBranch(Op O) {
  uint8_t N = static_cast<uint8_t>(O);
  return (N >= 153 && N <= 166) || O == Op::IfNull || O == Op::IfNonNull;
}

namespace {

/// Collects every control-transfer target of \p I (branch, switch).
void forEachTarget(const Insn &I, const std::function<void(int32_t)> &Fn) {
  if (I.isBranch()) {
    Fn(I.BranchTarget);
    return;
  }
  if (I.isSwitch()) {
    Fn(I.SwitchDefault);
    for (int32_t T : I.SwitchTargets)
      Fn(T);
  }
}

} // namespace

Cfg cjpack::analysis::buildCfg(const std::vector<Insn> &Insns,
                               const std::vector<ExceptionTableEntry> &Table,
                               uint32_t CodeLen, const std::string &Method,
                               std::vector<Diagnostic> &Diags) {
  Cfg G;
  for (uint32_t K = 0; K < Insns.size(); ++K)
    G.OffsetToInsn.emplace(Insns[K].Offset, K);

  auto Diag = [&](DiagKind Kind, uint32_t Offset, std::string Msg) {
    Diags.push_back({Kind, Method, Offset, std::move(Msg)});
  };
  auto AtBoundary = [&](uint32_t Offset) {
    return G.OffsetToInsn.count(Offset) != 0;
  };

  // Leaders: entry, every valid control-transfer target, every
  // instruction after a branch/terminator, and protected-range
  // boundaries plus handler entry points.
  std::set<uint32_t> Leaders;
  if (!Insns.empty())
    Leaders.insert(0);
  for (const Insn &I : Insns) {
    bool SplitsFlow = false;
    forEachTarget(I, [&](int32_t Target) {
      SplitsFlow = true;
      if (Target < 0 || static_cast<uint32_t>(Target) >= CodeLen ||
          !AtBoundary(static_cast<uint32_t>(Target)))
        Diag(DiagKind::InvalidBranchTarget, I.Offset,
             "branch target " + std::to_string(Target) +
                 " is not an instruction boundary");
      else
        Leaders.insert(static_cast<uint32_t>(Target));
    });
    if (SplitsFlow || isTerminator(I.Opcode) || I.Opcode == Op::Jsr ||
        I.Opcode == Op::JsrW)
      if (uint32_t Next = I.Offset + I.Length; Next < CodeLen)
        Leaders.insert(Next);
  }
  for (uint32_t K = 0; K < Table.size(); ++K) {
    const ExceptionTableEntry &E = Table[K];
    if (E.StartPc >= E.EndPc || E.EndPc > CodeLen || !AtBoundary(E.StartPc) ||
        (E.EndPc < CodeLen && !AtBoundary(E.EndPc)) ||
        !AtBoundary(E.HandlerPc)) {
      Diag(DiagKind::InvalidHandlerRange, E.HandlerPc,
           "exception entry [" + std::to_string(E.StartPc) + ", " +
               std::to_string(E.EndPc) + ") -> " +
               std::to_string(E.HandlerPc) +
               " has an invalid range or handler pc");
      continue;
    }
    G.ValidHandlers.push_back(K);
    Leaders.insert(E.StartPc);
    if (E.EndPc < CodeLen)
      Leaders.insert(E.EndPc);
    Leaders.insert(E.HandlerPc);
  }

  // Carve the instruction vector into blocks at the leaders.
  G.InsnToBlock.assign(Insns.size(), NoBlock);
  for (uint32_t K = 0; K < Insns.size(); ++K) {
    if (Leaders.count(Insns[K].Offset) || G.Blocks.empty()) {
      CfgBlock B;
      B.FirstInsn = K;
      B.StartOffset = Insns[K].Offset;
      G.Blocks.push_back(B);
    }
    CfgBlock &B = G.Blocks.back();
    B.LastInsn = K;
    B.EndOffset = Insns[K].Offset + Insns[K].Length;
    G.InsnToBlock[K] = static_cast<uint32_t>(G.Blocks.size() - 1);
  }

  // Normal-flow edges.
  for (uint32_t BId = 0; BId < G.Blocks.size(); ++BId) {
    CfgBlock &B = G.Blocks[BId];
    const Insn &Last = Insns[B.LastInsn];
    forEachTarget(Last, [&](int32_t Target) {
      if (Target >= 0 && static_cast<uint32_t>(Target) < CodeLen)
        if (uint32_t S = G.blockAtOffset(static_cast<uint32_t>(Target));
            S != NoBlock)
          B.Succs.push_back(S);
    });
    // jsr's subroutine entry is a real successor (its frame gets the
    // return address pushed); its fallthrough is the post-return point.
    if (Last.Opcode == Op::Jsr || Last.Opcode == Op::JsrW) {
      if (Last.BranchTarget >= 0 &&
          static_cast<uint32_t>(Last.BranchTarget) < CodeLen) {
        if (uint32_t S =
                G.blockAtOffset(static_cast<uint32_t>(Last.BranchTarget));
            S != NoBlock)
          B.Succs.push_back(S);
        else
          Diag(DiagKind::InvalidBranchTarget, Last.Offset,
               "jsr target " + std::to_string(Last.BranchTarget) +
                   " is not an instruction boundary");
      } else {
        Diag(DiagKind::InvalidBranchTarget, Last.Offset,
             "jsr target " + std::to_string(Last.BranchTarget) +
                 " is out of range");
      }
    }
    // Unconditional branches are goto/goto_w (terminators) and jsr/jsr_w,
    // which do fall through once the subroutine returns.
    bool IsJsr = Last.Opcode == Op::Jsr || Last.Opcode == Op::JsrW;
    bool FallsThrough =
        !isTerminator(Last.Opcode) &&
        (IsJsr || !(Last.isBranch() && !isConditionalBranch(Last.Opcode)));
    if (FallsThrough) {
      if (B.LastInsn + 1 < Insns.size())
        B.Succs.push_back(G.InsnToBlock[B.LastInsn + 1]);
      else
        B.FallsOffEnd = true;
    }
    // Dedup (a conditional branch to its own fallthrough, say).
    std::sort(B.Succs.begin(), B.Succs.end());
    B.Succs.erase(std::unique(B.Succs.begin(), B.Succs.end()),
                  B.Succs.end());
  }

  // Handler edges: every block inside a protected range can reach the
  // handler. Blocks were split at range boundaries, so containment of
  // the block's start offset is containment of the whole block.
  for (uint32_t K : G.ValidHandlers) {
    const ExceptionTableEntry &E = Table[K];
    uint32_t H = G.blockAtOffset(E.HandlerPc);
    for (uint32_t BId = 0; BId < G.Blocks.size(); ++BId) {
      CfgBlock &B = G.Blocks[BId];
      if (B.StartOffset >= E.StartPc && B.StartOffset < E.EndPc)
        if (std::find(B.Handlers.begin(), B.Handlers.end(), H) ==
            B.Handlers.end())
          B.Handlers.push_back(H);
    }
  }
  return G;
}
