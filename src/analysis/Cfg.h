//===- Cfg.h - Bytecode control-flow graph ---------------------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Basic-block control-flow graph over a decoded instruction vector:
/// fallthrough, branch, and switch edges, plus exception-handler edges
/// from the Code attribute's exception table. Blocks are additionally
/// split at protected-range boundaries so every block lies entirely
/// inside or outside each handler's range. Construction validates branch
/// targets and handler entries, reporting defects as typed diagnostics
/// and dropping the bogus edges rather than failing.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_ANALYSIS_CFG_H
#define CJPACK_ANALYSIS_CFG_H

#include "analysis/Diagnostics.h"
#include "bytecode/Instruction.h"
#include "classfile/ClassFile.h"
#include <unordered_map>
#include <vector>

namespace cjpack::analysis {

inline constexpr uint32_t NoBlock = 0xFFFFFFFFu;

/// One basic block: a maximal straight-line instruction range.
struct CfgBlock {
  uint32_t FirstInsn = 0; ///< index into the instruction vector
  uint32_t LastInsn = 0;  ///< inclusive
  uint32_t StartOffset = 0;
  uint32_t EndOffset = 0; ///< offset one past the last instruction
  /// Normal-flow successor block ids (fallthrough, branch, switch).
  std::vector<uint32_t> Succs;
  /// Handler block ids reachable if any instruction here throws.
  std::vector<uint32_t> Handlers;
  /// True when the block ends the code array with an instruction that
  /// can fall through (the fall-off-end defect, if the block is live).
  bool FallsOffEnd = false;
};

/// The graph plus the maps needed to walk it.
struct Cfg {
  std::vector<CfgBlock> Blocks;
  /// Block id containing each instruction (parallel to the insn vector).
  std::vector<uint32_t> InsnToBlock;
  /// Instruction index at each bytecode offset.
  std::unordered_map<uint32_t, uint32_t> OffsetToInsn;
  /// Exception entries that survived validation, as (table index) ids.
  std::vector<uint32_t> ValidHandlers;

  /// Block whose first instruction sits at \p Offset, or NoBlock.
  uint32_t blockAtOffset(uint32_t Offset) const {
    auto It = OffsetToInsn.find(Offset);
    if (It == OffsetToInsn.end())
      return NoBlock;
    uint32_t B = InsnToBlock[It->second];
    return Blocks[B].FirstInsn == It->second ? B : NoBlock;
  }
};

/// True when \p O never transfers control to the next instruction
/// (goto, switch, return family, athrow, ret).
bool isTerminator(Op O);

/// True for the two-way conditional branches (if*, ifnull/ifnonnull).
bool isConditionalBranch(Op O);

/// Builds the CFG for \p Insns with exception table \p Table over a code
/// array of \p CodeLen bytes. Invalid branch targets and handler entries
/// are reported into \p Diags (tagged with \p Method) and dropped.
Cfg buildCfg(const std::vector<Insn> &Insns,
             const std::vector<ExceptionTableEntry> &Table, uint32_t CodeLen,
             const std::string &Method, std::vector<Diagnostic> &Diags);

} // namespace cjpack::analysis

#endif // CJPACK_ANALYSIS_CFG_H
