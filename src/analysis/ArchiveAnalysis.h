//===- ArchiveAnalysis.h - Whole-archive static analysis -------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-archive static analysis over the classes of one jar/.cjp: a
/// class hierarchy (superclass/interface edges with cycle and
/// missing-ancestor detection and least-common-superclass queries), a
/// cross-reference resolver that checks every Fieldref/Methodref/
/// InterfaceMethodref against its defining class by walking the
/// hierarchy (JVMS 5.4.3 approximated to the archive's closed world —
/// targets outside the archive get a clean "external" verdict), and a
/// reachability pass that finds private members and constant-pool
/// entries no retained structure references.
///
/// Three consumers: `packtool lint` reports the diagnostics,
/// PackOptions::StripUnreferenced drops the dead members (and with them
/// their pool entries) before encoding, and the bytecode verifier joins
/// in-archive reference types at their least common superclass instead
/// of collapsing them to the untyped Ref.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_ANALYSIS_ARCHIVEANALYSIS_H
#define CJPACK_ANALYSIS_ARCHIVEANALYSIS_H

#include "analysis/Diagnostics.h"
#include "classfile/ClassFile.h"
#include "support/Error.h"
#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cjpack::analysis {

/// Sentinel hierarchy ids for the verifier's typed-reference tracking.
/// Real nodes are non-negative indices into a ClassHierarchy.
inline constexpr int32_t ClassNone = -1; ///< unknown / untracked reference
inline constexpr int32_t ClassNull = -2; ///< aconst_null (join identity)

/// One class in the hierarchy: either defined by a classfile in the
/// archive (Def non-null) or external — mentioned as a superclass,
/// interface, or reference owner but not present.
struct HierarchyNode {
  std::string_view Name; ///< borrowed from the defining class's pool
  int32_t Super = ClassNone; ///< node id; ClassNone for roots/unknown
  std::vector<int32_t> Interfaces;
  const ClassFile *Def = nullptr; ///< null for external classes
  int32_t ClassIndex = -1;        ///< index into the build input, or -1
  bool IsInterface = false;
  /// True when the node sits on a superclass/superinterface cycle;
  /// ancestor walks treat such nodes as boundaries.
  bool OnCycle = false;

  bool defined() const { return Def != nullptr; }
};

/// Verdict of resolving one member reference against the archive.
enum class RefVerdict : uint8_t {
  Resolved,     ///< found the defining class and member in the archive
  External,     ///< target (or the search boundary) is outside the archive
  Dangling,     ///< the search completed in-archive without a match
  Ambiguous,    ///< several unrelated maximally-specific default methods
  KindMismatch, ///< Methodref naming an interface, or the reverse
};

/// Stable lowercase name for \p V (e.g. "resolved", "dangling").
const char *refVerdictName(RefVerdict V);

/// The outcome of one reference resolution.
struct RefResolution {
  RefVerdict Verdict = RefVerdict::External;
  int32_t DefiningClass = ClassNone; ///< hierarchy id when Resolved
  const MemberInfo *Member = nullptr; ///< defining member when Resolved
  /// Position of Member in the defining class's Fields/Methods vector.
  int32_t MemberIndex = -1;
};

/// The superclass/interface graph over every class an archive defines or
/// mentions as an ancestor. Nodes hold borrowed ClassFile pointers: a
/// hierarchy (and anything built from it) is valid only while the class
/// vector it was built from stays alive and unmodified.
class ClassHierarchy {
public:
  /// Builds the hierarchy over \p Classes. Classes whose this_class
  /// entry is unusable are skipped; when two classes share an internal
  /// name the first wins and the rest land in duplicates().
  static ClassHierarchy build(const std::vector<ClassFile> &Classes);

  size_t size() const { return Nodes.size(); }

  const HierarchyNode &node(int32_t Id) const {
    return Nodes[static_cast<size_t>(Id)];
  }

  /// Node id of \p Name, or ClassNone when the archive neither defines
  /// nor mentions it.
  int32_t lookup(std::string_view Name) const;

  /// True when \p Id names a class the archive defines.
  bool isDefined(int32_t Id) const {
    return Id >= 0 && Nodes[static_cast<size_t>(Id)].Def != nullptr;
  }

  /// Input indices of classes dropped because an earlier class already
  /// claimed their internal name.
  const std::vector<int32_t> &duplicates() const { return Duplicates; }

  /// Input indices of classes skipped for an unusable this_class entry.
  const std::vector<int32_t> &malformed() const { return Malformed; }

  /// Nearest class on both superclass chains, or ClassNone when either
  /// side is undefined or the chains only meet outside the archive.
  int32_t leastCommonSuperclass(int32_t A, int32_t B) const;

  /// True when \p Base is \p Derived or appears in \p Derived's
  /// superclass/superinterface closure (within the archive).
  bool isSubtypeOf(int32_t Derived, int32_t Base) const;

  /// Join for the verifier's typed-reference lattice: ClassNull is the
  /// identity, ClassNone absorbs, and two in-archive classes meet at
  /// their least common superclass.
  int32_t joinRefClasses(int32_t A, int32_t B) const;

  /// Resolves a Fieldref named \p OwnerName.\p Name:\p Desc following
  /// JVMS 5.4.3.2: the owner's own fields, then superinterfaces, then
  /// the superclass chain.
  RefResolution resolveField(std::string_view OwnerName,
                             std::string_view Name,
                             std::string_view Desc) const;

  /// Resolves a Methodref (\p InterfaceKind false) or InterfaceMethodref
  /// (true) following JVMS 5.4.3.3/5.4.3.4: kind check against the
  /// owner, the superclass chain, then maximally-specific superinterface
  /// methods. java/lang/Object's public methods are known by name, so
  /// Object-rooted searches can still prove a reference dangling.
  RefResolution resolveMethod(std::string_view OwnerName,
                              std::string_view Name,
                              std::string_view Desc,
                              bool InterfaceKind) const;

private:
  int32_t internNode(std::string_view Name);
  void computeCycles();

  std::vector<HierarchyNode> Nodes;
  std::unordered_map<std::string_view, int32_t> ByName;
  std::vector<int32_t> Duplicates;
  std::vector<int32_t> Malformed;
};

/// A private member (field or method) no reference in the archive can
/// resolve to, identified by input-class index and member position.
struct DeadMember {
  int32_t ClassIndex = -1;
  bool IsField = false;
  uint32_t MemberIndex = 0;
};

/// Everything analyzeArchive learns about one archive. Holds the
/// hierarchy (borrowed ClassFile pointers — see ClassHierarchy).
struct ArchiveAnalysisReport {
  ClassHierarchy Hierarchy;
  /// Structural findings: cycles, missing ancestors, duplicate classes,
  /// dangling/ambiguous/kind-mismatched refs, malformed classes. Dead
  /// members/entries are reported through the fields below, not here —
  /// dead weight is a size opportunity, not a defect.
  std::vector<Diagnostic> Diags;
  size_t ClassesAnalyzed = 0;
  size_t RefsChecked = 0;
  size_t RefsResolved = 0;
  size_t RefsExternal = 0;
  /// Private members nothing in the archive references.
  std::vector<DeadMember> DeadMembers;
  /// Constant-pool entries (across all classes) unreachable from any
  /// retained structure once dead members are excluded from the roots.
  size_t DeadPoolEntries = 0;

  bool clean() const { return Diags.empty(); }
};

/// Runs the full whole-archive analysis: hierarchy construction, cycle
/// and missing-ancestor detection, resolution of every member ref, and
/// the dead-member/dead-pool reachability pass. Total on hostile input:
/// malformed classes become diagnostics, never crashes.
ArchiveAnalysisReport analyzeArchive(const std::vector<ClassFile> &Classes);

/// What stripUnreferencedMembers removed.
struct StripStats {
  size_t FieldsRemoved = 0;
  size_t MethodsRemoved = 0;
  size_t membersRemoved() const { return FieldsRemoved + MethodsRemoved; }
};

/// Drops every dead private member found by analyzeArchive from
/// \p Classes and re-canonicalizes the modified classes so the members'
/// constant-pool entries vanish too. Requires prepared classes
/// (prepareForPacking); liveness is conservative — a reference from
/// anywhere in the archive, even dead code, keeps a member. The packer
/// gates this behind a restore-then-verify check (PackOptions::
/// StripUnreferenced); callers using it directly should do the same.
Expected<StripStats> stripUnreferencedMembers(std::vector<ClassFile> &Classes);

/// True for names under the platform namespaces (java/, javax/, jdk/,
/// sun/) that an archive legitimately references without defining;
/// everything else missing from the archive is a missing ancestor.
bool isPlatformClassName(std::string_view Name);

/// True when \p Name:\p Desc is one of java/lang/Object's fixed public/
/// protected methods — the one external class resolution must know to
/// call a search at an Object boundary complete.
bool isKnownObjectMethod(std::string_view Name, std::string_view Desc);

} // namespace cjpack::analysis

#endif // CJPACK_ANALYSIS_ARCHIVEANALYSIS_H
