//===- Verifier.cpp - Worklist bytecode verifier --------------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "analysis/ArchiveAnalysis.h"
#include "classfile/Descriptor.h"
#include "classfile/Reader.h"
#include <array>
#include <deque>
#include <set>

using namespace cjpack;
using namespace cjpack::analysis;

const char *cjpack::analysis::diagKindName(DiagKind K) {
  switch (K) {
  case DiagKind::MalformedCode: return "malformed-code";
  case DiagKind::StackUnderflow: return "stack-underflow";
  case DiagKind::StackOverflow: return "stack-overflow";
  case DiagKind::MergeDepthMismatch: return "merge-depth-mismatch";
  case DiagKind::TypeClash: return "type-clash";
  case DiagKind::BadLocal: return "bad-local";
  case DiagKind::FallOffEnd: return "fall-off-end";
  case DiagKind::UnreachableCode: return "unreachable-code";
  case DiagKind::InvalidBranchTarget: return "invalid-branch-target";
  case DiagKind::InvalidHandlerRange: return "invalid-handler-range";
  case DiagKind::SuperclassCycle: return "superclass-cycle";
  case DiagKind::MissingAncestor: return "missing-ancestor";
  case DiagKind::DuplicateClass: return "duplicate-class";
  case DiagKind::DanglingRef: return "dangling-ref";
  case DiagKind::AmbiguousRef: return "ambiguous-ref";
  case DiagKind::RefKindMismatch: return "ref-kind-mismatch";
  }
  return "?";
}

std::string cjpack::analysis::formatDiagnostic(const Diagnostic &D) {
  std::string Out = diagKindName(D.Kind);
  Out += ": ";
  if (!D.Method.empty()) {
    Out += D.Method;
    Out += " ";
  }
  if (D.Offset != NoOffset) {
    Out += "at offset ";
    Out += std::to_string(D.Offset);
    Out += " ";
  }
  Out += "- ";
  Out += D.Message;
  return Out;
}

namespace {

/// Coarse type of the 5-way load/store opcode groups (i/l/f/d/a).
VType typeOfGroup5(unsigned K) {
  static constexpr VType Types[5] = {VType::Int, VType::Long, VType::Float,
                                     VType::Double, VType::Ref};
  return Types[K];
}

/// Identifies the typed local load/store opcodes (explicit and _N forms).
bool loadStoreInfo(Op O, bool &IsLoad, VType &T) {
  uint8_t N = static_cast<uint8_t>(O);
  if (N >= 21 && N <= 25) {
    IsLoad = true;
    T = typeOfGroup5(N - 21u);
    return true;
  }
  if (N >= 26 && N <= 45) {
    IsLoad = true;
    T = typeOfGroup5((N - 26u) / 4u);
    return true;
  }
  if (N >= 54 && N <= 58) {
    IsLoad = false;
    T = typeOfGroup5(N - 54u);
    return true;
  }
  if (N >= 59 && N <= 78) {
    IsLoad = false;
    T = typeOfGroup5((N - 59u) / 4u);
    return true;
  }
  return false;
}

VType charVType(char C) {
  switch (C) {
  case 'I': return VType::Int;
  case 'J': return VType::Long;
  case 'F': return VType::Float;
  case 'D': return VType::Double;
  case 'A': return VType::Ref;
  default: return VType::Unknown;
  }
}

/// The abstract interpreter: applies one instruction to a frame,
/// reporting defects into Sink (when set — the fixpoint runs silently,
/// the post-fixpoint reporting pass runs loud). Returns false when the
/// frame is no longer meaningful and block interpretation must stop.
struct Interp {
  const ClassFile &CF;
  uint32_t MaxStack;
  uint32_t MaxLocals;
  const std::string &Method;
  std::vector<Diagnostic> *Sink = nullptr;
  /// Non-null in whole-archive mode: Ref slots then carry hierarchy ids
  /// in Frame::StackCls/LocalCls, parallel to Stack/Locals.
  const ClassHierarchy *H = nullptr;
  /// Class id of the slot popSlot most recently removed (typed mode).
  int32_t PoppedCls = ClassNone;

  bool typed() const { return H != nullptr; }

  bool fail(DiagKind K, const Insn &I, std::string Msg) {
    if (Sink)
      Sink->push_back({K, Method, I.Offset, std::move(Msg)});
    return false;
  }

  //===------------------------------------------------------------===//
  // Stack primitives
  //===------------------------------------------------------------===//

  bool popSlot(Frame &F, const Insn &I, AType &Out) {
    if (F.Stack.empty())
      return fail(DiagKind::StackUnderflow, I, "pop from an empty stack");
    Out = F.Stack.back();
    F.Stack.pop_back();
    if (typed()) {
      PoppedCls = F.StackCls.empty() ? ClassNone : F.StackCls.back();
      if (!F.StackCls.empty())
        F.StackCls.pop_back();
    }
    return true;
  }

  bool popExpect(Frame &F, const Insn &I, AType Want) {
    AType Got = AType::Top;
    if (!popSlot(F, I, Got))
      return false;
    if (Got != Want)
      return fail(DiagKind::TypeClash, I,
                  std::string("expected ") + atypeName(Want) + ", found " +
                      atypeName(Got));
    return true;
  }

  bool popValue(Frame &F, const Insn &I, VType T) {
    switch (T) {
    case VType::Int: return popExpect(F, I, AType::Int);
    case VType::Float: return popExpect(F, I, AType::Float);
    case VType::Ref: return popExpect(F, I, AType::Ref);
    case VType::Long:
      return popExpect(F, I, AType::Long2) && popExpect(F, I, AType::Long);
    case VType::Double:
      return popExpect(F, I, AType::Double2) &&
             popExpect(F, I, AType::Double);
    default:
      return fail(DiagKind::MalformedCode, I, "untypable operand");
    }
  }

  /// Pops one category-1 slot (any type but a pair half).
  bool popCat1(Frame &F, const Insn &I, AType &Out) {
    if (!popSlot(F, I, Out))
      return false;
    if (isCat2Second(Out) || isCat2Start(Out))
      return fail(DiagKind::TypeClash, I,
                  "stack operation splits a category-2 value");
    return true;
  }

  /// Pops exactly two slots forming whole values: one category-2 pair
  /// or two category-1 values. Out[0] is the old top.
  bool popPair2(Frame &F, const Insn &I, std::array<AType, 2> &Out) {
    if (!popSlot(F, I, Out[0]) || !popSlot(F, I, Out[1]))
      return false;
    if (isCat2Second(Out[0])) {
      bool Matched = (Out[0] == AType::Long2 && Out[1] == AType::Long) ||
                     (Out[0] == AType::Double2 && Out[1] == AType::Double);
      if (!Matched)
        return fail(DiagKind::TypeClash, I,
                    "category-2 pair is split on the stack");
      return true;
    }
    if (isCat2Start(Out[0]) || isCat2Start(Out[1]) || isCat2Second(Out[1]))
      return fail(DiagKind::TypeClash, I,
                  "stack operation splits a category-2 value");
    return true;
  }

  void pushPair2(Frame &F, const std::array<AType, 2> &G) {
    F.Stack.push_back(G[1]);
    F.Stack.push_back(G[0]);
    if (typed()) {
      F.StackCls.push_back(ClassNone);
      F.StackCls.push_back(ClassNone);
    }
  }

  bool push(Frame &F, const Insn &I, AType T, int32_t Cls = ClassNone) {
    F.Stack.push_back(T);
    if (typed())
      F.StackCls.push_back(T == AType::Ref ? Cls : ClassNone);
    if (F.Stack.size() > MaxStack)
      return fail(DiagKind::StackOverflow, I,
                  "operand stack exceeds max_stack " +
                      std::to_string(MaxStack));
    return true;
  }

  bool pushValue(Frame &F, const Insn &I, VType T, int32_t Cls = ClassNone) {
    switch (T) {
    case VType::Int: return push(F, I, AType::Int);
    case VType::Float: return push(F, I, AType::Float);
    case VType::Ref: return push(F, I, AType::Ref, Cls);
    case VType::Long:
      return push(F, I, AType::Long) && push(F, I, AType::Long2);
    case VType::Double:
      return push(F, I, AType::Double) && push(F, I, AType::Double2);
    case VType::Void:
      return true;
    default:
      return fail(DiagKind::MalformedCode, I, "untypable result");
    }
  }

  //===------------------------------------------------------------===//
  // Locals
  //===------------------------------------------------------------===//

  bool checkLocalRange(const Insn &I, uint32_t Idx, unsigned Width) {
    if (static_cast<uint64_t>(Idx) + Width > MaxLocals)
      return fail(DiagKind::BadLocal, I,
                  "local " + std::to_string(Idx) + " out of range (max_locals " +
                      std::to_string(MaxLocals) + ")");
    return true;
  }

  /// Writes \p T to local \p Idx, invalidating any category-2 pair the
  /// write tears apart.
  void writeLocal(Frame &F, uint32_t Idx, AType T, int32_t Cls = ClassNone) {
    bool Track = typed() && F.LocalCls.size() == F.Locals.size();
    if (isCat2Second(F.Locals[Idx]) && Idx > 0) {
      F.Locals[Idx - 1] = AType::Top;
      if (Track)
        F.LocalCls[Idx - 1] = ClassNone;
    }
    if (isCat2Start(F.Locals[Idx]) && Idx + 1 < F.Locals.size()) {
      F.Locals[Idx + 1] = AType::Top;
      if (Track)
        F.LocalCls[Idx + 1] = ClassNone;
    }
    F.Locals[Idx] = T;
    if (Track)
      F.LocalCls[Idx] = T == AType::Ref ? Cls : ClassNone;
  }

  bool localIndexOf(const Insn &I, uint32_t &Idx) {
    if (implicitLocalIndex(I.Opcode, Idx))
      return true;
    Idx = I.LocalIndex;
    return true;
  }

  bool doLoad(Frame &F, const Insn &I, VType T, uint32_t Idx) {
    if (!checkLocalRange(I, Idx, slotWidth(T)))
      return false;
    std::vector<AType> Want;
    appendSlots(Want, T);
    for (size_t K = 0; K < Want.size(); ++K)
      if (F.Locals[Idx + K] != Want[K])
        return fail(DiagKind::BadLocal, I,
                    "load expects " + std::string(atypeName(Want[K])) +
                        " in local " + std::to_string(Idx + K) + ", found " +
                        atypeName(F.Locals[Idx + K]));
    int32_t Cls = ClassNone;
    if (typed() && T == VType::Ref && Idx < F.LocalCls.size())
      Cls = F.LocalCls[Idx];
    return pushValue(F, I, T, Cls);
  }

  bool doStore(Frame &F, const Insn &I, VType T, uint32_t Idx) {
    if (!checkLocalRange(I, Idx, slotWidth(T)))
      return false;
    if (T == VType::Ref) {
      // astore also stores jsr return addresses.
      AType Got = AType::Top;
      if (!popSlot(F, I, Got))
        return false;
      if (Got != AType::Ref && Got != AType::RetAddr)
        return fail(DiagKind::TypeClash, I,
                    std::string("astore of ") + atypeName(Got));
      writeLocal(F, Idx, Got, PoppedCls);
      return true;
    }
    if (!popValue(F, I, T))
      return false;
    std::vector<AType> Slots;
    appendSlots(Slots, T);
    for (size_t K = 0; K < Slots.size(); ++K)
      writeLocal(F, Idx + static_cast<uint32_t>(K), Slots[K]);
    return true;
  }

  //===------------------------------------------------------------===//
  // Constant-pool access (hostile-input safe)
  //===------------------------------------------------------------===//

  const CpEntry *cpAt(uint16_t Idx, std::initializer_list<CpTag> Tags) {
    if (!CF.CP.isValidIndex(Idx))
      return nullptr;
    const CpEntry &E = CF.CP.entry(Idx);
    for (CpTag T : Tags)
      if (E.Tag == T)
        return &E;
    return nullptr;
  }

  /// Descriptor text of a member / invokedynamic reference, via its
  /// NameAndType; null when any link is malformed.
  const std::string_view *memberDesc(const CpEntry &Ref) {
    const CpEntry *NT = cpAt(Ref.Ref2, {CpTag::NameAndType});
    if (!NT)
      return nullptr;
    const CpEntry *Desc = cpAt(NT->Ref2, {CpTag::Utf8});
    return Desc ? &Desc->Text : nullptr;
  }

  //===------------------------------------------------------------===//
  // Typed-reference helpers (whole-archive mode only)
  //===------------------------------------------------------------===//

  /// Hierarchy id of the class named by Class entry \p Idx; ClassNone
  /// for arrays, malformed links, or classes the archive never mentions.
  int32_t classOfCpClass(uint16_t Idx) {
    const CpEntry *E = cpAt(Idx, {CpTag::Class});
    if (!E)
      return ClassNone;
    const CpEntry *N = cpAt(E->Ref1, {CpTag::Utf8});
    if (!N || N->Text.empty() || N->Text[0] == '[')
      return ClassNone;
    return H->lookup(N->Text);
  }

  /// Hierarchy id of a non-array class type, ClassNone otherwise.
  int32_t classOfType(const TypeDesc &T) {
    if (T.Dims != 0 || !T.isClass())
      return ClassNone;
    return H->lookup(T.ClassName);
  }

  int32_t classOfFieldDesc(std::string_view Desc) {
    auto T = parseFieldDescriptor(Desc);
    return T ? classOfType(*T) : ClassNone;
  }

  int32_t classOfMethodReturn(std::string_view Desc) {
    auto M = parseMethodDescriptor(Desc);
    return M ? classOfType(M->Ret) : ClassNone;
  }

  //===------------------------------------------------------------===//
  // Per-opcode transfer
  //===------------------------------------------------------------===//

  bool step(Frame &F, const Insn &I) {
    bool IsLoad = false;
    VType LT = VType::Unknown;
    if (loadStoreInfo(I.Opcode, IsLoad, LT)) {
      uint32_t Idx = 0;
      localIndexOf(I, Idx);
      return IsLoad ? doLoad(F, I, LT, Idx) : doStore(F, I, LT, Idx);
    }

    switch (I.Opcode) {
    case Op::IInc: {
      if (!checkLocalRange(I, I.LocalIndex, 1))
        return false;
      if (F.Locals[I.LocalIndex] != AType::Int)
        return fail(DiagKind::BadLocal, I,
                    "iinc of local " + std::to_string(I.LocalIndex) +
                        " holding " +
                        atypeName(F.Locals[I.LocalIndex]));
      return true;
    }
    case Op::Ret: {
      if (!checkLocalRange(I, I.LocalIndex, 1))
        return false;
      if (F.Locals[I.LocalIndex] != AType::RetAddr)
        return fail(DiagKind::BadLocal, I,
                    "ret through local " + std::to_string(I.LocalIndex) +
                        " holding " +
                        atypeName(F.Locals[I.LocalIndex]));
      return true;
    }

    case Op::Ldc:
    case Op::LdcW: {
      const CpEntry *E =
          cpAt(I.CpIndex, {CpTag::Integer, CpTag::Float, CpTag::String,
                           CpTag::Class, CpTag::MethodType,
                           CpTag::MethodHandle});
      if (!E)
        return fail(DiagKind::MalformedCode, I,
                    "ldc of a non-loadable constant-pool entry");
      switch (E->Tag) {
      case CpTag::Integer: return pushValue(F, I, VType::Int);
      case CpTag::Float: return pushValue(F, I, VType::Float);
      default: return pushValue(F, I, VType::Ref);
      }
    }
    case Op::Ldc2W: {
      const CpEntry *E = cpAt(I.CpIndex, {CpTag::Long, CpTag::Double});
      if (!E)
        return fail(DiagKind::MalformedCode, I,
                    "ldc2_w of a non-wide constant-pool entry");
      return pushValue(F, I,
                       E->Tag == CpTag::Long ? VType::Long : VType::Double);
    }

    case Op::Pop: {
      AType T;
      return popCat1(F, I, T);
    }
    case Op::Pop2: {
      std::array<AType, 2> G;
      return popPair2(F, I, G);
    }
    case Op::Dup: {
      AType T;
      if (!popCat1(F, I, T))
        return false;
      int32_t C = PoppedCls;
      return push(F, I, T, C) && push(F, I, T, C);
    }
    case Op::DupX1: {
      AType V1, V2;
      if (!popCat1(F, I, V1))
        return false;
      int32_t C1 = PoppedCls;
      if (!popCat1(F, I, V2))
        return false;
      int32_t C2 = PoppedCls;
      return push(F, I, V1, C1) && push(F, I, V2, C2) && push(F, I, V1, C1);
    }
    case Op::DupX2: {
      AType V1;
      std::array<AType, 2> G;
      if (!popCat1(F, I, V1) || !popPair2(F, I, G))
        return false;
      if (!push(F, I, V1))
        return false;
      pushPair2(F, G);
      // The last push is the deepest point, so its own check suffices.
      return push(F, I, V1);
    }
    case Op::Dup2: {
      std::array<AType, 2> G;
      if (!popPair2(F, I, G))
        return false;
      pushPair2(F, G);
      pushPair2(F, G);
      if (F.Stack.size() > MaxStack)
        return fail(DiagKind::StackOverflow, I,
                    "operand stack exceeds max_stack " +
                        std::to_string(MaxStack));
      return true;
    }
    case Op::Dup2X1: {
      std::array<AType, 2> G;
      AType V;
      if (!popPair2(F, I, G) || !popCat1(F, I, V))
        return false;
      pushPair2(F, G);
      if (!push(F, I, V))
        return false;
      pushPair2(F, G);
      if (F.Stack.size() > MaxStack)
        return fail(DiagKind::StackOverflow, I,
                    "operand stack exceeds max_stack " +
                        std::to_string(MaxStack));
      return true;
    }
    case Op::Dup2X2: {
      std::array<AType, 2> G1, G2;
      if (!popPair2(F, I, G1) || !popPair2(F, I, G2))
        return false;
      pushPair2(F, G1);
      pushPair2(F, G2);
      pushPair2(F, G1);
      if (F.Stack.size() > MaxStack)
        return fail(DiagKind::StackOverflow, I,
                    "operand stack exceeds max_stack " +
                        std::to_string(MaxStack));
      return true;
    }
    case Op::Swap: {
      AType V1, V2;
      if (!popCat1(F, I, V1))
        return false;
      int32_t C1 = PoppedCls;
      if (!popCat1(F, I, V2))
        return false;
      int32_t C2 = PoppedCls;
      return push(F, I, V1, C1) && push(F, I, V2, C2);
    }

    case Op::GetField:
    case Op::GetStatic:
    case Op::PutField:
    case Op::PutStatic: {
      const CpEntry *Ref = cpAt(I.CpIndex, {CpTag::FieldRef});
      const std::string_view *Desc = Ref ? memberDesc(*Ref) : nullptr;
      VType T = Desc ? vtypeOfFieldDescriptor(*Desc) : VType::Unknown;
      if (T == VType::Unknown || T == VType::Void)
        return fail(DiagKind::MalformedCode, I,
                    "field access with a malformed constant-pool reference");
      if (I.Opcode == Op::GetField || I.Opcode == Op::GetStatic) {
        if (I.Opcode == Op::GetField && !popExpect(F, I, AType::Ref))
          return false;
        int32_t Cls =
            typed() && T == VType::Ref ? classOfFieldDesc(*Desc) : ClassNone;
        return pushValue(F, I, T, Cls);
      }
      if (!popValue(F, I, T))
        return false;
      return I.Opcode != Op::PutField || popExpect(F, I, AType::Ref);
    }

    case Op::InvokeVirtual:
    case Op::InvokeSpecial:
    case Op::InvokeStatic:
    case Op::InvokeInterface:
    case Op::InvokeDynamic: {
      const CpEntry *Ref = nullptr;
      if (I.Opcode == Op::InvokeVirtual)
        Ref = cpAt(I.CpIndex, {CpTag::MethodRef});
      else if (I.Opcode == Op::InvokeInterface)
        Ref = cpAt(I.CpIndex, {CpTag::InterfaceMethodRef});
      else if (I.Opcode == Op::InvokeDynamic)
        Ref = cpAt(I.CpIndex, {CpTag::InvokeDynamic});
      else
        Ref = cpAt(I.CpIndex,
                   {CpTag::MethodRef, CpTag::InterfaceMethodRef});
      const std::string_view *Desc = Ref ? memberDesc(*Ref) : nullptr;
      std::vector<VType> Args;
      VType Ret = VType::Void;
      if (!Desc || !vtypesOfMethodDescriptor(*Desc, Args, Ret))
        return fail(DiagKind::MalformedCode, I,
                    "invoke with a malformed constant-pool reference");
      for (auto It = Args.rbegin(); It != Args.rend(); ++It)
        if (!popValue(F, I, *It))
          return false;
      if (I.Opcode != Op::InvokeStatic && I.Opcode != Op::InvokeDynamic &&
          !popExpect(F, I, AType::Ref))
        return false;
      int32_t RetCls =
          typed() && Ret == VType::Ref ? classOfMethodReturn(*Desc) : ClassNone;
      return pushValue(F, I, Ret, RetCls);
    }

    case Op::MultiANewArray: {
      if (!cpAt(I.CpIndex, {CpTag::Class}))
        return fail(DiagKind::MalformedCode, I,
                    "multianewarray of a non-class constant");
      if (I.Const < 1 || I.Const > 255)
        return fail(DiagKind::MalformedCode, I,
                    "multianewarray with dimension count " +
                        std::to_string(I.Const));
      for (int32_t K = 0; K < I.Const; ++K)
        if (!popExpect(F, I, AType::Int))
          return false;
      return pushValue(F, I, VType::Ref);
    }

    case Op::AThrow:
      return popExpect(F, I, AType::Ref);

    case Op::Jsr:
    case Op::JsrW:
      // The return address is pushed on the edge into the subroutine;
      // here only the room for it is checked.
      if (F.Stack.size() >= MaxStack)
        return fail(DiagKind::StackOverflow, I,
                    "no stack room for the jsr return address");
      return true;

    default:
      break;
    }

    // Generic class-reference validity (new/anewarray/checkcast/...).
    if (cpRefKind(I.Opcode) == CpRefKind::ClassRef &&
        !cpAt(I.CpIndex, {CpTag::Class}))
      return fail(DiagKind::MalformedCode, I,
                  std::string(opInfo(I.Opcode).Mnemonic) +
                      " of a non-class constant");

    // Everything else follows the static pop/push table.
    const OpInfo &Info = opInfo(I.Opcode);
    if (Info.Pops[0] == '*' || Info.Pushes[0] == '*')
      return fail(DiagKind::MalformedCode, I,
                  std::string("unmodelled opcode ") + Info.Mnemonic);
    size_t L = 0;
    while (Info.Pops[L])
      ++L;
    for (size_t K = L; K > 0; --K)
      if (!popValue(F, I, charVType(Info.Pops[K - 1])))
        return false;
    int32_t PushCls = ClassNone;
    if (typed()) {
      if (I.Opcode == Op::AConstNull)
        PushCls = ClassNull;
      else if (I.Opcode == Op::New || I.Opcode == Op::CheckCast)
        PushCls = classOfCpClass(I.CpIndex);
    }
    for (const char *P = Info.Pushes; *P; ++P)
      if (!pushValue(F, I, charVType(*P), PushCls))
        return false;
    return true;
  }
};

/// Guarded utf8 fetch (empty string on malformed links).
std::string_view safeUtf8(const ConstantPool &CP, uint16_t Idx) {
  if (!CP.isValidIndex(Idx) || CP.entry(Idx).Tag != CpTag::Utf8)
    return {};
  return CP.entry(Idx).Text;
}

std::string_view safeClassName(const ConstantPool &CP, uint16_t Idx) {
  if (!CP.isValidIndex(Idx) || CP.entry(Idx).Tag != CpTag::Class)
    return {};
  return safeUtf8(CP, CP.entry(Idx).Ref1);
}

} // namespace

MethodAnalysis cjpack::analysis::analyzeMethod(const ClassFile &CF,
                                               const MemberInfo &M,
                                               const std::string &Method,
                                               const ClassHierarchy *H) {
  MethodAnalysis R;
  auto Diag = [&](DiagKind K, uint32_t Offset, std::string Msg) {
    R.Diags.push_back({K, Method, Offset, std::move(Msg)});
  };

  const AttributeInfo *Attr = findAttribute(M.Attributes, "Code");
  if (!Attr)
    return R;
  R.HasCode = true;
  auto Code = parseCodeAttribute(*Attr, CF.CP);
  if (!Code) {
    Diag(DiagKind::MalformedCode, NoOffset,
         "Code attribute does not parse: " + Code.message());
    return R;
  }
  auto Insns = decodeCode(Code->Code);
  if (!Insns) {
    Diag(DiagKind::MalformedCode, NoOffset,
         "bytecode does not decode: " + Insns.message());
    return R;
  }
  R.Insns = std::move(*Insns);
  if (R.Insns.empty()) {
    Diag(DiagKind::MalformedCode, NoOffset, "empty code array");
    return R;
  }
  R.Decoded = true;
  uint32_t CodeLen = static_cast<uint32_t>(Code->Code.size());
  R.Graph = buildCfg(R.Insns, Code->ExceptionTable, CodeLen, Method, R.Diags);

  // Method-entry frame from the descriptor.
  Frame Entry;
  Entry.Locals.assign(Code->MaxLocals, AType::Top);
  std::vector<AType> ParamSlots;
  if (!(M.AccessFlags & AccStatic))
    ParamSlots.push_back(AType::Ref);
  std::vector<VType> Args;
  VType Ret = VType::Void;
  std::string_view Desc = safeUtf8(CF.CP, M.DescriptorIndex);
  if (!vtypesOfMethodDescriptor(Desc, Args, Ret)) {
    Diag(DiagKind::MalformedCode, NoOffset,
         "method descriptor does not parse: " + std::string(Desc));
    return R;
  }
  for (VType A : Args)
    appendSlots(ParamSlots, A);
  if (ParamSlots.size() > Entry.Locals.size()) {
    Diag(DiagKind::MalformedCode, NoOffset,
         "max_locals " + std::to_string(Code->MaxLocals) +
             " cannot hold the " + std::to_string(ParamSlots.size()) +
             " parameter slots");
    return R;
  }
  std::copy(ParamSlots.begin(), ParamSlots.end(), Entry.Locals.begin());
  if (H) {
    // Seed the typed-reference tracking: `this` is the current class,
    // reference parameters carry their descriptor's class.
    Entry.LocalCls.assign(Entry.Locals.size(), ClassNone);
    size_t Slot = 0;
    if (!(M.AccessFlags & AccStatic))
      Entry.LocalCls[Slot++] = H->lookup(safeClassName(CF.CP, CF.ThisClass));
    if (auto MD = parseMethodDescriptor(Desc))
      for (const TypeDesc &P : MD->Params) {
        if (P.Dims == 0 && P.isClass())
          Entry.LocalCls[Slot] = H->lookup(P.ClassName);
        Slot += slotWidth(vtypeOf(P));
      }
  }

  // Worklist fixpoint. The silent interpreter drives it; diagnostics
  // come from a deterministic reporting pass over the final frames so
  // revisits cannot duplicate them.
  size_t NB = R.Graph.Blocks.size();
  R.BlockEntry.assign(NB, std::nullopt);
  std::deque<uint32_t> Work;
  std::vector<bool> InWork(NB, false);
  auto Enqueue = [&](uint32_t B) {
    if (!InWork[B]) {
      InWork[B] = true;
      Work.push_back(B);
    }
  };
  // (from-offset, to-block) pairs whose merge had mismatched depths.
  std::set<std::pair<uint32_t, uint32_t>> DepthMismatches;
  auto Propagate = [&](uint32_t To, const Frame &F, uint32_t FromOffset) {
    if (!R.BlockEntry[To]) {
      R.BlockEntry[To] = F;
      Enqueue(To);
      return;
    }
    switch (mergeFrame(*R.BlockEntry[To], F, H)) {
    case MergeOutcome::Changed:
      Enqueue(To);
      break;
    case MergeOutcome::DepthMismatch:
      DepthMismatches.emplace(FromOffset, To);
      break;
    case MergeOutcome::Unchanged:
      break;
    }
  };

  Interp Silent{CF, Code->MaxStack, Code->MaxLocals, Method, nullptr, H};
  R.BlockEntry[0] = std::move(Entry);
  Enqueue(0);
  auto RunBlock = [&](Interp &In, uint32_t BId, bool PropagateOut) {
    const CfgBlock &B = R.Graph.Blocks[BId];
    Frame F = *R.BlockEntry[BId];
    for (uint32_t K = B.FirstInsn; K <= B.LastInsn; ++K) {
      if (PropagateOut)
        // Any instruction here can throw: the handler sees this point's
        // locals with just the thrown reference on the stack.
        for (uint32_t HId : B.Handlers) {
          Frame HF;
          HF.Stack.push_back(AType::Ref);
          HF.Locals = F.Locals;
          if (H) {
            // The thrown reference's class is not modelled.
            HF.StackCls.push_back(ClassNone);
            HF.LocalCls = F.LocalCls;
          }
          Propagate(HId, HF, R.Insns[K].Offset);
        }
      if (!In.step(F, R.Insns[K]))
        return;
    }
    if (!PropagateOut)
      return;
    const Insn &Last = R.Insns[B.LastInsn];
    for (uint32_t S : B.Succs) {
      Frame Out = F;
      if ((Last.Opcode == Op::Jsr || Last.Opcode == Op::JsrW) &&
          R.Graph.Blocks[S].StartOffset ==
              static_cast<uint32_t>(Last.BranchTarget)) {
        Out.Stack.push_back(AType::RetAddr);
        if (H)
          Out.StackCls.push_back(ClassNone);
      }
      Propagate(S, Out, Last.Offset);
    }
  };
  while (!Work.empty()) {
    uint32_t BId = Work.front();
    Work.pop_front();
    InWork[BId] = false;
    RunBlock(Silent, BId, /*PropagateOut=*/true);
  }

  // Reporting pass over the fixpoint frames.
  Interp Loud{CF, Code->MaxStack, Code->MaxLocals, Method, &R.Diags, H};
  for (uint32_t BId = 0; BId < NB; ++BId) {
    if (!R.BlockEntry[BId]) {
      Diag(DiagKind::UnreachableCode, R.Graph.Blocks[BId].StartOffset,
           "no execution path reaches this code");
      continue;
    }
    RunBlock(Loud, BId, /*PropagateOut=*/false);
    if (R.Graph.Blocks[BId].FallsOffEnd)
      Diag(DiagKind::FallOffEnd,
           R.Insns[R.Graph.Blocks[BId].LastInsn].Offset,
           "execution can run past the end of the code array");
  }
  for (const auto &[FromOffset, To] : DepthMismatches)
    Diag(DiagKind::MergeDepthMismatch, FromOffset,
         "stack depth disagrees with other paths into offset " +
             std::to_string(R.Graph.Blocks[To].StartOffset));
  return R;
}

VerifyResult cjpack::analysis::verifyClass(const ClassFile &CF,
                                           const ClassHierarchy *H) {
  VerifyResult R;
  std::string_view ClassName = safeClassName(CF.CP, CF.ThisClass);
  if (ClassName.empty())
    ClassName = "<class>";
  for (const MemberInfo &M : CF.Methods) {
    std::string_view Name = safeUtf8(CF.CP, M.NameIndex);
    std::string_view Desc = safeUtf8(CF.CP, M.DescriptorIndex);
    std::string Method(ClassName);
    Method += '.';
    Method += Name.empty() ? std::string_view("<method>") : Name;
    Method += Desc;
    MethodAnalysis A = analyzeMethod(CF, M, Method, H);
    if (A.HasCode)
      ++R.MethodsAnalyzed;
    R.Diags.insert(R.Diags.end(), A.Diags.begin(), A.Diags.end());
  }
  return R;
}

VerifyResult
cjpack::analysis::verifyClassBytes(const std::vector<uint8_t> &Bytes) {
  // Borrowed parse: Bytes outlives this frame's ClassFile, so nothing
  // needs copying.
  auto CF = parseClassFile(Bytes, {}, ParseMode::Borrowed);
  if (!CF) {
    VerifyResult R;
    R.Diags.push_back({DiagKind::MalformedCode, std::string(), NoOffset,
                       "classfile does not parse: " + CF.message()});
    return R;
  }
  return verifyClass(*CF);
}
