//===- Diagnostics.h - Verifier diagnostics --------------------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Typed diagnostics emitted by the bytecode analyzer: each carries the
/// defect kind, the method it was found in, and the bytecode offset of
/// the offending instruction (or NoOffset for method-level findings).
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_ANALYSIS_DIAGNOSTICS_H
#define CJPACK_ANALYSIS_DIAGNOSTICS_H

#include <cstdint>
#include <string>

namespace cjpack::analysis {

/// The defect classes the analyzer can report. The first group comes
/// from the per-method bytecode verifier (Verifier.h); the second from
/// the whole-archive analyzer (ArchiveAnalysis.h).
enum class DiagKind : uint8_t {
  MalformedCode,       ///< unparseable attribute, bad cp ref, bad descriptor
  StackUnderflow,      ///< pop from an empty operand stack
  StackOverflow,       ///< push beyond the declared max_stack
  MergeDepthMismatch,  ///< join point reached with differing stack depths
  TypeClash,           ///< value used at a type it does not hold
  BadLocal,            ///< local index out of range, wrong type, split pair
  FallOffEnd,          ///< execution can run past the end of the code array
  UnreachableCode,     ///< block no execution path reaches
  InvalidBranchTarget, ///< branch/switch target not at an instruction
  InvalidHandlerRange, ///< exception entry with a bogus range or handler pc
  SuperclassCycle,     ///< class on a superclass/superinterface cycle
  MissingAncestor,     ///< ancestor neither in the archive nor a platform class
  DuplicateClass,      ///< two archive classes share one internal name
  DanglingRef,         ///< member ref with no target anywhere in the archive
  AmbiguousRef,        ///< ref matching several unrelated default methods
  RefKindMismatch,     ///< Methodref on an interface, or the reverse
};

/// Stable lowercase name for \p K (e.g. "stack-underflow").
const char *diagKindName(DiagKind K);

inline constexpr uint32_t NoOffset = 0xFFFFFFFFu;

/// One analyzer finding.
struct Diagnostic {
  DiagKind Kind = DiagKind::MalformedCode;
  /// "Class.method(Ldesc;)V"-style context, empty for class-level issues.
  std::string Method;
  /// Bytecode offset of the offending instruction, or NoOffset.
  uint32_t Offset = NoOffset;
  std::string Message;
};

/// Renders \p D as "kind: Class.method at offset N: message".
std::string formatDiagnostic(const Diagnostic &D);

} // namespace cjpack::analysis

#endif // CJPACK_ANALYSIS_DIAGNOSTICS_H
