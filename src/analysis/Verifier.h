//===- Verifier.h - Worklist bytecode verifier -----------------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dataflow bytecode verifier in the spirit of the JVM's stack-map
/// analysis: an abstract interpreter over the slot-accurate type lattice
/// (Lattice.h) runs each method's CFG to a fixpoint with a worklist,
/// merging stack and local states at join points and accumulating locals
/// into exception-handler entry states. Defects are reported as typed
/// diagnostics with method and bytecode-offset context; analysis is
/// total — hostile input yields diagnostics, never crashes.
///
/// verifyClass is the packer's pre-pack lint (packtool verify) and the
/// regression oracle the corpus and round-trip tests run every class
/// through. With a ClassHierarchy (whole-archive mode) frames also track
/// which in-archive class each Ref slot holds, and joins meet two
/// references at their least common superclass instead of the untyped
/// Ref; without one, behavior is bit-identical to the standalone
/// verifier.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_ANALYSIS_VERIFIER_H
#define CJPACK_ANALYSIS_VERIFIER_H

#include "analysis/Cfg.h"
#include "analysis/Diagnostics.h"
#include "analysis/Lattice.h"
#include "classfile/ClassFile.h"
#include <optional>
#include <string>
#include <vector>

namespace cjpack::analysis {

/// The result of analyzing one method body.
struct MethodAnalysis {
  /// False for abstract/native methods (nothing to analyze).
  bool HasCode = false;
  /// False when the Code attribute or its bytecode failed to decode;
  /// Diags then holds a MalformedCode entry and the rest is empty.
  bool Decoded = false;
  std::vector<Insn> Insns;
  Cfg Graph;
  /// Fixpoint frame at each block's entry; nullopt for unreachable
  /// blocks. Parallel to Graph.Blocks.
  std::vector<std::optional<Frame>> BlockEntry;
  std::vector<Diagnostic> Diags;
};

/// Runs the dataflow analysis over method \p M of \p CF. \p Method is
/// the human-readable context stamped into diagnostics. A non-null \p H
/// enables typed-reference tracking (Frame::StackCls/LocalCls).
MethodAnalysis analyzeMethod(const ClassFile &CF, const MemberInfo &M,
                             const std::string &Method,
                             const ClassHierarchy *H = nullptr);

/// Aggregate verification result for a class.
struct VerifyResult {
  std::vector<Diagnostic> Diags;
  unsigned MethodsAnalyzed = 0;
  bool clean() const { return Diags.empty(); }
};

/// Analyzes every method body of \p CF, optionally with hierarchy-
/// informed typed-reference joins (see analyzeMethod).
VerifyResult verifyClass(const ClassFile &CF,
                         const ClassHierarchy *H = nullptr);

/// Parses \p Bytes as a classfile and verifies it; a parse failure
/// becomes a MalformedCode diagnostic (never an exception or crash).
VerifyResult verifyClassBytes(const std::vector<uint8_t> &Bytes);

} // namespace cjpack::analysis

#endif // CJPACK_ANALYSIS_VERIFIER_H
