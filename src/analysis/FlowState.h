//===- FlowState.h - Merge-correct §7.1 stack contexts ---------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flow-aware successor to StackState for the packed code streams.
/// StackState carries at most one forward-branch state and simply keeps
/// the fallthrough state at joins, so its predictions silently diverge
/// from the other incoming paths after every merge point. FlowState
/// instead runs the dataflow analysis restricted to edges a single
/// in-order pass can honor — fallthrough, *forward* branch and switch
/// edges, and exception-handler entries — merging all recorded incoming
/// states at each join exactly like the worklist verifier does (slotwise,
/// with conflicts widening to Unknown). On a CFG with no backward edges
/// this equals the full fixpoint (the analysis test suite checks that);
/// with backward edges the loop-entry contribution is conservatively
/// dropped on both sides.
///
/// The decompressor reconstructs instructions one at a time and consumes
/// pseudo-opcodes and context ids mid-stream, so it cannot iterate to a
/// backward-edge fixpoint; this restriction is what makes the state
/// exactly reproducible — encoder and decoder run the identical
/// algorithm over the identical instruction sequence, so their contexts
/// can never diverge.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_ANALYSIS_FLOWSTATE_H
#define CJPACK_ANALYSIS_FLOWSTATE_H

#include "bytecode/StackState.h"
#include <map>

namespace cjpack {

/// Merge-correct approximate stack state, advanced in code order.
///
/// Protocol, identical on encoder and decoder:
///   startMethod();
///   seedHandler(pc) for every exception-table entry;
///   per instruction: enterInsn(offset) BEFORE the opcode is
///   encoded/decoded (pseudo-opcode prediction reads the merged state),
///   then apply(insn, types) after.
class FlowState {
public:
  void startMethod();

  /// Records an exception handler entry at \p HandlerPc: one reference
  /// (the thrown object) on the stack.
  void seedHandler(uint32_t HandlerPc);

  /// Merges every recorded incoming edge targeting \p Offset into the
  /// current state. Must be called for each instruction, in code order.
  void enterInsn(uint32_t Offset);

  /// Advances across \p I: applies its stack effect and records its
  /// outgoing forward edges. \p Types may be null when the opcode needs
  /// no extra information.
  void apply(const Insn &I, const InsnTypes *Types);

  /// True when the stack contents at this point are tracked.
  bool isKnown() const { return Known; }

  /// Type at \p Depth from the top; Unknown when untracked or shallower.
  VType top(unsigned Depth = 0) const;

  /// Context id for the §5.1.6 context-split method-reference pools.
  /// Same value space as StackState::contextId — the wire layout keeps
  /// its pool count.
  unsigned contextId() const;

  static constexpr unsigned NumContexts = StackState::NumContexts;

private:
  struct Edge {
    /// True once any incoming state has been merged (distinguishes a
    /// fresh entry from a recorded empty stack).
    bool Recorded = false;
    /// True when incoming states could not be reconciled (depth
    /// mismatch); the join degrades to unknown.
    bool Conflict = false;
    std::vector<VType> Stack;
  };

  void setUnknown();
  /// Records the current state flowing into forward target \p Target.
  void recordEdge(uint32_t From, int32_t Target);
  static void mergeEdge(Edge &E, const std::vector<VType> &Stack);

  std::vector<VType> Stack;
  bool Known = false;
  /// Pending incoming edges keyed by target offset, consumed in order.
  std::map<uint32_t, Edge> Pending;
};

} // namespace cjpack

#endif // CJPACK_ANALYSIS_FLOWSTATE_H
