//===- Lattice.cpp - Verification type lattice ----------------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Lattice.h"
#include "analysis/ArchiveAnalysis.h"
#include <cassert>

using namespace cjpack;
using namespace cjpack::analysis;

const char *cjpack::analysis::atypeName(AType T) {
  switch (T) {
  case AType::Top: return "top";
  case AType::Int: return "int";
  case AType::Float: return "float";
  case AType::Ref: return "ref";
  case AType::RetAddr: return "retaddr";
  case AType::Long: return "long";
  case AType::Long2: return "long[2]";
  case AType::Double: return "double";
  case AType::Double2: return "double[2]";
  }
  return "?";
}

MergeOutcome cjpack::analysis::mergeFrame(Frame &Into, const Frame &From,
                                          const ClassHierarchy *H) {
  if (Into.Stack.size() != From.Stack.size())
    return MergeOutcome::DepthMismatch;
  assert(Into.Locals.size() == From.Locals.size() &&
         "frames of one method share max_locals");
  bool Changed = false;
  auto MergeInto = [&](AType &Slot, AType Incoming) {
    AType Merged = mergeSlot(Slot, Incoming);
    if (Merged != Slot) {
      Slot = Merged;
      Changed = true;
    }
  };
  for (size_t K = 0; K < Into.Stack.size(); ++K)
    MergeInto(Into.Stack[K], From.Stack[K]);
  for (size_t K = 0; K < Into.Locals.size(); ++K)
    MergeInto(Into.Locals[K], From.Locals[K]);
  if (H) {
    auto MergeCls = [&](std::vector<int32_t> &IntoCls,
                        const std::vector<int32_t> &FromCls,
                        const std::vector<AType> &Types) {
      if (IntoCls.size() != Types.size() || FromCls.size() != Types.size()) {
        // One side never tracked classes; drop tracking rather than
        // invent precision.
        if (!IntoCls.empty()) {
          IntoCls.clear();
          Changed = true;
        }
        return;
      }
      for (size_t K = 0; K < IntoCls.size(); ++K) {
        int32_t Joined = Types[K] == AType::Ref
                             ? H->joinRefClasses(IntoCls[K], FromCls[K])
                             : ClassNone;
        if (Joined != IntoCls[K]) {
          IntoCls[K] = Joined;
          Changed = true;
        }
      }
    };
    MergeCls(Into.StackCls, From.StackCls, Into.Stack);
    MergeCls(Into.LocalCls, From.LocalCls, Into.Locals);
  }
  return Changed ? MergeOutcome::Changed : MergeOutcome::Unchanged;
}

void cjpack::analysis::appendSlots(std::vector<AType> &Out, VType T) {
  switch (T) {
  case VType::Int:
    Out.push_back(AType::Int);
    break;
  case VType::Float:
    Out.push_back(AType::Float);
    break;
  case VType::Ref:
    Out.push_back(AType::Ref);
    break;
  case VType::Long:
    Out.push_back(AType::Long);
    Out.push_back(AType::Long2);
    break;
  case VType::Double:
    Out.push_back(AType::Double);
    Out.push_back(AType::Double2);
    break;
  case VType::Void:
    break;
  case VType::Unknown:
    Out.push_back(AType::Top);
    break;
  }
}

unsigned cjpack::analysis::slotWidth(VType T) {
  switch (T) {
  case VType::Long:
  case VType::Double:
    return 2;
  case VType::Void:
    return 0;
  default:
    return 1;
  }
}
