//===- ArchiveAnalysis.cpp - Whole-archive static analysis ----------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/ArchiveAnalysis.h"
#include "bytecode/Instruction.h"
#include "classfile/Transform.h"
#include "support/ByteBuffer.h"
#include <algorithm>
#include <optional>
#include <set>

using namespace cjpack;
using namespace cjpack::analysis;

const char *cjpack::analysis::refVerdictName(RefVerdict V) {
  switch (V) {
  case RefVerdict::Resolved: return "resolved";
  case RefVerdict::External: return "external";
  case RefVerdict::Dangling: return "dangling";
  case RefVerdict::Ambiguous: return "ambiguous";
  case RefVerdict::KindMismatch: return "kind-mismatch";
  }
  return "?";
}

bool cjpack::analysis::isPlatformClassName(std::string_view Name) {
  return Name.starts_with("java/") || Name.starts_with("javax/") ||
         Name.starts_with("jdk/") || Name.starts_with("sun/");
}

bool cjpack::analysis::isKnownObjectMethod(std::string_view Name,
                                           std::string_view Desc) {
  // java/lang/Object's inheritable methods, fixed since JDK 1.0: the
  // public set plus the protected clone/finalize. <init> is never
  // inherited and registerNatives is private, so neither is listed.
  static const std::pair<const char *, const char *> Methods[] = {
      {"equals", "(Ljava/lang/Object;)Z"},
      {"hashCode", "()I"},
      {"toString", "()Ljava/lang/String;"},
      {"getClass", "()Ljava/lang/Class;"},
      {"notify", "()V"},
      {"notifyAll", "()V"},
      {"wait", "()V"},
      {"wait", "(J)V"},
      {"wait", "(JI)V"},
      {"clone", "()Ljava/lang/Object;"},
      {"finalize", "()V"},
  };
  for (const auto &[N, D] : Methods)
    if (Name == N && Desc == D)
      return true;
  return false;
}

namespace {

/// Utf8 text at \p Index, or nullptr when the slot is missing or holds
/// another tag. All constant-pool access below goes through these
/// checked helpers — analysis input may be hostile.
const std::string_view *utf8At(const ConstantPool &CP, uint16_t Index) {
  if (!CP.isValidIndex(Index) || CP.entry(Index).Tag != CpTag::Utf8)
    return nullptr;
  return &CP.entry(Index).Text;
}

/// Internal name of the Class entry at \p Index, or nullptr.
const std::string_view *classNameAt(const ConstantPool &CP, uint16_t Index) {
  if (!CP.isValidIndex(Index) || CP.entry(Index).Tag != CpTag::Class)
    return nullptr;
  return utf8At(CP, CP.entry(Index).Ref1);
}

/// A decoded Fieldref/Methodref/InterfaceMethodref.
struct MemberRefParts {
  CpTag Tag = CpTag::None;
  const std::string_view *Owner = nullptr;
  const std::string_view *Name = nullptr;
  const std::string_view *Desc = nullptr;
};

/// Decodes the member ref at \p Index; nullopt when the slot holds a
/// different tag, std::nullopt-with-Tag (Owner null) when the ref's
/// internal structure is broken.
std::optional<MemberRefParts> memberRefAt(const ConstantPool &CP,
                                          uint16_t Index) {
  if (!CP.isValidIndex(Index))
    return std::nullopt;
  const CpEntry &E = CP.entry(Index);
  if (E.Tag != CpTag::FieldRef && E.Tag != CpTag::MethodRef &&
      E.Tag != CpTag::InterfaceMethodRef)
    return std::nullopt;
  MemberRefParts P;
  P.Tag = E.Tag;
  P.Owner = classNameAt(CP, E.Ref1);
  if (CP.isValidIndex(E.Ref2) &&
      CP.entry(E.Ref2).Tag == CpTag::NameAndType) {
    P.Name = utf8At(CP, CP.entry(E.Ref2).Ref1);
    P.Desc = utf8At(CP, CP.entry(E.Ref2).Ref2);
  }
  return P;
}

const std::string_view *memberName(const ClassFile &CF, const MemberInfo &M) {
  return utf8At(CF.CP, M.NameIndex);
}

const std::string_view *memberDesc(const ClassFile &CF, const MemberInfo &M) {
  return utf8At(CF.CP, M.DescriptorIndex);
}

/// Finds the member named \p Name:\p Desc in \p List, or -1.
int32_t findMember(const ClassFile &CF, const std::vector<MemberInfo> &List,
                   std::string_view Name, std::string_view Desc) {
  for (size_t K = 0; K < List.size(); ++K) {
    const std::string_view *N = memberName(CF, List[K]);
    const std::string_view *D = memberDesc(CF, List[K]);
    if (N && D && *N == Name && *D == Desc)
      return static_cast<int32_t>(K);
  }
  return -1;
}

} // namespace

//===----------------------------------------------------------------------===//
// ClassHierarchy
//===----------------------------------------------------------------------===//

int32_t ClassHierarchy::internNode(std::string_view Name) {
  auto [It, Inserted] =
      ByName.try_emplace(Name, static_cast<int32_t>(Nodes.size()));
  if (Inserted) {
    HierarchyNode N;
    N.Name = Name;
    Nodes.push_back(std::move(N));
  }
  return It->second;
}

int32_t ClassHierarchy::lookup(std::string_view Name) const {
  auto It = ByName.find(Name);
  return It == ByName.end() ? ClassNone : It->second;
}

ClassHierarchy ClassHierarchy::build(const std::vector<ClassFile> &Classes) {
  ClassHierarchy H;
  // First pass: claim a node for every class the archive defines, so a
  // later class's superclass edge can land on an earlier definition
  // regardless of input order.
  for (size_t K = 0; K < Classes.size(); ++K) {
    const ClassFile &CF = Classes[K];
    const std::string_view *Name = classNameAt(CF.CP, CF.ThisClass);
    if (!Name) {
      H.Malformed.push_back(static_cast<int32_t>(K));
      continue;
    }
    int32_t Id = H.internNode(*Name);
    HierarchyNode &N = H.Nodes[static_cast<size_t>(Id)];
    if (N.Def) {
      H.Duplicates.push_back(static_cast<int32_t>(K));
      continue;
    }
    N.Def = &CF;
    N.ClassIndex = static_cast<int32_t>(K);
    N.IsInterface = (CF.AccessFlags & AccInterface) != 0;
  }
  // Second pass: superclass and interface edges, creating external
  // nodes for ancestors the archive only mentions. Indexed access, not
  // references: internNode may grow Nodes and reallocate. The loop
  // bound is re-read each iteration, but appended external nodes have
  // no Def and are skipped.
  for (size_t K = 0; K < H.Nodes.size(); ++K) {
    if (!H.Nodes[K].Def)
      continue;
    const ClassFile &CF = *H.Nodes[K].Def;
    if (CF.SuperClass != 0)
      if (const std::string_view *Super = classNameAt(CF.CP, CF.SuperClass)) {
        int32_t Id = H.internNode(*Super);
        H.Nodes[K].Super = Id;
      }
    for (uint16_t I : CF.Interfaces)
      if (const std::string_view *Iface = classNameAt(CF.CP, I)) {
        int32_t Id = H.internNode(*Iface);
        H.Nodes[K].Interfaces.push_back(Id);
      }
  }
  H.computeCycles();
  return H;
}

void ClassHierarchy::computeCycles() {
  // Tarjan's SCC over the super+interface edges, iteratively: any node
  // in a component of size > 1 (or with a self edge) is on a cycle.
  // External nodes have no outgoing edges, so cycles are archive-made.
  const size_t N = Nodes.size();
  std::vector<int32_t> Index(N, -1);
  std::vector<int32_t> Low(N, 0);
  std::vector<bool> OnStack(N, false);
  std::vector<int32_t> Stack;
  int32_t Next = 0;

  auto EdgesOf = [&](int32_t V) {
    std::vector<int32_t> E;
    const HierarchyNode &Node = Nodes[static_cast<size_t>(V)];
    if (Node.Super != ClassNone)
      E.push_back(Node.Super);
    E.insert(E.end(), Node.Interfaces.begin(), Node.Interfaces.end());
    return E;
  };

  struct WorkItem {
    int32_t Node;
    size_t EdgeIx;
  };
  for (size_t Root = 0; Root < N; ++Root) {
    if (Index[Root] != -1)
      continue;
    std::vector<WorkItem> Work{{static_cast<int32_t>(Root), 0}};
    Index[Root] = Low[Root] = Next++;
    Stack.push_back(static_cast<int32_t>(Root));
    OnStack[Root] = true;
    while (!Work.empty()) {
      int32_t V = Work.back().Node;
      std::vector<int32_t> E = EdgesOf(V);
      if (Work.back().EdgeIx < E.size()) {
        int32_t W = E[Work.back().EdgeIx++];
        if (Index[W] == -1) {
          Index[W] = Low[W] = Next++;
          Stack.push_back(W);
          OnStack[W] = true;
          Work.push_back({W, 0});
        } else if (OnStack[W]) {
          Low[V] = std::min(Low[V], Index[W]);
        }
      } else {
        Work.pop_back();
        if (!Work.empty()) {
          int32_t Parent = Work.back().Node;
          Low[Parent] = std::min(Low[Parent], Low[V]);
        }
        if (Low[V] == Index[V]) {
          std::vector<int32_t> Scc;
          for (;;) {
            int32_t W = Stack.back();
            Stack.pop_back();
            OnStack[W] = false;
            Scc.push_back(W);
            if (W == V)
              break;
          }
          bool Cyclic = Scc.size() > 1;
          if (!Cyclic) {
            const HierarchyNode &Node = Nodes[static_cast<size_t>(V)];
            Cyclic = Node.Super == V ||
                     std::find(Node.Interfaces.begin(), Node.Interfaces.end(),
                               V) != Node.Interfaces.end();
          }
          if (Cyclic)
            for (int32_t W : Scc)
              Nodes[static_cast<size_t>(W)].OnCycle = true;
        }
      }
    }
  }
}

int32_t ClassHierarchy::leastCommonSuperclass(int32_t A, int32_t B) const {
  if (A == B)
    return isDefined(A) ? A : ClassNone;
  if (!isDefined(A) || !isDefined(B))
    return ClassNone;
  // Collect A's in-archive superclass chain (cycle nodes are walk
  // boundaries), then walk B's until it lands on the chain.
  std::set<int32_t> Chain;
  for (int32_t C = A; isDefined(C) && !node(C).OnCycle;) {
    if (!Chain.insert(C).second)
      break;
    C = node(C).Super;
  }
  std::set<int32_t> Seen;
  for (int32_t C = B; isDefined(C) && !node(C).OnCycle;) {
    if (Chain.count(C))
      return C;
    if (!Seen.insert(C).second)
      break;
    C = node(C).Super;
  }
  return ClassNone;
}

bool ClassHierarchy::isSubtypeOf(int32_t Derived, int32_t Base) const {
  if (Derived < 0 || Base < 0)
    return false;
  std::set<int32_t> Seen;
  std::vector<int32_t> Work{Derived};
  while (!Work.empty()) {
    int32_t C = Work.back();
    Work.pop_back();
    if (C == Base)
      return true;
    if (C < 0 || !Seen.insert(C).second)
      continue;
    const HierarchyNode &N = node(C);
    if (N.Super != ClassNone)
      Work.push_back(N.Super);
    Work.insert(Work.end(), N.Interfaces.begin(), N.Interfaces.end());
  }
  return false;
}

int32_t ClassHierarchy::joinRefClasses(int32_t A, int32_t B) const {
  if (A == B)
    return A;
  if (A == ClassNull)
    return B;
  if (B == ClassNull)
    return A;
  if (A < 0 || B < 0)
    return ClassNone;
  return leastCommonSuperclass(A, B);
}

//===----------------------------------------------------------------------===//
// Reference resolution (JVMS 5.4.3, closed over the archive)
//===----------------------------------------------------------------------===//

namespace {

/// Shared walk state: whether a search escaped the archive, and whether
/// the escape point was exactly java/lang/Object (whose member set is
/// known, so the search can still conclude "dangling").
struct SearchBoundary {
  bool External = false;
  bool Object = false;
};

} // namespace

/// Collects the defined superinterface closure of \p Start (for classes:
/// contributed by every class on the superclass chain). Sets boundary
/// flags for external interfaces or an external chain.
static void interfaceClosure(const ClassHierarchy &H, int32_t Start,
                             std::vector<int32_t> &Out, SearchBoundary &B) {
  std::set<int32_t> Seen;
  std::vector<int32_t> Work{Start};
  while (!Work.empty()) {
    int32_t C = Work.back();
    Work.pop_back();
    if (C < 0 || !Seen.insert(C).second)
      continue;
    const HierarchyNode &N = H.node(C);
    if (!N.Def) {
      if (N.Name == "java/lang/Object")
        B.Object = true;
      else
        B.External = true;
      continue;
    }
    if (N.OnCycle) {
      B.External = true; // cycle walks are unreliable; stop claiming
      continue;
    }
    if (N.IsInterface && C != Start)
      Out.push_back(C);
    if (N.Super != ClassNone)
      Work.push_back(N.Super);
    Work.insert(Work.end(), N.Interfaces.begin(), N.Interfaces.end());
  }
  // The start node itself counts when it is an interface.
  if (H.isDefined(Start) && H.node(Start).IsInterface)
    Out.push_back(Start);
}

RefResolution ClassHierarchy::resolveField(std::string_view OwnerName,
                                           std::string_view Name,
                                           std::string_view Desc) const {
  RefResolution R;
  if (OwnerName.starts_with("[")) // arrays declare no fields; the ref
    return R;                     // targets the runtime, not the archive
  int32_t Owner = lookup(OwnerName);
  if (!isDefined(Owner))
    return R;
  // JVMS 5.4.3.2: C's own fields, then superinterfaces (constants),
  // then the superclass chain — implemented as chain-of-(self +
  // interfaces) which visits the same classes in a compatible order.
  SearchBoundary B;
  std::set<int32_t> Seen;
  for (int32_t C = Owner; C != ClassNone;) {
    if (!isDefined(C)) {
      const HierarchyNode &N = node(C);
      (N.Name == "java/lang/Object" ? B.Object : B.External) = true;
      break;
    }
    if (node(C).OnCycle || !Seen.insert(C).second) {
      B.External = true;
      break;
    }
    const ClassFile &CF = *node(C).Def;
    if (int32_t K = findMember(CF, CF.Fields, Name, Desc); K >= 0) {
      R.Verdict = RefVerdict::Resolved;
      R.DefiningClass = C;
      R.Member = &CF.Fields[static_cast<size_t>(K)];
      R.MemberIndex = K;
      return R;
    }
    std::vector<int32_t> Ifaces;
    interfaceClosure(*this, C, Ifaces, B);
    for (int32_t I : Ifaces) {
      if (I == C)
        continue;
      const ClassFile &IF = *node(I).Def;
      if (int32_t K = findMember(IF, IF.Fields, Name, Desc); K >= 0) {
        R.Verdict = RefVerdict::Resolved;
        R.DefiningClass = I;
        R.Member = &IF.Fields[static_cast<size_t>(K)];
        R.MemberIndex = K;
        return R;
      }
    }
    C = node(C).Super;
  }
  // java/lang/Object declares no fields, so an Object boundary alone
  // cannot hide the target.
  R.Verdict = B.External ? RefVerdict::External : RefVerdict::Dangling;
  return R;
}

RefResolution ClassHierarchy::resolveMethod(std::string_view OwnerName,
                                            std::string_view Name,
                                            std::string_view Desc,
                                            bool InterfaceKind) const {
  RefResolution R;
  if (OwnerName.starts_with("[")) // arrays answer Object's methods plus
    return R;                     // clone(); all outside the archive
  int32_t Owner = lookup(OwnerName);
  if (!isDefined(Owner))
    return R;
  // JVMS 5.4.3.3 step 1 / 5.4.3.4 step 1: the ref kind must match what
  // the owner turned out to be (IncompatibleClassChangeError at run
  // time).
  if (node(Owner).IsInterface != InterfaceKind) {
    R.Verdict = RefVerdict::KindMismatch;
    return R;
  }
  bool Instance = Name != "<init>" && Name != "<clinit>";
  SearchBoundary B;
  // Superclass chain (the owner alone for interface refs and for
  // constructors/initializers, which are never inherited).
  std::set<int32_t> Seen;
  for (int32_t C = Owner; C != ClassNone;) {
    if (!isDefined(C)) {
      const HierarchyNode &N = node(C);
      (N.Name == "java/lang/Object" ? B.Object : B.External) = true;
      break;
    }
    if (node(C).OnCycle || !Seen.insert(C).second) {
      B.External = true;
      break;
    }
    const ClassFile &CF = *node(C).Def;
    if (int32_t K = findMember(CF, CF.Methods, Name, Desc); K >= 0) {
      R.Verdict = RefVerdict::Resolved;
      R.DefiningClass = C;
      R.Member = &CF.Methods[static_cast<size_t>(K)];
      R.MemberIndex = K;
      return R;
    }
    if (InterfaceKind || !Instance)
      break;
    C = node(C).Super;
  }
  if (!Instance) {
    // <init>/<clinit> live on the class itself or nowhere.
    R.Verdict = RefVerdict::Dangling;
    return R;
  }
  // Superinterface closure: gather every declaration, keep the
  // maximally-specific ones (not overridden by a more derived
  // interface). Multiple abstract survivors resolve arbitrarily per
  // 5.4.3.3; two or more concrete (default-method) survivors are the
  // genuinely ambiguous case.
  std::vector<int32_t> Ifaces;
  interfaceClosure(*this, Owner, Ifaces, B);
  struct Match {
    int32_t Iface;
    int32_t Index;
  };
  std::vector<Match> Matches;
  for (int32_t I : Ifaces) {
    const ClassFile &IF = *node(I).Def;
    if (int32_t K = findMember(IF, IF.Methods, Name, Desc); K >= 0)
      Matches.push_back({I, K});
  }
  std::vector<Match> Specific;
  for (const Match &M : Matches) {
    bool Overridden = false;
    for (const Match &O : Matches)
      if (O.Iface != M.Iface && isSubtypeOf(O.Iface, M.Iface))
        Overridden = true;
    if (!Overridden)
      Specific.push_back(M);
  }
  auto MemberOf = [&](const Match &M) -> const MemberInfo & {
    return node(M.Iface).Def->Methods[static_cast<size_t>(M.Index)];
  };
  if (!Specific.empty()) {
    size_t Concrete = 0;
    for (const Match &M : Specific)
      if (!(MemberOf(M).AccessFlags & AccAbstract))
        ++Concrete;
    if (Concrete >= 2) {
      R.Verdict = RefVerdict::Ambiguous;
      return R;
    }
    const Match &Pick = Specific.front();
    R.Verdict = RefVerdict::Resolved;
    R.DefiningClass = Pick.Iface;
    R.Member = &MemberOf(Pick);
    R.MemberIndex = Pick.Index;
    return R;
  }
  // Interface refs can also resolve to java/lang/Object's public
  // methods; class chains ending at Object only hide Object's fixed set.
  if ((InterfaceKind || B.Object) && isKnownObjectMethod(Name, Desc)) {
    R.Verdict = RefVerdict::External;
    return R;
  }
  R.Verdict = B.External ? RefVerdict::External : RefVerdict::Dangling;
  return R;
}

//===----------------------------------------------------------------------===//
// Dead-pool reachability
//===----------------------------------------------------------------------===//

namespace {

/// Marks the constant-pool entries one class's *retained* structure
/// (live members only) reaches, mirroring PoolCanonicalizer's root set
/// plus the debug attributes a raw (unstripped) classfile still
/// carries. Returns the count of usable entries nothing retained
/// references — the entries a StripUnreferenced pack would shed.
class DeadPoolCounter {
public:
  DeadPoolCounter(const ClassFile &CF, const std::vector<bool> &FieldLive,
                  const std::vector<bool> &MethodLive)
      : CF(CF), FieldLive(FieldLive), MethodLive(MethodLive) {}

  Expected<size_t> run() {
    mark(CF.ThisClass);
    mark(CF.SuperClass);
    for (uint16_t I : CF.Interfaces)
      mark(I);
    if (!markAttributes(CF.Attributes))
      return size_t{0}; // unknown attribute: claim nothing
    for (size_t K = 0; K < CF.Fields.size(); ++K) {
      if (K < FieldLive.size() && !FieldLive[K])
        continue;
      if (auto E = markMember(CF.Fields[K]))
        return E;
      if (!Known)
        return size_t{0};
    }
    for (size_t K = 0; K < CF.Methods.size(); ++K) {
      if (K < MethodLive.size() && !MethodLive[K])
        continue;
      if (auto E = markMember(CF.Methods[K]))
        return E;
      if (!Known)
        return size_t{0};
    }
    // The writer re-interns attribute names, so a Utf8 textually equal
    // to a retained attribute's name survives canonicalization.
    for (uint16_t I = 1; I < CF.CP.count(); ++I)
      if (CF.CP.isValidIndex(I) && CF.CP.entry(I).Tag == CpTag::Utf8 &&
          AttrNames.count(CF.CP.entry(I).Text))
        mark(I);
    closeOver();
    size_t Dead = 0;
    for (uint16_t I = 1; I < CF.CP.count(); ++I)
      if (CF.CP.isValidIndex(I) && !Reachable.count(I))
        ++Dead;
    return Dead;
  }

private:
  void mark(uint16_t Index) {
    if (Index != 0)
      Reachable.insert(Index);
  }

  /// Marks the cp references of one attribute list. Returns false when
  /// an attribute whose layout we do not know appears — its references
  /// cannot be traced, so the caller must not report dead entries.
  bool markAttributes(const std::vector<AttributeInfo> &Attrs) {
    for (const AttributeInfo &A : Attrs) {
      if (A.Name == "Synthetic" || A.Name == "Deprecated" ||
          A.Name == "LineNumberTable")
        continue;
      if (A.Name == "ConstantValue" || A.Name == "SourceFile") {
        ByteReader R(A.Bytes);
        mark(R.readU2());
      } else if (A.Name == "Exceptions") {
        ByteReader R(A.Bytes);
        uint16_t N = R.readU2();
        for (uint16_t K = 0; K < N && !R.hasError(); ++K)
          mark(R.readU2());
      } else if (A.Name == "LocalVariableTable") {
        ByteReader R(A.Bytes);
        uint16_t N = R.readU2();
        for (uint16_t K = 0; K < N && !R.hasError(); ++K) {
          R.readU2(); // start_pc
          R.readU2(); // length
          mark(R.readU2());
          mark(R.readU2());
          R.readU2(); // slot
        }
      } else if (A.Name != "Code") {
        Known = false;
        return false;
      }
    }
    return true;
  }

  Error markMember(const MemberInfo &M) {
    mark(M.NameIndex);
    mark(M.DescriptorIndex);
    for (const AttributeInfo &A : M.Attributes)
      AttrNames.emplace(A.Name);
    if (!markAttributes(M.Attributes))
      return Error::success();
    for (const AttributeInfo &A : M.Attributes) {
      if (A.Name != "Code")
        continue;
      auto Code = parseCodeAttribute(A, CF.CP);
      if (!Code)
        return Code.takeError();
      for (const AttributeInfo &Nested : Code->Attributes)
        AttrNames.emplace(Nested.Name);
      if (!markAttributes(Code->Attributes))
        return Error::success();
      for (const ExceptionTableEntry &E : Code->ExceptionTable)
        mark(E.CatchType);
      auto Insns = decodeCode(Code->Code);
      if (!Insns)
        return Insns.takeError();
      for (const Insn &I : *Insns)
        if (I.hasCpOperand())
          mark(I.CpIndex);
    }
    return Error::success();
  }

  void closeOver() {
    std::vector<uint16_t> Work(Reachable.begin(), Reachable.end());
    while (!Work.empty()) {
      uint16_t Index = Work.back();
      Work.pop_back();
      if (!CF.CP.isValidIndex(Index))
        continue;
      const CpEntry &E = CF.CP.entry(Index);
      auto Visit = [&](uint16_t Ref) {
        if (Ref != 0 && Reachable.insert(Ref).second)
          Work.push_back(Ref);
      };
      switch (E.Tag) {
      case CpTag::Class:
      case CpTag::String:
      case CpTag::MethodType:
      case CpTag::Module:
      case CpTag::Package:
      case CpTag::MethodHandle:
        Visit(E.Ref1);
        break;
      case CpTag::FieldRef:
      case CpTag::MethodRef:
      case CpTag::InterfaceMethodRef:
      case CpTag::NameAndType:
      case CpTag::Dynamic:
      case CpTag::InvokeDynamic:
        Visit(E.Ref1);
        Visit(E.Ref2);
        break;
      default:
        break;
      }
    }
  }

  const ClassFile &CF;
  const std::vector<bool> &FieldLive;
  const std::vector<bool> &MethodLive;
  std::set<uint16_t> Reachable;
  std::set<std::string, std::less<>> AttrNames{"Code"};
  bool Known = true;
};

} // namespace

//===----------------------------------------------------------------------===//
// analyzeArchive
//===----------------------------------------------------------------------===//

ArchiveAnalysisReport
cjpack::analysis::analyzeArchive(const std::vector<ClassFile> &Classes) {
  ArchiveAnalysisReport Rep;
  Rep.Hierarchy = ClassHierarchy::build(Classes);
  const ClassHierarchy &H = Rep.Hierarchy;
  Rep.ClassesAnalyzed = Classes.size();

  auto Diag = [&](DiagKind K, std::string Ctx, uint32_t Off,
                  std::string Msg) {
    Rep.Diags.push_back({K, std::move(Ctx), Off, std::move(Msg)});
  };

  for (int32_t K : H.malformed())
    Diag(DiagKind::MalformedCode, "class #" + std::to_string(K), NoOffset,
         "unusable this_class entry");
  for (int32_t K : H.duplicates()) {
    const ClassFile &CF = Classes[static_cast<size_t>(K)];
    const std::string_view *Name = classNameAt(CF.CP, CF.ThisClass);
    Diag(DiagKind::DuplicateClass, Name ? std::string(*Name) : "?", NoOffset,
         "several classes in the archive share this internal name");
  }

  // Structural hierarchy findings, per defined class.
  for (size_t Id = 0; Id < H.size(); ++Id) {
    const HierarchyNode &N = H.node(static_cast<int32_t>(Id));
    if (!N.Def)
      continue;
    if (N.OnCycle)
      Diag(DiagKind::SuperclassCycle, std::string(N.Name), NoOffset,
           "class sits on a superclass/interface cycle");
    std::set<int32_t> Seen;
    std::vector<int32_t> Work(N.Interfaces);
    if (N.Super != ClassNone)
      Work.push_back(N.Super);
    while (!Work.empty()) {
      int32_t C = Work.back();
      Work.pop_back();
      if (C < 0 || !Seen.insert(C).second)
        continue;
      const HierarchyNode &A = H.node(C);
      if (!A.Def) {
        if (!isPlatformClassName(A.Name))
          Diag(DiagKind::MissingAncestor, std::string(N.Name), NoOffset,
               "ancestor " + std::string(A.Name) + " is not in the archive");
        continue;
      }
      if (A.OnCycle)
        continue;
      if (A.Super != ClassNone)
        Work.push_back(A.Super);
      Work.insert(Work.end(), A.Interfaces.begin(), A.Interfaces.end());
    }
  }

  // Liveness: a private member starts dead and survives only when some
  // reference anywhere in the archive (even from dead code — liveness
  // is one conservative pass, not a fixpoint) can resolve to it.
  // Non-private members are roots: any future archive user may link
  // against them. Unreadable names stay live too.
  std::vector<std::vector<bool>> FieldLive(Classes.size());
  std::vector<std::vector<bool>> MethodLive(Classes.size());
  for (size_t Id = 0; Id < H.size(); ++Id) {
    const HierarchyNode &N = H.node(static_cast<int32_t>(Id));
    if (!N.Def)
      continue;
    const ClassFile &CF = *N.Def;
    auto InitLive = [&](const std::vector<MemberInfo> &List, bool IsField) {
      std::vector<bool> Live(List.size());
      for (size_t K = 0; K < List.size(); ++K) {
        const MemberInfo &M = List[K];
        const std::string_view *Name = memberName(CF, M);
        bool Exported = !(M.AccessFlags & AccPrivate) || !Name ||
                        !memberDesc(CF, M) ||
                        (!IsField && (*Name == "<init>" || *Name == "<clinit>"));
        Live[K] = Exported;
      }
      return Live;
    };
    FieldLive[static_cast<size_t>(N.ClassIndex)] = InitLive(CF.Fields, true);
    MethodLive[static_cast<size_t>(N.ClassIndex)] =
        InitLive(CF.Methods, false);
  }

  // Cross-reference resolution over every member ref in every class.
  for (size_t K = 0; K < Classes.size(); ++K) {
    const ClassFile &CF = Classes[K];
    const std::string_view *Self = classNameAt(CF.CP, CF.ThisClass);
    std::string Ctx =
        Self ? std::string(*Self) : "class #" + std::to_string(K);
    for (uint16_t I = 1; I < CF.CP.count(); ++I) {
      auto P = memberRefAt(CF.CP, I);
      if (!P)
        continue;
      ++Rep.RefsChecked;
      if (!P->Owner || !P->Name || !P->Desc) {
        Diag(DiagKind::MalformedCode, Ctx, I,
             "member ref with a broken class or name-and-type entry");
        continue;
      }
      RefResolution R =
          P->Tag == CpTag::FieldRef
              ? H.resolveField(*P->Owner, *P->Name, *P->Desc)
              : H.resolveMethod(*P->Owner, *P->Name, *P->Desc,
                                P->Tag == CpTag::InterfaceMethodRef);
      std::string Ref = cpTagName(P->Tag);
      Ref += ' ';
      Ref += *P->Owner;
      Ref += '.';
      Ref += *P->Name;
      Ref += ':';
      Ref += *P->Desc;
      switch (R.Verdict) {
      case RefVerdict::Resolved:
        ++Rep.RefsResolved;
        if (R.Member->AccessFlags & AccPrivate) {
          const HierarchyNode &D = H.node(R.DefiningClass);
          auto &Live = P->Tag == CpTag::FieldRef
                           ? FieldLive[static_cast<size_t>(D.ClassIndex)]
                           : MethodLive[static_cast<size_t>(D.ClassIndex)];
          Live[static_cast<size_t>(R.MemberIndex)] = true;
        }
        break;
      case RefVerdict::External:
        ++Rep.RefsExternal;
        break;
      case RefVerdict::Dangling:
        Diag(DiagKind::DanglingRef, Ctx, I,
             Ref + " has no target in the archive");
        break;
      case RefVerdict::Ambiguous:
        Diag(DiagKind::AmbiguousRef, Ctx, I,
             Ref + " matches several unrelated default methods");
        break;
      case RefVerdict::KindMismatch:
        Diag(DiagKind::RefKindMismatch, Ctx, I,
             Ref + (P->Tag == CpTag::MethodRef
                        ? " is a Methodref naming an interface"
                        : " is an InterfaceMethodref naming a class"));
        break;
      }
    }
  }

  // Report the members that stayed dead, then the pool entries only
  // they (or nothing at all) reached.
  for (size_t Id = 0; Id < H.size(); ++Id) {
    const HierarchyNode &N = H.node(static_cast<int32_t>(Id));
    if (!N.Def)
      continue;
    size_t Input = static_cast<size_t>(N.ClassIndex);
    for (size_t K = 0; K < FieldLive[Input].size(); ++K)
      if (!FieldLive[Input][K])
        Rep.DeadMembers.push_back(
            {N.ClassIndex, true, static_cast<uint32_t>(K)});
    for (size_t K = 0; K < MethodLive[Input].size(); ++K)
      if (!MethodLive[Input][K])
        Rep.DeadMembers.push_back(
            {N.ClassIndex, false, static_cast<uint32_t>(K)});
    auto Dead =
        DeadPoolCounter(*N.Def, FieldLive[Input], MethodLive[Input]).run();
    if (!Dead) {
      Diag(DiagKind::MalformedCode, std::string(N.Name), NoOffset,
           "reachability pass failed: " + Dead.message());
      continue;
    }
    Rep.DeadPoolEntries += *Dead;
  }
  return Rep;
}

//===----------------------------------------------------------------------===//
// stripUnreferencedMembers
//===----------------------------------------------------------------------===//

Expected<StripStats>
cjpack::analysis::stripUnreferencedMembers(std::vector<ClassFile> &Classes) {
  StripStats Stats;
  std::vector<DeadMember> Dead;
  {
    // The report borrows pointers into Classes; scope it so nothing
    // dangles once the mutation below starts.
    ArchiveAnalysisReport Rep = analyzeArchive(Classes);
    Dead = std::move(Rep.DeadMembers);
  }
  std::vector<std::vector<uint32_t>> DeadFields(Classes.size());
  std::vector<std::vector<uint32_t>> DeadMethods(Classes.size());
  for (const DeadMember &D : Dead)
    (D.IsField ? DeadFields : DeadMethods)[static_cast<size_t>(D.ClassIndex)]
        .push_back(D.MemberIndex);
  for (size_t K = 0; K < Classes.size(); ++K) {
    if (DeadFields[K].empty() && DeadMethods[K].empty())
      continue;
    auto EraseAll = [](std::vector<MemberInfo> &List,
                       std::vector<uint32_t> &Indices) {
      std::sort(Indices.rbegin(), Indices.rend());
      for (uint32_t I : Indices)
        List.erase(List.begin() + I);
    };
    EraseAll(Classes[K].Fields, DeadFields[K]);
    EraseAll(Classes[K].Methods, DeadMethods[K]);
    Stats.FieldsRemoved += DeadFields[K].size();
    Stats.MethodsRemoved += DeadMethods[K].size();
    // Re-canonicalizing garbage-collects the pool, so the dead members'
    // names, descriptors, and constant payloads leave the classfile.
    if (auto E = canonicalizeConstantPool(Classes[K]))
      return E;
  }
  return Stats;
}
