//===- FlowState.cpp - Merge-correct §7.1 stack contexts ------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/FlowState.h"

using namespace cjpack;

void FlowState::startMethod() {
  Stack.clear();
  Known = true;
  Pending.clear();
}

void FlowState::setUnknown() {
  Stack.clear();
  Known = false;
}

void FlowState::seedHandler(uint32_t HandlerPc) {
  static const std::vector<VType> Thrown{VType::Ref};
  mergeEdge(Pending[HandlerPc], Thrown);
}

void FlowState::mergeEdge(Edge &E, const std::vector<VType> &Incoming) {
  if (E.Conflict)
    return;
  if (!E.Recorded) {
    E.Recorded = true;
    E.Stack = Incoming;
    return;
  }
  if (E.Stack.size() != Incoming.size()) {
    E.Conflict = true;
    E.Stack.clear();
    return;
  }
  for (size_t K = 0; K < E.Stack.size(); ++K)
    if (E.Stack[K] != Incoming[K])
      E.Stack[K] = VType::Unknown;
}

void FlowState::recordEdge(uint32_t From, int32_t Target) {
  // Only forward edges are representable in a single in-order pass;
  // backward (loop) edges are dropped identically on both sides.
  if (!Known || Target <= static_cast<int64_t>(From))
    return;
  mergeEdge(Pending[static_cast<uint32_t>(Target)], Stack);
}

void FlowState::enterInsn(uint32_t Offset) {
  // Drop stale entries (targets that were not instruction starts —
  // possible only on corrupt input; harmless to ignore).
  while (!Pending.empty() && Pending.begin()->first < Offset)
    Pending.erase(Pending.begin());
  auto It = Pending.find(Offset);
  if (It == Pending.end())
    return;
  Edge E = std::move(It->second);
  Pending.erase(It);
  if (E.Conflict) {
    setUnknown();
    return;
  }
  if (!Known) {
    Stack = std::move(E.Stack);
    Known = true;
    return;
  }
  if (Stack.size() != E.Stack.size()) {
    setUnknown();
    return;
  }
  for (size_t K = 0; K < Stack.size(); ++K)
    if (Stack[K] != E.Stack[K])
      Stack[K] = VType::Unknown;
}

VType FlowState::top(unsigned Depth) const {
  if (!Known || Stack.size() <= Depth)
    return VType::Unknown;
  return Stack[Stack.size() - 1 - Depth];
}

unsigned FlowState::contextId() const {
  if (!Known)
    return NumContexts - 1;
  unsigned T1 = static_cast<unsigned>(top(0));
  unsigned T2 = static_cast<unsigned>(top(1));
  return T1 * 7 + T2;
}

void FlowState::apply(const Insn &I, const InsnTypes *Types) {
  if (Known && !applyInsnStackEffect(I, Types, Stack))
    setUnknown();

  uint8_t N = static_cast<uint8_t>(I.Opcode);
  bool Conditional = (N >= 153 && N <= 166) || I.Opcode == Op::IfNull ||
                     I.Opcode == Op::IfNonNull;
  if (Conditional) {
    recordEdge(I.Offset, I.BranchTarget);
    return; // falls through with the post-pop state
  }
  switch (I.Opcode) {
  case Op::Goto:
  case Op::GotoW:
    recordEdge(I.Offset, I.BranchTarget);
    setUnknown();
    return;
  case Op::TableSwitch:
  case Op::LookupSwitch:
    recordEdge(I.Offset, I.SwitchDefault);
    for (int32_t T : I.SwitchTargets)
      recordEdge(I.Offset, T);
    setUnknown();
    return;
  case Op::IReturn:
  case Op::LReturn:
  case Op::FReturn:
  case Op::DReturn:
  case Op::AReturn:
  case Op::Return:
  case Op::Ret:
    setUnknown();
    return;
  default:
    // athrow and jsr already degraded to unknown in the transfer.
    return;
  }
}
