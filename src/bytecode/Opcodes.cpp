//===- Opcodes.cpp - JVM opcode table -------------------------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Opcodes.h"
#include <cassert>

using namespace cjpack;

static const OpInfo OpTable[] = {
#define CJPACK_OPCODE(NUM, ENUM, MNEMONIC, FORMAT, POPS, PUSHES)              \
  {MNEMONIC, OpFormat::FORMAT, POPS, PUSHES},
#include "bytecode/Opcodes.def"
};

const OpInfo &cjpack::opInfo(uint8_t Opcode) {
  assert(isValidOpcode(Opcode) && "undefined JVM opcode");
  return OpTable[Opcode];
}

CpRefKind cjpack::cpRefKind(Op O) {
  switch (O) {
  case Op::GetField:
  case Op::PutField:
    return CpRefKind::FieldInstance;
  case Op::GetStatic:
  case Op::PutStatic:
    return CpRefKind::FieldStatic;
  case Op::InvokeVirtual:
    return CpRefKind::MethodVirtual;
  case Op::InvokeSpecial:
    return CpRefKind::MethodSpecial;
  case Op::InvokeStatic:
    return CpRefKind::MethodStatic;
  case Op::InvokeInterface:
    return CpRefKind::MethodInterface;
  case Op::New:
  case Op::ANewArray:
  case Op::CheckCast:
  case Op::InstanceOf:
  case Op::MultiANewArray:
    return CpRefKind::ClassRef;
  case Op::Ldc:
  case Op::LdcW:
    return CpRefKind::LoadConst;
  case Op::Ldc2W:
    return CpRefKind::LoadConst2;
  default:
    return CpRefKind::None;
  }
}

bool cjpack::implicitLocalIndex(Op O, uint32_t &Index) {
  uint8_t N = static_cast<uint8_t>(O);
  // iload_0 (26) .. aload_3 (45): five type groups of four.
  if (N >= 26 && N <= 45) {
    Index = (N - 26u) % 4u;
    return true;
  }
  // istore_0 (59) .. astore_3 (78).
  if (N >= 59 && N <= 78) {
    Index = (N - 59u) % 4u;
    return true;
  }
  return false;
}
