//===- StackState.h - Approximate JVM stack state (§7.1) -------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's approximate stack-state computation: a linear pass over a
/// method's instructions tracking the number and types of operand-stack
/// values. No backwards branches are considered and the state is carried
/// over at most one forward branch at a time, so the computation is cheap
/// and — crucially — exactly reproducible by the decompressor, which runs
/// the identical algorithm over the reconstructed instruction stream.
///
/// The state is used (a) to collapse families of typed opcodes (all four
/// additions become one generic pseudo-op when the state predicts the
/// variant) and (b) as the context selector for method-reference MTF
/// queues (§5.1.6).
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_BYTECODE_STACKSTATE_H
#define CJPACK_BYTECODE_STACKSTATE_H

#include "bytecode/Instruction.h"
#include <optional>
#include <vector>

namespace cjpack {

/// Coarse JVM value types tracked on the approximate stack.
enum class VType : uint8_t { Int, Long, Float, Double, Ref, Void, Unknown };

/// Per-instruction type information the stack machine cannot derive from
/// the opcode alone; supplied by the caller (which can see the constant
/// pool or the packed model).
struct InsnTypes {
  /// Type of the constant loaded by ldc / ldc_w / ldc2_w.
  VType ConstType = VType::Unknown;
  /// Argument types of an invoked method (receiver excluded).
  std::vector<VType> ArgTypes;
  /// Return type (VType::Void for void methods).
  VType RetType = VType::Void;
  /// Type of the field accessed by get/putfield, get/putstatic.
  VType FieldType = VType::Unknown;
};

/// Families of typed opcodes collapsible under a known stack state.
enum class OpFamily : uint8_t {
  None,
  Add, Sub, Mul, Div, Rem,   ///< i/l/f/d variants, keyed by top of stack
  Neg,                       ///< keyed by top
  Shl, Shr, UShr,            ///< i/l variants, keyed by second-from-top
  And, Or, Xor,              ///< i/l variants, keyed by top
  Store,                     ///< i/l/f/d/a store <local>, keyed by top
  Store0, Store1, Store2, Store3, ///< *store_N shorthands, keyed by top
  TypedReturn,               ///< i/l/f/d/a return, keyed by top
};

/// Number of OpFamily enumerators (for pseudo-opcode numbering).
inline constexpr unsigned NumOpFamilies =
    static_cast<unsigned>(OpFamily::TypedReturn) + 1;

/// Returns the collapse family of \p O, or OpFamily::None.
OpFamily familyOf(Op O);

/// Stack depth whose type selects the family variant (0 = top).
unsigned familyKeyDepth(OpFamily F);

/// Returns the member of \p F for key type \p T, if one exists.
std::optional<Op> variantFor(OpFamily F, VType T);

/// Applies \p I's operand-stack effect to \p Stack, one element per value
/// (category-2 values occupy a single element). Returns false when the
/// effect cannot be tracked — underflow, a type mismatch against the
/// declared effect, a stack shuffle that would split a category-2 value,
/// or an instruction that invalidates the state (athrow, jsr) — in which
/// case the caller must treat the state as unknown. \p Types may be null
/// when the opcode needs no extra information.
bool applyInsnStackEffect(const Insn &I, const InsnTypes *Types,
                          std::vector<VType> &Stack);

/// The approximate stack state machine.
class StackState {
public:
  /// Resets to the method-entry state (known, empty stack).
  void startMethod();

  /// Advances the state across \p I. Must be called in code order with the
  /// final (reconstructed) opcode. \p Types may be null when the opcode
  /// needs no extra information.
  void apply(const Insn &I, const InsnTypes *Types);

  /// True when the machine knows the stack contents at this point.
  bool isKnown() const { return Known; }

  /// Type at \p Depth from the top; Unknown when the state is unknown or
  /// the stack is shallower than Depth+1.
  VType top(unsigned Depth = 0) const;

  /// Context id derived from the top two stack values, for the §5.1.6
  /// context-split method-reference pools. Values in [0, NumContexts).
  unsigned contextId() const;

  /// One context per (type, type) pair over the 7 VType values, plus one
  /// catch-all for an unknown state.
  static constexpr unsigned NumContexts = 7 * 7 + 1;

private:
  void setUnknown();
  void noteBranch(const Insn &I);

  std::vector<VType> Stack;
  bool Known = false;
  /// At most one saved forward-branch state (offset, stack).
  std::optional<std::pair<uint32_t, std::vector<VType>>> Pending;
};

} // namespace cjpack

#endif // CJPACK_BYTECODE_STACKSTATE_H
