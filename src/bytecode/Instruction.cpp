//===- Instruction.cpp - JVM instruction decoder/encoder ------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Instruction.h"
#include <string>

using namespace cjpack;

namespace {

/// Cursor over a code array with signed reads and error tracking.
class CodeCursor {
public:
  explicit CodeCursor(std::span<const uint8_t> Code) : R(Code) {}

  uint8_t u1() { return R.readU1(); }
  int8_t s1() { return static_cast<int8_t>(R.readU1()); }
  uint16_t u2() { return R.readU2(); }
  int16_t s2() { return static_cast<int16_t>(R.readU2()); }
  int32_t s4() { return static_cast<int32_t>(R.readU4()); }

  size_t position() const { return R.position(); }
  bool atEnd() const { return R.atEnd(); }
  bool hasError() const { return R.hasError(); }

  bool alignTo4() {
    while (R.position() % 4 != 0) {
      R.readU1();
      if (R.hasError())
        return false;
    }
    return true;
  }

private:
  ByteReader R;
};

} // namespace

namespace {

/// Validates a branch/switch target computed in 64 bits: it must land
/// inside the code array (so downstream offset arithmetic can trust it,
/// and the int32 it is stored in cannot have overflowed).
Error checkTarget(int64_t Target, size_t CodeLen, uint32_t At) {
  if (Target < 0 || Target >= static_cast<int64_t>(CodeLen))
    return makeError(ErrorCode::Corrupt,
                     "decodeCode: branch target " + std::to_string(Target) +
                         " outside code at offset " + std::to_string(At));
  return Error::success();
}

} // namespace

Expected<std::vector<Insn>> cjpack::decodeCode(
    std::span<const uint8_t> Code) {
  std::vector<Insn> Out;
  CodeCursor C(Code);
  while (!C.atEnd()) {
    Insn I;
    I.Offset = static_cast<uint32_t>(C.position());
    uint8_t Raw = C.u1();
    if (!isValidOpcode(Raw))
      return makeError(ErrorCode::Corrupt,
                       "decodeCode: undefined opcode " + std::to_string(Raw) +
                           " at offset " + std::to_string(I.Offset));
    I.Opcode = static_cast<Op>(Raw);

    // Fold a wide prefix into the modified instruction.
    if (I.Opcode == Op::Wide) {
      I.IsWide = true;
      uint8_t Mod = C.u1();
      if (!isValidOpcode(Mod))
        return makeError(ErrorCode::Corrupt,
                         "decodeCode: bad wide-modified opcode at offset " +
                             std::to_string(I.Offset));
      I.Opcode = static_cast<Op>(Mod);
      if (I.Opcode == Op::IInc) {
        I.LocalIndex = C.u2();
        I.Const = C.s2();
      } else if (opInfo(I.Opcode).Format == OpFormat::LocalU1) {
        I.LocalIndex = C.u2();
      } else {
        return makeError(ErrorCode::Corrupt,
                         "decodeCode: wide prefix on non-local opcode at "
                         "offset " +
                             std::to_string(I.Offset));
      }
      I.Length = static_cast<uint32_t>(C.position()) - I.Offset;
      if (C.hasError())
        return makeError(ErrorCode::Truncated,
                         "decodeCode: truncated wide instruction at offset " +
                             std::to_string(I.Offset));
      Out.push_back(std::move(I));
      continue;
    }

    switch (opInfo(I.Opcode).Format) {
    case OpFormat::None:
      break;
    case OpFormat::S1:
      I.Const = C.s1();
      break;
    case OpFormat::S2:
      I.Const = C.s2();
      break;
    case OpFormat::LocalU1:
      I.LocalIndex = C.u1();
      break;
    case OpFormat::CpU1:
      I.CpIndex = C.u1();
      break;
    case OpFormat::CpU2:
      I.CpIndex = C.u2();
      break;
    case OpFormat::Branch2: {
      // Targets are computed in 64 bits and validated against the code
      // length: hostile deltas can neither overflow the int32 nor point
      // outside the method.
      int64_t T = static_cast<int64_t>(I.Offset) + C.s2();
      if (!C.hasError())
        if (auto E = checkTarget(T, Code.size(), I.Offset))
          return E;
      I.BranchTarget = static_cast<int32_t>(T);
      break;
    }
    case OpFormat::Branch4: {
      int64_t T = static_cast<int64_t>(I.Offset) + C.s4();
      if (!C.hasError())
        if (auto E = checkTarget(T, Code.size(), I.Offset))
          return E;
      I.BranchTarget = static_cast<int32_t>(T);
      break;
    }
    case OpFormat::Iinc:
      I.LocalIndex = C.u1();
      I.Const = C.s1();
      break;
    case OpFormat::NewArrayType:
      I.Const = C.u1();
      break;
    case OpFormat::InvokeInterface:
      I.CpIndex = C.u2();
      I.InvokeCount = C.u1();
      C.u1(); // mandated zero byte
      break;
    case OpFormat::InvokeDynamic:
      I.CpIndex = C.u2();
      C.u1();
      C.u1();
      break;
    case OpFormat::MultiANewArray:
      I.CpIndex = C.u2();
      I.Const = C.u1(); // dimensions
      break;
    case OpFormat::TableSwitch: {
      if (!C.alignTo4())
        return makeError(ErrorCode::Truncated,
                         "decodeCode: truncated tableswitch pad");
      int64_t Def = static_cast<int64_t>(I.Offset) + C.s4();
      I.SwitchLow = C.s4();
      I.SwitchHigh = C.s4();
      if (C.hasError() || I.SwitchHigh < I.SwitchLow)
        return makeError(ErrorCode::Corrupt,
                         "decodeCode: malformed tableswitch at offset " +
                             std::to_string(I.Offset));
      if (auto E = checkTarget(Def, Code.size(), I.Offset))
        return E;
      I.SwitchDefault = static_cast<int32_t>(Def);
      // Each entry costs four bytes, so a count past the remaining input
      // is rejected before the vector reserves anything.
      int64_t N = static_cast<int64_t>(I.SwitchHigh) - I.SwitchLow + 1;
      if (N > static_cast<int64_t>(Code.size()))
        return makeError(ErrorCode::Corrupt,
                         "decodeCode: oversized tableswitch at offset " +
                             std::to_string(I.Offset));
      I.SwitchTargets.reserve(static_cast<size_t>(N));
      for (int64_t K = 0; K < N; ++K) {
        int64_t T = static_cast<int64_t>(I.Offset) + C.s4();
        if (!C.hasError())
          if (auto E = checkTarget(T, Code.size(), I.Offset))
            return E;
        I.SwitchTargets.push_back(static_cast<int32_t>(T));
      }
      break;
    }
    case OpFormat::LookupSwitch: {
      if (!C.alignTo4())
        return makeError(ErrorCode::Truncated,
                         "decodeCode: truncated lookupswitch pad");
      int64_t Def = static_cast<int64_t>(I.Offset) + C.s4();
      int32_t N = C.s4();
      if (C.hasError() || N < 0 ||
          static_cast<size_t>(N) > Code.size())
        return makeError(ErrorCode::Corrupt,
                         "decodeCode: malformed lookupswitch at offset " +
                             std::to_string(I.Offset));
      if (auto E = checkTarget(Def, Code.size(), I.Offset))
        return E;
      I.SwitchDefault = static_cast<int32_t>(Def);
      I.SwitchMatches.reserve(static_cast<size_t>(N));
      I.SwitchTargets.reserve(static_cast<size_t>(N));
      for (int32_t K = 0; K < N; ++K) {
        I.SwitchMatches.push_back(C.s4());
        int64_t T = static_cast<int64_t>(I.Offset) + C.s4();
        if (!C.hasError())
          if (auto E = checkTarget(T, Code.size(), I.Offset))
            return E;
        I.SwitchTargets.push_back(static_cast<int32_t>(T));
      }
      break;
    }
    case OpFormat::Wide:
      return makeError(ErrorCode::Corrupt,
                       "decodeCode: unreachable wide format");
    }

    if (C.hasError())
      return makeError(ErrorCode::Truncated,
                       "decodeCode: truncated instruction at offset " +
                           std::to_string(I.Offset));
    I.Length = static_cast<uint32_t>(C.position()) - I.Offset;
    Out.push_back(std::move(I));
  }
  return Out;
}

uint32_t cjpack::encodedLength(const Insn &I, uint32_t Offset) {
  if (I.IsWide)
    return I.Opcode == Op::IInc ? 6u : 4u;
  switch (opInfo(I.Opcode).Format) {
  case OpFormat::None:
    return 1;
  case OpFormat::S1:
  case OpFormat::LocalU1:
  case OpFormat::CpU1:
  case OpFormat::NewArrayType:
    return 2;
  case OpFormat::S2:
  case OpFormat::CpU2:
  case OpFormat::Branch2:
  case OpFormat::Iinc:
    return 3;
  case OpFormat::MultiANewArray:
    return 4;
  case OpFormat::Branch4:
  case OpFormat::InvokeInterface:
  case OpFormat::InvokeDynamic:
    return 5;
  case OpFormat::TableSwitch: {
    uint32_t Pad = (4 - (Offset + 1) % 4) % 4;
    return 1 + Pad + 12 +
           4 * static_cast<uint32_t>(I.SwitchTargets.size());
  }
  case OpFormat::LookupSwitch: {
    uint32_t Pad = (4 - (Offset + 1) % 4) % 4;
    return 1 + Pad + 8 +
           8 * static_cast<uint32_t>(I.SwitchTargets.size());
  }
  case OpFormat::Wide:
    break;
  }
  assert(false && "unreachable opcode format");
  return 1;
}

std::vector<uint8_t> cjpack::encodeCode(const std::vector<Insn> &Insns) {
  ByteWriter W;
  for (const Insn &I : Insns) {
    uint32_t Offset = static_cast<uint32_t>(W.size());
    assert(Offset == I.Offset && "instruction offsets out of sync");
    if (I.IsWide) {
      W.writeU1(static_cast<uint8_t>(Op::Wide));
      W.writeU1(static_cast<uint8_t>(I.Opcode));
      W.writeU2(static_cast<uint16_t>(I.LocalIndex));
      if (I.Opcode == Op::IInc)
        W.writeU2(static_cast<uint16_t>(I.Const));
      continue;
    }
    W.writeU1(static_cast<uint8_t>(I.Opcode));
    switch (opInfo(I.Opcode).Format) {
    case OpFormat::None:
      break;
    case OpFormat::S1:
      W.writeU1(static_cast<uint8_t>(I.Const));
      break;
    case OpFormat::S2:
      W.writeU2(static_cast<uint16_t>(I.Const));
      break;
    case OpFormat::LocalU1:
      W.writeU1(static_cast<uint8_t>(I.LocalIndex));
      break;
    case OpFormat::CpU1:
      assert(I.CpIndex <= 0xFF && "ldc index must fit one byte");
      W.writeU1(static_cast<uint8_t>(I.CpIndex));
      break;
    case OpFormat::CpU2:
      W.writeU2(I.CpIndex);
      break;
    case OpFormat::Branch2:
      W.writeU2(static_cast<uint16_t>(I.BranchTarget -
                                      static_cast<int32_t>(Offset)));
      break;
    case OpFormat::Branch4:
      W.writeU4(static_cast<uint32_t>(I.BranchTarget -
                                      static_cast<int32_t>(Offset)));
      break;
    case OpFormat::Iinc:
      W.writeU1(static_cast<uint8_t>(I.LocalIndex));
      W.writeU1(static_cast<uint8_t>(I.Const));
      break;
    case OpFormat::NewArrayType:
      W.writeU1(static_cast<uint8_t>(I.Const));
      break;
    case OpFormat::InvokeInterface:
      W.writeU2(I.CpIndex);
      W.writeU1(I.InvokeCount);
      W.writeU1(0);
      break;
    case OpFormat::InvokeDynamic:
      W.writeU2(I.CpIndex);
      W.writeU1(0);
      W.writeU1(0);
      break;
    case OpFormat::MultiANewArray:
      W.writeU2(I.CpIndex);
      W.writeU1(static_cast<uint8_t>(I.Const));
      break;
    case OpFormat::TableSwitch: {
      while (W.size() % 4 != 0)
        W.writeU1(0);
      W.writeU4(static_cast<uint32_t>(I.SwitchDefault -
                                      static_cast<int32_t>(Offset)));
      W.writeU4(static_cast<uint32_t>(I.SwitchLow));
      W.writeU4(static_cast<uint32_t>(I.SwitchHigh));
      for (int32_t T : I.SwitchTargets)
        W.writeU4(static_cast<uint32_t>(T - static_cast<int32_t>(Offset)));
      break;
    }
    case OpFormat::LookupSwitch: {
      while (W.size() % 4 != 0)
        W.writeU1(0);
      W.writeU4(static_cast<uint32_t>(I.SwitchDefault -
                                      static_cast<int32_t>(Offset)));
      W.writeU4(static_cast<uint32_t>(I.SwitchMatches.size()));
      for (size_t K = 0; K < I.SwitchMatches.size(); ++K) {
        W.writeU4(static_cast<uint32_t>(I.SwitchMatches[K]));
        W.writeU4(static_cast<uint32_t>(I.SwitchTargets[K] -
                                        static_cast<int32_t>(Offset)));
      }
      break;
    }
    case OpFormat::Wide:
      assert(false && "wide handled above");
      break;
    }
  }
  return W.take();
}
