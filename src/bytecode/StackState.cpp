//===- StackState.cpp - Approximate JVM stack state (§7.1) ----------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "bytecode/StackState.h"
#include <cassert>

using namespace cjpack;

OpFamily cjpack::familyOf(Op O) {
  switch (O) {
  case Op::IAdd: case Op::LAdd: case Op::FAdd: case Op::DAdd:
    return OpFamily::Add;
  case Op::ISub: case Op::LSub: case Op::FSub: case Op::DSub:
    return OpFamily::Sub;
  case Op::IMul: case Op::LMul: case Op::FMul: case Op::DMul:
    return OpFamily::Mul;
  case Op::IDiv: case Op::LDiv: case Op::FDiv: case Op::DDiv:
    return OpFamily::Div;
  case Op::IRem: case Op::LRem: case Op::FRem: case Op::DRem:
    return OpFamily::Rem;
  case Op::INeg: case Op::LNeg: case Op::FNeg: case Op::DNeg:
    return OpFamily::Neg;
  case Op::IShl: case Op::LShl:
    return OpFamily::Shl;
  case Op::IShr: case Op::LShr:
    return OpFamily::Shr;
  case Op::IUShr: case Op::LUShr:
    return OpFamily::UShr;
  case Op::IAnd: case Op::LAnd:
    return OpFamily::And;
  case Op::IOr: case Op::LOr:
    return OpFamily::Or;
  case Op::IXor: case Op::LXor:
    return OpFamily::Xor;
  case Op::IStore: case Op::LStore: case Op::FStore: case Op::DStore:
  case Op::AStore:
    return OpFamily::Store;
  case Op::IStore0: case Op::LStore0: case Op::FStore0: case Op::DStore0:
  case Op::AStore0:
    return OpFamily::Store0;
  case Op::IStore1: case Op::LStore1: case Op::FStore1: case Op::DStore1:
  case Op::AStore1:
    return OpFamily::Store1;
  case Op::IStore2: case Op::LStore2: case Op::FStore2: case Op::DStore2:
  case Op::AStore2:
    return OpFamily::Store2;
  case Op::IStore3: case Op::LStore3: case Op::FStore3: case Op::DStore3:
  case Op::AStore3:
    return OpFamily::Store3;
  case Op::IReturn: case Op::LReturn: case Op::FReturn: case Op::DReturn:
  case Op::AReturn:
    return OpFamily::TypedReturn;
  default:
    return OpFamily::None;
  }
}

unsigned cjpack::familyKeyDepth(OpFamily F) {
  switch (F) {
  case OpFamily::Shl:
  case OpFamily::Shr:
  case OpFamily::UShr:
    return 1; // shift amount (always int) sits on top; the value selects
  default:
    return 0;
  }
}

std::optional<Op> cjpack::variantFor(OpFamily F, VType T) {
  // The i/l/f/d families are laid out contiguously in the opcode space in
  // that order; the store/return families in i/l/f/d/a order.
  auto Numeric4 = [&](Op Base) -> std::optional<Op> {
    switch (T) {
    case VType::Int:
      return Base;
    case VType::Long:
      return static_cast<Op>(static_cast<uint8_t>(Base) + 1);
    case VType::Float:
      return static_cast<Op>(static_cast<uint8_t>(Base) + 2);
    case VType::Double:
      return static_cast<Op>(static_cast<uint8_t>(Base) + 3);
    default:
      return std::nullopt;
    }
  };
  auto IntLong = [&](Op IVariant, Op LVariant) -> std::optional<Op> {
    if (T == VType::Int)
      return IVariant;
    if (T == VType::Long)
      return LVariant;
    return std::nullopt;
  };
  auto Typed5 = [&](Op Base, unsigned Stride) -> std::optional<Op> {
    unsigned K;
    switch (T) {
    case VType::Int: K = 0; break;
    case VType::Long: K = 1; break;
    case VType::Float: K = 2; break;
    case VType::Double: K = 3; break;
    case VType::Ref: K = 4; break;
    default:
      return std::nullopt;
    }
    return static_cast<Op>(static_cast<uint8_t>(Base) + K * Stride);
  };

  switch (F) {
  case OpFamily::None:
    return std::nullopt;
  case OpFamily::Add: return Numeric4(Op::IAdd);
  case OpFamily::Sub: return Numeric4(Op::ISub);
  case OpFamily::Mul: return Numeric4(Op::IMul);
  case OpFamily::Div: return Numeric4(Op::IDiv);
  case OpFamily::Rem: return Numeric4(Op::IRem);
  case OpFamily::Neg: return Numeric4(Op::INeg);
  case OpFamily::Shl: return IntLong(Op::IShl, Op::LShl);
  case OpFamily::Shr: return IntLong(Op::IShr, Op::LShr);
  case OpFamily::UShr: return IntLong(Op::IUShr, Op::LUShr);
  case OpFamily::And: return IntLong(Op::IAnd, Op::LAnd);
  case OpFamily::Or: return IntLong(Op::IOr, Op::LOr);
  case OpFamily::Xor: return IntLong(Op::IXor, Op::LXor);
  case OpFamily::Store: return Typed5(Op::IStore, 1);
  case OpFamily::Store0: return Typed5(Op::IStore0, 4);
  case OpFamily::Store1: return Typed5(Op::IStore1, 4);
  case OpFamily::Store2: return Typed5(Op::IStore2, 4);
  case OpFamily::Store3: return Typed5(Op::IStore3, 4);
  case OpFamily::TypedReturn: return Typed5(Op::IReturn, 1);
  }
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// The shared per-instruction transfer function
//===----------------------------------------------------------------------===//

namespace {

static bool isCat2(VType T) { return T == VType::Long || T == VType::Double; }

static VType charType(char C) {
  switch (C) {
  case 'I': return VType::Int;
  case 'J': return VType::Long;
  case 'F': return VType::Float;
  case 'D': return VType::Double;
  case 'A': return VType::Ref;
  default:
    assert(false && "bad stack-effect character");
    return VType::Unknown;
  }
}

/// Mutable view over a stack vector with the pop/push primitives the
/// transfer function needs; any failed pop poisons the computation.
class StackOps {
public:
  explicit StackOps(std::vector<VType> &Stack) : Stack(Stack) {}

  bool popAny(VType &Out) {
    if (Stack.empty())
      return false;
    Out = Stack.back();
    Stack.pop_back();
    return true;
  }

  bool popType(VType Expected) {
    VType T;
    if (!popAny(T))
      return false;
    // A mismatch means the approximation diverged from the real types
    // (e.g. a join we could not model); the state must degrade.
    return T == Expected || T == VType::Unknown;
  }

  void push(VType T) { Stack.push_back(T); }

  /// Pops N stack units (cat2 values count as two units); fails when the
  /// unit boundary falls inside a cat2 value. Unknown counts as one unit.
  bool popUnits(unsigned Units, std::vector<VType> &Out) {
    while (Units > 0) {
      VType T;
      if (!popAny(T))
        return false;
      unsigned W = isCat2(T) ? 2 : 1;
      if (W > Units)
        return false;
      Units -= W;
      Out.push_back(T);
    }
    return true;
  }

  void pushGroup(const std::vector<VType> &G) {
    for (auto It = G.rbegin(); It != G.rend(); ++It)
      push(*It);
  }

private:
  std::vector<VType> &Stack;
};

/// The '*'-marked opcodes whose effect depends on operands.
static bool applySpecial(const Insn &I, const InsnTypes *Types,
                         StackOps S) {
  switch (I.Opcode) {
  case Op::Ldc:
  case Op::LdcW:
  case Op::Ldc2W:
    S.push(Types ? Types->ConstType : VType::Unknown);
    return true;
  case Op::Pop: {
    VType T;
    return S.popAny(T) && !isCat2(T);
  }
  case Op::Pop2: {
    std::vector<VType> G;
    return S.popUnits(2, G);
  }
  case Op::Dup: {
    VType T;
    if (!S.popAny(T) || isCat2(T))
      return false;
    S.push(T);
    S.push(T);
    return true;
  }
  case Op::DupX1: {
    VType V1, V2;
    if (!S.popAny(V1) || !S.popAny(V2) || isCat2(V1) || isCat2(V2))
      return false;
    S.push(V1);
    S.push(V2);
    S.push(V1);
    return true;
  }
  case Op::DupX2: {
    VType V1;
    if (!S.popAny(V1) || isCat2(V1))
      return false;
    std::vector<VType> G;
    if (!S.popUnits(2, G))
      return false;
    S.push(V1);
    S.pushGroup(G);
    S.push(V1);
    return true;
  }
  case Op::Dup2: {
    std::vector<VType> G;
    if (!S.popUnits(2, G))
      return false;
    S.pushGroup(G);
    S.pushGroup(G);
    return true;
  }
  case Op::Dup2X1: {
    std::vector<VType> G;
    VType V;
    if (!S.popUnits(2, G) || !S.popAny(V) || isCat2(V))
      return false;
    S.pushGroup(G);
    S.push(V);
    S.pushGroup(G);
    return true;
  }
  case Op::Dup2X2: {
    std::vector<VType> G1, G2;
    if (!S.popUnits(2, G1) || !S.popUnits(2, G2))
      return false;
    S.pushGroup(G1);
    S.pushGroup(G2);
    S.pushGroup(G1);
    return true;
  }
  case Op::Swap: {
    VType V1, V2;
    if (!S.popAny(V1) || !S.popAny(V2) || isCat2(V1) || isCat2(V2))
      return false;
    S.push(V1);
    S.push(V2);
    return true;
  }
  case Op::GetField:
  case Op::GetStatic: {
    if (I.Opcode == Op::GetField && !S.popType(VType::Ref))
      return false;
    if (!Types || Types->FieldType == VType::Unknown)
      return false;
    S.push(Types->FieldType);
    return true;
  }
  case Op::PutField:
  case Op::PutStatic: {
    if (!Types || Types->FieldType == VType::Unknown)
      return false;
    if (!S.popType(Types->FieldType))
      return false;
    return I.Opcode != Op::PutField || S.popType(VType::Ref);
  }
  case Op::InvokeVirtual:
  case Op::InvokeSpecial:
  case Op::InvokeStatic:
  case Op::InvokeInterface:
  case Op::InvokeDynamic: {
    if (!Types)
      return false;
    for (auto It = Types->ArgTypes.rbegin(); It != Types->ArgTypes.rend();
         ++It)
      if (!S.popType(*It))
        return false;
    if (I.Opcode != Op::InvokeStatic && I.Opcode != Op::InvokeDynamic &&
        !S.popType(VType::Ref))
      return false;
    if (Types->RetType != VType::Void)
      S.push(Types->RetType);
    return true;
  }
  case Op::MultiANewArray: {
    for (int32_t K = 0; K < I.Const; ++K)
      if (!S.popType(VType::Int))
        return false;
    S.push(VType::Ref);
    return true;
  }
  case Op::AThrow:
  case Op::Jsr:
  case Op::JsrW:
    // These invalidate the linear approximation entirely.
    return false;
  default:
    assert(false && "applySpecial on a table-driven opcode");
    return false;
  }
}

} // namespace

bool cjpack::applyInsnStackEffect(const Insn &I, const InsnTypes *Types,
                                  std::vector<VType> &Stack) {
  const OpInfo &Info = opInfo(I.Opcode);
  StackOps S(Stack);
  if (Info.Pops[0] == '*' || Info.Pushes[0] == '*')
    return applySpecial(I, Types, S);
  // Pop the declared types, top of stack last in the string.
  const char *P = Info.Pops;
  size_t L = 0;
  while (P[L])
    ++L;
  for (size_t K = L; K > 0; --K)
    if (!S.popType(charType(P[K - 1])))
      return false;
  for (const char *Q = Info.Pushes; *Q; ++Q)
    S.push(charType(*Q));
  return true;
}

//===----------------------------------------------------------------------===//
// StackState: the paper's linear approximation
//===----------------------------------------------------------------------===//

void StackState::startMethod() {
  Stack.clear();
  Known = true;
  Pending.reset();
}

void StackState::setUnknown() {
  Stack.clear();
  Known = false;
}

VType StackState::top(unsigned Depth) const {
  if (!Known || Stack.size() <= Depth)
    return VType::Unknown;
  return Stack[Stack.size() - 1 - Depth];
}

unsigned StackState::contextId() const {
  if (!Known)
    return NumContexts - 1;
  unsigned T1 = static_cast<unsigned>(top(0));
  unsigned T2 = static_cast<unsigned>(top(1));
  return T1 * 7 + T2;
}

void StackState::noteBranch(const Insn &I) {
  uint8_t N = static_cast<uint8_t>(I.Opcode);
  bool Conditional = (N >= 153 && N <= 166) || I.Opcode == Op::IfNull ||
                     I.Opcode == Op::IfNonNull;
  bool UncondGoto = I.Opcode == Op::Goto || I.Opcode == Op::GotoW;
  if ((Conditional || UncondGoto) && Known && !Pending &&
      I.BranchTarget > static_cast<int32_t>(I.Offset))
    Pending = {static_cast<uint32_t>(I.BranchTarget), Stack};
  if (UncondGoto || I.isSwitch() || I.Opcode == Op::Ret)
    setUnknown();
  switch (I.Opcode) {
  case Op::IReturn: case Op::LReturn: case Op::FReturn: case Op::DReturn:
  case Op::AReturn: case Op::Return:
    setUnknown();
    break;
  default:
    break;
  }
}

void StackState::apply(const Insn &I, const InsnTypes *Types) {
  // Recover a saved forward-branch state when we arrive at its target.
  if (Pending) {
    if (Pending->first == I.Offset) {
      if (!Known) {
        Stack = Pending->second;
        Known = true;
      }
      Pending.reset();
    } else if (Pending->first < I.Offset) {
      Pending.reset();
    }
  }

  if (Known && !applyInsnStackEffect(I, Types, Stack))
    setUnknown();

  noteBranch(I);
}
