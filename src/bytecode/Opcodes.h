//===- Opcodes.h - JVM opcode table ----------------------------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JVM instruction set: opcode enumerators, operand formats, and the
/// static per-opcode information (mnemonic, fixed stack effect, the kind
/// of constant-pool reference carried) used by the instruction codec, the
/// stack-state machine, and the packed bytecode encoder.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_BYTECODE_OPCODES_H
#define CJPACK_BYTECODE_OPCODES_H

#include <cstdint>

namespace cjpack {

/// JVM opcodes, named per the spec mnemonics.
enum class Op : uint8_t {
#define CJPACK_OPCODE(NUM, ENUM, MNEMONIC, FORMAT, POPS, PUSHES) ENUM = NUM,
#include "bytecode/Opcodes.def"
};

/// Highest defined opcode value (jsr_w).
inline constexpr uint8_t MaxOpcode = 201;

/// Operand layout following an opcode byte.
enum class OpFormat : uint8_t {
  None,            ///< no operands
  S1,              ///< one signed byte (bipush)
  S2,              ///< one signed short (sipush)
  LocalU1,         ///< unsigned local-variable index byte
  CpU1,            ///< one-byte constant-pool index (ldc)
  CpU2,            ///< two-byte constant-pool index
  Branch2,         ///< signed 16-bit branch offset
  Branch4,         ///< signed 32-bit branch offset
  Iinc,            ///< local index byte + signed increment byte
  NewArrayType,    ///< primitive array type code byte
  InvokeInterface, ///< u2 cp index, u1 count, u1 zero
  InvokeDynamic,   ///< u2 cp index, two zero bytes
  MultiANewArray,  ///< u2 cp index, u1 dimension count
  TableSwitch,     ///< padded, default + low/high + jump table
  LookupSwitch,    ///< padded, default + match/offset pairs
  Wide,            ///< prefix modifying the following instruction
};

/// The kind of constant-pool entry an instruction's cp operand names.
/// Drives the choice of reference stream / MTF pool in the packed format
/// (the paper keeps separate pools per method kind and field kind, §5.1).
enum class CpRefKind : uint8_t {
  None,
  FieldInstance, ///< getfield / putfield
  FieldStatic,   ///< getstatic / putstatic
  MethodVirtual,
  MethodSpecial,
  MethodStatic,
  MethodInterface,
  ClassRef,      ///< new, anewarray, checkcast, instanceof, multianewarray
  LoadConst,     ///< ldc / ldc_w (int, float, or string entry)
  LoadConst2,    ///< ldc2_w (long or double entry)
};

/// Static description of one opcode.
struct OpInfo {
  const char *Mnemonic;
  OpFormat Format;
  /// Fixed pop/push type strings over {I,J,F,D,A}; "*" when the effect
  /// depends on operands and is handled specially by StackState.
  const char *Pops;
  const char *Pushes;
};

/// Returns the static info for \p Opcode (valid for 0..MaxOpcode).
const OpInfo &opInfo(uint8_t Opcode);
inline const OpInfo &opInfo(Op O) { return opInfo(static_cast<uint8_t>(O)); }

/// True if \p Opcode is a defined JVM instruction.
inline bool isValidOpcode(uint8_t Opcode) { return Opcode <= MaxOpcode; }

/// Returns the kind of constant-pool reference \p Opcode carries
/// (CpRefKind::None for instructions without a cp operand).
CpRefKind cpRefKind(Op O);

/// For iload/istore-style instructions with implicit or explicit local
/// operands, returns true and sets \p Index for the _0.._3 shorthands.
bool implicitLocalIndex(Op O, uint32_t &Index);

} // namespace cjpack

#endif // CJPACK_BYTECODE_OPCODES_H
