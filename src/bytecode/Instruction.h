//===- Instruction.h - JVM instruction decoder/encoder ---------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decoded view of a JVM code array. decodeCode() turns raw bytecode into
/// a vector of Insn records (branch targets made absolute, wide prefixes
/// folded in); encodeCode() is its exact inverse: re-encoding a decoded
/// method reproduces the original bytes, provided constant-pool operands
/// still fit their original width.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_BYTECODE_INSTRUCTION_H
#define CJPACK_BYTECODE_INSTRUCTION_H

#include "bytecode/Opcodes.h"
#include "support/ByteBuffer.h"
#include "support/Error.h"
#include <cstdint>
#include <span>
#include <vector>

namespace cjpack {

/// One decoded JVM instruction.
struct Insn {
  uint32_t Offset = 0;       ///< bytecode offset of the opcode byte
  Op Opcode = Op::Nop;
  bool IsWide = false;       ///< folded `wide` prefix (load/store/ret/iinc)
  uint32_t LocalIndex = 0;   ///< local-variable operand
  int32_t Const = 0;         ///< bipush/sipush value, iinc delta, atype
  uint16_t CpIndex = 0;      ///< constant-pool operand
  int32_t BranchTarget = 0;  ///< absolute target offset for branches
  uint8_t InvokeCount = 0;   ///< invokeinterface nargs byte

  // Switch payload (tableswitch / lookupswitch), targets absolute.
  int32_t SwitchDefault = 0;
  int32_t SwitchLow = 0;
  int32_t SwitchHigh = 0;
  std::vector<int32_t> SwitchMatches; ///< lookupswitch keys
  std::vector<int32_t> SwitchTargets;

  /// Encoded length in bytes at its original position.
  uint32_t Length = 0;

  bool isBranch() const {
    OpFormat F = opInfo(Opcode).Format;
    return F == OpFormat::Branch2 || F == OpFormat::Branch4;
  }
  bool isSwitch() const {
    return Opcode == Op::TableSwitch || Opcode == Op::LookupSwitch;
  }
  bool hasCpOperand() const { return cpRefKind(Opcode) != CpRefKind::None; }
};

/// Decodes a full code array into instructions. Fails on truncated or
/// undefined opcodes.
Expected<std::vector<Insn>> decodeCode(std::span<const uint8_t> Code);

/// Re-encodes instructions; instruction offsets must match what encoding
/// produces (they do for a vector straight out of decodeCode, and for
/// vectors built by the pack decoder which assigns offsets itself).
std::vector<uint8_t> encodeCode(const std::vector<Insn> &Insns);

/// Computes the encoded length of \p I if it begins at \p Offset (switch
/// padding depends on the offset).
uint32_t encodedLength(const Insn &I, uint32_t Offset);

} // namespace cjpack

#endif // CJPACK_BYTECODE_INSTRUCTION_H
