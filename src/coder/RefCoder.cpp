//===- RefCoder.cpp - reference-encoding schemes (§5.1) -------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "coder/RefCoder.h"
#include "mtf/MtfQueue.h"
#include "support/VarInt.h"
#include <algorithm>
#include <cassert>
#include <set>
#include <vector>

using namespace cjpack;

const char *cjpack::refSchemeName(RefScheme S) {
  switch (S) {
  case RefScheme::Simple: return "Simple";
  case RefScheme::Basic: return "Basic";
  case RefScheme::Freq: return "Freq";
  case RefScheme::Cache: return "Cache";
  case RefScheme::MtfBasic: return "MTF Basic";
  case RefScheme::MtfTransients: return "MTF Transients";
  case RefScheme::MtfContext: return "MTF Context";
  case RefScheme::MtfTransientsContext: return "MTF Trans+Ctx";
  }
  return "?";
}

bool cjpack::refSchemeNeedsStats(RefScheme S) {
  return S == RefScheme::Freq || S == RefScheme::Cache ||
         S == RefScheme::MtfTransients ||
         S == RefScheme::MtfTransientsContext;
}

bool cjpack::refSchemeSupportsPreload(RefScheme S) {
  return S != RefScheme::Freq && S != RefScheme::Cache;
}

uint32_t RefStats::rankOf(uint32_t Pool, uint32_t Object) const {
  buildRanks();
  auto It = Ranks.find({Pool, Object});
  return It == Ranks.end() ? 0 : It->second;
}

void RefStats::buildRanks() const {
  if (RanksBuilt)
    return;
  RanksBuilt = true;
  // Per pool, sort recurring objects by descending count (ties by id for
  // determinism) and assign ranks starting at 1.
  std::map<uint32_t, std::vector<std::pair<uint32_t, uint32_t>>> PerPool;
  for (const auto &[Key, Count] : Counts)
    if (Count > 1)
      PerPool[Key.first].push_back({Count, Key.second});
  for (auto &[Pool, Items] : PerPool) {
    std::sort(Items.begin(), Items.end(),
              [](const auto &A, const auto &B) {
                if (A.first != B.first)
                  return A.first > B.first;
                return A.second < B.second;
              });
    uint32_t Rank = 1;
    for (const auto &[Count, Object] : Items)
      Ranks[{Pool, Object}] = Rank++;
  }
}

namespace {

//===----------------------------------------------------------------------===//
// Simple / Basic: fixed sequential ids
//===----------------------------------------------------------------------===//

class FixedIdEncoder final : public RefEncoder {
public:
  explicit FixedIdEncoder(bool TwoByte) : TwoByte(TwoByte) {}

  bool encode(uint32_t Pool, uint32_t, uint32_t Object,
              ByteWriter &W) override {
    auto &P = Pools[Pool];
    auto It = P.Ids.find(Object);
    if (It == P.Ids.end()) {
      write(W, 0);
      P.Ids.emplace(Object, ++P.NextId);
      return true;
    }
    write(W, It->second);
    return false;
  }

  bool preload(uint32_t Pool, uint32_t Object) override {
    auto &P = Pools[Pool];
    if (!P.Ids.count(Object))
      P.Ids.emplace(Object, ++P.NextId);
    return true;
  }

private:
  void write(ByteWriter &W, uint32_t V) {
    if (TwoByte) {
      assert(V <= 0xFFFF && "Simple scheme id overflow");
      W.writeU2(static_cast<uint16_t>(V));
    } else {
      writeVarUInt(W, V);
    }
  }

  struct PoolState {
    std::map<uint32_t, uint32_t> Ids;
    uint32_t NextId = 0;
  };
  std::map<uint32_t, PoolState> Pools;
  bool TwoByte;
};

class FixedIdDecoder final : public RefDecoder {
public:
  explicit FixedIdDecoder(bool TwoByte) : TwoByte(TwoByte) {}

  std::optional<uint32_t> decode(uint32_t Pool, uint32_t,
                                 ByteReader &R) override {
    uint32_t V = TwoByte ? R.readU2()
                         : static_cast<uint32_t>(readVarUInt(R));
    auto &P = Pools[Pool];
    if (V == 0)
      return std::nullopt;
    // Corrupt input: treat an unknown id like a fresh object; the
    // caller's structural validation rejects the garbage downstream.
    if (V > P.Objects.size())
      return std::nullopt;
    return P.Objects[V - 1];
  }

  void registerNew(uint32_t Pool, uint32_t, uint32_t Object) override {
    Pools[Pool].Objects.push_back(Object);
  }

  bool preload(uint32_t Pool, uint32_t Object) override {
    // The preload table repeats objects (shared packages, <init>, ...);
    // the encoder dedupes by id map, so dedupe here too.
    auto &Objects = Pools[Pool].Objects;
    if (std::find(Objects.begin(), Objects.end(), Object) ==
        Objects.end())
      Objects.push_back(Object);
    return true;
  }

private:
  struct PoolState {
    std::vector<uint32_t> Objects; ///< id-1 -> object
  };
  std::map<uint32_t, PoolState> Pools;
  bool TwoByte;
};

//===----------------------------------------------------------------------===//
// Freq: frequency-ranked ids, shared transient id 0
//===----------------------------------------------------------------------===//

class FreqEncoder final : public RefEncoder {
public:
  explicit FreqEncoder(const RefStats &Stats) : Stats(Stats) {}

  bool encode(uint32_t Pool, uint32_t, uint32_t Object,
              ByteWriter &W) override {
    if (Stats.isTransient(Pool, Object)) {
      writeVarUInt(W, 0);
      return true;
    }
    uint32_t Rank = Stats.rankOf(Pool, Object);
    assert(Rank > 0 && "recurring object without a rank");
    writeVarUInt(W, Rank);
    return Seen[Pool].insert(Object).second;
  }

private:
  const RefStats &Stats;
  std::map<uint32_t, std::set<uint32_t>> Seen;
};

class FreqDecoder final : public RefDecoder {
public:
  std::optional<uint32_t> decode(uint32_t Pool, uint32_t,
                                 ByteReader &R) override {
    uint32_t V = static_cast<uint32_t>(readVarUInt(R));
    if (V == 0) {
      Pending[Pool] = 0; // transient: learn nothing
      return std::nullopt;
    }
    auto &Bind = Bindings[Pool];
    auto It = Bind.find(V);
    if (It != Bind.end())
      return It->second;
    Pending[Pool] = V;
    return std::nullopt;
  }

  void registerNew(uint32_t Pool, uint32_t, uint32_t Object) override {
    // Definitions nest (a new field ref decodes a class ref inside it),
    // so pending state is tracked per pool.
    auto It = Pending.find(Pool);
    assert(It != Pending.end() && "registerNew without a pending decode");
    if (It->second != 0)
      Bindings[Pool][It->second] = Object;
    Pending.erase(It);
  }

private:
  std::map<uint32_t, std::map<uint32_t, uint32_t>> Bindings;
  std::map<uint32_t, uint32_t> Pending; ///< pool -> pending id (0 = none)
};

//===----------------------------------------------------------------------===//
// Cache: Freq augmented with a 16-entry move-to-front cache
//===----------------------------------------------------------------------===//

constexpr size_t CacheSize = 16;

class CacheEncoder final : public RefEncoder {
public:
  explicit CacheEncoder(const RefStats &Stats) : Stats(Stats) {}

  bool encode(uint32_t Pool, uint32_t, uint32_t Object,
              ByteWriter &W) override {
    auto &P = Pools[Pool];
    auto Hit = std::find(P.Cache.begin(), P.Cache.end(), Object);
    if (Hit != P.Cache.end()) {
      size_t Pos = static_cast<size_t>(Hit - P.Cache.begin());
      writeVarUInt(W, Pos);
      P.Cache.erase(Hit);
      P.Cache.insert(P.Cache.begin(), Object);
      return false;
    }
    if (Stats.isTransient(Pool, Object)) {
      writeVarUInt(W, CacheSize); // rank 0 + offset
      return true;
    }
    uint32_t Rank = Stats.rankOf(Pool, Object);
    assert(Rank > 0 && "recurring object without a rank");
    writeVarUInt(W, Rank + CacheSize);
    P.Cache.insert(P.Cache.begin(), Object);
    if (P.Cache.size() > CacheSize)
      P.Cache.pop_back();
    return P.Seen.insert(Object).second;
  }

private:
  struct PoolState {
    std::vector<uint32_t> Cache;
    std::set<uint32_t> Seen;
  };
  const RefStats &Stats;
  std::map<uint32_t, PoolState> Pools;
};

class CacheDecoder final : public RefDecoder {
public:
  std::optional<uint32_t> decode(uint32_t Pool, uint32_t,
                                 ByteReader &R) override {
    uint32_t V = static_cast<uint32_t>(readVarUInt(R));
    auto &P = Pools[Pool];
    if (V < CacheSize) {
      if (V >= P.Cache.size()) {
        Pending[Pool] = 0; // corrupt input: degrade to "new transient"
        return std::nullopt;
      }
      uint32_t Object = P.Cache[V];
      P.Cache.erase(P.Cache.begin() + V);
      P.Cache.insert(P.Cache.begin(), Object);
      return Object;
    }
    if (V == CacheSize) {
      Pending[Pool] = 0; // transient: learn nothing
      return std::nullopt;
    }
    uint32_t Id = V - CacheSize;
    auto It = P.Bindings.find(Id);
    if (It != P.Bindings.end()) {
      cacheFront(P, It->second);
      return It->second;
    }
    Pending[Pool] = Id;
    return std::nullopt;
  }

  void registerNew(uint32_t Pool, uint32_t, uint32_t Object) override {
    // Per-pool pending state: definitions nest across pools.
    auto It = Pending.find(Pool);
    assert(It != Pending.end() && "registerNew without a pending decode");
    if (It->second != 0) {
      auto &P = Pools[Pool];
      P.Bindings[It->second] = Object;
      cacheFront(P, Object);
    }
    Pending.erase(It);
  }

private:
  struct PoolState {
    std::vector<uint32_t> Cache;
    std::map<uint32_t, uint32_t> Bindings;
  };

  void cacheFront(PoolState &P, uint32_t Object) {
    P.Cache.insert(P.Cache.begin(), Object);
    if (P.Cache.size() > CacheSize)
      P.Cache.pop_back();
  }

  std::map<uint32_t, PoolState> Pools;
  std::map<uint32_t, uint32_t> Pending; ///< pool -> freq id (0 = transient)
};

//===----------------------------------------------------------------------===//
// The move-to-front family
//===----------------------------------------------------------------------===//

/// Shared machinery for the four MTF variants. Context variants keep one
/// queue per (Pool, Sub) and a per-pool first-seen history so a queue
/// materializing late can be seeded with every object it "might see".
/// Non-context variants collapse Sub to zero.
class MtfState {
public:
  MtfState(bool UseContext) : UseContext(UseContext) {}

  struct PoolState {
    std::map<uint32_t, MtfQueue> Queues;
    std::vector<uint32_t> History; ///< persistent objects, oldest first
    std::set<uint32_t> Seen;
  };

  PoolState &pool(uint32_t Pool) { return Pools[Pool]; }

  MtfQueue &queue(uint32_t Pool, uint32_t Sub) {
    if (!UseContext)
      Sub = 0;
    PoolState &P = Pools[Pool];
    auto [It, Created] = P.Queues.try_emplace(Sub);
    if (Created)
      for (uint32_t Object : P.History)
        It->second.pushFront(Object);
    return It->second;
  }

  /// Records a first occurrence of a persistent object: remembers it in
  /// the history and pushes it onto every materialized queue.
  void addPersistent(uint32_t Pool, uint32_t Object) {
    PoolState &P = Pools[Pool];
    P.History.push_back(Object);
    for (auto &[Sub, Q] : P.Queues)
      Q.pushFront(Object);
  }

private:
  std::map<uint32_t, PoolState> Pools;
  bool UseContext;
};

class MtfEncoder final : public RefEncoder {
public:
  MtfEncoder(bool Transients, bool Context, const RefStats *Stats)
      : State(Context), Stats(Stats), Transients(Transients) {
    assert((!Transients || Stats) && "transients need a stats pre-pass");
  }

  bool encode(uint32_t Pool, uint32_t Sub, uint32_t Object,
              ByteWriter &W) override {
    // Touch the queue first so creation/seeding order matches decode.
    MtfQueue &Q = State.queue(Pool, Sub);
    auto &P = State.pool(Pool);
    unsigned Base = Transients ? 2 : 1;
    if (!P.Seen.count(Object)) {
      P.Seen.insert(Object);
      if (Transients && Stats->isTransient(Pool, Object)) {
        writeVarUInt(W, 1);
      } else {
        writeVarUInt(W, 0);
        State.addPersistent(Pool, Object);
      }
      return true;
    }
    auto Pos = Q.use(Object, /*InsertIfNew=*/false);
    assert(Pos && "seen persistent object missing from context queue");
    writeVarUInt(W, *Pos + Base);
    return false;
  }

  bool preload(uint32_t Pool, uint32_t Object) override {
    auto &P = State.pool(Pool);
    if (P.Seen.insert(Object).second)
      State.addPersistent(Pool, Object);
    return true;
  }

private:
  MtfState State;
  const RefStats *Stats;
  bool Transients;
};

class MtfDecoder final : public RefDecoder {
public:
  MtfDecoder(bool Transients, bool Context)
      : State(Context), Transients(Transients) {}

  std::optional<uint32_t> decode(uint32_t Pool, uint32_t Sub,
                                 ByteReader &R) override {
    MtfQueue &Q = State.queue(Pool, Sub);
    uint32_t V = static_cast<uint32_t>(readVarUInt(R));
    unsigned Base = Transients ? 2 : 1;
    if (V == 0) {
      Pending[Pool] = false;
      return std::nullopt;
    }
    if (Transients && V == 1) {
      Pending[Pool] = true;
      return std::nullopt;
    }
    return Q.useAt(V - Base);
  }

  void registerNew(uint32_t Pool, uint32_t, uint32_t Object) override {
    // Per-pool pending state: definitions nest across pools.
    auto It = Pending.find(Pool);
    assert(It != Pending.end() && "registerNew without a pending decode");
    bool WasTransient = It->second;
    Pending.erase(It);
    if (!WasTransient)
      State.addPersistent(Pool, Object);
  }

  bool preload(uint32_t Pool, uint32_t Object) override {
    auto &P = State.pool(Pool);
    if (P.Seen.insert(Object).second)
      State.addPersistent(Pool, Object);
    return true;
  }

private:
  MtfState State;
  bool Transients;
  std::map<uint32_t, bool> Pending; ///< pool -> pending was-transient
};

} // namespace

std::unique_ptr<RefEncoder> cjpack::makeRefEncoder(RefScheme S,
                                                   const RefStats *Stats) {
  switch (S) {
  case RefScheme::Simple:
    return std::make_unique<FixedIdEncoder>(/*TwoByte=*/true);
  case RefScheme::Basic:
    return std::make_unique<FixedIdEncoder>(/*TwoByte=*/false);
  case RefScheme::Freq:
    assert(Stats && "Freq needs stats");
    return std::make_unique<FreqEncoder>(*Stats);
  case RefScheme::Cache:
    assert(Stats && "Cache needs stats");
    return std::make_unique<CacheEncoder>(*Stats);
  case RefScheme::MtfBasic:
    return std::make_unique<MtfEncoder>(false, false, Stats);
  case RefScheme::MtfTransients:
    return std::make_unique<MtfEncoder>(true, false, Stats);
  case RefScheme::MtfContext:
    return std::make_unique<MtfEncoder>(false, true, Stats);
  case RefScheme::MtfTransientsContext:
    return std::make_unique<MtfEncoder>(true, true, Stats);
  }
  return nullptr;
}

std::unique_ptr<RefDecoder> cjpack::makeRefDecoder(RefScheme S) {
  switch (S) {
  case RefScheme::Simple:
    return std::make_unique<FixedIdDecoder>(/*TwoByte=*/true);
  case RefScheme::Basic:
    return std::make_unique<FixedIdDecoder>(/*TwoByte=*/false);
  case RefScheme::Freq:
    return std::make_unique<FreqDecoder>();
  case RefScheme::Cache:
    return std::make_unique<CacheDecoder>();
  case RefScheme::MtfBasic:
    return std::make_unique<MtfDecoder>(false, false);
  case RefScheme::MtfTransients:
    return std::make_unique<MtfDecoder>(true, false);
  case RefScheme::MtfContext:
    return std::make_unique<MtfDecoder>(false, true);
  case RefScheme::MtfTransientsContext:
    return std::make_unique<MtfDecoder>(true, true);
  }
  return nullptr;
}
