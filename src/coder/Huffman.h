//===- Huffman.h - canonical Huffman byte codec ----------------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch canonical Huffman codec over byte streams, used as a
/// pluggable final-stage compression backend (pack/Backend.h). The
/// paper's premise is that per-stream modeling leaves skewed byte
/// distributions; a static order-0 Huffman code is the cheapest coder
/// that exploits that skew, and its table-driven decode is much faster
/// than the adaptive arithmetic coder.
///
/// Wire format of a compressed blob:
///
///   varint RawLen                   decoded byte count
///   -- end of blob when RawLen == 0 --
///   u8 kind                         0 = single-symbol run, 1 = table
///   kind 0: u8 symbol               output is RawLen copies of symbol
///   kind 1: 128 bytes               4-bit code lengths for symbols
///                                   0..255, symbol 2i in the low
///                                   nibble of byte i (0 = unused,
///                                   else 1..MaxHuffmanCodeLen)
///           ceil(bits/8) bytes      canonical codes, MSB-first, final
///                                   byte zero-padded
///
/// The code is canonical: lengths determine the codes (shorter lengths
/// first, ties by symbol value), so the table is just the length array
/// and two independent encoder runs over the same input are guaranteed
/// byte-identical. Decoding validates the table strictly — the Kraft
/// sum must be exactly one (a complete, non-oversubscribed code) — and
/// fails with typed Truncated/Corrupt errors, never undefined behavior.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_CODER_HUFFMAN_H
#define CJPACK_CODER_HUFFMAN_H

#include "support/Error.h"
#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace cjpack {

/// Longest permitted code, chosen so a length fits a nibble and the
/// canonical decode tables stay tiny.
inline constexpr unsigned MaxHuffmanCodeLen = 15;

/// Computes canonical code lengths (0 = symbol unused) for a byte
/// histogram. Lengths are optimal Huffman depths limited to
/// MaxHuffmanCodeLen, assigned to symbols by descending frequency
/// (ties by ascending symbol value), so the result is a deterministic
/// pure function of \p Freq. When fewer than two symbols occur, every
/// length is zero: such inputs are coded as empty or single-symbol
/// blobs, not with a tree.
std::array<uint8_t, 256> huffmanCodeLengths(
    const std::array<uint64_t, 256> &Freq);

/// Compresses \p Raw into the self-describing blob format above.
std::vector<uint8_t> huffmanCompress(std::span<const uint8_t> Raw);

/// Decompresses a blob produced by huffmanCompress. \p DeclaredRaw is
/// the raw length the enclosing container promised; output is capped
/// at max(DeclaredRaw, 1) bytes, so a lying blob cannot out-allocate
/// its directory entry. Truncated input is Truncated; an invalid table,
/// a raw-length mismatch, or trailing bytes are Corrupt.
Expected<std::vector<uint8_t>>
huffmanDecompress(std::span<const uint8_t> Stored, size_t DeclaredRaw);

} // namespace cjpack

#endif // CJPACK_CODER_HUFFMAN_H
