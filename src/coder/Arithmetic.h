//===- Arithmetic.h - adaptive arithmetic coding ---------------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An adaptive order-0 arithmetic coder. §5 of the paper compares
/// zlib-compressed MTF indices against arithmetic-coded MTF indices (the
/// hypothesis being that move-to-front destroys repeating patterns and
/// leaves only a skewed symbol distribution, which arithmetic coding
/// captures optimally). This module exists for that ablation
/// (bench_ablation_mtf); the shipping format uses zlib.
///
/// Implementation: 32-bit renormalizing range coder in the classic
/// CACM-87 style with an adaptive Fenwick-tree frequency model.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_CODER_ARITHMETIC_H
#define CJPACK_CODER_ARITHMETIC_H

#include "support/BitStream.h"
#include "support/Error.h"
#include <cstdint>
#include <span>
#include <vector>

namespace cjpack {

/// Adaptive frequency model over symbols 0..AlphabetSize-1, all counts
/// initialized to one. Counts halve when the total reaches MaxTotal.
class AdaptiveModel {
public:
  explicit AdaptiveModel(uint32_t AlphabetSize);

  uint32_t alphabetSize() const { return Size; }
  uint64_t total() const { return Total; }

  /// Cumulative count of symbols strictly below \p Symbol.
  uint64_t cumBelow(uint32_t Symbol) const;

  /// Count of \p Symbol itself.
  uint64_t countOf(uint32_t Symbol) const;

  /// Symbol whose cumulative interval contains \p Target.
  uint32_t symbolFor(uint64_t Target) const;

  /// Records one occurrence of \p Symbol.
  void update(uint32_t Symbol);

private:
  void rebuildFromCounts();

  static constexpr uint64_t MaxTotal = 1u << 16;
  uint32_t Size;
  std::vector<uint64_t> Tree; ///< Fenwick tree over counts
  std::vector<uint32_t> Counts;
  uint64_t Total = 0;
};

/// Arithmetic encoder writing to a BitWriter.
class ArithmeticEncoder {
public:
  /// Encodes \p Symbol under \p Model (which is updated).
  void encode(AdaptiveModel &Model, uint32_t Symbol);

  /// Flushes the final interval; returns the bit stream as bytes.
  std::vector<uint8_t> finish();

private:
  void outputBit(bool Bit);

  BitWriter Bits;
  uint64_t Low = 0;
  uint64_t High = 0xFFFFFFFFull;
  uint64_t Pending = 0;
};

/// Arithmetic decoder reading from a byte buffer.
class ArithmeticDecoder {
public:
  explicit ArithmeticDecoder(std::span<const uint8_t> Bytes);

  /// Decodes one symbol under \p Model (which is updated).
  uint32_t decode(AdaptiveModel &Model);

private:
  BitReader Bits;
  uint64_t Low = 0;
  uint64_t High = 0xFFFFFFFFull;
  uint64_t Code = 0;
};

/// Compresses \p Raw as `varint RawLen` followed by the arithmetic-coded
/// bytes under an adaptive order-0 byte model. The byte-stream face of
/// the coder, used as a pluggable backend (pack/Backend.h).
std::vector<uint8_t> arithCompressBytes(std::span<const uint8_t> Raw);

/// Decompresses a blob produced by arithCompressBytes. \p DeclaredRaw is
/// the raw length the enclosing container promised; a blob declaring
/// more than max(DeclaredRaw, 1) bytes fails with LimitExceeded. The
/// coded stream is not self-delimiting, so truncation yields bounded
/// garbage rather than an error here — the caller's raw-length check
/// catches the mismatch.
Expected<std::vector<uint8_t>>
arithDecompressBytes(std::span<const uint8_t> Stored, size_t DeclaredRaw);

} // namespace cjpack

#endif // CJPACK_CODER_ARITHMETIC_H
