//===- Huffman.cpp - canonical Huffman byte codec -------------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "coder/Huffman.h"
#include "support/BitStream.h"
#include "support/ByteBuffer.h"
#include "support/VarInt.h"
#include <algorithm>

using namespace cjpack;

namespace {

/// Optimal Huffman depth per leaf via the classic two-queue merge over
/// leaves sorted by ascending weight. Ties always prefer the leaf
/// queue, so the depths are a pure function of the weights.
std::vector<unsigned> huffmanDepths(const std::vector<uint64_t> &Weights) {
  struct Node {
    uint64_t Weight;
    int Parent = -1;
  };
  size_t NumLeaves = Weights.size();
  std::vector<Node> Nodes;
  Nodes.reserve(2 * NumLeaves);
  for (uint64_t W : Weights)
    Nodes.push_back({W});
  std::vector<size_t> Internal;
  Internal.reserve(NumLeaves);
  size_t Li = 0, Ii = 0;
  auto TakeMin = [&]() -> size_t {
    bool HaveLeaf = Li < NumLeaves;
    bool HaveInternal = Ii < Internal.size();
    if (HaveLeaf &&
        (!HaveInternal ||
         Nodes[Li].Weight <= Nodes[Internal[Ii]].Weight))
      return Li++;
    return Internal[Ii++];
  };
  for (size_t Merge = 0; Merge + 1 < NumLeaves; ++Merge) {
    size_t A = TakeMin();
    size_t B = TakeMin();
    Nodes.push_back({Nodes[A].Weight + Nodes[B].Weight});
    Nodes[A].Parent = Nodes[B].Parent =
        static_cast<int>(Nodes.size() - 1);
    Internal.push_back(Nodes.size() - 1);
  }
  std::vector<unsigned> Depths(NumLeaves, 0);
  for (size_t I = 0; I < NumLeaves; ++I)
    for (int P = Nodes[I].Parent; P != -1; P = Nodes[P].Parent)
      ++Depths[I];
  return Depths;
}

/// Canonical codes for a valid length array: shorter codes first, ties
/// by ascending symbol value.
std::array<uint16_t, 256>
canonicalCodes(const std::array<uint8_t, 256> &Lengths) {
  std::array<uint32_t, MaxHuffmanCodeLen + 1> Count{};
  for (uint8_t L : Lengths)
    if (L != 0)
      ++Count[L];
  std::array<uint32_t, MaxHuffmanCodeLen + 1> Next{};
  uint32_t Code = 0;
  for (unsigned Len = 1; Len <= MaxHuffmanCodeLen; ++Len) {
    Code = (Code + Count[Len - 1]) << 1;
    Next[Len] = Code;
  }
  std::array<uint16_t, 256> Codes{};
  for (unsigned Sym = 0; Sym < 256; ++Sym)
    if (Lengths[Sym] != 0)
      Codes[Sym] = static_cast<uint16_t>(Next[Lengths[Sym]]++);
  return Codes;
}

} // namespace

std::array<uint8_t, 256>
cjpack::huffmanCodeLengths(const std::array<uint64_t, 256> &Freq) {
  std::array<uint8_t, 256> Lengths{};
  // Used symbols sorted by ascending frequency (ties by symbol value):
  // the order the two-queue merge consumes leaves in.
  std::vector<std::pair<uint64_t, unsigned>> Used;
  for (unsigned Sym = 0; Sym < 256; ++Sym)
    if (Freq[Sym] != 0)
      Used.push_back({Freq[Sym], Sym});
  if (Used.size() < 2)
    return Lengths; // empty / single-symbol inputs carry no tree
  std::sort(Used.begin(), Used.end());

  std::vector<uint64_t> Weights;
  Weights.reserve(Used.size());
  for (const auto &[W, Sym] : Used)
    Weights.push_back(W);
  std::vector<unsigned> Depths = huffmanDepths(Weights);

  // Histogram of depths, folding anything beyond the limit into the
  // deepest bucket, then the standard fixup: shrink the Kraft sum back
  // to exactly one by repeatedly promoting one deepest code and
  // demoting a shallower one.
  std::array<uint32_t, 256> NumCodes{};
  for (unsigned D : Depths)
    ++NumCodes[std::min<unsigned>(D, 255)];
  for (unsigned I = MaxHuffmanCodeLen + 1; I < 256; ++I) {
    NumCodes[MaxHuffmanCodeLen] += NumCodes[I];
    NumCodes[I] = 0;
  }
  uint64_t Total = 0;
  for (unsigned I = 1; I <= MaxHuffmanCodeLen; ++I)
    Total += static_cast<uint64_t>(NumCodes[I])
             << (MaxHuffmanCodeLen - I);
  while (Total != (1ull << MaxHuffmanCodeLen)) {
    --NumCodes[MaxHuffmanCodeLen];
    for (unsigned I = MaxHuffmanCodeLen - 1; I > 0; --I)
      if (NumCodes[I] != 0) {
        --NumCodes[I];
        NumCodes[I + 1] += 2;
        break;
      }
    --Total;
  }

  // Reassign lengths to symbols: most frequent symbol gets the
  // shortest length, ties broken by ascending symbol value, so the
  // table is deterministic however the tree broke its own ties.
  std::vector<unsigned> ByFreqDesc;
  ByFreqDesc.reserve(Used.size());
  for (auto It = Used.rbegin(); It != Used.rend(); ++It)
    ByFreqDesc.push_back(It->second);
  std::stable_sort(ByFreqDesc.begin(), ByFreqDesc.end(),
                   [&](unsigned A, unsigned B) {
                     return Freq[A] != Freq[B] ? Freq[A] > Freq[B]
                                               : A < B;
                   });
  size_t K = 0;
  for (unsigned Len = 1; Len <= MaxHuffmanCodeLen; ++Len)
    for (uint32_t N = 0; N < NumCodes[Len]; ++N)
      Lengths[ByFreqDesc[K++]] = static_cast<uint8_t>(Len);
  return Lengths;
}

std::vector<uint8_t>
cjpack::huffmanCompress(std::span<const uint8_t> Raw) {
  ByteWriter W;
  writeVarUInt(W, Raw.size());
  if (Raw.empty())
    return W.take();

  std::array<uint64_t, 256> Freq{};
  for (uint8_t B : Raw)
    ++Freq[B];
  unsigned Distinct = 0;
  unsigned Only = 0;
  for (unsigned Sym = 0; Sym < 256; ++Sym)
    if (Freq[Sym] != 0) {
      ++Distinct;
      Only = Sym;
    }
  if (Distinct == 1) {
    W.writeU1(0); // kind: single-symbol run
    W.writeU1(static_cast<uint8_t>(Only));
    return W.take();
  }

  std::array<uint8_t, 256> Lengths = huffmanCodeLengths(Freq);
  std::array<uint16_t, 256> Codes = canonicalCodes(Lengths);
  W.writeU1(1); // kind: full table
  for (unsigned I = 0; I < 128; ++I)
    W.writeU1(static_cast<uint8_t>(Lengths[2 * I] |
                                   (Lengths[2 * I + 1] << 4)));
  BitWriter Bits;
  for (uint8_t B : Raw) {
    unsigned Len = Lengths[B];
    uint16_t Code = Codes[B];
    for (unsigned Bit = Len; Bit-- > 0;)
      Bits.writeBit((Code >> Bit) & 1);
  }
  W.writeBytes(Bits.finish());
  return W.take();
}

Expected<std::vector<uint8_t>>
cjpack::huffmanDecompress(std::span<const uint8_t> Stored,
                          size_t DeclaredRaw) {
  ByteReader R(Stored);
  uint64_t RawLen = readVarUInt(R);
  if (R.hasError())
    return R.takeError("huffman");
  size_t Cap = DeclaredRaw != 0 ? DeclaredRaw : 1;
  if (RawLen > Cap)
    return makeError(ErrorCode::LimitExceeded,
                     "huffman: declared output exceeds the container's "
                     "raw length");
  if (RawLen == 0) {
    if (!R.atEnd())
      return makeError(ErrorCode::Corrupt,
                       "huffman: trailing bytes after empty blob");
    return std::vector<uint8_t>();
  }

  uint8_t Kind = R.readU1();
  if (R.hasError())
    return makeError(ErrorCode::Truncated, "huffman: truncated blob");
  if (Kind == 0) {
    uint8_t Sym = R.readU1();
    if (R.hasError())
      return makeError(ErrorCode::Truncated, "huffman: truncated blob");
    if (!R.atEnd())
      return makeError(ErrorCode::Corrupt,
                       "huffman: trailing bytes after run blob");
    return std::vector<uint8_t>(static_cast<size_t>(RawLen), Sym);
  }
  if (Kind != 1)
    return makeError(ErrorCode::Corrupt, "huffman: unknown blob kind");

  std::array<uint8_t, 256> Lengths{};
  for (unsigned I = 0; I < 128; ++I) {
    uint8_t Packed = R.readU1();
    Lengths[2 * I] = Packed & 0xF;
    Lengths[2 * I + 1] = Packed >> 4;
  }
  if (R.hasError())
    return makeError(ErrorCode::Truncated,
                     "huffman: truncated code-length table");

  // Strict table validation: at least two symbols, and the Kraft sum
  // exactly one — an incomplete or oversubscribed code is corrupt, not
  // something to decode around.
  std::array<uint32_t, MaxHuffmanCodeLen + 1> Count{};
  unsigned Distinct = 0;
  for (uint8_t L : Lengths)
    if (L != 0) {
      ++Count[L];
      ++Distinct;
    }
  uint64_t Kraft = 0;
  for (unsigned Len = 1; Len <= MaxHuffmanCodeLen; ++Len)
    Kraft += static_cast<uint64_t>(Count[Len])
             << (MaxHuffmanCodeLen - Len);
  if (Distinct < 2 || Kraft != (1ull << MaxHuffmanCodeLen))
    return makeError(ErrorCode::Corrupt,
                     "huffman: invalid code-length table");

  // Canonical decode tables: the first code and the symbol-table base
  // per length, plus symbols grouped by (length, symbol value) — the
  // same order the encoder assigned codes in.
  std::array<uint32_t, MaxHuffmanCodeLen + 1> First{};
  std::array<uint32_t, MaxHuffmanCodeLen + 1> Offset{};
  {
    uint32_t Code = 0, Index = 0;
    for (unsigned Len = 1; Len <= MaxHuffmanCodeLen; ++Len) {
      Code = (Code + Count[Len - 1]) << 1;
      First[Len] = Code;
      Offset[Len] = Index;
      Index += Count[Len];
    }
  }
  std::array<uint8_t, 256> Symbols{};
  {
    std::array<uint32_t, MaxHuffmanCodeLen + 1> Fill = Offset;
    for (unsigned Sym = 0; Sym < 256; ++Sym)
      if (Lengths[Sym] != 0)
        Symbols[Fill[Lengths[Sym]]++] = static_cast<uint8_t>(Sym);
  }

  const uint8_t *Bits = Stored.data() + R.position();
  size_t NumBits = (Stored.size() - R.position()) * 8;
  size_t At = 0;
  std::vector<uint8_t> Out;
  Out.reserve(static_cast<size_t>(RawLen));
  while (Out.size() < RawLen) {
    uint32_t Code = 0;
    unsigned Len = 0;
    for (;;) {
      if (At >= NumBits)
        return makeError(ErrorCode::Truncated,
                         "huffman: bit stream ended mid-symbol");
      Code = Code << 1 | ((Bits[At / 8] >> (7 - At % 8)) & 1);
      ++At;
      ++Len;
      // A complete canonical code resolves every bit path within the
      // maximum length, so this always lands before Len overruns.
      if (Count[Len] != 0 && Code - First[Len] < Count[Len]) {
        Out.push_back(Symbols[Offset[Len] + (Code - First[Len])]);
        break;
      }
    }
  }
  // Only the final byte's zero padding may remain.
  if (NumBits - At >= 8)
    return makeError(ErrorCode::Corrupt,
                     "huffman: trailing bytes after bit stream");
  return Out;
}
