//===- RefCoder.h - reference-encoding schemes (§5.1) ----------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The eight reference-encoding schemes of §5.1 behind a common
/// encoder/decoder interface. A reference names an object that may have
/// been seen before; the encoding either says "new" (the caller then
/// encodes the object's definition) or identifies the previous object.
///
/// Sites are addressed by (Pool, Sub): Pool is the object universe (one
/// per reference kind — virtual methods, static fields, class refs, ...)
/// and Sub the context within it (the §5.1.6 context variants key method
/// pools by the top two approximate stack types). Schemes without
/// context ignore Sub. Callers that want the §5.1.1 "single pool for all
/// method references" behaviour of the Simple baseline pass coarser Pool
/// ids.
///
/// Index streams produced here are byte streams (varints, §6) meant to
/// be further compressed with zlib.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_CODER_REFCODER_H
#define CJPACK_CODER_REFCODER_H

#include "support/ByteBuffer.h"
#include "support/PackTrace.h"
#include <cstdint>
#include <map>
#include <memory>
#include <optional>

namespace cjpack {

/// The schemes evaluated in Table 3.
enum class RefScheme : uint8_t {
  Simple,               ///< fixed ids, two bytes each (baseline)
  Basic,                ///< fixed ids, varint encoded (baseline)
  Freq,                 ///< ids by frequency rank; shared transient id
  Cache,                ///< Freq + 16-entry move-to-front cache
  MtfBasic,             ///< one move-to-front queue per pool
  MtfTransients,        ///< MTF; once-only objects bypass the queue
  MtfContext,           ///< MTF with per-Sub context queues
  MtfTransientsContext, ///< both refinements (the shipping scheme)
};

/// Printable scheme name (bench tables).
const char *refSchemeName(RefScheme S);

/// Whether \p S needs a counting pre-pass (RefStats) on the encoder.
bool refSchemeNeedsStats(RefScheme S);

/// Whether \p S supports RefEncoder/RefDecoder::preload. The fixed-id
/// and MTF families do; Freq/Cache cannot (their ids come from a stats
/// pass the decoder replays from the wire).
bool refSchemeSupportsPreload(RefScheme S);

/// Per-pool occurrence counts from a pre-pass over the reference stream;
/// required by Freq, Cache, and the transient variants (an object is a
/// transient iff it occurs exactly once in its pool).
class RefStats {
public:
  void note(uint32_t Pool, uint32_t Object) { ++Counts[{Pool, Object}]; }

  /// Adds \p N occurrences at once (rebuilding stats under an object-id
  /// remap).
  void add(uint32_t Pool, uint32_t Object, uint32_t N) {
    Counts[{Pool, Object}] += N;
  }

  /// The raw (pool, object) -> count table, for id remapping.
  const std::map<std::pair<uint32_t, uint32_t>, uint32_t> &counts() const {
    return Counts;
  }

  uint32_t countOf(uint32_t Pool, uint32_t Object) const {
    auto It = Counts.find({Pool, Object});
    return It == Counts.end() ? 0 : It->second;
  }

  bool isTransient(uint32_t Pool, uint32_t Object) const {
    return countOf(Pool, Object) == 1;
  }

  /// Frequency rank of \p Object within \p Pool among recurring objects:
  /// 1 for the most frequent. 0 for transients.
  uint32_t rankOf(uint32_t Pool, uint32_t Object) const;

private:
  void buildRanks() const;

  std::map<std::pair<uint32_t, uint32_t>, uint32_t> Counts;
  mutable std::map<std::pair<uint32_t, uint32_t>, uint32_t> Ranks;
  mutable bool RanksBuilt = false;
};

/// Encoder half of a scheme.
class RefEncoder {
public:
  virtual ~RefEncoder() = default;

  /// Encodes a reference to \p Object at site (\p Pool, \p Sub) into
  /// \p W. Returns true when this is the object's first occurrence and
  /// the caller must encode its definition next.
  virtual bool encode(uint32_t Pool, uint32_t Sub, uint32_t Object,
                      ByteWriter &W) = 0;

  /// Marks \p Object as already-known in \p Pool without emitting
  /// anything — the §14 "standard set of preloaded references"
  /// extension. Must be mirrored on the decoder in the same order.
  /// Supported by the fixed-id and MTF families; returns false when the
  /// scheme cannot preload (Freq/Cache, whose ids come from a stats
  /// pass).
  virtual bool preload(uint32_t Pool, uint32_t Object) {
    (void)Pool;
    (void)Object;
    return false;
  }

  /// encode() plus per-pool telemetry. The tally is observational only:
  /// the emitted bytes are identical with or without one installed.
  bool encodeCounted(uint32_t Pool, uint32_t Sub, uint32_t Object,
                     ByteWriter &W) {
    bool Def = encode(Pool, Sub, Object, W);
    if (Tally)
      Tally->note(Pool, Def);
    return Def;
  }

  /// Installs (or clears, with null) the telemetry sink for
  /// encodeCounted. Not owned; must outlive the encoder's use.
  void setTally(CoderTally *T) { Tally = T; }

private:
  CoderTally *Tally = nullptr;
};

/// Decoder half of a scheme.
class RefDecoder {
public:
  virtual ~RefDecoder() = default;

  /// Decodes a reference at site (\p Pool, \p Sub). Returns the object
  /// id, or nullopt for a first occurrence — the caller must then decode
  /// the definition, assign the object an id, and call registerNew.
  virtual std::optional<uint32_t> decode(uint32_t Pool, uint32_t Sub,
                                         ByteReader &R) = 0;

  /// Completes a first occurrence reported by decode.
  virtual void registerNew(uint32_t Pool, uint32_t Sub,
                           uint32_t Object) = 0;

  /// Decoder-side mirror of RefEncoder::preload.
  virtual bool preload(uint32_t Pool, uint32_t Object) {
    (void)Pool;
    (void)Object;
    return false;
  }

  /// decode() plus per-pool telemetry (a nullopt result is a
  /// definition). Observational only, like RefEncoder::encodeCounted.
  std::optional<uint32_t> decodeCounted(uint32_t Pool, uint32_t Sub,
                                        ByteReader &R) {
    std::optional<uint32_t> Existing = decode(Pool, Sub, R);
    if (Tally)
      Tally->note(Pool, !Existing.has_value());
    return Existing;
  }

  /// Installs (or clears, with null) the telemetry sink for
  /// decodeCounted. Not owned; must outlive the decoder's use.
  void setTally(CoderTally *T) { Tally = T; }

private:
  CoderTally *Tally = nullptr;
};

/// Creates the encoder for \p S. \p Stats must outlive the encoder and be
/// non-null when refSchemeNeedsStats(S).
std::unique_ptr<RefEncoder> makeRefEncoder(RefScheme S,
                                           const RefStats *Stats);

/// Creates the decoder for \p S. Freq/Cache decoders do not need stats;
/// all bindings are learned from the stream.
std::unique_ptr<RefDecoder> makeRefDecoder(RefScheme S);

} // namespace cjpack

#endif // CJPACK_CODER_REFCODER_H
