//===- Arithmetic.cpp - adaptive arithmetic coding ------------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "coder/Arithmetic.h"
#include "support/ByteBuffer.h"
#include "support/VarInt.h"
#include <cassert>

using namespace cjpack;

//===----------------------------------------------------------------------===//
// AdaptiveModel
//===----------------------------------------------------------------------===//

AdaptiveModel::AdaptiveModel(uint32_t AlphabetSize)
    : Size(AlphabetSize), Counts(AlphabetSize, 1) {
  assert(AlphabetSize >= 1 && "empty alphabet");
  rebuildFromCounts();
}

void AdaptiveModel::rebuildFromCounts() {
  Tree.assign(Size + 1, 0);
  Total = 0;
  for (uint32_t S = 0; S < Size; ++S) {
    // Fenwick point-update, linearized.
    for (uint32_t I = S + 1; I <= Size; I += I & (~I + 1))
      Tree[I] += Counts[S];
    Total += Counts[S];
  }
}

uint64_t AdaptiveModel::cumBelow(uint32_t Symbol) const {
  assert(Symbol <= Size);
  uint64_t Sum = 0;
  for (uint32_t I = Symbol; I > 0; I -= I & (~I + 1))
    Sum += Tree[I];
  return Sum;
}

uint64_t AdaptiveModel::countOf(uint32_t Symbol) const {
  assert(Symbol < Size);
  return Counts[Symbol];
}

uint32_t AdaptiveModel::symbolFor(uint64_t Target) const {
  // Fenwick descent: find the largest prefix with cumulative <= Target.
  uint32_t Pos = 0;
  uint64_t Remaining = Target;
  uint32_t Mask = 1;
  while (Mask * 2 <= Size)
    Mask *= 2;
  for (; Mask != 0; Mask /= 2) {
    uint32_t Next = Pos + Mask;
    if (Next <= Size && Tree[Next] <= Remaining) {
      Pos = Next;
      Remaining -= Tree[Next];
    }
  }
  assert(Pos < Size && "target beyond model total");
  return Pos;
}

void AdaptiveModel::update(uint32_t Symbol) {
  assert(Symbol < Size);
  Counts[Symbol] += 32; // fast adaptation
  for (uint32_t I = Symbol + 1; I <= Size; I += I & (~I + 1))
    Tree[I] += 32;
  Total += 32;
  if (Total >= MaxTotal) {
    for (uint32_t S = 0; S < Size; ++S)
      Counts[S] = Counts[S] / 2 + 1;
    rebuildFromCounts();
  }
}

//===----------------------------------------------------------------------===//
// ArithmeticEncoder
//===----------------------------------------------------------------------===//

namespace {
constexpr uint64_t TopValue = 0xFFFFFFFFull;
constexpr uint64_t FirstQuarter = 0x40000000ull;
constexpr uint64_t Half = 0x80000000ull;
constexpr uint64_t ThirdQuarter = 0xC0000000ull;
} // namespace

void ArithmeticEncoder::outputBit(bool Bit) {
  Bits.writeBit(Bit);
  while (Pending > 0) {
    Bits.writeBit(!Bit);
    --Pending;
  }
}

void ArithmeticEncoder::encode(AdaptiveModel &Model, uint32_t Symbol) {
  uint64_t Range = High - Low + 1;
  uint64_t Total = Model.total();
  uint64_t CumLo = Model.cumBelow(Symbol);
  uint64_t CumHi = CumLo + Model.countOf(Symbol);
  High = Low + Range * CumHi / Total - 1;
  Low = Low + Range * CumLo / Total;
  while (true) {
    if (High < Half) {
      outputBit(false);
    } else if (Low >= Half) {
      outputBit(true);
      Low -= Half;
      High -= Half;
    } else if (Low >= FirstQuarter && High < ThirdQuarter) {
      ++Pending;
      Low -= FirstQuarter;
      High -= FirstQuarter;
    } else {
      break;
    }
    Low = Low * 2;
    High = High * 2 + 1;
  }
  Model.update(Symbol);
}

std::vector<uint8_t> ArithmeticEncoder::finish() {
  ++Pending;
  outputBit(Low >= FirstQuarter);
  return Bits.finish();
}

//===----------------------------------------------------------------------===//
// ArithmeticDecoder
//===----------------------------------------------------------------------===//

ArithmeticDecoder::ArithmeticDecoder(std::span<const uint8_t> Bytes)
    : Bits(Bytes) {
  for (int I = 0; I < 32; ++I)
    Code = Code << 1 | (Bits.readBit() ? 1 : 0);
}

uint32_t ArithmeticDecoder::decode(AdaptiveModel &Model) {
  uint64_t Range = High - Low + 1;
  uint64_t Total = Model.total();
  uint64_t Target = ((Code - Low + 1) * Total - 1) / Range;
  uint32_t Symbol = Model.symbolFor(Target);
  uint64_t CumLo = Model.cumBelow(Symbol);
  uint64_t CumHi = CumLo + Model.countOf(Symbol);
  High = Low + Range * CumHi / Total - 1;
  Low = Low + Range * CumLo / Total;
  while (true) {
    if (High < Half) {
      // nothing
    } else if (Low >= Half) {
      Low -= Half;
      High -= Half;
      Code -= Half;
    } else if (Low >= FirstQuarter && High < ThirdQuarter) {
      Low -= FirstQuarter;
      High -= FirstQuarter;
      Code -= FirstQuarter;
    } else {
      break;
    }
    Low = Low * 2;
    High = High * 2 + 1;
    Code = Code * 2 + (Bits.readBit() ? 1 : 0);
  }
  Model.update(Symbol);
  return Symbol;
}

//===----------------------------------------------------------------------===//
// Byte-stream codec
//===----------------------------------------------------------------------===//

std::vector<uint8_t>
cjpack::arithCompressBytes(std::span<const uint8_t> Raw) {
  ByteWriter W;
  writeVarUInt(W, Raw.size());
  if (Raw.empty())
    return W.take();
  AdaptiveModel Model(256);
  ArithmeticEncoder Enc;
  for (uint8_t B : Raw)
    Enc.encode(Model, B);
  W.writeBytes(Enc.finish());
  return W.take();
}

Expected<std::vector<uint8_t>>
cjpack::arithDecompressBytes(std::span<const uint8_t> Stored,
                             size_t DeclaredRaw) {
  ByteReader R(Stored);
  uint64_t RawLen = readVarUInt(R);
  if (R.hasError())
    return R.takeError("arith");
  size_t Cap = DeclaredRaw != 0 ? DeclaredRaw : 1;
  if (RawLen > Cap)
    return makeError(ErrorCode::LimitExceeded,
                     "arith: declared output exceeds the container's "
                     "raw length");
  if (RawLen == 0) {
    if (!R.atEnd())
      return makeError(ErrorCode::Corrupt,
                       "arith: trailing bytes after empty blob");
    return std::vector<uint8_t>();
  }
  AdaptiveModel Model(256);
  ArithmeticDecoder Dec(Stored.subspan(R.position()));
  std::vector<uint8_t> Out;
  Out.reserve(static_cast<size_t>(RawLen));
  for (uint64_t I = 0; I < RawLen; ++I)
    Out.push_back(static_cast<uint8_t>(Dec.decode(Model)));
  return Out;
}
