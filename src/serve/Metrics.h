//===- Metrics.h - cjpackd serving counters and latency --------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Observability for the archive server: lock-free request/byte/error
/// counters (per opcode and total) and a fixed-size ring of recent
/// request latencies from which p50/p90/p99 are computed on demand.
/// Everything is observational — nothing here feeds back into request
/// handling — and every mutation is either atomic or under the ring's
/// own mutex, so request threads never contend beyond one short lock.
///
/// The `metrics` request renders the counters plus the cache's stats as
/// stable `key value` text lines, one metric per line, so shell smoke
/// tests and the bench harness parse them with nothing fancier than
/// grep/awk.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_SERVE_METRICS_H
#define CJPACK_SERVE_METRICS_H

#include "serve/Protocol.h"
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace cjpack::serve {

struct CacheStats; // ArchiveCache.h

/// Percentiles over the latency ring's current samples.
struct LatencySummary {
  size_t Samples = 0;
  double P50Us = 0;
  double P90Us = 0;
  double P99Us = 0;
  double MaxUs = 0;
};

class ServerMetrics {
public:
  /// Records one completed request: its opcode, outcome, frame sizes,
  /// and wall-clock service time in microseconds.
  void noteRequest(Opcode Op, Status St, uint64_t BytesIn,
                   uint64_t BytesOut, double Micros);

  /// Records a connection accepted / a protocol-level reject (a frame
  /// the server answered without a parsable opcode).
  void noteConnection() { Connections.fetch_add(1, RelaxedOrder); }
  void noteProtocolError() { ProtocolErrors.fetch_add(1, RelaxedOrder); }

  uint64_t requests() const { return Requests.load(RelaxedOrder); }
  uint64_t errors() const { return Errors.load(RelaxedOrder); }
  uint64_t connections() const { return Connections.load(RelaxedOrder); }
  uint64_t protocolErrors() const {
    return ProtocolErrors.load(RelaxedOrder);
  }
  uint64_t bytesIn() const { return BytesIn.load(RelaxedOrder); }
  uint64_t bytesOut() const { return BytesOut.load(RelaxedOrder); }
  uint64_t requestsFor(Opcode Op) const {
    return PerOp[static_cast<unsigned>(Op)].load(RelaxedOrder);
  }

  /// Percentiles over the ring (sorted copy; cheap at ring size 4096).
  LatencySummary latency() const;

  /// Renders every counter, the cache stats, and the latency summary as
  /// `key value` lines — the metrics response body.
  std::string render(const CacheStats &Cache) const;

private:
  static constexpr std::memory_order RelaxedOrder =
      std::memory_order_relaxed;
  static constexpr size_t RingCapacity = 4096;

  std::atomic<uint64_t> Requests{0};
  std::atomic<uint64_t> Errors{0};
  std::atomic<uint64_t> Connections{0};
  std::atomic<uint64_t> ProtocolErrors{0};
  std::atomic<uint64_t> BytesIn{0};
  std::atomic<uint64_t> BytesOut{0};
  std::atomic<uint64_t> PerOp[NumOpcodes] = {};

  mutable std::mutex RingMu;
  std::vector<double> Ring; ///< guarded by RingMu; wraps at capacity
  size_t RingNext = 0;      ///< guarded by RingMu
};

} // namespace cjpack::serve

#endif // CJPACK_SERVE_METRICS_H
