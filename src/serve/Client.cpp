//===- Client.cpp - a blocking client for the cjpackd protocol ------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace cjpack;
using namespace cjpack::serve;

namespace {

Error errnoError(const std::string &What) {
  return Error::failure(What + ": " + std::strerror(errno));
}

bool readFull(int Fd, uint8_t *Buf, size_t N) {
  size_t Got = 0;
  while (Got < N) {
    ssize_t R = ::recv(Fd, Buf + Got, N - Got, 0);
    if (R <= 0) {
      if (R < 0 && errno == EINTR)
        continue;
      return false;
    }
    Got += static_cast<size_t>(R);
  }
  return true;
}

bool writeFull(int Fd, const std::vector<uint8_t> &Data) {
  size_t Sent = 0;
  while (Sent < Data.size()) {
    ssize_t W = ::send(Fd, Data.data() + Sent, Data.size() - Sent,
                       MSG_NOSIGNAL);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Sent += static_cast<size_t>(W);
  }
  return true;
}

} // namespace

Expected<Client> Client::connectUnix(const std::string &Path) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return errnoError("socket(AF_UNIX)");
  sockaddr_un Addr = {};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    ::close(Fd);
    return Error::failure("unix socket path too long: '" + Path + "'");
  }
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Error E = errnoError("connect('" + Path + "')");
    ::close(Fd);
    return E;
  }
  return Client(Fd);
}

Expected<Client> Client::connectTcp(int Port) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return errnoError("socket(AF_INET)");
  sockaddr_in Addr = {};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Error E = errnoError("connect(loopback:" + std::to_string(Port) + ")");
    ::close(Fd);
    return E;
  }
  return Client(Fd);
}

void Client::close() {
  if (Fd >= 0)
    ::close(Fd);
  Fd = -1;
}

bool Client::sendRaw(const std::vector<uint8_t> &Bytes) {
  return writeFull(Fd, Bytes);
}

void Client::shutdownWrite() {
  if (Fd >= 0)
    ::shutdown(Fd, SHUT_WR);
}

Expected<Response> Client::readResponse() {
  uint8_t Header[4];
  if (!readFull(Fd, Header, 4))
    return Error::failure("connection closed while reading response header");
  uint32_t Len = (static_cast<uint32_t>(Header[0]) << 24) |
                 (static_cast<uint32_t>(Header[1]) << 16) |
                 (static_cast<uint32_t>(Header[2]) << 8) |
                 static_cast<uint32_t>(Header[3]);
  if (auto E = validateFrameLength(Len, MaxResponsePayload))
    return E;
  std::vector<uint8_t> Payload(Len);
  if (Len > 0 && !readFull(Fd, Payload.data(), Len))
    return Error::failure("connection closed mid-response");
  return parseResponse(Payload);
}

Expected<Response> Client::call(Opcode Op, std::vector<std::string> Args) {
  Request Req;
  Req.Op = Op;
  Req.Args = std::move(Args);
  if (!sendRaw(frame(encodeRequest(Req))))
    return Error::failure("connection closed while sending request");
  return readResponse();
}
