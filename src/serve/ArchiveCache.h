//===- ArchiveCache.h - LRU cache of hot open archives ---------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The perf core of cjpackd: a size-bounded LRU cache of open archives.
/// A cached entry owns the memory-mapped file (support/InputFile.h) and
/// a PackedArchiveReader over it, so a cache hit skips the whole cold
/// path — open, mmap, header/index/dictionary parse, and (after the
/// first fetch from a shard) the shard's inflate-and-decode — and a hot
/// `unpack-class` costs only record materialization.
///
/// Entries are keyed by path and validated by (mtime, size): a lookup
/// stats the file first and a changed identity evicts the stale entry
/// and reopens, so an archive rewritten in place is never served from
/// dead state. Lookups hand out shared_ptrs, so an entry evicted (or
/// flushed) while requests are in flight stays alive — and its mapping
/// valid — until the last request drops it.
///
/// Thread safety: the map, LRU list, and counters are guarded by one
/// mutex; the expensive open runs outside it (two racing misses on one
/// path both open, last insert wins — harmless, the loser's entry
/// lives on through its shared_ptr). Concurrent decodes through a
/// shared entry are safe because PackedArchiveReader serializes per
/// shard internally.
///
/// The size bound counts archive file bytes. Decoded shard state grows
/// an entry beyond that over time (roughly by the inflated bytes the
/// budget reports), so the capacity is a working-set target, not a hard
/// RSS cap.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_SERVE_ARCHIVECACHE_H
#define CJPACK_SERVE_ARCHIVECACHE_H

#include "pack/ArchiveReader.h"
#include "support/InputFile.h"
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace cjpack::serve {

/// One open archive: the mapped bytes and the lazy reader over them.
/// The reader's decoded-shard and budget state accumulates across
/// requests — that accumulation is exactly what a hit reuses.
struct CachedArchive {
  CachedArchive(InputFile F, PackedArchiveReader R)
      : File(std::move(F)), Reader(std::move(R)) {}

  InputFile File;
  PackedArchiveReader Reader;
};

/// Snapshot of the cache's counters.
struct CacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;   ///< capacity + staleness evictions
  uint64_t OpenFailures = 0;
  size_t Entries = 0;
  size_t Bytes = 0;         ///< archive file bytes currently cached
};

class ArchiveCache {
public:
  /// \p CapacityBytes bounds the sum of cached archive file sizes; 0
  /// disables caching entirely (every lookup is a miss that opens
  /// fresh — the bench's cold mode). \p Limits configures each cached
  /// reader's DecodeBudget; the budget spans the reader's whole cached
  /// lifetime, so the defaults (sized for a one-shot decode) are
  /// already generous — total inflate per archive is bounded by its
  /// raw shard bytes, decoded at most once each.
  explicit ArchiveCache(size_t CapacityBytes,
                        const DecodeLimits &Limits = {})
      : Capacity(CapacityBytes), Limits(Limits) {}

  ArchiveCache(const ArchiveCache &) = delete;
  ArchiveCache &operator=(const ArchiveCache &) = delete;

  /// Returns the cached entry for \p Path, opening (and caching) it on
  /// a miss. Fails when the file cannot be stat'd/opened or is not a
  /// version-3 archive; failures are never cached.
  Expected<std::shared_ptr<CachedArchive>> get(const std::string &Path);

  /// Drops every entry (in-flight shared_ptrs keep theirs alive).
  void flush();

  CacheStats stats() const;

private:
  /// File identity a cached entry was opened against.
  struct FileId {
    int64_t MtimeSec = 0;
    int64_t MtimeNsec = 0;
    uint64_t Size = 0;

    bool operator==(const FileId &O) const {
      return MtimeSec == O.MtimeSec && MtimeNsec == O.MtimeNsec &&
             Size == O.Size;
    }
  };

  struct Slot {
    FileId Id;
    std::shared_ptr<CachedArchive> Arch;
    size_t Bytes = 0;
    std::list<std::string>::iterator LruIt;
  };

  /// Stats \p Path. Failure is a typed Error (file gone/unreadable).
  static Expected<FileId> identify(const std::string &Path);

  /// Removes \p It's entry. Caller holds Mu.
  void eraseLocked(std::unordered_map<std::string, Slot>::iterator It);

  /// Evicts LRU-tail entries until Bytes fits Capacity, never evicting
  /// the most recent entry. Caller holds Mu.
  void enforceCapacityLocked();

  const size_t Capacity;
  const DecodeLimits Limits;

  mutable std::mutex Mu;
  std::list<std::string> Lru; ///< front = most recently used
  std::unordered_map<std::string, Slot> Map;
  size_t BytesCached = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
  uint64_t OpenFailures = 0;
};

} // namespace cjpack::serve

#endif // CJPACK_SERVE_ARCHIVECACHE_H
