//===- Client.h - a blocking client for the cjpackd protocol ---*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small blocking client over the framed protocol: connect to a
/// cjpackd unix socket (or TCP loopback port), issue one request at a
/// time, read the framed response. `packtool client` and the serving
/// bench are the callers; both want strict bounds on what the server
/// may send back, so the response frame length is validated against
/// MaxResponsePayload before allocation.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_SERVE_CLIENT_H
#define CJPACK_SERVE_CLIENT_H

#include "serve/Protocol.h"
#include <string>
#include <utility>
#include <vector>

namespace cjpack::serve {

/// A connected client. Movable, not copyable; closes on destruction.
class Client {
public:
  /// Connects to a unix-domain socket.
  static Expected<Client> connectUnix(const std::string &Path);

  /// Connects to a TCP port on the loopback interface.
  static Expected<Client> connectTcp(int Port);

  Client(Client &&O) noexcept : Fd(O.Fd) { O.Fd = -1; }
  Client &operator=(Client &&O) noexcept {
    if (this != &O) {
      close();
      Fd = O.Fd;
      O.Fd = -1;
    }
    return *this;
  }
  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;
  ~Client() { close(); }

  /// Sends one request and blocks for its response. A failure Error
  /// means the transport broke (connect/read/write); a server-side
  /// failure comes back as a Response with a non-Ok status.
  Expected<Response> call(Opcode Op, std::vector<std::string> Args = {});

  /// Sends raw bytes as-is — the fault-injection tests' hostile-client
  /// primitive. Returns false when the peer has already hung up.
  bool sendRaw(const std::vector<uint8_t> &Bytes);

  /// Reads one framed response (without sending anything first).
  Expected<Response> readResponse();

  /// Half-closes the write side, signalling end-of-requests.
  void shutdownWrite();

  int fd() const { return Fd; }

private:
  explicit Client(int Fd) : Fd(Fd) {}
  void close();

  int Fd = -1;
};

} // namespace cjpack::serve

#endif // CJPACK_SERVE_CLIENT_H
