//===- Protocol.cpp - cjpackd request/response wire protocol --------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"
#include "support/ByteBuffer.h"
#include "support/VarInt.h"

using namespace cjpack;
using namespace cjpack::serve;

const char *cjpack::serve::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Ping: return "ping";
  case Opcode::Pack: return "pack";
  case Opcode::Unpack: return "unpack";
  case Opcode::UnpackClass: return "unpack-class";
  case Opcode::Stat: return "stat";
  case Opcode::Verify: return "verify";
  case Opcode::Lint: return "lint";
  case Opcode::Metrics: return "metrics";
  case Opcode::CacheFlush: return "flush";
  }
  return "?";
}

const Opcode *cjpack::serve::findOpcodeByName(const std::string &Name) {
  static const Opcode All[NumOpcodes] = {
      Opcode::Ping,   Opcode::Pack,    Opcode::Unpack,
      Opcode::UnpackClass, Opcode::Stat, Opcode::Verify,
      Opcode::Lint,   Opcode::Metrics, Opcode::CacheFlush,
  };
  for (const Opcode &Op : All)
    if (Name == opcodeName(Op))
      return &Op;
  return nullptr;
}

const char *cjpack::serve::statusName(Status St) {
  switch (St) {
  case Status::Ok: return "ok";
  case Status::BadRequest: return "bad-request";
  case Status::Truncated: return "truncated";
  case Status::Corrupt: return "corrupt";
  case Status::LimitExceeded: return "limit-exceeded";
  case Status::VersionMismatch: return "version-mismatch";
  case Status::Failed: return "failed";
  case Status::ShuttingDown: return "shutting-down";
  }
  return "?";
}

Status cjpack::serve::statusForError(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::Truncated: return Status::Truncated;
  case ErrorCode::Corrupt: return Status::Corrupt;
  case ErrorCode::LimitExceeded: return Status::LimitExceeded;
  case ErrorCode::VersionMismatch: return Status::VersionMismatch;
  case ErrorCode::Other: return Status::Failed;
  }
  return Status::Failed;
}

std::vector<uint8_t> cjpack::serve::encodeRequest(const Request &R) {
  ByteWriter W;
  W.writeU1(static_cast<uint8_t>(R.Op));
  W.writeU1(static_cast<uint8_t>(R.Args.size()));
  for (const std::string &A : R.Args) {
    writeVarUInt(W, A.size());
    W.writeString(A);
  }
  return W.take();
}

Expected<Request> cjpack::serve::parseRequest(std::span<const uint8_t> Payload,
                                              const ProtocolLimits &Limits) {
  ByteReader R(Payload);
  uint8_t OpByte = R.readU1();
  uint8_t Argc = R.readU1();
  if (R.hasError())
    return makeError(ErrorCode::Truncated,
                     "protocol: request payload shorter than its fixed "
                     "header");
  if (OpByte >= NumOpcodes)
    return makeError(ErrorCode::Corrupt,
                     "protocol: unknown opcode " + std::to_string(OpByte));
  if (Argc > Limits.MaxArgs)
    return makeError(ErrorCode::LimitExceeded,
                     "protocol: " + std::to_string(Argc) +
                         " arguments over the per-request cap");
  Request Req;
  Req.Op = static_cast<Opcode>(OpByte);
  Req.Args.reserve(Argc);
  for (unsigned I = 0; I < Argc; ++I) {
    uint64_t Len = readVarUInt(R);
    if (R.hasError())
      return R.takeError("protocol: argument length");
    if (Len > Limits.MaxArgBytes)
      return makeError(ErrorCode::LimitExceeded,
                       "protocol: argument of " + std::to_string(Len) +
                           " bytes over the per-argument cap");
    if (Len > R.remaining())
      return makeError(ErrorCode::Truncated,
                       "protocol: argument extends past end of payload");
    Req.Args.push_back(R.readString(static_cast<size_t>(Len)));
  }
  if (!R.atEnd())
    return makeError(ErrorCode::Corrupt,
                     "protocol: trailing bytes after last argument");
  return Req;
}

std::vector<uint8_t> cjpack::serve::encodeResponse(const Response &R) {
  std::vector<uint8_t> Out;
  Out.reserve(1 + R.Body.size());
  Out.push_back(static_cast<uint8_t>(R.St));
  Out.insert(Out.end(), R.Body.begin(), R.Body.end());
  return Out;
}

Expected<Response> cjpack::serve::parseResponse(
    std::span<const uint8_t> Payload) {
  if (Payload.empty())
    return makeError(ErrorCode::Truncated,
                     "protocol: empty response payload");
  uint8_t St = Payload[0];
  if (St > static_cast<uint8_t>(Status::ShuttingDown))
    return makeError(ErrorCode::Corrupt,
                     "protocol: unknown response status " +
                         std::to_string(St));
  Response R;
  R.St = static_cast<Status>(St);
  R.Body.assign(Payload.begin() + 1, Payload.end());
  return R;
}

Error cjpack::serve::validateFrameLength(uint32_t Len, uint32_t MaxPayload) {
  if (Len > MaxPayload)
    return makeError(ErrorCode::LimitExceeded,
                     "protocol: frame of " + std::to_string(Len) +
                         " bytes over the " + std::to_string(MaxPayload) +
                         "-byte payload cap");
  return Error::success();
}

std::vector<uint8_t> cjpack::serve::frame(std::span<const uint8_t> Payload) {
  std::vector<uint8_t> Out;
  Out.reserve(4 + Payload.size());
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  Out.push_back(static_cast<uint8_t>(Len >> 24));
  Out.push_back(static_cast<uint8_t>(Len >> 16));
  Out.push_back(static_cast<uint8_t>(Len >> 8));
  Out.push_back(static_cast<uint8_t>(Len));
  Out.insert(Out.end(), Payload.begin(), Payload.end());
  return Out;
}
