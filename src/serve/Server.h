//===- Server.h - the cjpackd archive server -------------------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-running archive server behind `cjpackd`. It listens on a
/// unix-domain socket (and optionally TCP loopback), speaks the framed
/// protocol in Protocol.h, and serves pack/unpack/stat/verify/lint
/// requests against server-side paths. The performance story is the
/// ArchiveCache: repeated `unpack-class` against a hot archive skips
/// the open/mmap/index-parse and reuses already-decoded shard prefixes,
/// which is where the cold path spends nearly all of its time.
///
/// Threading model:
///   - one accept thread polls the listeners plus a self-pipe;
///   - each connection gets a reader thread (frame parsing, request
///     dispatch) and a writer thread (responses, in request order);
///   - handler work runs on one shared ThreadPool, so a slow request on
///     one connection never starves another connection's requests, and
///     MaxInFlightPerConn bounds how many requests one client may have
///     queued (the reader blocks past the cap — backpressure, not
///     disconnect).
///
/// Isolation: every request decodes under its own DecodeBudget (built
/// from ServerConfig::RequestLimits), so one hostile request exhausting
/// its budget cannot poison the next. The exception is cached readers,
/// whose budget (CacheLimits) spans the reader's cached lifetime — safe
/// because a cached shard inflates exactly once, so total spend per
/// archive is bounded by its raw shard bytes regardless of request
/// count.
///
/// Shutdown: requestStop() stops accepting, half-closes every active
/// connection's read side, and lets in-flight requests finish and
/// flush; wait() joins everything. A request parsed after stop is
/// answered with Status::ShuttingDown.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_SERVE_SERVER_H
#define CJPACK_SERVE_SERVER_H

#include "serve/ArchiveCache.h"
#include "serve/Metrics.h"
#include "serve/Protocol.h"
#include "support/DecodeLimits.h"
#include "support/ThreadPool.h"
#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace cjpack::serve {

struct ServerConfig {
  /// Path for the unix-domain listener (required; unlinked on bind and
  /// again on shutdown).
  std::string UnixSocketPath;
  /// TCP loopback listener port: -1 disables TCP, 0 binds an ephemeral
  /// port (read it back from Server::tcpPort()).
  int TcpPort = -1;
  /// Handler threads in the shared pool (0 = one per hardware thread).
  unsigned Threads = 0;
  /// ArchiveCache capacity in archive file bytes (0 disables caching).
  size_t CacheBytes = 256u << 20;
  /// Requests one connection may have queued/executing before its
  /// reader blocks.
  unsigned MaxInFlightPerConn = 4;
  /// Idle read timeout per connection, seconds (0 = no timeout).
  unsigned ReadTimeoutSec = 60;
  /// Request frame payload cap (responses are bounded by the client's
  /// own MaxResponsePayload).
  uint32_t MaxRequestBytes = MaxRequestPayload;
  /// Argument-table caps for request parsing.
  ProtocolLimits Limits;
  /// Decode caps applied per request (fresh budget each time).
  DecodeLimits RequestLimits;
  /// Decode caps for cached readers (budget spans the cached lifetime).
  DecodeLimits CacheLimits;
};

class Server {
public:
  /// Binds the listeners and starts the accept loop. Fails with a
  /// typed Error when a socket cannot be bound.
  static Expected<std::unique_ptr<Server>> start(const ServerConfig &Config);

  ~Server();
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Stops accepting and begins a graceful drain. Safe to call from a
  /// signal-handling thread (not from a signal handler itself) and
  /// idempotent.
  void requestStop();

  /// Blocks until every connection has drained and every thread has
  /// joined. Implies requestStop() has been (or will be) called by
  /// someone; wait() itself never initiates the stop.
  void wait();

  /// Bound TCP port (0 when TCP is disabled). Useful with
  /// ServerConfig::TcpPort == 0.
  int tcpPort() const { return BoundTcpPort; }

  const ServerMetrics &metrics() const { return Metrics; }
  ArchiveCache &cache() { return *Cache; }

  /// Serves one parsed request. Public so tests and the bench can
  /// exercise handlers without a socket in the path.
  Response handle(const Request &Req);

private:
  struct Session;

  explicit Server(const ServerConfig &Config);

  Error bindListeners();
  void acceptLoop();
  void runSession(Session &S);
  void reapFinishedSessions();

  ServerConfig Config;
  std::unique_ptr<ArchiveCache> Cache;
  std::unique_ptr<ThreadPool> Pool;
  ServerMetrics Metrics;

  int UnixFd = -1;
  int TcpFd = -1;
  int BoundTcpPort = 0;
  int WakePipe[2] = {-1, -1};

  std::atomic<bool> Stopping{false};
  std::thread AcceptThread;

  std::mutex SessionsMu;
  std::list<std::unique_ptr<Session>> Sessions;
};

} // namespace cjpack::serve

#endif // CJPACK_SERVE_SERVER_H
