//===- ArchiveCache.cpp - LRU cache of hot open archives ------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/ArchiveCache.h"
#include <sys/stat.h>

using namespace cjpack;
using namespace cjpack::serve;

Expected<ArchiveCache::FileId> ArchiveCache::identify(const std::string &Path) {
  struct stat St;
  if (::stat(Path.c_str(), &St) != 0)
    return Error::failure("cannot stat '" + Path + "'");
  if (!S_ISREG(St.st_mode))
    return Error::failure("'" + Path + "' is not a regular file");
  FileId Id;
#if defined(__APPLE__)
  Id.MtimeSec = St.st_mtimespec.tv_sec;
  Id.MtimeNsec = St.st_mtimespec.tv_nsec;
#else
  Id.MtimeSec = St.st_mtim.tv_sec;
  Id.MtimeNsec = St.st_mtim.tv_nsec;
#endif
  Id.Size = static_cast<uint64_t>(St.st_size);
  return Id;
}

void ArchiveCache::eraseLocked(
    std::unordered_map<std::string, Slot>::iterator It) {
  BytesCached -= It->second.Bytes;
  Lru.erase(It->second.LruIt);
  Map.erase(It);
}

void ArchiveCache::enforceCapacityLocked() {
  // Always keep the most recent entry even when it alone exceeds the
  // capacity — evicting the archive we are about to serve from would
  // make every request to it a miss.
  while (BytesCached > Capacity && Map.size() > 1) {
    auto It = Map.find(Lru.back());
    eraseLocked(It);
    ++Evictions;
  }
}

Expected<std::shared_ptr<CachedArchive>>
ArchiveCache::get(const std::string &Path) {
  auto Id = identify(Path);
  if (!Id) {
    std::lock_guard<std::mutex> Lock(Mu);
    ++OpenFailures;
    return Id.takeError();
  }

  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Map.find(Path);
    if (It != Map.end()) {
      if (It->second.Id == *Id) {
        ++Hits;
        Lru.splice(Lru.begin(), Lru, It->second.LruIt);
        return It->second.Arch;
      }
      // The file changed under the cached entry: drop the dead state
      // and fall through to a fresh open.
      eraseLocked(It);
      ++Evictions;
    }
    ++Misses;
  }

  auto File = InputFile::open(Path);
  if (!File) {
    std::lock_guard<std::mutex> Lock(Mu);
    ++OpenFailures;
    return File.takeError();
  }
  auto Reader = PackedArchiveReader::open(File->data(), File->size(), Limits);
  if (!Reader) {
    std::lock_guard<std::mutex> Lock(Mu);
    ++OpenFailures;
    return Reader.takeError();
  }
  // InputFile's span is stable under move (the mapping or owned buffer
  // does not relocate), so the reader's borrowed pointers survive the
  // moves into the cached entry.
  auto Arch = std::make_shared<CachedArchive>(std::move(*File),
                                              std::move(*Reader));
  size_t Bytes = Arch->File.size();

  if (Capacity == 0)
    return Arch; // caching disabled: serve the entry, cache nothing

  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Map.find(Path);
  if (It != Map.end())
    eraseLocked(It); // raced with another miss; last insert wins
  Lru.push_front(Path);
  Slot S;
  S.Id = *Id;
  S.Arch = Arch;
  S.Bytes = Bytes;
  S.LruIt = Lru.begin();
  Map.emplace(Path, std::move(S));
  BytesCached += Bytes;
  enforceCapacityLocked();
  return Arch;
}

void ArchiveCache::flush() {
  std::lock_guard<std::mutex> Lock(Mu);
  Evictions += Map.size();
  Map.clear();
  Lru.clear();
  BytesCached = 0;
}

CacheStats ArchiveCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  CacheStats S;
  S.Hits = Hits;
  S.Misses = Misses;
  S.Evictions = Evictions;
  S.OpenFailures = OpenFailures;
  S.Entries = Map.size();
  S.Bytes = BytesCached;
  return S;
}
