//===- Metrics.cpp - cjpackd serving counters and latency -----------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Metrics.h"
#include "serve/ArchiveCache.h"
#include <algorithm>
#include <cstdio>

using namespace cjpack;
using namespace cjpack::serve;

void ServerMetrics::noteRequest(Opcode Op, Status St, uint64_t In,
                                uint64_t Out, double Micros) {
  Requests.fetch_add(1, RelaxedOrder);
  if (St != Status::Ok)
    Errors.fetch_add(1, RelaxedOrder);
  BytesIn.fetch_add(In, RelaxedOrder);
  BytesOut.fetch_add(Out, RelaxedOrder);
  PerOp[static_cast<unsigned>(Op)].fetch_add(1, RelaxedOrder);

  std::lock_guard<std::mutex> Lock(RingMu);
  if (Ring.size() < RingCapacity) {
    Ring.push_back(Micros);
  } else {
    Ring[RingNext] = Micros;
    RingNext = (RingNext + 1) % RingCapacity;
  }
}

namespace {

/// Nearest-rank percentile over \p Sorted (ascending, non-empty).
double percentile(const std::vector<double> &Sorted, double Q) {
  size_t Rank = static_cast<size_t>(Q * static_cast<double>(Sorted.size()));
  if (Rank >= Sorted.size())
    Rank = Sorted.size() - 1;
  return Sorted[Rank];
}

} // namespace

LatencySummary ServerMetrics::latency() const {
  std::vector<double> Samples;
  {
    std::lock_guard<std::mutex> Lock(RingMu);
    Samples = Ring;
  }
  LatencySummary S;
  S.Samples = Samples.size();
  if (Samples.empty())
    return S;
  std::sort(Samples.begin(), Samples.end());
  S.P50Us = percentile(Samples, 0.50);
  S.P90Us = percentile(Samples, 0.90);
  S.P99Us = percentile(Samples, 0.99);
  S.MaxUs = Samples.back();
  return S;
}

std::string ServerMetrics::render(const CacheStats &Cache) const {
  std::string Out;
  auto Line = [&Out](const char *Key, uint64_t V) {
    Out += Key;
    Out += ' ';
    Out += std::to_string(V);
    Out += '\n';
  };
  auto LineF = [&Out](const char *Key, double V) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%s %.1f\n", Key, V);
    Out += Buf;
  };

  Line("requests", requests());
  Line("errors", errors());
  Line("connections", connections());
  Line("protocol_errors", protocolErrors());
  Line("bytes_in", bytesIn());
  Line("bytes_out", bytesOut());
  for (unsigned I = 0; I < NumOpcodes; ++I) {
    Out += "op ";
    Out += opcodeName(static_cast<Opcode>(I));
    Out += ' ';
    Out += std::to_string(PerOp[I].load(RelaxedOrder));
    Out += '\n';
  }
  Line("cache_hits", Cache.Hits);
  Line("cache_misses", Cache.Misses);
  Line("cache_evictions", Cache.Evictions);
  Line("cache_open_failures", Cache.OpenFailures);
  Line("cache_entries", Cache.Entries);
  Line("cache_bytes", Cache.Bytes);

  LatencySummary L = latency();
  Line("latency_samples", L.Samples);
  LineF("p50_us", L.P50Us);
  LineF("p90_us", L.P90Us);
  LineF("p99_us", L.P99Us);
  LineF("max_us", L.MaxUs);
  return Out;
}
