//===- Protocol.h - cjpackd request/response wire protocol -----*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The framed request protocol spoken between `packtool client` and the
/// cjpackd archive server. Every message — request or response — is one
/// frame:
///
///   u4  payload length (big-endian, bounded by the receiver)
///   ... payload
///
/// A request payload is an opcode plus counted string arguments:
///
///   u1  opcode
///   u1  argument count
///   per argument: varint length, then that many bytes
///
/// and must consume the payload exactly. A response payload is a status
/// byte followed by the body (UTF-8 text for most operations, raw
/// classfile bytes for unpack-class, the error message for failures).
///
/// The parser is a decode surface for hostile clients, so it follows the
/// repo-wide hardening contract: every length and count is validated
/// before allocation or indexing, failures are typed Truncated /
/// Corrupt / LimitExceeded errors, and `fuzz_serve` drives it from a
/// seed corpus. Framing errors the server cannot resync from (an
/// oversized length prefix) close the connection after a typed error
/// response; payload-level errors (garbage opcode, malformed argument
/// table) leave the connection usable because the frame boundary is
/// still trustworthy.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_SERVE_PROTOCOL_H
#define CJPACK_SERVE_PROTOCOL_H

#include "support/Error.h"
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace cjpack::serve {

/// Request operations. The wire value is the enum value; unknown bytes
/// are a typed Corrupt error from parseRequest.
enum class Opcode : uint8_t {
  Ping = 0,     ///< liveness probe; body "pong"
  Pack,         ///< args [in.jar, out.cjp]: pack a server-side jar
  Unpack,       ///< args [in.cjp, out.jar]: restore a server-side archive
  UnpackClass,  ///< args [archive, name]: one class via the hot cache
  Stat,         ///< args [archive]: wire-level composition summary
  Verify,       ///< args [path]: flow-verify a class/jar/archive
  Lint,         ///< args [path]: whole-archive static analysis summary
  Metrics,      ///< no args: server counters, cache stats, latency
  CacheFlush,   ///< no args: drop every cached archive (bench cold mode)
};

inline constexpr unsigned NumOpcodes = 9;

/// Printable name of \p Op ("unpack-class" style, as the client spells
/// commands).
const char *opcodeName(Opcode Op);

/// Reverse of opcodeName; nullptr for unknown names.
const Opcode *findOpcodeByName(const std::string &Name);

/// Response status. Ok carries an operation body; everything else
/// carries the error message. The decode-taxonomy statuses mirror
/// ErrorCode so a client sees the same classification the library
/// reports.
enum class Status : uint8_t {
  Ok = 0,
  BadRequest,      ///< wrong argument count / unknown operation
  Truncated,       ///< ErrorCode::Truncated from the handler or parser
  Corrupt,         ///< ErrorCode::Corrupt
  LimitExceeded,   ///< ErrorCode::LimitExceeded (budget exhausted)
  VersionMismatch, ///< ErrorCode::VersionMismatch
  Failed,          ///< any other failure (unreadable file, unknown class)
  ShuttingDown,    ///< server is draining; retry elsewhere
};

/// Printable name of \p St.
const char *statusName(Status St);

/// Maps the library's error taxonomy onto the wire status.
Status statusForError(ErrorCode Code);

/// Caps enforced while parsing a request payload (the frame length cap
/// lives in the server/client configs, since the two directions differ).
struct ProtocolLimits {
  /// Arguments per request; every defined operation takes at most 3.
  uint32_t MaxArgs = 8;
  /// Bytes per argument (paths and class names; nowhere near this).
  uint64_t MaxArgBytes = 1u << 16;
};

/// Default bound on a request frame's payload (requests carry paths and
/// names, never bulk data).
inline constexpr uint32_t MaxRequestPayload = 1u << 20;

/// Default bound on a response frame's payload (unpack-class bodies are
/// whole classfiles; metrics and diagnostics are text).
inline constexpr uint32_t MaxResponsePayload = 1u << 28;

/// One parsed request.
struct Request {
  Opcode Op = Opcode::Ping;
  std::vector<std::string> Args;
};

/// One response.
struct Response {
  Status St = Status::Ok;
  std::vector<uint8_t> Body;

  static Response ok(std::string Text) {
    Response R;
    R.Body.assign(Text.begin(), Text.end());
    return R;
  }
  static Response okBytes(std::vector<uint8_t> Bytes) {
    Response R;
    R.Body = std::move(Bytes);
    return R;
  }
  static Response fail(Status St, const std::string &Msg) {
    Response R;
    R.St = St;
    R.Body.assign(Msg.begin(), Msg.end());
    return R;
  }
  static Response fail(const Error &E) {
    return fail(statusForError(E.code()), E.message());
  }

  /// The body as text (error message, or a text operation's output).
  std::string text() const {
    return std::string(Body.begin(), Body.end());
  }
};

/// Serializes a request payload (no frame header).
std::vector<uint8_t> encodeRequest(const Request &R);

/// Parses a request payload. Typed errors: Truncated when the payload
/// ends before a promised field, Corrupt for unknown opcodes /
/// non-canonical varints / trailing bytes, LimitExceeded when a count
/// or length crosses \p Limits.
Expected<Request> parseRequest(std::span<const uint8_t> Payload,
                               const ProtocolLimits &Limits = {});

/// Serializes a response payload (no frame header).
std::vector<uint8_t> encodeResponse(const Response &R);

/// Parses a response payload (status byte + body).
Expected<Response> parseResponse(std::span<const uint8_t> Payload);

/// Validates a frame's declared payload length against \p MaxPayload.
/// An oversized declaration is the one framing error the receiver
/// cannot skip past, so callers close the connection after reporting it.
Error validateFrameLength(uint32_t Len, uint32_t MaxPayload);

/// Prepends the u4 big-endian frame header to \p Payload.
std::vector<uint8_t> frame(std::span<const uint8_t> Payload);

} // namespace cjpack::serve

#endif // CJPACK_SERVE_PROTOCOL_H
