//===- Server.cpp - the cjpackd archive server ----------------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"
#include "analysis/ArchiveAnalysis.h"
#include "analysis/Verifier.h"
#include "classfile/Reader.h"
#include "classfile/Writer.h"
#include "pack/Packer.h"
#include "pack/Stats.h"
#include "zip/ZipFile.h"
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <fstream>
#include <future>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace cjpack;
using namespace cjpack::serve;

namespace {

Error errnoError(const std::string &What) {
  return Error::failure(What + ": " + std::strerror(errno));
}

/// Reads exactly \p N bytes. Returns N on success, 0 on clean EOF at
/// the first byte, -1 on error/timeout/mid-read EOF.
ssize_t readFull(int Fd, uint8_t *Buf, size_t N) {
  size_t Got = 0;
  while (Got < N) {
    ssize_t R = ::recv(Fd, Buf + Got, N - Got, 0);
    if (R == 0)
      return Got == 0 ? 0 : -1;
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    Got += static_cast<size_t>(R);
  }
  return static_cast<ssize_t>(Got);
}

/// Writes all of \p Data. MSG_NOSIGNAL so a client that hung up yields
/// EPIPE, not a process-killing SIGPIPE.
bool writeFull(int Fd, const std::vector<uint8_t> &Data) {
  size_t Sent = 0;
  while (Sent < Data.size()) {
    ssize_t W = ::send(Fd, Data.data() + Sent, Data.size() - Sent,
                       MSG_NOSIGNAL);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Sent += static_cast<size_t>(W);
  }
  return true;
}

bool readFileBytes(const std::string &Path, std::vector<uint8_t> &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  Out.assign(std::istreambuf_iterator<char>(In),
             std::istreambuf_iterator<char>());
  return !In.bad();
}

bool writeFileBytes(const std::string &Path,
                    const std::vector<uint8_t> &Data) {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return false;
  Out.write(reinterpret_cast<const char *>(Data.data()),
            static_cast<std::streamsize>(Data.size()));
  return static_cast<bool>(Out);
}

bool isClassName(const std::string &Name) {
  return Name.size() > 6 &&
         Name.compare(Name.size() - 6, 6, ".class") == 0;
}

/// Loads \p Path — a classfile, a jar/zip, or a cjpack archive of any
/// version — into named classfiles for verify/lint.
Expected<std::vector<NamedClass>> loadClassSet(const std::string &Path,
                                               const DecodeLimits &Limits) {
  std::vector<uint8_t> Bytes;
  if (!readFileBytes(Path, Bytes))
    return Error::failure("cannot read '" + Path + "'");
  if (Bytes.size() >= 4 && Bytes[0] == 0xCA && Bytes[1] == 0xFE &&
      Bytes[2] == 0xBA && Bytes[3] == 0xBE) {
    std::vector<NamedClass> One(1);
    One[0].Name = Path;
    One[0].Data = std::move(Bytes);
    return One;
  }
  if (Bytes.size() >= 4 && Bytes[0] == 'C' && Bytes[1] == 'J' &&
      Bytes[2] == 'P' && Bytes[3] == 'K') {
    UnpackOptions Options;
    Options.Threads = 1;
    Options.Limits = Limits;
    return unpackAnyArchive(Bytes, Options);
  }
  auto Entries = readZip(Bytes, Limits);
  if (!Entries)
    return Entries.takeError();
  std::vector<NamedClass> Classes;
  for (ZipEntry &E : *Entries)
    if (isClassName(E.Name))
      Classes.push_back(std::move(E));
  return Classes;
}

} // namespace

//===----------------------------------------------------------------------===//
// Request handlers
//===----------------------------------------------------------------------===//

Response Server::handle(const Request &Req) {
  auto BadArgc = [&Req](size_t Want) {
    return Response::fail(Status::BadRequest,
                          std::string(opcodeName(Req.Op)) + " takes " +
                              std::to_string(Want) + " argument(s), got " +
                              std::to_string(Req.Args.size()));
  };

  switch (Req.Op) {
  case Opcode::Ping:
    return Response::ok("pong");

  case Opcode::Pack: {
    if (Req.Args.size() != 2)
      return BadArgc(2);
    std::vector<uint8_t> Jar;
    if (!readFileBytes(Req.Args[0], Jar))
      return Response::fail(Status::Failed,
                            "cannot read '" + Req.Args[0] + "'");
    auto Entries = readZip(Jar, Config.RequestLimits);
    if (!Entries)
      return Response::fail(Entries.takeError());
    std::vector<NamedClass> Classes;
    for (ZipEntry &E : *Entries)
      if (isClassName(E.Name))
        Classes.push_back(std::move(E));
    PackOptions Options;
    Options.Shards = 0; // autotune from class count
    Options.Threads = 1; // parallelism comes from concurrent requests
    Options.RandomAccessIndex = true;
    auto Packed = packClassBytes(Classes, Options);
    if (!Packed)
      return Response::fail(Packed.takeError());
    if (!writeFileBytes(Req.Args[1], Packed->Archive))
      return Response::fail(Status::Failed,
                            "cannot write '" + Req.Args[1] + "'");
    return Response::ok("packed " + std::to_string(Packed->ClassCount) +
                        " classes into " +
                        std::to_string(Packed->Archive.size()) + " bytes");
  }

  case Opcode::Unpack: {
    if (Req.Args.size() != 2)
      return BadArgc(2);
    std::vector<uint8_t> Archive;
    if (!readFileBytes(Req.Args[0], Archive))
      return Response::fail(Status::Failed,
                            "cannot read '" + Req.Args[0] + "'");
    UnpackOptions Options;
    Options.Threads = 1;
    Options.Limits = Config.RequestLimits;
    auto Classes = unpackAnyArchive(Archive, Options);
    if (!Classes)
      return Response::fail(Classes.takeError());
    std::vector<uint8_t> Jar = writeZip(*Classes, ZipMethod::Deflated);
    if (!writeFileBytes(Req.Args[1], Jar))
      return Response::fail(Status::Failed,
                            "cannot write '" + Req.Args[1] + "'");
    return Response::ok("unpacked " + std::to_string(Classes->size()) +
                        " classes into " + std::to_string(Jar.size()) +
                        " bytes");
  }

  case Opcode::UnpackClass: {
    if (Req.Args.size() != 2)
      return BadArgc(2);
    auto Arch = Cache->get(Req.Args[0]);
    if (!Arch)
      return Response::fail(Arch.takeError());
    auto CF = (*Arch)->Reader.unpackClass(Req.Args[1]);
    if (!CF)
      return Response::fail(CF.takeError());
    return Response::okBytes(writeClassFile(*CF));
  }

  case Opcode::Stat: {
    if (Req.Args.size() != 1)
      return BadArgc(1);
    std::vector<uint8_t> Archive;
    if (!readFileBytes(Req.Args[0], Archive))
      return Response::fail(Status::Failed,
                            "cannot read '" + Req.Args[0] + "'");
    auto Stats = statPackedArchive(Archive, Config.RequestLimits);
    if (!Stats)
      return Response::fail(Stats.takeError());
    std::string Body;
    Body += "version " + std::to_string(Stats->Version) + "\n";
    Body += "shards " + std::to_string(Stats->Shards) + "\n";
    Body += "archive_bytes " + std::to_string(Stats->ArchiveBytes) + "\n";
    Body += "index_bytes " + std::to_string(Stats->IndexBytes) + "\n";
    Body += "indexed_classes " + std::to_string(Stats->IndexedClasses) +
            "\n";
    Body += "dictionary_bytes " + std::to_string(Stats->DictionaryBytes) +
            "\n";
    return Response::ok(std::move(Body));
  }

  case Opcode::Verify: {
    if (Req.Args.size() != 1)
      return BadArgc(1);
    auto Classes = loadClassSet(Req.Args[0], Config.RequestLimits);
    if (!Classes)
      return Response::fail(Classes.takeError());
    std::vector<ClassFile> Parsed;
    size_t Diags = 0;
    for (const NamedClass &C : *Classes) {
      auto CF = parseClassFile(C.Data);
      if (!CF) {
        ++Diags;
        continue;
      }
      Parsed.push_back(std::move(*CF));
    }
    analysis::ClassHierarchy H = analysis::ClassHierarchy::build(Parsed);
    for (const ClassFile &CF : Parsed)
      Diags += analysis::verifyClass(CF, &H).Diags.size();
    return Response::ok("verified " + std::to_string(Classes->size()) +
                        " classes, " + std::to_string(Diags) +
                        " diagnostics");
  }

  case Opcode::Lint: {
    if (Req.Args.size() != 1)
      return BadArgc(1);
    auto Classes = loadClassSet(Req.Args[0], Config.RequestLimits);
    if (!Classes)
      return Response::fail(Classes.takeError());
    std::vector<ClassFile> Parsed;
    for (const NamedClass &C : *Classes) {
      auto CF = parseClassFile(C.Data);
      if (CF)
        Parsed.push_back(std::move(*CF));
    }
    analysis::ArchiveAnalysisReport R = analysis::analyzeArchive(Parsed);
    std::string Body;
    Body += "classes " + std::to_string(R.ClassesAnalyzed) + "\n";
    Body += "diagnostics " + std::to_string(R.Diags.size()) + "\n";
    Body += "refs_checked " + std::to_string(R.RefsChecked) + "\n";
    Body += "refs_resolved " + std::to_string(R.RefsResolved) + "\n";
    Body += "dead_members " + std::to_string(R.DeadMembers.size()) + "\n";
    Body += "dead_pool_entries " + std::to_string(R.DeadPoolEntries) + "\n";
    return Response::ok(std::move(Body));
  }

  case Opcode::Metrics:
    if (!Req.Args.empty())
      return BadArgc(0);
    return Response::ok(Metrics.render(Cache->stats()));

  case Opcode::CacheFlush:
    if (!Req.Args.empty())
      return BadArgc(0);
    Cache->flush();
    return Response::ok("flushed");
  }
  return Response::fail(Status::BadRequest, "unhandled opcode");
}

//===----------------------------------------------------------------------===//
// Connection sessions
//===----------------------------------------------------------------------===//

/// One live connection: a reader thread parsing frames and dispatching
/// to the pool, and a writer thread flushing responses in order.
struct Server::Session {
  int Fd = -1;
  std::thread Reader;
  std::thread Writer;
  std::atomic<bool> Done{false};

  // Responses queue between reader (producer) and writer (consumer).
  // Bounded by MaxInFlightPerConn: the reader blocks before parsing
  // frame N+cap until frame N's response is flushed.
  std::mutex QueueMu;
  std::condition_variable QueueCv;
  std::deque<std::future<std::vector<uint8_t>>> Queue;
  bool ReaderClosed = false;
};

void Server::runSession(Session &S) {
  Metrics.noteConnection();

  if (Config.ReadTimeoutSec > 0) {
    struct timeval Tv = {};
    Tv.tv_sec = Config.ReadTimeoutSec;
    ::setsockopt(S.Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
  }

  // Enqueues a ready-made response (protocol rejects, shutdown notes)
  // without a pool round-trip.
  auto EnqueueImmediate = [&S](Response R) {
    std::promise<std::vector<uint8_t>> P;
    P.set_value(frame(encodeResponse(R)));
    std::lock_guard<std::mutex> Lock(S.QueueMu);
    S.Queue.push_back(P.get_future());
    S.QueueCv.notify_all();
  };

  bool CloseAfterFlush = false;
  while (!CloseAfterFlush) {
    // Backpressure: wait until the in-flight window has room.
    {
      std::unique_lock<std::mutex> Lock(S.QueueMu);
      S.QueueCv.wait(Lock, [this, &S] {
        return S.Queue.size() < Config.MaxInFlightPerConn;
      });
    }

    uint8_t Header[4];
    ssize_t R = readFull(S.Fd, Header, 4);
    if (R <= 0) {
      // Clean EOF at a frame boundary, timeout, or error — and a
      // partial header is a truncated frame either way: close.
      if (R < 0)
        Metrics.noteProtocolError();
      break;
    }
    uint32_t Len = (static_cast<uint32_t>(Header[0]) << 24) |
                   (static_cast<uint32_t>(Header[1]) << 16) |
                   (static_cast<uint32_t>(Header[2]) << 8) |
                   static_cast<uint32_t>(Header[3]);
    if (auto E = validateFrameLength(Len, Config.MaxRequestBytes)) {
      // Unresyncable framing error: answer, then drop the connection.
      Metrics.noteProtocolError();
      EnqueueImmediate(Response::fail(E));
      break;
    }
    std::vector<uint8_t> Payload(Len);
    if (Len > 0 && readFull(S.Fd, Payload.data(), Len) <= 0) {
      Metrics.noteProtocolError();
      break;
    }

    auto Req = parseRequest(Payload, Config.Limits);
    if (!Req) {
      // Payload-level reject: the frame boundary held, so the
      // connection stays usable for the next request.
      Metrics.noteProtocolError();
      EnqueueImmediate(Response::fail(Req.takeError()));
      continue;
    }
    if (Stopping.load(std::memory_order_relaxed)) {
      EnqueueImmediate(Response::fail(Status::ShuttingDown,
                                      "server is draining"));
      break;
    }

    Request Parsed = std::move(*Req);
    uint64_t BytesIn = 4 + static_cast<uint64_t>(Len);
    auto Future = Pool->submit(
        [this, Parsed = std::move(Parsed), BytesIn]() {
          auto T0 = std::chrono::steady_clock::now();
          Response R = handle(Parsed);
          std::vector<uint8_t> Framed = frame(encodeResponse(R));
          double Us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - T0)
                          .count();
          Metrics.noteRequest(Parsed.Op, R.St, BytesIn, Framed.size(), Us);
          return Framed;
        });
    {
      std::lock_guard<std::mutex> Lock(S.QueueMu);
      S.Queue.push_back(std::move(Future));
      S.QueueCv.notify_all();
    }
  }

  {
    std::lock_guard<std::mutex> Lock(S.QueueMu);
    S.ReaderClosed = true;
    S.QueueCv.notify_all();
  }
}

Server::Server(const ServerConfig &C) : Config(C) {
  Cache.reset(new ArchiveCache(Config.CacheBytes, Config.CacheLimits));
  Pool.reset(new ThreadPool(Config.Threads));
}

Error Server::bindListeners() {
  // Unix-domain listener.
  UnixFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (UnixFd < 0)
    return errnoError("socket(AF_UNIX)");
  sockaddr_un Addr = {};
  Addr.sun_family = AF_UNIX;
  if (Config.UnixSocketPath.size() >= sizeof(Addr.sun_path))
    return Error::failure("unix socket path too long: '" +
                          Config.UnixSocketPath + "'");
  std::strncpy(Addr.sun_path, Config.UnixSocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);
  ::unlink(Config.UnixSocketPath.c_str());
  if (::bind(UnixFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0)
    return errnoError("bind('" + Config.UnixSocketPath + "')");
  if (::listen(UnixFd, 64) < 0)
    return errnoError("listen('" + Config.UnixSocketPath + "')");

  // Optional TCP loopback listener.
  if (Config.TcpPort >= 0) {
    TcpFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (TcpFd < 0)
      return errnoError("socket(AF_INET)");
    int One = 1;
    ::setsockopt(TcpFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    sockaddr_in In = {};
    In.sin_family = AF_INET;
    In.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    In.sin_port = htons(static_cast<uint16_t>(Config.TcpPort));
    if (::bind(TcpFd, reinterpret_cast<sockaddr *>(&In), sizeof(In)) < 0)
      return errnoError("bind(loopback:" + std::to_string(Config.TcpPort) +
                        ")");
    if (::listen(TcpFd, 64) < 0)
      return errnoError("listen(tcp)");
    sockaddr_in Bound = {};
    socklen_t BoundLen = sizeof(Bound);
    if (::getsockname(TcpFd, reinterpret_cast<sockaddr *>(&Bound),
                      &BoundLen) == 0)
      BoundTcpPort = ntohs(Bound.sin_port);
  }

  if (::pipe(WakePipe) < 0)
    return errnoError("pipe");
  return Error::success();
}

Expected<std::unique_ptr<Server>> Server::start(const ServerConfig &Config) {
  if (Config.UnixSocketPath.empty())
    return Error::failure("cjpackd needs a unix socket path");
  if (Config.MaxInFlightPerConn == 0)
    return Error::failure("MaxInFlightPerConn must be at least 1");
  std::unique_ptr<Server> S(new Server(Config));
  if (auto E = S->bindListeners())
    return E;
  S->AcceptThread = std::thread([Srv = S.get()] { Srv->acceptLoop(); });
  return S;
}

void Server::reapFinishedSessions() {
  std::lock_guard<std::mutex> Lock(SessionsMu);
  for (auto It = Sessions.begin(); It != Sessions.end();) {
    Session &S = **It;
    if (S.Done.load(std::memory_order_acquire)) {
      if (S.Reader.joinable())
        S.Reader.join();
      if (S.Writer.joinable())
        S.Writer.join();
      ::close(S.Fd);
      It = Sessions.erase(It);
    } else {
      ++It;
    }
  }
}

void Server::acceptLoop() {
  while (!Stopping.load(std::memory_order_relaxed)) {
    pollfd Fds[3];
    nfds_t N = 0;
    Fds[N++] = {WakePipe[0], POLLIN, 0};
    Fds[N++] = {UnixFd, POLLIN, 0};
    if (TcpFd >= 0)
      Fds[N++] = {TcpFd, POLLIN, 0};
    if (::poll(Fds, N, -1) < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (Fds[0].revents) // self-pipe: requestStop() woke us
      break;

    for (nfds_t I = 1; I < N; ++I) {
      if (!(Fds[I].revents & POLLIN))
        continue;
      int Conn = ::accept(Fds[I].fd, nullptr, nullptr);
      if (Conn < 0)
        continue;
      if (Stopping.load(std::memory_order_relaxed)) {
        ::close(Conn);
        continue;
      }
      auto Sess = std::make_unique<Session>();
      Session *SP = Sess.get();
      SP->Fd = Conn;
      SP->Writer = std::thread([SP] {
        // Flush responses in request order; exit once the reader has
        // closed and the queue is drained.
        for (;;) {
          std::future<std::vector<uint8_t>> F;
          {
            std::unique_lock<std::mutex> Lock(SP->QueueMu);
            SP->QueueCv.wait(Lock, [SP] {
              return !SP->Queue.empty() || SP->ReaderClosed;
            });
            if (SP->Queue.empty())
              break;
            F = std::move(SP->Queue.front());
            SP->Queue.pop_front();
          }
          std::vector<uint8_t> Framed = F.get();
          bool Wrote = writeFull(SP->Fd, Framed);
          SP->QueueCv.notify_all(); // reopen the in-flight window
          if (!Wrote) {
            // Client went away: drain remaining futures without
            // writing so handler side effects still complete.
            for (;;) {
              std::future<std::vector<uint8_t>> G;
              {
                std::unique_lock<std::mutex> Lock(SP->QueueMu);
                SP->QueueCv.wait(Lock, [SP] {
                  return !SP->Queue.empty() || SP->ReaderClosed;
                });
                if (SP->Queue.empty())
                  break;
                G = std::move(SP->Queue.front());
                SP->Queue.pop_front();
              }
              G.get();
              SP->QueueCv.notify_all();
            }
            break;
          }
        }
        // The fd is closed by reap/wait after both threads join, so
        // requestStop() can never shutdown() a recycled descriptor.
        ::shutdown(SP->Fd, SHUT_RDWR);
        SP->Done.store(true, std::memory_order_release);
      });
      SP->Reader = std::thread([this, SP] { runSession(*SP); });
      {
        std::lock_guard<std::mutex> Lock(SessionsMu);
        Sessions.push_back(std::move(Sess));
      }
      reapFinishedSessions();
    }
  }

  // Close the listeners here, in the only thread that polls them, so a
  // post-shutdown connect is refused instead of parking in the backlog.
  ::close(UnixFd);
  UnixFd = -1;
  if (TcpFd >= 0) {
    ::close(TcpFd);
    TcpFd = -1;
  }
  ::unlink(Config.UnixSocketPath.c_str());
}

void Server::requestStop() {
  if (Stopping.exchange(true))
    return;
  // Wake the accept loop, then half-close every live connection's read
  // side: readers see EOF at the next frame boundary, in-flight
  // requests finish, writers flush, sessions drain.
  char B = 1;
  [[maybe_unused]] ssize_t W = ::write(WakePipe[1], &B, 1);
  std::lock_guard<std::mutex> Lock(SessionsMu);
  for (auto &S : Sessions)
    if (!S->Done.load(std::memory_order_acquire))
      ::shutdown(S->Fd, SHUT_RD);
}

void Server::wait() {
  if (AcceptThread.joinable())
    AcceptThread.join();
  std::list<std::unique_ptr<Session>> Drained;
  {
    std::lock_guard<std::mutex> Lock(SessionsMu);
    Drained.swap(Sessions);
  }
  for (auto &S : Drained) {
    if (S->Reader.joinable())
      S->Reader.join();
    if (S->Writer.joinable())
      S->Writer.join();
    ::close(S->Fd);
  }
}

Server::~Server() {
  requestStop();
  wait();
  if (UnixFd >= 0)
    ::close(UnixFd);
  if (TcpFd >= 0)
    ::close(TcpFd);
  if (WakePipe[0] >= 0)
    ::close(WakePipe[0]);
  if (WakePipe[1] >= 0)
    ::close(WakePipe[1]);
  ::unlink(Config.UnixSocketPath.c_str());
}
