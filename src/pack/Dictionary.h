//===- Dictionary.h - shared definitions across shards ---------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sharded wire format's shared dictionary. Splitting an archive
/// into independently-coded shards makes every shard redefine the
/// strings and class references the shards have in common — almost all
/// of the sharding size overhead. The dictionary factors those shared
/// definitions out: it is serialized once after the archive header, and
/// both sides replay it into every shard's model and reference coder
/// (via the §14 preload mechanism) before the shard is coded, so a
/// shard references a shared object by queue index and never by
/// definition.
///
/// Replay uses Model interning, which is idempotent, so replaying the
/// same dictionary in the same order yields the same object ids on the
/// compressor and decompressor. Only strings and class references are
/// shared: field/method references barely recur across shards, and
/// their per-shard definitions already collapse to cheap references
/// into the dictionary.
///
/// Schemes without preload support (Freq/Cache) use an empty
/// dictionary; their shards stay fully independent.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_PACK_DICTIONARY_H
#define CJPACK_PACK_DICTIONARY_H

#include "coder/RefCoder.h"
#include "pack/Model.h"
#include "support/ByteBuffer.h"
#include "support/DecodeLimits.h"
#include "support/Error.h"
#include <string>
#include <vector>

namespace cjpack {

/// A class reference in the dictionary. Package/Simple index the
/// dictionary's own Packages/Simples lists (unused unless Base is 'L').
struct DictClassRef {
  uint8_t Dims = 0;
  char Base = 'L';
  uint32_t Package = 0;
  uint32_t Simple = 0;
};

/// The string and class-reference definitions shared across shards.
struct SharedDictionary {
  std::vector<std::string> Packages, Simples, FieldNames, MethodNames,
      Strings;
  std::vector<DictClassRef> ClassRefs;

  bool empty() const {
    return Packages.empty() && Simples.empty() && FieldNames.empty() &&
           MethodNames.empty() && Strings.empty() && ClassRefs.empty();
  }

  size_t entryCount() const {
    return Packages.size() + Simples.size() + FieldNames.size() +
           MethodNames.size() + Strings.size() + ClassRefs.size();
  }

  /// Serializes as a framed blob — varint raw length, varint stored
  /// length, body — deflated when \p Compress is set and it helps
  /// (stored length < raw length means deflate).
  void serialize(ByteWriter &W, bool Compress) const;

  /// Parses a framed dictionary. The declared raw length is checked
  /// against \p Limits.MaxStreamBytes before inflating, inflation is
  /// capped by it, and every internal count/index is validated, so a
  /// hostile frame yields a typed Error rather than an OOM or overread.
  /// \p Budget, when non-null, is charged for the inflate output.
  static Expected<SharedDictionary>
  deserialize(ByteReader &R, const DecodeLimits &Limits = {},
              DecodeBudget *Budget = nullptr);
};

/// Builds the dictionary of values interned by at least two of
/// \p ShardModels. Values already present in \p Baseline (the standard
/// preload set; may be null) are skipped — they are seeded separately —
/// except where a shared class reference needs its strings in the
/// dictionary's index space.
SharedDictionary
buildSharedDictionary(const std::vector<const Model *> &ShardModels,
                      const Model *Baseline);

/// Replays \p D into (\p M, coder): interns every entry and preloads it
/// into the coder, in a fixed order both sides reproduce. Returns false
/// when the coder's scheme cannot preload (and \p D is non-empty).
bool preloadDictionary(Model &M, RefEncoder &Enc,
                       const SharedDictionary &D);
bool preloadDictionary(Model &M, RefDecoder &Dec,
                       const SharedDictionary &D);

} // namespace cjpack

#endif // CJPACK_PACK_DICTIONARY_H
