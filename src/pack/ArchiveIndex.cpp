//===- ArchiveIndex.cpp - per-class index of a v3 archive -----------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "pack/ArchiveIndex.h"
#include "pack/Streams.h"
#include "support/VarInt.h"
#include <set>
#include <utility>

using namespace cjpack;

const ArchiveIndex::ClassEntry *
ArchiveIndex::find(const std::string &Name) const {
  auto It = ByName.find(Name);
  return It == ByName.end() ? nullptr : &Classes[It->second];
}

Error ArchiveIndex::buildLookup() {
  ByName.clear();
  for (size_t I = 0; I < Classes.size(); ++I)
    if (!ByName.emplace(Classes[I].Name, I).second)
      return makeError(ErrorCode::Corrupt,
                       "index: duplicate class name '" + Classes[I].Name +
                           "'");
  return Error::success();
}

std::vector<uint8_t> ArchiveIndex::serialize() const {
  ByteWriter W;
  writeVarUInt(W, Shards.size());
  writeVarUInt(W, Classes.size());
  for (const ShardExtent &S : Shards) {
    writeVarUInt(W, S.Offset);
    writeVarUInt(W, S.Length);
  }
  for (const ClassEntry &C : Classes) {
    writeVarUInt(W, C.Name.size());
    W.writeString(C.Name);
    writeVarUInt(W, C.Shard);
    writeVarUInt(W, C.Ordinal);
  }
  return W.take();
}

Expected<ArchiveIndex>
ArchiveIndex::deserialize(ByteReader &R, const DecodeLimits &Limits) {
  ArchiveIndex Index;
  uint64_t ShardCount = readVarUInt(R);
  uint64_t ClassCount = readVarUInt(R);
  if (R.hasError() || ShardCount == 0 || ShardCount > MaxShards)
    return makeError(ErrorCode::Corrupt,
                     "index: implausible shard count at byte " +
                         std::to_string(R.position()));
  if (ClassCount > Limits.MaxClasses)
    return makeError(ErrorCode::LimitExceeded,
                     "index: class count over limit");
  // Each class entry costs at least four bytes (name length, one name
  // byte, shard, ordinal), so a count the frame cannot hold is corrupt
  // before anything is reserved.
  if (ClassCount * 4 > R.remaining())
    return makeError(ErrorCode::Corrupt,
                     "index: class count exceeds frame size");

  Index.Shards.resize(static_cast<size_t>(ShardCount));
  uint64_t Next = 0;
  for (ShardExtent &S : Index.Shards) {
    S.Offset = readVarUInt(R);
    S.Length = readVarUInt(R);
    if (R.hasError())
      return R.takeError("index");
    // Extents must tile the blob region exactly from offset zero; any
    // overlap, gap, or misordering shows up as an offset that is not
    // the running sum of the preceding lengths.
    if (S.Offset != Next)
      return makeError(ErrorCode::Corrupt,
                       "index: shard extents overlap or leave a gap at "
                       "byte " +
                           std::to_string(R.position()));
    if (S.Length > Limits.MaxStreamBytes * NumStreams)
      return makeError(ErrorCode::LimitExceeded,
                       "index: shard blob length over limit");
    Next += S.Length;
  }

  Index.Classes.reserve(static_cast<size_t>(ClassCount));
  std::set<std::pair<uint32_t, uint32_t>> Slots;
  for (uint64_t I = 0; I < ClassCount; ++I) {
    ClassEntry C;
    uint64_t NameLen = readVarUInt(R);
    if (R.hasError() || NameLen == 0 || NameLen > Limits.MaxStringBytes)
      return makeError(R.hasError() ? R.errorCode()
                                    : NameLen == 0 ? ErrorCode::Corrupt
                                                   : ErrorCode::LimitExceeded,
                       "index: implausible class name length at byte " +
                           std::to_string(R.position()));
    C.Name = R.readString(static_cast<size_t>(NameLen));
    uint64_t Shard = readVarUInt(R);
    uint64_t Ordinal = readVarUInt(R);
    if (R.hasError())
      return R.takeError("index");
    if (Shard >= ShardCount)
      return makeError(ErrorCode::Corrupt,
                       "index: class entry names shard " +
                           std::to_string(Shard) + " of " +
                           std::to_string(ShardCount));
    if (Ordinal > Limits.MaxClasses)
      return makeError(ErrorCode::LimitExceeded,
                       "index: class ordinal over limit");
    C.Shard = static_cast<uint32_t>(Shard);
    C.Ordinal = static_cast<uint32_t>(Ordinal);
    if (!Slots.emplace(C.Shard, C.Ordinal).second)
      return makeError(ErrorCode::Corrupt,
                       "index: duplicate class slot in shard " +
                           std::to_string(Shard));
    Index.Classes.push_back(std::move(C));
  }

  if (!R.atEnd())
    return makeError(ErrorCode::Corrupt,
                     "index: trailing bytes after class entries");
  if (auto E = Index.buildLookup())
    return E;
  return Index;
}
